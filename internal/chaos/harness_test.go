package chaos

import (
	"strings"
	"testing"
	"time"

	"hermes/internal/router"
	"hermes/internal/tx"
)

// matrix returns the schedule/policy/workload cross-product sized for the
// test mode: -short runs a quick smoke slice, the full run covers the
// acceptance matrix (5 distinct fault schedules x 3 policies x 2
// workloads).
func matrix(short bool) (scheds []Schedule, policies []string, workloads []Workload) {
	scheds = Schedules(1234)
	policies = []string{"hermes", "calvin", "tpart"}
	workloads = []Workload{WorkloadYCSB, WorkloadMultiTenant}
	if short {
		scheds = []Schedule{scheds[0], scheds[4]} // baseline + mixed
		policies = policies[:1]
		workloads = workloads[:1]
	}
	return
}

// TestEquivalenceMatrix is the determinism property: the same totally
// ordered workload must reach byte-identical state under every fault
// schedule, for every policy and workload in the matrix.
func TestEquivalenceMatrix(t *testing.T) {
	scheds, policies, workloads := matrix(testing.Short())
	for _, wl := range workloads {
		for _, pol := range policies {
			t.Run(string(wl)+"/"+pol, func(t *testing.T) {
				t.Parallel()
				spec := Spec{Policy: pol, Workload: wl, Nodes: 3, Txns: 64, Batch: 8, Seed: 99}
				results, err := Equivalence(spec, scheds)
				if err != nil {
					t.Fatal(err)
				}
				if len(results) != len(scheds) {
					t.Fatalf("got %d results, want %d", len(results), len(scheds))
				}
				// The faulty schedules must actually have perturbed the
				// run, or the suite proves nothing.
				for _, r := range results[1:] {
					if r.FaultMsgs == 0 {
						t.Errorf("schedule %v injected no faults", r.Schedule)
					}
				}
			})
		}
	}
}

// TestEquivalenceTPCC covers the inserting workload (New-Order grows the
// database) across fault schedules.
func TestEquivalenceTPCC(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix only")
	}
	scheds := Schedules(777)
	for _, pol := range []string{"hermes", "calvin"} {
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Policy: pol, Workload: WorkloadTPCC, Nodes: 2, Txns: 48, Batch: 8, Seed: 5}
			if _, err := Equivalence(spec, scheds[:3]); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// orderChainProcs builds a trace whose final state encodes the exact
// serial order: every transaction folds its index into a shared hot key
// with a non-commutative mix, so ANY reordering of the input produces a
// different quiesced state.
func orderChainProcs(n int, rows uint64) []tx.Procedure {
	procs := make([]tx.Procedure, 0, n)
	hot := tx.MakeKey(0, 0)
	for i := 0; i < n; i++ {
		i := i
		k := tx.MakeKey(0, uint64(i)%rows)
		procs = append(procs, &tx.OpProc{
			Reads:  []tx.Key{hot, k},
			Writes: []tx.Key{hot},
			Mutate: func(_ tx.Key, cur []byte) []byte {
				out := append([]byte(nil), cur...)
				if len(out) >= 8 {
					// Length-preserving order-sensitive fold.
					acc := uint64(out[0]) | uint64(out[1])<<8 | uint64(out[2])<<16 | uint64(out[3])<<24
					acc = acc*31 + uint64(i) + 1
					out[0], out[1], out[2], out[3] = byte(acc), byte(acc>>8), byte(acc>>16), byte(acc>>24)
				}
				return out
			},
		})
	}
	return procs
}

// TestNegativeInputOrderCaught: a deliberately nondeterministic mutation —
// submitting the trace in Go map-iteration order — must be caught by the
// equivalence checker as a divergence. This is the harness's own negative
// control: if this test fails, the checker has gone blind.
func TestNegativeInputOrderCaught(t *testing.T) {
	spec := Spec{
		Policy: "hermes", Workload: WorkloadYCSB,
		Nodes: 2, Txns: 64, Batch: 8, Seed: 13,
		MutateProcs: func([]tx.Procedure) []tx.Procedure {
			// Replace the trace with an order-chain trace shuffled by map
			// iteration: each run submits a different permutation.
			procs := orderChainProcs(64, 96)
			m := make(map[int]tx.Procedure, len(procs))
			for i, p := range procs {
				m[i] = p
			}
			out := make([]tx.Procedure, 0, len(procs))
			for _, p := range m {
				out = append(out, p)
			}
			return out
		},
	}
	// Two fault-free runs suffice: the nondeterminism is in the input.
	scheds := []Schedule{{Name: "baseline-a", Seed: 1}, {Name: "baseline-b", Seed: 2}}
	_, err := Equivalence(spec, scheds)
	if err == nil {
		t.Fatal("equivalence checker missed an input-order nondeterminism")
	}
	if !strings.Contains(err.Error(), "DIVERGENCE") {
		t.Fatalf("expected a divergence report, got: %v", err)
	}
}

// scrambledPolicy wraps a routing replica and feeds RouteUser its segment
// in map-iteration order — the classic accidental-nondeterminism bug in a
// deterministic system (each replica scrambles differently).
type scrambledPolicy struct{ router.Policy }

func (s scrambledPolicy) RouteUser(txns []*tx.Request) []*router.Route {
	m := make(map[int]*tx.Request, len(txns))
	for i, r := range txns {
		m[i] = r
	}
	shuffled := make([]*tx.Request, 0, len(txns))
	for _, r := range m {
		shuffled = append(shuffled, r)
	}
	return s.Policy.RouteUser(shuffled)
}

// TestNegativeRoutingOrderCaught: map-iteration routing inside the policy
// replicas must be caught by the harness — either as divergent state or
// as a failure to quiesce (replicas disagree about who sends what, so
// transactions stall). Both are reported as errors.
func TestNegativeRoutingOrderCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("wedges the cluster until the run timeout")
	}
	spec := Spec{
		Policy: "hermes", Workload: WorkloadYCSB,
		Nodes: 3, Txns: 32, Batch: 8, Seed: 21,
		Timeout:    8 * time.Second,
		WrapPolicy: func(p router.Policy) router.Policy { return scrambledPolicy{p} },
	}
	scheds := []Schedule{{Name: "baseline-a", Seed: 1}, {Name: "baseline-b", Seed: 2}}
	_, err := Equivalence(spec, scheds)
	if err == nil {
		t.Fatal("equivalence harness missed map-iteration-order routing")
	}
	t.Logf("caught as: %v", err)
}

// TestConservationAcrossSchedules: the storage totals (records and bytes)
// are part of the equivalence check; this pins the property directly for
// a migrating policy under the full schedule matrix.
func TestConservationAcrossSchedules(t *testing.T) {
	scheds := Schedules(31)
	if testing.Short() {
		scheds = scheds[:2]
	}
	spec := Spec{Policy: "leap", Workload: WorkloadYCSB, Nodes: 3, Txns: 48, Batch: 8, Seed: 77}
	results, err := Equivalence(spec, scheds)
	if err != nil {
		t.Fatal(err)
	}
	// LEAP migrates every remote record it touches; the loaded totals
	// must still be intact in every run (Run enforces it; double-check
	// the reported totals agree between runs here).
	for _, r := range results[1:] {
		if r.Records != results[0].Records || r.Bytes != results[0].Bytes {
			t.Fatalf("storage totals diverged: %+v vs %+v", results[0], r)
		}
	}
}

// TestRunRejectsUnknownSpecs covers the harness's own error paths.
func TestRunRejectsUnknownSpecs(t *testing.T) {
	if _, err := Run(Spec{Policy: "bogus"}, Schedule{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Run(Spec{Workload: "bogus"}, Schedule{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestEquivalenceLossAndCrashAllPolicies is the live fault-tolerance
// acceptance property: schedules that drop messages, duplicate them, and
// kill/restart a node mid-run must still reach state byte-identical to
// the fault-free baseline — for every routing policy, reproducibly from
// the logged seed.
func TestEquivalenceLossAndCrashAllPolicies(t *testing.T) {
	policies := Policies()
	if testing.Short() {
		policies = []string{"hermes", "calvin"}
	}
	scheds := append([]Schedule{{Name: "baseline", Seed: 5150}}, LossySchedules(5150)...)
	for _, pol := range policies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Policy: pol, Workload: WorkloadYCSB, Nodes: 3, Txns: 64, Batch: 8, Seed: 303}
			results, err := Equivalence(spec, scheds)
			if err != nil {
				t.Fatal(err)
			}
			// Prove the schedules actually exceeded the base contract:
			// messages were lost and duplicated, the reliable layer had to
			// retransmit, and the crash cycle executed.
			var sawDrop, sawDup, sawCrash bool
			for _, r := range results[1:] {
				if r.Dropped > 0 {
					sawDrop = true
					if r.Retransmits == 0 {
						t.Errorf("%v dropped %d messages but retransmitted none", r.Schedule, r.Dropped)
					}
				}
				if r.Dupped > 0 {
					sawDup = true
				}
				if len(r.Schedule.Crashes) > 0 {
					sawCrash = true
					if r.Crashes != int64(len(r.Schedule.Crashes)) {
						t.Errorf("%v executed %d crashes, want %d", r.Schedule, r.Crashes, len(r.Schedule.Crashes))
					}
				}
			}
			if !sawDrop || !sawDup || !sawCrash {
				t.Errorf("loss matrix under-exercised: drop=%v dup=%v crash=%v", sawDrop, sawDup, sawCrash)
			}
		})
	}
}

// TestEquivalenceLeaderKillAllPolicies is the failover acceptance
// property: killing the total-order leader mid-run — alone, and combined
// with the lossy + worker-crash schedule — must still quiesce to node
// digests byte-identical to a fault-free run, for every routing policy,
// with every transaction sequenced exactly once. This is the named
// leader-failover CI gate; it must NOT be skipped under -short.
func TestEquivalenceLeaderKillAllPolicies(t *testing.T) {
	scheds := append([]Schedule{{Name: "baseline", Seed: 6160}}, LeaderKillSchedules(6160)...)
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{
				Policy: pol, Workload: WorkloadYCSB,
				Nodes: 3, Txns: 64, Batch: 8, Seed: 404,
				SeqStandbys: 2,
			}
			results, err := Equivalence(spec, scheds)
			if err != nil {
				t.Fatal(err)
			}
			// Prove the failover machinery actually fired: every leader-kill
			// schedule promoted a standby, and the combined schedule also
			// executed its worker crash over a lossy network.
			var sawCombined bool
			for _, r := range results[1:] {
				if want := int64(len(r.Schedule.LeaderKills)); r.Failovers < want {
					t.Errorf("%v recorded %d failovers, want at least %d", r.Schedule, r.Failovers, want)
				}
				if len(r.Schedule.Crashes) > 0 {
					sawCombined = true
					// The crash counter records leader kills too.
					want := int64(len(r.Schedule.Crashes) + len(r.Schedule.LeaderKills))
					if r.Crashes != want {
						t.Errorf("%v executed %d crash cycles, want %d", r.Schedule, r.Crashes, want)
					}
					if r.Dropped == 0 {
						t.Errorf("%v dropped no messages; the combined schedule is not lossy", r.Schedule)
					}
				}
			}
			if !sawCombined {
				t.Error("leader-kill matrix lacks the combined lossy+worker-crash schedule")
			}
			if results[0].Failovers != 0 {
				t.Errorf("fault-free baseline recorded %d failovers", results[0].Failovers)
			}
		})
	}
}

// TestLeaderKillScheduleRequiresStandbys pins the harness error surface:
// a leader-kill schedule on a spec without standbys must fail loudly
// before the run starts, not wedge mid-stream.
func TestLeaderKillScheduleRequiresStandbys(t *testing.T) {
	sched := LeaderKillSchedules(1)[0]
	_, err := Run(Spec{Policy: "hermes", Workload: WorkloadYCSB, Txns: 16, Batch: 8}, sched)
	if err == nil {
		t.Fatal("leader-kill schedule without standbys accepted")
	}
	if !strings.Contains(err.Error(), "SeqStandbys") {
		t.Errorf("error %q does not point at Spec.SeqStandbys", err)
	}
}

// TestLossyScheduleSeedReproducible: re-running a logged seed must reach
// the identical quiesced state. (The raw drop/duplicate counts are NOT
// bit-reproducible: retransmissions change how many messages cross the
// faulty links, which shifts the per-link PRNG stream — the determinism
// contract under loss is about state, never about wire traffic.)
func TestLossyScheduleSeedReproducible(t *testing.T) {
	sched := LossySchedules(808)[2] // drops + dups + crash
	spec := Spec{Policy: "hermes", Workload: WorkloadYCSB, Nodes: 3, Txns: 32, Batch: 8, Seed: 11}
	a, err := Run(spec, sched)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := equivalent(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Dropped == 0 || b.Dropped == 0 {
		t.Fatalf("schedule dropped nothing: %d vs %d", a.Dropped, b.Dropped)
	}
}
