package chaos

import (
	"fmt"
	"time"

	"hermes/internal/netchaos"
)

// ClusterKill is one SIGKILL positioned in the deterministic transaction
// stream of a real multi-process cluster run: the victim dies once the
// driver reports AfterFrac of the run committed. Recovery is the heartbeat
// supervisor's job — a schedule with kills must complete without the test
// ever calling RestartWorker itself.
type ClusterKill struct {
	// Worker indexes the victim process.
	Worker int
	// AfterFrac in [0,1) positions the kill within the committed stream.
	AfterFrac float64
}

// ClusterSchedule names one seeded fault run for the real multi-process
// cluster: proxy-level network faults (WAN latency, partitions, mid-stream
// resets, stalls) via a netchaos schedule, plus process kills the
// supervisor must repair. The determinism claim carries over unchanged
// from the in-process suite — every fault lives below the reliable layer,
// so any schedule must quiesce byte-identical to the fault-free in-process
// twin.
type ClusterSchedule struct {
	Name  string
	Net   *netchaos.Schedule
	Kills []ClusterKill
}

// String summarizes the schedule for failure reports.
func (s ClusterSchedule) String() string {
	return fmt.Sprintf("%s(%v, %d kills)", s.Name, s.Net, len(s.Kills))
}

// ClusterWANKillSchedule is the canonical self-healing schedule for a
// 3-process cluster: asymmetric WAN latency between node groups {0} and
// {1, 2}, one mid-stream reset of the always-busy leader link 0->1, a
// bidirectional partition between the groups that heals after heal, and
// one SIGKILL of worker 2 mid-run for the supervisor alone to repair.
// intra/cross/jitter scale the latencies: the CI gate uses small values so
// the run stays fast under -race, the WAN bench uses realistic
// 5ms/40ms figures.
func ClusterWANKillSchedule(seed int64, intra, cross, jitter, heal time.Duration) ClusterSchedule {
	regions := [][]int{{0}, {1, 2}}
	return ClusterSchedule{
		Name: "wan-partition-kill",
		Net: &netchaos.Schedule{
			Name:  "wan-partition-kill",
			Seed:  seed,
			Rules: netchaos.WANProfile(regions, intra, cross, jitter),
			Events: []netchaos.Event{
				{At: 150 * time.Millisecond, Reset: &netchaos.Reset{From: 0, To: 1}},
				{At: 400 * time.Millisecond, Partition: &netchaos.Partition{
					A: []int{0}, B: []int{1, 2}, For: heal}},
			},
		},
		Kills: []ClusterKill{{Worker: 2, AfterFrac: 0.3}},
	}
}

// ClusterWANSchedule is the kill-free WAN profile used by the cluster
// bench: the same asymmetric latency groups and partition/heal cycle, but
// no process faults, so throughput under degraded networking is measured
// against the same workload rather than against restarts.
func ClusterWANSchedule(seed int64, intra, cross, jitter, heal time.Duration) ClusterSchedule {
	regions := [][]int{{0}, {1, 2}}
	return ClusterSchedule{
		Name: "wan-partition",
		Net: &netchaos.Schedule{
			Name:  "wan-partition",
			Seed:  seed,
			Rules: netchaos.WANProfile(regions, intra, cross, jitter),
			Events: []netchaos.Event{
				{At: 400 * time.Millisecond, Partition: &netchaos.Partition{
					A: []int{0}, B: []int{1, 2}, For: heal}},
			},
		},
	}
}
