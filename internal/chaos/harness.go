package chaos

import (
	"fmt"
	"sort"
	"time"

	"hermes/internal/core"
	"hermes/internal/engine"
	"hermes/internal/network"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
	"hermes/internal/workload"
)

// Workload names the workload families the harness can drive.
type Workload string

// Supported workloads.
const (
	// WorkloadYCSB is the YCSB-A mix (50/50 read / read-modify-write)
	// over a uniform-range layout.
	WorkloadYCSB Workload = "ycsb"
	// WorkloadTPCC is the New-Order/Payment mix over the by-warehouse
	// layout; New-Order inserts records, so only cross-run conservation
	// applies.
	WorkloadTPCC Workload = "tpcc"
	// WorkloadMultiTenant is the rotating-hot-node tenant workload.
	WorkloadMultiTenant Workload = "multitenant"
)

// Policies lists every routing policy the harness can spin up.
func Policies() []string { return []string{"hermes", "calvin", "gstore", "leap", "tpart"} }

// Spec describes one deterministic harness run: a cluster, a workload
// trace, and a submission shape. The same Spec always generates the same
// totally ordered input, which is what makes cross-schedule equivalence
// meaningful.
type Spec struct {
	// Policy is one of Policies().
	Policy string
	// Workload selects the generator family.
	Workload Workload
	// Nodes is the cluster size.
	Nodes int
	// Txns is the trace length; it is rounded up to a multiple of Batch.
	Txns int
	// Batch is the exact sequencer batch size. The harness submits the
	// whole trace through one front-end (a single FIFO link to the
	// leader) and disables the interval flush, so batches seal purely on
	// the size trigger — batch composition is identical across runs no
	// matter how the fault schedule stretches delivery.
	Batch int
	// Seed drives the workload generator.
	Seed int64
	// SeqStandbys is the number of standby sequencer replicas. Schedules
	// with LeaderKills require at least one; the harness then runs the
	// group with tight failover timers so a kill resolves in tens of
	// milliseconds. Standbys do not change the sealed batch stream, so a
	// spec is byte-comparable across schedules regardless of this knob.
	SeqStandbys int
	// Timeout bounds one run (default 60s); hitting it is reported as a
	// quiescence failure, which is itself a determinism-tooling finding.
	Timeout time.Duration

	// Telemetry attaches a live telemetry layer (lifecycle tracer +
	// gauge registry) to the run. Telemetry must be a pure observer, so
	// a run with it on must quiesce to byte-identical state as one with
	// it off — TelemetryEquivalence asserts exactly that.
	Telemetry bool

	// ExecMode selects the admission engine ("lock" or "queue"; empty is
	// lock). Final state must not depend on it — ExecModeEquivalence
	// asserts byte-identical digests across modes for every schedule.
	ExecMode string

	// MutateProcs, if non-nil, transforms the generated trace before
	// submission. Negative tests inject input-order nondeterminism here
	// to prove the checker catches it.
	MutateProcs func([]tx.Procedure) []tx.Procedure
	// WrapPolicy, if non-nil, wraps every node's routing replica.
	// Negative tests inject per-replica nondeterminism (map-iteration
	// routing) here.
	WrapPolicy func(router.Policy) router.Policy
}

func (s Spec) String() string {
	tel := ""
	if s.Telemetry {
		tel = " telemetry=on"
	}
	mode := ""
	if s.ExecMode != "" {
		mode = " exec=" + s.ExecMode
	}
	return fmt.Sprintf("%s/%s n=%d txns=%d batch=%d seed=%d%s%s",
		s.Policy, s.Workload, s.Nodes, s.Txns, s.Batch, s.Seed, tel, mode)
}

// Result is the externally comparable outcome of one run.
type Result struct {
	Spec     Spec
	Schedule Schedule
	// Fingerprint is the cluster-wide state hash.
	Fingerprint uint64
	// Nodes are the per-node state digests, in node order.
	Nodes []engine.NodeDigest
	// Records and Bytes are the storage totals at quiescence.
	Records int
	Bytes   int64
	// Committed and Aborted account for every submitted transaction.
	Committed, Aborted int64
	// FaultMsgs and FaultDelay report how much the schedule actually
	// perturbed this run.
	FaultMsgs  int64
	FaultDelay time.Duration
	// Dropped/Dupped count messages the schedule lost or duplicated;
	// Retransmits counts the reliable layer's recoveries. Zero for
	// schedules within the base Transport contract.
	Dropped, Dupped int64
	Retransmits     int64
	// Crashes counts executed node kill/restart cycles.
	Crashes int64
	// Failovers counts sequencer leader promotions (epoch advances).
	Failovers int64
	// Traced and MetricSamples report telemetry activity (zero unless
	// Spec.Telemetry): lifecycle events emitted and registry samples.
	Traced        uint64
	MetricSamples int
	// Disk reports the shadow-journal activity and injected storage
	// faults (zero unless Schedule.Disk).
	Disk DiskStats
}

// normalize applies defaults and rounds the trace to whole batches.
func (s Spec) normalize() Spec {
	if s.Nodes <= 0 {
		s.Nodes = 3
	}
	if s.Batch <= 0 {
		s.Batch = 8
	}
	if s.Txns <= 0 {
		s.Txns = 8 * s.Batch
	}
	if rem := s.Txns % s.Batch; rem != 0 {
		s.Txns += s.Batch - rem
	}
	if s.Timeout <= 0 {
		s.Timeout = 60 * time.Second
	}
	return s
}

// trace is the deterministic input of one run: layout, initial records,
// and the ordered procedure list.
type trace struct {
	base    partition.Partitioner
	records map[tx.Key][]byte
	procs   []tx.Procedure
	// inserts marks workloads that create records, which weakens the
	// loaded-totals conservation check to "never shrinks".
	inserts bool
}

// buildTrace generates the run input from the spec, deterministically.
func buildTrace(spec Spec) (*trace, error) {
	tr := &trace{records: make(map[tx.Key][]byte)}
	const payload = 32
	switch spec.Workload {
	case WorkloadYCSB, "":
		rows := uint64(48 * spec.Nodes)
		tr.base = partition.NewUniformRange(0, rows, spec.Nodes)
		for i := uint64(0); i < rows; i++ {
			tr.records[tx.MakeKey(0, i)] = workload.Value(payload, 0)
		}
		gen := workload.NewYCSB(workload.YCSBConfig{
			Rows: rows, Nodes: spec.Nodes, Mix: workload.YCSBA,
			Theta: 0.8, KeysPerTxn: 3, Payload: payload, Seed: spec.Seed,
		})
		for i := 0; i < spec.Txns; i++ {
			proc, _ := gen.Next(0)
			tr.procs = append(tr.procs, proc)
		}
	case WorkloadTPCC:
		cfg := workload.DefaultTPCCConfig(spec.Nodes, 1)
		cfg.StockPerWarehouse = 60
		cfg.HotSpotProb = 0.5
		cfg.Seed = spec.Seed
		gen := workload.NewTPCC(cfg)
		tr.base = gen.Partitioner()
		tr.inserts = true
		gen.ForEachRecord(func(k tx.Key, v []byte) {
			cp := make([]byte, len(v))
			copy(cp, v)
			tr.records[k] = cp
		})
		for i := 0; i < spec.Txns; i++ {
			proc, _ := gen.Next(time.Duration(i) * time.Millisecond)
			tr.procs = append(tr.procs, proc)
		}
	case WorkloadMultiTenant:
		cfg := workload.DefaultMultiTenantConfig(spec.Nodes)
		cfg.TenantsPerNode = 2
		cfg.RowsPerTenant = 40
		cfg.RotationPeriod = 2 * time.Second
		cfg.Payload = payload
		cfg.Seed = spec.Seed
		gen := workload.NewMultiTenant(cfg)
		tr.base = gen.Partitioner()
		for i := uint64(0); i < gen.Rows(); i++ {
			tr.records[tx.MakeKey(0, i)] = workload.Value(payload, 0)
		}
		for i := 0; i < spec.Txns; i++ {
			// Deterministic pseudo-elapsed time: the hot node rotates at
			// fixed trace positions, identically in every run.
			proc, _ := gen.Next(time.Duration(i) * 50 * time.Millisecond)
			tr.procs = append(tr.procs, proc)
		}
	default:
		return nil, fmt.Errorf("chaos: unknown workload %q", spec.Workload)
	}
	return tr, nil
}

// factory builds the policy factory for spec over base.
func factory(spec Spec, base partition.Partitioner) (engine.PolicyFactory, error) {
	var pf engine.PolicyFactory
	switch spec.Policy {
	case "hermes", "":
		pf = func(a []tx.NodeID) router.Policy { return core.New(base, a, core.DefaultConfig(64)) }
	case "calvin":
		pf = func(a []tx.NodeID) router.Policy { return router.NewCalvin(base, a) }
	case "gstore":
		pf = func(a []tx.NodeID) router.Policy { return router.NewGStore(base, a) }
	case "leap":
		pf = func(a []tx.NodeID) router.Policy { return router.NewLEAP(base, a) }
	case "tpart":
		pf = func(a []tx.NodeID) router.Policy { return router.NewTPart(base, a, 0.5) }
	default:
		return nil, fmt.Errorf("chaos: unknown policy %q", spec.Policy)
	}
	if spec.WrapPolicy != nil {
		inner := pf
		pf = func(a []tx.NodeID) router.Policy { return spec.WrapPolicy(inner(a)) }
	}
	return pf, nil
}

// Run executes spec once under sched and returns the quiesced state.
//
// Determinism protocol: the trace is submitted in order through node 0's
// front-end only, so all forwards share one FIFO link to the leader; the
// sequencer's interval flush is disabled (the harness sets a very long
// interval) and Batch is the exact size trigger, so every run seals the
// identical batch stream. Everything downstream — batch delivery, record
// pushes, write-backs, migration chunks — is fair game for the fault
// schedule, which is precisely the paper's determinism claim.
func Run(spec Spec, sched Schedule) (*Result, error) {
	spec = spec.normalize()
	tr, err := buildTrace(spec)
	if err != nil {
		return nil, err
	}
	pf, err := factory(spec, tr.base)
	if err != nil {
		return nil, err
	}

	ids := make([]tx.NodeID, spec.Nodes)
	for i := range ids {
		ids[i] = tx.NodeID(i)
	}
	var tel *telemetry.Telemetry
	if spec.Telemetry {
		tel = telemetry.New(ids, 1<<12)
	}
	if len(sched.LeaderKills) > 0 && spec.SeqStandbys < 1 {
		return nil, fmt.Errorf("chaos: %v has leader kills but spec %v has no sequencer standbys (set Spec.SeqStandbys)", sched, spec)
	}
	seqCfg := sequencer.Config{BatchSize: spec.Batch, Interval: time.Hour}
	if spec.SeqStandbys > 0 {
		// Tight fault-tolerance timers: a leader kill must resolve well
		// inside the run, and the front-end retry must outlive a failover.
		seqCfg.Standbys = spec.SeqStandbys
		// FailoverTimeout trades recovery latency for robustness against
		// scheduler starvation: a race-enabled run under load can stall
		// the leader's pulse goroutine for tens of milliseconds, and a
		// fault-free baseline must never record a spurious promotion.
		seqCfg.Heartbeat = 5 * time.Millisecond
		seqCfg.FailoverTimeout = 150 * time.Millisecond
		seqCfg.RetryTimeout = 10 * time.Millisecond
		seqCfg.RetryCap = 100 * time.Millisecond
	}
	var chaosT *Transport
	cfg := engine.Config{
		Nodes:     ids,
		Policy:    pf,
		Telemetry: tel,
		ExecMode:  spec.ExecMode,
		// Interval far beyond any run: batches seal on size only.
		Seq: seqCfg,
		WrapTransport: func(inner network.Transport) network.Transport {
			chaosT = Wrap(inner, sched, nil)
			return chaosT
		},
		// Loss and crash schedules need the reliable layer above the
		// faulty link; schedules within the base contract run without it,
		// exactly as before.
		Reliable: sched.RequiresReliable(),
	}
	// Disk schedules route every node's delivery journaling and ack gating
	// through a shadow journal on fault-injecting storage (disk.go). The
	// shadows close after the engine stops (defers run LIFO), so the final
	// group commit covers every frame the reliable layer appended.
	var shadows *shadowSet
	if sched.Disk != nil {
		shadows, err = newShadowSet(sched, ids)
		if err != nil {
			return nil, err
		}
		defer shadows.Close()
		cfg.JournalFor = shadows.journalFor
		cfg.AckGateFor = shadows.ackGateFor
	}
	c, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	var loadedRecords int
	var loadedBytes int64
	for k, v := range tr.records {
		c.LoadRecord(k, v)
		loadedRecords++
		loadedBytes += int64(len(v))
	}

	// Crash and leader-kill schedules replay from the last checkpoint;
	// take one at the loaded-but-idle cut so the whole trace is coverable.
	if len(sched.Crashes) > 0 || len(sched.LeaderKills) > 0 {
		if _, err := c.Checkpoint(30 * time.Second); err != nil {
			return nil, fmt.Errorf("chaos: %v under %v: initial checkpoint: %w", spec, sched, err)
		}
	}

	procs := tr.procs
	if spec.MutateProcs != nil {
		procs = spec.MutateProcs(append([]tx.Procedure(nil), procs...))
	}

	deadline := time.Now().Add(spec.Timeout)

	// The fault executor kills and restarts victims — worker nodes and the
	// sequencer leader alike — at their scheduled points in the batch
	// stream while the trace is being submitted and executed. It runs
	// concurrently with submission: a trigger can sit in the middle of the
	// stream, and the stalled cluster must keep accepting input past it.
	// Events are merged and executed in stream order so a schedule that
	// combines worker crashes with a leader kill is sequenced the same way
	// in every run.
	type faultEvent struct {
		frac   float64
		leader bool
		node   int
		down   time.Duration
	}
	events := make([]faultEvent, 0, len(sched.Crashes)+len(sched.LeaderKills))
	for _, cr := range sched.Crashes {
		events = append(events, faultEvent{frac: cr.AfterFrac, node: cr.Node, down: cr.Downtime})
	}
	for _, lk := range sched.LeaderKills {
		events = append(events, faultEvent{frac: lk.AfterFrac, leader: true, down: lk.Downtime})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].frac < events[j].frac })
	crashErr := make(chan error, 1)
	crashesDone := make(chan struct{})
	go func() {
		defer close(crashesDone)
		totalBatches := uint64(len(procs) / spec.Batch)
		for _, ev := range events {
			// Leader kills key their trigger off node 0's scheduler (the
			// leader has no scheduler of its own); worker crashes off the
			// victim's.
			watch := tx.NodeID(0)
			what := "leader kill"
			if !ev.leader {
				watch = tx.NodeID(ev.node % spec.Nodes)
				what = fmt.Sprintf("crash of node %d", watch)
			}
			trigger := uint64(float64(totalBatches) * ev.frac)
			if trigger < 1 {
				trigger = 1
			}
			if trigger > totalBatches {
				trigger = totalBatches
			}
			for c.Node(watch).Scheduled() < trigger {
				if time.Now().After(deadline) {
					crashErr <- fmt.Errorf("chaos: %v under %v: node %d never reached trigger batch %d for %s",
						spec, sched, watch, trigger, what)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
			if ev.leader {
				if err := c.CrashLeader(); err != nil {
					crashErr <- fmt.Errorf("chaos: %v under %v: crash leader: %w", spec, sched, err)
					return
				}
				time.Sleep(ev.down)
				if err := c.RestartLeader(); err != nil {
					crashErr <- fmt.Errorf("chaos: %v under %v: restart leader: %w", spec, sched, err)
					return
				}
				continue
			}
			if err := c.CrashNode(watch); err != nil {
				crashErr <- fmt.Errorf("chaos: %v under %v: crash node %d: %w", spec, sched, watch, err)
				return
			}
			// With the victim down, its shadow journal is exactly what a
			// real crash would leave on disk: verify recovery at the kill
			// point, not just at quiescence.
			if shadows != nil {
				if err := shadows.verify(watch, 1); err != nil {
					crashErr <- fmt.Errorf("chaos: %v under %v: %w", spec, sched, err)
					return
				}
			}
			time.Sleep(ev.down)
			if err := c.RestartNode(watch); err != nil {
				crashErr <- fmt.Errorf("chaos: %v under %v: restart node %d: %w", spec, sched, watch, err)
				return
			}
		}
	}()

	dones := make([]<-chan struct{}, 0, len(procs))
	for _, p := range procs {
		done, err := c.Submit(0, p)
		if err != nil {
			return nil, fmt.Errorf("chaos: submit under %v: %w", sched, err)
		}
		dones = append(dones, done)
	}
	for i, done := range dones {
		select {
		case <-done:
		case err := <-crashErr:
			return nil, err
		case <-time.After(time.Until(deadline)):
			return nil, fmt.Errorf("chaos: %v under %v: txn %d/%d did not complete within %v (reproduce with seed=%d)",
				spec, sched, i+1, len(dones), spec.Timeout, sched.Seed)
		}
	}
	select {
	case <-crashesDone:
	case <-time.After(time.Until(deadline)):
		return nil, fmt.Errorf("chaos: %v under %v: crash executor did not finish (reproduce with seed=%d)",
			spec, sched, sched.Seed)
	}
	select {
	case err := <-crashErr:
		return nil, err
	default:
	}
	if !c.Drain(time.Until(deadline)) {
		return nil, fmt.Errorf("chaos: %v under %v: cluster did not quiesce within %v (reproduce with seed=%d)",
			spec, sched, spec.Timeout, sched.Seed)
	}

	res := &Result{
		Spec:        spec,
		Schedule:    sched,
		Fingerprint: c.Fingerprint(),
		Nodes:       c.NodeDigests(),
		Records:     c.TotalRecords(),
		Bytes:       c.TotalBytes(),
		Committed:   c.Collector().Committed(),
		Aborted:     c.Collector().Aborted(),
	}
	res.FaultMsgs, res.FaultDelay = chaosT.Faults()
	res.Dropped, res.Dupped = chaosT.Loss()
	res.Retransmits = c.ReliableStats().Retransmits
	res.Crashes = c.Collector().Crashes()
	res.Failovers = c.SeqFailovers()
	if shadows != nil {
		// End-of-run crash check for every node, twice with distinct
		// seeds (distinct tear points and bit-flip patterns).
		if err := shadows.verifyAll(2); err != nil {
			return nil, fmt.Errorf("chaos: %v under %v: %w", spec, sched, err)
		}
		res.Disk = shadows.stats()
	}
	if tel != nil {
		res.Traced = tel.Tracer().Written()
		res.MetricSamples = len(tel.Registry().Snapshot())
	}

	// Conservation: transactions and migrations must never lose records
	// or bytes; workloads without inserts must preserve the loaded totals
	// exactly.
	if res.Records < loadedRecords {
		return nil, fmt.Errorf("chaos: %v under %v: records shrank %d -> %d", spec, sched, loadedRecords, res.Records)
	}
	if got := res.Committed + res.Aborted; got != int64(len(procs)) {
		return nil, fmt.Errorf("chaos: %v under %v: committed+aborted = %d, want %d", spec, sched, got, len(procs))
	}
	if !tr.inserts {
		if res.Records != loadedRecords || res.Bytes != loadedBytes {
			return nil, fmt.Errorf("chaos: %v under %v: conservation violated: %d records / %d bytes, loaded %d / %d",
				spec, sched, res.Records, res.Bytes, loadedRecords, loadedBytes)
		}
	}
	return res, nil
}

// Equivalence runs spec once per schedule and checks that every run
// reached the identical final state: cluster fingerprint, every node's
// store digest and fusion fingerprint, and the storage totals. It returns
// all results plus the first divergence (or run failure) found.
func Equivalence(spec Spec, scheds []Schedule) ([]*Result, error) {
	if len(scheds) == 0 {
		return nil, fmt.Errorf("chaos: no schedules")
	}
	results := make([]*Result, 0, len(scheds))
	var ref *Result
	for _, sched := range scheds {
		res, err := Run(spec, sched)
		if err != nil {
			return results, err
		}
		results = append(results, res)
		if ref == nil {
			ref = res
			continue
		}
		if err := equivalent(ref, res); err != nil {
			return results, err
		}
	}
	return results, nil
}

// TelemetryEquivalence runs spec under sched twice — telemetry fully off,
// then fully on — and checks the runs quiesced to byte-identical state:
// same cluster fingerprint, node digests, storage totals, and
// commit/abort counts. Any difference means telemetry perturbed the
// deterministic state machine. It also sanity-checks that the enabled run
// actually observed the workload (traced events and a non-empty metric
// snapshot), so a silently disconnected tracer cannot pass.
func TelemetryEquivalence(spec Spec, sched Schedule) ([]*Result, error) {
	off := spec
	off.Telemetry = false
	on := spec
	on.Telemetry = true

	resOff, err := Run(off, sched)
	if err != nil {
		return nil, err
	}
	resOn, err := Run(on, sched)
	if err != nil {
		return []*Result{resOff}, err
	}
	results := []*Result{resOff, resOn}
	if err := equivalent(resOff, resOn); err != nil {
		return results, fmt.Errorf("telemetry on/off: %w", err)
	}
	if resOn.Traced == 0 {
		return results, fmt.Errorf("chaos: %v under %v: telemetry run traced no events", on, sched)
	}
	if resOn.MetricSamples == 0 {
		return results, fmt.Errorf("chaos: %v under %v: telemetry run registered no metrics", on, sched)
	}
	return results, nil
}

// ExecModeEquivalence runs spec under every schedule in both execution
// modes — conservative locking and queue-oriented — and checks that all
// 2×len(scheds) runs quiesced to byte-identical state. The first run
// (lock mode, first schedule) is the reference; a divergence anywhere
// means the queue executor is not a faithful drop-in for the lock
// manager under that fault pattern.
func ExecModeEquivalence(spec Spec, scheds []Schedule) ([]*Result, error) {
	if len(scheds) == 0 {
		return nil, fmt.Errorf("chaos: no schedules")
	}
	results := make([]*Result, 0, 2*len(scheds))
	var ref *Result
	for _, mode := range []string{engine.ExecModeLock, engine.ExecModeQueue} {
		ms := spec
		ms.ExecMode = mode
		for _, sched := range scheds {
			res, err := Run(ms, sched)
			if err != nil {
				return results, err
			}
			results = append(results, res)
			if ref == nil {
				ref = res
				continue
			}
			if err := equivalent(ref, res); err != nil {
				return results, err
			}
		}
	}
	return results, nil
}

// equivalent compares two quiesced runs of the same spec.
func equivalent(a, b *Result) error {
	mismatch := func(what string, av, bv interface{}) error {
		return fmt.Errorf("chaos: DIVERGENCE %v: %s differs under %v vs %v: %v vs %v (reproduce with seeds %d, %d)",
			a.Spec, what, a.Schedule, b.Schedule, av, bv, a.Schedule.Seed, b.Schedule.Seed)
	}
	if a.Fingerprint != b.Fingerprint {
		return mismatch("cluster fingerprint", fmt.Sprintf("%x", a.Fingerprint), fmt.Sprintf("%x", b.Fingerprint))
	}
	if len(a.Nodes) != len(b.Nodes) {
		return mismatch("node count", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		an, bn := a.Nodes[i], b.Nodes[i]
		if an.Store != bn.Store {
			return mismatch(fmt.Sprintf("node %d store digest", an.Node),
				fmt.Sprintf("%x", an.Store), fmt.Sprintf("%x", bn.Store))
		}
		if an.Fusion != bn.Fusion {
			return mismatch(fmt.Sprintf("node %d fusion table", an.Node),
				fmt.Sprintf("%x", an.Fusion), fmt.Sprintf("%x", bn.Fusion))
		}
		if an.Records != bn.Records || an.Bytes != bn.Bytes {
			return mismatch(fmt.Sprintf("node %d usage", an.Node),
				fmt.Sprintf("%d rec/%d B", an.Records, an.Bytes),
				fmt.Sprintf("%d rec/%d B", bn.Records, bn.Bytes))
		}
	}
	if a.Records != b.Records || a.Bytes != b.Bytes {
		return mismatch("storage totals",
			fmt.Sprintf("%d rec/%d B", a.Records, a.Bytes),
			fmt.Sprintf("%d rec/%d B", b.Records, b.Bytes))
	}
	if a.Committed != b.Committed || a.Aborted != b.Aborted {
		return mismatch("commit/abort counts",
			fmt.Sprintf("%d/%d", a.Committed, a.Aborted),
			fmt.Sprintf("%d/%d", b.Committed, b.Aborted))
	}
	return nil
}
