// Disk-fault schedules: each node carries a shadow delivery journal over a
// fault-injecting in-memory filesystem (diskio.MemFS), so the real journal
// code path — CRC framing, torn-append repair, group-commit fsync, ack
// gating — runs against torn writes, short writes, and failed fsyncs while
// the cluster executes a live chaos workload. The equivalence suite then
// asserts the usual property: none of it may perturb the deterministic
// state machine.
//
// On top of live injection, the shadows support an offline crash check: at
// each scheduled node crash (for the victim) and at end of run (for every
// node), the journal file is snapshotted, fed through MemFS's power-cut
// model (un-fsynced suffix torn at a seeded point, surviving bytes
// bit-flipped), and re-opened by the real recovery path. Recovery must
// succeed, must keep at least every frame whose ack was released through
// the durability gate, and must replay a strict prefix of what was
// appended — frame for frame.
//
// SyncLieProb is deliberately absent from these schedules: a device that
// acknowledges fsyncs it never performed legitimately breaks the
// acked ⇒ recovered invariant (that is the point of the fault), so it is
// covered by a targeted diskio unit test rather than an equivalence gate.
package chaos

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/diskio"
	"hermes/internal/network"
	"hermes/internal/tx"
)

// DiskFaults parameterizes the per-node shadow journals. Probabilities are
// per-operation on the node's seeded MemFS; the zero value injects nothing
// (the shadows still run, exercising the clean journal path).
type DiskFaults struct {
	// Policy is the shadows' fsync policy ("" = batch, the group-commit
	// path). Under "none" no durability is promised, so the offline crash
	// check's acked-frame floor degenerates to zero.
	Policy network.SyncPolicy
	// Torn is the probability a write persists a prefix and errors —
	// exercising Journal.Append's truncate-and-rewrite repair.
	Torn float64
	// Short is the probability a write persists a strict prefix and
	// returns short with no error (repaired inside diskio.WriteFull).
	Short float64
	// SyncFail is the probability an fsync fails — the group commit must
	// withhold the gated acks and retry.
	SyncFail float64
	// BitFlip is the per-byte probability that bytes surviving past the
	// durable watermark of a simulated power cut are silently corrupted;
	// the CRC layer must refuse them at recovery.
	BitFlip float64
}

// policy returns the effective fsync policy for the shadows.
func (d DiskFaults) policy() network.SyncPolicy {
	if d.Policy == "" {
		return network.SyncBatch
	}
	return d.Policy
}

// DiskFaultSchedules returns the storage-fault schedules of the
// equivalence suite, all derived from seed: torn/short writes on the
// append path, failed fsyncs under group commit, and crash bit-flips on
// the recovery path — each combined with a mid-run node crash so the
// shadow journals are verified at a live kill point, not just at
// quiescence. All require the reliable layer (the shadows hang off it).
func DiskFaultSchedules(seed int64) []Schedule {
	return []Schedule{
		{Name: "disk-torn-write", Seed: seed + 30, Jitter: 200 * time.Microsecond,
			Disk:    &DiskFaults{Torn: 0.08, Short: 0.08, BitFlip: 0.1},
			Crashes: []Crash{{Node: 1, AfterFrac: 0.4, Downtime: 20 * time.Millisecond}}},
		{Name: "disk-bitflip", Seed: seed + 31, Jitter: 200 * time.Microsecond,
			Disk:    &DiskFaults{BitFlip: 0.3},
			Crashes: []Crash{{Node: 2, AfterFrac: 0.5, Downtime: 20 * time.Millisecond}}},
		{Name: "disk-fsync-fail", Seed: seed + 32, Jitter: 200 * time.Microsecond,
			Disk:    &DiskFaults{SyncFail: 0.25, Torn: 0.03, BitFlip: 0.1},
			Crashes: []Crash{{Node: 1, AfterFrac: 0.6, Downtime: 20 * time.Millisecond}}},
	}
}

// DiskStats aggregates what the shadow journals did and suffered during
// one run (summed over all nodes; zero unless Schedule.Disk is set).
type DiskStats struct {
	// Frames counts messages appended across all shadow journals.
	Frames int64
	// Writes/Fsyncs are the MemFS totals; TornWrites, ShortWrites and
	// SyncFails count the faults actually injected.
	Writes, Fsyncs                     int64
	TornWrites, ShortWrites, SyncFails int64
	// AppendRetries counts torn appends the journal repaired in place.
	AppendRetries int64
	// CrashChecks counts offline crash-recovery verifications performed.
	CrashChecks int64
}

// shadowJournalFile mirrors the network package's on-disk journal name
// (the layout is the network journal's; chaos only chooses the directory).
const shadowJournalFile = "journal.log"

// shadowSet owns one shadow journal per node for a disk-fault run.
type shadowSet struct {
	sched   Schedule
	shadows map[tx.NodeID]*shadowJournal
}

// shadowJournal is one node's fault-injected delivery journal plus the
// in-memory mirror and ack watermark the offline crash check compares
// against. Lock order: mu → Journal.mu → MemFS.mu (the ack-gate callback
// touches only atomics, so the group-commit goroutine never takes mu).
type shadowJournal struct {
	node   tx.NodeID
	dir    string
	seed   int64 // schedule seed: crash-check seeds derive from it
	faults DiskFaults
	fs     *diskio.MemFS
	jr     *network.Journal

	mu     sync.Mutex
	mirror []network.Message // every frame appended, in journal order

	// acked is the highest frame count whose durability gate has released
	// (those frames were fsynced before their acks went out); checks
	// counts offline crash verifications.
	acked  atomic.Uint64
	checks atomic.Int64
}

// newShadowSet builds the per-node shadow journals for sched.
func newShadowSet(sched Schedule, ids []tx.NodeID) (*shadowSet, error) {
	set := &shadowSet{sched: sched, shadows: make(map[tx.NodeID]*shadowJournal, len(ids))}
	for _, n := range ids {
		sh, err := newShadowJournal(sched, n)
		if err != nil {
			set.Close()
			return nil, err
		}
		set.shadows[n] = sh
	}
	return set, nil
}

func newShadowJournal(sched Schedule, node tx.NodeID) (*shadowJournal, error) {
	d := *sched.Disk
	sh := &shadowJournal{
		node:   node,
		dir:    fmt.Sprintf("/shadow/node%d", node),
		seed:   sched.Seed,
		faults: d,
		fs: diskio.NewMemFS(diskio.FaultSpec{
			Seed:           int64(mixSeed(sched.Seed, uint64(node), 0x5AD0)),
			TornWriteProb:  d.Torn,
			ShortWriteProb: d.Short,
			SyncFailProb:   d.SyncFail,
		}),
	}
	// Opening consumes fault draws too (header write, baseline fsync), so
	// an unlucky seed can fail the first attempts; each retry starts from
	// a clean truncate. Exhausting the budget means the fault rates are
	// beyond what any journal could open under — report, don't wedge.
	var lastErr error
	for attempt := 0; attempt < 32; attempt++ {
		jr, err := network.OpenJournalWith(sh.dir, network.JournalOpts{FS: sh.fs, Policy: d.policy()})
		if err == nil {
			sh.jr = jr
			return sh, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("chaos: open shadow journal for node %d under %v: %w", node, sched, lastErr)
}

// journalFor is the engine.Config.JournalFor hook. The reliable layer
// also delivers for sequencer pseudo-nodes; those carry no shadow (nil
// sink), exactly like a cluster process's non-worker destinations.
func (s *shadowSet) journalFor(n tx.NodeID) func(network.Message) {
	sh := s.shadows[n]
	if sh == nil {
		return nil
	}
	return func(m network.Message) { sh.append(m) }
}

// ackGateFor is the engine.Config.AckGateFor hook.
func (s *shadowSet) ackGateFor(n tx.NodeID) func(func()) {
	sh := s.shadows[n]
	if sh == nil {
		return nil
	}
	return func(fn func()) { sh.gate(fn) }
}

// append journals one delivered message and mirrors it. Holding mu across
// both keeps the mirror index-aligned with the journal's frame order even
// while a verification snapshot runs concurrently.
//
// The in-process transport passes sealed batches by reference
// (Message.Batch, interface-typed procedures gob cannot frame); on a real
// wire a batch travels pre-encoded in Payload and the reference is never
// set. The shadow journals the wire-visible shape, so the reference is
// dropped — recovery comparison is over the framed header fields anyway.
func (sh *shadowJournal) append(m network.Message) {
	m.Batch = nil
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.jr.Append(m)
	sh.mirror = append(sh.mirror, m)
}

// gate routes an ack send through the journal's durability gate and
// records, once the gate releases, that every frame appended so far is
// durable — the floor the offline crash check holds recovery to.
func (sh *shadowJournal) gate(fn func()) {
	cnt := sh.jr.Count()
	sh.jr.AfterDurable(func() {
		for {
			old := sh.acked.Load()
			if cnt <= old || sh.acked.CompareAndSwap(old, cnt) {
				break
			}
		}
		fn()
	})
}

// verify runs the offline crash check against the journal's current
// contents: simulate a power cut at the MemFS durable watermark (with
// seeded tearing and bit-flips beyond it), re-open through the real
// recovery path, and hold the result to the durability contract.
func (sh *shadowJournal) verify(round int) error {
	// Read the ack watermark before snapshotting: acks only grow, and the
	// durable watermark at snapshot time covers everything acked earlier,
	// so the ordering can never manufacture a false violation.
	acked := sh.acked.Load()
	if sh.faults.policy() == network.SyncNone {
		acked = 0 // nothing was ever promised durable
	}
	path := filepath.Join(sh.dir, shadowJournalFile)
	sh.mu.Lock()
	data, _, err := sh.fs.SnapshotFile(path)
	durable := sh.fs.DurableLen(path)
	mirror := append([]network.Message(nil), sh.mirror...)
	sh.mu.Unlock()
	if err != nil {
		return fmt.Errorf("chaos: snapshot shadow journal for node %d: %w", sh.node, err)
	}
	sh.checks.Add(1)
	return verifyCrashSnapshot(crashVerifyInput{
		node:      sh.node,
		dir:       sh.dir,
		data:      data,
		durable:   durable,
		mirror:    mirror,
		acked:     acked,
		bitFlip:   sh.faults.BitFlip,
		crashSeed: int64(mixSeed(sh.seed, uint64(sh.node), uint64(0xC4A5+round))),
	})
}

// crashVerifyInput is one offline crash-recovery check, fully decoupled
// from the live shadow so negative tests can feed damaged snapshots.
type crashVerifyInput struct {
	node      tx.NodeID
	dir       string
	data      []byte            // journal file contents at the cut
	durable   int               // byte watermark fsync had made stable
	mirror    []network.Message // every frame ever appended, in order
	acked     uint64            // frames whose durability gate released
	bitFlip   float64           // per-byte corruption odds past durable
	crashSeed int64             // seeds the tear point and the flips
}

// verifyCrashSnapshot pushes the snapshot through MemFS's power-cut model
// and the real journal recovery, then asserts the durability contract:
// recovery succeeds (damage is repaired or quarantined, never fatal),
// keeps every acked frame, and yields a strict prefix of the appended
// stream with every surviving frame field-identical to what was written.
func verifyCrashSnapshot(in crashVerifyInput) error {
	cfs := diskio.NewMemFS(diskio.FaultSpec{Seed: in.crashSeed, CrashBitFlipProb: in.bitFlip})
	path := filepath.Join(in.dir, shadowJournalFile)
	cfs.Install(path, in.data, in.durable)
	cfs.Crash()
	jr, err := network.OpenJournalWith(in.dir, network.JournalOpts{FS: cfs, Policy: network.SyncNone})
	if err != nil {
		return fmt.Errorf("chaos: node %d journal did not survive crash recovery (seed=%d): %w",
			in.node, in.crashSeed, err)
	}
	rec := jr.Recovered()
	jr.Close()
	if uint64(len(rec)) < in.acked {
		return fmt.Errorf("chaos: DURABILITY VIOLATION on node %d: crash recovery kept %d frames but %d were acked durable (seed=%d)",
			in.node, len(rec), in.acked, in.crashSeed)
	}
	if len(rec) > len(in.mirror) {
		return fmt.Errorf("chaos: node %d crash recovery yielded %d frames but only %d were ever appended (seed=%d)",
			in.node, len(rec), len(in.mirror), in.crashSeed)
	}
	for i, m := range rec {
		w := in.mirror[i]
		if m.From != w.From || m.To != w.To || m.Type != w.Type || m.Txn != w.Txn ||
			m.Seq != w.Seq || m.Link != w.Link || m.Inc != w.Inc {
			return fmt.Errorf("chaos: node %d frame %d diverges after crash recovery (seed=%d): got {from=%d to=%d type=%d txn=%v seq=%d link=%d inc=%d}, want {from=%d to=%d type=%d txn=%v seq=%d link=%d inc=%d}",
				in.node, i, in.crashSeed,
				m.From, m.To, m.Type, m.Txn, m.Seq, m.Link, m.Inc,
				w.From, w.To, w.Type, w.Txn, w.Seq, w.Link, w.Inc)
		}
	}
	return nil
}

// verify runs the offline crash check for one node, rounds times with
// distinct seeds (distinct tear points and flip patterns).
func (s *shadowSet) verify(n tx.NodeID, rounds int) error {
	sh := s.shadows[n]
	if sh == nil {
		return fmt.Errorf("chaos: no shadow journal for node %d", n)
	}
	for r := 0; r < rounds; r++ {
		if err := sh.verify(r); err != nil {
			return err
		}
	}
	return nil
}

// verifyAll runs the offline crash check for every node, in node order so
// a multi-node failure always reports the same first violation.
func (s *shadowSet) verifyAll(rounds int) error {
	nodes := make([]tx.NodeID, 0, len(s.shadows))
	for n := range s.shadows {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		if err := s.verify(n, rounds); err != nil {
			return err
		}
	}
	return nil
}

// stats sums the shadows' fault and activity counters.
func (s *shadowSet) stats() DiskStats {
	var d DiskStats
	for _, sh := range s.shadows {
		ms := sh.fs.Stats()
		js := sh.jr.Stats()
		d.Frames += int64(sh.jr.Count())
		d.Writes += ms.Writes
		d.Fsyncs += ms.Syncs
		d.TornWrites += ms.TornWrites
		d.ShortWrites += ms.ShortWrites
		d.SyncFails += ms.SyncFails
		d.AppendRetries += js.AppendRetries
		d.CrashChecks += sh.checks.Load()
	}
	return d
}

// Close shuts every shadow journal down (final group commit included).
func (s *shadowSet) Close() {
	for _, sh := range s.shadows {
		if sh.jr != nil {
			sh.jr.Close()
		}
	}
}

// mixSeed derives an independent deterministic seed from the schedule
// seed and a per-use salt (splitmix64 finalizer, like linkRand).
func mixSeed(seed int64, a, b uint64) uint64 {
	z := uint64(seed) ^ a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
