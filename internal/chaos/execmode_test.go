package chaos

import (
	"strings"
	"testing"
)

// TestExecModeEquivalenceAllPolicies is the queue-execution acceptance
// property (the named exec-equivalence CI gate): for every routing policy,
// the queue-oriented executor must quiesce to node digests byte-identical
// to the conservative lock manager — under a fault-free baseline, under a
// jittery in-contract schedule, and under the lossy + mid-run-crash
// schedule. It must NOT be skipped under -short (the gate pins it by
// name); -short trims the policy set instead.
func TestExecModeEquivalenceAllPolicies(t *testing.T) {
	policies := Policies()
	if testing.Short() {
		policies = []string{"hermes", "calvin"}
	}
	base := Schedules(7270)
	lossy := LossySchedules(7270)
	// baseline + mixed (jitter/spikes/partitions) + drops + lossy-crash.
	scheds := []Schedule{base[0], base[4], lossy[0], lossy[2]}
	for _, pol := range policies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Policy: pol, Workload: WorkloadYCSB, Nodes: 3, Txns: 64, Batch: 8, Seed: 606}
			results, err := ExecModeEquivalence(spec, scheds)
			if err != nil {
				t.Fatal(err)
			}
			if want := 2 * len(scheds); len(results) != want {
				t.Fatalf("got %d results, want %d", len(results), want)
			}
			// Both halves must have executed the crash cycle and recovered
			// real message loss, or the queue mode was never exercised
			// under faults.
			for half, offset := range map[string]int{"lock": 0, "queue": len(scheds)} {
				var sawDrop, sawCrash bool
				for _, r := range results[offset : offset+len(scheds)] {
					if r.Dropped > 0 && r.Retransmits > 0 {
						sawDrop = true
					}
					if r.Crashes > 0 {
						sawCrash = true
					}
				}
				if !sawDrop || !sawCrash {
					t.Errorf("%s-mode runs under-exercised: drop=%v crash=%v", half, sawDrop, sawCrash)
				}
			}
		})
	}
}

// TestExecModeEquivalenceLeaderKill extends the cross-mode check to
// sequencer-leader death: a failover mid-run must not open any daylight
// between the two execution modes.
func TestExecModeEquivalenceLeaderKill(t *testing.T) {
	scheds := append([]Schedule{{Name: "baseline", Seed: 8280}}, LeaderKillSchedules(8280)...)
	for _, pol := range []string{"hermes", "calvin"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{
				Policy: pol, Workload: WorkloadYCSB,
				Nodes: 3, Txns: 64, Batch: 8, Seed: 707,
				SeqStandbys: 2,
			}
			results, err := ExecModeEquivalence(spec, scheds)
			if err != nil {
				t.Fatal(err)
			}
			var failovers int64
			for _, r := range results {
				failovers += r.Failovers
			}
			if failovers == 0 {
				t.Error("no failovers executed; the leader-kill schedules did not fire")
			}
		})
	}
}

// TestExecModeEquivalenceInserts covers the inserting workload (TPC-C
// New-Order grows the database) so queue mode is proven on key sets that
// did not exist at load time.
func TestExecModeEquivalenceInserts(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix only")
	}
	scheds := Schedules(9290)[:2] // baseline + jitter
	spec := Spec{Policy: "hermes", Workload: WorkloadTPCC, Nodes: 2, Txns: 48, Batch: 8, Seed: 17}
	if _, err := ExecModeEquivalence(spec, scheds); err != nil {
		t.Fatal(err)
	}
}

// TestSpecStringIncludesExecMode pins the reproduction line: a divergence
// report must say which execution mode the failing run used.
func TestSpecStringIncludesExecMode(t *testing.T) {
	s := Spec{Policy: "hermes", ExecMode: "queue"}
	if got := s.String(); !strings.Contains(got, "exec=queue") {
		t.Fatalf("Spec.String() = %q, want exec=queue tag", got)
	}
	if got := (Spec{Policy: "hermes"}).String(); strings.Contains(got, "exec=") {
		t.Fatalf("Spec.String() = %q, unexpected exec tag for default mode", got)
	}
}
