// Package chaos provides deterministic adversarial-timing tooling for the
// engine: a seeded fault-injecting network.Transport wrapper and an
// equivalence harness (harness.go) that runs the same totally ordered
// workload under many fault schedules and asserts byte-identical final
// state. The whole value proposition of a deterministic database is that
// message timing must not matter (PAPER.md, Algorithm 1); this package is
// the tooling that lets refactors of the hot paths prove they kept that
// property.
//
// Every fault the wrapper injects preserves the Transport contract: links
// stay FIFO per (from, to) pair, and no message is ever dropped or
// duplicated — delays, spikes, partitions, and throttling only stretch
// time. A schedule is fully determined by its seed: each link draws its
// fault sequence from its own PRNG (seeded from the schedule seed and the
// link endpoints) in message order, so a logged seed reproduces the exact
// per-link fault pattern regardless of goroutine interleaving.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/clock"
	"hermes/internal/network"
	"hermes/internal/tx"
)

// Schedule describes one deterministic fault schedule. The zero value
// injects no faults (a pass-through wrapper).
type Schedule struct {
	// Name labels the schedule in harness failure reports.
	Name string
	// Seed determines every random draw; identical seeds reproduce the
	// identical per-link fault pattern.
	Seed int64

	// Jitter adds a uniform per-message latency in [0, Jitter).
	Jitter time.Duration
	// SpikeProb is the per-message probability of a bounded delay spike
	// of uniform magnitude in [0, SpikeDelay).
	SpikeProb  float64
	SpikeDelay time.Duration
	// PartitionProb is the per-message probability that the link drops
	// into a transient partition for a uniform duration in
	// [0, PartitionDur). Messages sent meanwhile queue behind the outage
	// and redeliver in order once it heals (head-of-line blocking, as on
	// a real reconnecting link).
	PartitionProb float64
	PartitionDur  time.Duration
	// BytesPerSecond throttles each link's bandwidth; a message of n
	// wire bytes occupies the link for n/BytesPerSecond (0 = unlimited).
	BytesPerSecond float64

	// DropProb is the per-message probability that the link silently
	// discards a message; DupProb the probability that it delivers one
	// twice. Both break the base Transport contract, so schedules using
	// them require the engine's reliable-delivery layer (RequiresReliable)
	// to restore exactly-once in-order delivery above the faulty link.
	DropProb float64
	DupProb  float64
	// Crashes lists node kill/restart events the harness executes during
	// the run. They also require the reliable layer (the delivery log is
	// what the restarted node replays).
	Crashes []Crash
	// LeaderKills lists sequencer-leader kill/restart events: the current
	// leader is crashed, a standby promotes itself, and the killed replica
	// restarts as a standby of the new epoch. They require the reliable
	// layer and a cluster with sequencer standbys (Spec.SeqStandbys).
	LeaderKills []LeaderKill

	// Disk, when set, runs every node's delivery journal over a
	// fault-injecting in-memory filesystem (torn writes, short writes,
	// failed fsyncs) and verifies crash recovery of the journal at each
	// node-crash event and at end of run (see disk.go). Requires the
	// reliable layer (the journal hooks hang off it).
	Disk *DiskFaults
}

// Crash is one seeded node kill: the victim is killed once its scheduler
// has consumed AfterFrac of the run's batches, stays down for Downtime,
// then restarts and replays. The trigger is a point in the deterministic
// batch stream, so "when" a crash hits is reproducible even though the
// kill itself is wall-clock asynchronous.
type Crash struct {
	// Node indexes the victim (modulo the cluster size).
	Node int
	// AfterFrac in [0,1) positions the kill within the batch stream.
	AfterFrac float64
	// Downtime is how long the node stays dead before restarting.
	Downtime time.Duration
}

// LeaderKill is one seeded kill of the total-order leader: once node 0's
// scheduler has consumed AfterFrac of the run's batches, the harness
// crashes the current sequencer leader, waits Downtime, and restarts the
// killed replica once a standby has taken over. Like Crash, the trigger
// is a point in the deterministic batch stream.
type LeaderKill struct {
	// AfterFrac in [0,1) positions the kill within the batch stream.
	AfterFrac float64
	// Downtime is how long the killed replica stays dead before it
	// restarts and rejoins as a standby.
	Downtime time.Duration
}

// String summarizes the schedule for failure reports.
func (s Schedule) String() string {
	return fmt.Sprintf("%s(seed=%d)", s.Name, s.Seed)
}

// faulty reports whether the schedule injects anything at the transport.
func (s Schedule) faulty() bool {
	return s.Jitter > 0 || s.SpikeProb > 0 || s.PartitionProb > 0 ||
		s.BytesPerSecond > 0 || s.DropProb > 0 || s.DupProb > 0
}

// RequiresReliable reports whether the schedule's faults exceed what the
// base Transport contract tolerates: message loss, duplication, or node
// crashes all need the engine's reliable-delivery layer underneath.
func (s Schedule) RequiresReliable() bool {
	return s.DropProb > 0 || s.DupProb > 0 || len(s.Crashes) > 0 || len(s.LeaderKills) > 0 ||
		s.Disk != nil
}

// Schedules returns the standard matrix of distinct fault schedules used
// by the equivalence suite, all derived from seed: a fault-free baseline,
// pure jitter, delay spikes, transient partitions, and a mixed schedule
// with bandwidth throttling. The magnitudes are scaled for unit tests
// (microseconds to a few milliseconds) so a full matrix stays fast.
func Schedules(seed int64) []Schedule {
	return []Schedule{
		{Name: "baseline", Seed: seed},
		{Name: "jitter", Seed: seed + 1, Jitter: 2 * time.Millisecond},
		{Name: "spikes", Seed: seed + 2, Jitter: 200 * time.Microsecond,
			SpikeProb: 0.05, SpikeDelay: 8 * time.Millisecond},
		{Name: "partitions", Seed: seed + 3, Jitter: 100 * time.Microsecond,
			PartitionProb: 0.02, PartitionDur: 20 * time.Millisecond},
		{Name: "mixed", Seed: seed + 4, Jitter: time.Millisecond,
			SpikeProb: 0.03, SpikeDelay: 5 * time.Millisecond,
			PartitionProb: 0.01, PartitionDur: 10 * time.Millisecond,
			BytesPerSecond: 4 << 20},
	}
}

// LossySchedules returns the fault schedules that exceed the base
// Transport contract — drops, duplicates, and a combined
// drop+duplicate+mid-run-crash schedule — all requiring the reliable
// layer. They extend Schedules(seed) in the equivalence suite: every run
// must still reach state byte-identical to the fault-free baseline.
func LossySchedules(seed int64) []Schedule {
	return []Schedule{
		{Name: "drops", Seed: seed + 10, Jitter: 300 * time.Microsecond,
			DropProb: 0.05},
		{Name: "dups", Seed: seed + 11, Jitter: 300 * time.Microsecond,
			DupProb: 0.08},
		{Name: "lossy-crash", Seed: seed + 12, Jitter: 200 * time.Microsecond,
			DropProb: 0.03, DupProb: 0.03,
			Crashes: []Crash{{Node: 1, AfterFrac: 0.4, Downtime: 30 * time.Millisecond}}},
	}
}

// LeaderKillSchedules returns the fault schedules that kill the
// total-order leader mid-run: once on an otherwise clean network, and
// once combined with the full lossy + worker-crash pattern — the
// harshest schedule in the suite, where the reliable layer, the worker
// replay path, and the sequencer failover protocol all fire in the same
// run. Both must still quiesce byte-identical to the fault-free
// baseline.
func LeaderKillSchedules(seed int64) []Schedule {
	return []Schedule{
		{Name: "leader-kill", Seed: seed + 20, Jitter: 200 * time.Microsecond,
			LeaderKills: []LeaderKill{{AfterFrac: 0.4, Downtime: 20 * time.Millisecond}}},
		{Name: "leader-kill-lossy-crash", Seed: seed + 21, Jitter: 200 * time.Microsecond,
			DropProb: 0.03, DupProb: 0.03,
			Crashes:     []Crash{{Node: 1, AfterFrac: 0.3, Downtime: 30 * time.Millisecond}},
			LeaderKills: []LeaderKill{{AfterFrac: 0.6, Downtime: 20 * time.Millisecond}}},
	}
}

// Transport wraps an inner transport with seeded fault injection. It is
// safe for concurrent Send and preserves per-link FIFO order: every
// cross-node message funnels through its link's single delivery
// goroutine, which applies the link's fault sequence in message order.
type Transport struct {
	inner network.Transport
	sched Schedule
	clk   clock.Clock

	mu     sync.Mutex
	links  map[[2]tx.NodeID]*faultLink
	closed bool

	quit chan struct{}
	wg   sync.WaitGroup

	faults  atomic.Int64 // messages that received a non-zero delay
	delayed atomic.Int64 // total injected delay, ns
	dropped atomic.Int64 // messages silently discarded
	dupped  atomic.Int64 // messages delivered twice
}

type faultLink struct {
	ch chan network.Message
}

// Wrap builds a fault-injecting wrapper around inner. clk may be nil for
// the wall clock. Local sends (From == To) and fault-free schedules pass
// straight through.
func Wrap(inner network.Transport, sched Schedule, clk clock.Clock) *Transport {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Transport{
		inner: inner,
		sched: sched,
		clk:   clk,
		links: make(map[[2]tx.NodeID]*faultLink),
		quit:  make(chan struct{}),
	}
}

// Schedule returns the wrapper's fault schedule.
func (t *Transport) Schedule() Schedule { return t.sched }

// Faults reports how many messages received an injected delay and the
// total injected delay so far — harness sanity checks use it to prove a
// schedule actually exercised the system.
func (t *Transport) Faults() (messages int64, totalDelay time.Duration) {
	return t.faults.Load(), time.Duration(t.delayed.Load())
}

// Loss reports how many messages the schedule discarded and duplicated.
func (t *Transport) Loss() (dropped, dupped int64) {
	return t.dropped.Load(), t.dupped.Load()
}

// Send implements network.Transport.
func (t *Transport) Send(m network.Message) error {
	if m.From == m.To || !t.sched.faulty() {
		return t.inner.Send(m)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("chaos: transport closed")
	}
	lk := t.links[[2]tx.NodeID{m.From, m.To}]
	if lk == nil {
		lk = &faultLink{ch: make(chan network.Message, 8192)}
		t.links[[2]tx.NodeID{m.From, m.To}] = lk
		t.wg.Add(1)
		go t.deliverLoop(lk, linkRand(t.sched.Seed, m.From, m.To))
	}
	t.mu.Unlock()
	select {
	case lk.ch <- m:
		return nil
	case <-t.quit:
		return fmt.Errorf("chaos: transport closed")
	}
}

// deliverLoop applies the link's fault sequence in message order. The
// PRNG is owned by this goroutine and consumed strictly in per-link
// message order, so the fault pattern depends only on (seed, link,
// message index) — never on cross-link goroutine interleaving.
func (t *Transport) deliverLoop(lk *faultLink, rng *rand.Rand) {
	defer t.wg.Done()
	for {
		select {
		case <-t.quit:
			return
		case m := <-lk.ch:
			if d := t.delayFor(rng, m.WireSize()); d > 0 {
				t.faults.Add(1)
				t.delayed.Add(int64(d))
				t.sleep(d)
			}
			drop, dup := t.lossFor(rng)
			if drop {
				t.dropped.Add(1)
				continue
			}
			// Send errors only when the inner transport has closed
			// mid-shutdown; nothing useful to do with them here.
			_ = t.inner.Send(m)
			if dup {
				t.dupped.Add(1)
				_ = t.inner.Send(m)
			}
		}
	}
}

// delayFor draws the next message's injected delay from the link PRNG.
// Draw order is fixed (jitter, spike, partition) so the consumed random
// stream — and therefore every later draw — is identical across runs.
func (t *Transport) delayFor(rng *rand.Rand, wireBytes int) time.Duration {
	s := t.sched
	var d time.Duration
	if s.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(s.Jitter)))
	}
	if s.SpikeProb > 0 && rng.Float64() < s.SpikeProb && s.SpikeDelay > 0 {
		d += time.Duration(rng.Int63n(int64(s.SpikeDelay)))
	}
	if s.PartitionProb > 0 && rng.Float64() < s.PartitionProb && s.PartitionDur > 0 {
		// The link goes down: this and all queued messages wait out the
		// outage, then redeliver in order.
		d += time.Duration(rng.Int63n(int64(s.PartitionDur)))
	}
	if s.BytesPerSecond > 0 {
		d += time.Duration(float64(wireBytes) / s.BytesPerSecond * float64(time.Second))
	}
	return d
}

// lossFor draws the next message's drop/duplicate fate. The draws are
// guarded so schedules without loss consume exactly the random stream
// they always did — legacy schedules reproduce their historical fault
// patterns bit-for-bit.
func (t *Transport) lossFor(rng *rand.Rand) (drop, dup bool) {
	s := t.sched
	if s.DropProb > 0 {
		drop = rng.Float64() < s.DropProb
	}
	if s.DupProb > 0 {
		dup = rng.Float64() < s.DupProb
	}
	return drop, dup
}

// sleep waits d on the injected clock but returns early on shutdown.
func (t *Transport) sleep(d time.Duration) {
	done := make(chan struct{})
	go func() {
		t.clk.Sleep(d)
		close(done)
	}()
	select {
	case <-done:
	case <-t.quit:
	}
}

// Recv implements network.Transport.
func (t *Transport) Recv(node tx.NodeID) <-chan network.Message {
	return t.inner.Recv(node)
}

// Close implements network.Transport. Messages still queued behind an
// outage are dropped (the cluster is stopping), then the inner transport
// is closed.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.quit)
	t.wg.Wait()
	t.inner.Close()
}

// linkRand derives the per-link PRNG: a splitmix64-style mix of the
// schedule seed and both endpoints, so every link gets an independent but
// fully reproducible stream.
func linkRand(seed int64, from, to tx.NodeID) *rand.Rand {
	z := uint64(seed) ^ uint64(from)*0x9E3779B97F4A7C15 ^ uint64(to)*0xC2B2AE3D27D4EB4F
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}
