package chaos

import (
	"testing"
	"time"

	"hermes/internal/network"
	"hermes/internal/tx"
)

func testNodes(n int) []tx.NodeID {
	out := make([]tx.NodeID, n)
	for i := range out {
		out[i] = tx.NodeID(i)
	}
	return out
}

// faultySchedule is a small-magnitude schedule exercising every fault
// class, fast enough for unit tests.
func faultySchedule(seed int64) Schedule {
	return Schedule{
		Name: "all-faults", Seed: seed,
		Jitter:        50 * time.Microsecond,
		SpikeProb:     0.1, SpikeDelay: 300 * time.Microsecond,
		PartitionProb: 0.05, PartitionDur: 500 * time.Microsecond,
		BytesPerSecond: 32 << 20,
	}
}

// TestFIFOPreservedUnderFaults: the core contract — whatever the schedule
// does to timing, per-link order must survive.
func TestFIFOPreservedUnderFaults(t *testing.T) {
	inner := network.NewChanTransport(testNodes(2), nil)
	tr := Wrap(inner, faultySchedule(42), nil)
	defer tr.Close()
	const n = 300
	for i := 0; i < n; i++ {
		if err := tr.Send(network.Message{From: 0, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-tr.Recv(1):
			if m.Seq != uint64(i) {
				t.Fatalf("out of order under faults: got %d, want %d", m.Seq, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never delivered", i)
		}
	}
	if msgs, delay := tr.Faults(); msgs == 0 || delay == 0 {
		t.Fatalf("schedule injected nothing: %d msgs, %v delay", msgs, delay)
	}
}

// TestScheduleReproducible: the same seed must inject the identical total
// delay over the identical message sequence — the property that makes a
// logged seed reproduce a failing run.
func TestScheduleReproducible(t *testing.T) {
	run := func() time.Duration {
		inner := network.NewChanTransport(testNodes(3), nil)
		tr := Wrap(inner, faultySchedule(7), nil)
		defer tr.Close()
		const n = 150
		for i := 0; i < n; i++ {
			to := tx.NodeID(1 + i%2)
			if err := tr.Send(network.Message{From: 0, To: to, Seq: uint64(i), Payload: make([]byte, i%97)}); err != nil {
				t.Fatal(err)
			}
		}
		got := 0
		for got < n {
			select {
			case <-tr.Recv(1):
				got++
			case <-tr.Recv(2):
				got++
			case <-time.After(5 * time.Second):
				t.Fatalf("stalled after %d deliveries", got)
			}
		}
		_, delay := tr.Faults()
		return delay
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed injected different delay: %v vs %v", a, b)
	}
}

// TestBaselinePassThrough: a zero schedule must not perturb or count
// anything, and local sends always bypass injection.
func TestBaselinePassThrough(t *testing.T) {
	inner := network.NewChanTransport(testNodes(2), nil)
	tr := Wrap(inner, Schedule{Name: "baseline", Seed: 1}, nil)
	defer tr.Close()
	if err := tr.Send(network.Message{From: 0, To: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(network.Message{From: 1, To: 1, Payload: []byte("local")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-tr.Recv(1):
		case <-time.After(time.Second):
			t.Fatal("message not delivered")
		}
	}
	if msgs, _ := tr.Faults(); msgs != 0 {
		t.Fatalf("baseline schedule injected %d faults", msgs)
	}
}

// TestCloseSafety: close with messages in flight must not hang or panic,
// send-after-close errors, and double close is a no-op.
func TestCloseSafety(t *testing.T) {
	inner := network.NewChanTransport(testNodes(2), nil)
	sched := Schedule{Name: "slow", Seed: 3, PartitionProb: 1, PartitionDur: time.Hour}
	tr := Wrap(inner, sched, nil)
	for i := 0; i < 10; i++ {
		if err := tr.Send(network.Message{From: 0, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		tr.Close()
		tr.Close() // double close safe
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind a partition")
	}
	if err := tr.Send(network.Message{From: 0, To: 1}); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// TestSchedulesDistinct: the standard matrix must contain a fault-free
// baseline plus genuinely distinct faulty schedules.
func TestSchedulesDistinct(t *testing.T) {
	scheds := Schedules(11)
	if len(scheds) < 5 {
		t.Fatalf("matrix too small: %d", len(scheds))
	}
	if scheds[0].faulty() {
		t.Fatal("first schedule should be the fault-free baseline")
	}
	names := map[string]bool{}
	for _, s := range scheds[1:] {
		if !s.faulty() {
			t.Fatalf("schedule %v injects nothing", s)
		}
		if names[s.Name] {
			t.Fatalf("duplicate schedule name %q", s.Name)
		}
		names[s.Name] = true
	}
}
