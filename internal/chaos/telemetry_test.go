package chaos

import (
	"testing"
)

// TestTelemetryEquivalence proves telemetry is a pure observer: every
// policy must quiesce to byte-identical state — fingerprint, per-node
// digests, storage totals, commit counts — with the lifecycle tracer and
// gauge registry fully on versus fully off, under a clean baseline
// schedule.
func TestTelemetryEquivalence(t *testing.T) {
	baseline := Schedules(41)[0]
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Policy: pol, Workload: WorkloadYCSB, Nodes: 3, Txns: 64, Batch: 8, Seed: 404}
			results, err := TelemetryEquivalence(spec, baseline)
			if err != nil {
				t.Fatal(err)
			}
			on := results[1]
			t.Logf("%s: traced %d events, %d metric samples", pol, on.Traced, on.MetricSamples)
		})
	}
}

// TestTelemetryEquivalenceLossyCrash is the hard case the acceptance
// criteria name: telemetry on vs off must stay byte-identical even when
// the schedule drops and duplicates messages AND kills + replays a node
// mid-run — the crash/replay trace markers and the recovering node's
// re-emitted lifecycle events must not leak into engine state.
func TestTelemetryEquivalenceLossyCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy-crash telemetry equivalence is a long test")
	}
	var lossyCrash *Schedule
	for _, s := range LossySchedules(41) {
		if len(s.Crashes) > 0 {
			s := s
			lossyCrash = &s
			break
		}
	}
	if lossyCrash == nil {
		t.Fatal("no lossy schedule with crashes found")
	}
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Policy: pol, Workload: WorkloadYCSB, Nodes: 3, Txns: 64, Batch: 8, Seed: 405}
			results, err := TelemetryEquivalence(spec, *lossyCrash)
			if err != nil {
				t.Fatal(err)
			}
			on := results[1]
			if on.Crashes == 0 {
				t.Fatalf("schedule %v executed no crashes — not exercising replay", lossyCrash)
			}
			t.Logf("%s: %d crashes, traced %d events", pol, on.Crashes, on.Traced)
		})
	}
}
