package chaos

import (
	"path/filepath"
	"strings"
	"testing"

	"hermes/internal/diskio"
	"hermes/internal/network"
	"hermes/internal/tx"
)

// TestDiskFaultEquivalence is the storage-fault acceptance property: with
// every node's delivery journal running over fault-injecting storage —
// torn writes, short writes, failed fsyncs — plus a mid-run node crash
// whose journal is pushed through the power-cut recovery model, every
// routing policy must still quiesce to state byte-identical to the
// fault-free baseline. The disk layer sits below determinism: it may slow
// acks down, it may never change what executes.
func TestDiskFaultEquivalence(t *testing.T) {
	policies := Policies()
	if testing.Short() {
		policies = []string{"hermes", "calvin"}
	}
	scheds := append([]Schedule{{Name: "baseline", Seed: 7170}}, DiskFaultSchedules(7170)...)
	for _, pol := range policies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Policy: pol, Workload: WorkloadYCSB, Nodes: 3, Txns: 64, Batch: 8, Seed: 505}
			results, err := Equivalence(spec, scheds)
			if err != nil {
				t.Fatal(err)
			}
			// Prove the schedules actually hurt the storage layer: the torn
			// schedule forced append repairs, the fsync-fail schedule failed
			// fsyncs, and every disk schedule journaled frames and ran the
			// offline crash check (once at the kill, twice per node at end).
			for _, r := range results[1:] {
				d := r.Schedule.Disk
				if d == nil {
					t.Fatalf("%v carries no disk faults", r.Schedule)
				}
				if r.Disk.Frames == 0 {
					t.Errorf("%v journaled no frames", r.Schedule)
				}
				wantChecks := int64(2*spec.Nodes + len(r.Schedule.Crashes))
				if r.Disk.CrashChecks < wantChecks {
					t.Errorf("%v ran %d crash checks, want >= %d", r.Schedule, r.Disk.CrashChecks, wantChecks)
				}
				if d.Torn > 0.05 && r.Disk.TornWrites == 0 {
					t.Errorf("%v injected no torn writes", r.Schedule)
				}
				if d.Torn > 0.05 && r.Disk.AppendRetries == 0 {
					t.Errorf("%v repaired no torn appends", r.Schedule)
				}
				if d.Short > 0 && r.Disk.ShortWrites == 0 {
					t.Errorf("%v injected no short writes", r.Schedule)
				}
				if d.SyncFail > 0 && r.Disk.SyncFails == 0 {
					t.Errorf("%v failed no fsyncs", r.Schedule)
				}
			}
		})
	}
}

// buildVerifiedJournal appends n frames to a journal over clean in-memory
// storage with fsync-always (every frame durable at return) and hands back
// the snapshot the offline crash check would take.
func buildVerifiedJournal(t *testing.T, dir string, n int) (data []byte, durable int, mirror []network.Message) {
	t.Helper()
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 1})
	jr, err := network.OpenJournalWith(dir, network.JournalOpts{FS: fs, Policy: network.SyncAlways})
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	for i := 0; i < n; i++ {
		m := network.Message{
			From: tx.NodeID(1 + i%2), To: 0, Type: network.MsgRecordPush,
			Txn: tx.TxnID(100 + i), Seq: uint64(i), Link: uint64(i/2 + 1), Inc: 1,
			Payload: []byte{byte(i), byte(i >> 8), 0xAB},
		}
		jr.Append(m)
		mirror = append(mirror, m)
	}
	if err := jr.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}
	path := filepath.Join(dir, shadowJournalFile)
	data, _, err = fs.SnapshotFile(path)
	if err != nil {
		t.Fatalf("snapshotting journal: %v", err)
	}
	return data, fs.DurableLen(path), mirror
}

// TestDiskCrashCheckCatchesDurablePrefixDamage proves the offline checker
// is not vacuous: an intact fully-durable journal passes it under heavy
// bit-flip odds (flips only ever target un-fsynced bytes, and there are
// none), while a single corrupted byte inside the durable prefix — damage
// the durability contract says cannot happen — makes it fail loudly.
func TestDiskCrashCheckCatchesDurablePrefixDamage(t *testing.T) {
	const frames = 12
	dir := "/neg/node0"
	data, durable, mirror := buildVerifiedJournal(t, dir, frames)
	if durable != len(data) {
		t.Fatalf("fsync-always journal not fully durable: %d of %d bytes", durable, len(data))
	}

	base := crashVerifyInput{
		node: 0, dir: dir, data: data, durable: durable,
		mirror: mirror, acked: frames, bitFlip: 0.5, crashSeed: 99,
	}
	if err := verifyCrashSnapshot(base); err != nil {
		t.Fatalf("intact durable journal failed the crash check: %v", err)
	}

	// Flip one bit in the middle of the durable region (past the 16-byte
	// file header, so the damage lands inside a frame, not the magic).
	damaged := base
	damaged.data = append([]byte(nil), data...)
	damaged.data[16+(len(data)-16)/2] ^= 0x40
	err := verifyCrashSnapshot(damaged)
	if err == nil {
		t.Fatal("crash check accepted a journal with corrupted durable bytes")
	}
	if !strings.Contains(err.Error(), "DURABILITY VIOLATION") &&
		!strings.Contains(err.Error(), "diverges") {
		t.Errorf("crash check failed for the wrong reason: %v", err)
	}

	// Truncating below the acked watermark — frames fsync promised —
	// must equally be refused.
	short := base
	short.data = data[:len(data)/2]
	short.durable = len(short.data)
	if err := verifyCrashSnapshot(short); err == nil {
		t.Fatal("crash check accepted a journal missing acked frames")
	} else if !strings.Contains(err.Error(), "DURABILITY VIOLATION") {
		t.Errorf("truncation failed for the wrong reason: %v", err)
	}
}

// TestDiskScheduleRequiresReliable pins the wiring invariant: a disk
// schedule must force the reliable layer on, because the journal and
// ack-gate hooks only exist there.
func TestDiskScheduleRequiresReliable(t *testing.T) {
	for _, sched := range DiskFaultSchedules(1) {
		if !sched.RequiresReliable() {
			t.Errorf("%v does not require the reliable layer", sched)
		}
	}
	if (Schedule{Disk: &DiskFaults{}}).RequiresReliable() != true {
		t.Error("bare disk schedule does not require the reliable layer")
	}
}

// TestDiskFaultExecModeEquivalence runs the harshest disk schedule in both
// execution modes: the queue executor must be a faithful drop-in for the
// lock manager even when every ack is gated behind faulty group commits.
func TestDiskFaultExecModeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-mode disk matrix skipped in -short mode")
	}
	scheds := []Schedule{{Name: "baseline", Seed: 8180}, DiskFaultSchedules(8180)[0]}
	spec := Spec{Policy: "hermes", Workload: WorkloadYCSB, Nodes: 3, Txns: 64, Batch: 8, Seed: 606}
	if _, err := ExecModeEquivalence(spec, scheds); err != nil {
		t.Fatal(err)
	}
}
