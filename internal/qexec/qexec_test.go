package qexec

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/lock"
	"hermes/internal/tx"
)

func newTest(t *testing.T, workers int) *Executor {
	t.Helper()
	e := New(Config{Workers: workers})
	t.Cleanup(e.Close)
	return e
}

func granted(g lock.Granted) bool {
	select {
	case <-g.Done():
		return true
	case <-time.After(2 * time.Second):
		return false
	}
}

func notGranted(g lock.Granted) bool {
	select {
	case <-g.Done():
		return false
	case <-time.After(20 * time.Millisecond):
		return true
	}
}

func TestZeroKeyGrantsImmediately(t *testing.T) {
	e := newTest(t, 2)
	g := e.Acquire(1, nil, nil)
	if !granted(g) {
		t.Fatal("empty key set not granted")
	}
	e.Release(1)
}

func TestExclusiveSerializesInTotalOrder(t *testing.T) {
	e := newTest(t, 3)
	g1 := e.Acquire(1, nil, []tx.Key{10})
	g2 := e.Acquire(2, nil, []tx.Key{10})
	if !granted(g1) {
		t.Fatal("first exclusive not granted")
	}
	if !notGranted(g2) {
		t.Fatal("second exclusive granted while first held")
	}
	e.Release(1)
	if !granted(g2) {
		t.Fatal("second exclusive not granted after release")
	}
	e.Release(2)
}

func TestSharedPrefixGrantedTogether(t *testing.T) {
	e := newTest(t, 2)
	e.Acquire(1, nil, []tx.Key{5})
	g2 := e.Acquire(2, []tx.Key{5}, nil)
	g3 := e.Acquire(3, []tx.Key{5}, nil)
	g4 := e.Acquire(4, nil, []tx.Key{5})
	e.Release(1)
	if !granted(g2) || !granted(g3) {
		t.Fatal("shared prefix not granted together after writer released")
	}
	if !notGranted(g4) {
		t.Fatal("writer granted alongside readers")
	}
	e.Release(2)
	e.Release(3)
	if !granted(g4) {
		t.Fatal("writer not granted after readers released")
	}
	e.Release(4)
}

func TestCrossBucketRendezvous(t *testing.T) {
	// With many workers, a multi-key transaction's keys land in different
	// buckets; the grant must only fire once every bucket has granted its
	// share.
	e := newTest(t, 8)
	keys := make([]tx.Key, 32)
	for i := range keys {
		keys[i] = tx.Key(i * 977)
	}
	g1 := e.Acquire(1, nil, keys[:1])
	g2 := e.Acquire(2, keys[1:16], keys[:1])
	g3 := e.Acquire(3, nil, keys)
	if !granted(g1) {
		t.Fatal("head not granted")
	}
	if !notGranted(g2) {
		t.Fatal("txn 2 granted while txn 1 holds a shared key")
	}
	e.Release(1)
	if !granted(g2) {
		t.Fatal("txn 2 not granted after rendezvous complete")
	}
	if !notGranted(g3) {
		t.Fatal("txn 3 granted while txn 2 holds overlapping keys")
	}
	e.Release(2)
	if !granted(g3) {
		t.Fatal("txn 3 not granted")
	}
	e.Release(3)
	if e.QueuedKeys() == 0 {
		return
	}
	// Releases are async; wait for the workers to drain.
	deadline := time.Now().Add(2 * time.Second)
	for e.QueuedKeys() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("QueuedKeys = %d after all releases", e.QueuedKeys())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKeyInBothSetsIsExclusive(t *testing.T) {
	e := newTest(t, 4)
	e.Acquire(1, []tx.Key{7}, []tx.Key{7})
	g2 := e.Acquire(2, []tx.Key{7}, nil)
	if !notGranted(g2) {
		t.Fatal("reader granted while read-write key held exclusively")
	}
	e.Release(1)
	if !granted(g2) {
		t.Fatal("reader blocked after release")
	}
	e.Release(2)
}

func TestInlineOnReadyRunsInAdmissionOrderPerKey(t *testing.T) {
	// Inline transactions on the same key must observe each other's writes
	// in total order even though they run on the worker goroutine.
	e := newTest(t, 4)
	const n = 200
	var mu sync.Mutex
	var order []int
	ops := make([]*Op, n)
	for i := 0; i < n; i++ {
		i := i
		id := tx.TxnID(i + 1)
		ops[i] = &Op{
			ID:   id,
			Excl: []tx.Key{42},
			OnReady: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				e.Release(id)
			},
		}
	}
	e.AdmitBatch(ops)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := len(order)
		mu.Unlock()
		if got == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d inline ops ran", got, n)
		}
		time.Sleep(time.Millisecond)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline op %d ran at position %d: per-key order violated", v, i)
		}
	}
}

func TestInlineAndGoroutinePathsShareKeyOrder(t *testing.T) {
	// Alternate inline and Done-channel transactions on one key; the
	// observed sequence must be the admission (total) order.
	e := newTest(t, 2)
	const n = 100
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	ops := make([]*Op, n)
	for i := 0; i < n; i++ {
		i := i
		id := tx.TxnID(i + 1)
		op := &Op{ID: id, Excl: []tx.Key{9}}
		if i%2 == 0 {
			op.OnReady = func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				e.Release(id)
			}
		}
		ops[i] = op
	}
	grants := e.AdmitBatch(ops)
	for i, g := range grants {
		if ops[i].OnReady != nil {
			continue
		}
		wg.Add(1)
		go func(i int, g lock.Granted) {
			defer wg.Done()
			<-g.Done()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			e.Release(g.ID())
		}(i, g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("goroutine-path transactions never granted")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := len(order)
		mu.Unlock()
		if got == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d ops ran", got, n)
		}
		time.Sleep(time.Millisecond)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("op %d observed at position %d: mixed-path key order violated", v, i)
		}
	}
}

func TestHoldingAndQueuedKeysDrain(t *testing.T) {
	e := newTest(t, 4)
	g := e.Acquire(1, []tx.Key{1, 2}, []tx.Key{3})
	if !granted(g) {
		t.Fatal("not granted")
	}
	if !e.Holding(1) {
		t.Fatal("Holding false while admitted")
	}
	e.Release(1)
	if e.Holding(1) {
		t.Fatal("Holding true after release")
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.QueuedKeys() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("QueuedKeys = %d after release", e.QueuedKeys())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	e := newTest(t, 2)
	e.Release(42)
	if e.QueuedKeys() != 0 {
		t.Fatal("phantom queue after releasing unknown txn")
	}
}

func TestDuplicateAdmitPanics(t *testing.T) {
	e := newTest(t, 2)
	e.Acquire(1, nil, []tx.Key{1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate admission")
		}
	}()
	e.Acquire(1, nil, []tx.Key{2})
}

func TestCloseWhilePendingDoesNotHang(t *testing.T) {
	e := New(Config{Workers: 2})
	e.Acquire(1, nil, []tx.Key{1})
	e.Acquire(2, nil, []tx.Key{1}) // blocked behind 1, never released
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with pending admissions")
	}
}

func TestConcurrentAdmitReleaseNoLostGrants(t *testing.T) {
	// Randomized conflict workload mirroring the lock.Manager stress test:
	// single admitter in total order, concurrent releasers, no exclusive
	// overlap, everything eventually granted.
	e := newTest(t, 4)
	rng := rand.New(rand.NewSource(7))
	const txns = 500
	var wg sync.WaitGroup
	var mu sync.Mutex
	holders := map[tx.Key]int{}
	var violation atomic.Bool

	for i := 1; i <= txns; i++ {
		nKeys := 1 + rng.Intn(4)
		var excl []tx.Key
		for k := 0; k < nKeys; k++ {
			excl = append(excl, tx.Key(rng.Intn(20)))
		}
		excl = tx.NormalizeKeys(excl)
		g := e.Acquire(tx.TxnID(i), nil, excl)
		holdFor := time.Duration(rng.Int63n(100)) * time.Microsecond
		wg.Add(1)
		go func(g lock.Granted, keys []tx.Key) {
			defer wg.Done()
			<-g.Done()
			mu.Lock()
			for _, k := range keys {
				holders[k]++
				if holders[k] > 1 {
					violation.Store(true)
				}
			}
			mu.Unlock()
			time.Sleep(holdFor)
			mu.Lock()
			for _, k := range keys {
				holders[k]--
			}
			mu.Unlock()
			e.Release(g.ID())
		}(g, excl)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: not all transactions granted")
	}
	if violation.Load() {
		t.Fatal("two exclusive holders overlapped on a key")
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.QueuedKeys() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("QueuedKeys = %d after all releases", e.QueuedKeys())
		}
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkAdmitRelease(b *testing.B) {
	e := New(Config{Workers: 4})
	defer e.Close()
	keys := []tx.Key{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := e.Acquire(tx.TxnID(i+1), keys[:2], keys[2:])
		<-g.Done()
		e.Release(g.ID())
	}
}
