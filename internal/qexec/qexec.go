// Package qexec implements queue-oriented zero-lock transaction admission
// in the style of QueCC (*A Queue-oriented Transaction Processing
// Paradigm*): because the router already knows the total order and every
// record's placement before execution, conflict resolution can be *planned*
// instead of *discovered*. At schedule time the single scheduler goroutine
// partitions each sealed batch's operations into deterministic per-key
// queues, each key hash-bucketed into a range owned by exactly one worker
// goroutine. Workers drain their buckets in total order with no lock table,
// no per-key mutex, and no cross-worker coordination — the only cross-bucket
// mechanism is a rendezvous counter per multi-key transaction, preset at
// planning time from the plan's read/write sets and decremented atomically
// as each bucket grants its share of the keys. The worker that performs the
// final decrement executes (or releases) the transaction; which worker that
// is may vary between runs, but the *per-key order* of operations — the only
// thing final state depends on — is fixed by the total order.
//
// The Executor implements lock.Granter, so the engine scheduler can swap it
// in for the conservative lock manager without touching the executor roles:
// Acquire admits, the returned Granted's Done channel closes at rendezvous,
// Release retires the transaction's queue entries and promotes successors.
// For transactions that need no mailbox wait, the engine instead supplies an
// OnReady closure via AdmitBatch and the owning worker runs the transaction
// inline — no goroutine spawn, no channel handoff.
package qexec

import (
	"sync"
	"sync/atomic"

	"hermes/internal/lock"
	"hermes/internal/tx"
)

// Op is one transaction's admission request within a batch: the read
// (Shared) and write (Excl) key sets from the prescient plan, plus an
// optional OnReady closure. If OnReady is non-nil the transaction is run
// inline by the bucket worker that completes its rendezvous, and the
// Granted handle's Done channel never closes (the engine must not wait on
// it). If OnReady is nil, Done closes at rendezvous exactly like a lock
// grant.
type Op struct {
	ID      tx.TxnID
	Shared  []tx.Key
	Excl    []tx.Key
	OnReady func()
}

// Config sizes the executor.
type Config struct {
	// Workers is the number of bucket-worker goroutines; each owns a
	// static hash range of the keyspace. Defaults to 4.
	Workers int
}

// keyRef is one key of a transaction's admission, with its mode.
type keyRef struct {
	k    tx.Key
	excl bool
}

// part is the slice of a transaction's keys owned by one worker.
type part struct {
	worker int
	keys   []keyRef
}

// txnState is one in-flight transaction: the rendezvous counter preset at
// planning time, the grant handle, and the per-worker partition used at
// release. It implements lock.Granted.
type txnState struct {
	id      tx.TxnID
	pending atomic.Int32
	done    chan struct{}
	onReady func()
	parts   []part
}

func (s *txnState) ID() tx.TxnID          { return s.id }
func (s *txnState) Done() <-chan struct{} { return s.done }

// message is one unit of worker inbox traffic: an admission of the
// transaction's keys in this worker's bucket (release=false), a retirement
// of those keys (release=true), or a bare continuation (run != nil) posted
// by Submit.
type message struct {
	st      *txnState
	keys    []keyRef
	release bool
	run     func()
}

// entry is one queue slot on one key.
type entry struct {
	st      *txnState
	excl    bool
	granted bool
}

// keyQueue is a FIFO in total order. head indexes the logical front:
// releases almost always retire the front entry (transactions drain in
// total order), so popping advances head in O(1) instead of copying the
// tail down — on a hot key with a deep backlog the copy is quadratic in
// queue depth. The slice is compacted once head passes half its length.
type keyQueue struct {
	q    []entry
	head int
}

// pop removes st's entry if present. Caller must check for emptiness
// (head == len(q)) afterwards.
func (q *keyQueue) pop(st *txnState) {
	for i := q.head; i < len(q.q); i++ {
		if q.q[i].st != st {
			continue
		}
		if i == q.head {
			q.q[i] = entry{}
			q.head++
			if q.head > 32 && q.head*2 >= len(q.q) {
				n := copy(q.q, q.q[q.head:])
				clear(q.q[n:])
				q.q = q.q[:n]
				q.head = 0
			}
		} else {
			copy(q.q[i:], q.q[i+1:])
			q.q[len(q.q)-1] = entry{}
			q.q = q.q[:len(q.q)-1]
		}
		return
	}
}

func (q *keyQueue) empty() bool { return q.head == len(q.q) }

// worker owns a static bucket of the keyspace. Its inbox is a swap-out
// slice guarded by a mutex (two-phase: senders append, the worker swaps the
// whole slice out and drains it unlocked), so queue operations themselves
// run with zero shared-state contention.
type worker struct {
	e      *Executor
	idx    int
	mu     sync.Mutex
	inbox  []message
	wake   chan struct{}
	queues map[tx.Key]*keyQueue
	// queued mirrors len(queues) for lock-free QueuedKeys reads.
	queued  atomic.Int64
	drained atomic.Int64
}

// Executor is one node's queue-oriented admission engine.
type Executor struct {
	workers   []*worker
	regMu     sync.Mutex
	reg       map[tx.TxnID]*txnState
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New starts cfg.Workers bucket workers and returns the executor.
func New(cfg Config) *Executor {
	n := cfg.Workers
	if n <= 0 {
		n = 4
	}
	e := &Executor{quit: make(chan struct{}), reg: make(map[tx.TxnID]*txnState)}
	e.workers = make([]*worker, n)
	for i := range e.workers {
		w := &worker{
			e:      e,
			idx:    i,
			wake:   make(chan struct{}, 1),
			queues: make(map[tx.Key]*keyQueue),
		}
		e.workers[i] = w
		e.wg.Add(1)
		go w.loop()
	}
	return e
}

// splitmix64 is the finalizer of the splitmix64 PRNG — a cheap, well-mixed
// hash so adjacent row keys spread across buckets instead of clustering.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (e *Executor) bucket(k tx.Key) int {
	return int(splitmix64(uint64(k)) % uint64(len(e.workers)))
}

// AdmitBatch admits ops — which must be in ascending transaction-ID order,
// the total order — into the per-key queues. It must be called from a
// single scheduler goroutine. The ith returned handle corresponds to
// ops[i]; handles for OnReady ops are returned too (for Holding/Release
// bookkeeping) but their Done channel never closes.
func (e *Executor) AdmitBatch(ops []*Op) []lock.Granted {
	grants := make([]lock.Granted, len(ops))
	// Batch per-worker messages so each worker is woken at most once, and
	// register the whole batch under one registry lock: Release runs
	// concurrently but only ever looks up IDs already registered, so
	// holding regMu across the loop costs nothing and saves two atomic
	// operations per transaction.
	pending := make([][]message, len(e.workers))
	states := make([]txnState, len(ops))
	e.regMu.Lock()
	for i, op := range ops {
		st := &states[i]
		st.id = op.ID
		st.onReady = op.OnReady
		if op.OnReady == nil {
			// Inline transactions never wait on Done; skip the channel.
			st.done = make(chan struct{})
		}
		if _, dup := e.reg[op.ID]; dup {
			e.regMu.Unlock()
			panic("qexec: duplicate Acquire for transaction")
		}
		e.reg[op.ID] = st
		// Partition the key set by bucket: exclusive first, then shared
		// minus keys already exclusive — mirroring lock.Manager so both
		// modes admit identical effective key sets. Transactions touch few
		// workers, so a linear scan of parts beats a map.
		var total int
		add := func(k tx.Key, excl bool) {
			wi := e.bucket(k)
			var p *part
			for j := range st.parts {
				if st.parts[j].worker == wi {
					p = &st.parts[j]
					break
				}
			}
			if p == nil {
				st.parts = append(st.parts, part{worker: wi})
				p = &st.parts[len(st.parts)-1]
			}
			p.keys = append(p.keys, keyRef{k: k, excl: excl})
			total++
		}
		for _, k := range op.Excl {
			add(k, true)
		}
		for _, k := range op.Shared {
			if tx.ContainsKey(op.Excl, k) {
				continue
			}
			add(k, false)
		}
		grants[i] = st
		if total == 0 {
			// No keys anywhere: rendezvous is trivially complete. Route
			// through worker 0 so inline OnReady transactions still run on
			// a worker goroutine, in admission order.
			st.pending.Store(1)
			pending[0] = append(pending[0], message{st: st})
			continue
		}
		st.pending.Store(int32(total))
		for _, p := range st.parts {
			pending[p.worker] = append(pending[p.worker], message{st: st, keys: p.keys})
		}
	}
	e.regMu.Unlock()
	for wi, msgs := range pending {
		if len(msgs) > 0 {
			e.workers[wi].push(msgs)
		}
	}
	return grants
}

// Acquire implements lock.Granter for single-transaction admission.
func (e *Executor) Acquire(id tx.TxnID, shared, excl []tx.Key) lock.Granted {
	return e.AdmitBatch([]*Op{{ID: id, Shared: shared, Excl: excl}})[0]
}

// Release retires every queue entry of transaction id and promotes
// successors. Safe to call from any goroutine, including from inside an
// OnReady closure running on a bucket worker (self-push is fine because
// the worker drains a swapped-out inbox).
func (e *Executor) Release(id tx.TxnID) {
	e.regMu.Lock()
	st, ok := e.reg[id]
	if ok {
		delete(e.reg, id)
	}
	e.regMu.Unlock()
	if !ok {
		return
	}
	if len(st.parts) == 0 {
		// Zero-key transaction admitted via worker 0.
		e.workers[0].push1(message{st: st, release: true})
		return
	}
	for _, p := range st.parts {
		e.workers[p.worker].push1(message{st: st, keys: p.keys, release: true})
	}
}

// Submit runs fn on the bucket worker that owns id's hash. This is the
// mailbox-continuation path: a transaction that went dormant waiting for
// inbound records re-enters the worker pool when they arrive, instead of
// holding a parked goroutine the whole time. Ordering relative to other
// work on that worker is arbitrary — by the time a continuation is
// submitted, its admission rendezvous has already fixed everything order
// depends on. fn is dropped if the executor is closed before a worker
// drains it (crashed-node semantics, like abandoned queue entries).
func (e *Executor) Submit(id tx.TxnID, fn func()) {
	e.workers[splitmix64(uint64(id))%uint64(len(e.workers))].push1(message{run: fn})
}

// QueuedKeys reports the number of keys with a non-empty queue across all
// buckets; quiescence checks require it to reach zero at drain.
func (e *Executor) QueuedKeys() int {
	var n int64
	for _, w := range e.workers {
		n += w.queued.Load()
	}
	return int(n)
}

// Holding reports whether id has an outstanding admission.
func (e *Executor) Holding(id tx.TxnID) bool {
	e.regMu.Lock()
	_, ok := e.reg[id]
	e.regMu.Unlock()
	return ok
}

// Close stops the bucket workers and joins them. Entries still queued are
// abandoned — the same semantics as a crashed node's lock table.
func (e *Executor) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// Workers reports the worker count (for gauges).
func (e *Executor) Workers() int { return len(e.workers) }

// Drained reports how many transactions worker w has completed the
// rendezvous for (for per-worker gauges).
func (e *Executor) Drained(w int) int64 { return e.workers[w].drained.Load() }

var _ lock.Granter = (*Executor)(nil)

// push appends msgs to the worker's inbox and wakes it.
func (w *worker) push(msgs []message) {
	w.mu.Lock()
	w.inbox = append(w.inbox, msgs...)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// push1 is push for a single message, without the slice allocation —
// Release sends one message per worker per transaction.
func (w *worker) push1(m message) {
	w.mu.Lock()
	w.inbox = append(w.inbox, m)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *worker) loop() {
	defer w.e.wg.Done()
	for {
		select {
		case <-w.e.quit:
			return
		case <-w.wake:
		}
		for {
			w.mu.Lock()
			batch := w.inbox
			w.inbox = nil
			w.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			for _, m := range batch {
				select {
				case <-w.e.quit:
					return
				default:
				}
				switch {
				case m.run != nil:
					m.run()
				case m.release:
					w.release(m)
				default:
					w.admit(m)
				}
			}
		}
	}
}

// admit appends the transaction's entries to this bucket's key queues and
// promotes each key, mirroring lock.Manager's grant rule exactly: the head
// entry is granted, plus a contiguous shared prefix.
func (w *worker) admit(m message) {
	if len(m.keys) == 0 {
		// Zero-key rendezvous marker.
		w.granted(m.st)
		return
	}
	for _, kr := range m.keys {
		q := w.queues[kr.k]
		if q == nil {
			q = &keyQueue{}
			w.queues[kr.k] = q
			w.queued.Add(1)
		}
		q.q = append(q.q, entry{st: m.st, excl: kr.excl})
		w.promote(q)
	}
}

func (w *worker) promote(q *keyQueue) {
	for i := q.head; i < len(q.q); i++ {
		en := &q.q[i]
		if en.granted {
			continue
		}
		if i > q.head && (en.excl || q.q[i-1].excl) {
			break
		}
		en.granted = true
		w.granted(en.st)
		if en.excl {
			break
		}
	}
}

// granted records one key of st as held; the final decrement completes the
// rendezvous.
func (w *worker) granted(st *txnState) {
	if st.pending.Add(-1) == 0 {
		w.drained.Add(1)
		if st.onReady != nil {
			st.onReady()
			return
		}
		close(st.done)
	}
}

func (w *worker) release(m message) {
	if len(m.keys) == 0 {
		return
	}
	for _, kr := range m.keys {
		q := w.queues[kr.k]
		if q == nil {
			continue
		}
		q.pop(m.st)
		if q.empty() {
			delete(w.queues, kr.k)
			w.queued.Add(-1)
			continue
		}
		w.promote(q)
	}
}
