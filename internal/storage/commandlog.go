package storage

import (
	"fmt"
	"sync"

	"hermes/internal/tx"
)

// CommandLog is the totally ordered input log described in §4.3: because
// execution (including prescient routing and data fusion) is a
// deterministic function of the input sequence, logging the command stream
// plus periodic checkpoints is sufficient to recover a node to the latest
// state. This reproduction keeps the log in memory; durability of the
// underlying medium is orthogonal to the algorithms under study.
type CommandLog struct {
	mu      sync.Mutex
	first   uint64 // sequence of entries[0]
	entries []*tx.Batch
}

// NewCommandLog returns an empty command log.
func NewCommandLog() *CommandLog { return &CommandLog{} }

// Append records a batch. Batches must arrive in sequence order with no
// gaps; Append returns an error otherwise (a replica falling out of order
// indicates a broken total-order layer and must not be masked).
func (l *CommandLog) Append(b *tx.Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		l.first = b.Seq
		l.entries = append(l.entries, b)
		return nil
	}
	want := l.first + uint64(len(l.entries))
	if b.Seq != want {
		return fmt.Errorf("commandlog: batch %d out of order, want %d", b.Seq, want)
	}
	l.entries = append(l.entries, b)
	return nil
}

// Since returns all logged batches with sequence ≥ seq, in order.
// Recovery replays these on top of the checkpointed state.
func (l *CommandLog) Since(seq uint64) []*tx.Batch {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 || seq >= l.first+uint64(len(l.entries)) {
		return nil
	}
	start := 0
	if seq > l.first {
		start = int(seq - l.first)
	}
	out := make([]*tx.Batch, len(l.entries)-start)
	copy(out, l.entries[start:])
	return out
}

// Truncate drops all batches with sequence < seq (after a checkpoint at
// seq, earlier input is no longer needed).
func (l *CommandLog) Truncate(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 || seq <= l.first {
		return
	}
	n := seq - l.first
	if n > uint64(len(l.entries)) {
		n = uint64(len(l.entries))
	}
	l.entries = append([]*tx.Batch(nil), l.entries[n:]...)
	l.first = seq
}

// Len reports the number of retained batches.
func (l *CommandLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
