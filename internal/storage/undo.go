package storage

import "hermes/internal/tx"

// UndoLog records the before-images of a single transaction's writes so a
// logic abort can roll them back (paper §4.2). It is not safe for
// concurrent use; each executing transaction owns one.
type UndoLog struct {
	store   *Store
	entries []undoEntry
}

type undoEntry struct {
	key     tx.Key
	prev    []byte
	existed bool
}

// NewUndoLog returns an undo log bound to store.
func NewUndoLog(store *Store) *UndoLog {
	return &UndoLog{store: store}
}

// Write performs a store write, first capturing the before-image. Multiple
// writes to the same key keep only the first (oldest) before-image, which
// is sufficient for rollback.
func (u *UndoLog) Write(k tx.Key, v []byte) {
	if !u.seen(k) {
		prev, existed := u.store.Read(k)
		u.entries = append(u.entries, undoEntry{key: k, prev: prev, existed: existed})
	}
	u.store.Write(k, v)
}

// Delete removes k from the store, capturing the before-image.
func (u *UndoLog) Delete(k tx.Key) {
	if !u.seen(k) {
		prev, existed := u.store.Read(k)
		u.entries = append(u.entries, undoEntry{key: k, prev: prev, existed: existed})
	}
	u.store.Delete(k)
}

func (u *UndoLog) seen(k tx.Key) bool {
	for _, e := range u.entries {
		if e.key == k {
			return true
		}
	}
	return false
}

// Rollback restores every written key to its before-image, newest first.
func (u *UndoLog) Rollback() {
	for i := len(u.entries) - 1; i >= 0; i-- {
		e := u.entries[i]
		if e.existed {
			u.store.Write(e.key, e.prev)
		} else {
			u.store.Delete(e.key)
		}
	}
	u.entries = u.entries[:0]
}

// Discard forgets the captured before-images (commit path).
func (u *UndoLog) Discard() { u.entries = u.entries[:0] }

// Len reports the number of captured before-images.
func (u *UndoLog) Len() int { return len(u.entries) }
