// Package storage implements the per-node main-memory storage engine:
// a sharded key-value record store with transactional undo (for the logic
// aborts of §4.2), record insert/delete (used by live data migration),
// consistent checkpoints, and a totally ordered command log that, together
// with deterministic replay, provides recovery as described in §4.3.
package storage

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"hermes/internal/tx"
)

const shardCount = 64

type shard struct {
	mu   sync.RWMutex
	recs map[tx.Key][]byte
}

// Store is one node's record storage. All value slices handed to Write and
// Insert are owned by the store afterwards; callers must not mutate them.
// Store is safe for concurrent use.
type Store struct {
	shards [shardCount]shard

	reads  atomic.Int64
	writes atomic.Int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].recs = make(map[tx.Key][]byte)
	}
	return s
}

func (s *Store) shardFor(k tx.Key) *shard {
	// Multiply-shift mix; keys are often sequential so avoid modulo bias
	// landing whole ranges in one shard.
	h := uint64(k) * 0x9E3779B97F4A7C15
	return &s.shards[h>>58&(shardCount-1)]
}

// Read returns the value of k and whether it exists. The returned slice
// must not be mutated.
func (s *Store) Read(k tx.Key) ([]byte, bool) {
	s.reads.Add(1)
	sh := s.shardFor(k)
	sh.mu.RLock()
	v, ok := sh.recs[k]
	sh.mu.RUnlock()
	return v, ok
}

// Write sets the value of k, creating the record if absent.
func (s *Store) Write(k tx.Key, v []byte) {
	s.writes.Add(1)
	sh := s.shardFor(k)
	sh.mu.Lock()
	sh.recs[k] = v
	sh.mu.Unlock()
}

// Delete removes k, returning its prior value and whether it existed.
// Live migration uses Delete at the source and Write at the destination.
func (s *Store) Delete(k tx.Key) ([]byte, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	v, ok := sh.recs[k]
	if ok {
		delete(sh.recs, k)
	}
	sh.mu.Unlock()
	return v, ok
}

// Len returns the number of records in the store.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].recs)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Counters reports the cumulative number of reads and writes served.
func (s *Store) Counters() (reads, writes int64) {
	return s.reads.Load(), s.writes.Load()
}

// Keys returns all keys in ascending order. Intended for tests, cold
// migration planning, and checkpoints — not the hot path.
func (s *Store) Keys() []tx.Key {
	out := make([]tx.Key, 0, s.Len())
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for k := range s.shards[i].recs {
			out = append(out, k)
		}
		s.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KeysInRange returns the keys in [lo, hi) in ascending order.
func (s *Store) KeysInRange(lo, hi tx.Key) []tx.Key {
	var out []tx.Key
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for k := range s.shards[i].recs {
			if k >= lo && k < hi {
				out = append(out, k)
			}
		}
		s.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fingerprint returns an order-independent hash of the full store contents.
// Determinism tests compare fingerprints across runs and replicas.
func (s *Store) Fingerprint() uint64 {
	// XOR of per-record hashes is order-independent, so no global sort or
	// lock ordering is needed.
	var acc uint64
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for k, v := range s.shards[i].recs {
			h := fnv.New64a()
			var kb [8]byte
			for b := 0; b < 8; b++ {
				kb[b] = byte(uint64(k) >> (8 * b))
			}
			h.Write(kb[:])
			h.Write(v)
			acc ^= h.Sum64()
		}
		s.shards[i].mu.RUnlock()
	}
	return acc
}

// Digest returns a stable, order-independent digest of the full store
// contents, stronger than Fingerprint: per-record hashes are combined with
// both XOR and a multiplied sum and mixed with the record count, so pairs
// of colliding records cannot cancel out. Cross-run equivalence checks
// compare per-node digests with it.
func (s *Store) Digest() uint64 {
	var xorAcc, sumAcc, count uint64
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for k, v := range s.shards[i].recs {
			h := fnv.New64a()
			var kb [8]byte
			for b := 0; b < 8; b++ {
				kb[b] = byte(uint64(k) >> (8 * b))
			}
			h.Write(kb[:])
			h.Write(v)
			hv := h.Sum64()
			xorAcc ^= hv
			sumAcc += hv * 0x9E3779B97F4A7C15
			count++
		}
		s.shards[i].mu.RUnlock()
	}
	mix := xorAcc ^ (sumAcc * 0xFF51AFD7ED558CCD) ^ (count * 0xC4CEB9FE1A85EC53)
	mix ^= mix >> 33
	return mix
}

// Usage reports the record count and total value-byte volume held by the
// store. Migration conservation checks rely on both being invariant.
func (s *Store) Usage() (records int, bytes int64) {
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for _, v := range s.shards[i].recs {
			records++
			bytes += int64(len(v))
		}
		s.shards[i].mu.RUnlock()
	}
	return records, bytes
}

// Checkpoint returns a deep copy of the store contents keyed by record.
// Per §4.3 the engine quiesces between batches before checkpointing, so a
// consistent cut is simply "after batch k".
func (s *Store) Checkpoint() map[tx.Key][]byte {
	out := make(map[tx.Key][]byte, s.Len())
	for i := range s.shards {
		s.shards[i].mu.RLock()
		for k, v := range s.shards[i].recs {
			cp := make([]byte, len(v))
			copy(cp, v)
			out[k] = cp
		}
		s.shards[i].mu.RUnlock()
	}
	return out
}

// Restore replaces the store contents with a checkpoint.
func (s *Store) Restore(cp map[tx.Key][]byte) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].recs = make(map[tx.Key][]byte)
		s.shards[i].mu.Unlock()
	}
	for k, v := range cp {
		cpv := make([]byte, len(v))
		copy(cpv, v)
		s.Write(k, cpv)
	}
}
