package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"hermes/internal/tx"
)

func TestReadWriteDelete(t *testing.T) {
	s := NewStore()
	if _, ok := s.Read(1); ok {
		t.Fatal("read of missing key reported present")
	}
	s.Write(1, []byte("a"))
	if v, ok := s.Read(1); !ok || string(v) != "a" {
		t.Fatalf("Read(1) = %q,%v", v, ok)
	}
	s.Write(1, []byte("b"))
	if v, _ := s.Read(1); string(v) != "b" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if v, ok := s.Delete(1); !ok || string(v) != "b" {
		t.Fatalf("Delete = %q,%v", v, ok)
	}
	if _, ok := s.Read(1); ok {
		t.Fatal("key present after delete")
	}
	if _, ok := s.Delete(1); ok {
		t.Fatal("double delete reported present")
	}
}

func TestLenAndKeys(t *testing.T) {
	s := NewStore()
	for i := 10; i > 0; i-- {
		s.Write(tx.Key(i), []byte{byte(i)})
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	keys := s.Keys()
	for i, k := range keys {
		if k != tx.Key(i+1) {
			t.Fatalf("Keys()[%d] = %v, want %d (sorted)", i, k, i+1)
		}
	}
}

func TestKeysInRange(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Write(tx.Key(i), nil)
	}
	got := s.KeysInRange(10, 20)
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("KeysInRange(10,20) = %v", got)
	}
	if got := s.KeysInRange(200, 300); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := tx.Key(g*1000 + i)
				s.Write(k, []byte{byte(i)})
				if v, ok := s.Read(k); !ok || v[0] != byte(i) {
					t.Errorf("goroutine %d: lost write at %v", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", s.Len())
	}
}

func TestCounters(t *testing.T) {
	s := NewStore()
	s.Write(1, nil)
	s.Read(1)
	s.Read(2)
	r, w := s.Counters()
	if r != 2 || w != 1 {
		t.Fatalf("Counters = %d,%d, want 2,1", r, w)
	}
}

func TestFingerprintDetectsDifferences(t *testing.T) {
	a, b := NewStore(), NewStore()
	for i := 0; i < 100; i++ {
		a.Write(tx.Key(i), []byte{byte(i)})
	}
	// Same content inserted in reverse order must fingerprint identically.
	for i := 99; i >= 0; i-- {
		b.Write(tx.Key(i), []byte{byte(i)})
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical contents produced different fingerprints")
	}
	b.Write(50, []byte{200})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("differing contents produced identical fingerprints")
	}
}

func TestFingerprintProperty(t *testing.T) {
	f := func(keys []uint16, vals []byte) bool {
		a, b := NewStore(), NewStore()
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a.Write(tx.Key(keys[i]), []byte{vals[i]})
		}
		for i := n - 1; i >= 0; i-- {
			// Re-apply in reverse; later writes win in a, earlier in b, so
			// only compare when keys are unique.
			b.Write(tx.Key(keys[i]), []byte{vals[i]})
		}
		uniq := map[uint16]bool{}
		for _, k := range keys[:n] {
			if uniq[k] {
				return true // duplicate keys: order matters, skip
			}
			uniq[k] = true
		}
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDigestAndUsage(t *testing.T) {
	a, b := NewStore(), NewStore()
	if a.Digest() != b.Digest() {
		t.Fatal("empty stores digest differently")
	}
	for i := 0; i < 64; i++ {
		a.Write(tx.Key(i), []byte{byte(i), byte(i >> 1)})
	}
	for i := 63; i >= 0; i-- {
		b.Write(tx.Key(i), []byte{byte(i), byte(i >> 1)})
	}
	// Insertion order must not matter.
	if a.Digest() != b.Digest() {
		t.Fatal("identical contents produced different digests")
	}
	recs, bytes := a.Usage()
	if recs != 64 || bytes != 128 {
		t.Fatalf("Usage = %d recs %d bytes, want 64/128", recs, bytes)
	}
	// Unlike a plain XOR fold, the digest must see a value moved between
	// keys (swap two values: same multiset of records' bytes, different
	// mapping).
	b.Write(1, []byte{2, 1})
	b.Write(2, []byte{1, 0})
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to swapped values")
	}
	// And it must see a record count change even when the XOR of hashes
	// could cancel.
	b.Restore(a.Checkpoint())
	if a.Digest() != b.Digest() {
		t.Fatal("restore did not reproduce the digest")
	}
	b.Delete(5)
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to a deleted record")
	}
}

func TestDigestProperty(t *testing.T) {
	// Any single-record difference must change the digest.
	f := func(keys []uint8, flipKey uint8, flipByte uint8) bool {
		a, b := NewStore(), NewStore()
		uniq := map[uint8]bool{}
		for _, k := range keys {
			uniq[k] = true
			a.Write(tx.Key(k), []byte{k})
			b.Write(tx.Key(k), []byte{k})
		}
		if a.Digest() != b.Digest() {
			return false
		}
		b.Write(tx.Key(flipKey), []byte{flipKey ^ (flipByte | 1)})
		return a.Digest() != b.Digest()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckpointRestore(t *testing.T) {
	s := NewStore()
	for i := 0; i < 50; i++ {
		s.Write(tx.Key(i), []byte(fmt.Sprintf("v%d", i)))
	}
	cp := s.Checkpoint()
	fp := s.Fingerprint()
	// Mutate heavily.
	for i := 0; i < 50; i++ {
		s.Write(tx.Key(i), []byte("dirty"))
	}
	s.Delete(3)
	s.Write(999, []byte("extra"))
	s.Restore(cp)
	if s.Fingerprint() != fp {
		t.Fatal("restore did not reproduce checkpointed state")
	}
	if s.Len() != 50 {
		t.Fatalf("Len after restore = %d, want 50", s.Len())
	}
}

func TestCheckpointIsDeepCopy(t *testing.T) {
	s := NewStore()
	s.Write(1, []byte{1, 2, 3})
	cp := s.Checkpoint()
	cp[1][0] = 99
	if v, _ := s.Read(1); v[0] != 1 {
		t.Fatal("mutating checkpoint leaked into store")
	}
}

func TestUndoRollbackIsIdentity(t *testing.T) {
	s := NewStore()
	for i := 0; i < 20; i++ {
		s.Write(tx.Key(i), []byte{byte(i)})
	}
	fp := s.Fingerprint()
	u := NewUndoLog(s)
	u.Write(5, []byte("x"))
	u.Write(5, []byte("y")) // double write: first before-image wins
	u.Write(100, []byte("new"))
	u.Delete(7)
	u.Rollback()
	if s.Fingerprint() != fp {
		t.Fatal("rollback did not restore original state")
	}
	if u.Len() != 0 {
		t.Fatalf("undo log not cleared after rollback: %d", u.Len())
	}
}

func TestUndoDiscardKeepsWrites(t *testing.T) {
	s := NewStore()
	u := NewUndoLog(s)
	u.Write(1, []byte("a"))
	u.Discard()
	if v, ok := s.Read(1); !ok || string(v) != "a" {
		t.Fatal("discard dropped committed write")
	}
	if u.Len() != 0 {
		t.Fatal("undo log not cleared after discard")
	}
}

func TestUndoRollbackProperty(t *testing.T) {
	f := func(initKeys []uint8, ops []uint16) bool {
		s := NewStore()
		for _, k := range initKeys {
			s.Write(tx.Key(k), []byte{k})
		}
		fp := s.Fingerprint()
		u := NewUndoLog(s)
		for _, op := range ops {
			k := tx.Key(op & 0xff)
			if op&0x100 != 0 {
				u.Delete(k)
			} else {
				u.Write(k, []byte{byte(op >> 9)})
			}
		}
		u.Rollback()
		return s.Fingerprint() == fp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommandLogAppendOrder(t *testing.T) {
	l := NewCommandLog()
	if err := l.Append(&tx.Batch{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&tx.Batch{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&tx.Batch{Seq: 3}); err == nil {
		t.Fatal("gap in sequence accepted")
	}
	if err := l.Append(&tx.Batch{Seq: 1}); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestCommandLogSince(t *testing.T) {
	l := NewCommandLog()
	for i := uint64(0); i < 10; i++ {
		if err := l.Append(&tx.Batch{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Since(7)
	if len(got) != 3 || got[0].Seq != 7 || got[2].Seq != 9 {
		t.Fatalf("Since(7) = %v entries starting %d", len(got), got[0].Seq)
	}
	if got := l.Since(100); got != nil {
		t.Fatalf("Since past end = %v, want nil", got)
	}
	if got := l.Since(0); len(got) != 10 {
		t.Fatalf("Since(0) = %d entries, want 10", len(got))
	}
}

func TestCommandLogTruncate(t *testing.T) {
	l := NewCommandLog()
	for i := uint64(0); i < 10; i++ {
		l.Append(&tx.Batch{Seq: i})
	}
	l.Truncate(5)
	if l.Len() != 5 {
		t.Fatalf("Len after truncate = %d, want 5", l.Len())
	}
	got := l.Since(0)
	if got[0].Seq != 5 {
		t.Fatalf("first retained seq = %d, want 5", got[0].Seq)
	}
	// Appending continues from the retained tail.
	if err := l.Append(&tx.Batch{Seq: 10}); err != nil {
		t.Fatal(err)
	}
	l.Truncate(100)
	if l.Len() != 0 {
		t.Fatalf("Len after over-truncate = %d, want 0", l.Len())
	}
}

func BenchmarkStoreRead(b *testing.B) {
	s := NewStore()
	for i := 0; i < 1<<16; i++ {
		s.Write(tx.Key(i), []byte{1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(tx.Key(i & (1<<16 - 1)))
	}
}

func BenchmarkStoreWrite(b *testing.B) {
	s := NewStore()
	v := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(tx.Key(i&(1<<16-1)), v)
	}
}
