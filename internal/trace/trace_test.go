package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	c := Generate(DefaultConfig(20, 100, 1))
	if c.Machines() != 20 {
		t.Errorf("Machines = %d, want 20", c.Machines())
	}
	if c.Windows() != 100 {
		t.Errorf("Windows = %d, want 100", c.Windows())
	}
}

func TestGenerateNonNegativeBounded(t *testing.T) {
	f := func(seed int64, m, w uint8) bool {
		cfg := DefaultConfig(int(m%10)+1, int(w%50)+1, seed)
		c := Generate(cfg)
		for _, row := range c.Load {
			for _, v := range row {
				if v < 0 || v > 4 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(5, 50, 42))
	b := Generate(DefaultConfig(5, 50, 42))
	for m := range a.Load {
		for w := range a.Load[m] {
			if a.Load[m][w] != b.Load[m][w] {
				t.Fatalf("traces diverge at machine %d window %d", m, w)
			}
		}
	}
}

func TestGenerateMachineIndependence(t *testing.T) {
	// Adding machines must not change existing machines' traces.
	small := Generate(DefaultConfig(3, 50, 7))
	big := Generate(DefaultConfig(6, 50, 7))
	for m := 0; m < 3; m++ {
		for w := 0; w < 50; w++ {
			if small.Load[m][w] != big.Load[m][w] {
				t.Fatalf("machine %d trace changed when cluster grew", m)
			}
		}
	}
}

func TestGenerateHasVariation(t *testing.T) {
	c := Generate(DefaultConfig(1, 500, 3))
	row := c.Load[0]
	min, max := row[0], row[0]
	for _, v := range row {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 0.05 {
		t.Errorf("trace is nearly flat (min=%f max=%f); expected fluctuation", min, max)
	}
}

func TestGenerateSpikesAppear(t *testing.T) {
	cfg := DefaultConfig(1, 2000, 9)
	cfg.SpikeRate = 0.05
	cfg.SpikeMag = 2.0
	c := Generate(cfg)
	row := c.Load[0]
	mean := 0.0
	for _, v := range row {
		mean += v
	}
	mean /= float64(len(row))
	spikes := 0
	for _, v := range row {
		if v > 2*mean {
			spikes++
		}
	}
	if spikes == 0 {
		t.Error("no spikes above 2x mean in 2000 windows with SpikeRate=0.05")
	}
}

func TestGenerateOutages(t *testing.T) {
	cfg := DefaultConfig(1, 5000, 11)
	cfg.OutageRate = 0.01
	c := Generate(cfg)
	zeros := 0
	for _, v := range c.Load[0] {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("no provisioning outages in 5000 windows with OutageRate=0.01")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero machines")
		}
	}()
	Generate(Config{Machines: 0, Windows: 10})
}

func TestSharesSumToOne(t *testing.T) {
	c := Generate(DefaultConfig(8, 30, 5))
	for w := 0; w < c.Windows(); w++ {
		s := c.Shares(w)
		sum := 0.0
		for _, v := range s {
			if v < 0 {
				t.Fatalf("negative share in window %d", w)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("window %d shares sum to %f", w, sum)
		}
	}
}

func TestSharesUniformWhenIdle(t *testing.T) {
	c := &Cluster{Load: [][]float64{{0}, {0}, {0}, {0}}}
	s := c.Shares(0)
	for _, v := range s {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("idle cluster share = %v, want uniform 0.25", s)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := Generate(DefaultConfig(4, 25, 99))
	got, err := ParseCSV(c.MarshalCSV())
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if got.Machines() != 4 || got.Windows() != 25 {
		t.Fatalf("round trip shape = %dx%d", got.Machines(), got.Windows())
	}
	for m := range c.Load {
		for w := range c.Load[m] {
			if math.Abs(got.Load[m][w]-c.Load[m][w]) > 1e-3 {
				t.Fatalf("round trip value mismatch at %d,%d: %f vs %f", m, w, got.Load[m][w], c.Load[m][w])
			}
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"garbage", "a,b,c"},
		{"ragged", "1,2,3\n1,2"},
		{"negative", "1,-2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCSV(tc.in); err == nil {
				t.Errorf("ParseCSV(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func BenchmarkGenerate20x2000(b *testing.B) {
	cfg := DefaultConfig(20, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
