// Package trace synthesizes per-machine load traces with the statistical
// character of the Google cluster-usage traces the paper replays (§5.2.2,
// Fig. 1): slowly drifting baselines, unpredictable episodic spikes that
// decay over time, abrupt level shifts, and machine provisioning changes.
//
// The real 2011 Google trace is not redistributable inside this offline
// reproduction, so this generator is the documented substitution (see
// DESIGN.md §5): the routing experiments depend only on machine demand
// being skewed, episodic, and unpredictable — properties the generator
// reproduces — not on Google's exact byte values. Everything is seeded and
// fully deterministic.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Cluster is a load trace for a set of machines over uniformly spaced
// time windows. Load[m][w] is machine m's relative CPU demand in window w;
// values are non-negative and comparable across machines.
type Cluster struct {
	Load [][]float64
}

// Machines returns the number of machines in the trace.
func (c *Cluster) Machines() int { return len(c.Load) }

// Windows returns the number of time windows in the trace.
func (c *Cluster) Windows() int {
	if len(c.Load) == 0 {
		return 0
	}
	return len(c.Load[0])
}

// Shares returns each machine's fraction of total cluster demand in window
// w. Machines that are offline (zero load) get zero share. If the whole
// cluster is idle the shares are uniform, so a workload driver always has a
// valid distribution to draw from.
func (c *Cluster) Shares(w int) []float64 {
	n := c.Machines()
	out := make([]float64, n)
	total := 0.0
	for m := 0; m < n; m++ {
		total += c.Load[m][w]
	}
	if total <= 0 {
		for m := range out {
			out[m] = 1 / float64(n)
		}
		return out
	}
	for m := 0; m < n; m++ {
		out[m] = c.Load[m][w] / total
	}
	return out
}

// Config controls trace synthesis. The zero value is not usable; call
// DefaultConfig for paper-like parameters.
type Config struct {
	Machines int
	Windows  int
	Seed     int64

	// BaseLoad is the mean idle-state demand of a machine; BaseDrift is
	// the per-window standard deviation of its random-walk drift.
	BaseLoad  float64
	BaseDrift float64

	// SpikeRate is the per-window probability that a machine starts an
	// episodic spike; SpikeMag is the mean spike height (exponential) and
	// SpikeDecay the per-window multiplicative decay of an active spike.
	SpikeRate  float64
	SpikeMag   float64
	SpikeDecay float64

	// ShiftRate is the per-window probability of an abrupt level shift;
	// shifts multiply the baseline by a factor drawn in [0.3, 3].
	ShiftRate float64

	// OutageRate is the per-window probability a machine is deprovisioned
	// (its load drops to zero) for a geometric number of windows with
	// mean OutageMean, modelling dynamic machine provisioning.
	OutageRate float64
	OutageMean float64
}

// DefaultConfig returns parameters tuned to produce traces that look like
// Fig. 1: visible fluctuation everywhere, a handful of large spikes and
// shifts per machine over the horizon, and occasional provisioning events.
func DefaultConfig(machines, windows int, seed int64) Config {
	return Config{
		Machines:   machines,
		Windows:    windows,
		Seed:       seed,
		BaseLoad:   0.3,
		BaseDrift:  0.02,
		SpikeRate:  0.02,
		SpikeMag:   0.6,
		SpikeDecay: 0.7,
		ShiftRate:  0.005,
		OutageRate: 0.002,
		OutageMean: 20,
	}
}

// Generate synthesizes a cluster trace from cfg. It panics if Machines or
// Windows is non-positive.
func Generate(cfg Config) *Cluster {
	if cfg.Machines <= 0 || cfg.Windows <= 0 {
		panic("trace: Machines and Windows must be positive")
	}
	c := &Cluster{Load: make([][]float64, cfg.Machines)}
	for m := 0; m < cfg.Machines; m++ {
		// Derive an independent stream per machine so adding machines
		// never perturbs the others.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(m)*1_000_003))
		c.Load[m] = genMachine(cfg, rng)
	}
	return c
}

func genMachine(cfg Config, rng *rand.Rand) []float64 {
	load := make([]float64, cfg.Windows)
	base := cfg.BaseLoad * (0.5 + rng.Float64())
	spike := 0.0
	outage := 0
	for w := 0; w < cfg.Windows; w++ {
		if outage > 0 {
			outage--
			load[w] = 0
			continue
		}
		if rng.Float64() < cfg.OutageRate {
			outage = 1 + int(rng.ExpFloat64()*cfg.OutageMean)
			load[w] = 0
			continue
		}
		// Baseline random walk, clamped away from zero.
		base += rng.NormFloat64() * cfg.BaseDrift
		if base < 0.02 {
			base = 0.02
		}
		if rng.Float64() < cfg.ShiftRate {
			base *= 0.3 + rng.Float64()*2.7
		}
		if base > 1.2 {
			base = 1.2 // CPU demand baselines saturate; spikes ride on top
		}
		// Episodic spikes: exponential height, geometric-ish decay.
		if rng.Float64() < cfg.SpikeRate {
			spike += rng.ExpFloat64() * cfg.SpikeMag
		}
		spike *= cfg.SpikeDecay
		v := base + spike
		if v > 4 {
			v = 4 // cap runaway compounding of shifts
		}
		load[w] = v
	}
	return load
}

// MarshalCSV renders the trace as one CSV row per machine, with loads to
// four decimal places — the format cmd/tracegen emits and ParseCSV reads.
func (c *Cluster) MarshalCSV() string {
	var b strings.Builder
	for _, row := range c.Load {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseCSV parses the MarshalCSV format. All rows must have equal length.
func ParseCSV(s string) (*Cluster, error) {
	var load [][]float64
	for ln, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", ln+1, i+1, err)
			}
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("trace: line %d field %d: invalid load %v", ln+1, i+1, v)
			}
			row[i] = v
		}
		if len(load) > 0 && len(row) != len(load[0]) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", ln+1, len(row), len(load[0]))
		}
		load = append(load, row)
	}
	if len(load) == 0 {
		return nil, fmt.Errorf("trace: empty input")
	}
	return &Cluster{Load: load}, nil
}
