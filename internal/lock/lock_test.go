package lock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/tx"
)

func granted(g Granted) bool {
	select {
	case <-g.Done():
		return true
	default:
		return false
	}
}

func TestNoLocksGrantsImmediately(t *testing.T) {
	m := NewManager()
	g := m.Acquire(1, nil, nil)
	if !granted(g) {
		t.Fatal("empty lock set not granted immediately")
	}
}

func TestExclusiveBlocksExclusive(t *testing.T) {
	m := NewManager()
	g1 := m.Acquire(1, nil, []tx.Key{10})
	g2 := m.Acquire(2, nil, []tx.Key{10})
	if !granted(g1) {
		t.Fatal("first exclusive not granted")
	}
	if granted(g2) {
		t.Fatal("second exclusive granted while first held")
	}
	m.Release(1)
	if !granted(g2) {
		t.Fatal("second exclusive not granted after release")
	}
}

func TestSharedCompatible(t *testing.T) {
	m := NewManager()
	g1 := m.Acquire(1, []tx.Key{10}, nil)
	g2 := m.Acquire(2, []tx.Key{10}, nil)
	g3 := m.Acquire(3, []tx.Key{10}, nil)
	for i, g := range []Granted{g1, g2, g3} {
		if !granted(g) {
			t.Fatalf("shared reader %d blocked", i+1)
		}
	}
}

func TestSharedBlocksExclusiveThenFIFO(t *testing.T) {
	m := NewManager()
	g1 := m.Acquire(1, []tx.Key{10}, nil)
	g2 := m.Acquire(2, nil, []tx.Key{10})
	g3 := m.Acquire(3, []tx.Key{10}, nil) // must NOT jump the writer
	if !granted(g1) || granted(g2) || granted(g3) {
		t.Fatal("grant states wrong after enqueue")
	}
	m.Release(1)
	if !granted(g2) {
		t.Fatal("writer not granted after readers released")
	}
	if granted(g3) {
		t.Fatal("later reader granted alongside writer (starvation/order bug)")
	}
	m.Release(2)
	if !granted(g3) {
		t.Fatal("reader not granted after writer released")
	}
}

func TestSharedPrefixGrantedAfterWriterReleases(t *testing.T) {
	m := NewManager()
	m.Acquire(1, nil, []tx.Key{5})
	g2 := m.Acquire(2, []tx.Key{5}, nil)
	g3 := m.Acquire(3, []tx.Key{5}, nil)
	g4 := m.Acquire(4, nil, []tx.Key{5})
	m.Release(1)
	if !granted(g2) || !granted(g3) {
		t.Fatal("shared prefix not granted together")
	}
	if granted(g4) {
		t.Fatal("writer granted alongside readers")
	}
}

func TestKeyInBothSetsIsExclusive(t *testing.T) {
	m := NewManager()
	m.Acquire(1, []tx.Key{7}, []tx.Key{7})
	g2 := m.Acquire(2, []tx.Key{7}, nil)
	if granted(g2) {
		t.Fatal("reader granted while read-write key held exclusively")
	}
	m.Release(1)
	if !granted(g2) {
		t.Fatal("reader blocked after release")
	}
}

func TestMultiKeyGrantWaitsForAll(t *testing.T) {
	m := NewManager()
	m.Acquire(1, nil, []tx.Key{1})
	m.Acquire(2, nil, []tx.Key{2})
	g3 := m.Acquire(3, nil, []tx.Key{1, 2})
	m.Release(1)
	if granted(g3) {
		t.Fatal("granted with only one of two locks")
	}
	m.Release(2)
	if !granted(g3) {
		t.Fatal("not granted after both locks freed")
	}
}

func TestDuplicateAcquirePanics(t *testing.T) {
	m := NewManager()
	m.Acquire(1, nil, []tx.Key{1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate Acquire")
		}
	}()
	m.Acquire(1, nil, []tx.Key{2})
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	m := NewManager()
	m.Release(42) // must not panic
	if m.QueuedKeys() != 0 {
		t.Fatal("phantom queue after releasing unknown txn")
	}
}

func TestQueueCleanup(t *testing.T) {
	m := NewManager()
	m.Acquire(1, []tx.Key{1, 2}, []tx.Key{3})
	m.Acquire(2, nil, []tx.Key{3})
	if m.QueuedKeys() != 3 {
		t.Fatalf("QueuedKeys = %d, want 3", m.QueuedKeys())
	}
	m.Release(1)
	m.Release(2)
	if m.QueuedKeys() != 0 {
		t.Fatalf("QueuedKeys after all releases = %d, want 0", m.QueuedKeys())
	}
}

func TestTotalOrderSerializesConflicts(t *testing.T) {
	// Three txns all writing key 9 must be granted in total order even if
	// releases interleave with later acquires.
	m := NewManager()
	g1 := m.Acquire(1, nil, []tx.Key{9})
	g2 := m.Acquire(2, nil, []tx.Key{9})
	m.Release(1)
	g3 := m.Acquire(3, nil, []tx.Key{9})
	if !granted(g1) && false {
		t.Fatal("unreachable")
	}
	if !granted(g2) {
		t.Fatal("txn 2 not granted after txn 1 released")
	}
	if granted(g3) {
		t.Fatal("txn 3 granted out of order")
	}
	m.Release(2)
	if !granted(g3) {
		t.Fatal("txn 3 not granted")
	}
}

// TestNoLostGrantsUnderConcurrency drives a randomized workload: a single
// goroutine acquires in total order while executor goroutines wait for
// grants and release. Every transaction must eventually be granted
// (deadlock freedom) and conflicting grants must not overlap.
func TestNoLostGrantsUnderConcurrency(t *testing.T) {
	m := NewManager()
	rng := rand.New(rand.NewSource(7))
	const txns = 500
	var wg sync.WaitGroup
	var mu sync.Mutex
	holders := map[tx.Key]int{} // exclusive holders per key
	violation := false

	for i := 1; i <= txns; i++ {
		nKeys := 1 + rng.Intn(4)
		var excl []tx.Key
		for k := 0; k < nKeys; k++ {
			excl = append(excl, tx.Key(rng.Intn(20)))
		}
		excl = tx.NormalizeKeys(excl)
		g := m.Acquire(tx.TxnID(i), nil, excl)
		holdFor := time.Duration(rng.Int63n(100)) * time.Microsecond
		wg.Add(1)
		go func(g Granted, keys []tx.Key) {
			defer wg.Done()
			<-g.Done()
			mu.Lock()
			for _, k := range keys {
				holders[k]++
				if holders[k] > 1 {
					violation = true
				}
			}
			mu.Unlock()
			time.Sleep(holdFor)
			mu.Lock()
			for _, k := range keys {
				holders[k]--
			}
			mu.Unlock()
			m.Release(g.ID())
		}(g, excl)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: not all transactions granted")
	}
	if violation {
		t.Fatal("two exclusive holders overlapped on a key")
	}
	if m.QueuedKeys() != 0 {
		t.Fatalf("QueuedKeys = %d after all releases", m.QueuedKeys())
	}
}

// TestGrantOrderMatchesTotalOrderProperty: for any conflict pattern, the
// order in which conflicting exclusive transactions are granted equals
// ascending TxnID order.
func TestGrantOrderMatchesTotalOrderProperty(t *testing.T) {
	f := func(keyChoices []uint8) bool {
		if len(keyChoices) == 0 || len(keyChoices) > 40 {
			return true
		}
		m := NewManager()
		grants := make([]Granted, len(keyChoices))
		for i, kc := range keyChoices {
			grants[i] = m.Acquire(tx.TxnID(i+1), nil, []tx.Key{tx.Key(kc % 4)})
		}
		var order []int
		remaining := map[int]bool{}
		for i := range grants {
			remaining[i] = true
		}
		for len(remaining) > 0 {
			prog := false
			for i := 0; i < len(grants); i++ {
				if remaining[i] && granted(grants[i]) {
					order = append(order, i)
					delete(remaining, i)
					m.Release(grants[i].ID())
					prog = true
				}
			}
			if !prog {
				return false // deadlock
			}
		}
		// Per key, granted order must be ascending txn id.
		lastPerKey := map[uint8]int{}
		for _, i := range order {
			k := keyChoices[i] % 4
			if last, ok := lastPerKey[k]; ok && i < last {
				return false
			}
			lastPerKey[k] = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTablesDrainToZero is the regression test for the long-run leak: a
// sustained workload over a large keyspace — including zero-key acquires,
// which a master with no local records issues — must leave every internal
// map empty once all transactions have released. Before the fix, Release
// returned early for zero-key transactions and their grants entries
// accumulated without bound.
func TestTablesDrainToZero(t *testing.T) {
	m := NewManager()
	rng := rand.New(rand.NewSource(11))
	const txns = 2000
	ids := make([]tx.TxnID, 0, txns)
	for i := 1; i <= txns; i++ {
		id := tx.TxnID(i)
		ids = append(ids, id)
		switch rng.Intn(3) {
		case 0: // zero-key acquire (all records remote)
			m.Acquire(id, nil, nil)
		case 1:
			m.Acquire(id, nil, []tx.Key{tx.Key(rng.Intn(1 << 16))})
		default:
			m.Acquire(id,
				[]tx.Key{tx.Key(rng.Intn(1 << 16))},
				[]tx.Key{tx.Key(1<<16 + rng.Intn(1<<16))})
		}
	}
	for _, id := range ids {
		m.Release(id)
	}
	q, g, h := m.tableSizes()
	if q != 0 || g != 0 || h != 0 {
		t.Fatalf("tables not drained: queues=%d grants=%d held=%d", q, g, h)
	}
	for _, id := range ids {
		if m.Holding(id) {
			t.Fatalf("Holding(%d) still true after release", id)
		}
	}
}

func TestZeroKeyReleaseDropsGrant(t *testing.T) {
	m := NewManager()
	g := m.Acquire(5, nil, nil)
	if !granted(g) {
		t.Fatal("zero-key acquire not granted immediately")
	}
	if !m.Holding(5) {
		t.Fatal("Holding false while grant outstanding")
	}
	m.Release(5)
	if m.Holding(5) {
		t.Fatal("Holding true after release of zero-key grant (leak)")
	}
	if _, grants, _ := m.tableSizes(); grants != 0 {
		t.Fatalf("grants table size = %d after release, want 0", grants)
	}
}

func BenchmarkAcquireRelease(b *testing.B) {
	m := NewManager()
	keys := []tx.Key{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := m.Acquire(tx.TxnID(i+1), keys[:2], keys[2:])
		<-g.Done()
		m.Release(g.ID())
	}
}
