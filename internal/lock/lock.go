// Package lock implements the deterministic lock manager used by Calvin
// and Hermes ("conservative ordered locking", §2.1): every transaction
// requests all of its locks at once, in total-order position, before it
// runs. Because requests are enqueued in the serial order and never time
// out or abort, the protocol is deadlock-free and the set of granted
// transactions at any point is a pure function of the input order — the
// property the whole deterministic stack rests on.
//
// The scheduler must call Acquire for transactions in ascending total
// order; Release may be called concurrently from executor goroutines.
package lock

import (
	"sync"

	"hermes/internal/tx"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared allows concurrent holders (read locks).
	Shared Mode = iota
	// Exclusive allows one holder (write / migration locks).
	Exclusive
)

type waiter struct {
	id      tx.TxnID
	mode    Mode
	granted bool
}

type keyQueue struct {
	// FIFO in total order. Head entries are granted; a shared prefix may
	// be granted together.
	q []waiter
}

// Grant tracks a single transaction's lock acquisition. Done is closed
// once every requested lock is held.
type Grant struct {
	id        tx.TxnID
	done      chan struct{}
	remaining int
}

// Done returns a channel closed when all locks are held. A transaction
// that requested no locks has an already-closed channel.
func (g *Grant) Done() <-chan struct{} { return g.done }

// ID returns the transaction the grant belongs to.
func (g *Grant) ID() tx.TxnID { return g.id }

// Manager is one node's lock table.
type Manager struct {
	mu     sync.Mutex
	queues map[tx.Key]*keyQueue
	grants map[tx.TxnID]*Grant
	held   map[tx.TxnID][]tx.Key
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{
		queues: make(map[tx.Key]*keyQueue),
		grants: make(map[tx.TxnID]*Grant),
		held:   make(map[tx.TxnID][]tx.Key),
	}
}

// Acquire enqueues lock requests for transaction id: shared locks on
// shared, exclusive locks on excl. A key appearing in both sets is locked
// exclusively. Acquire must be called in ascending id order (the total
// order); it returns immediately with a Grant the caller can wait on.
// Calling Acquire twice for the same id panics.
func (m *Manager) Acquire(id tx.TxnID, shared, excl []tx.Key) *Grant {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.grants[id]; dup {
		panic("lock: duplicate Acquire for transaction")
	}
	// Hold a self-reference while enqueuing so a promote inside the loop
	// cannot close done before all requests are registered.
	g := &Grant{id: id, done: make(chan struct{}), remaining: 1}
	m.grants[id] = g

	enqueue := func(k tx.Key, mode Mode) {
		q := m.queues[k]
		if q == nil {
			q = &keyQueue{}
			m.queues[k] = q
		}
		q.q = append(q.q, waiter{id: id, mode: mode})
		m.held[id] = append(m.held[id], k)
		g.remaining++
		m.promote(k, q)
	}
	for _, k := range excl {
		enqueue(k, Exclusive)
	}
	for _, k := range shared {
		if tx.ContainsKey(excl, k) {
			continue
		}
		enqueue(k, Shared)
	}
	g.remaining--
	if g.remaining == 0 {
		close(g.done)
	}
	return g
}

// promote grants the head of the queue (and a contiguous shared prefix)
// and decrements the owners' remaining counts. Caller holds m.mu.
func (m *Manager) promote(k tx.Key, q *keyQueue) {
	for i := range q.q {
		w := &q.q[i]
		if w.granted {
			continue
		}
		if i > 0 && (w.mode == Exclusive || q.q[i-1].mode == Exclusive) {
			break // blocked behind an incompatible holder/waiter
		}
		w.granted = true
		g := m.grants[w.id]
		g.remaining--
		if g.remaining == 0 {
			close(g.done)
		}
		if w.mode == Exclusive {
			break
		}
	}
}

// Release frees all locks held or awaited by transaction id and grants any
// newly unblocked waiters. Releasing an unknown id is a no-op.
func (m *Manager) Release(id tx.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := m.held[id]
	if keys == nil {
		return
	}
	delete(m.held, id)
	delete(m.grants, id)
	for _, k := range keys {
		q := m.queues[k]
		if q == nil {
			continue
		}
		for i := range q.q {
			if q.q[i].id == id {
				q.q = append(q.q[:i], q.q[i+1:]...)
				break
			}
		}
		if len(q.q) == 0 {
			delete(m.queues, k)
			continue
		}
		m.promote(k, q)
	}
}

// QueuedKeys reports the number of keys with a non-empty queue; used by
// tests and stats.
func (m *Manager) QueuedKeys() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues)
}

// Holding reports whether transaction id currently has an outstanding
// grant (granted or waiting).
func (m *Manager) Holding(id tx.TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.grants[id]
	return ok
}
