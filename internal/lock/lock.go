// Package lock implements the deterministic lock manager used by Calvin
// and Hermes ("conservative ordered locking", §2.1): every transaction
// requests all of its locks at once, in total-order position, before it
// runs. Because requests are enqueued in the serial order and never time
// out or abort, the protocol is deadlock-free and the set of granted
// transactions at any point is a pure function of the input order — the
// property the whole deterministic stack rests on.
//
// The scheduler must call Acquire for transactions in ascending total
// order; Release may be called concurrently from executor goroutines.
package lock

import (
	"sync"

	"hermes/internal/tx"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared allows concurrent holders (read locks).
	Shared Mode = iota
	// Exclusive allows one holder (write / migration locks).
	Exclusive
)

// Granted is one transaction's outstanding admission: the handle a
// scheduler passes to the role job so it can block until every requested
// key is held. Both the conservative lock manager and the queue-oriented
// executor (internal/qexec) hand these out.
type Granted interface {
	// ID returns the transaction the admission belongs to.
	ID() tx.TxnID
	// Done returns a channel closed once every requested key is held. A
	// transaction that requested no keys has an already-closed channel.
	Done() <-chan struct{}
}

// Granter is the scheduler-facing admission interface shared by the
// conservative lock manager ("lock" execution mode) and the queue-oriented
// executor ("queue" mode, internal/qexec). Acquire must be called in
// ascending transaction-ID order — the total order — by a single scheduler
// goroutine; Release may be called concurrently from executor goroutines.
type Granter interface {
	Acquire(id tx.TxnID, shared, excl []tx.Key) Granted
	Release(id tx.TxnID)
	// QueuedKeys reports the number of keys with a non-empty admission
	// queue; quiescence checks require it to return to zero at drain.
	QueuedKeys() int
	// Holding reports whether id has an outstanding admission.
	Holding(id tx.TxnID) bool
	// Close stops any background workers. The lock manager has none, so
	// its Close is a no-op; the queue executor joins its bucket workers.
	Close()
}

type waiter struct {
	id      tx.TxnID
	mode    Mode
	granted bool
}

type keyQueue struct {
	// FIFO in total order. Head entries are granted; a shared prefix may
	// be granted together. head indexes the logical front: releases almost
	// always retire the front waiter (transactions drain in total order),
	// so popping advances head in O(1) instead of copying the tail down —
	// on a hot key with a deep backlog the copy is quadratic in queue
	// depth. The slice is compacted once head passes half its length.
	q    []waiter
	head int
}

// pop removes the waiter with the given id, returning false if absent.
// Caller must check for emptiness (head == len(q)) afterwards.
func (q *keyQueue) pop(id tx.TxnID) bool {
	for i := q.head; i < len(q.q); i++ {
		if q.q[i].id != id {
			continue
		}
		if i == q.head {
			q.q[i] = waiter{}
			q.head++
			if q.head > 32 && q.head*2 >= len(q.q) {
				n := copy(q.q, q.q[q.head:])
				clear(q.q[n:])
				q.q = q.q[:n]
				q.head = 0
			}
		} else {
			copy(q.q[i:], q.q[i+1:])
			q.q[len(q.q)-1] = waiter{}
			q.q = q.q[:len(q.q)-1]
		}
		return true
	}
	return false
}

func (q *keyQueue) empty() bool { return q.head == len(q.q) }

// Grant tracks a single transaction's lock acquisition. Done is closed
// once every requested lock is held.
type Grant struct {
	id        tx.TxnID
	done      chan struct{}
	remaining int
}

// Done returns a channel closed when all locks are held. A transaction
// that requested no locks has an already-closed channel.
func (g *Grant) Done() <-chan struct{} { return g.done }

// ID returns the transaction the grant belongs to.
func (g *Grant) ID() tx.TxnID { return g.id }

// Manager is one node's lock table.
type Manager struct {
	mu     sync.Mutex
	queues map[tx.Key]*keyQueue
	grants map[tx.TxnID]*Grant
	held   map[tx.TxnID][]tx.Key
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{
		queues: make(map[tx.Key]*keyQueue),
		grants: make(map[tx.TxnID]*Grant),
		held:   make(map[tx.TxnID][]tx.Key),
	}
}

// Acquire enqueues lock requests for transaction id: shared locks on
// shared, exclusive locks on excl. A key appearing in both sets is locked
// exclusively. Acquire must be called in ascending id order (the total
// order); it returns immediately with a Grant the caller can wait on.
// Calling Acquire twice for the same id panics.
func (m *Manager) Acquire(id tx.TxnID, shared, excl []tx.Key) Granted {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.grants[id]; dup {
		panic("lock: duplicate Acquire for transaction")
	}
	// Hold a self-reference while enqueuing so a promote inside the loop
	// cannot close done before all requests are registered.
	g := &Grant{id: id, done: make(chan struct{}), remaining: 1}
	m.grants[id] = g

	enqueue := func(k tx.Key, mode Mode) {
		q := m.queues[k]
		if q == nil {
			q = &keyQueue{}
			m.queues[k] = q
		}
		q.q = append(q.q, waiter{id: id, mode: mode})
		m.held[id] = append(m.held[id], k)
		g.remaining++
		m.promote(k, q)
	}
	for _, k := range excl {
		enqueue(k, Exclusive)
	}
	for _, k := range shared {
		if tx.ContainsKey(excl, k) {
			continue
		}
		enqueue(k, Shared)
	}
	g.remaining--
	if g.remaining == 0 {
		close(g.done)
	}
	return g
}

// promote grants the head of the queue (and a contiguous shared prefix)
// and decrements the owners' remaining counts. Caller holds m.mu.
func (m *Manager) promote(k tx.Key, q *keyQueue) {
	for i := q.head; i < len(q.q); i++ {
		w := &q.q[i]
		if w.granted {
			continue
		}
		if i > q.head && (w.mode == Exclusive || q.q[i-1].mode == Exclusive) {
			break // blocked behind an incompatible holder/waiter
		}
		w.granted = true
		g := m.grants[w.id]
		g.remaining--
		if g.remaining == 0 {
			close(g.done)
		}
		if w.mode == Exclusive {
			break
		}
	}
}

// Release frees all locks held or awaited by transaction id and grants any
// newly unblocked waiters. Releasing an unknown id is a no-op.
//
// The grant entry is removed even when the transaction holds no keys: a
// master whose records are all remote acquires zero locks but still owns a
// (pre-closed) grant, and skipping the delete for those leaked a grants
// entry per such transaction over a long run.
func (m *Manager) Release(id tx.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, known := m.grants[id]; !known {
		return
	}
	delete(m.grants, id)
	keys := m.held[id]
	delete(m.held, id)
	for _, k := range keys {
		q := m.queues[k]
		if q == nil {
			continue
		}
		q.pop(id)
		if q.empty() {
			delete(m.queues, k)
			continue
		}
		m.promote(k, q)
	}
}

// QueuedKeys reports the number of keys with a non-empty queue; used by
// tests and stats.
func (m *Manager) QueuedKeys() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues)
}

// Holding reports whether transaction id currently has an outstanding
// grant (granted or waiting).
func (m *Manager) Holding(id tx.TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.grants[id]
	return ok
}

// Close implements Granter; the lock manager has no background workers.
func (m *Manager) Close() {}

// tableSizes reports the sizes of the three internal maps. After every
// admitted transaction has been released, all three must be zero — the
// regression test for the long-run leak fixed in Release.
func (m *Manager) tableSizes() (queues, grants, held int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues), len(m.grants), len(m.held)
}

var _ Granter = (*Manager)(nil)
