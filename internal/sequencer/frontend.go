package sequencer

import (
	"sync"
	"time"

	"hermes/internal/clock"
	"hermes/internal/network"
	"hermes/internal/tx"
)

// Frontend is a node-local sequencer front-end: it forwards client
// requests to the leader, paying one network hop as in Calvin.
//
// A session front-end (NewSessionFrontend) additionally makes
// submissions survive leader failover: it stamps every request with a
// dense (Client, ClientSeq) identity, keeps it queued until the leader
// sequences it, and resends the whole queue — in submission order, so
// the leader always observes a gapless client stream — whenever progress
// stalls past the retry timeout (with capped exponential backoff) or the
// leader hint changes. The leader's (Client, ClientSeq) dedup makes the
// resends idempotent: no request is lost or sequenced twice.
type Frontend struct {
	node    tx.NodeID
	tr      network.Transport
	clk     clock.Clock
	session bool
	retry   time.Duration
	rcap    time.Duration

	// sendMu serializes every transmission to the leader so a resend can
	// never interleave with (and overtake) a concurrent fresh submission,
	// which would reorder the client stream.
	sendMu sync.Mutex

	mu           sync.Mutex
	leader       tx.NodeID
	nextSeq      uint64
	unacked      []*tx.Request
	backoff      time.Duration
	lastProgress time.Time

	quit chan struct{}
	done sync.WaitGroup
}

// NewFrontend returns a fire-and-forget front-end for node forwarding to
// leader: no client session, no retry (the pre-failover behavior).
func NewFrontend(node, leader tx.NodeID, tr network.Transport) *Frontend {
	return &Frontend{node: node, leader: leader, tr: tr}
}

// NewSessionFrontend returns a front-end whose submissions survive
// leader failover (see type docs). Stop it when done.
func NewSessionFrontend(node, leader tx.NodeID, tr network.Transport, clk clock.Clock, retry, retryCap time.Duration) *Frontend {
	if clk == nil {
		clk = clock.Real{}
	}
	if retry <= 0 {
		retry = defaultRetryTimeout
	}
	if retryCap < retry {
		retryCap = defaultRetryCap
	}
	f := &Frontend{
		node: node, leader: leader, tr: tr, clk: clk,
		session: true, retry: retry, rcap: retryCap,
		backoff: retry, lastProgress: clk.Now(),
		quit: make(chan struct{}),
	}
	f.done.Add(1)
	go f.retryLoop()
	return f
}

// Submit forwards a client request to the leader. The returned error is
// non-nil only if the transport is closed.
func (f *Frontend) Submit(req *tx.Request) error {
	return f.SubmitTracked(req, nil)
}

// SubmitTracked is Submit with a pre-transmission hook: on a session
// front-end, pre (if non-nil) observes the assigned ClientSeq after the
// request is stamped but before it is transmitted, still under the send
// lock. Distributed engines use it to register a completion waiter keyed
// by ClientSeq with no window in which a sequenced batch could arrive
// first — and without stamping outside the send lock, which could let two
// concurrent submissions reach the leader out of ClientSeq order and trip
// its gapless per-client dedup.
func (f *Frontend) SubmitTracked(req *tx.Request, pre func(clientSeq uint64)) error {
	if !f.session {
		return f.tr.Send(network.Message{
			From: f.node, To: f.leader, Type: network.MsgSeqForward,
			Batch: &tx.Batch{Txns: []*tx.Request{req}},
		})
	}
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	f.mu.Lock()
	f.nextSeq++
	req.Client = f.node
	req.ClientSeq = f.nextSeq
	f.unacked = append(f.unacked, req)
	leader := f.leader
	f.mu.Unlock()
	if pre != nil {
		pre(req.ClientSeq)
	}
	if err := f.forward(req, leader); err != nil {
		// Transport closed: the request will never be sequenced, so drop
		// it from the queue and report.
		f.mu.Lock()
		if n := len(f.unacked); n > 0 && f.unacked[n-1] == req {
			f.unacked = f.unacked[:n-1]
		}
		f.mu.Unlock()
		return err
	}
	return nil
}

func (f *Frontend) forward(req *tx.Request, leader tx.NodeID) error {
	// A session front-end transmits a private copy: after a failover the
	// queue is resent to a new leader while the old one may still be
	// sealing the previous transmission, and two leaders writing assigned
	// IDs into one shared Request would race. Each sealing leader gets
	// its own object; the engine correlates a delivered copy back to the
	// queued original through Request.Origin. The queued original itself
	// is immutable after stamping, so resend-time copying never races
	// with a seal.
	if f.session {
		req = req.SendCopy()
	}
	return f.tr.Send(network.Message{
		From: f.node, To: leader, Type: network.MsgSeqForward,
		Batch: &tx.Batch{Txns: []*tx.Request{req}},
	})
}

// Sequenced tells the front-end the leader sealed req into a batch. The
// leader seals a client's requests in ClientSeq order, so everything up
// to req's ClientSeq is acknowledged in one go.
func (f *Frontend) Sequenced(req *tx.Request) {
	if !f.session || req.ClientSeq == 0 {
		return
	}
	f.mu.Lock()
	i := 0
	for i < len(f.unacked) && f.unacked[i].ClientSeq <= req.ClientSeq {
		i++
	}
	if i > 0 {
		f.unacked = append(f.unacked[:0:0], f.unacked[i:]...)
		f.lastProgress = f.clk.Now()
		f.backoff = f.retry
	}
	f.mu.Unlock()
}

// SetLeader redirects the front-end to a new leader and immediately
// resends the unacknowledged queue to it.
func (f *Frontend) SetLeader(leader tx.NodeID) {
	f.mu.Lock()
	if !f.session || f.leader == leader {
		f.mu.Unlock()
		return
	}
	f.leader = leader
	f.mu.Unlock()
	f.resend()
}

// Unacked reports how many submissions await sequencing.
func (f *Frontend) Unacked() int {
	if !f.session {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.unacked)
}

// resend retransmits the whole unacknowledged queue, in submission
// order, to the current leader.
func (f *Frontend) resend() {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	f.mu.Lock()
	queue := append([]*tx.Request(nil), f.unacked...)
	leader := f.leader
	f.lastProgress = f.clk.Now()
	f.mu.Unlock()
	for _, req := range queue {
		if f.forward(req, leader) != nil {
			return
		}
	}
}

func (f *Frontend) retryLoop() {
	defer f.done.Done()
	for {
		wake := make(chan struct{})
		go func() {
			f.clk.Sleep(f.retry)
			close(wake)
		}()
		select {
		case <-f.quit:
			return
		case <-wake:
		}
		f.mu.Lock()
		n := len(f.unacked)
		stalled := n > 0 && f.clk.Now().Sub(f.lastProgress) >= f.backoff
		if n == 0 {
			f.backoff = f.retry
		} else if stalled {
			f.backoff *= 2
			if f.backoff > f.rcap {
				f.backoff = f.rcap
			}
		}
		f.mu.Unlock()
		if stalled {
			f.resend()
		}
	}
}

// Stop halts a session front-end's retry loop.
func (f *Frontend) Stop() {
	if !f.session {
		return
	}
	select {
	case <-f.quit:
		return
	default:
	}
	close(f.quit)
	f.done.Wait()
}
