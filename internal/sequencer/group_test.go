package sequencer

import (
	"sync"
	"testing"
	"time"

	"hermes/internal/network"
	"hermes/internal/tx"
)

// ackGate wraps a ChanTransport and holds back standby replication acks
// while closed, releasing them on demand — the probe for the commit rule
// (a batch is deliverable only once the standbys appended it).
type ackGate struct {
	*network.ChanTransport
	mu   sync.Mutex
	open bool
	held []network.Message
}

func (g *ackGate) Send(m network.Message) error {
	if m.Type == network.MsgSeqReplicateAck {
		g.mu.Lock()
		if !g.open {
			g.held = append(g.held, m)
			g.mu.Unlock()
			return nil
		}
		g.mu.Unlock()
	}
	return g.ChanTransport.Send(m)
}

func (g *ackGate) release() {
	g.mu.Lock()
	held := g.held
	g.held = nil
	g.open = true
	g.mu.Unlock()
	for _, m := range held {
		_ = g.ChanTransport.Send(m)
	}
}

func groupConfig() Config {
	return Config{
		BatchSize: 1, Interval: time.Hour,
		Standbys:        1,
		Heartbeat:       time.Millisecond,
		FailoverTimeout: 15 * time.Millisecond,
		RetryTimeout:    5 * time.Millisecond,
		RetryCap:        50 * time.Millisecond,
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestGroupDeliveryWaitsForStandbyAck pins the replication commit rule:
// a sealed batch must not reach the members until the standby has
// acknowledged appending it.
func TestGroupDeliveryWaitsForStandbyAck(t *testing.T) {
	members := []tx.NodeID{0, 1}
	all := append(append([]tx.NodeID(nil), members...), GroupNodes(leaderID, 1)...)
	gate := &ackGate{ChanTransport: network.NewChanTransport(all, nil)}
	g := NewGroup(leaderID, gate, members, groupConfig(), nil)
	g.Start()
	t.Cleanup(func() { g.Stop(); gate.Close() })

	fe := NewSessionFrontend(members[0], leaderID, gate, nil, time.Hour, time.Hour)
	t.Cleanup(fe.Stop)
	if err := fe.Submit(req()); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-gate.Recv(members[1]):
		t.Fatalf("batch delivered before the standby acked: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	gate.release()
	b := recvBatch(t, gate, members[1])
	if b.Seq != 0 || len(b.Txns) != 1 {
		t.Fatalf("released batch = seq %d with %d txns, want seq 0 with 1", b.Seq, len(b.Txns))
	}
}

// TestGroupPromotionAndDedup kills the leader and checks the whole
// failover story at the sequencer layer: the standby notices the silence
// (counting misses), promotes itself into epoch 1, re-delivers the
// replicated history, dedups the front-end's blanket resend, and
// sequences new submissions with the next dense transaction id.
func TestGroupPromotionAndDedup(t *testing.T) {
	members := []tx.NodeID{0}
	all := append(append([]tx.NodeID(nil), members...), GroupNodes(leaderID, 1)...)
	tr := network.NewChanTransport(all, nil)
	g := NewGroup(leaderID, tr, members, groupConfig(), nil)
	g.Start()
	t.Cleanup(func() { g.Stop(); tr.Close() })

	fe := NewSessionFrontend(members[0], leaderID, tr, nil, 5*time.Millisecond, 50*time.Millisecond)
	t.Cleanup(fe.Stop)

	inbox := tr.Recv(members[0])
	// seen maps ClientSeq -> the batch seq it was sealed into; a second
	// batch seq for the same ClientSeq is a double-sequencing bug.
	seen := make(map[uint64]uint64)
	ids := make(map[uint64]tx.TxnID)
	collect := func(d time.Duration) {
		deadline := time.After(d)
		for {
			select {
			case m := <-inbox:
				if m.Type != network.MsgSeqDeliver {
					continue
				}
				for _, r := range m.Batch.Txns {
					if prev, dup := seen[r.ClientSeq]; dup && prev != m.Seq {
						t.Fatalf("client seq %d sequenced twice: batches %d and %d", r.ClientSeq, prev, m.Seq)
					}
					if prevID, dup := ids[r.ClientSeq]; dup && prevID != r.ID {
						t.Fatalf("client seq %d changed txn id across redelivery: %d then %d", r.ClientSeq, prevID, r.ID)
					}
					seen[r.ClientSeq] = m.Seq
					ids[r.ClientSeq] = r.ID
				}
			case <-deadline:
				return
			}
		}
	}

	for i := 0; i < 3; i++ {
		if err := fe.Submit(req()); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "first three batches", func() (ok bool) {
		collect(time.Millisecond)
		return len(seen) == 3
	})

	g.Kill(leaderID)
	standby := SeqNode(leaderID, 1)
	waitUntil(t, "promotion", func() bool { return g.LeaderID() == standby && g.Failovers() == 1 })
	if g.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", g.Epoch())
	}
	if g.HeartbeatMisses() == 0 {
		t.Fatal("no heartbeat misses recorded before promotion")
	}
	// The engine redirects front-ends on promotion; simulate it. Nothing
	// ever called Sequenced, so the frontend resends all three already-
	// sealed submissions — the new leader must dedup every one of them.
	fe.SetLeader(standby)
	if err := fe.Submit(req()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-failover batch", func() (ok bool) {
		collect(time.Millisecond)
		return len(seen) == 4
	})
	collect(20 * time.Millisecond) // absorb re-deliveries; collect re-checks dedup
	// Dense total order: txn ids 1..4, each client seq in exactly one batch.
	for cs := uint64(1); cs <= 4; cs++ {
		if got, want := ids[cs], tx.TxnID(cs); got != want {
			t.Fatalf("client seq %d got txn id %d, want %d", cs, got, want)
		}
	}
	if fe.Unacked() == 0 {
		t.Fatal("unacked queue empty without any Sequenced call")
	}
	// Sequencing acknowledgements prune the queue through the last batch.
	fe.Sequenced(&tx.Request{Client: members[0], ClientSeq: 4})
	if got := fe.Unacked(); got != 0 {
		t.Fatalf("unacked = %d after acknowledging everything, want 0", got)
	}
}

// TestGroupObserveEpochOrdersClaims pins the claim ordering the view and
// the replicas share: epoch first, then replica id, higher id (= lower
// rank) winning a same-epoch tie.
func TestGroupObserveEpochOrdersClaims(t *testing.T) {
	members := []tx.NodeID{0}
	all := append(append([]tx.NodeID(nil), members...), GroupNodes(leaderID, 2)...)
	tr := network.NewChanTransport(all, nil)
	cfg := groupConfig()
	cfg.Standbys = 2
	g := NewGroup(leaderID, tr, members, cfg, nil)
	t.Cleanup(func() { tr.Close() }) // never started; replicas hold no goroutines

	r1, r2 := SeqNode(leaderID, 1), SeqNode(leaderID, 2)
	if g.ObserveEpoch(leaderID, 0) {
		t.Fatal("re-observing the initial claim advanced the view")
	}
	if !g.ObserveEpoch(r2, 1) {
		t.Fatal("fresh epoch rejected")
	}
	// Same epoch, lower rank (higher id): wins the tie.
	if !g.ObserveEpoch(r1, 1) {
		t.Fatal("higher-priority same-epoch claim rejected")
	}
	// Same epoch, higher rank: loses.
	if g.ObserveEpoch(r2, 1) {
		t.Fatal("lower-priority same-epoch claim accepted")
	}
	if g.ObserveEpoch(leaderID, 0) {
		t.Fatal("stale epoch accepted")
	}
	if g.LeaderID() != r1 || g.Epoch() != 1 {
		t.Fatalf("view = (%d, %d), want (%d, 1)", g.LeaderID(), g.Epoch(), r1)
	}
}

// TestFrontendRedirectResendsInOrder pins the redirect path: everything
// unacknowledged is retransmitted to the new leader in submission order.
func TestFrontendRedirectResendsInOrder(t *testing.T) {
	nodes := []tx.NodeID{0, 1, 2}
	tr := network.NewChanTransport(nodes, nil)
	defer tr.Close()
	// Leader 1 is a black hole; nothing acknowledges.
	fe := NewSessionFrontend(0, 1, tr, nil, time.Hour, time.Hour)
	defer fe.Stop()
	for i := 0; i < 5; i++ {
		if err := fe.Submit(req()); err != nil {
			t.Fatal(err)
		}
	}
	if got := fe.Unacked(); got != 5 {
		t.Fatalf("unacked = %d, want 5", got)
	}
	fe.SetLeader(2)
	for want := uint64(1); want <= 5; want++ {
		select {
		case m := <-tr.Recv(2):
			if m.Type != network.MsgSeqForward || len(m.Batch.Txns) != 1 {
				t.Fatalf("unexpected redirect message %+v", m)
			}
			if got := m.Batch.Txns[0].ClientSeq; got != want {
				t.Fatalf("redirected client seq %d, want %d (order violated)", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("redirected submission %d never arrived", want)
		}
	}
}

// TestFrontendRetryBackoffIsCapped drives a stalled front-end against a
// black-hole leader and checks both that it keeps retrying and that the
// inter-retry backoff saturates at the cap instead of doubling forever.
func TestFrontendRetryBackoffIsCapped(t *testing.T) {
	nodes := []tx.NodeID{0, 1}
	tr := network.NewChanTransport(nodes, nil)
	defer tr.Close()
	const retry, rcap = 2 * time.Millisecond, 8 * time.Millisecond
	fe := NewSessionFrontend(0, 1, tr, nil, retry, rcap)
	defer fe.Stop()
	if err := fe.Submit(req()); err != nil {
		t.Fatal(err)
	}
	// Count retransmissions over a window long enough that uncapped
	// doubling (2, 4, 8, 16, 32, 64, 128...) would manage only ~6, while
	// capped-at-8ms retries keep firing.
	start := time.Now()
	resends := 0
	for time.Since(start) < 400*time.Millisecond {
		select {
		case m := <-tr.Recv(1):
			if m.Type == network.MsgSeqForward {
				resends++
			}
		case <-time.After(20 * time.Millisecond):
		}
	}
	fe.mu.Lock()
	backoff := fe.backoff
	fe.mu.Unlock()
	if backoff != rcap {
		t.Fatalf("stalled backoff = %v, want saturated at %v", backoff, rcap)
	}
	if resends < 10 {
		t.Fatalf("only %d retransmissions in 400ms; backoff appears uncapped", resends)
	}
}

// TestGroupStandbyTruncatesDivergentSuffix pins the reconciliation rule
// for a standby that appended a batch the dead leader sealed but never
// released: when the promoted leader reseals the same sequence number
// with different transactions, the standby must drop its divergent
// suffix — rolling nextTxn and the per-client watermarks back — and
// adopt the new leader's batch, rather than ignoring it as a duplicate.
func TestGroupStandbyTruncatesDivergentSuffix(t *testing.T) {
	tr := network.NewChanTransport([]tx.NodeID{-65, 0}, nil)
	defer tr.Close()
	l := newReplica(-65, tr, []tx.NodeID{0}, Config{BatchSize: 4}, nil, nil)

	mkReq := func(id tx.TxnID, seq uint64) *tx.Request {
		return &tx.Request{ID: id, Client: 7, ClientSeq: seq}
	}
	a := &tx.Batch{Seq: 0, Txns: []*tx.Request{mkReq(1, 1), mkReq(2, 2)}}
	b := &tx.Batch{Seq: 1, Txns: []*tx.Request{mkReq(3, 3), mkReq(4, 4)}}

	l.mu.Lock()
	l.appendReplicatedLocked(a)
	l.appendReplicatedLocked(b)
	if l.nextSeq != 2 || l.nextTxn != 5 || l.sealedHigh[7] != 4 {
		t.Fatalf("after epoch-0 stream: nextSeq=%d nextTxn=%d high=%d, want 2/5/4",
			l.nextSeq, l.nextTxn, l.sealedHigh[7])
	}

	// The leader dies before b is released anywhere else; the promoted
	// leader never saw it and reseals seq 1 with only the one request the
	// front-ends resent.
	l.epoch = 1
	b2 := &tx.Batch{Seq: 1, Txns: []*tx.Request{mkReq(3, 3)}}
	l.appendReplicatedLocked(b2)
	if len(l.log) != 2 || l.log[1] != b2 {
		t.Fatalf("divergent entry not superseded: log=%v", l.log)
	}
	if l.nextSeq != 2 || l.nextTxn != 4 || l.sealedHigh[7] != 3 {
		t.Fatalf("after reconcile: nextSeq=%d nextTxn=%d high=%d, want 2/4/3",
			l.nextSeq, l.nextTxn, l.sealedHigh[7])
	}
	if l.logEpochs[0] != 0 || l.logEpochs[1] != 1 {
		t.Fatalf("epoch tags = %v, want [0 1]", l.logEpochs)
	}

	// A retransmit of the entry we hold refreshes its tag and changes
	// nothing else.
	l.appendReplicatedLocked(a)
	if len(l.log) != 2 || l.log[0] != a || l.logEpochs[0] != 1 {
		t.Fatalf("retransmit of held entry mutated the log: %v tags=%v", l.log, l.logEpochs)
	}
	if l.nextSeq != 2 || l.nextTxn != 4 {
		t.Fatalf("retransmit moved the high-water mark: nextSeq=%d nextTxn=%d", l.nextSeq, l.nextTxn)
	}

	// A same-claim duplicate that is not the held object (re-decoded off
	// a real network) is dropped, not treated as divergence.
	dup := &tx.Batch{Seq: 1, Txns: []*tx.Request{mkReq(3, 3)}}
	l.appendReplicatedLocked(dup)
	if l.log[1] != b2 {
		t.Fatalf("same-claim duplicate replaced the held entry")
	}
	l.mu.Unlock()
}
