package sequencer

import (
	"testing"
	"time"

	"hermes/internal/network"
	"hermes/internal/tx"
)

const leaderID = tx.NodeID(100)

func newCluster(t *testing.T, nodes int, cfg Config) (*network.ChanTransport, *Leader, []tx.NodeID) {
	t.Helper()
	ids := make([]tx.NodeID, nodes)
	for i := range ids {
		ids[i] = tx.NodeID(i)
	}
	tr := NewTransportWithLeader(ids, leaderID)
	l := NewLeader(leaderID, tr, ids, cfg, nil)
	l.Start()
	t.Cleanup(func() { l.Stop(); tr.Close() })
	return tr, l, ids
}

// NewTransportWithLeader builds a ChanTransport whose node set includes the
// dedicated leader machine.
func NewTransportWithLeader(nodes []tx.NodeID, leader tx.NodeID) *network.ChanTransport {
	all := append(append([]tx.NodeID(nil), nodes...), leader)
	return network.NewChanTransport(all, nil)
}

func req() *tx.Request {
	return tx.NewRequest(0, &tx.OpProc{Reads: []tx.Key{1}, Writes: []tx.Key{1}})
}

func recvBatch(t *testing.T, tr network.Transport, node tx.NodeID) *tx.Batch {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case m := <-tr.Recv(node):
			if m.Type == network.MsgSeqDeliver {
				return m.Batch
			}
		case <-deadline:
			t.Fatal("no batch delivered")
			return nil
		}
	}
}

func TestBatchDeliveredToAllNodes(t *testing.T) {
	tr, _, ids := newCluster(t, 3, Config{BatchSize: 2, Interval: time.Hour})
	fe := NewFrontend(ids[1], leaderID, tr)
	fe.Submit(req())
	fe.Submit(req()) // second request fills the batch
	for _, n := range ids {
		b := recvBatch(t, tr, n)
		if b.Seq != 0 || len(b.Txns) != 2 {
			t.Fatalf("node %d got batch seq=%d len=%d", n, b.Seq, len(b.Txns))
		}
	}
}

func TestTxnIDsAreDenseAndOrdered(t *testing.T) {
	tr, _, ids := newCluster(t, 2, Config{BatchSize: 5, Interval: time.Hour})
	fe := NewFrontend(ids[0], leaderID, tr)
	for i := 0; i < 10; i++ {
		fe.Submit(req())
	}
	want := tx.TxnID(1)
	for b := 0; b < 2; b++ {
		batch := recvBatch(t, tr, ids[0])
		if batch.Seq != uint64(b) {
			t.Fatalf("batch seq = %d, want %d", batch.Seq, b)
		}
		for _, r := range batch.Txns {
			if r.ID != want {
				t.Fatalf("txn id = %d, want %d", r.ID, want)
			}
			want++
		}
	}
}

func TestIntervalFlush(t *testing.T) {
	tr, _, ids := newCluster(t, 1, Config{BatchSize: 1000, Interval: 5 * time.Millisecond})
	fe := NewFrontend(ids[0], leaderID, tr)
	fe.Submit(req())
	b := recvBatch(t, tr, ids[0]) // must arrive despite batch not full
	if len(b.Txns) != 1 {
		t.Fatalf("batch len = %d", len(b.Txns))
	}
}

func TestIdenticalBatchStreamAcrossNodes(t *testing.T) {
	tr, _, ids := newCluster(t, 4, Config{BatchSize: 3, Interval: 2 * time.Millisecond})
	fe0 := NewFrontend(ids[0], leaderID, tr)
	fe1 := NewFrontend(ids[1], leaderID, tr)
	const total = 30
	for i := 0; i < total; i++ {
		if i%2 == 0 {
			fe0.Submit(req())
		} else {
			fe1.Submit(req())
		}
	}
	// Collect the full stream per node and compare.
	streams := make([][]tx.TxnID, len(ids))
	for ni, n := range ids {
		got := 0
		for got < total {
			b := recvBatch(t, tr, n)
			for _, r := range b.Txns {
				streams[ni] = append(streams[ni], r.ID)
				got++
			}
		}
	}
	for ni := 1; ni < len(streams); ni++ {
		if len(streams[ni]) != len(streams[0]) {
			t.Fatalf("node %d saw %d txns, node 0 saw %d", ni, len(streams[ni]), len(streams[0]))
		}
		for i := range streams[0] {
			if streams[ni][i] != streams[0][i] {
				t.Fatalf("node %d diverges at position %d", ni, i)
			}
		}
	}
}

func TestSetMembersAffectsDelivery(t *testing.T) {
	tr, l, ids := newCluster(t, 2, Config{BatchSize: 1, Interval: time.Hour})
	tr.AddNode(7)
	l.SetMembers(append(ids, 7))
	if len(l.Members()) != 3 {
		t.Fatalf("Members = %v", l.Members())
	}
	fe := NewFrontend(ids[0], leaderID, tr)
	fe.Submit(req())
	b := recvBatch(t, tr, 7)
	if len(b.Txns) != 1 {
		t.Fatal("added node did not receive batch")
	}
}

func TestAcks(t *testing.T) {
	tr, l, ids := newCluster(t, 2, Config{BatchSize: 1, Interval: time.Hour})
	fe := NewFrontend(ids[0], leaderID, tr)
	fe.Submit(req())
	for _, n := range ids {
		b := recvBatch(t, tr, n)
		Ack(n, leaderID, tr, b.Seq)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Acks(0) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("acks = %d, want 2", l.Acks(0))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStopIsIdempotentAndHalts(t *testing.T) {
	ids := []tx.NodeID{0}
	tr := NewTransportWithLeader(ids, leaderID)
	defer tr.Close()
	l := NewLeader(leaderID, tr, ids, Config{BatchSize: 1, Interval: time.Millisecond}, nil)
	l.Start()
	l.Stop()
	l.Stop() // second stop must not panic or deadlock
}

func TestEmptyFlushProducesNothing(t *testing.T) {
	tr, l, ids := newCluster(t, 1, Config{BatchSize: 10, Interval: time.Hour})
	l.Flush()
	select {
	case m := <-tr.Recv(ids[0]):
		t.Fatalf("unexpected delivery: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}
