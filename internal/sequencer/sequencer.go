// Package sequencer implements the input layer of the deterministic stack
// (§2.1): node front-ends forward client requests to a dedicated leader —
// the role the paper gives to one machine running the Zab total-ordering
// protocol — which compiles them into batches, assigns the global total
// order (batch sequence numbers and dense transaction IDs), and delivers
// the identical batch stream to every node over the transport.
//
// The paper's cluster dedicates a full machine to the Zab leader; this
// reproduction does the same by giving the leader its own transport node.
// Quorum acknowledgement is tracked (followers ack every delivered batch)
// but delivery is not gated on it: with deterministic execution the input
// log, not the ack round, is what recovery relies on (§4.3).
package sequencer

import (
	"sync"
	"time"

	"hermes/internal/clock"
	"hermes/internal/network"
	"hermes/internal/tx"
)

// Config controls batching.
type Config struct {
	// BatchSize flushes a batch once this many requests are pending.
	BatchSize int
	// Interval flushes a non-empty batch after this long even if it is
	// not full, bounding latency at low load.
	Interval time.Duration
}

// DefaultConfig mirrors the paper's setting of interest: large batches
// (hundreds to a thousand requests) flushed every few tens of
// milliseconds.
func DefaultConfig() Config {
	return Config{BatchSize: 100, Interval: 10 * time.Millisecond}
}

// Leader is the total-order service. Create with NewLeader, start with
// Start, stop with Stop.
type Leader struct {
	id    tx.NodeID
	tr    network.Transport
	cfg   Config
	clk   clock.Clock
	stats *network.Stats

	mu      sync.Mutex
	members []tx.NodeID
	pending []*tx.Request
	nextSeq uint64
	nextTxn tx.TxnID
	acks    map[uint64]int
	stopped bool

	statBatches  int64
	statTxns     int64
	statLastFill float64

	quit chan struct{}
	done sync.WaitGroup
}

// NewLeader creates a leader bound to transport node id, delivering to
// members. The member list is copied.
func NewLeader(id tx.NodeID, tr network.Transport, members []tx.NodeID, cfg Config, clk clock.Clock) *Leader {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &Leader{
		id:      id,
		tr:      tr,
		cfg:     cfg,
		clk:     clk,
		members: append([]tx.NodeID(nil), members...),
		nextTxn: 1,
		acks:    make(map[uint64]int),
		quit:    make(chan struct{}),
	}
}

// Start launches the leader's receive and flush loops.
func (l *Leader) Start() {
	l.done.Add(2)
	go l.recvLoop()
	go l.flushLoop()
}

// Stop flushes nothing further and waits for the loops to exit.
func (l *Leader) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	l.mu.Unlock()
	close(l.quit)
	l.done.Wait()
}

func (l *Leader) recvLoop() {
	defer l.done.Done()
	inbox := l.tr.Recv(l.id)
	for {
		select {
		case <-l.quit:
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			switch m.Type {
			case network.MsgSeqForward:
				if m.Batch == nil {
					continue
				}
				l.mu.Lock()
				l.pending = append(l.pending, m.Batch.Txns...)
				full := len(l.pending) >= l.cfg.BatchSize
				l.mu.Unlock()
				if full {
					l.Flush()
				}
			case network.MsgSeqAck:
				l.mu.Lock()
				l.acks[m.Seq]++
				l.mu.Unlock()
			}
		}
	}
}

func (l *Leader) flushLoop() {
	defer l.done.Done()
	for {
		// Sleep on a side goroutine so Stop is never blocked behind a
		// long flush interval; at most one sleeper outlives the leader.
		wake := make(chan struct{})
		go func() {
			l.clk.Sleep(l.cfg.Interval)
			close(wake)
		}()
		select {
		case <-l.quit:
			return
		case <-wake:
			l.Flush()
		}
	}
}

// Flush seals the pending requests into a batch (if any) and delivers it
// to every member. It is also called internally on size and interval
// triggers; exposing it lets tests and closed-loop drivers force progress.
func (l *Leader) Flush() {
	l.mu.Lock()
	if len(l.pending) == 0 {
		l.mu.Unlock()
		return
	}
	reqs := l.pending
	l.pending = nil
	// Assign the total order: dense transaction IDs in batch order.
	for _, r := range reqs {
		r.ID = l.nextTxn
		l.nextTxn++
	}
	batch := &tx.Batch{Seq: l.nextSeq, Txns: reqs}
	l.nextSeq++
	l.statBatches++
	l.statTxns += int64(len(reqs))
	l.statLastFill = float64(len(reqs)) / float64(l.cfg.BatchSize)
	members := append([]tx.NodeID(nil), l.members...)
	l.mu.Unlock()

	for _, n := range members {
		// Delivery failures mean the transport is closed mid-shutdown;
		// nothing useful can be done with the error here.
		_ = l.tr.Send(network.Message{
			From: l.id, To: n, Type: network.MsgSeqDeliver,
			Seq: batch.Seq, Batch: batch,
		})
	}
}

// LeaderStats reports batching activity: how many batches and
// transactions the leader has sealed, how full the most recent batch was
// relative to the configured size, and the requests currently pending.
type LeaderStats struct {
	Batches  int64
	Txns     int64
	LastFill float64 // last sealed batch size / BatchSize
	Pending  int     // requests awaiting the next flush
}

// Stats returns cumulative batching statistics. Safe to call from any
// goroutine.
func (l *Leader) Stats() LeaderStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LeaderStats{
		Batches:  l.statBatches,
		Txns:     l.statTxns,
		LastFill: l.statLastFill,
		Pending:  len(l.pending),
	}
}

// SetNext positions the total order: the next flushed batch gets sequence
// seq and its first transaction gets id next. Recovery uses this to
// resume the order after replaying a command log.
func (l *Leader) SetNext(seq uint64, next tx.TxnID) {
	l.mu.Lock()
	l.nextSeq = seq
	l.nextTxn = next
	l.mu.Unlock()
}

// Next reports the sequence the next flushed batch will get and the id its
// first transaction will get — the inverse of SetNext. Checkpoints record
// this pair so recovery can resume the total order exactly where the
// snapshot cut it.
func (l *Leader) Next() (seq uint64, next tx.TxnID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq, l.nextTxn
}

// SetMembers atomically replaces the delivery membership. The engine calls
// this when provisioning changes take effect; the change applies to the
// next flushed batch.
func (l *Leader) SetMembers(members []tx.NodeID) {
	l.mu.Lock()
	l.members = append([]tx.NodeID(nil), members...)
	l.mu.Unlock()
}

// Members returns a copy of the current membership.
func (l *Leader) Members() []tx.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]tx.NodeID(nil), l.members...)
}

// Acks reports how many members have acknowledged batch seq.
func (l *Leader) Acks(seq uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acks[seq]
}

// Frontend is a node-local sequencer front-end: it forwards client
// requests to the leader, paying one network hop as in Calvin.
type Frontend struct {
	node   tx.NodeID
	leader tx.NodeID
	tr     network.Transport
}

// NewFrontend returns a front-end for node forwarding to leader.
func NewFrontend(node, leader tx.NodeID, tr network.Transport) *Frontend {
	return &Frontend{node: node, leader: leader, tr: tr}
}

// Submit forwards a client request to the leader. The returned error is
// non-nil only if the transport is closed.
func (f *Frontend) Submit(req *tx.Request) error {
	return f.tr.Send(network.Message{
		From: f.node, To: f.leader, Type: network.MsgSeqForward,
		Batch: &tx.Batch{Txns: []*tx.Request{req}},
	})
}

// Ack sends a batch acknowledgement from node to the leader.
func Ack(node, leader tx.NodeID, tr network.Transport, seq uint64) {
	_ = tr.Send(network.Message{From: node, To: leader, Type: network.MsgSeqAck, Seq: seq})
}
