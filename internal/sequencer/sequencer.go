// Package sequencer implements the input layer of the deterministic stack
// (§2.1): node front-ends forward client requests to a dedicated leader —
// the role the paper gives to one machine running the Zab total-ordering
// protocol — which compiles them into batches, assigns the global total
// order (batch sequence numbers and dense transaction IDs), and delivers
// the identical batch stream to every node over the transport.
//
// The paper's cluster dedicates a full machine to the Zab leader and
// assumes the total-order service itself is replicated and fault
// tolerant. This package reproduces that too: a Group runs the leader
// plus Config.Standbys standby replicas on their own transport nodes.
// The leader replicates every sealed batch to the standbys *before*
// delivering it to the cluster — a batch is deliverable only once every
// live standby has appended and acknowledged it, so the delivered prefix
// of the total order survives leader death. Standbys detect leader
// silence through clock-injected heartbeats (timeout + capped probe
// backoff) and promote deterministically: the first live standby in rank
// order resumes from its replicated (seq, nextTxn) high-water mark under
// a new epoch, re-delivers its retained log (idempotent at the nodes'
// command logs), and announces the epoch so front-ends redirect. Client
// front-ends keep every unacknowledged request queued and resend the
// whole queue in submission order on retry or leader change; the leader
// deduplicates by (Client, ClientSeq), so no request is lost or
// sequenced twice across the failover.
package sequencer

import (
	"sync"
	"time"

	"hermes/internal/clock"
	"hermes/internal/network"
	"hermes/internal/tx"
)

// Config controls batching and the fault-tolerance profile of the
// total-order service.
type Config struct {
	// BatchSize flushes a batch once this many requests are pending.
	BatchSize int
	// Interval flushes a non-empty batch after this long even if it is
	// not full, bounding latency at low load.
	Interval time.Duration

	// Standbys is the number of standby sequencer replicas behind the
	// leader. 0 (the default) runs a single unreplicated leader with the
	// exact pre-replication behavior: no heartbeats, no replication
	// traffic, immediate delivery.
	Standbys int
	// Heartbeat is the leader's liveness pulse interval to standbys.
	Heartbeat time.Duration
	// FailoverTimeout is how long a standby lets the leader stay silent
	// before the first standby in promotion order takes over; standby k
	// waits k+1 times this, staggering takeover attempts.
	FailoverTimeout time.Duration
	// RetryTimeout is how long a front-end lets a submission stay
	// unacknowledged before resending its queue; the resend interval
	// backs off exponentially up to RetryCap.
	RetryTimeout time.Duration
	// RetryCap bounds the front-end resend backoff.
	RetryCap time.Duration
}

// Fault-tolerance defaults, applied by Group when the corresponding
// field is zero and Standbys > 0.
const (
	defaultHeartbeat       = 5 * time.Millisecond
	defaultFailoverTimeout = 50 * time.Millisecond
	defaultRetryTimeout    = 20 * time.Millisecond
	defaultRetryCap        = 250 * time.Millisecond
)

// DefaultConfig mirrors the paper's setting of interest: large batches
// (hundreds to a thousand requests) flushed every few tens of
// milliseconds.
func DefaultConfig() Config {
	return Config{BatchSize: 100, Interval: 10 * time.Millisecond}
}

// pendingBatch is a sealed batch the leader may not deliver yet: need
// holds the standbys whose replication ack is still outstanding. The set
// is snapshotted at seal time so a standby that recovers later is never
// retroactively required.
type pendingBatch struct {
	batch *tx.Batch
	need  map[tx.NodeID]bool
}

// Leader is one total-order replica. Standalone (NewLeader, the
// pre-replication API) it is always the leader; inside a Group it is the
// epoch's leader or a standby tracking the replicated batch stream.
// Create with NewLeader or via NewGroup, start with Start, stop with
// Stop.
type Leader struct {
	id    tx.NodeID
	tr    network.Transport
	cfg   Config
	clk   clock.Clock
	group *Group // nil for a standalone leader

	mu      sync.Mutex
	members []tx.NodeID
	pending []*tx.Request
	nextSeq uint64
	nextTxn tx.TxnID
	acks    map[uint64]int
	stopped bool

	// Replication and failover state (Group mode).
	epoch      uint64
	leaderID   tx.NodeID // believed leader of epoch
	leading    bool
	recovering bool // restarted replica replaying logged input
	fenced     bool // sealing disabled (crash preparation)

	log        []*tx.Batch // sealed batches retained since logBase
	logEpochs  []uint64    // epoch each retained entry was appended under
	logBase    uint64
	txnBase    tx.TxnID // nextTxn as of the start of the retained log
	unreleased []*pendingBatch
	repFuture  map[uint64]*tx.Batch // standby: out-of-order replicates
	arrived    map[tx.NodeID]uint64 // leader: highest ClientSeq accepted
	sealedHigh map[tx.NodeID]uint64 // highest ClientSeq sealed into a batch
	clientBase map[tx.NodeID]uint64 // sealedHigh as of logBase
	lastHeard  time.Time

	statBatches  int64
	statTxns     int64
	statLastFill float64

	quit chan struct{}
	done sync.WaitGroup
}

// NewLeader creates a standalone leader bound to transport node id,
// delivering to members. The member list is copied.
func NewLeader(id tx.NodeID, tr network.Transport, members []tx.NodeID, cfg Config, clk clock.Clock) *Leader {
	l := newReplica(id, tr, members, cfg, clk, nil)
	l.leading = true
	return l
}

func newReplica(id tx.NodeID, tr network.Transport, members []tx.NodeID, cfg Config, clk clock.Clock, g *Group) *Leader {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &Leader{
		id:         id,
		tr:         tr,
		cfg:        cfg,
		clk:        clk,
		group:      g,
		members:    append([]tx.NodeID(nil), members...),
		nextTxn:    1,
		txnBase:    1,
		leaderID:   id,
		acks:       make(map[uint64]int),
		repFuture:  make(map[uint64]*tx.Batch),
		arrived:    make(map[tx.NodeID]uint64),
		sealedHigh: make(map[tx.NodeID]uint64),
		clientBase: make(map[tx.NodeID]uint64),
		lastHeard:  clk.Now(),
		quit:       make(chan struct{}),
	}
}

// replicated reports whether this replica runs the replication protocol
// (it belongs to a group with at least one standby).
func (l *Leader) replicated() bool { return l.group != nil && l.group.size() > 1 }

// Start launches the replica's receive and flush loops, plus the
// heartbeat/failover loop when replication is on.
func (l *Leader) Start() {
	l.done.Add(2)
	go l.recvLoop()
	go l.flushLoop()
	if l.replicated() {
		l.done.Add(1)
		go l.pulseLoop()
	}
}

// Stop flushes nothing further and waits for the loops to exit.
func (l *Leader) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	l.mu.Unlock()
	close(l.quit)
	l.done.Wait()
}

func (l *Leader) recvLoop() {
	defer l.done.Done()
	inbox := l.tr.Recv(l.id)
	for {
		select {
		case <-l.quit:
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			switch m.Type {
			case network.MsgSeqForward:
				l.handleForward(m)
			case network.MsgSeqAck:
				l.mu.Lock()
				l.acks[m.Seq]++
				l.mu.Unlock()
			case network.MsgSeqReplicate:
				l.handleReplicate(m)
			case network.MsgSeqReplicateAck:
				l.handleReplicateAck(m)
			case network.MsgSeqHeartbeat, network.MsgSeqEpoch:
				l.handleEpochBearing(m)
			}
		}
	}
}

// handleForward accepts client submissions. Only the current epoch's
// unfenced leader accepts; everyone else drops and relies on the
// front-end's retry to re-deliver after redirection. Accepted requests
// are deduplicated by (Client, ClientSeq) so a retried submission that
// did arrive the first time is never sequenced twice.
func (l *Leader) handleForward(m network.Message) {
	if m.Batch == nil {
		return
	}
	l.mu.Lock()
	if !l.leading || l.fenced || l.recovering || l.stopped {
		l.mu.Unlock()
		return
	}
	for _, r := range m.Batch.Txns {
		if r.ClientSeq != 0 {
			if r.ClientSeq <= l.arrived[r.Client] {
				continue
			}
			l.arrived[r.Client] = r.ClientSeq
		}
		l.pending = append(l.pending, r)
	}
	full := len(l.pending) >= l.cfg.BatchSize
	l.mu.Unlock()
	if full {
		l.Flush()
	}
}

// handleReplicate appends a batch replicated by the current leader and
// acknowledges it. Replicates from a stale epoch are bounced with the
// current epoch instead of acknowledged, which fences a deposed leader:
// it can never assemble the acks its delivery rule requires.
func (l *Leader) handleReplicate(m network.Message) {
	l.mu.Lock()
	switch cmp := l.claimCmp(m.Epoch, m.From); {
	case cmp < 0:
		ep, ld := l.epoch, l.leaderID
		l.mu.Unlock()
		l.sendEpoch(m.From, ep, ld)
		return
	case cmp > 0:
		l.adoptEpochLocked(m.Epoch, m.From)
	}
	l.lastHeard = l.clk.Now()
	if m.Batch != nil {
		l.appendReplicatedLocked(m.Batch)
	}
	ep := l.epoch
	l.mu.Unlock()
	// Ack every replicate, duplicates included: the original ack may have
	// been the casualty.
	_ = l.tr.Send(network.Message{
		From: l.id, To: m.From, Type: network.MsgSeqReplicateAck,
		Seq: m.Seq, Epoch: ep,
	})
}

// appendReplicatedLocked applies one replicated batch in sequence order,
// holding out-of-order arrivals until the gap fills, and tracks the
// (seq, nextTxn) high-water mark plus per-client sealed watermarks this
// replica would resume from if promoted.
func (l *Leader) appendReplicatedLocked(b *tx.Batch) {
	if b.Seq < l.nextSeq {
		l.reconcileReplicatedLocked(b)
		return
	}
	if b.Seq > l.nextSeq {
		l.repFuture[b.Seq] = b
		return
	}
	l.applyReplicatedLocked(b)
	for {
		nb, ok := l.repFuture[l.nextSeq]
		if !ok {
			return
		}
		delete(l.repFuture, l.nextSeq)
		l.applyReplicatedLocked(nb)
	}
}

// reconcileReplicatedLocked handles a replicate at a sequence this
// replica already holds. Usually it is a retransmit of the entry we
// have. But after a failover it can instead be the new leader's
// *different* batch for that sequence: this replica may have appended a
// batch the dead leader sealed but never released (release requires
// every live standby's ack, not just ours), while the promoted leader —
// which never received that batch — resealed the same sequence number
// from the front-ends' resent queues. The current leader's stream is
// authoritative: the entry and everything after it are unreleased
// leftovers of the dead epoch, so the suffix is truncated — rolling the
// (seq, nextTxn) high-water mark and the per-client sealed watermarks
// back to the surviving prefix — and the superseding batch applied in
// its place. Without this a twice-promoted standby could re-deliver the
// leftover under a sequence number the cluster saw different
// transactions for.
func (l *Leader) reconcileReplicatedLocked(b *tx.Batch) {
	if len(l.log) == 0 || b.Seq < l.log[0].Seq {
		return // below the retained log: ancient duplicate
	}
	idx := int(b.Seq - l.log[0].Seq)
	if idx >= len(l.log) {
		return // the retained log is dense, so this cannot happen
	}
	if l.log[idx] == b {
		// The very batch we hold, re-sent — a retransmit, or the promoted
		// leader re-replicating its retained log: adopt the new epoch tag.
		if l.epoch > l.logEpochs[idx] {
			l.logEpochs[idx] = l.epoch
		}
		return
	}
	if l.logEpochs[idx] >= l.epoch {
		return // same-claim duplicate (re-decoded off a real network)
	}
	// Divergent suffix: drop it and apply the superseding batch.
	l.log = l.log[:idx]
	l.logEpochs = l.logEpochs[:idx]
	l.nextSeq = b.Seq
	l.nextTxn = l.txnBase
	for i := idx - 1; i >= 0; i-- {
		if n := len(l.log[i].Txns); n > 0 {
			l.nextTxn = l.log[i].Txns[n-1].ID + 1
			break
		}
	}
	l.sealedHigh = l.recomputeSealedLocked()
	l.applyReplicatedLocked(b)
	for {
		nb, ok := l.repFuture[l.nextSeq]
		if !ok {
			return
		}
		delete(l.repFuture, l.nextSeq)
		l.applyReplicatedLocked(nb)
	}
}

func (l *Leader) applyReplicatedLocked(b *tx.Batch) {
	l.log = append(l.log, b)
	l.logEpochs = append(l.logEpochs, l.epoch)
	l.nextSeq = b.Seq + 1
	if n := len(b.Txns); n > 0 {
		l.nextTxn = b.Txns[n-1].ID + 1
	}
	for _, r := range b.Txns {
		if r.ClientSeq != 0 && r.ClientSeq > l.sealedHigh[r.Client] {
			l.sealedHigh[r.Client] = r.ClientSeq
		}
	}
}

// handleReplicateAck records a standby's replication ack and releases
// every leading fully-acknowledged batch for delivery, in sequence
// order. Releases happen only on this (receive-loop) goroutine, so
// deliveries can never reorder.
func (l *Leader) handleReplicateAck(m network.Message) {
	l.mu.Lock()
	if m.Epoch != l.epoch || !l.leading {
		l.mu.Unlock()
		return
	}
	for _, pb := range l.unreleased {
		if pb.batch.Seq == m.Seq {
			delete(pb.need, m.From)
			break
		}
	}
	var release []*tx.Batch
	for len(l.unreleased) > 0 && len(l.unreleased[0].need) == 0 {
		release = append(release, l.unreleased[0].batch)
		l.unreleased = l.unreleased[1:]
	}
	members := append([]tx.NodeID(nil), l.members...)
	ep := l.epoch
	l.mu.Unlock()
	for _, b := range release {
		l.deliver(b, members, ep)
	}
}

// handleEpochBearing processes heartbeats and epoch announcements: adopt
// newer epochs (stepping down if we led the old one), refresh the
// leader's liveness on current-epoch traffic, and bounce stale leaders
// with the epoch they missed.
func (l *Leader) handleEpochBearing(m network.Message) {
	l.mu.Lock()
	switch cmp := l.claimCmp(m.Epoch, m.From); {
	case cmp > 0:
		l.adoptEpochLocked(m.Epoch, m.From)
		l.lastHeard = l.clk.Now()
		l.mu.Unlock()
	case cmp == 0:
		if m.From != l.id {
			l.lastHeard = l.clk.Now()
		}
		l.mu.Unlock()
	default:
		// Stale or outranked claimant: bounce back the claim it lost to,
		// so a deposed or tied-and-losing leader steps down. The bounce
		// never triggers a counter-bounce — the receiver either adopts
		// (strictly greater claim) or already agrees.
		ep, ld := l.epoch, l.leaderID
		l.mu.Unlock()
		l.sendEpoch(m.From, ep, ld)
	}
}

// claimCmp orders a leadership claim (epoch, from) against the replica's
// current belief (l.epoch, l.leaderID): +1 newer, 0 same, -1 outranked.
// Claims are ordered lexicographically — epoch first, then replica id,
// higher id (= lower rank) winning — so two standbys that promote into
// the same epoch concurrently resolve deterministically: the lower rank
// keeps leading, the other steps back down. Call with l.mu held.
func (l *Leader) claimCmp(epoch uint64, from tx.NodeID) int {
	switch {
	case epoch != l.epoch:
		if epoch > l.epoch {
			return 1
		}
		return -1
	case from != l.leaderID:
		if from > l.leaderID {
			return 1
		}
		return -1
	}
	return 0
}

// adoptEpochLocked moves the replica to a newer epoch led by leader. A
// replica that led the older epoch steps down: its unflushed requests
// and sealed-but-undelivered batches are discarded (front-ends hold and
// retry everything unacknowledged, and an undelivered batch was by
// definition never acknowledged), and its counters roll back to the
// delivered prefix.
func (l *Leader) adoptEpochLocked(epoch uint64, leader tx.NodeID) {
	wasLeading := l.leading
	l.epoch = epoch
	l.leaderID = leader
	l.leading = leader == l.id
	// Replicates buffered behind a gap are unreleased by construction
	// (release is strictly in sequence order and the gap batch never got
	// this replica's ack), so under the new claim they may have been
	// superseded; the new leader re-replicates its authoritative log.
	for k := range l.repFuture {
		delete(l.repFuture, k)
	}
	if wasLeading && !l.leading {
		l.stepDownLocked()
	}
}

func (l *Leader) stepDownLocked() {
	for i := len(l.unreleased) - 1; i >= 0; i-- {
		pb := l.unreleased[i]
		if n := len(l.log); n > 0 && l.log[n-1] == pb.batch {
			l.log = l.log[:n-1]
			l.logEpochs = l.logEpochs[:n-1]
		}
		l.nextSeq = pb.batch.Seq
		if len(pb.batch.Txns) > 0 {
			l.nextTxn = pb.batch.Txns[0].ID
		}
	}
	l.unreleased = nil
	l.pending = nil
	l.sealedHigh = l.recomputeSealedLocked()
}

// recomputeSealedLocked rebuilds the per-client sealed watermarks from
// the log-base snapshot plus the retained log.
func (l *Leader) recomputeSealedLocked() map[tx.NodeID]uint64 {
	sh := make(map[tx.NodeID]uint64, len(l.clientBase))
	for k, v := range l.clientBase {
		sh[k] = v
	}
	for _, b := range l.log {
		for _, r := range b.Txns {
			if r.ClientSeq != 0 && r.ClientSeq > sh[r.Client] {
				sh[r.Client] = r.ClientSeq
			}
		}
	}
	return sh
}

func (l *Leader) sendEpoch(to tx.NodeID, epoch uint64, leader tx.NodeID) {
	_ = l.tr.Send(network.Message{
		From: leader, To: to, Type: network.MsgSeqEpoch, Epoch: epoch,
	})
}

func (l *Leader) flushLoop() {
	defer l.done.Done()
	for {
		// Sleep on a side goroutine so Stop is never blocked behind a
		// long flush interval; at most one sleeper outlives the leader.
		wake := make(chan struct{})
		go func() {
			l.clk.Sleep(l.cfg.Interval)
			close(wake)
		}()
		select {
		case <-l.quit:
			return
		case <-wake:
			l.Flush()
		}
	}
}

// pulseLoop is the replication liveness loop. A leader pulses heartbeats
// to its live peers every Heartbeat. A standby watches for leader
// silence: past one missed heartbeat it counts a miss and backs its
// probe interval off exponentially (capped at half the failover
// timeout); past its staggered share of FailoverTimeout it promotes.
func (l *Leader) pulseLoop() {
	defer l.done.Done()
	probe := l.cfg.Heartbeat
	for {
		wake := make(chan struct{})
		go func(d time.Duration) {
			l.clk.Sleep(d)
			close(wake)
		}(probe)
		select {
		case <-l.quit:
			return
		case <-wake:
		}
		l.mu.Lock()
		switch {
		case l.stopped || l.recovering || l.fenced:
			l.mu.Unlock()
			probe = l.cfg.Heartbeat
		case l.leading:
			ep := l.epoch
			_, live := l.group.peers(l.id)
			l.mu.Unlock()
			for _, p := range live {
				_ = l.tr.Send(network.Message{
					From: l.id, To: p, Type: network.MsgSeqHeartbeat, Epoch: ep,
				})
			}
			probe = l.cfg.Heartbeat
		default:
			silent := l.clk.Now().Sub(l.lastHeard)
			if silent <= l.cfg.Heartbeat {
				l.mu.Unlock()
				probe = l.cfg.Heartbeat
				continue
			}
			l.group.noteMiss()
			pos := l.group.promotePos(l.id)
			if pos >= 0 && silent >= l.cfg.FailoverTimeout*time.Duration(pos+1) {
				l.promoteLocked() // unlocks l.mu
				probe = l.cfg.Heartbeat
				continue
			}
			l.mu.Unlock()
			probe *= 2
			if lim := l.cfg.FailoverTimeout / 2; lim > 0 && probe > lim {
				probe = lim
			}
		}
	}
}

// promoteLocked makes this standby the leader of a new epoch. Called
// with l.mu held; returns with it released. Before accepting new work it
// re-delivers its whole retained log to the members (idempotent at their
// command logs) and re-replicates it to every peer — live peers dedup by
// sequence, and a peer that is down receives the history through its
// delivery log on restart. Only then does it start leading, seeded with
// its replicated (seq, nextTxn) high-water mark and per-client dedup
// watermarks, and announce the epoch to members and peers.
func (l *Leader) promoteLocked() {
	newEpoch := l.epoch + 1
	l.epoch = newEpoch
	l.leaderID = l.id
	// Anything buffered behind a replication gap belonged to the dead
	// epoch and was never released; the log this replica promotes with is
	// the authoritative prefix.
	for k := range l.repFuture {
		delete(l.repFuture, k)
	}
	logCopy := append([]*tx.Batch(nil), l.log...)
	members := append([]tx.NodeID(nil), l.members...)
	peers, _ := l.group.peers(l.id)
	l.mu.Unlock()

	for _, b := range logCopy {
		for _, n := range members {
			_ = l.tr.Send(network.Message{
				From: l.id, To: n, Type: network.MsgSeqDeliver,
				Seq: b.Seq, Epoch: newEpoch, Batch: b,
			})
		}
		for _, p := range peers {
			_ = l.tr.Send(network.Message{
				From: l.id, To: p, Type: network.MsgSeqReplicate,
				Seq: b.Seq, Epoch: newEpoch, Batch: b,
			})
		}
	}
	for _, n := range members {
		_ = l.tr.Send(network.Message{From: l.id, To: n, Type: network.MsgSeqEpoch, Epoch: newEpoch})
	}
	for _, p := range peers {
		_ = l.tr.Send(network.Message{From: l.id, To: p, Type: network.MsgSeqEpoch, Epoch: newEpoch})
	}

	l.mu.Lock()
	l.leading = true
	l.arrived = make(map[tx.NodeID]uint64, len(l.sealedHigh))
	for k, v := range l.sealedHigh {
		l.arrived[k] = v
	}
	l.lastHeard = l.clk.Now()
	l.mu.Unlock()
	l.group.announce(l.id, newEpoch)
}

// Flush seals the pending requests into a batch (if any), replicates it
// to the live standbys, and — once they have all acknowledged it, or
// immediately when unreplicated — delivers it to every member. It is
// also called internally on size and interval triggers; exposing it lets
// tests and closed-loop drivers force progress.
func (l *Leader) Flush() {
	l.mu.Lock()
	if !l.leading || l.fenced || l.recovering || len(l.pending) == 0 {
		l.mu.Unlock()
		return
	}
	reqs := l.pending
	l.pending = nil
	// Assign the total order: dense transaction IDs in batch order.
	for _, r := range reqs {
		r.ID = l.nextTxn
		l.nextTxn++
		if r.ClientSeq != 0 && r.ClientSeq > l.sealedHigh[r.Client] {
			l.sealedHigh[r.Client] = r.ClientSeq
		}
	}
	batch := &tx.Batch{Seq: l.nextSeq, Txns: reqs}
	l.nextSeq++
	l.statBatches++
	l.statTxns += int64(len(reqs))
	l.statLastFill = float64(len(reqs)) / float64(l.cfg.BatchSize)
	members := append([]tx.NodeID(nil), l.members...)
	ep := l.epoch
	var peers, live []tx.NodeID
	if l.replicated() {
		l.log = append(l.log, batch)
		l.logEpochs = append(l.logEpochs, l.epoch)
		peers, live = l.group.peers(l.id)
	}
	if len(live) == 0 {
		l.mu.Unlock()
		for _, p := range peers {
			l.replicate(batch, p, ep)
		}
		l.deliver(batch, members, ep)
		return
	}
	need := make(map[tx.NodeID]bool, len(live))
	for _, s := range live {
		need[s] = true
	}
	l.unreleased = append(l.unreleased, &pendingBatch{batch: batch, need: need})
	l.mu.Unlock()
	for _, p := range peers {
		l.replicate(batch, p, ep)
	}
}

func (l *Leader) replicate(b *tx.Batch, to tx.NodeID, epoch uint64) {
	_ = l.tr.Send(network.Message{
		From: l.id, To: to, Type: network.MsgSeqReplicate,
		Seq: b.Seq, Epoch: epoch, Batch: b,
	})
}

func (l *Leader) deliver(b *tx.Batch, members []tx.NodeID, epoch uint64) {
	for _, n := range members {
		// Delivery failures mean the transport is closed mid-shutdown;
		// nothing useful can be done with the error here.
		_ = l.tr.Send(network.Message{
			From: l.id, To: n, Type: network.MsgSeqDeliver,
			Seq: b.Seq, Epoch: epoch, Batch: b,
		})
	}
}

// fence stops the replica from sealing new batches. Pending requests
// stay queued at the front-ends (which will retry them against the next
// leader); already-sealed batches still complete their replication round.
func (l *Leader) fence() {
	l.mu.Lock()
	l.fenced = true
	l.mu.Unlock()
}

// drainUnreleased waits until every sealed batch has gathered its
// replication acks and been released for delivery, so a subsequent crash
// cannot strand a sealed-but-undelivered batch (whose transaction IDs a
// promoted standby would then reassign).
func (l *Leader) drainUnreleased(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		n := len(l.unreleased)
		l.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// finishRecovery ends restart replay mode. If the replayed input shows
// this replica still owns the current epoch it resumes leading;
// otherwise it rejoins as a standby of whatever leader the replayed
// epoch announcements named.
func (l *Leader) finishRecovery() {
	l.mu.Lock()
	l.recovering = false
	l.lastHeard = l.clk.Now()
	if l.leaderID == l.id {
		l.leading = true
		l.arrived = make(map[tx.NodeID]uint64, len(l.sealedHigh))
		for k, v := range l.sealedHigh {
			l.arrived[k] = v
		}
	}
	l.mu.Unlock()
	l.Flush()
}

// prune drops retained sealed batches below seq; checkpoints call it
// once the snapshot covers them.
func (l *Leader) prune(seq uint64) {
	l.mu.Lock()
	i := 0
	for i < len(l.log) && l.log[i].Seq < seq {
		i++
	}
	if i > 0 {
		// Fold the dropped prefix's per-client marks into the base the
		// retained suffix recomputes watermarks from.
		for _, b := range l.log[:i] {
			for _, r := range b.Txns {
				if r.ClientSeq != 0 && r.ClientSeq > l.clientBase[r.Client] {
					l.clientBase[r.Client] = r.ClientSeq
				}
			}
		}
		l.log = append(l.log[:0:0], l.log[i:]...)
		l.logEpochs = append(l.logEpochs[:0:0], l.logEpochs[i:]...)
	}
	if seq > l.logBase {
		l.logBase = seq
	}
	if len(l.log) == 0 {
		l.txnBase = l.nextTxn
		l.clientBase = make(map[tx.NodeID]uint64, len(l.sealedHigh))
		for k, v := range l.sealedHigh {
			l.clientBase[k] = v
		}
	} else if len(l.log[0].Txns) > 0 {
		l.txnBase = l.log[0].Txns[0].ID
	}
	l.mu.Unlock()
}

// clientHigh returns a copy of the per-client sealed watermarks.
func (l *Leader) clientHigh() map[tx.NodeID]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[tx.NodeID]uint64, len(l.sealedHigh))
	for k, v := range l.sealedHigh {
		out[k] = v
	}
	return out
}

// LeaderStats reports batching activity: how many batches and
// transactions the leader has sealed, how full the most recent batch was
// relative to the configured size, and the requests currently pending.
type LeaderStats struct {
	Batches  int64
	Txns     int64
	LastFill float64 // last sealed batch size / BatchSize
	Pending  int     // requests awaiting the next flush
}

// Stats returns cumulative batching statistics. Safe to call from any
// goroutine.
func (l *Leader) Stats() LeaderStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LeaderStats{
		Batches:  l.statBatches,
		Txns:     l.statTxns,
		LastFill: l.statLastFill,
		Pending:  len(l.pending),
	}
}

// SetNext positions the total order: the next flushed batch gets sequence
// seq and its first transaction gets id next. Recovery uses this to
// resume the order after replaying a command log.
func (l *Leader) SetNext(seq uint64, next tx.TxnID) {
	l.mu.Lock()
	l.nextSeq = seq
	l.nextTxn = next
	l.logBase = seq
	l.txnBase = next
	l.mu.Unlock()
}

// Next reports the sequence the next flushed batch will get and the id its
// first transaction will get — the inverse of SetNext. Checkpoints record
// this pair so recovery can resume the total order exactly where the
// snapshot cut it.
func (l *Leader) Next() (seq uint64, next tx.TxnID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq, l.nextTxn
}

// SetMembers atomically replaces the delivery membership. The engine calls
// this when provisioning changes take effect; the change applies to the
// next flushed batch.
func (l *Leader) SetMembers(members []tx.NodeID) {
	l.mu.Lock()
	l.members = append([]tx.NodeID(nil), members...)
	l.mu.Unlock()
}

// Members returns a copy of the current membership.
func (l *Leader) Members() []tx.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]tx.NodeID(nil), l.members...)
}

// Acks reports how many members have acknowledged batch seq.
func (l *Leader) Acks(seq uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acks[seq]
}

// Ack sends a batch acknowledgement from node to the leader.
func Ack(node, leader tx.NodeID, tr network.Transport, seq uint64) {
	_ = tr.Send(network.Message{From: node, To: leader, Type: network.MsgSeqAck, Seq: seq})
}
