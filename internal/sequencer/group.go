package sequencer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/clock"
	"hermes/internal/network"
	"hermes/internal/tx"
)

// SeqNode returns the transport node id of sequencer replica rank (the
// leader's own node for rank 0). Replica ids descend from the leader's so
// they can never collide with the dense non-negative engine node ids.
func SeqNode(leader tx.NodeID, rank int) tx.NodeID {
	return leader - tx.NodeID(rank)
}

// GroupNodes returns the transport node ids of a group with the given
// number of standbys, rank order.
func GroupNodes(leader tx.NodeID, standbys int) []tx.NodeID {
	ids := make([]tx.NodeID, standbys+1)
	for r := range ids {
		ids[r] = SeqNode(leader, r)
	}
	return ids
}

// RestoreState seeds a restarted replica with the sequencer state a
// checkpoint recorded, before the reliable layer replays its logged
// input on top.
type RestoreState struct {
	Epoch   uint64
	Leader  tx.NodeID
	NextSeq uint64
	NextTxn tx.TxnID
	Clients map[tx.NodeID]uint64
}

// Group is the replicated total-order service: replica rank 0 starts as
// the leader of epoch 0, ranks 1..Standbys as standbys. The Group tracks
// the engine-facing view (current leader, epoch, which replicas are
// down) and fans engine operations out to the right replica; the
// replication, heartbeat and promotion protocol itself runs between the
// replicas over the transport.
type Group struct {
	base tx.NodeID
	tr   network.Transport
	cfg  Config
	clk  clock.Clock

	mu       sync.Mutex
	replicas map[tx.NodeID]*Leader
	ranks    []tx.NodeID
	down      map[tx.NodeID]bool
	leaderID  tx.NodeID
	epoch     uint64
	announced uint64 // highest epoch whose promotion was counted

	failovers  atomic.Int64
	hbMisses   atomic.Int64
	onFailover func(leader tx.NodeID, epoch uint64)
}

// NewGroup builds a sequencer group whose rank-0 replica lives at
// transport node base, delivering the ordered stream to members.
// cfg.Standbys standbys live at descending ids. Zero fault-tolerance
// knobs get defaults when standbys are configured.
func NewGroup(base tx.NodeID, tr network.Transport, members []tx.NodeID, cfg Config, clk clock.Clock) *Group {
	if cfg.Standbys < 0 {
		cfg.Standbys = 0
	}
	if cfg.Standbys > 0 {
		if cfg.Heartbeat <= 0 {
			cfg.Heartbeat = defaultHeartbeat
		}
		if cfg.FailoverTimeout <= 0 {
			cfg.FailoverTimeout = defaultFailoverTimeout
		}
		if cfg.RetryTimeout <= 0 {
			cfg.RetryTimeout = defaultRetryTimeout
		}
		if cfg.RetryCap <= 0 {
			cfg.RetryCap = defaultRetryCap
		}
	}
	g := &Group{
		base:     base,
		tr:       tr,
		cfg:      cfg,
		clk:      clk,
		replicas: make(map[tx.NodeID]*Leader, cfg.Standbys+1),
		down:     make(map[tx.NodeID]bool),
		leaderID: base,
	}
	for _, id := range GroupNodes(base, cfg.Standbys) {
		r := newReplica(id, tr, members, cfg, clk, g)
		r.leaderID = base
		g.replicas[id] = r
		g.ranks = append(g.ranks, id)
	}
	g.replicas[base].leading = true
	return g
}

// size returns the replica count (static after construction).
func (g *Group) size() int { return len(g.ranks) }

// Size returns the replica count (1 + standbys).
func (g *Group) Size() int { return g.size() }

// Nodes returns the transport ids of every replica, rank order.
func (g *Group) Nodes() []tx.NodeID { return append([]tx.NodeID(nil), g.ranks...) }

// IsReplica reports whether id is one of the group's transport nodes.
func (g *Group) IsReplica(id tx.NodeID) bool {
	_, ok := g.replicas[id]
	return ok
}

// Start launches every replica.
func (g *Group) Start() {
	for _, id := range g.ranks {
		g.replica(id).Start()
	}
}

// Stop stops every replica.
func (g *Group) Stop() {
	for _, id := range g.ranks {
		g.replica(id).Stop()
	}
}

func (g *Group) replica(id tx.NodeID) *Leader {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.replicas[id]
}

// leader returns the current leader replica, or nil while it is down.
func (g *Group) leader() *Leader {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.down[g.leaderID] {
		return nil
	}
	return g.replicas[g.leaderID]
}

// peers returns the other replicas of self: all of them (a down peer
// still receives replication through its durable delivery log, which is
// how a restart catches up) and the live subset (whose acks gate
// delivery).
func (g *Group) peers(self tx.NodeID) (all, live []tx.NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, id := range g.ranks {
		if id == self {
			continue
		}
		all = append(all, id)
		if !g.down[id] {
			live = append(live, id)
		}
	}
	return all, live
}

// promotePos returns self's position in the promotion order — its index
// among standbys (current leader excluded) in rank order — or -1 if self
// is down or is the leader. Positions are static per leader: a down
// standby keeps its slot (its share of the timeout is simply wasted)
// rather than everyone below shifting up, because a shifting position
// can abruptly halve a standby's silence threshold mid-failover and
// trigger a second, concurrent promotion into the same epoch.
func (g *Group) promotePos(self tx.NodeID) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.down[self] || self == g.leaderID {
		return -1
	}
	pos := 0
	for _, id := range g.ranks {
		if id == g.leaderID {
			continue
		}
		if id == self {
			return pos
		}
		pos++
	}
	return -1
}

// announce records a promotion: a replica took over leadership of epoch.
// The failover counter advances once per epoch, however many claimants
// raced into it (the replica-id tie-break leaves exactly one standing),
// and regardless of whether a node's epoch observation beat the
// promoting replica to the view update.
func (g *Group) announce(leader tx.NodeID, epoch uint64) {
	g.ObserveEpoch(leader, epoch)
	g.mu.Lock()
	first := epoch > g.announced
	if first {
		g.announced = epoch
	}
	g.mu.Unlock()
	if first {
		g.failovers.Add(1)
		if g.onFailover != nil {
			g.onFailover(leader, epoch)
		}
	}
}

// ObserveEpoch folds an epoch announcement into the engine-facing view;
// it returns true when the view advanced. Claims are ordered like the
// replicas order them: epoch first, then replica id (higher id = lower
// rank wins a same-epoch tie).
func (g *Group) ObserveEpoch(leader tx.NodeID, epoch uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch < g.epoch || (epoch == g.epoch && leader <= g.leaderID) {
		return false
	}
	g.epoch = epoch
	g.leaderID = leader
	return true
}

// SetOnFailover installs the promotion callback (telemetry). Set before
// Start.
func (g *Group) SetOnFailover(fn func(leader tx.NodeID, epoch uint64)) { g.onFailover = fn }

// noteMiss counts one heartbeat miss observed by a standby.
func (g *Group) noteMiss() { g.hbMisses.Add(1) }

// LeaderID returns the current leader's transport node id.
func (g *Group) LeaderID() tx.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderID
}

// Epoch returns the current leadership epoch (0 until the first
// failover).
func (g *Group) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Failovers returns how many promotions have completed.
func (g *Group) Failovers() int64 { return g.failovers.Load() }

// HeartbeatMisses returns how many heartbeat misses standbys observed.
func (g *Group) HeartbeatMisses() int64 { return g.hbMisses.Load() }

// Downed reports whether replica id is currently crashed.
func (g *Group) Downed(id tx.NodeID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down[id]
}

// Flush forces a seal on the current leader (no-op while it is down).
func (g *Group) Flush() {
	if l := g.leader(); l != nil {
		l.Flush()
	}
}

// Next reports the (seq, nextTxn) the current leader would assign next.
func (g *Group) Next() (uint64, tx.TxnID) {
	if l := g.leader(); l != nil {
		return l.Next()
	}
	return 0, 0
}

// SetNext positions the total order on every replica; recovery of a
// whole cluster calls it, when all logs are empty and every replica must
// agree on where the order resumes.
func (g *Group) SetNext(seq uint64, next tx.TxnID) {
	for _, id := range g.ranks {
		g.replica(id).SetNext(seq, next)
	}
}

// Stats returns the current leader's batching statistics.
func (g *Group) Stats() LeaderStats {
	if l := g.leader(); l != nil {
		return l.Stats()
	}
	return LeaderStats{}
}

// SetMembers replaces the delivery membership on every replica.
func (g *Group) SetMembers(members []tx.NodeID) {
	for _, id := range g.ranks {
		g.replica(id).SetMembers(members)
	}
}

// Prune drops retained sealed batches below seq on every live replica.
func (g *Group) Prune(seq uint64) {
	for _, id := range g.ranks {
		if !g.Downed(id) {
			g.replica(id).prune(seq)
		}
	}
}

// ClientHigh returns the current leader's per-client sealed watermarks
// (checkpoints record them so a restarted replica resumes dedup).
func (g *Group) ClientHigh() map[tx.NodeID]uint64 {
	if l := g.leader(); l != nil {
		return l.clientHigh()
	}
	return nil
}

// PrepareCrash fences the current leader and waits until every sealed
// batch has finished its replication round and been delivered, so leader
// death can never strand a sealed-but-undelivered batch. It returns the
// fenced replica's id; the caller then pauses its feed and calls Kill.
func (g *Group) PrepareCrash(timeout time.Duration) (tx.NodeID, error) {
	g.mu.Lock()
	if g.size() < 2 {
		g.mu.Unlock()
		return 0, fmt.Errorf("sequencer: leader crash requires at least one standby (Config.Standbys)")
	}
	for id, d := range g.down {
		if d {
			g.mu.Unlock()
			return 0, fmt.Errorf("sequencer: replica %d is already down", id)
		}
	}
	id := g.leaderID
	l := g.replicas[id]
	g.mu.Unlock()
	l.fence()
	if !l.drainUnreleased(timeout) {
		return 0, fmt.Errorf("sequencer: timed out draining sealed batches before leader crash")
	}
	return id, nil
}

// Kill stops replica id and marks it down. The caller must have paused
// its delivery feed first.
func (g *Group) Kill(id tx.NodeID) {
	g.mu.Lock()
	g.down[id] = true
	l := g.replicas[id]
	g.mu.Unlock()
	l.Stop()
}

// Restart replaces a killed replica with a fresh one seeded from a
// checkpoint's sequencer state and starts it in recovery mode: it
// replays its logged input (rewound by the caller) without leading,
// heartbeating, or promoting. Call FinishRecovery once its backlog has
// drained.
func (g *Group) Restart(id tx.NodeID, st RestoreState) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	old, ok := g.replicas[id]
	if !ok {
		return fmt.Errorf("sequencer: unknown replica %d", id)
	}
	if !g.down[id] {
		return fmt.Errorf("sequencer: replica %d is not down", id)
	}
	r := newReplica(id, g.tr, old.Members(), g.cfg, g.clk, g)
	r.recovering = true
	r.epoch = st.Epoch
	r.leaderID = st.Leader
	r.nextSeq = st.NextSeq
	r.nextTxn = st.NextTxn
	r.logBase = st.NextSeq
	r.txnBase = st.NextTxn
	for k, v := range st.Clients {
		r.sealedHigh[k] = v
		r.clientBase[k] = v
	}
	g.replicas[id] = r
	r.Start()
	return nil
}

// FinishRecovery marks a restarted replica live again: it resumes
// leading if the replayed input shows it still owns the current epoch,
// and otherwise rejoins as a standby.
func (g *Group) FinishRecovery(id tx.NodeID) {
	g.mu.Lock()
	l := g.replicas[id]
	delete(g.down, id)
	g.mu.Unlock()
	l.finishRecovery()
}
