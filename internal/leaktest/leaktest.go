// Package leaktest is a stdlib-only goroutine-leak check for Close paths:
// it snapshots runtime.NumGoroutine before the test body and, in a deferred
// call, waits for the count to drain back down before declaring a leak.
// Tests using it must not run in parallel (the count is process-wide).
package leaktest

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and returns a function to
// defer: it polls until the count returns to the snapshot (goroutines
// legitimately wind down asynchronously after Close) and fails the test if
// it has not within five seconds, dumping all stacks.
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				m := runtime.Stack(buf, true)
				t.Errorf("leaktest: %d goroutines before, %d still running after 5s drain:\n%s",
					before, n, buf[:m])
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
