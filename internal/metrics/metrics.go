// Package metrics collects the measurements the paper's evaluation
// reports: committed-transaction throughput over time windows (Figs. 2, 6,
// 12, 14), per-transaction latency broken down by phase (Fig. 7), CPU busy
// time per node and network bytes per transaction (Fig. 8), and latency
// percentiles via a log-bucketed histogram.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Breakdown is the per-transaction latency decomposition of Fig. 7. The
// two queue components exist so the queue execution mode stays honest:
// LockWait is strictly time blocked in the conservative lock manager (zero
// by construction in queue mode), while queue-planning cost and queue
// residence are attributed to QueuePlan and QueueWait instead of vanishing
// into Scheduling.
type Breakdown struct {
	Scheduling time.Duration // batch analysis + routing + dispatch
	LockWait   time.Duration // conservative-ordered-lock queueing
	QueuePlan  time.Duration // per-txn share of queue-mode batch planning
	QueueWait  time.Duration // queue-mode admission -> rendezvous residence
	Storage    time.Duration // local record reads/writes
	RemoteWait time.Duration // blocking on records from other nodes
	Other      time.Duration // everything else (queuing, commit, client)
}

// Total returns the sum of all components.
func (b Breakdown) Total() time.Duration {
	return b.Scheduling + b.LockWait + b.QueuePlan + b.QueueWait +
		b.Storage + b.RemoteWait + b.Other
}

// Add returns the component-wise sum of b and o.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Scheduling: b.Scheduling + o.Scheduling,
		LockWait:   b.LockWait + o.LockWait,
		QueuePlan:  b.QueuePlan + o.QueuePlan,
		QueueWait:  b.QueueWait + o.QueueWait,
		Storage:    b.Storage + o.Storage,
		RemoteWait: b.RemoteWait + o.RemoteWait,
		Other:      b.Other + o.Other,
	}
}

// Scale returns b with every component divided by n (n ≤ 0 returns b).
func (b Breakdown) Scale(n int64) Breakdown {
	if n <= 0 {
		return b
	}
	return Breakdown{
		Scheduling: b.Scheduling / time.Duration(n),
		LockWait:   b.LockWait / time.Duration(n),
		QueuePlan:  b.QueuePlan / time.Duration(n),
		QueueWait:  b.QueueWait / time.Duration(n),
		Storage:    b.Storage / time.Duration(n),
		RemoteWait: b.RemoteWait / time.Duration(n),
		Other:      b.Other / time.Duration(n),
	}
}

// Collector aggregates run-wide statistics. All methods are safe for
// concurrent use.
type Collector struct {
	start  time.Time
	window time.Duration

	committed atomic.Int64
	aborted   atomic.Int64

	mu        sync.Mutex
	perWindow []int64
	sum       Breakdown
	hist      Histogram

	// busy holds per-node busy-nanos counters indexed by node ID (dense
	// small ints). The slice is immutable once published: growing copies
	// the counter pointers into a larger slice under mu and swaps the
	// pointer, so the hot path (AddBusy/BusyTotal) is a single atomic
	// load + bounds check with no lock.
	busy    atomic.Pointer[[]*atomic.Int64]
	busyNeg sync.Map // nodeID < 0 fallback (never hit by the engine)

	migrations         atomic.Int64
	migrationBytes     atomic.Int64
	migrationsInFlight atomic.Int64
	remoteReads        atomic.Int64

	routingBatches atomic.Int64
	routingTxns    atomic.Int64
	routingNanos   atomic.Int64

	queuePlanBatches atomic.Int64
	queuePlanTxns    atomic.Int64
	queuePlanNanos   atomic.Int64

	crashes       atomic.Int64
	recoveries    atomic.Int64
	downtimeNanos atomic.Int64
}

// RoutingStats is the routing-cost summary of §3.2.4: how much scheduler
// time the prescient analysis itself consumes, reported per batch and per
// transaction so it can be compared against end-to-end latency (the paper
// measures ~4% of transaction latency at b=1000, n=20).
type RoutingStats struct {
	Batches  int64
	Txns     int64
	Total    time.Duration
	PerBatch time.Duration // mean routing time per batch
	PerTxn   time.Duration // mean routing time per transaction
}

// NewCollector returns a collector with throughput windows of the given
// duration, starting at start.
func NewCollector(start time.Time, window time.Duration) *Collector {
	c := &Collector{
		start:  start,
		window: window,
	}
	// Pre-size well past any realistic node count so the grow path never
	// runs during a measured workload.
	s := newBusySlice(64)
	c.busy.Store(&s)
	return c
}

func newBusySlice(n int) []*atomic.Int64 {
	s := make([]*atomic.Int64, n)
	for i := range s {
		s[i] = &atomic.Int64{}
	}
	return s
}

// busyCounter returns the busy-nanos counter for a node, lock-free for
// in-range dense IDs.
func (c *Collector) busyCounter(nodeID int) *atomic.Int64 {
	if nodeID < 0 {
		v, _ := c.busyNeg.LoadOrStore(nodeID, &atomic.Int64{})
		return v.(*atomic.Int64)
	}
	if s := *c.busy.Load(); nodeID < len(s) {
		return s[nodeID]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := *c.busy.Load()
	if nodeID < len(s) {
		return s[nodeID]
	}
	n := len(s) * 2
	for n <= nodeID {
		n *= 2
	}
	grown := newBusySlice(n)
	copy(grown, s)
	c.busy.Store(&grown)
	return grown[nodeID]
}

// RecordCommit records a committed transaction finishing at now with the
// given latency breakdown.
func (c *Collector) RecordCommit(now time.Time, b Breakdown) {
	c.committed.Add(1)
	idx := 0
	if c.window > 0 {
		idx = int(now.Sub(c.start) / c.window)
		if idx < 0 {
			idx = 0
		}
	}
	c.mu.Lock()
	for len(c.perWindow) <= idx {
		c.perWindow = append(c.perWindow, 0)
	}
	c.perWindow[idx]++
	c.sum = c.sum.Add(b)
	c.hist.Observe(b.Total())
	c.mu.Unlock()
}

// RecordAbort records a logic abort (the transaction still consumed
// resources but does not count toward throughput).
func (c *Collector) RecordAbort() { c.aborted.Add(1) }

// RecordMigration counts records migrated between nodes (fusion moves,
// write-backs, and cold chunks all count).
func (c *Collector) RecordMigration(records int) { c.migrations.Add(int64(records)) }

// RecordMigrationBytes counts payload bytes landed by migrations.
func (c *Collector) RecordMigrationBytes(n int) { c.migrationBytes.Add(int64(n)) }

// AddMigrationsInFlight adjusts the gauge of transactions currently
// carrying migrations (+1 when such a transaction starts executing, -1
// when it finishes).
func (c *Collector) AddMigrationsInFlight(delta int64) { c.migrationsInFlight.Add(delta) }

// MigrationsInFlight returns the current in-flight migration gauge.
func (c *Collector) MigrationsInFlight() int64 { return c.migrationsInFlight.Load() }

// MigrationBytes returns the cumulative migrated payload bytes.
func (c *Collector) MigrationBytes() int64 { return c.migrationBytes.Load() }

// RecordRemoteReads counts records read across the network.
func (c *Collector) RecordRemoteReads(n int) { c.remoteReads.Add(int64(n)) }

// RecordRouting records one batch-routing invocation: txns transactions
// planned in d of scheduler time. Every node's scheduler routes every
// batch (deterministic replication), so callers record once per node per
// batch; the averages still report the per-batch cost correctly.
func (c *Collector) RecordRouting(txns int, d time.Duration) {
	c.routingBatches.Add(1)
	c.routingTxns.Add(int64(txns))
	c.routingNanos.Add(int64(d))
}

// Routing returns the cumulative routing-cost summary.
func (c *Collector) Routing() RoutingStats {
	s := RoutingStats{
		Batches: c.routingBatches.Load(),
		Txns:    c.routingTxns.Load(),
		Total:   time.Duration(c.routingNanos.Load()),
	}
	if s.Batches > 0 {
		s.PerBatch = s.Total / time.Duration(s.Batches)
	}
	if s.Txns > 0 {
		s.PerTxn = s.Total / time.Duration(s.Txns)
	}
	return s
}

// RecordQueuePlan records one queue-mode batch admission plan: txns roles
// partitioned into per-key queues in d of scheduler time. The shape
// mirrors RecordRouting so the two planning costs can be compared.
func (c *Collector) RecordQueuePlan(txns int, d time.Duration) {
	c.queuePlanBatches.Add(1)
	c.queuePlanTxns.Add(int64(txns))
	c.queuePlanNanos.Add(int64(d))
}

// QueuePlan returns the cumulative queue-planning cost summary.
func (c *Collector) QueuePlan() RoutingStats {
	s := RoutingStats{
		Batches: c.queuePlanBatches.Load(),
		Txns:    c.queuePlanTxns.Load(),
		Total:   time.Duration(c.queuePlanNanos.Load()),
	}
	if s.Batches > 0 {
		s.PerBatch = s.Total / time.Duration(s.Batches)
	}
	if s.Txns > 0 {
		s.PerTxn = s.Total / time.Duration(s.Txns)
	}
	return s
}

// RecordCrash counts a node kill.
func (c *Collector) RecordCrash() { c.crashes.Add(1) }

// RecordRecovery counts a node restart, accruing how long the node was
// down (kill to rejoin).
func (c *Collector) RecordRecovery(down time.Duration) {
	c.recoveries.Add(1)
	c.downtimeNanos.Add(int64(down))
}

// Crashes returns the cumulative count of node kills.
func (c *Collector) Crashes() int64 { return c.crashes.Load() }

// Recoveries returns the cumulative count of node restarts.
func (c *Collector) Recoveries() int64 { return c.recoveries.Load() }

// Downtime returns the cumulative wall time nodes spent down.
func (c *Collector) Downtime() time.Duration { return time.Duration(c.downtimeNanos.Load()) }

// AddBusy accrues execution busy-time for a node; BusyFraction divides by
// wall time to report CPU usage as in Fig. 8.
func (c *Collector) AddBusy(nodeID int, d time.Duration) {
	c.busyCounter(nodeID).Add(int64(d))
}

// BusyTotal reports the cumulative busy-time accrued by a node; samplers
// diff successive snapshots to get per-window CPU usage (Fig. 8).
func (c *Collector) BusyTotal(nodeID int) time.Duration {
	return time.Duration(c.busyCounter(nodeID).Load())
}

// BusyFraction reports node busy-time divided by elapsed wall time.
func (c *Collector) BusyFraction(nodeID int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.busyCounter(nodeID).Load()) / float64(elapsed)
}

// Committed and Aborted return cumulative counts.
func (c *Collector) Committed() int64 { return c.committed.Load() }

// Aborted returns the cumulative count of logic aborts.
func (c *Collector) Aborted() int64 { return c.aborted.Load() }

// Migrations returns the cumulative count of migrated records.
func (c *Collector) Migrations() int64 { return c.migrations.Load() }

// RemoteReads returns the cumulative count of records read remotely.
func (c *Collector) RemoteReads() int64 { return c.remoteReads.Load() }

// Throughput returns committed transactions per window, oldest first. The
// returned slice is a copy.
func (c *Collector) Throughput() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.perWindow))
	copy(out, c.perWindow)
	return out
}

// AvgBreakdown returns the mean latency breakdown over all commits.
func (c *Collector) AvgBreakdown() Breakdown {
	n := c.committed.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum.Scale(n)
}

// LatencyQuantile returns an approximate latency quantile (0 ≤ q ≤ 1).
func (c *Collector) LatencyQuantile(q float64) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hist.Quantile(q)
}
