package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBreakdownTotalAddScale(t *testing.T) {
	b := Breakdown{Scheduling: 1, LockWait: 2, Storage: 3, RemoteWait: 4, Other: 5}
	if b.Total() != 15 {
		t.Errorf("Total = %d, want 15", b.Total())
	}
	sum := b.Add(b)
	if sum.Total() != 30 || sum.LockWait != 4 {
		t.Errorf("Add = %+v", sum)
	}
	half := sum.Scale(2)
	if half != b {
		t.Errorf("Scale(2) = %+v, want %+v", half, b)
	}
	if got := b.Scale(0); got != b {
		t.Errorf("Scale(0) changed value: %+v", got)
	}
}

func TestCollectorThroughputWindows(t *testing.T) {
	start := time.Unix(0, 0)
	c := NewCollector(start, time.Second)
	c.RecordCommit(start.Add(100*time.Millisecond), Breakdown{})
	c.RecordCommit(start.Add(900*time.Millisecond), Breakdown{})
	c.RecordCommit(start.Add(1500*time.Millisecond), Breakdown{})
	c.RecordCommit(start.Add(3100*time.Millisecond), Breakdown{})
	got := c.Throughput()
	want := []int64{2, 1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("Throughput = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Throughput = %v, want %v", got, want)
		}
	}
	if c.Committed() != 4 {
		t.Errorf("Committed = %d", c.Committed())
	}
}

func TestCollectorCommitBeforeStartClamps(t *testing.T) {
	start := time.Unix(100, 0)
	c := NewCollector(start, time.Second)
	c.RecordCommit(start.Add(-5*time.Second), Breakdown{})
	got := c.Throughput()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Throughput = %v, want [1]", got)
	}
}

func TestCollectorAvgBreakdown(t *testing.T) {
	c := NewCollector(time.Unix(0, 0), time.Second)
	now := time.Unix(1, 0)
	c.RecordCommit(now, Breakdown{LockWait: 10 * time.Millisecond})
	c.RecordCommit(now, Breakdown{LockWait: 30 * time.Millisecond, RemoteWait: 4 * time.Millisecond})
	avg := c.AvgBreakdown()
	if avg.LockWait != 20*time.Millisecond {
		t.Errorf("avg LockWait = %v, want 20ms", avg.LockWait)
	}
	if avg.RemoteWait != 2*time.Millisecond {
		t.Errorf("avg RemoteWait = %v, want 2ms", avg.RemoteWait)
	}
}

func TestCollectorCounters(t *testing.T) {
	c := NewCollector(time.Unix(0, 0), time.Second)
	c.RecordAbort()
	c.RecordMigration(5)
	c.RecordMigration(3)
	c.RecordRemoteReads(7)
	if c.Aborted() != 1 || c.Migrations() != 8 || c.RemoteReads() != 7 {
		t.Errorf("counters = %d,%d,%d", c.Aborted(), c.Migrations(), c.RemoteReads())
	}
}

func TestCollectorBusyFraction(t *testing.T) {
	c := NewCollector(time.Unix(0, 0), time.Second)
	c.AddBusy(3, 250*time.Millisecond)
	c.AddBusy(3, 250*time.Millisecond)
	if got := c.BusyFraction(3, time.Second); got != 0.5 {
		t.Errorf("BusyFraction = %f, want 0.5", got)
	}
	if got := c.BusyFraction(9, time.Second); got != 0 {
		t.Errorf("unknown node BusyFraction = %f, want 0", got)
	}
	if got := c.BusyFraction(3, 0); got != 0 {
		t.Errorf("zero elapsed BusyFraction = %f, want 0", got)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(time.Unix(0, 0), 100*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Unix(0, 0).Add(time.Duration(g) * 50 * time.Millisecond)
			for i := 0; i < 1000; i++ {
				c.RecordCommit(now, Breakdown{Other: time.Microsecond})
				c.AddBusy(g, time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if c.Committed() != 8000 {
		t.Fatalf("Committed = %d, want 8000", c.Committed())
	}
	var total int64
	for _, v := range c.Throughput() {
		total += v
	}
	if total != 8000 {
		t.Fatalf("window sum = %d, want 8000", total)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	for i := 0; i < 900; i++ {
		h.Observe(time.Microsecond) // ~1µs
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Second) // rare slow tail
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.995)
	if p50 > 10*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs bucket", p50)
	}
	if p99 < 500*time.Millisecond {
		t.Errorf("p99.5 = %v, want ~1s bucket", p99)
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramQuantileMonotonicProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		var h Histogram
		for _, s := range samples {
			h.Observe(time.Duration(s))
		}
		last := time.Duration(0)
		for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.75, 0.99, 1, 1.5} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketBoundsProperty(t *testing.T) {
	// Quantile(1) must be ≥ the maximum observed sample (bucket upper
	// bound property) and ≤ 2x the maximum.
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		max := time.Duration(0)
		for _, s := range samples {
			d := time.Duration(s) + 1
			if d > max {
				max = d
			}
			h.Observe(d)
		}
		top := h.Quantile(1)
		return top >= max && top <= 2*max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRecordCommit(b *testing.B) {
	c := NewCollector(time.Unix(0, 0), time.Second)
	now := time.Unix(5, 0)
	bd := Breakdown{LockWait: time.Millisecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RecordCommit(now, bd)
	}
}

func TestRoutingStats(t *testing.T) {
	c := NewCollector(time.Unix(0, 0), time.Second)
	if s := c.Routing(); s.Batches != 0 || s.PerBatch != 0 || s.PerTxn != 0 {
		t.Fatalf("empty collector routing stats = %+v", s)
	}
	c.RecordRouting(100, 2*time.Millisecond)
	c.RecordRouting(300, 4*time.Millisecond)
	s := c.Routing()
	if s.Batches != 2 || s.Txns != 400 {
		t.Fatalf("counts = %d batches / %d txns, want 2/400", s.Batches, s.Txns)
	}
	if s.Total != 6*time.Millisecond {
		t.Fatalf("total = %v, want 6ms", s.Total)
	}
	if s.PerBatch != 3*time.Millisecond {
		t.Fatalf("per-batch = %v, want 3ms", s.PerBatch)
	}
	if s.PerTxn != 15*time.Microsecond {
		t.Fatalf("per-txn = %v, want 15µs", s.PerTxn)
	}
}
