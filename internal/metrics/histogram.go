package metrics

import (
	"math/bits"
	"time"
)

// Histogram is a log₂-bucketed latency histogram: bucket i holds
// observations in [2^i, 2^(i+1)) nanoseconds. It is coarse (≤ 2× error)
// but allocation-free and cheap enough for the commit path. Histogram is
// not safe for concurrent use; Collector guards it with its mutex.
type Histogram struct {
	buckets [64]int64
	count   int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 1 {
		d = 1
	}
	h.buckets[bits.Len64(uint64(d))-1]++
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns an approximation of the q-quantile (0 ≤ q ≤ 1) as the
// upper bound of the bucket containing it. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > target {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return time.Duration(1<<63 - 1) // unreachable: counts always cover target
}
