package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestCollectorBusyConcurrentGrow hammers the lock-free busy-counter path
// while forcing the slice-grow path to run mid-flight: node IDs span well
// past the pre-sized 64 entries, and negative IDs exercise the sync.Map
// fallback. Run under -race this proves AddBusy/BusyTotal/BusyFraction
// need no lock and that grown slices never lose counts (grow copies the
// counter pointers, so writers holding a stale slice still hit the same
// counters).
func TestCollectorBusyConcurrentGrow(t *testing.T) {
	c := NewCollector(time.Unix(0, 0), time.Second)
	const (
		goroutines = 16
		iterations = 2000
	)
	// Mix of dense in-range IDs, IDs past the pre-sized 64, and negatives.
	ids := []int{0, 3, 63, 64, 65, 127, 200, 517, -1, -9}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id := ids[(g+i)%len(ids)]
				c.AddBusy(id, time.Microsecond)
				// Concurrent reads on the same hot path.
				_ = c.BusyTotal(id)
				_ = c.BusyFraction(id, time.Second)
			}
		}(g)
	}
	wg.Wait()

	var total time.Duration
	for _, id := range ids {
		total += c.BusyTotal(id)
	}
	want := time.Duration(goroutines*iterations) * time.Microsecond
	if total != want {
		t.Fatalf("busy total across all ids = %v, want %v (lost updates during grow?)", total, want)
	}
}

// TestCollectorMigrationGaugesConcurrent hammers the migration gauges the
// executor updates on its hot path: the in-flight gauge must return to
// zero after balanced +1/-1 pairs and the byte counter must not drop
// updates.
func TestCollectorMigrationGaugesConcurrent(t *testing.T) {
	c := NewCollector(time.Unix(0, 0), time.Second)
	const (
		goroutines = 8
		iterations = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				c.AddMigrationsInFlight(1)
				c.RecordMigrationBytes(64)
				c.RecordMigration(1)
				c.AddMigrationsInFlight(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.MigrationsInFlight(); got != 0 {
		t.Errorf("MigrationsInFlight = %d after balanced updates, want 0", got)
	}
	if got := c.MigrationBytes(); got != goroutines*iterations*64 {
		t.Errorf("MigrationBytes = %d, want %d", got, goroutines*iterations*64)
	}
	if got := c.Migrations(); got != goroutines*iterations {
		t.Errorf("Migrations = %d, want %d", got, goroutines*iterations)
	}
}

// TestHistogramQuantileEdges pins the Quantile contract at its edges:
// empty histogram, q=0, q=1, and out-of-range q (clamped, never panics,
// never escapes the observed bucket range).
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	var h Histogram
	h.Observe(time.Microsecond) // bucket [1024ns, 2048ns)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)

	lo := h.Quantile(0)
	if lo < time.Microsecond || lo > 2*time.Microsecond {
		t.Errorf("Quantile(0) = %v, want the smallest sample's bucket bound (~1-2µs)", lo)
	}
	hi := h.Quantile(1)
	if hi < time.Second || hi > 2*time.Second {
		t.Errorf("Quantile(1) = %v, want the largest sample's bucket bound (~1-2s)", hi)
	}
	// Out-of-range q clamps to the edges rather than panicking or
	// extrapolating.
	if got := h.Quantile(-0.5); got != lo {
		t.Errorf("Quantile(-0.5) = %v, want clamp to Quantile(0) = %v", got, lo)
	}
	if got := h.Quantile(1.5); got != hi {
		t.Errorf("Quantile(1.5) = %v, want clamp to Quantile(1) = %v", got, hi)
	}

	// A single sample answers every quantile with its own bucket.
	var one Histogram
	one.Observe(42 * time.Nanosecond)
	for _, q := range []float64{0, 0.5, 1} {
		got := one.Quantile(q)
		if got < 42*time.Nanosecond || got > 84*time.Nanosecond {
			t.Errorf("single-sample Quantile(%v) = %v, want within [42ns, 84ns]", q, got)
		}
	}
}
