package telemetry

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"hermes/internal/tx"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, // non-positive clamps to bucket 0
		{1, 1},         // [1,2)
		{2, 2}, {3, 2}, // [2,4)
		{4, 3}, {7, 3}, // [4,8)
		{8, 4},
		{1023, 10}, {1024, 11}, {1025, 11},
		{(1 << 20) - 1, 20}, {1 << 20, 21}, {(1 << 20) + 1, 21},
		{1<<62 + 1, 63}, {int64(1<<63 - 1), 63}, // clamp at the top
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Errorf("histBucket(%d)=%d, want %d", c.ns, got, c.want)
		}
	}
	// Every positive value must fall strictly below its bucket's upper bound
	// and at or above the previous bucket's.
	for _, ns := range []int64{1, 2, 3, 100, 1e6, 1e9, 1 << 40} {
		b := histBucket(ns)
		if ns >= BucketUpperNs(b) && b < histBuckets-1 {
			t.Errorf("value %d not below upper bound %d of bucket %d", ns, BucketUpperNs(b), b)
		}
		if b > 1 && ns < BucketUpperNs(b-1) {
			t.Errorf("value %d below lower bound %d of bucket %d", ns, BucketUpperNs(b-1), b)
		}
	}
	if BucketUpperNs(0) != 0 || BucketUpperNs(-3) != 0 {
		t.Error("bucket 0 upper bound must be 0")
	}
	if BucketUpperNs(63) != 1<<62 || BucketUpperNs(200) != 1<<62 {
		t.Error("top bucket upper bound must saturate at 1<<62")
	}
}

func TestHistObserveAndSnapshot(t *testing.T) {
	var h LatencyHist
	vals := []int64{0, 1, 3, 1000, -7, 1 << 30}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("Count=%d, want %d", s.Count, len(vals))
	}
	// Negative clamps to 0 for the sum too.
	wantSum := int64(0 + 1 + 3 + 1000 + 0 + 1<<30)
	if s.SumNs != wantSum {
		t.Fatalf("SumNs=%d, want %d", s.SumNs, wantSum)
	}
	if s.Buckets[0] != 2 { // 0 and -7
		t.Fatalf("bucket 0 holds %d, want 2", s.Buckets[0])
	}
	if got := s.bucketTotal(); got != int64(len(vals)) {
		t.Fatalf("bucketTotal=%d, want %d", got, len(vals))
	}
	if s.MaxNs() != BucketUpperNs(31) {
		t.Fatalf("MaxNs=%d, want %d", s.MaxNs(), BucketUpperNs(31))
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.MaxNs() != 0 || empty.MeanNs() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

// TestHistConcurrentWritersMerge hammers shards from concurrent writers and
// checks the merged snapshot conserves every observation exactly.
func TestHistConcurrentWritersMerge(t *testing.T) {
	const writers, perWriter = 8, 5000
	p := NewPhaseHistograms([]tx.NodeID{0, 1, 2})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				var comps [NumComponents]int64
				comps[CompTotal] = rng.Int63n(1 << 24)
				comps[CompStorage] = comps[CompTotal] / 2
				// Mix known shards with an unknown node (catch-all).
				node := tx.NodeID(rng.Intn(4)) // 3 is unknown
				p.Observe(node, comps)
			}
		}(w)
	}
	wg.Wait()

	merged := p.Merged()
	total := merged[CompTotal]
	if got := total.bucketTotal(); got != writers*perWriter {
		t.Fatalf("merged bucketTotal=%d, want %d", got, writers*perWriter)
	}
	if total.Count != writers*perWriter {
		t.Fatalf("merged Count=%d, want %d", total.Count, writers*perWriter)
	}
	// Per-node shards plus catch-all must partition the merged counts.
	var sum int64
	for _, n := range p.Nodes() {
		s := p.Node(n)[CompTotal]
		sum += s.bucketTotal()
	}
	if sum > writers*perWriter {
		t.Fatalf("shard sum %d exceeds merged total", sum)
	}
	if sum == writers*perWriter {
		t.Fatal("catch-all never used despite unknown-node observations")
	}
}

// TestHistQuantileWithinOneBucket is the property test: for random sample
// sets, every reported quantile must be within one power-of-two bucket of
// the exact sample quantile (i.e. exact <= reported <= 2*max(exact,1)).
func TestHistQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 100 + rng.Intn(4000)
		var h LatencyHist
		vals := make([]int64, n)
		for i := range vals {
			switch rng.Intn(3) {
			case 0:
				vals[i] = rng.Int63n(1000) // microsecond-scale
			case 1:
				vals[i] = rng.Int63n(1 << 30) // second-scale
			default:
				vals[i] = rng.Int63n(1 << 44) // heavy tail
			}
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			rank := int(q * float64(n))
			if rank >= n {
				rank = n - 1
			}
			exact := vals[rank]
			got := s.Quantile(q)
			// The reported quantile is the containing bucket's upper bound:
			// it must not be below the exact value, and must be within one
			// doubling above it.
			if got < exact {
				t.Fatalf("trial %d q=%v: reported %d < exact %d", trial, q, got, exact)
			}
			lo := exact
			if lo < 1 {
				lo = 1
			}
			if got > 2*lo {
				t.Fatalf("trial %d q=%v: reported %d > 2x exact %d (off by more than one bucket)", trial, q, got, exact)
			}
		}
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b LatencyHist
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 200 || merged.bucketTotal() != 200 {
		t.Fatalf("merged count=%d/%d, want 200", merged.Count, merged.bucketTotal())
	}
	if merged.SumNs != sa.SumNs+sb.SumNs {
		t.Fatal("merged sum mismatch")
	}
	if merged.MaxNs() < sb.MaxNs() {
		t.Fatal("merge lost the larger histogram's max")
	}
}

func TestPhaseHistogramsNilSafe(t *testing.T) {
	var p *PhaseHistograms
	p.Observe(0, [NumComponents]int64{})
	if p.SummaryMap() != nil {
		t.Fatal("nil SummaryMap not nil")
	}
	if err := p.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tel *Telemetry
	tel.ObserveCommit(0, 1, [NumComponents]int64{CompTotal: 100})
	if tel.Phases() != nil || tel.Tail() != nil {
		t.Fatal("nil telemetry returned non-nil parts")
	}
}

func TestPhasePrometheusExposition(t *testing.T) {
	p := NewPhaseHistograms([]tx.NodeID{0, 1})
	for i := 0; i < 10; i++ {
		p.Observe(0, [NumComponents]int64{
			CompScheduling: 1000, CompStorage: 2000, CompTotal: 5000,
		})
		p.Observe(1, [NumComponents]int64{
			CompScheduling: 3000, CompStorage: 1000, CompTotal: 9000,
		})
	}
	var b strings.Builder
	if err := p.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE hermes_phase_latency_seconds histogram",
		`hermes_phase_latency_seconds_bucket{phase="total",le="+Inf"} 20`,
		`hermes_phase_latency_seconds_count{phase="total"} 20`,
		`hermes_phase_latency_seconds_sum{phase="scheduling"} `,
		`phase="storage"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing per phase and end at the
	// count; spot-check via the total phase: the +Inf bucket equals _count.
	if strings.Count(out, "# TYPE") != 1 {
		t.Errorf("want exactly one TYPE header (one family):\n%s", out)
	}

	sm := p.SummaryMap()
	tot, ok := sm["total"]
	if !ok {
		t.Fatalf("SummaryMap missing total: %v", sm)
	}
	if tot.Count != 20 {
		t.Fatalf("total count=%d, want 20", tot.Count)
	}
	if tot.MeanMs <= 0 || tot.P99Ms < tot.P50Ms || tot.MaxMs < tot.P99Ms {
		t.Fatalf("implausible summary: %+v", tot)
	}
	// queue_plan was always zero -> observed as bucket 0; it must still be
	// present (all components observed every commit) with zero quantiles.
	qp, ok := sm["queue_plan"]
	if !ok {
		t.Fatal("SummaryMap dropped an all-zero component that was observed")
	}
	if qp.P99Ms != 0 {
		t.Fatalf("all-zero component has nonzero p99: %+v", qp)
	}
}
