package telemetry

import (
	"sync"
	"sync/atomic"

	"hermes/internal/tx"
)

const (
	// tailWarmup is how many commits must be observed before the sampler
	// starts capturing (the p99 estimate is meaningless on a handful of
	// samples).
	tailWarmup = 128
	// tailRefreshEvery is how often (in commits) the cached p99 threshold
	// is recomputed from the histogram.
	tailRefreshEvery = 64
	// tailKeep bounds the retained slow-transaction captures; the oldest
	// capture is evicted first.
	tailKeep = 128
)

// SlowTxn is one retained tail capture: the full lifecycle of a
// transaction whose commit latency exceeded the dynamic p99 estimate at
// the time it committed.
type SlowTxn struct {
	// Txn is the transaction; Node is the committing node.
	Txn  tx.TxnID  `json:"txn"`
	Node tx.NodeID `json:"node"`
	// LatencyNs is the commit total; ThresholdNs is the p99 estimate it
	// exceeded.
	LatencyNs   int64 `json:"latency_ns"`
	ThresholdNs int64 `json:"threshold_ns"`
	// Comps is the full latency decomposition (indexed by Component).
	Comps [NumComponents]int64 `json:"comps"`
	// Dominant is the critical-path attribution: the component that
	// contributed the most latency.
	Dominant Component `json:"dominant"`
	// Events is the transaction's lifecycle trace as captured at commit
	// time (may be partial if the rings have wrapped).
	Events []Event `json:"events"`
}

// TailSampler retains the full lifecycle of every transaction whose
// commit latency exceeds a dynamic p99 estimate. The hot path is one
// lock-free histogram observe plus two atomic loads; only the ~1% of
// commits over the threshold take the capture lock and drain the rings.
type TailSampler struct {
	tracer *Tracer
	totals LatencyHist

	// threshold is the cached p99 of totals in nanoseconds, refreshed
	// every tailRefreshEvery commits.
	threshold atomic.Int64

	mu   sync.Mutex
	slow []SlowTxn // ring, oldest first once full
	next int       // ring cursor
	seen int64     // total captures ever (can exceed len(slow))
}

// NewTailSampler builds a sampler capturing lifecycle traces from tr.
func NewTailSampler(tr *Tracer) *TailSampler {
	return &TailSampler{tracer: tr}
}

// Observe feeds one commit into the sampler. Called from the engine's
// commit site; nil-safe.
func (s *TailSampler) Observe(node tx.NodeID, txn tx.TxnID, comps [NumComponents]int64) {
	if s == nil {
		return
	}
	total := comps[CompTotal]
	s.totals.Observe(total)
	n := s.totals.Count()
	if n%tailRefreshEvery == 0 {
		snap := s.totals.Snapshot()
		s.threshold.Store(snap.Quantile(0.99))
	}
	if n < tailWarmup {
		return
	}
	thr := s.threshold.Load()
	if thr <= 0 || total <= thr {
		return
	}
	s.capture(node, txn, total, thr, comps)
}

// capture records a slow transaction, grabbing its lifecycle events from
// the rings. Rare path (tail only), so the lock and the ring drain are
// acceptable.
func (s *TailSampler) capture(node tx.NodeID, txn tx.TxnID, total, thr int64, comps [NumComponents]int64) {
	st := SlowTxn{
		Txn: txn, Node: node,
		LatencyNs: total, ThresholdNs: thr,
		Comps:    comps,
		Dominant: dominantComponent(comps),
		Events:   s.tracer.TxnEvents(txn),
	}
	s.mu.Lock()
	if len(s.slow) < tailKeep {
		s.slow = append(s.slow, st)
	} else {
		s.slow[s.next] = st
		s.next = (s.next + 1) % tailKeep
	}
	s.seen++
	s.mu.Unlock()
}

// dominantComponent returns the component (excluding the total) that
// contributed the most latency.
func dominantComponent(comps [NumComponents]int64) Component {
	best := CompScheduling
	for c := Component(1); c < CompTotal; c++ {
		if comps[c] > comps[best] {
			best = c
		}
	}
	return best
}

// ThresholdNs returns the current p99 threshold estimate (0 until the
// first refresh). Nil-safe.
func (s *TailSampler) ThresholdNs() int64 {
	if s == nil {
		return 0
	}
	return s.threshold.Load()
}

// Captured returns how many slow transactions were ever captured
// (including evicted ones). Nil-safe.
func (s *TailSampler) Captured() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// Slow returns the retained captures, oldest first. Nil-safe (nil).
func (s *TailSampler) Slow() []SlowTxn {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SlowTxn, 0, len(s.slow))
	if len(s.slow) == tailKeep {
		out = append(out, s.slow[s.next:]...)
		out = append(out, s.slow[:s.next]...)
	} else {
		out = append(out, s.slow...)
	}
	return out
}
