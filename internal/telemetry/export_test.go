package telemetry

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"hermes/internal/tx"
)

func TestEventStreamRoundtrip(t *testing.T) {
	evs := []Event{
		{TS: 100, Txn: 1, Node: ClusterNode, Phase: PhaseEnqueued, Aux: 0},
		{TS: 200, Txn: 1, Node: 0, Phase: PhaseBatched, Aux: 7},
		{TS: 300, Txn: 2, Node: 2, Phase: PhaseCommitted, Aux: 12345},
		{TS: -50, Txn: 0, Node: 1, Phase: PhaseCrash, Aux: -9}, // negative fields survive
	}
	var buf bytes.Buffer
	if err := WriteEventStream(&buf, 987654321, evs); err != nil {
		t.Fatal(err)
	}
	es, err := ReadEventStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if es.ServerNowNs != 987654321 {
		t.Fatalf("ServerNowNs=%d, want 987654321", es.ServerNowNs)
	}
	if len(es.Events) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(es.Events), len(evs))
	}
	for i, ev := range es.Events {
		if ev != evs[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, ev, evs[i])
		}
	}
	// ClusterNode (-1) must round-trip through the unsigned wire form.
	if es.Events[0].Node != ClusterNode {
		t.Fatalf("ClusterNode decoded as %d", es.Events[0].Node)
	}
}

func TestEventStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEventStream(&buf, 5, nil); err != nil {
		t.Fatal(err)
	}
	es, err := ReadEventStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Events) != 0 || es.ServerNowNs != 5 {
		t.Fatalf("empty stream decoded as %+v", es)
	}
}

func TestEventStreamErrors(t *testing.T) {
	var good bytes.Buffer
	if err := WriteEventStream(&good, 1, []Event{{TS: 1, Txn: 1}}); err != nil {
		t.Fatal(err)
	}
	full := good.Bytes()

	check := func(name string, data []byte, wantErr string) {
		t.Helper()
		_, err := ReadEventStream(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantErr)
		}
	}

	bad := append([]byte{}, full...)
	copy(bad[:4], "XXXX")
	check("bad magic", bad, "magic")

	bad = append([]byte{}, full...)
	binary.LittleEndian.PutUint16(bad[4:6], 99)
	check("bad version", bad, "version")

	// Truncations: inside the header, inside a frame, and the missing
	// zero-length terminator must all fail loudly.
	check("header truncated", full[:10], "header")
	check("frame truncated", full[:16+4+10], "truncated")
	check("no terminator", full[:len(full)-4], "terminator")

	// An absurd frame length is rejected rather than allocated.
	bad = append([]byte{}, full[:16]...)
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], 1<<30)
	bad = append(bad, frame[:]...)
	check("oversized frame", bad, "out of range")
}

// TestEventStreamSkipsLongerFrames checks forward compatibility: a reader
// built for version 1 tolerates frames longer than it knows, reading the
// prefix it understands.
func TestEventStreamSkipsLongerFrames(t *testing.T) {
	var buf bytes.Buffer
	var hdr [16]byte
	copy(hdr[:4], "HTRC")
	binary.LittleEndian.PutUint16(hdr[4:6], 1)
	binary.LittleEndian.PutUint64(hdr[8:16], 77)
	buf.Write(hdr[:])
	// One frame with 8 extra trailing bytes a future version might add.
	payload := make([]byte, exportFrameLen+8)
	binary.LittleEndian.PutUint64(payload[0:8], 42)  // ts
	binary.LittleEndian.PutUint64(payload[8:16], 9)  // txn
	binary.LittleEndian.PutUint64(payload[16:24], 1) // node
	payload[24] = byte(PhaseCommitted)
	binary.LittleEndian.PutUint64(payload[25:33], 5) // aux
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(payload)))
	buf.Write(l[:])
	buf.Write(payload)
	buf.Write([]byte{0, 0, 0, 0})

	es, err := ReadEventStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Events) != 1 {
		t.Fatalf("decoded %d events, want 1", len(es.Events))
	}
	want := Event{TS: 42, Txn: 9, Node: tx.NodeID(1), Phase: PhaseCommitted, Aux: 5}
	if es.Events[0] != want {
		t.Fatalf("got %+v, want %+v", es.Events[0], want)
	}
}
