package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"hermes/internal/tx"
)

// Handler returns the live observability surface:
//
//	/metrics        Prometheus text exposition (registry + phase histograms)
//	/trace?txn=N    flame-style lifecycle summary of one transaction
//	/trace          full time-ordered event log (text)
//	/trace/export   binary event export (length-prefixed frames; see export.go)
//	/trace/slow     tail sampler captures as JSON
//	/clock          this process's wall clock as JSON (offset estimation)
//	/debug/pprof/*  the standard runtime profiles
//	/debug/vars     expvar JSON
//	/               a plain index of the above
//
// The handler is read-only: serving a request never mutates engine state,
// so it is safe to scrape a live deterministic run.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if t == nil {
			return
		}
		if t.registry != nil {
			_ = t.registry.WritePrometheus(w)
		}
		_ = t.phases.WritePrometheus(w)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr := t.Tracer()
		if q := r.URL.Query().Get("txn"); q != "" {
			id, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad txn id: "+q, http.StatusBadRequest)
				return
			}
			fmt.Fprint(w, tr.Summary(tx.TxnID(id)))
			return
		}
		evs := tr.Events()
		fmt.Fprintf(w, "%d events (use /trace?txn=N for one transaction)\n", len(evs))
		for _, ev := range evs {
			node := "cluster"
			if ev.Node != ClusterNode {
				node = fmt.Sprintf("node %d", ev.Node)
			}
			fmt.Fprintf(w, "%d txn=%d %-8s %-15s aux=%d\n", ev.TS, ev.Txn, node, ev.Phase, ev.Aux)
		}
	})

	mux.HandleFunc("/trace/export", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		evs := t.Tracer().Events()
		_ = WriteEventStream(w, time.Now().UnixNano(), evs)
	})

	mux.HandleFunc("/trace/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type slowView struct {
			SlowTxn
			DominantName string           `json:"dominant_name"`
			CompsByName  map[string]int64 `json:"comps_by_name"`
		}
		tail := t.Tail()
		slow := tail.Slow()
		out := struct {
			ThresholdNs int64      `json:"threshold_ns"`
			Captured    int64      `json:"captured"`
			Slow        []slowView `json:"slow"`
		}{ThresholdNs: tail.ThresholdNs(), Captured: tail.Captured()}
		for _, st := range slow {
			v := slowView{SlowTxn: st, DominantName: st.Dominant.String(),
				CompsByName: make(map[string]int64, int(NumComponents))}
			for c := Component(0); c < NumComponents; c++ {
				v.CompsByName[c.String()] = st.Comps[c]
			}
			out.Slow = append(out.Slow, v)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})

	mux.HandleFunc("/phases", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := make(map[string]HistSnapshot, int(NumComponents))
		if t != nil {
			merged := t.phases.Merged()
			for c := Component(0); c < NumComponents; c++ {
				out[c.String()] = merged[c]
			}
		}
		_ = json.NewEncoder(w).Encode(out)
	})

	mux.HandleFunc("/clock", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"now_unix_ns\":%d}\n", time.Now().UnixNano())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "hermes observability surface")
		fmt.Fprintln(w, "  /metrics        Prometheus text metrics + phase histograms")
		fmt.Fprintln(w, "  /trace          full lifecycle event log")
		fmt.Fprintln(w, "  /trace?txn=N    one transaction's trace")
		fmt.Fprintln(w, "  /trace/export   binary event export (collector wire form)")
		fmt.Fprintln(w, "  /trace/slow     slow-transaction tail captures (JSON)")
		fmt.Fprintln(w, "  /phases         merged per-phase latency histograms (JSON)")
		fmt.Fprintln(w, "  /clock          process wall clock (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/   runtime profiles")
		fmt.Fprintln(w, "  /debug/vars     expvar JSON")
	})

	return mux
}
