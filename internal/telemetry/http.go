package telemetry

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"hermes/internal/tx"
)

// Handler returns the live observability surface:
//
//	/metrics        Prometheus text exposition of the registry
//	/trace?txn=N    flame-style lifecycle summary of one transaction
//	/trace          full time-ordered event log (text)
//	/debug/pprof/*  the standard runtime profiles
//	/debug/vars     expvar JSON
//	/               a plain index of the above
//
// The handler is read-only: serving a request never mutates engine state,
// so it is safe to scrape a live deterministic run.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if t == nil || t.registry == nil {
			return
		}
		_ = t.registry.WritePrometheus(w)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr := t.Tracer()
		if q := r.URL.Query().Get("txn"); q != "" {
			id, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad txn id: "+q, http.StatusBadRequest)
				return
			}
			fmt.Fprint(w, tr.Summary(tx.TxnID(id)))
			return
		}
		evs := tr.Events()
		fmt.Fprintf(w, "%d events (use /trace?txn=N for one transaction)\n", len(evs))
		for _, ev := range evs {
			node := "cluster"
			if ev.Node != ClusterNode {
				node = fmt.Sprintf("node %d", ev.Node)
			}
			fmt.Fprintf(w, "%d txn=%d %-8s %-15s aux=%d\n", ev.TS, ev.Txn, node, ev.Phase, ev.Aux)
		}
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "hermes observability surface")
		fmt.Fprintln(w, "  /metrics        Prometheus text metrics")
		fmt.Fprintln(w, "  /trace          full lifecycle event log")
		fmt.Fprintln(w, "  /trace?txn=N    one transaction's trace")
		fmt.Fprintln(w, "  /debug/pprof/   runtime profiles")
		fmt.Fprintln(w, "  /debug/vars     expvar JSON")
	})

	return mux
}
