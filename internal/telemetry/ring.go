package telemetry

import (
	"sync/atomic"

	"hermes/internal/tx"
)

// Ring is a fixed-size lock-free event buffer. Writers claim slots with a
// single atomic fetch-add and publish with a per-slot sequence word
// (seqlock style); when the ring wraps, the oldest events are silently
// overwritten — tracing is an observation window, not a durable log.
// Writes never block and never allocate.
//
// Event fields are stored as individual atomic words so concurrent
// drains are data-race-free; the sequence word is checked before and
// after the field loads so a slot caught mid-overwrite is skipped rather
// than returned torn.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64 // next slot to claim
	slots []slot
}

type slot struct {
	// seq is 0 while unwritten or mid-write, claim+1 once published. A
	// reader that sees the same published seq before and after loading the
	// fields knows the copy is untorn.
	seq atomic.Uint64
	ts  atomic.Int64
	txn atomic.Uint64
	// np packs the node ID (upper 56 bits, signed) with the phase (low 8).
	np  atomic.Int64
	aux atomic.Int64
}

// NewRing returns a ring holding size events; size is rounded up to a
// power of two (minimum 64).
func NewRing(size int) *Ring {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Written returns how many events were ever written (including those
// already overwritten).
func (r *Ring) Written() uint64 { return r.pos.Load() }

// put claims the next slot and publishes ev into it.
func (r *Ring) put(ev Event) {
	claim := r.pos.Add(1) - 1
	s := &r.slots[claim&r.mask]
	s.seq.Store(0) // unpublish: readers skip the slot while we overwrite it
	s.ts.Store(ev.TS)
	s.txn.Store(uint64(ev.Txn))
	s.np.Store(int64(ev.Node)<<8 | int64(ev.Phase))
	s.aux.Store(ev.Aux)
	s.seq.Store(claim + 1)
}

// drain appends every stable event currently in the ring to out, oldest
// claim first, and returns the extended slice.
func (r *Ring) drain(out []Event) []Event {
	pos := r.pos.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if pos > n {
		start = pos - n
	}
	for claim := start; claim < pos; claim++ {
		s := &r.slots[claim&r.mask]
		if s.seq.Load() != claim+1 {
			continue // overwritten or mid-write
		}
		ev := Event{TS: s.ts.Load(), Txn: tx.TxnID(s.txn.Load()), Aux: s.aux.Load()}
		np := s.np.Load()
		ev.Node, ev.Phase = tx.NodeID(np>>8), Phase(np&0xff)
		if s.seq.Load() != claim+1 {
			continue // torn: a writer raced the loads
		}
		out = append(out, ev)
	}
	return out
}
