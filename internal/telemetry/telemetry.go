package telemetry

import "hermes/internal/tx"

// Telemetry bundles the lifecycle tracer, the metric registry, the
// per-phase latency histograms, and the slow-transaction tail sampler —
// one handle the engine threads through its layers and the HTTP surface
// serves from. A nil *Telemetry is a valid "fully disabled" instance:
// every accessor is nil-safe and returns the nil-safe zero of its part.
type Telemetry struct {
	tracer   *Tracer
	registry *Registry
	phases   *PhaseHistograms
	tail     *TailSampler
}

// New builds a Telemetry with one ring of ringSize events per node (see
// NewTracer) and an empty registry. Tracing starts enabled.
func New(nodes []tx.NodeID, ringSize int) *Telemetry {
	tr := NewTracer(nodes, ringSize)
	return &Telemetry{
		tracer:   tr,
		registry: NewRegistry(),
		phases:   NewPhaseHistograms(nodes),
		tail:     NewTailSampler(tr),
	}
}

// Tracer returns the lifecycle tracer (nil when t is nil — still safe to
// call Emit on).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Registry returns the metric registry, or nil when t is nil. Callers
// registering gauges must guard for nil; read paths use Snapshot on a
// non-nil registry only.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.registry
}

// Phases returns the per-phase latency histograms (nil when t is nil —
// still safe to Observe/snapshot).
func (t *Telemetry) Phases() *PhaseHistograms {
	if t == nil {
		return nil
	}
	return t.phases
}

// Tail returns the slow-transaction tail sampler (nil when t is nil —
// still safe to Observe/read).
func (t *Telemetry) Tail() *TailSampler {
	if t == nil {
		return nil
	}
	return t.tail
}

// ObserveCommit feeds one committed transaction's latency decomposition
// (indexed by Component, CompTotal included) into the histograms and the
// tail sampler. Nil-safe; lock-free except for the rare tail capture.
func (t *Telemetry) ObserveCommit(node tx.NodeID, txn tx.TxnID, comps [NumComponents]int64) {
	if t == nil {
		return
	}
	t.phases.Observe(node, comps)
	t.tail.Observe(node, txn, comps)
}
