package telemetry

import "hermes/internal/tx"

// Telemetry bundles the lifecycle tracer and the metric registry — one
// handle the engine threads through its layers and the HTTP surface
// serves from. A nil *Telemetry is a valid "fully disabled" instance:
// every accessor is nil-safe and returns the nil-safe zero of its part.
type Telemetry struct {
	tracer   *Tracer
	registry *Registry
}

// New builds a Telemetry with one ring of ringSize events per node (see
// NewTracer) and an empty registry. Tracing starts enabled.
func New(nodes []tx.NodeID, ringSize int) *Telemetry {
	return &Telemetry{
		tracer:   NewTracer(nodes, ringSize),
		registry: NewRegistry(),
	}
}

// Tracer returns the lifecycle tracer (nil when t is nil — still safe to
// call Emit on).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Registry returns the metric registry, or nil when t is nil. Callers
// registering gauges must guard for nil; read paths use Snapshot on a
// non-nil registry only.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.registry
}
