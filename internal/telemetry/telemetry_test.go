package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hermes/internal/tx"
)

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 200; i++ {
		r.put(Event{TS: int64(i), Txn: tx.TxnID(i)})
	}
	got := r.drain(nil)
	if len(got) != 64 {
		t.Fatalf("drained %d events, want 64", len(got))
	}
	for i, ev := range got {
		want := int64(200 - 64 + i)
		if ev.TS != want {
			t.Fatalf("event %d: TS=%d, want %d (oldest-first, newest kept)", i, ev.TS, want)
		}
	}
	if r.Written() != 200 {
		t.Fatalf("Written=%d, want 200", r.Written())
	}
}

func TestRingRoundsUpCapacity(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1000, 1024}} {
		if got := NewRing(c.in).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap()=%d, want %d", c.in, got, c.want)
		}
	}
}

func TestRingConcurrentPutDrain(t *testing.T) {
	const writers, perWriter = 4, 10000
	r := NewRing(256)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				// TS and Aux carry the same value so a torn read is detectable.
				r.put(Event{TS: v, Aux: v, Node: tx.NodeID(w)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		for _, ev := range r.drain(nil) {
			if ev.TS != ev.Aux {
				t.Fatalf("torn event escaped drain: TS=%d Aux=%d", ev.TS, ev.Aux)
			}
		}
		select {
		case <-done:
			if r.Written() != writers*perWriter {
				t.Fatalf("Written=%d, want %d", r.Written(), writers*perWriter)
			}
			if got := len(r.drain(nil)); got == 0 || got > r.Cap() {
				t.Fatalf("quiescent drain returned %d events, want 1..%d", got, r.Cap())
			}
			return
		default:
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, 1, PhaseCommitted, 0) // must not panic
	tr.EmitAt(time.Now(), 0, 1, PhaseCommitted, 0)
	tr.SetEnabled(true)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Events() != nil || tr.Written() != 0 {
		t.Fatal("nil tracer has events")
	}
	if !strings.Contains(tr.Summary(7), "no trace events") {
		t.Fatal("nil tracer summary missing placeholder")
	}

	var tel *Telemetry
	tel.Tracer().Emit(0, 1, PhaseCommitted, 0)
	if tel.Registry() != nil {
		t.Fatal("nil telemetry returned a registry")
	}
}

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer([]tx.NodeID{0, 1}, 64)
	tr.SetEnabled(false)
	tr.Emit(0, 1, PhaseCommitted, 0)
	if tr.Written() != 0 {
		t.Fatalf("disabled tracer wrote %d events", tr.Written())
	}
	tr.SetEnabled(true)
	tr.Emit(0, 1, PhaseCommitted, 0)
	if tr.Written() != 1 {
		t.Fatalf("re-enabled tracer wrote %d events, want 1", tr.Written())
	}
}

func TestTracerEventsOrderedAndRouted(t *testing.T) {
	tr := NewTracer([]tx.NodeID{0, 1}, 64)
	base := time.Unix(0, 1000)
	tr.EmitAt(base.Add(3*time.Nanosecond), 1, 5, PhaseExecuted, 0)
	tr.EmitAt(base, ClusterNode, 5, PhaseEnqueued, 0)
	tr.EmitAt(base.Add(1*time.Nanosecond), ClusterNode, 5, PhaseSequenced, 0)
	tr.EmitAt(base.Add(2*time.Nanosecond), 0, 5, PhaseBatched, 9)
	tr.EmitAt(base.Add(2*time.Nanosecond), 1, 5, PhaseBatched, 9)
	tr.EmitAt(base.Add(4*time.Nanosecond), 99, 5, PhaseCommitted, 42) // unknown node -> catch-all

	evs := tr.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	wantPhases := []Phase{PhaseEnqueued, PhaseSequenced, PhaseBatched, PhaseBatched, PhaseExecuted, PhaseCommitted}
	for i, ev := range evs {
		if ev.Phase != wantPhases[i] {
			t.Fatalf("event %d phase=%s, want %s", i, ev.Phase, wantPhases[i])
		}
	}
	// Equal timestamps break ties by node: node 0's batched before node 1's.
	if evs[2].Node != 0 || evs[3].Node != 1 {
		t.Fatalf("tie-break wrong: %v then %v", evs[2].Node, evs[3].Node)
	}

	if got := tr.TxnEvents(5); len(got) != 6 {
		t.Fatalf("TxnEvents(5) returned %d, want 6", len(got))
	}
	if got := tr.TxnEvents(6); len(got) != 0 {
		t.Fatalf("TxnEvents(6) returned %d, want 0", len(got))
	}
}

func TestTracerSummary(t *testing.T) {
	tr := NewTracer([]tx.NodeID{0}, 64)
	base := time.Unix(0, 0)
	tr.EmitAt(base, ClusterNode, 3, PhaseEnqueued, 0)
	tr.EmitAt(base.Add(time.Millisecond), 0, 3, PhaseRouted, 0)
	tr.EmitAt(base.Add(2*time.Millisecond), 0, 3, PhaseLocked, int64(500*time.Microsecond))
	tr.EmitAt(base.Add(3*time.Millisecond), 0, 3, PhaseCommitted, int64(3*time.Millisecond))
	s := tr.Summary(3)
	for _, want := range []string{"txn 3 trace (4 events)", "enqueued", "routed", "lock-wait=500µs", "total=3ms", "cluster", "node 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	phases := []Phase{PhaseEnqueued, PhaseSequenced, PhaseBatched, PhaseRouted, PhaseLocked,
		PhaseRemoteReady, PhaseMigratedIn, PhaseExecuted, PhaseCommitted, PhaseAborted, PhaseCrash, PhaseReplay}
	seen := map[string]bool{}
	for _, p := range phases {
		s := p.String()
		if s == "" || strings.HasPrefix(s, "phase(") || seen[s] {
			t.Fatalf("phase %d has bad or duplicate name %q", p, s)
		}
		seen[s] = true
	}
	if got := Phase(200).String(); got != "phase(200)" {
		t.Fatalf("unknown phase string %q", got)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hermes_commits_total", "committed txns")
	c2 := r.Counter("hermes_commits_total", "committed txns")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Inc()
	c1.Add(4)
	if c1.Value() != 5 {
		t.Fatalf("counter=%d, want 5", c1.Value())
	}
	if c1.Name() != "hermes_commits_total" {
		t.Fatalf("counter name %q", c1.Name())
	}

	v := 1.5
	r.Gauge(`hermes_queue_depth{node="0"}`, "queue depth", func() float64 { return v })
	r.Gauge(`hermes_queue_depth{node="0"}`, "queue depth", func() float64 { return v * 2 }) // replace
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	m := r.SnapshotMap()
	if m["hermes_commits_total"] != 5 {
		t.Fatalf("map counter=%v", m["hermes_commits_total"])
	}
	if m[`hermes_queue_depth{node="0"}`] != 3 {
		t.Fatalf("replaced gauge=%v, want 3", m[`hermes_queue_depth{node="0"}`])
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hermes_a_total", "a counter").Add(7)
	r.Gauge(`hermes_b{node="1"}`, "b gauge", func() float64 { return 2 })
	r.Gauge(`hermes_b{node="0"}`, "b gauge", func() float64 { return 1 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP hermes_a_total a counter",
		"# TYPE hermes_a_total counter",
		"hermes_a_total 7",
		"# TYPE hermes_b gauge",
		`hermes_b{node="0"} 1`,
		`hermes_b{node="1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE hermes_b ") != 1 {
		t.Errorf("duplicate TYPE header for family hermes_b:\n%s", out)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hermes_shared_total", "shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			r.Gauge("hermes_g", "g", func() float64 { return float64(w) })
			r.Snapshot()
		}(w)
	}
	wg.Wait()
	if got := r.SnapshotMap()["hermes_shared_total"]; got != 8000 {
		t.Fatalf("shared counter=%v, want 8000", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	tel := New([]tx.NodeID{0, 1}, 64)
	tel.Registry().Counter("hermes_x_total", "x").Add(3)
	tel.Tracer().EmitAt(time.Unix(0, 10), 0, 9, PhaseCommitted, 100)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b.String())
		}
		return b.String()
	}

	if out := get("/metrics"); !strings.Contains(out, "hermes_x_total 3") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/trace?txn=9"); !strings.Contains(out, "committed") {
		t.Errorf("/trace?txn=9 missing phase:\n%s", out)
	}
	if out := get("/trace"); !strings.Contains(out, "1 events") {
		t.Errorf("/trace missing log:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "cmdline") {
		t.Errorf("/debug/vars not expvar JSON:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/metrics") {
		t.Errorf("index missing endpoints:\n%s", out)
	}

	resp, err := srv.Client().Get(srv.URL + "/trace?txn=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad txn id: status %d, want 400", resp.StatusCode)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	tr := NewTracer([]tx.NodeID{0}, 1<<10)
	tr.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, 1, PhaseCommitted, 0)
	}
}

func BenchmarkEmitNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, 1, PhaseCommitted, 0)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer([]tx.NodeID{0}, 1<<14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, 1, PhaseCommitted, 0)
	}
}
