package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"hermes/internal/tx"
)

// TestTraceMergesAcrossRings is the regression for /trace?txn=N: a
// transaction's events live in many rings (the cluster ring, one ring per
// node, the catch-all), each emitted in its own local order, and the
// merged view must interleave them into global timestamp order.
func TestTraceMergesAcrossRings(t *testing.T) {
	tel := New([]tx.NodeID{0, 1, 2}, 64)
	tr := tel.Tracer()
	base := time.Unix(0, 0)
	at := func(ns int64) time.Time { return base.Add(time.Duration(ns)) }

	// Emission order is deliberately scrambled relative to timestamps and
	// spread across five rings; within each ring events also arrive
	// out of global order relative to other rings.
	const txn = tx.TxnID(42)
	tr.EmitAt(at(70), 2, txn, PhaseCommitted, 700) // node 2 ring
	tr.EmitAt(at(10), ClusterNode, txn, PhaseEnqueued, 0)
	tr.EmitAt(at(40), 1, txn, PhaseBatched, 4) // node 1 ring
	tr.EmitAt(at(20), ClusterNode, txn, PhaseSequenced, 0)
	tr.EmitAt(at(30), 0, txn, PhaseBatched, 4) // node 0 ring
	tr.EmitAt(at(50), 2, txn, PhaseBatched, 4)
	tr.EmitAt(at(60), 2, txn, PhaseRouted, 2)
	tr.EmitAt(at(45), 99, txn, PhaseMigratedIn, 64) // unknown node -> catch-all
	// Unrelated traffic in every ring must not leak into the txn view.
	tr.EmitAt(at(35), 0, 7, PhaseBatched, 4)
	tr.EmitAt(at(15), ClusterNode, 7, PhaseEnqueued, 0)

	evs := tr.TxnEvents(txn)
	wantPhases := []Phase{PhaseEnqueued, PhaseSequenced, PhaseBatched, PhaseBatched,
		PhaseMigratedIn, PhaseBatched, PhaseRouted, PhaseCommitted}
	if len(evs) != len(wantPhases) {
		t.Fatalf("TxnEvents returned %d events, want %d: %+v", len(evs), len(wantPhases), evs)
	}
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS }) {
		t.Fatalf("TxnEvents not in timestamp order: %+v", evs)
	}
	for i, ev := range evs {
		if ev.Phase != wantPhases[i] {
			t.Fatalf("event %d phase=%s, want %s (merge order wrong)", i, ev.Phase, wantPhases[i])
		}
	}
	// The catch-all ring's event (node 99) must appear at its timestamp
	// position, between node 1's and node 2's batched events.
	if evs[4].Node != 99 {
		t.Fatalf("catch-all event out of place: %+v", evs[4])
	}

	// The HTTP summary view must render the same order.
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace?txn=42")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if !strings.Contains(out, "txn 42 trace (8 events)") {
		t.Fatalf("/trace?txn=42 wrong event count:\n%s", out)
	}
	last := -1
	for _, phase := range []string{"enqueued", "sequenced", "migrated-in", "routed", "committed"} {
		idx := strings.Index(out, phase)
		if idx < 0 {
			t.Fatalf("/trace?txn=42 missing %q:\n%s", phase, out)
		}
		if idx < last {
			t.Fatalf("/trace?txn=42 renders %q out of order:\n%s", phase, out)
		}
		last = idx
	}
}

func TestTraceExportEndpoint(t *testing.T) {
	tel := New([]tx.NodeID{0, 1}, 64)
	tr := tel.Tracer()
	base := time.Unix(0, 1000)
	tr.EmitAt(base, ClusterNode, 5, PhaseEnqueued, 0)
	tr.EmitAt(base.Add(10), 0, 5, PhaseBatched, 1)
	tr.EmitAt(base.Add(20), 1, 5, PhaseCommitted, 20)

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	before := time.Now().UnixNano()
	resp, err := srv.Client().Get(srv.URL + "/trace/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	es, err := ReadEventStream(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if es.ServerNowNs < before || es.ServerNowNs > time.Now().UnixNano() {
		t.Fatalf("server clock %d outside request window", es.ServerNowNs)
	}
	if len(es.Events) != 3 {
		t.Fatalf("exported %d events, want 3", len(es.Events))
	}
	if es.Events[0].Phase != PhaseEnqueued || es.Events[2].Phase != PhaseCommitted {
		t.Fatalf("export order wrong: %+v", es.Events)
	}
	if es.Events[0].Node != ClusterNode {
		t.Fatalf("ClusterNode did not survive export: %+v", es.Events[0])
	}
}

func TestSlowPhasesClockEndpoints(t *testing.T) {
	tel := New([]tx.NodeID{0}, 1<<10)
	// Drive the sampler past warmup then land one outlier.
	for i := 0; i < 2*tailWarmup; i++ {
		tel.ObserveCommit(0, tx.TxnID(i+1), [NumComponents]int64{
			CompStorage: 500, CompTotal: 1000,
		})
	}
	tel.Tracer().EmitAt(time.Unix(0, 5), 0, 777, PhaseCommitted, 1<<20)
	tel.ObserveCommit(0, 777, [NumComponents]int64{
		CompRemoteWait: 1 << 19, CompTotal: 1 << 20,
	})

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()
	get := func(path string) []byte {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		return b
	}

	var slow struct {
		ThresholdNs int64 `json:"threshold_ns"`
		Captured    int64 `json:"captured"`
		Slow        []struct {
			Txn          uint64           `json:"txn"`
			DominantName string           `json:"dominant_name"`
			CompsByName  map[string]int64 `json:"comps_by_name"`
		} `json:"slow"`
	}
	if err := json.Unmarshal(get("/trace/slow"), &slow); err != nil {
		t.Fatal(err)
	}
	if slow.Captured != 1 || len(slow.Slow) != 1 {
		t.Fatalf("slow endpoint captured=%d len=%d, want 1", slow.Captured, len(slow.Slow))
	}
	if slow.Slow[0].Txn != 777 || slow.Slow[0].DominantName != "remote_wait" {
		t.Fatalf("slow capture wrong: %+v", slow.Slow[0])
	}
	if slow.Slow[0].CompsByName["total"] != 1<<20 {
		t.Fatalf("comps_by_name wrong: %+v", slow.Slow[0].CompsByName)
	}

	var phases map[string]HistSnapshot
	if err := json.Unmarshal(get("/phases"), &phases); err != nil {
		t.Fatal(err)
	}
	tot, ok := phases["total"]
	if !ok || tot.Count != int64(2*tailWarmup+1) {
		t.Fatalf("/phases total count=%d, want %d", tot.Count, 2*tailWarmup+1)
	}
	// The raw snapshot must be re-mergeable by a collector: quantiles work.
	if tot.Quantile(0.5) == 0 {
		t.Fatal("/phases snapshot lost its buckets")
	}

	var clock struct {
		NowUnixNs int64 `json:"now_unix_ns"`
	}
	before := time.Now().UnixNano()
	if err := json.Unmarshal(get("/clock"), &clock); err != nil {
		t.Fatal(err)
	}
	if clock.NowUnixNs < before || clock.NowUnixNs > time.Now().UnixNano() {
		t.Fatalf("/clock %d outside request window", clock.NowUnixNs)
	}

	// /metrics must carry the histogram family alongside the registry.
	if out := string(get("/metrics")); !strings.Contains(out, "hermes_phase_latency_seconds_bucket") {
		t.Fatalf("/metrics missing phase histogram family:\n%s", out)
	}
}
