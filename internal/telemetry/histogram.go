package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"

	"hermes/internal/tx"
)

// Component is one piece of a committed transaction's latency
// decomposition, mirroring metrics.Breakdown plus the total. The engine
// reports all components for every commit (zeros included), so the
// histograms stay comparable across execution modes: lock mode always
// observes queue_plan = 0 and queue mode always observes lock_wait = 0.
type Component uint8

// Latency components, in the order the engine reports them.
const (
	// CompScheduling: sequencer arrival to executor dispatch.
	CompScheduling Component = iota
	// CompLockWait: conservative lock acquisition wait (lock mode).
	CompLockWait
	// CompQueuePlan: per-key queue planning share (queue mode).
	CompQueuePlan
	// CompQueueWait: wait for predecessor operations in the key queues
	// (queue mode).
	CompQueueWait
	// CompStorage: storage read/write time.
	CompStorage
	// CompRemoteWait: wait for remote records (multi-partition txns).
	CompRemoteWait
	// CompOther: residual (total minus the sum of the above).
	CompOther
	// CompTotal: submit-to-commit total latency.
	CompTotal
	// NumComponents is the component count (array sizing).
	NumComponents
)

// String returns the Prometheus-safe component label.
func (c Component) String() string {
	switch c {
	case CompScheduling:
		return "scheduling"
	case CompLockWait:
		return "lock_wait"
	case CompQueuePlan:
		return "queue_plan"
	case CompQueueWait:
		return "queue_wait"
	case CompStorage:
		return "storage"
	case CompRemoteWait:
		return "remote_wait"
	case CompOther:
		return "other"
	case CompTotal:
		return "total"
	default:
		return fmt.Sprintf("component(%d)", uint8(c))
	}
}

// histBuckets is the fixed bucket count: bucket 0 holds the value 0 and
// bucket i (i >= 1) holds [2^(i-1), 2^i) nanoseconds, so 63 buckets cover
// every non-negative int64.
const histBuckets = 64

// histBucket maps a non-negative latency to its bucket index.
func histBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpperNs returns the exclusive upper bound of bucket i in
// nanoseconds (0 for bucket 0's inclusive single value).
func BucketUpperNs(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(1) << 62 // saturate rather than overflow
	}
	return int64(1) << uint(i)
}

// LatencyHist is a lock-free log2-bucketed latency histogram. Observe is
// three uncontended-cacheline atomics; there is no lock anywhere, so it
// is safe on the commit hot path from every executor concurrently.
type LatencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one latency in nanoseconds (negative clamps to zero).
func (h *LatencyHist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations so far.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram into an immutable snapshot. Concurrent
// writers may land between field loads; the snapshot is still a valid
// histogram (every observed value is in some bucket), just not a perfect
// point-in-time cut.
func (h *LatencyHist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a LatencyHist, mergeable across
// shards and serializable into reports.
type HistSnapshot struct {
	Buckets [histBuckets]int64 `json:"buckets"`
	Count   int64              `json:"count"`
	SumNs   int64              `json:"sum_ns"`
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
}

// bucketTotal sums the buckets (the authoritative count for quantiles;
// Count can lag behind under concurrent snapshot).
func (s *HistSnapshot) bucketTotal() int64 {
	var n int64
	for i := range s.Buckets {
		n += s.Buckets[i]
	}
	return n
}

// Quantile returns the q-quantile (0 <= q <= 1) as the upper bound of the
// bucket containing it — within one power-of-two bucket of the exact
// sample quantile. Returns 0 on an empty histogram.
func (s *HistSnapshot) Quantile(q float64) int64 {
	total := s.bucketTotal()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen > rank {
			return BucketUpperNs(i)
		}
	}
	return BucketUpperNs(histBuckets - 1)
}

// MeanNs returns the exact mean in nanoseconds (sum is tracked exactly).
func (s *HistSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// MaxNs returns the upper bound of the highest non-empty bucket.
func (s *HistSnapshot) MaxNs() int64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpperNs(i)
		}
	}
	return 0
}

// phaseShard is one node's set of per-component histograms.
type phaseShard struct {
	comps [NumComponents]LatencyHist
}

// PhaseHistograms shards per-component commit-latency histograms by node.
// The shard map is immutable after construction (same discipline as the
// tracer's rings), so Observe is entirely lock-free; scrapes merge the
// shards into one snapshot per component.
type PhaseHistograms struct {
	shards map[tx.NodeID]*phaseShard
	// catchAll absorbs observations for nodes outside the construction
	// set so no commit is ever silently dropped.
	catchAll *phaseShard
}

// NewPhaseHistograms builds one shard per node plus the catch-all.
func NewPhaseHistograms(nodes []tx.NodeID) *PhaseHistograms {
	p := &PhaseHistograms{
		shards:   make(map[tx.NodeID]*phaseShard, len(nodes)),
		catchAll: &phaseShard{},
	}
	for _, n := range nodes {
		p.shards[n] = &phaseShard{}
	}
	return p
}

// Observe records one commit's full latency decomposition at node.
// Nil-safe; lock-free.
func (p *PhaseHistograms) Observe(node tx.NodeID, comps [NumComponents]int64) {
	if p == nil {
		return
	}
	sh, ok := p.shards[node]
	if !ok {
		sh = p.catchAll
	}
	for c := 0; c < int(NumComponents); c++ {
		sh.comps[c].Observe(comps[c])
	}
}

// Merged returns one merged-across-nodes snapshot per component.
// Nil-safe (zero snapshots).
func (p *PhaseHistograms) Merged() [NumComponents]HistSnapshot {
	var out [NumComponents]HistSnapshot
	if p == nil {
		return out
	}
	for _, sh := range p.shards {
		for c := range out {
			s := sh.comps[c].Snapshot()
			out[c].Merge(s)
		}
	}
	for c := range out {
		s := p.catchAll.comps[c].Snapshot()
		out[c].Merge(s)
	}
	return out
}

// Node returns the per-component snapshots of one node's shard (zero
// snapshots for unknown nodes; the catch-all is not included).
func (p *PhaseHistograms) Node(node tx.NodeID) [NumComponents]HistSnapshot {
	var out [NumComponents]HistSnapshot
	if p == nil {
		return out
	}
	sh, ok := p.shards[node]
	if !ok {
		return out
	}
	for c := range out {
		out[c] = sh.comps[c].Snapshot()
	}
	return out
}

// Nodes returns the shard node IDs in ascending order.
func (p *PhaseHistograms) Nodes() []tx.NodeID {
	if p == nil {
		return nil
	}
	out := make([]tx.NodeID, 0, len(p.shards))
	for n := range p.shards {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WritePrometheus renders the merged per-component histograms as one
// Prometheus histogram family, hermes_phase_latency_seconds, with a
// phase label per component: cumulative _bucket{le=...} series (le is
// the bucket upper bound in seconds), _sum, and _count. Empty leading
// and trailing buckets are trimmed; +Inf always closes the series.
func (p *PhaseHistograms) WritePrometheus(w io.Writer) error {
	if p == nil {
		return nil
	}
	const fam = "hermes_phase_latency_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Commit latency decomposition by lifecycle phase.\n# TYPE %s histogram\n", fam, fam); err != nil {
		return err
	}
	merged := p.Merged()
	for c := Component(0); c < NumComponents; c++ {
		s := merged[c]
		lo, hi := 0, -1
		for i := range s.Buckets {
			if s.Buckets[i] != 0 {
				if hi < 0 {
					lo = i
				}
				hi = i
			}
		}
		var cum int64
		for i := lo; i <= hi; i++ {
			cum += s.Buckets[i]
			le := float64(BucketUpperNs(i)) / 1e9
			if _, err := fmt.Fprintf(w, "%s_bucket{phase=%q,le=%q} %d\n", fam, c, formatLe(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{phase=%q,le=\"+Inf\"} %d\n", fam, c, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{phase=%q} %g\n", fam, c, float64(s.SumNs)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{phase=%q} %d\n", fam, c, cum); err != nil {
			return err
		}
	}
	return nil
}

// formatLe renders a bucket bound without exponent noise for small
// values (Prometheus accepts any float syntax; this keeps it readable).
func formatLe(v float64) string {
	return fmt.Sprintf("%g", v)
}

// PhaseSummary is a compact report view of one component's histogram:
// the fields hermes-bench -report embeds per run.
type PhaseSummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summarize reduces a snapshot to the report fields.
func (s *HistSnapshot) Summarize() PhaseSummary {
	return PhaseSummary{
		Count:  s.bucketTotal(),
		MeanMs: s.MeanNs() / 1e6,
		P50Ms:  float64(s.Quantile(0.50)) / 1e6,
		P95Ms:  float64(s.Quantile(0.95)) / 1e6,
		P99Ms:  float64(s.Quantile(0.99)) / 1e6,
		MaxMs:  float64(s.MaxNs()) / 1e6,
	}
}

// SummaryMap returns the merged snapshots as a component-name -> summary
// map (the run-report / stats form).
func (p *PhaseHistograms) SummaryMap() map[string]PhaseSummary {
	if p == nil {
		return nil
	}
	merged := p.Merged()
	out := make(map[string]PhaseSummary, int(NumComponents))
	for c := Component(0); c < NumComponents; c++ {
		s := merged[c]
		if s.bucketTotal() == 0 {
			continue
		}
		out[c.String()] = s.Summarize()
	}
	return out
}
