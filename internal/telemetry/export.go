package telemetry

import (
	"encoding/binary"
	"fmt"
	"io"

	"hermes/internal/tx"
)

// Binary event-export stream: the wire form served at /trace/export and
// consumed by the harness trace collector. Layout (little-endian):
//
//	header:  magic "HTRC" (4 bytes) | version u16 | reserved u16
//	         serverNowNs i64 (the exporter's clock at serve time)
//	frames:  repeated { length u32 | payload }, one event per frame:
//	         ts i64 | txn u64 | node i64 | phase u8 | aux i64
//	footer:  length u32 == 0 terminates the stream
//
// Length-prefixing makes the stream self-describing: a reader built for
// version 1 can skip longer frames a newer exporter might emit, and a
// truncated stream (killed process) fails loudly instead of yielding a
// torn event.

const (
	exportMagic   = "HTRC"
	exportVersion = 1
	// exportFrameLen is the version-1 event payload size.
	exportFrameLen = 8 + 8 + 8 + 1 + 8
)

// EventStream is one process's decoded export: the events plus the
// exporter's own clock at serve time (one extra offset sample for the
// collector).
type EventStream struct {
	// ServerNowNs is the exporting process's wall clock (Unix nanoseconds)
	// when the stream was written.
	ServerNowNs int64
	// Events is the full drained event log, already time-ordered by the
	// exporter.
	Events []Event
}

// WriteEventStream writes the binary export of evs to w.
func WriteEventStream(w io.Writer, serverNowNs int64, evs []Event) error {
	var hdr [16]byte
	copy(hdr[:4], exportMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], exportVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(serverNowNs))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var frame [4 + exportFrameLen]byte
	binary.LittleEndian.PutUint32(frame[0:4], exportFrameLen)
	for _, ev := range evs {
		b := frame[4:]
		binary.LittleEndian.PutUint64(b[0:8], uint64(ev.TS))
		binary.LittleEndian.PutUint64(b[8:16], uint64(ev.Txn))
		binary.LittleEndian.PutUint64(b[16:24], uint64(ev.Node))
		b[24] = byte(ev.Phase)
		binary.LittleEndian.PutUint64(b[25:33], uint64(ev.Aux))
		if _, err := w.Write(frame[:]); err != nil {
			return err
		}
	}
	var end [4]byte // zero length: end of stream
	_, err := w.Write(end[:])
	return err
}

// ReadEventStream decodes a binary export stream from r. It returns an
// error on a bad magic/version or a truncated stream.
func ReadEventStream(r io.Reader) (*EventStream, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("telemetry: export header: %w", err)
	}
	if string(hdr[:4]) != exportMagic {
		return nil, fmt.Errorf("telemetry: bad export magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != exportVersion {
		return nil, fmt.Errorf("telemetry: unsupported export version %d", v)
	}
	es := &EventStream{ServerNowNs: int64(binary.LittleEndian.Uint64(hdr[8:16]))}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("telemetry: export truncated (no terminator): %w", err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 {
			return es, nil
		}
		if n < exportFrameLen || n > 1<<16 {
			return nil, fmt.Errorf("telemetry: export frame length %d out of range", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("telemetry: export frame truncated: %w", err)
		}
		es.Events = append(es.Events, Event{
			TS:    int64(binary.LittleEndian.Uint64(buf[0:8])),
			Txn:   tx.TxnID(binary.LittleEndian.Uint64(buf[8:16])),
			Node:  tx.NodeID(binary.LittleEndian.Uint64(buf[16:24])),
			Phase: Phase(buf[24]),
			Aux:   int64(binary.LittleEndian.Uint64(buf[25:33])),
		})
	}
}
