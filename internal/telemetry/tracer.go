// Package telemetry is the observability layer of the emulated cluster: a
// low-overhead per-transaction lifecycle tracer backed by per-node
// lock-free ring buffers, a registry of gauges and counters snapshotted
// atomically, and an HTTP surface (Prometheus text /metrics, pprof,
// expvar, per-transaction traces).
//
// Everything in this package is strictly observation-only: no engine
// decision may depend on a telemetry read, and no telemetry write may
// perturb the deterministic state machine. The chaos equivalence harness
// enforces this by asserting byte-identical node digests with tracing
// fully on versus fully off (internal/chaos.TelemetryEquivalence).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hermes/internal/tx"
)

// Phase is one step of the transaction lifecycle, in pipeline order.
type Phase uint8

// Lifecycle phases, emitted by the engine as a transaction flows through
// the deterministic pipeline; Crash and Replay are node-scope markers
// (Txn 0).
const (
	// PhaseEnqueued: the client submitted the request (the event timestamp
	// is the submit time, recorded when the total order assigns the ID).
	PhaseEnqueued Phase = iota
	// PhaseSequenced: the total-order leader assigned the transaction ID.
	PhaseSequenced
	// PhaseBatched: the sealed batch containing the transaction arrived at
	// a node's scheduler queue (Aux = batch sequence).
	PhaseBatched
	// PhaseRouted: the node's routing replica planned the transaction
	// (Aux = master node, or -1 for multi-master).
	PhaseRouted
	// PhaseLocked: the node's conservative ordered locks were granted
	// (Aux = lock-wait nanoseconds).
	PhaseLocked
	// PhaseRemoteReady: every expected remote record arrived (Aux = record
	// count). Only emitted by roles that waited.
	PhaseRemoteReady
	// PhaseMigratedIn: a migrated record landed in this node's storage
	// (Aux = payload bytes).
	PhaseMigratedIn
	// PhaseExecuted: the transaction logic ran at this node (master or
	// writer role).
	PhaseExecuted
	// PhaseCommitted / PhaseAborted: the committing role answered the
	// client (Aux = total latency in nanoseconds).
	PhaseCommitted
	PhaseAborted
	// PhaseCrash marks a node kill; PhaseReplay marks the restart
	// beginning deterministic replay (Aux = replay watermark batch seq).
	PhaseCrash
	PhaseReplay
	// PhaseFailover marks a sequencer leadership change: a standby
	// promoted itself after the leader fell silent (Aux = new epoch).
	PhaseFailover
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseEnqueued:
		return "enqueued"
	case PhaseSequenced:
		return "sequenced"
	case PhaseBatched:
		return "batched"
	case PhaseRouted:
		return "routed"
	case PhaseLocked:
		return "locks-acquired"
	case PhaseRemoteReady:
		return "remote-ready"
	case PhaseMigratedIn:
		return "migrated-in"
	case PhaseExecuted:
		return "executed"
	case PhaseCommitted:
		return "committed"
	case PhaseAborted:
		return "aborted"
	case PhaseCrash:
		return "crash"
	case PhaseReplay:
		return "replay"
	case PhaseFailover:
		return "failover"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// ClusterNode is the pseudo-node for cluster-scope events (client
// submission, total-order assignment).
const ClusterNode tx.NodeID = -1

// Event is one lifecycle observation. It is a flat value (no pointers) so
// ring writes never allocate.
type Event struct {
	// TS is the observation wall-clock time in Unix nanoseconds.
	TS int64
	// Txn is the transaction (0 for node-scope markers).
	Txn tx.TxnID
	// Node is where the event was observed (ClusterNode for cluster scope).
	Node tx.NodeID
	// Phase is the lifecycle step.
	Phase Phase
	// Aux is a phase-specific detail; see the Phase constants.
	Aux int64
}

// Tracer records lifecycle events into per-node rings. The zero of
// *Tracer (nil) is a valid disabled tracer: every method is nil-safe, and
// the disabled Emit path is a single predictable branch with no clock
// read and no allocation.
type Tracer struct {
	on atomic.Bool
	// rings is immutable after construction: Emit only ever reads it.
	rings map[tx.NodeID]*Ring
	// catchAll receives events for nodes outside the construction set, so
	// no emission is ever silently lost.
	catchAll *Ring
}

// NewTracer builds a tracer with one ring of ringSize events per node
// (plus the ClusterNode ring and a catch-all). The tracer starts enabled.
func NewTracer(nodes []tx.NodeID, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 1 << 14
	}
	t := &Tracer{rings: make(map[tx.NodeID]*Ring, len(nodes)+1)}
	for _, n := range nodes {
		t.rings[n] = NewRing(ringSize)
	}
	if _, ok := t.rings[ClusterNode]; !ok {
		t.rings[ClusterNode] = NewRing(ringSize)
	}
	t.catchAll = NewRing(ringSize)
	t.on.Store(true)
	return t
}

// Enabled reports whether Emit currently records. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// SetEnabled flips recording on or off. Nil-safe (no-op on nil).
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.on.Store(on)
	}
}

// Emit records one event stamped now. Nil-safe; when disabled it is a
// single branch.
func (t *Tracer) Emit(node tx.NodeID, txn tx.TxnID, ph Phase, aux int64) {
	if t == nil || !t.on.Load() {
		return
	}
	t.put(Event{TS: time.Now().UnixNano(), Txn: txn, Node: node, Phase: ph, Aux: aux})
}

// EmitAt records one event with an explicit timestamp (e.g. the client
// submit time, observed later). Nil-safe.
func (t *Tracer) EmitAt(ts time.Time, node tx.NodeID, txn tx.TxnID, ph Phase, aux int64) {
	if t == nil || !t.on.Load() {
		return
	}
	t.put(Event{TS: ts.UnixNano(), Txn: txn, Node: node, Phase: ph, Aux: aux})
}

func (t *Tracer) put(ev Event) {
	r, ok := t.rings[ev.Node]
	if !ok {
		r = t.catchAll
	}
	r.put(ev)
}

// Written returns how many events were ever emitted across all rings
// (including events the rings have since overwritten).
func (t *Tracer) Written() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, r := range t.rings {
		n += r.Written()
	}
	return n + t.catchAll.Written()
}

// Events drains every ring into one time-ordered event log (ties broken
// by node, then phase order). Nil-safe (returns nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, r := range t.rings {
		out = r.drain(out)
	}
	out = t.catchAll.drain(out)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Phase < b.Phase
	})
	return out
}

// TxnEvents returns the time-ordered events of one transaction.
func (t *Tracer) TxnEvents(txn tx.TxnID) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Txn == txn {
			out = append(out, ev)
		}
	}
	return out
}

// Summary renders a flame-style per-transaction trace: one line per
// event with the offset from the first event, the node, the phase, and
// the inter-event delta — the "why did this txn wait 30 ms" view.
func (t *Tracer) Summary(txn tx.TxnID) string {
	evs := t.TxnEvents(txn)
	if len(evs) == 0 {
		return fmt.Sprintf("txn %d: no trace events (ring overwritten or tracing disabled)\n", txn)
	}
	var b strings.Builder
	t0 := evs[0].TS
	fmt.Fprintf(&b, "txn %d trace (%d events):\n", txn, len(evs))
	prev := t0
	for _, ev := range evs {
		node := "cluster"
		if ev.Node != ClusterNode {
			node = fmt.Sprintf("node %d", ev.Node)
		}
		fmt.Fprintf(&b, "  +%-12s %-8s %-15s", time.Duration(ev.TS-t0), node, ev.Phase)
		if d := time.Duration(ev.TS - prev); d > 0 {
			fmt.Fprintf(&b, " (+%s)", d)
		}
		switch ev.Phase {
		case PhaseBatched, PhaseReplay:
			fmt.Fprintf(&b, " seq=%d", ev.Aux)
		case PhaseRouted:
			if ev.Aux >= 0 {
				fmt.Fprintf(&b, " master=%d", ev.Aux)
			} else {
				fmt.Fprintf(&b, " multi-master")
			}
		case PhaseLocked:
			fmt.Fprintf(&b, " lock-wait=%s", time.Duration(ev.Aux))
		case PhaseRemoteReady:
			fmt.Fprintf(&b, " records=%d", ev.Aux)
		case PhaseMigratedIn:
			fmt.Fprintf(&b, " bytes=%d", ev.Aux)
		case PhaseCommitted, PhaseAborted:
			fmt.Fprintf(&b, " total=%s", time.Duration(ev.Aux))
		}
		b.WriteByte('\n')
		prev = ev.TS
	}
	return b.String()
}
