package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use;
// Add is a single atomic on the hot path.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Name returns the full metric name (including any label suffix).
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// gauge samples a value through a callback at snapshot time. The callback
// must be safe to invoke from any goroutine and must not mutate anything.
type gauge struct {
	name string
	help string
	fn   func() float64
}

// Sample is one metric observation in a registry snapshot.
type Sample struct {
	// Name is the full metric name, e.g. `hermes_fusion_occupancy{node="0"}`.
	Name string
	// Kind is "counter" or "gauge".
	Kind string
	// Value is the sampled value.
	Value float64
}

// Registry holds a set of named counters and gauges and produces atomic
// snapshots: one lock acquisition covers the whole metric list, and every
// counter/gauge is read exactly once per snapshot.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []gauge
	byName   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// Counter registers (or re-uses) a counter. name may carry a Prometheus
// label suffix (`{node="3"}`); the part before the brace is the metric
// family. Registering the same full name twice returns the same counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	r.byName[name] = struct{}{}
	return c
}

// Gauge registers a sampled gauge. Duplicate full names are replaced so a
// rebuilt component (e.g. a restarted node) can re-register its closure.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i].fn = fn
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name: name, help: help, fn: fn})
	r.byName[name] = struct{}{}
}

// Snapshot reads every metric once under the registry lock and returns
// the samples sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges))
	for _, c := range r.counters {
		out = append(out, Sample{Name: c.name, Kind: "counter", Value: float64(c.Value())})
	}
	for _, g := range r.gauges {
		out = append(out, Sample{Name: g.name, Kind: "gauge", Value: g.fn()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotMap returns the snapshot as a name -> value map (run reports).
func (r *Registry) SnapshotMap() map[string]float64 {
	snap := r.Snapshot()
	out := make(map[string]float64, len(snap))
	for _, s := range snap {
		out[s.Name] = s.Value
	}
	return out
}

// family strips a label suffix: `a{b="c"}` -> `a`.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per metric family,
// then every sample of that family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Gather help/kind per family under the lock, then render from the
	// consistent snapshot.
	r.mu.Lock()
	helps := make(map[string]string)
	kinds := make(map[string]string)
	for _, c := range r.counters {
		f := family(c.name)
		if _, ok := helps[f]; !ok {
			helps[f], kinds[f] = c.help, "counter"
		}
	}
	for _, g := range r.gauges {
		f := family(g.name)
		if _, ok := helps[f]; !ok {
			helps[f], kinds[f] = g.help, "gauge"
		}
	}
	r.mu.Unlock()
	snap := r.Snapshot()
	// Group strictly by family so each # TYPE header appears exactly once
	// even when sort-by-full-name would interleave families.
	sort.SliceStable(snap, func(i, j int) bool {
		fi, fj := family(snap[i].Name), family(snap[j].Name)
		if fi != fj {
			return fi < fj
		}
		return snap[i].Name < snap[j].Name
	})

	var lastFam string
	for _, s := range snap {
		f := family(s.Name)
		if f != lastFam {
			if h := helps[f]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, kinds[f]); err != nil {
				return err
			}
			lastFam = f
		}
		if _, err := fmt.Fprintf(w, "%s %v\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
