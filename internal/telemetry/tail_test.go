package telemetry

import (
	"testing"
	"time"

	"hermes/internal/tx"
)

// feedFast pushes n typical commits (total ~= base) through the sampler.
func feedFast(s *TailSampler, n int, base int64, startTxn uint64) {
	for i := 0; i < n; i++ {
		var comps [NumComponents]int64
		comps[CompStorage] = base / 2
		comps[CompTotal] = base
		s.Observe(0, tx.TxnID(startTxn+uint64(i)), comps)
	}
}

func TestTailSamplerCapturesOutliers(t *testing.T) {
	tr := NewTracer([]tx.NodeID{0}, 1<<10)
	s := NewTailSampler(tr)

	// Warmup: typical commits around 1000ns. After 128 observations the
	// threshold has refreshed at least twice (every 64).
	feedFast(s, 2*tailWarmup, 1000, 1)
	if thr := s.ThresholdNs(); thr <= 0 || thr > 4096 {
		t.Fatalf("threshold after warmup = %d, want a small positive bound", thr)
	}
	if got := s.Captured(); got != 0 {
		t.Fatalf("captured %d typical commits, want 0", got)
	}

	// An outlier far over the p99 estimate, with lifecycle events in the
	// rings, must be captured with its trace and dominant component.
	const slowTxn = tx.TxnID(9999)
	tr.EmitAt(time.Unix(0, 10), ClusterNode, slowTxn, PhaseEnqueued, 0)
	tr.EmitAt(time.Unix(0, 20), 0, slowTxn, PhaseLocked, 5)
	tr.EmitAt(time.Unix(0, 30), 0, slowTxn, PhaseCommitted, 1<<20)
	var comps [NumComponents]int64
	comps[CompLockWait] = 1 << 19
	comps[CompStorage] = 1 << 10
	comps[CompTotal] = 1 << 20
	s.Observe(0, slowTxn, comps)

	slow := s.Slow()
	if len(slow) != 1 || s.Captured() != 1 {
		t.Fatalf("captured %d/%d, want 1", len(slow), s.Captured())
	}
	st := slow[0]
	if st.Txn != slowTxn || st.Node != 0 {
		t.Fatalf("capture identity wrong: %+v", st)
	}
	if st.LatencyNs != 1<<20 || st.ThresholdNs <= 0 || st.LatencyNs <= st.ThresholdNs {
		t.Fatalf("capture latency/threshold wrong: %+v", st)
	}
	if st.Dominant != CompLockWait {
		t.Fatalf("dominant=%s, want lock_wait", st.Dominant)
	}
	if len(st.Events) != 3 || st.Events[0].Phase != PhaseEnqueued || st.Events[2].Phase != PhaseCommitted {
		t.Fatalf("capture missing lifecycle events: %+v", st.Events)
	}
}

func TestTailSamplerWarmupGate(t *testing.T) {
	s := NewTailSampler(NewTracer([]tx.NodeID{0}, 64))
	// Even a huge latency is not captured before warmup completes.
	feedFast(s, tailWarmup/2, 1000, 1)
	var comps [NumComponents]int64
	comps[CompTotal] = 1 << 30
	s.Observe(0, 7, comps)
	if got := s.Captured(); got != 0 {
		t.Fatalf("captured %d before warmup, want 0", got)
	}
}

func TestTailSamplerEvictsOldestFirst(t *testing.T) {
	tr := NewTracer([]tx.NodeID{0}, 64)
	s := NewTailSampler(tr)
	feedFast(s, 2*tailWarmup, 1000, 1)

	// Overflow the retention ring: 1.5x tailKeep outliers. Interleave 199
	// typical commits per outlier so outliers stay under 0.5% of the
	// population and the p99 threshold never chases into their bucket.
	n := tailKeep + tailKeep/2
	for i := 0; i < n; i++ {
		var comps [NumComponents]int64
		comps[CompStorage] = 1 << 19
		comps[CompTotal] = 1 << 20
		s.Observe(0, tx.TxnID(100000+i), comps)
		feedFast(s, 199, 1000, uint64(1000000+i*200))
	}
	if got := s.Captured(); got < int64(tailKeep) {
		t.Fatalf("captured %d, want >= %d", got, tailKeep)
	}
	slow := s.Slow()
	if len(slow) != tailKeep {
		t.Fatalf("retained %d, want exactly %d", len(slow), tailKeep)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Txn <= slow[i-1].Txn {
			t.Fatalf("retained captures not oldest-first: %d then %d", slow[i-1].Txn, slow[i].Txn)
		}
	}
}

func TestTailSamplerNilSafe(t *testing.T) {
	var s *TailSampler
	s.Observe(0, 1, [NumComponents]int64{CompTotal: 100})
	if s.Captured() != 0 || s.ThresholdNs() != 0 || s.Slow() != nil {
		t.Fatal("nil sampler not inert")
	}
}
