// Package clock abstracts time so that the engine, metrics windows, and
// workload pacing can run against either the wall clock (benchmarks,
// examples) or a manually advanced clock (deterministic unit tests).
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time source the rest of the system depends on.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Manual is a Clock that only moves when Advance is called. Sleep blocks
// until the clock has been advanced past the deadline, which lets tests
// drive time-dependent code deterministically from a single goroutine.
type Manual struct {
	mu   sync.Mutex
	cond *sync.Cond
	now  time.Time
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	m := &Manual{now: start}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock. It returns once Advance has moved the clock at
// least d past the time Sleep was called. Sleep(0) and negative durations
// return immediately.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	deadline := m.now.Add(d)
	for m.now.Before(deadline) {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// Advance moves the clock forward by d and wakes all sleepers.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.cond.Broadcast()
	m.mu.Unlock()
}
