package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := Real{}
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Error("Real clock did not advance across Sleep")
	}
}

func TestManualNow(t *testing.T) {
	start := time.Unix(100, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Errorf("Now = %v, want %v", m.Now(), start)
	}
	m.Advance(5 * time.Second)
	if want := start.Add(5 * time.Second); !m.Now().Equal(want) {
		t.Errorf("Now after Advance = %v, want %v", m.Now(), want)
	}
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Sleep(10 * time.Second)
		close(done)
	}()
	// Not enough progress: sleeper must still block. (The sleeper may not
	// have called Sleep yet, in which case its deadline is even later.)
	m.Advance(5 * time.Second)
	select {
	case <-done:
		t.Fatal("Sleep returned before clock reached deadline")
	case <-time.After(10 * time.Millisecond):
	}
	// Advance far past any possible deadline (at most 5s start + 10s).
	m.Advance(30 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after clock passed deadline")
	}
	wg.Wait()
}

func TestManualSleepZeroReturnsImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	doneZero := make(chan struct{})
	go func() {
		m.Sleep(0)
		m.Sleep(-time.Second)
		close(doneZero)
	}()
	select {
	case <-doneZero:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestManualMultipleSleepers(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Sleep(time.Duration(i+1) * time.Second)
		}(i)
	}
	// Give sleepers a moment to park, then release them all.
	time.Sleep(10 * time.Millisecond)
	m.Advance(time.Duration(n+1) * time.Second)
	doneAll := make(chan struct{})
	go func() { wg.Wait(); close(doneAll) }()
	select {
	case <-doneAll:
	case <-time.After(time.Second):
		t.Fatal("not all sleepers woke after Advance")
	}
}
