package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"hermes/internal/leaktest"
)

// echoServer accepts connections and echoes bytes until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		<-done
	}
}

func roundTrip(t *testing.T, conn net.Conn, msg string) error {
	t.Helper()
	if _, err := conn.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		t.Fatalf("echo mismatch: got %q want %q", buf, msg)
	}
	return nil
}

func TestPlaneProxiesBytes(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p := NewPlane(&Schedule{Name: "plain", Seed: 1})
	defer p.Close()
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	// Route is idempotent per link.
	again, err := p.Route(0, 1, addr)
	if err != nil || again != proxied {
		t.Fatalf("re-Route: got %q,%v want %q", again, err, proxied)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn, "hello through the fault plane"); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if len(st.Links) != 1 || st.Links[0].Conns != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Links[0].BytesForward == 0 || st.Links[0].BytesReverse == 0 {
		t.Fatalf("byte counters not moving: %+v", st.Links[0])
	}
}

func TestPlaneAddsLatency(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	const oneWay = 30 * time.Millisecond
	p := NewPlane(&Schedule{
		Name:  "latency",
		Seed:  2,
		Rules: []LinkRule{{From: 0, To: 1, Forward: Shape{Latency: oneWay}, Reverse: Shape{Latency: oneWay}}},
	})
	defer p.Close()
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if err := roundTrip(t, conn, "ping"); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 2*oneWay {
		t.Fatalf("round trip %v did not pay 2x one-way latency %v", rtt, oneWay)
	}
}

func TestPlanePartitionAndHeal(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p := NewPlane(&Schedule{Name: "partition", Seed: 3})
	defer p.Close()
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn, "before"); err != nil {
		t.Fatal(err)
	}

	const hold = 300 * time.Millisecond
	p.PartitionBetween([]int{0}, []int{1}, hold)

	// The established connection was reset at partition onset.
	if err := roundTrip(t, conn, "during"); err == nil {
		t.Fatal("round trip succeeded across a partition")
	}
	// New dials during the partition get reset immediately.
	c2, err := net.Dial("tcp", proxied)
	if err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		one := make([]byte, 1)
		if _, rerr := c2.Read(one); rerr == nil {
			t.Fatal("read succeeded on a partitioned link")
		}
		c2.Close()
	}
	st := p.Stats()
	if st.TotalResets() == 0 {
		t.Fatalf("partition onset did not count a reset: %+v", st)
	}

	// Heal: wait out the hold, then the link must pass bytes again.
	time.Sleep(hold + 50*time.Millisecond)
	healed, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer healed.Close()
	if err := roundTrip(t, healed, "after heal"); err != nil {
		t.Fatalf("link did not heal: %v", err)
	}
	if p.Stats().TotalPartitionDrops() == 0 {
		t.Fatalf("no partition drops counted: %+v", p.Stats())
	}
}

func TestPlaneMidStreamReset(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p := NewPlane(&Schedule{Name: "reset", Seed: 4})
	defer p.Close()
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn, "alive"); err != nil {
		t.Fatal(err)
	}
	p.ResetLink(0, 1)
	// The RST may take a beat to surface; keep poking until the
	// connection reports dead.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if err := roundTrip(t, conn, "poke"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived an injected reset")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := p.Stats().TotalResets(); got == 0 {
		t.Fatalf("reset not counted: %+v", p.Stats())
	}
	// The link itself is still routable.
	c2, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := roundTrip(t, c2, "reborn"); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneStallHalfOpen(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p := NewPlane(&Schedule{Name: "stall", Seed: 5})
	defer p.Close()
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn, "pre"); err != nil {
		t.Fatal(err)
	}
	const hold = 250 * time.Millisecond
	p.StallLink(0, 1, hold)
	start := time.Now()
	// The connection stays up — no error — but the echo can't come back
	// until the stall horizon passes.
	if err := roundTrip(t, conn, "stalled"); err != nil {
		t.Fatalf("stall should delay, not kill: %v", err)
	}
	if waited := time.Since(start); waited < hold-20*time.Millisecond {
		t.Fatalf("echo returned after %v, inside the %v stall", waited, hold)
	}
}

func TestPlaneJitterSeeded(t *testing.T) {
	// Two planes with the same seed must draw the same jitter sequence for
	// the same link; a different seed must diverge.
	draw := func(seed int64) []time.Duration {
		p := NewPlane(&Schedule{Seed: seed})
		defer p.Close()
		if _, err := p.Route(1, 2, "127.0.0.1:1"); err != nil {
			t.Fatal(err)
		}
		l := p.link(1, 2)
		var ds []time.Duration
		for i := 0; i < 16; i++ {
			ds = append(ds, l.jitter(time.Millisecond))
		}
		return ds
	}
	a, b, c := draw(42), draw(42), draw(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestPlaneEventTimeline(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p := NewPlane(&Schedule{
		Name: "timeline",
		Seed: 6,
		Events: []Event{
			{At: 50 * time.Millisecond, Reset: &Reset{From: 0, To: 1}},
		},
	})
	defer p.Close()
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn, "pre-event"); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Start() // idempotent
	deadline := time.Now().Add(3 * time.Second)
	for p.Stats().TotalResets() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timeline event never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPlaneAliasRouting(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	// Link 2 -> -64 (leader id) aliased onto 2 -> 0: partitioning {0} from
	// {2} must cut it.
	p := NewPlane(&Schedule{
		Name:  "alias",
		Seed:  7,
		Alias: map[int]int{-64: 0},
	})
	defer p.Close()
	proxied, err := p.Route(2, -64, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn, "to leader"); err != nil {
		t.Fatal(err)
	}
	p.PartitionBetween([]int{0, 1}, []int{2}, 200*time.Millisecond)
	if err := roundTrip(t, conn, "cut"); err == nil {
		t.Fatal("aliased leader link survived the partition")
	}
}

func TestPlaneBandwidthCap(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	// 64 KiB at 256 KiB/s must take ~250ms to arrive.
	p := NewPlane(&Schedule{
		Name:  "throttle",
		Seed:  8,
		Rules: []LinkRule{{From: 0, To: 1, Forward: Shape{BytesPerSec: 256 << 10}}},
	})
	defer p.Close()
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := bytes.Repeat([]byte("x"), 64<<10)
	start := time.Now()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 150*time.Millisecond {
		t.Fatalf("64KiB crossed a 256KiB/s link in %v — throttle not applied", took)
	}
}

func TestWANProfileRules(t *testing.T) {
	rules := WANProfile([][]int{{0, 1}, {2}}, 5*time.Millisecond, 40*time.Millisecond, time.Millisecond)
	// 3 workers -> 6 directed links.
	if len(rules) != 6 {
		t.Fatalf("got %d rules, want 6", len(rules))
	}
	lat := func(from, to int) time.Duration {
		for _, r := range rules {
			if r.From == from && r.To == to {
				return r.Forward.Latency
			}
		}
		t.Fatalf("no rule %d->%d", from, to)
		return 0
	}
	if lat(0, 1) != 5*time.Millisecond {
		t.Fatalf("intra-region latency %v, want 5ms", lat(0, 1))
	}
	if lat(0, 2) != 40*time.Millisecond || lat(2, 1) != 40*time.Millisecond {
		t.Fatalf("cross-region latency %v/%v, want 40ms", lat(0, 2), lat(2, 1))
	}
}

func TestPlaneCloseWhileTrafficFlows(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p := NewPlane(&Schedule{
		Name:  "close-under-load",
		Seed:  9,
		Rules: []LinkRule{{From: 0, To: 1, Forward: Shape{Latency: 20 * time.Millisecond}}},
	})
	proxied, err := p.Route(0, 1, addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Queue bytes that are still in flight (inside the latency window)
	// when Close runs — pumps must not leak or deadlock.
	conn.Write(bytes.Repeat([]byte("y"), 16<<10))
	p.Close()
	p.Close() // idempotent
	if _, err := p.Route(0, 1, addr); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Route after Close: err=%v, want closed error", err)
	}
}

func TestScheduleString(t *testing.T) {
	s := &Schedule{Name: "wan", Seed: 11, Rules: make([]LinkRule, 2), Events: make([]Event, 3)}
	got := s.String()
	for _, want := range []string{"wan", "seed=11", "2 rules", "3 events"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q missing %q", got, want)
		}
	}
}

func TestRouteBadUpstreamResetsDialer(t *testing.T) {
	defer leaktest.Check(t)()
	p := NewPlane(&Schedule{Name: "bad-upstream", Seed: 12})
	defer p.Close()
	// Upstream nobody listens on: proxy accepts then resets.
	proxied, err := p.Route(0, 1, "127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", proxied)
	if err != nil {
		return // immediate refusal is also acceptable
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil || errors.Is(err, io.EOF) && false {
		t.Fatal("read succeeded through a dead upstream")
	}
}
