// Package netchaos is the real-network counterpart of internal/chaos: a
// layer of per-link TCP proxies the cluster orchestrator places between
// hermesd processes to subject their *actual sockets* to the conditions a
// production deployment sees. Each directed process pair (from -> to) gets
// its own proxy listener; the orchestrator hands process `from` the proxy
// address instead of `to`'s real one, so every byte of data-plane traffic
// crosses the fault plane while the control plane stays direct.
//
// Faults come in two kinds. *Shaping rules* apply continuously to a link:
// added one-way latency, seeded jitter, and a bandwidth cap — composable
// into asymmetric WAN profiles (two "regions" with fast intra-region and
// slow cross-region links, see WANProfile). *Events* fire once at an offset
// from Start: full bidirectional partitions with a timed heal, mid-stream
// connection resets (RST, not FIN), and half-open stalls where the link
// stays connected but stops moving bytes. Jitter draws come from a per-link
// PRNG seeded from (Schedule.Seed, from, to), so a logged seed reproduces
// the same draw sequence per link; event times are wall-clock offsets and
// therefore only as deterministic as the scheduler — the engine's whole
// claim is that this must not matter, and the digest-vs-twin gate is what
// checks it.
//
// The package deliberately knows nothing about the transport riding it: it
// proxies opaque byte streams, which is exactly what makes the injected
// resets and stalls honest (the handshake, gob framing, and reliable layer
// above all see real kernel-level failures, not simulated ones).
package netchaos

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Shape is the steady-state conditioning of one direction of a link.
type Shape struct {
	// Latency is added one-way delay per chunk.
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) drawn from the
	// link's seeded PRNG.
	Jitter time.Duration
	// BytesPerSec caps throughput (0 = unlimited): a chunk of n bytes
	// occupies the link for n/BytesPerSec before its latency even starts,
	// exactly like a serialization delay on a narrow pipe.
	BytesPerSec int64
}

func (s Shape) zero() bool {
	return s.Latency == 0 && s.Jitter == 0 && s.BytesPerSec == 0
}

// LinkRule shapes one directed link. Forward conditions bytes flowing
// from -> to (the dialer's requests), Reverse the returning bytes on the
// same connections. Rules are matched first-wins after alias resolution.
type LinkRule struct {
	From, To int
	Forward  Shape
	Reverse  Shape
}

// Partition cuts every link whose (aliased) endpoints fall on opposite
// sides of the A/B split, in both directions, for the given duration. New
// connections are accepted and immediately reset (the dialer sees a
// connect-then-RST, like a host dropping off the network behind a live
// switch); existing connections are reset at partition onset.
type Partition struct {
	A, B []int
	For  time.Duration
}

// Reset kills every live connection on the directed link (from -> to) with
// an RST — SO_LINGER zero, so the peer sees ECONNRESET mid-stream, not a
// clean FIN.
type Reset struct {
	From, To int
}

// Stall half-opens the directed link: connections stay established but the
// proxy stops forwarding bytes for the duration. The sender's kernel
// buffers absorb what they can; a transport with a write deadline turns
// the stall into a bounded error, one without hangs — which is the point.
type Stall struct {
	From, To int
	For      time.Duration
}

// Event is one timed fault, fired At after Start. Exactly one of the
// pointers is set.
type Event struct {
	At        time.Duration
	Partition *Partition
	Reset     *Reset
	Stall     *Stall
}

// Schedule is a seeded description of everything the fault plane will do.
type Schedule struct {
	// Name labels the schedule in reports and failure messages.
	Name string
	// Seed feeds every per-link jitter PRNG.
	Seed int64
	// Rules shape links continuously (first match wins).
	Rules []LinkRule
	// Events are timed one-shot faults relative to Start.
	Events []Event
	// Alias maps a routing target onto another id before rule and
	// partition matching. The harness aliases the sequencer-leader
	// transport id onto worker 0 (its co-host), so WAN rules and
	// partitions written in terms of workers automatically cover the
	// leader links of the process that hosts it.
	Alias map[int]int
}

// String summarizes the schedule for failure reports.
func (s *Schedule) String() string {
	return fmt.Sprintf("%s(seed=%d, %d rules, %d events)", s.Name, s.Seed, len(s.Rules), len(s.Events))
}

// WANProfile builds the rule set for an asymmetric wide-area topology:
// regions lists worker ids per region; links inside a region get intra
// latency, links crossing regions get cross latency, both with the given
// jitter. The canonical geo-distributed profile from ROADMAP — e.g. two
// regions at 40ms cross / 5ms intra — is
// WANProfile([][]int{{0,1},{2}}, 5*time.Millisecond, 40*time.Millisecond, time.Millisecond).
func WANProfile(regions [][]int, intra, cross, jitter time.Duration) []LinkRule {
	regionOf := map[int]int{}
	var all []int
	for r, members := range regions {
		for _, id := range members {
			regionOf[id] = r
			all = append(all, id)
		}
	}
	var rules []LinkRule
	for _, a := range all {
		for _, b := range all {
			if a == b {
				continue
			}
			lat := intra
			if regionOf[a] != regionOf[b] {
				lat = cross
			}
			sh := Shape{Latency: lat, Jitter: jitter}
			rules = append(rules, LinkRule{From: a, To: b, Forward: sh, Reverse: sh})
		}
	}
	return rules
}

// LinkStats is one link's cumulative fault accounting.
type LinkStats struct {
	From, To       int
	Conns          int64 // connections accepted and proxied
	Resets         int64 // live connections killed with RST
	PartitionDrops int64 // dials rejected while partitioned
	BytesForward   int64
	BytesReverse   int64
}

// PlaneStats aggregates every link.
type PlaneStats struct {
	Links []LinkStats
}

// TotalResets sums injected resets (partition onsets included).
func (ps PlaneStats) TotalResets() int64 {
	var n int64
	for _, l := range ps.Links {
		n += l.Resets
	}
	return n
}

// TotalPartitionDrops sums dials rejected while a partition held.
func (ps PlaneStats) TotalPartitionDrops() int64 {
	var n int64
	for _, l := range ps.Links {
		n += l.PartitionDrops
	}
	return n
}

// linkID identifies one directed proxied link.
type linkID struct{ from, to int }

// Plane owns every per-link proxy of one cluster.
type Plane struct {
	sched *Schedule

	mu      sync.Mutex
	links   map[linkID]*link
	started bool
	closed  bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewPlane builds an idle fault plane for the schedule. Route the links,
// boot the processes, then Start to arm the event timeline.
func NewPlane(sched *Schedule) *Plane {
	if sched == nil {
		sched = &Schedule{}
	}
	return &Plane{
		sched: sched,
		links: make(map[linkID]*link),
		quit:  make(chan struct{}),
	}
}

// resolve applies the schedule's alias map for rule/partition matching.
func (p *Plane) resolve(id int) int {
	if a, ok := p.sched.Alias[id]; ok {
		return a
	}
	return id
}

// shapesFor finds the first matching rule for the (aliased) link.
func (p *Plane) shapesFor(from, to int) (fwd, rev Shape) {
	rf, rt := p.resolve(from), p.resolve(to)
	for _, r := range p.sched.Rules {
		if r.From == rf && r.To == rt {
			return r.Forward, r.Reverse
		}
	}
	return Shape{}, Shape{}
}

// Route creates (or returns) the proxy for the directed link from -> to,
// fronting upstream, and returns the address the `from` process should dial
// instead of upstream.
func (p *Plane) Route(from, to int, upstream string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return "", fmt.Errorf("netchaos: plane is closed")
	}
	id := linkID{from, to}
	if l, ok := p.links[id]; ok {
		return l.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("netchaos: link %d->%d: %w", from, to, err)
	}
	fwd, rev := p.shapesFor(from, to)
	l := &link{
		p:        p,
		id:       id,
		ln:       ln,
		upstream: upstream,
		fwd:      fwd,
		rev:      rev,
		rng:      rand.New(rand.NewSource(p.sched.Seed ^ int64(from)<<20 ^ int64(to))),
		conns:    make(map[*connPair]struct{}),
	}
	p.links[id] = l
	p.wg.Add(1)
	go l.acceptLoop()
	return ln.Addr().String(), nil
}

// Start arms the event timeline: event offsets are measured from this call,
// so the orchestrator starts the schedule when the workload starts, not
// when the cluster boots. Idempotent.
func (p *Plane) Start() {
	p.mu.Lock()
	if p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.started = true
	events := append([]Event(nil), p.sched.Events...)
	p.mu.Unlock()
	if len(events) == 0 {
		return
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		start := time.Now()
		for _, ev := range events {
			wait := ev.At - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-p.quit:
					return
				}
			}
			p.apply(ev)
		}
	}()
}

func (p *Plane) apply(ev Event) {
	switch {
	case ev.Partition != nil:
		p.PartitionBetween(ev.Partition.A, ev.Partition.B, ev.Partition.For)
	case ev.Reset != nil:
		p.ResetLink(ev.Reset.From, ev.Reset.To)
	case ev.Stall != nil:
		p.StallLink(ev.Stall.From, ev.Stall.To, ev.Stall.For)
	}
}

// PartitionBetween cuts every link crossing the A/B split (after alias
// resolution), both directions, healing after d.
func (p *Plane) PartitionBetween(a, b []int, d time.Duration) {
	inA, inB := map[int]bool{}, map[int]bool{}
	for _, id := range a {
		inA[id] = true
	}
	for _, id := range b {
		inB[id] = true
	}
	until := time.Now().Add(d)
	p.mu.Lock()
	var cut []*link
	for id, l := range p.links {
		f, t := p.resolve(id.from), p.resolve(id.to)
		if (inA[f] && inB[t]) || (inB[f] && inA[t]) {
			cut = append(cut, l)
		}
	}
	p.mu.Unlock()
	for _, l := range cut {
		l.partition(until)
	}
}

// ResetLink RST-kills every live connection on the directed link.
func (p *Plane) ResetLink(from, to int) {
	if l := p.link(from, to); l != nil {
		l.reset()
	}
}

// StallLink half-opens the directed link for d: established connections
// stay up but no bytes move until the stall passes.
func (p *Plane) StallLink(from, to int, d time.Duration) {
	if l := p.link(from, to); l != nil {
		l.stall(time.Now().Add(d))
	}
}

func (p *Plane) link(from, to int) *link {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.links[linkID{from, to}]
}

// Stats snapshots every link's counters, ordered by (from, to).
func (p *Plane) Stats() PlaneStats {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	sort.Slice(links, func(i, j int) bool {
		if links[i].id.from != links[j].id.from {
			return links[i].id.from < links[j].id.from
		}
		return links[i].id.to < links[j].id.to
	})
	var ps PlaneStats
	for _, l := range links {
		ps.Links = append(ps.Links, LinkStats{
			From:           l.id.from,
			To:             l.id.to,
			Conns:          l.conns64.Load(),
			Resets:         l.resets.Load(),
			PartitionDrops: l.partDrops.Load(),
			BytesForward:   l.bytesFwd.Load(),
			BytesReverse:   l.bytesRev.Load(),
		})
	}
	return ps
}

// Close tears the plane down: listeners closed, live connections reset,
// every pump and the timeline joined. Idempotent.
func (p *Plane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	links := make([]*link, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	close(p.quit)
	for _, l := range links {
		l.ln.Close()
		l.killAll(false)
	}
	p.wg.Wait()
}

// link is one directed proxy: a listener, the shaping config, and the live
// connection pairs.
type link struct {
	p        *Plane
	id       linkID
	ln       net.Listener
	upstream string
	fwd, rev Shape

	rngMu sync.Mutex
	rng   *rand.Rand

	mu        sync.Mutex
	conns     map[*connPair]struct{}
	partUntil time.Time
	stallTill time.Time

	conns64   atomic.Int64
	resets    atomic.Int64
	partDrops atomic.Int64
	bytesFwd  atomic.Int64
	bytesRev  atomic.Int64
}

// connPair is one proxied connection: the accepted client half and the
// upstream half.
type connPair struct {
	cli, up net.Conn
}

func (l *link) jitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	l.rngMu.Lock()
	d := time.Duration(l.rng.Int63n(int64(j)))
	l.rngMu.Unlock()
	return d
}

func (l *link) partitioned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Now().Before(l.partUntil)
}

// stalledUntil returns the current stall horizon (zero when flowing).
func (l *link) stalledUntil() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	if time.Now().Before(l.stallTill) {
		return l.stallTill
	}
	return time.Time{}
}

func (l *link) partition(until time.Time) {
	l.mu.Lock()
	l.partUntil = until
	l.mu.Unlock()
	// A real partition severs established flows too; RST mirrors what the
	// peer's kernel reports once its retransmissions give up.
	l.killAll(true)
}

func (l *link) reset() {
	l.killAll(true)
}

func (l *link) stall(until time.Time) {
	l.mu.Lock()
	l.stallTill = until
	l.mu.Unlock()
}

// killAll resets every live pair; counted when it is an injected fault.
func (l *link) killAll(count bool) {
	l.mu.Lock()
	pairs := make([]*connPair, 0, len(l.conns))
	for cp := range l.conns {
		pairs = append(pairs, cp)
	}
	l.mu.Unlock()
	for _, cp := range pairs {
		if count {
			l.resets.Add(1)
		}
		rstClose(cp.cli)
		rstClose(cp.up)
	}
}

// rstClose closes c with linger 0 so the peer sees ECONNRESET, not EOF.
func rstClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (l *link) acceptLoop() {
	defer l.p.wg.Done()
	for {
		cli, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if l.partitioned() {
			l.partDrops.Add(1)
			rstClose(cli)
			continue
		}
		up, err := net.DialTimeout("tcp", l.upstream, 3*time.Second)
		if err != nil {
			rstClose(cli)
			continue
		}
		cp := &connPair{cli: cli, up: up}
		l.mu.Lock()
		l.conns[cp] = struct{}{}
		l.mu.Unlock()
		l.conns64.Add(1)
		l.p.wg.Add(2)
		go l.pump(cp, cli, up, l.fwd, &l.bytesFwd)
		go l.pump(cp, up, cli, l.rev, &l.bytesRev)
	}
}

// chunk is one shaped unit of proxied bytes with its delivery time.
type chunk struct {
	data []byte
	due  time.Time
}

// pump forwards src -> dst under the link's shaping: a reader stamps each
// chunk with its due time (serialization delay from the bandwidth cap,
// then latency + seeded jitter) and a writer releases chunks when due —
// pipelined, so added latency delays bytes without capping throughput,
// exactly like netem's delay queue. The writer also honors stalls.
func (l *link) pump(cp *connPair, src, dst net.Conn, sh Shape, bytes *atomic.Int64) {
	defer l.p.wg.Done()
	ch := make(chan chunk, 64)
	done := make(chan struct{})
	// Writer half.
	go func() {
		defer close(done)
		for c := range ch {
			if !l.waitUntil(c.due) {
				continue // plane closing; drain the channel
			}
			if _, err := dst.Write(c.data); err != nil {
				// Keep draining so the reader never blocks on a dead writer.
				continue
			}
			bytes.Add(int64(len(c.data)))
		}
		// EOF from src with the pair still healthy: half-close downstream
		// so graceful shutdowns propagate.
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	buf := make([]byte, 32<<10)
	var nextFree time.Time
	for {
		n, err := src.Read(buf)
		if n > 0 {
			now := time.Now()
			due := now
			if sh.BytesPerSec > 0 {
				if nextFree.Before(now) {
					nextFree = now
				}
				nextFree = nextFree.Add(time.Duration(float64(n) / float64(sh.BytesPerSec) * float64(time.Second)))
				due = nextFree
			}
			due = due.Add(sh.Latency + l.jitter(sh.Jitter))
			select {
			case ch <- chunk{data: append([]byte(nil), buf[:n]...), due: due}:
			case <-l.p.quit:
				err = net.ErrClosed
			}
		}
		if err != nil {
			break
		}
	}
	close(ch)
	<-done
	// Reader side saw EOF or error: tear the pair down so the opposite
	// pump unblocks too, and forget it.
	cp.cli.Close()
	cp.up.Close()
	l.mu.Lock()
	delete(l.conns, cp)
	l.mu.Unlock()
}

// waitUntil sleeps until t (also re-checking the link's stall horizon,
// which may extend while waiting), reporting false if the plane closed.
func (l *link) waitUntil(t time.Time) bool {
	for {
		if st := l.stalledUntil(); st.After(t) {
			t = st
		}
		wait := time.Until(t)
		if wait <= 0 {
			return true
		}
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond // re-check stall extensions
		}
		select {
		case <-time.After(wait):
		case <-l.p.quit:
			return false
		}
	}
}
