// Package core implements the paper's primary contribution: the prescient
// transaction routing algorithm (§3.2, Algorithm 1). Looking at a whole
// totally ordered batch of future transactions at once, it jointly
// optimizes three concerns that previous systems handled separately:
//
//  1. distributed-transaction cost — transactions are reordered and routed
//     greedily to minimize remote reads against the *evolving* placement
//     (P₀ … P_b), so a record migrated by one transaction is reused by the
//     transactions that follow it (avoiding the ping-pong of Fig. 3);
//  2. load balance — step 3 reroutes transactions off overloaded nodes,
//     backward through the reordered batch, accepting a move only if it
//     adds at most δ remote edges, relaxing δ until the per-node load
//     bound θ = ⌈b/n·(1+α)⌉ holds;
//  3. data (re-)partitioning and live migration — written records migrate
//     to the master on the fly with the transaction itself (data fusion),
//     and the resulting fine-grained placement is tracked in the bounded,
//     deterministically evicted fusion table shared (by replication) with
//     every scheduler.
//
// Everything here is a pure function of the input batch stream, so every
// node's replica computes the identical plan with zero coordination.
//
// The implementation is built for the §3.2.4 envelope (routing a whole
// batch must cost a few milliseconds, ~4% of transaction latency):
// step 1 runs on a lazy-invalidation heap fed by an inverted access-set
// index instead of rescanning all pending candidates per pick, step 3
// evaluates δ-moves against a precomputed future-readers index instead of
// rescanning every later transaction, and all per-batch working state
// lives in scratch buffers reused across batches. The reference
// implementation these structures must stay byte-identical to is kept in
// reference_test.go and enforced by a differential property test; see
// docs/PERF.md for the complexity accounting.
package core

import (
	"math"

	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// Config tunes the prescient router.
type Config struct {
	// Alpha is the load-imbalance tolerance in θ = ⌈b/n·(1+α)⌉ (§3.2.1).
	Alpha float64
	// FusionCapacity bounds the fusion table (entries); ≤ 0 = unbounded.
	// The paper expresses this as a fraction of the database (§4.1, §5.4).
	FusionCapacity int
	// FusionPolicy selects the deterministic replacement strategy.
	FusionPolicy fusion.Policy
}

// DefaultConfig returns the settings used by the paper's main experiments:
// α = 0 (strict balance) and an LRU-limited fusion table.
func DefaultConfig(fusionCapacity int) Config {
	return Config{Alpha: 0, FusionCapacity: fusionCapacity, FusionPolicy: fusion.LRU}
}

// Prescient is the Hermes routing policy. It implements router.Policy.
//
// A Prescient owns per-batch scratch buffers that RouteUser reuses across
// calls, so a Prescient is NOT safe for concurrent RouteUser invocations.
// The engine satisfies this by construction: each node's scheduler
// goroutine is the sole caller of its policy replica.
type Prescient struct {
	pl  *router.Placement
	cfg Config
	sc  scratch
}

// New returns a prescient router over base with the given active nodes.
func New(base partition.Partitioner, active []tx.NodeID, cfg Config) *Prescient {
	return &Prescient{
		pl:  router.NewPlacement(base, active, fusion.New(cfg.FusionCapacity, cfg.FusionPolicy)),
		cfg: cfg,
	}
}

// Name implements router.Policy.
func (p *Prescient) Name() string { return "hermes" }

// Placement implements router.Policy.
func (p *Prescient) Placement() *Placement { return p.pl }

// Placement is re-exported so callers needn't import router for the type.
type Placement = router.Placement

// keyPos is one entry of an inverted key index: a key paired with either
// the original batch index of a transaction accessing it (step 1) or the
// B′ position of a transaction reading it (step 3).
type keyPos struct {
	key tx.Key
	pos int32
}

// candidate caches a pending transaction's current best (score, node)
// during step 1.
type candidate struct {
	s    score
	node int
}

// scratch is the per-batch working state of Algorithm 1, owned by a
// Prescient and reused across batches so the hot path stays
// allocation-free at steady state. Nothing in here escapes into the
// returned routes (route output is carved from a fresh per-batch arena).
type scratch struct {
	// batch-wide
	nodeIdx map[tx.NodeID]int // node id -> index in active
	overlay map[tx.Key]tx.NodeID
	loads   []int
	order   []*tx.Request
	masters []tx.NodeID
	// step 1
	access  []keyPos // inverted index: (key, original index), sorted
	cands   []candidate
	taken   []bool
	heap    []heapEnt
	dirty   []int32 // candidates invalidated by the current pick
	dirtyIn []bool  // dedup for dirty
	sortTmp []keyPos // radix-sort scatter buffer
	// step 3
	future    []keyPos // future-readers index: (key, B′ position), sorted
	ownCount  []int    // per-node owned read-not-written keys
	cntMaster []int    // per-node later readers of the write-set
	edges     []int    // per-node remote edges, filled by remoteEdgesAll
	// bestRouteFor
	readCounts  []int
	writeCounts []int
	// commitRoute
	evicted []fusion.Entry
}

// heapEnt is one lazy-invalidation heap entry of step 1. Stale entries
// (the candidate was re-scored after this entry was pushed) are detected
// on pop by comparing against cands[s.pos] and discarded.
type heapEnt struct {
	s    score
	node int32
}

// RouteUser implements router.Policy: Algorithm 1 followed by the final
// placement replay that commits the batch's effects to the fusion table.
// Not safe for concurrent calls on one Prescient (see the type comment).
func (p *Prescient) RouteUser(txns []*tx.Request) []*router.Route {
	active := p.pl.Active()
	n := len(active)
	b := len(txns)
	if n == 0 || b == 0 {
		return nil
	}

	p.beginBatch(active, b)

	// ---- Step 1 (lines 4-9): greedy reorder + route minimizing remote
	// reads against the evolving placement. The overlay holds the
	// in-flight write-set migrations (P_i) without touching the real
	// fusion table yet.
	p.planGreedy(txns, active)

	// ---- Step 2 (lines 11-12) + Step 3 (lines 14-30).
	theta := int(math.Ceil(float64(b) / float64(n) * (1 + p.cfg.Alpha)))
	p.rebalance(p.sc.order, p.sc.masters, active, theta)

	// ---- Final replay: commit the routed schedule to the real placement
	// (fusion table), producing per-transaction owner maps, data-fusion
	// migrations, and eviction write-backs at each position in B′.
	ar := newRouteArena(p.sc.order)
	for i, r := range p.sc.order {
		p.commitRoute(r, p.sc.masters[i], ar)
	}
	// Drop the request pointers so scratch does not pin the previous
	// batch's transactions until the next call.
	routes := ar.ptrs
	for i := range p.sc.order {
		p.sc.order[i] = nil
	}
	return routes
}

// beginBatch resets the scratch buffers for a batch of b transactions
// over active.
func (p *Prescient) beginBatch(active []tx.NodeID, b int) {
	sc := &p.sc
	n := len(active)
	if sc.nodeIdx == nil {
		sc.nodeIdx = make(map[tx.NodeID]int, n)
	} else {
		clear(sc.nodeIdx)
	}
	for i, a := range active {
		sc.nodeIdx[a] = i
	}
	if sc.overlay == nil {
		sc.overlay = make(map[tx.Key]tx.NodeID)
	} else {
		clear(sc.overlay)
	}
	sc.loads = resetInts(sc.loads, n)
	sc.readCounts = resetInts(sc.readCounts, n)
	sc.writeCounts = resetInts(sc.writeCounts, n)
	sc.ownCount = resetInts(sc.ownCount, n)
	sc.cntMaster = resetInts(sc.cntMaster, n)
	sc.edges = resetInts(sc.edges, n)
	sc.order = sc.order[:0]
	sc.masters = sc.masters[:0]
	sc.access = sc.access[:0]
	sc.future = sc.future[:0]
	sc.heap = sc.heap[:0]
	sc.dirty = sc.dirty[:0]
	if cap(sc.cands) < b {
		sc.cands = make([]candidate, b)
		sc.taken = make([]bool, b)
		sc.dirtyIn = make([]bool, b)
	} else {
		sc.cands = sc.cands[:b]
		sc.taken = sc.taken[:b]
		sc.dirtyIn = sc.dirtyIn[:b]
		for i := 0; i < b; i++ {
			sc.taken[i] = false
			sc.dirtyIn[i] = false
		}
	}
}

// resetInts returns a zeroed int slice of length n reusing buf's storage.
func resetInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// planGreedy runs step 1 of Algorithm 1 (greedy reorder + route), filling
// sc.order, sc.masters, sc.loads, and sc.overlay.
//
// Candidate selection runs on a lazy-invalidation min-heap over the score
// total order: a pick pops the heap instead of rescanning all pending
// candidates (the reference implementation's O(b) inner loop). A selected
// transaction's write-set invalidates — through the inverted access-set
// index — exactly the candidates whose remote-read count can change;
// those are re-scored eagerly against the post-pick overlay and re-pushed,
// leaving their stale heap entries to be discarded on pop. Scores carry
// the original batch position as the final tie-break, so the total order
// is strict and the heap pops the same unique minimum the reference scan
// finds.
func (p *Prescient) planGreedy(txns []*tx.Request, active []tx.NodeID) {
	sc := &p.sc
	b := len(txns)

	// Inverted index over declared access sets. Keys in both sets appear
	// twice; invalidation dedups through dirtyIn.
	for i, r := range txns {
		for _, k := range r.ReadSet() {
			sc.access = append(sc.access, keyPos{key: k, pos: int32(i)})
		}
		for _, k := range r.WriteSet() {
			sc.access = append(sc.access, keyPos{key: k, pos: int32(i)})
		}
	}
	sc.sortKeyPos(sc.access)

	for i, r := range txns {
		s, x := p.bestRouteFor(r, active)
		s.pos = i
		sc.cands[i] = candidate{s: s, node: x}
		p.heapPush(heapEnt{s: s, node: int32(x)})
	}

	for picked := 0; picked < b; picked++ {
		var best int
		for {
			ent := p.heapPop()
			i := ent.s.pos
			if sc.taken[i] || sc.cands[i].s != ent.s || sc.cands[i].node != int(ent.node) {
				continue // stale entry superseded by a re-score
			}
			best = i
			break
		}
		r := txns[best]
		sc.taken[best] = true
		node := sc.cands[best].node
		sc.order = append(sc.order, r)
		sc.masters = append(sc.masters, active[node])
		sc.loads[node]++

		// Commit the pick's write-set to the overlay, collecting the
		// pending candidates whose access sets intersect the changed
		// keys; re-score them only after the overlay holds the complete
		// post-pick placement.
		sc.dirty = sc.dirty[:0]
		for _, k := range r.WriteSet() {
			if sc.overlay[k] == active[node] {
				continue
			}
			sc.overlay[k] = active[node]
			for j := searchKey(sc.access, k); j < len(sc.access) && sc.access[j].key == k; j++ {
				ti := sc.access[j].pos
				if !sc.taken[ti] && !sc.dirtyIn[ti] {
					sc.dirtyIn[ti] = true
					sc.dirty = append(sc.dirty, ti)
				}
			}
		}
		for _, ti := range sc.dirty {
			sc.dirtyIn[ti] = false
			s, x := p.bestRouteFor(txns[ti], active)
			s.pos = int(ti)
			sc.cands[ti] = candidate{s: s, node: x}
			p.heapPush(heapEnt{s: s, node: int32(x)})
		}
	}
}

// rebalance runs steps 2 and 3 of Algorithm 1: it finds overloaded nodes
// (load > theta) and reroutes transactions off them, backward through B′,
// under a growing remote-edge budget δ. masters, sc.loads, and sc.overlay
// are mutated in place.
//
// Per-candidate costs are computed from a future-readers index built once
// per batch (remoteEdgesAll), the overload count is maintained
// incrementally, and a backward pass that moves nothing advances δ
// straight to the smallest budget that admits a new move (or exits if no
// budget does) — the reference implementation instead re-walks the batch
// for every δ up to a bound that includes |writes|·b.
func (p *Prescient) rebalance(order []*tx.Request, masters []tx.NodeID, active []tx.NodeID, theta int) {
	sc := &p.sc
	b := len(order)

	sc.future = sc.future[:0]
	for j, r := range order {
		for _, k := range r.ReadSet() {
			sc.future = append(sc.future, keyPos{key: k, pos: int32(j)})
		}
	}
	sc.sortKeyPos(sc.future)

	over := 0
	for _, l := range sc.loads {
		if l > theta {
			over++
		}
	}

	// maxDelta bounds the relaxation: once δ exceeds any possible edge
	// count the move is always allowed, guaranteeing termination.
	maxDelta := 1
	for _, r := range order {
		if e := len(r.ReadSet()) + len(r.WriteSet())*b; e > maxDelta {
			maxDelta = e
		}
	}
	for delta := 1; over > 0 && delta <= maxDelta; {
		moved := false
		minRejected := math.MaxInt // smallest edge delta the budget refused
		for i := b - 1; i >= 0 && over > 0; i-- {
			xi := sc.nodeIdx[masters[i]]
			if sc.loads[xi] <= theta {
				continue
			}
			p.remoteEdgesAll(i, order, masters, active)
			cur := sc.edges[xi]
			bestNode, bestDelta := -1, math.MaxInt
			for c := range active {
				if sc.loads[c] >= theta || active[c] == masters[i] {
					continue
				}
				d := sc.edges[c] - cur
				if d > delta {
					if d < minRejected {
						minRejected = d
					}
					continue
				}
				// Prefer fewer added edges, then the least-loaded target
				// (an empty, freshly provisioned node must win ties or
				// it never receives work), then node id for determinism.
				if d < bestDelta || (d == bestDelta && sc.loads[c] < sc.loads[bestNode]) {
					bestNode, bestDelta = c, d
				}
			}
			if bestNode == -1 {
				continue
			}
			moved = true
			if sc.loads[xi]-1 <= theta {
				over--
			}
			sc.loads[xi]--
			sc.loads[bestNode]++ // was < theta, stays ≤ theta
			masters[i] = active[bestNode]
			for _, k := range order[i].WriteSet() {
				sc.overlay[k] = active[bestNode]
			}
		}
		switch {
		case moved:
			delta++
		case minRejected == math.MaxInt || minRejected > maxDelta:
			// No move was blocked by the budget alone: a zero-move pass
			// at unbounded δ, so every later δ round is also a no-op.
			return
		default:
			// The pass changed nothing, so every δ below minRejected
			// replays it verbatim; jump to the first budget that admits
			// a previously refused move.
			delta = minRejected
		}
	}
}

// score orders candidate (transaction, node) choices in step 1:
// primarily fewest remote reads r(x; T, P_i), then fewest write
// migrations, then lowest node id (determinism), and finally earliest
// batch position (stability). Load does not participate — Algorithm 1
// defers all balancing to step 3.
type score struct {
	remoteReads int
	migrations  int
	node        int
	pos         int
}

func (s score) less(o score) bool {
	if s.remoteReads != o.remoteReads {
		return s.remoteReads < o.remoteReads
	}
	if s.migrations != o.migrations {
		return s.migrations < o.migrations
	}
	if s.node != o.node {
		return s.node < o.node
	}
	return s.pos < o.pos
}

// bestRouteFor evaluates r(x; T, P_i) for all active nodes and returns the
// best score with its active-node index. It reads the batch overlay and
// node index from scratch and reuses the per-node count buffers.
func (p *Prescient) bestRouteFor(r *tx.Request, active []tx.NodeID) (score, int) {
	sc := &p.sc
	reads := r.ReadSet()
	writes := r.WriteSet()
	rc, wc := sc.readCounts, sc.writeCounts
	for i := range rc {
		rc[i], wc[i] = 0, 0
	}
	for _, k := range reads {
		if i := p.ownerIdx(k); i >= 0 {
			rc[i]++
		}
	}
	for _, k := range writes {
		if i := p.ownerIdx(k); i >= 0 {
			wc[i]++
		}
	}
	best := score{}
	bestAt := -1
	for i := range active {
		s := score{
			remoteReads: len(reads) - rc[i],
			migrations:  len(writes) - wc[i],
			node:        i,
		}
		if bestAt == -1 || s.less(best) {
			best, bestAt = s, i
		}
	}
	return best, bestAt
}

// ownerIdx resolves k's owner under the batch overlay (falling back to
// the real placement) to an active-node index, or -1 if the owner is not
// active.
func (p *Prescient) ownerIdx(k tx.Key) int {
	o, ok := p.sc.overlay[k]
	if !ok {
		o = p.pl.Owner(k)
	}
	if i, ok := p.sc.nodeIdx[o]; ok {
		return i
	}
	return -1
}

// remoteEdgesAll computes the remote edges of routing order[i] to every
// active node at once (§3.2.2), into sc.edges: for node x, the remote
// reads of T_i under the current placement, plus the reads of T_i's
// write-set by later transactions in B′ not routed to x. Keys both read
// and written travel with T_i and are excluded from the first term.
//
// One pass over T_i's access set and over the future-readers index
// entries of its write-set accumulates per-node ownership and mastering
// counts; the per-node edge count is then a subtraction, replacing the
// reference implementation's per-node rescan of every later transaction.
func (p *Prescient) remoteEdgesAll(i int, order []*tx.Request, masters []tx.NodeID, active []tx.NodeID) {
	sc := &p.sc
	ti := order[i]
	reads := ti.ReadSet()
	writes := ti.WriteSet()
	own, cm := sc.ownCount, sc.cntMaster
	for c := range own {
		own[c], cm[c] = 0, 0
	}
	nReads := 0
	for _, k := range reads {
		if tx.ContainsKey(writes, k) {
			continue
		}
		nReads++
		if c := p.ownerIdx(k); c >= 0 {
			own[c]++
		}
	}
	nLater := 0
	for _, k := range writes {
		for j := searchKeyPos(sc.future, k, int32(i)+1); j < len(sc.future) && sc.future[j].key == k; j++ {
			nLater++
			cm[sc.nodeIdx[masters[sc.future[j].pos]]]++
		}
	}
	for c := range active {
		sc.edges[c] = (nReads - own[c]) + (nLater - cm[c])
	}
}

// sortKeyPos sorts an inverted index by (key, pos). Entries are appended
// in position order, so a stable sort by key alone yields the (key, pos)
// order the binary searches need; an LSD radix sort over the key bytes
// does that without a comparator call per comparison, and byte passes
// whose value is constant across the index (the table tag, uniform high
// bytes of a small key space) are skipped outright.
func (sc *scratch) sortKeyPos(ps []keyPos) {
	if len(ps) < 2 {
		return
	}
	if cap(sc.sortTmp) < len(ps) {
		sc.sortTmp = make([]keyPos, len(ps))
	}
	var counts [8][256]int
	for i := range ps {
		k := uint64(ps[i].key)
		counts[0][byte(k)]++
		counts[1][byte(k>>8)]++
		counts[2][byte(k>>16)]++
		counts[3][byte(k>>24)]++
		counts[4][byte(k>>32)]++
		counts[5][byte(k>>40)]++
		counts[6][byte(k>>48)]++
		counts[7][byte(k>>56)]++
	}
	src, dst := ps, sc.sortTmp[:len(ps)]
	for pass := 0; pass < 8; pass++ {
		shift := uint(pass) * 8
		c := &counts[pass]
		if c[byte(uint64(src[0].key)>>shift)] == len(ps) {
			continue // every key shares this byte
		}
		sum := 0
		for i := range c {
			n := c[i]
			c[i] = sum
			sum += n
		}
		for _, e := range src {
			b := byte(uint64(e.key) >> shift)
			dst[c[b]] = e
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ps[0] {
		copy(ps, src)
	}
}

// searchKey returns the first index in ps whose key is ≥ k.
func searchKey(ps []keyPos, k tx.Key) int {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchKeyPos returns the first index in ps at or after (k, pos).
func searchKeyPos(ps []keyPos, k tx.Key, pos int32) int {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].key < k || (ps[mid].key == k && ps[mid].pos < pos) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// heapPush adds e to the step-1 candidate heap.
func (p *Prescient) heapPush(e heapEnt) {
	h := append(p.sc.heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].s.less(h[parent].s) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	p.sc.heap = h
}

// heapPop removes and returns the minimum-score entry.
func (p *Prescient) heapPop() heapEnt {
	h := p.sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].s.less(h[smallest].s) {
			smallest = l
		}
		if r < len(h) && h[r].s.less(h[smallest].s) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	p.sc.heap = h
	return top
}

// routeArena bulk-allocates one batch's route output: the Route structs,
// their owner snapshots, migrations, and write-back lists are carved out
// of shared slabs instead of being allocated per route. Carved slices are
// three-index sliced (cap == len) so a later append can never alias a
// neighbour, and slab growth is safe because earlier carves keep the old
// backing array alive and complete.
type routeArena struct {
	routes []router.Route
	ptrs   []*router.Route
	owners []router.OwnerPair
	migs   []router.Migration
	wb     []tx.Key
}

// newRouteArena sizes an arena for the given reordered batch.
func newRouteArena(order []*tx.Request) *routeArena {
	ownersCap := 0
	for _, r := range order {
		ownersCap += len(r.ReadSet()) + len(r.WriteSet())
	}
	return &routeArena{
		routes: make([]router.Route, 0, len(order)),
		ptrs:   make([]*router.Route, 0, len(order)),
		owners: make([]router.OwnerPair, 0, ownersCap),
		migs:   make([]router.Migration, 0, len(order)),
	}
}

// lookupOwner finds k in the owner region starting at base, returning its
// position (or insertion point) and whether it is present.
func (a *routeArena) lookupOwner(base int, k tx.Key) (int, bool) {
	region := a.owners[base:]
	lo, hi := 0, len(region)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if region[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return base + lo, lo < len(region) && region[lo].Key == k
}

// setOwner inserts or updates k in the current route's owner region
// (starting at base), keeping it sorted by key.
func (a *routeArena) setOwner(base int, k tx.Key, n tx.NodeID) {
	at, found := a.lookupOwner(base, k)
	if found {
		a.owners[at].Node = n
		return
	}
	a.owners = append(a.owners, router.OwnerPair{})
	copy(a.owners[at+1:], a.owners[at:])
	a.owners[at] = router.OwnerPair{Key: k, Node: n}
}

// commitRoute applies one routed transaction to the real placement at its
// position in B′ and emits its execution route: owner snapshot, data-
// fusion migrations for the write-set, fusion-table bookkeeping with LRU
// touches for reads, and eviction migrations appended to this
// transaction's write path exactly as §4.1 prescribes. The route and its
// slices are carved from ar.
func (p *Prescient) commitRoute(r *tx.Request, master tx.NodeID, ar *routeArena) *router.Route {
	reads := r.ReadSet()
	writes := r.WriteSet()

	// Owner snapshot: merge the sorted read- and write-sets (the access
	// set, without materializing it) straight into the arena slab.
	oBase := len(ar.owners)
	ri, wi := 0, 0
	for ri < len(reads) || wi < len(writes) {
		var k tx.Key
		switch {
		case wi >= len(writes) || (ri < len(reads) && reads[ri] < writes[wi]):
			k = reads[ri]
			ri++
		case ri >= len(reads) || writes[wi] < reads[ri]:
			k = writes[wi]
			wi++
		default: // equal: one entry for a read+write key
			k = reads[ri]
			ri++
			wi++
		}
		ar.owners = append(ar.owners, router.OwnerPair{Key: k, Node: p.pl.Owner(k)})
	}

	ar.routes = ar.routes[:len(ar.routes)+1]
	route := &ar.routes[len(ar.routes)-1]
	route.Txn, route.Mode, route.Master = r, router.SingleMaster, master
	ar.ptrs = append(ar.ptrs, route)
	mBase := len(ar.migs)
	wbBase := len(ar.wb)

	evicted := p.sc.evicted[:0]
	for _, k := range writes {
		at, _ := ar.lookupOwner(oBase, k)
		owner := ar.owners[at].Node
		// Blind writes (keys written but never read — inserts such as
		// TPC-C order rows) are not fused: the new record is sent to its
		// home partition after execution. Fusing them would flood the
		// fusion table with never-reaccessed entries whose evictions
		// each cost a migration; keeping the table to genuinely hot
		// records is exactly its design intent (§4.1).
		if !tx.ContainsKey(reads, k) && owner == p.pl.Home(k) && owner != master {
			if _, tracked := p.pl.Fusion.Get(k); !tracked {
				ar.wb = append(ar.wb, k)
				continue
			}
		}
		if owner != master {
			ar.migs = append(ar.migs, router.Migration{Key: k, From: owner, To: master})
		}
		if p.pl.Home(k) == master {
			// The record is (back) at its cold home: drop any stale
			// fusion entry instead of spending table capacity on it.
			p.pl.Fusion.Delete(k)
		} else {
			evicted = append(evicted, p.pl.Fusion.Put(k, master)...)
		}
	}
	// LRU-touch read keys so hot read-mostly records stay tracked.
	for _, k := range reads {
		if !tx.ContainsKey(writes, k) {
			p.pl.Fusion.Touch(k)
		}
	}
	// Evicted records migrate back to their cold homes alongside this
	// transaction (its effective write-set grows, §4.1).
	for _, e := range evicted {
		if _, tracked := p.pl.Fusion.Get(e.Key); tracked {
			// A later write of this same transaction re-admitted the key
			// (evict-then-reinsert within one commit): the table tracks
			// it again, so no migration home happens.
			continue
		}
		home := p.pl.Home(e.Key)
		if at, inAccess := ar.lookupOwner(oBase, e.Key); inAccess {
			// The table is smaller than this transaction's own footprint
			// and evicted one of its keys. The record must still land at
			// its cold home or placement (which now falls back to home)
			// would point at nothing: written keys sit at the master
			// after execution, read-only keys never moved.
			from := ar.owners[at].Node
			if tx.ContainsKey(writes, e.Key) {
				from = master
			}
			if from != home {
				ar.migs = append(ar.migs, router.Migration{Key: e.Key, From: from, To: home})
			}
			continue
		}
		if e.Owner == home {
			continue
		}
		ar.setOwner(oBase, e.Key, e.Owner)
		ar.migs = append(ar.migs, router.Migration{Key: e.Key, From: e.Owner, To: home})
	}
	p.sc.evicted = evicted[:0]

	route.Owners = router.Owners(ar.owners[oBase:len(ar.owners):len(ar.owners)])
	if len(ar.migs) > mBase {
		route.Migrations = ar.migs[mBase:len(ar.migs):len(ar.migs)]
	} else {
		route.Migrations = nil
	}
	if len(ar.wb) > wbBase {
		route.WriteBack = ar.wb[wbBase:len(ar.wb):len(ar.wb)]
	} else {
		route.WriteBack = nil
	}
	return route
}
