// Package core implements the paper's primary contribution: the prescient
// transaction routing algorithm (§3.2, Algorithm 1). Looking at a whole
// totally ordered batch of future transactions at once, it jointly
// optimizes three concerns that previous systems handled separately:
//
//  1. distributed-transaction cost — transactions are reordered and routed
//     greedily to minimize remote reads against the *evolving* placement
//     (P₀ … P_b), so a record migrated by one transaction is reused by the
//     transactions that follow it (avoiding the ping-pong of Fig. 3);
//  2. load balance — step 3 reroutes transactions off overloaded nodes,
//     backward through the reordered batch, accepting a move only if it
//     adds at most δ remote edges, relaxing δ until the per-node load
//     bound θ = ⌈b/n·(1+α)⌉ holds;
//  3. data (re-)partitioning and live migration — written records migrate
//     to the master on the fly with the transaction itself (data fusion),
//     and the resulting fine-grained placement is tracked in the bounded,
//     deterministically evicted fusion table shared (by replication) with
//     every scheduler.
//
// Everything here is a pure function of the input batch stream, so every
// node's replica computes the identical plan with zero coordination.
package core

import (
	"math"

	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// Config tunes the prescient router.
type Config struct {
	// Alpha is the load-imbalance tolerance in θ = ⌈b/n·(1+α)⌉ (§3.2.1).
	Alpha float64
	// FusionCapacity bounds the fusion table (entries); ≤ 0 = unbounded.
	// The paper expresses this as a fraction of the database (§4.1, §5.4).
	FusionCapacity int
	// FusionPolicy selects the deterministic replacement strategy.
	FusionPolicy fusion.Policy
}

// DefaultConfig returns the settings used by the paper's main experiments:
// α = 0 (strict balance) and an LRU-limited fusion table.
func DefaultConfig(fusionCapacity int) Config {
	return Config{Alpha: 0, FusionCapacity: fusionCapacity, FusionPolicy: fusion.LRU}
}

// Prescient is the Hermes routing policy. It implements router.Policy.
type Prescient struct {
	pl  *router.Placement
	cfg Config
}

// New returns a prescient router over base with the given active nodes.
func New(base partition.Partitioner, active []tx.NodeID, cfg Config) *Prescient {
	return &Prescient{
		pl:  router.NewPlacement(base, active, fusion.New(cfg.FusionCapacity, cfg.FusionPolicy)),
		cfg: cfg,
	}
}

// Name implements router.Policy.
func (p *Prescient) Name() string { return "hermes" }

// Placement implements router.Policy.
func (p *Prescient) Placement() *Placement { return p.pl }

// Placement is re-exported so callers needn't import router for the type.
type Placement = router.Placement

// RouteUser implements router.Policy: Algorithm 1 followed by the final
// placement replay that commits the batch's effects to the fusion table.
func (p *Prescient) RouteUser(txns []*tx.Request) []*router.Route {
	active := p.pl.Active()
	n := len(active)
	b := len(txns)
	if n == 0 || b == 0 {
		return nil
	}

	// ---- Step 1 (lines 4-9): greedy reorder + route minimizing remote
	// reads against the evolving placement. The overlay holds the
	// in-flight write-set migrations (P_i) without touching the real
	// fusion table yet.
	overlay := make(map[tx.Key]tx.NodeID)
	loads := make([]int, n)               // l per active-node index
	nodeIdx := make(map[tx.NodeID]int, n) // node id -> index in active
	for i, a := range active {
		nodeIdx[a] = i
	}
	planned := p.RouteUserPlanOnly(txns, overlay, active, nodeIdx, loads)
	order, masters := planned.order, planned.masters

	// ---- Step 2 (lines 11-12) + Step 3 (lines 14-30).
	theta := int(math.Ceil(float64(b) / float64(n) * (1 + p.cfg.Alpha)))
	p.rebalance(order, masters, loads, overlay, active, nodeIdx, theta)

	// ---- Final replay: commit the routed schedule to the real placement
	// (fusion table), producing per-transaction owner maps, data-fusion
	// migrations, and eviction write-backs at each position in B′.
	routes := make([]*router.Route, 0, b)
	for i, r := range order {
		routes = append(routes, p.commitRoute(r, masters[i]))
	}
	return routes
}

// plannedBatch is the output of step 1: the reordered batch B′ and the
// master assignment x_i aligned with it.
type plannedBatch struct {
	order   []*tx.Request
	masters []tx.NodeID
}

// RouteUserPlanOnly runs step 1 of Algorithm 1 (greedy reorder + route),
// mutating overlay and loads in place. Exported within the package for
// the ablated router.
func (p *Prescient) RouteUserPlanOnly(txns []*tx.Request, overlay map[tx.Key]tx.NodeID, active []tx.NodeID, nodeIdx map[tx.NodeID]int, loads []int) plannedBatch {
	b := len(txns)
	order := make([]*tx.Request, 0, b)
	masters := make([]tx.NodeID, 0, b)
	// Step-1 selection caches each pending transaction's best (score,
	// node); a cache entry is invalidated only when a selected
	// transaction's write-set intersects that transaction's access set
	// (the only event that changes its remote-read count). byKey is the
	// inverted index driving invalidation.
	type cand struct {
		s     score
		node  int
		valid bool
	}
	cands := make([]cand, b)
	taken := make([]bool, b)
	byKey := make(map[tx.Key][]int)
	for i, r := range txns {
		for _, k := range r.AccessSet() {
			byKey[k] = append(byKey[k], i)
		}
	}
	for i, r := range txns {
		s, x := p.bestRouteFor(r, overlay, active, nodeIdx)
		s.pos = i
		cands[i] = cand{s: s, node: x, valid: true}
	}
	for picked := 0; picked < b; picked++ {
		bestTxn := -1
		for i := range cands {
			if taken[i] {
				continue
			}
			if !cands[i].valid {
				s, x := p.bestRouteFor(txns[i], overlay, active, nodeIdx)
				s.pos = i
				cands[i] = cand{s: s, node: x, valid: true}
			}
			if bestTxn == -1 || cands[i].s.less(cands[bestTxn].s) {
				bestTxn = i
			}
		}
		r := txns[bestTxn]
		taken[bestTxn] = true
		order = append(order, r)
		masters = append(masters, active[cands[bestTxn].node])
		loads[cands[bestTxn].node]++
		for _, k := range r.WriteSet() {
			if overlay[k] != active[cands[bestTxn].node] {
				overlay[k] = active[cands[bestTxn].node]
				for _, ti := range byKey[k] {
					if !taken[ti] {
						cands[ti].valid = false
					}
				}
			}
		}
	}

	return plannedBatch{order: order, masters: masters}
}

// rebalance runs steps 2 and 3 of Algorithm 1: it finds overloaded nodes
// (load > theta) and reroutes transactions off them, backward through B′,
// under a growing remote-edge budget δ. order, masters, loads, and
// overlay are mutated in place.
func (p *Prescient) rebalance(order []*tx.Request, masters []tx.NodeID, loads []int, overlay map[tx.Key]tx.NodeID, active []tx.NodeID, nodeIdx map[tx.NodeID]int, theta int) {
	b := len(order)
	overloaded := func() int {
		c := 0
		for _, l := range loads {
			if l > theta {
				c++
			}
		}
		return c
	}

	// ---- Step 3 (lines 14-30): reroute backward with growing δ budget.
	// maxDelta bounds the relaxation: once δ exceeds any possible edge
	// count the move is always allowed, guaranteeing termination.
	maxDelta := 1
	for _, r := range order {
		if e := len(r.ReadSet()) + len(r.WriteSet())*b; e > maxDelta {
			maxDelta = e
		}
	}
	for delta := 1; overloaded() > 0 && delta <= maxDelta; delta++ {
		for i := b - 1; i >= 0 && overloaded() > 0; i-- {
			xi := nodeIdx[masters[i]]
			if loads[xi] <= theta {
				continue
			}
			cur := p.remoteEdges(i, masters[i], order, masters, overlay)
			bestNode, bestDelta := -1, math.MaxInt
			for c, cand := range active {
				if loads[c] >= theta || cand == masters[i] {
					continue
				}
				d := p.remoteEdges(i, cand, order, masters, overlay) - cur
				if d > delta {
					continue
				}
				// Prefer fewer added edges, then the least-loaded target
				// (an empty, freshly provisioned node must win ties or
				// it never receives work), then node id for determinism.
				if d < bestDelta || (d == bestDelta && loads[c] < loads[bestNode]) {
					bestNode, bestDelta = c, d
				}
			}
			if bestNode == -1 {
				continue
			}
			loads[xi]--
			loads[bestNode]++
			masters[i] = active[bestNode]
			for _, k := range order[i].WriteSet() {
				overlay[k] = active[bestNode]
			}
		}
	}
}

// score orders candidate (transaction, node) choices in step 1:
// primarily fewest remote reads r(x; T, P_i), then fewest write
// migrations, then lowest node id (determinism), and finally earliest
// batch position (stability). Load does not participate — Algorithm 1
// defers all balancing to step 3.
type score struct {
	remoteReads int
	migrations  int
	node        int
	pos         int
}

func (s score) less(o score) bool {
	if s.remoteReads != o.remoteReads {
		return s.remoteReads < o.remoteReads
	}
	if s.migrations != o.migrations {
		return s.migrations < o.migrations
	}
	if s.node != o.node {
		return s.node < o.node
	}
	return s.pos < o.pos
}

// bestRouteFor evaluates r(x; T, P_i) for all active nodes and returns the
// best score with its active-node index.
func (p *Prescient) bestRouteFor(r *tx.Request, overlay map[tx.Key]tx.NodeID, active []tx.NodeID, nodeIdx map[tx.NodeID]int) (score, int) {
	reads := r.ReadSet()
	writes := r.WriteSet()
	readCounts := make([]int, len(active))
	writeCounts := make([]int, len(active))
	owner := func(k tx.Key) int {
		o, ok := overlay[k]
		if !ok {
			o = p.pl.Owner(k)
		}
		if i, ok := nodeIdx[o]; ok {
			return i
		}
		return -1
	}
	for _, k := range reads {
		if i := owner(k); i >= 0 {
			readCounts[i]++
		}
	}
	for _, k := range writes {
		if i := owner(k); i >= 0 {
			writeCounts[i]++
		}
	}
	best := score{}
	bestAt := -1
	for i := range active {
		s := score{
			remoteReads: len(reads) - readCounts[i],
			migrations:  len(writes) - writeCounts[i],
			node:        i,
		}
		if bestAt == -1 || s.less(best) {
			best, bestAt = s, i
		}
	}
	return best, bestAt
}

// remoteEdges counts the remote edges of routing order[i] to x (§3.2.2):
// the remote reads of T_i under the final placement, plus the reads of
// T_i's write-set by later transactions in B′ not routed to x. Keys both
// read and written travel with T_i and are excluded from the first term.
func (p *Prescient) remoteEdges(i int, x tx.NodeID, order []*tx.Request, masters []tx.NodeID, overlay map[tx.Key]tx.NodeID) int {
	ti := order[i]
	writes := ti.WriteSet()
	edges := 0
	for _, k := range ti.ReadSet() {
		if tx.ContainsKey(writes, k) {
			continue
		}
		o, ok := overlay[k]
		if !ok {
			o = p.pl.Owner(k)
		}
		if o != x {
			edges++
		}
	}
	for j := i + 1; j < len(order); j++ {
		if masters[j] == x {
			continue
		}
		for _, k := range order[j].ReadSet() {
			if tx.ContainsKey(writes, k) {
				edges++
			}
		}
	}
	return edges
}

// commitRoute applies one routed transaction to the real placement at its
// position in B′ and emits its execution route: owner snapshot, data-
// fusion migrations for the write-set, fusion-table bookkeeping with LRU
// touches for reads, and eviction migrations appended to this
// transaction's write path exactly as §4.1 prescribes.
func (p *Prescient) commitRoute(r *tx.Request, master tx.NodeID) *router.Route {
	access := r.AccessSet()
	owners := make(map[tx.Key]tx.NodeID, len(access))
	for _, k := range access {
		owners[k] = p.pl.Owner(k)
	}
	route := &router.Route{Txn: r, Mode: router.SingleMaster, Master: master, Owners: owners}

	var evicted []fusion.Entry
	for _, k := range r.WriteSet() {
		// Blind writes (keys written but never read — inserts such as
		// TPC-C order rows) are not fused: the new record is sent to its
		// home partition after execution. Fusing them would flood the
		// fusion table with never-reaccessed entries whose evictions
		// each cost a migration; keeping the table to genuinely hot
		// records is exactly its design intent (§4.1).
		if !tx.ContainsKey(r.ReadSet(), k) && owners[k] == p.pl.Home(k) && owners[k] != master {
			if _, tracked := p.pl.Fusion.Get(k); !tracked {
				route.WriteBack = append(route.WriteBack, k)
				continue
			}
		}
		if owners[k] != master {
			route.Migrations = append(route.Migrations, router.Migration{Key: k, From: owners[k], To: master})
		}
		if p.pl.Home(k) == master {
			// The record is (back) at its cold home: drop any stale
			// fusion entry instead of spending table capacity on it.
			p.pl.Fusion.Delete(k)
		} else {
			evicted = append(evicted, p.pl.Fusion.Put(k, master)...)
		}
	}
	// LRU-touch read keys so hot read-mostly records stay tracked.
	for _, k := range r.ReadSet() {
		if !tx.ContainsKey(r.WriteSet(), k) {
			p.pl.Fusion.Touch(k)
		}
	}
	// Evicted records migrate back to their cold homes alongside this
	// transaction (its effective write-set grows, §4.1).
	for _, e := range evicted {
		if _, tracked := p.pl.Fusion.Get(e.Key); tracked {
			// A later write of this same transaction re-admitted the key
			// (evict-then-reinsert within one commit): the table tracks
			// it again, so no migration home happens.
			continue
		}
		home := p.pl.Home(e.Key)
		if prevOwner, inAccess := owners[e.Key]; inAccess {
			// The table is smaller than this transaction's own footprint
			// and evicted one of its keys. The record must still land at
			// its cold home or placement (which now falls back to home)
			// would point at nothing: written keys sit at the master
			// after execution, read-only keys never moved.
			from := prevOwner
			if tx.ContainsKey(r.WriteSet(), e.Key) {
				from = master
			}
			if from != home {
				route.Migrations = append(route.Migrations, router.Migration{Key: e.Key, From: from, To: home})
			}
			continue
		}
		if e.Owner == home {
			continue
		}
		owners[e.Key] = e.Owner
		route.Migrations = append(route.Migrations, router.Migration{Key: e.Key, From: e.Owner, To: home})
	}
	return route
}
