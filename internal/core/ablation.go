package core

import (
	"math"

	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// Ablation switches turn off individual ingredients of the prescient
// router so experiments can attribute the gains of Algorithm 1 to its
// parts (reordering, the load-balancing pass, data fusion itself):
//
//   - NoReorder keeps the batch in arrival order during step 1, routing
//     each transaction greedily in place — isolating the value of
//     reordering (the Fig. 3/Fig. 5 ping-pong avoidance).
//   - NoRebalance skips step 3 entirely, leaving the route that minimizes
//     remote reads — the router degenerates toward LEAP-with-lookahead.
//   - NoFusion routes exactly like Hermes but never migrates ownership:
//     written remote records are sent back to their owners after commit —
//     the router degenerates toward T-Part-without-forward-pushing.
type Ablation struct {
	NoReorder   bool
	NoRebalance bool
	NoFusion    bool
}

// AblatedPrescient is a Prescient router with selected ingredients
// disabled. It implements router.Policy.
type AblatedPrescient struct {
	p   *Prescient
	abl Ablation
}

// NewAblated returns a prescient router with the given ablations.
// (With NoFusion the table simply stays empty — nothing ever migrates.)
func NewAblated(base partition.Partitioner, active []tx.NodeID, cfg Config, abl Ablation) *AblatedPrescient {
	return &AblatedPrescient{p: New(base, active, cfg), abl: abl}
}

// Name implements router.Policy.
func (a *AblatedPrescient) Name() string {
	n := "hermes"
	if a.abl.NoReorder {
		n += "-noreorder"
	}
	if a.abl.NoRebalance {
		n += "-norebalance"
	}
	if a.abl.NoFusion {
		n += "-nofusion"
	}
	return n
}

// Placement implements router.Policy.
func (a *AblatedPrescient) Placement() *router.Placement { return a.p.pl }

// RouteUser implements router.Policy.
func (a *AblatedPrescient) RouteUser(txns []*tx.Request) []*router.Route {
	p := a.p
	active := p.pl.Active()
	n := len(active)
	b := len(txns)
	if n == 0 || b == 0 {
		return nil
	}

	overlay := make(map[tx.Key]tx.NodeID)
	order := make([]*tx.Request, 0, b)
	masters := make([]tx.NodeID, 0, b)
	loads := make([]int, n)
	nodeIdx := make(map[tx.NodeID]int, n)
	for i, node := range active {
		nodeIdx[node] = i
	}

	if a.abl.NoReorder {
		// Step 1 without reordering: greedy route in arrival order.
		for i, r := range txns {
			s, x := p.bestRouteFor(r, overlay, active, nodeIdx)
			s.pos = i
			order = append(order, r)
			masters = append(masters, active[x])
			loads[x]++
			for _, k := range r.WriteSet() {
				overlay[k] = active[x]
			}
		}
	} else {
		full := p.RouteUserPlanOnly(txns, overlay, active, nodeIdx, loads)
		order, masters = full.order, full.masters
	}

	if !a.abl.NoRebalance {
		theta := int(math.Ceil(float64(b) / float64(n) * (1 + p.cfg.Alpha)))
		p.rebalance(order, masters, loads, overlay, active, nodeIdx, theta)
	}

	routes := make([]*router.Route, 0, b)
	for i, r := range order {
		if a.abl.NoFusion {
			routes = append(routes, a.commitRouteNoFusion(r, masters[i]))
		} else {
			routes = append(routes, p.commitRoute(r, masters[i]))
		}
	}
	return routes
}

// commitRouteNoFusion emits a route where remote written records are
// write-backs instead of migrations, leaving placement untouched.
func (a *AblatedPrescient) commitRouteNoFusion(r *tx.Request, master tx.NodeID) *router.Route {
	p := a.p
	access := r.AccessSet()
	owners := make(map[tx.Key]tx.NodeID, len(access))
	for _, k := range access {
		owners[k] = p.pl.Owner(k)
	}
	route := &router.Route{Txn: r, Mode: router.SingleMaster, Master: master, Owners: owners}
	for _, k := range r.WriteSet() {
		if owners[k] != master {
			route.WriteBack = append(route.WriteBack, k)
		}
	}
	return route
}
