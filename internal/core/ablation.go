package core

import (
	"math"

	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// Ablation switches turn off individual ingredients of the prescient
// router so experiments can attribute the gains of Algorithm 1 to its
// parts (reordering, the load-balancing pass, data fusion itself):
//
//   - NoReorder keeps the batch in arrival order during step 1, routing
//     each transaction greedily in place — isolating the value of
//     reordering (the Fig. 3/Fig. 5 ping-pong avoidance).
//   - NoRebalance skips step 3 entirely, leaving the route that minimizes
//     remote reads — the router degenerates toward LEAP-with-lookahead.
//   - NoFusion routes exactly like Hermes but never migrates ownership:
//     written remote records are sent back to their owners after commit —
//     the router degenerates toward T-Part-without-forward-pushing.
type Ablation struct {
	NoReorder   bool
	NoRebalance bool
	NoFusion    bool
}

// AblatedPrescient is a Prescient router with selected ingredients
// disabled. It implements router.Policy. Like Prescient, it reuses
// per-batch scratch state and is not safe for concurrent RouteUser calls.
type AblatedPrescient struct {
	p   *Prescient
	abl Ablation
}

// NewAblated returns a prescient router with the given ablations.
// (With NoFusion the table simply stays empty — nothing ever migrates.)
func NewAblated(base partition.Partitioner, active []tx.NodeID, cfg Config, abl Ablation) *AblatedPrescient {
	return &AblatedPrescient{p: New(base, active, cfg), abl: abl}
}

// Name implements router.Policy.
func (a *AblatedPrescient) Name() string {
	n := "hermes"
	if a.abl.NoReorder {
		n += "-noreorder"
	}
	if a.abl.NoRebalance {
		n += "-norebalance"
	}
	if a.abl.NoFusion {
		n += "-nofusion"
	}
	return n
}

// Placement implements router.Policy.
func (a *AblatedPrescient) Placement() *router.Placement { return a.p.pl }

// RouteUser implements router.Policy.
func (a *AblatedPrescient) RouteUser(txns []*tx.Request) []*router.Route {
	p := a.p
	active := p.pl.Active()
	n := len(active)
	b := len(txns)
	if n == 0 || b == 0 {
		return nil
	}

	p.beginBatch(active, b)
	sc := &p.sc

	if a.abl.NoReorder {
		// Step 1 without reordering: greedy route in arrival order.
		for _, r := range txns {
			_, x := p.bestRouteFor(r, active)
			sc.order = append(sc.order, r)
			sc.masters = append(sc.masters, active[x])
			sc.loads[x]++
			for _, k := range r.WriteSet() {
				sc.overlay[k] = active[x]
			}
		}
	} else {
		p.planGreedy(txns, active)
	}

	if !a.abl.NoRebalance {
		theta := int(math.Ceil(float64(b) / float64(n) * (1 + p.cfg.Alpha)))
		p.rebalance(sc.order, sc.masters, active, theta)
	}

	ar := newRouteArena(sc.order)
	for i, r := range sc.order {
		if a.abl.NoFusion {
			a.commitRouteNoFusion(r, sc.masters[i], ar)
		} else {
			p.commitRoute(r, sc.masters[i], ar)
		}
	}
	routes := ar.ptrs
	for i := range sc.order {
		sc.order[i] = nil
	}
	return routes
}

// commitRouteNoFusion emits a route where remote written records are
// write-backs instead of migrations, leaving placement untouched.
func (a *AblatedPrescient) commitRouteNoFusion(r *tx.Request, master tx.NodeID, ar *routeArena) *router.Route {
	p := a.p
	access := r.AccessSet()
	oBase := len(ar.owners)
	for _, k := range access {
		ar.owners = append(ar.owners, router.OwnerPair{Key: k, Node: p.pl.Owner(k)})
	}
	owners := router.Owners(ar.owners[oBase:len(ar.owners):len(ar.owners)])
	ar.routes = ar.routes[:len(ar.routes)+1]
	route := &ar.routes[len(ar.routes)-1]
	route.Txn, route.Mode, route.Master = r, router.SingleMaster, master
	route.Owners = owners
	ar.ptrs = append(ar.ptrs, route)
	wbBase := len(ar.wb)
	for _, k := range r.WriteSet() {
		if owners.Get(k) != master {
			ar.wb = append(ar.wb, k)
		}
	}
	if len(ar.wb) > wbBase {
		route.WriteBack = ar.wb[wbBase:len(ar.wb):len(ar.wb)]
	}
	return route
}
