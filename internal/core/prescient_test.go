package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

func reqRW(id tx.TxnID, rs, ws []tx.Key) *tx.Request {
	return tx.NewRequest(id, &tx.OpProc{Reads: rs, Writes: ws})
}

func activeNodes(n int) []tx.NodeID {
	out := make([]tx.NodeID, n)
	for i := range out {
		out[i] = tx.NodeID(i)
	}
	return out
}

// paperExample builds the §3.2.3 / Fig. 5 scenario: three nodes, tuples
// {A,B} on node 0 and {C,D,E} on node 1, node 2 empty.
func paperExample() (*Prescient, map[string]tx.Key, []*tx.Request) {
	bounds := []tx.Key{tx.MakeKey(0, 0), tx.MakeKey(0, 10), tx.MakeKey(0, 100), tx.MakeKey(0, 200)}
	base, err := partition.NewRangeBoundaries(bounds)
	if err != nil {
		panic(err)
	}
	p := New(base, activeNodes(3), DefaultConfig(0))
	keys := map[string]tx.Key{
		"A": tx.MakeKey(0, 0), "B": tx.MakeKey(0, 1),
		"C": tx.MakeKey(0, 10), "D": tx.MakeKey(0, 11), "E": tx.MakeKey(0, 12),
	}
	k := func(s string) tx.Key { return keys[s] }
	txns := []*tx.Request{
		reqRW(1, []tx.Key{k("A"), k("B"), k("C")}, []tx.Key{k("C")}),
		reqRW(2, []tx.Key{k("C"), k("D"), k("E")}, []tx.Key{k("C")}),
		reqRW(3, []tx.Key{k("A"), k("B"), k("C")}, []tx.Key{k("C")}),
		reqRW(4, []tx.Key{k("D")}, []tx.Key{k("D")}),
		reqRW(5, []tx.Key{k("C")}, []tx.Key{k("C")}),
		reqRW(6, []tx.Key{k("C")}, []tx.Key{k("C")}),
	}
	return p, keys, txns
}

func TestPaperExampleBalancedAndCheap(t *testing.T) {
	p, _, txns := paperExample()
	routes := p.RouteUser(txns)
	if len(routes) != 6 {
		t.Fatalf("routes = %d", len(routes))
	}
	// α = 0 ⇒ θ = 2: every node gets exactly 2 transactions.
	loads := map[tx.NodeID]int{}
	for _, rt := range routes {
		loads[rt.Master]++
	}
	for n, l := range loads {
		if l > 2 {
			t.Errorf("node %d load = %d > θ=2", n, l)
		}
	}
	// The whole batch needs few cross-node record movements: the paper's
	// final plan (Fig. 5d) uses 2 network transmissions. Allow a little
	// slack for tie-breaking differences but reject ping-pong plans.
	moves := 0
	for _, rt := range routes {
		moves += len(rt.Migrations)
		for _, k := range rt.Txn.ReadSet() {
			if !tx.ContainsKey(rt.Txn.WriteSet(), k) && rt.Owners.Get(k) != rt.Master {
				moves++
			}
		}
	}
	if moves > 4 {
		t.Errorf("batch needed %d cross-node movements; expected ≤ 4 (paper achieves 2)", moves)
	}
}

func TestPaperExampleGroupsTemporalLocality(t *testing.T) {
	p, keys, txns := paperExample()
	routes := p.RouteUser(txns)
	// T5 and T6 access exactly {C}: the prescient router must put them on
	// the same node so C migrates at most once for the pair.
	var m5, m6 tx.NodeID = -9, -9
	cMoves := 0
	for _, rt := range routes {
		switch rt.Txn.ID {
		case 5:
			m5 = rt.Master
		case 6:
			m6 = rt.Master
		}
		for _, mg := range rt.Migrations {
			if mg.Key == keys["C"] {
				cMoves++
			}
		}
	}
	if m5 != m6 {
		t.Errorf("T5 on %d, T6 on %d; expected same master", m5, m6)
	}
	if cMoves > 2 {
		t.Errorf("tuple C migrated %d times; ping-pong not avoided", cMoves)
	}
}

func TestPingPongAvoidance(t *testing.T) {
	// Fig. 3: four identical transactions on {A,B}, two nodes, records on
	// node 0, θ = 2. Schedule 2 (2 record moves) must be found, not
	// schedule 1 (6 moves).
	base := partition.NewUniformRange(0, 100, 2)
	p := New(base, activeNodes(2), DefaultConfig(0))
	a, b := tx.MakeKey(0, 1), tx.MakeKey(0, 2)
	var txns []*tx.Request
	for i := 1; i <= 4; i++ {
		txns = append(txns, reqRW(tx.TxnID(i), []tx.Key{a, b}, []tx.Key{a, b}))
	}
	routes := p.RouteUser(txns)
	loads := map[tx.NodeID]int{}
	migs := 0
	for _, rt := range routes {
		loads[rt.Master]++
		migs += len(rt.Migrations)
	}
	if loads[0] != 2 || loads[1] != 2 {
		t.Fatalf("loads = %v, want 2/2", loads)
	}
	if migs != 2 {
		t.Fatalf("total record migrations = %d, want 2 (A and B move once)", migs)
	}
}

func TestLoadConstraintProperty(t *testing.T) {
	f := func(seed int64, bRaw, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		b := int(bRaw%30) + 1
		rng := rand.New(rand.NewSource(seed))
		base := partition.NewUniformRange(0, 1000, n)
		p := New(base, activeNodes(n), DefaultConfig(0))
		var txns []*tx.Request
		for i := 0; i < b; i++ {
			var rs, ws []tx.Key
			for j := 0; j < 1+rng.Intn(4); j++ {
				k := tx.MakeKey(0, uint64(rng.Intn(1000)))
				rs = append(rs, k)
				if rng.Intn(2) == 0 {
					ws = append(ws, k)
				}
			}
			txns = append(txns, reqRW(tx.TxnID(i+1), rs, ws))
		}
		routes := p.RouteUser(txns)
		if len(routes) != b {
			return false
		}
		theta := int(math.Ceil(float64(b) / float64(n)))
		loads := map[tx.NodeID]int{}
		seen := map[tx.TxnID]bool{}
		for _, rt := range routes {
			if seen[rt.Txn.ID] {
				return false // duplicate
			}
			seen[rt.Txn.ID] = true
			loads[rt.Master]++
		}
		for _, l := range loads {
			if l > theta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOutputIsPermutationOfInput(t *testing.T) {
	p, _, txns := paperExample()
	routes := p.RouteUser(txns)
	seen := map[tx.TxnID]bool{}
	for _, rt := range routes {
		seen[rt.Txn.ID] = true
	}
	for _, r := range txns {
		if !seen[r.ID] {
			t.Fatalf("transaction %d missing from plan", r.ID)
		}
	}
}

func TestReplicaDeterminism(t *testing.T) {
	// Two independent replicas fed the same batches must produce
	// identical plans and identical fusion tables.
	mk := func() *Prescient {
		base := partition.NewUniformRange(0, 500, 4)
		cfg := Config{Alpha: 0, FusionCapacity: 50, FusionPolicy: fusion.LRU}
		return New(base, activeNodes(4), cfg)
	}
	genBatch := func(rng *rand.Rand, start tx.TxnID, n int) []*tx.Request {
		var out []*tx.Request
		for i := 0; i < n; i++ {
			var rs, ws []tx.Key
			for j := 0; j < 1+rng.Intn(5); j++ {
				k := tx.MakeKey(0, uint64(rng.Intn(500)))
				rs = append(rs, k)
				if rng.Intn(2) == 0 {
					ws = append(ws, k)
				}
			}
			out = append(out, reqRW(start+tx.TxnID(i), rs, ws))
		}
		return out
	}
	a, b := mk(), mk()
	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	var id tx.TxnID = 1
	for batch := 0; batch < 20; batch++ {
		ta := genBatch(rngA, id, 30)
		tb := genBatch(rngB, id, 30)
		id += 30
		ra := a.RouteUser(ta)
		rb := b.RouteUser(tb)
		for i := range ra {
			if ra[i].Txn.ID != rb[i].Txn.ID || ra[i].Master != rb[i].Master {
				t.Fatalf("batch %d position %d: replicas diverged (%d@%d vs %d@%d)",
					batch, i, ra[i].Txn.ID, ra[i].Master, rb[i].Txn.ID, rb[i].Master)
			}
			if len(ra[i].Migrations) != len(rb[i].Migrations) {
				t.Fatalf("batch %d position %d: migration plans diverged", batch, i)
			}
		}
		if a.pl.Fusion.Fingerprint() != b.pl.Fusion.Fingerprint() {
			t.Fatalf("batch %d: fusion tables diverged", batch)
		}
	}
}

func TestFusionCapacityTriggersEvictionMigrations(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	cfg := Config{Alpha: 4, FusionCapacity: 2, FusionPolicy: fusion.FIFO}
	p := New(base, activeNodes(2), cfg)
	// Move keys 60,61,62 (home node 1) onto node 0 one batch at a time:
	// the third insert must evict the first and schedule its migration
	// home.
	local := []tx.Key{tx.MakeKey(0, 1), tx.MakeKey(0, 2)}
	for i := 0; i < 3; i++ {
		k := tx.MakeKey(0, uint64(60+i))
		routes := p.RouteUser([]*tx.Request{
			reqRW(tx.TxnID(i+1), append(append([]tx.Key{}, local...), k), []tx.Key{k}),
		})
		rt := routes[0]
		if rt.Master != 0 {
			t.Fatalf("txn %d master = %d, want 0", i+1, rt.Master)
		}
		if i < 2 && len(rt.Migrations) != 1 {
			t.Fatalf("txn %d migrations = %v", i+1, rt.Migrations)
		}
		if i == 2 {
			// Inbound migration of key 62 plus eviction of key 60 home.
			if len(rt.Migrations) != 2 {
				t.Fatalf("eviction migration missing: %v", rt.Migrations)
			}
			ev := rt.Migrations[1]
			if ev.Key != tx.MakeKey(0, 60) || ev.From != 0 || ev.To != 1 {
				t.Fatalf("eviction = %+v, want key60 0->1", ev)
			}
		}
	}
	if p.pl.Fusion.Len() > 2 {
		t.Fatalf("fusion table exceeded capacity: %d", p.pl.Fusion.Len())
	}
}

func TestSelfEvictionStillMigratesHome(t *testing.T) {
	// Fusion capacity (2) smaller than the transaction's write footprint
	// (3): the transaction's own first write gets evicted by its third.
	// The route must still deliver the evicted record to its cold home;
	// otherwise placement (now falling back to home) points at nothing.
	base := partition.NewUniformRange(0, 100, 2)
	p := New(base, activeNodes(2), Config{Alpha: 8, FusionCapacity: 2, FusionPolicy: fusion.FIFO})
	// Three writes homed on node 1 plus local majority on node 0.
	w := []tx.Key{tx.MakeKey(0, 60), tx.MakeKey(0, 61), tx.MakeKey(0, 62)}
	reads := append([]tx.Key{tx.MakeKey(0, 1), tx.MakeKey(0, 2), tx.MakeKey(0, 3), tx.MakeKey(0, 4)}, w...)
	routes := p.RouteUser([]*tx.Request{reqRW(1, reads, w)})
	rt := routes[0]
	if rt.Master != 0 {
		t.Fatalf("master = %d, want 0", rt.Master)
	}
	// Placement must agree with the migration plan: for every written
	// key, either fusion tracks it at the master, or a migration carries
	// it to wherever placement will look for it.
	finalDest := map[tx.Key]tx.NodeID{}
	for _, m := range rt.Migrations {
		finalDest[m.Key] = m.To // last migration per key wins
	}
	for _, k := range w {
		owner := p.pl.Owner(k)
		dest, migrated := finalDest[k]
		if !migrated {
			t.Fatalf("written key %v has no migration", k)
		}
		if owner != dest {
			t.Fatalf("key %v: placement says %d but record lands at %d (stranded)", k, owner, dest)
		}
	}
}

func TestKeysReturningHomeLeaveFusionTable(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	p := New(base, activeNodes(2), Config{Alpha: 4, FusionCapacity: 10, FusionPolicy: fusion.LRU})
	k := tx.MakeKey(0, 60) // home node 1
	// Pull k to node 0.
	p.RouteUser([]*tx.Request{reqRW(1, []tx.Key{tx.MakeKey(0, 1), tx.MakeKey(0, 2), k}, []tx.Key{k})})
	if _, hot := p.pl.Fusion.Get(k); !hot {
		t.Fatal("migrated key not tracked")
	}
	// Pull it back home with a node-1-majority transaction.
	p.RouteUser([]*tx.Request{reqRW(2, []tx.Key{tx.MakeKey(0, 61), tx.MakeKey(0, 62), k}, []tx.Key{k})})
	if _, hot := p.pl.Fusion.Get(k); hot {
		t.Fatal("key at home still occupies fusion capacity")
	}
}

func TestProvisioningSpreadsLoadToNewNode(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	p := New(base, activeNodes(2), DefaultConfig(0))
	// Scale out via the control path.
	batch := &tx.Batch{Txns: []*tx.Request{
		tx.NewRequest(1, &tx.ProvisionProc{Add: []tx.NodeID{2}}),
	}}
	router.BuildPlan(p, batch)
	if len(p.pl.Active()) != 3 {
		t.Fatalf("Active = %v", p.pl.Active())
	}
	// Nine single-key transactions, θ = 3: the new node must take load.
	var txns []*tx.Request
	for i := 0; i < 9; i++ {
		k := tx.MakeKey(0, uint64(i))
		txns = append(txns, reqRW(tx.TxnID(i+2), []tx.Key{k}, []tx.Key{k}))
	}
	loads := map[tx.NodeID]int{}
	for _, rt := range p.RouteUser(txns) {
		loads[rt.Master]++
	}
	if loads[2] == 0 {
		t.Fatal("new node received no transactions")
	}
	for n, l := range loads {
		if l > 3 {
			t.Fatalf("node %d load %d > θ=3", n, l)
		}
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	p := New(base, activeNodes(2), DefaultConfig(0))
	if routes := p.RouteUser(nil); routes != nil {
		t.Fatal("empty segment produced routes")
	}
	// A transaction with empty read- and write-sets must still route.
	routes := p.RouteUser([]*tx.Request{tx.NewRequest(1, &tx.OpProc{})})
	if len(routes) != 1 || routes[0].Master == tx.NoNode {
		t.Fatalf("degenerate txn route = %+v", routes)
	}
}

func TestReadOnlyKeysDoNotMigrate(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	p := New(base, activeNodes(2), DefaultConfig(0))
	kRemote := tx.MakeKey(0, 60)
	kLocal := tx.MakeKey(0, 1)
	routes := p.RouteUser([]*tx.Request{
		reqRW(1, []tx.Key{kLocal, kRemote}, []tx.Key{kLocal}),
	})
	rt := routes[0]
	for _, m := range rt.Migrations {
		if m.Key == kRemote {
			t.Fatal("read-only key migrated; §3.2 migrates the write-set only")
		}
	}
}

// routingBatches pre-generates a pool of batches (bsize transactions of
// 2 keys, 1 written — the paper's YCSB default) so benchmarks time the
// router alone, not request construction.
func routingBatches(rng *rand.Rand, rows uint64, bsize, pool int) [][]*tx.Request {
	out := make([][]*tx.Request, pool)
	id := tx.TxnID(1)
	for p := range out {
		batch := make([]*tx.Request, 0, bsize)
		for i := 0; i < bsize; i++ {
			var rs, ws []tx.Key
			for j := 0; j < 2; j++ {
				k := tx.MakeKey(0, uint64(rng.Intn(int(rows))))
				rs = append(rs, k)
				if j == 0 {
					ws = append(ws, k)
				}
			}
			batch = append(batch, reqRW(id, rs, ws))
			id++
		}
		out[p] = batch
	}
	return out
}

func BenchmarkPrescientRouting(b *testing.B) {
	// n = 20, b = 1000 is the §3.2.4 setting; the smaller variants track
	// the cost curve scripts/bench.sh records in BENCH_routing.json.
	for _, n := range []int{4, 20} {
		for _, bsize := range []int{100, 1000} {
			b.Run(fmt.Sprintf("n=%d/b=%d", n, bsize), func(b *testing.B) {
				const rows = 1_000_000
				base := partition.NewUniformRange(0, rows, n)
				p := New(base, activeNodes(n), DefaultConfig(100_000))
				batches := routingBatches(rand.New(rand.NewSource(1)), rows, bsize, 16)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.RouteUser(batches[i%len(batches)])
				}
			})
		}
	}
}

func BenchmarkCommitRoute(b *testing.B) {
	const rows = 1_000_000
	base := partition.NewUniformRange(0, rows, 20)
	p := New(base, activeNodes(20), DefaultConfig(100_000))
	batches := routingBatches(rand.New(rand.NewSource(1)), rows, 1000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := batches[i%len(batches)]
		ar := newRouteArena(batch)
		for _, r := range batch {
			p.commitRoute(r, p.pl.Active()[i%20], ar)
		}
	}
}
