package core

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// diffBatch draws a random batch whose shape exercises every branch the
// optimized router rewrote: variable access-set size, read/write overlap,
// occasional blind writes, occasional empty access sets, and key skew
// (sometimes all keys from one node's range so step 3 must relax δ).
func diffBatch(rng *rand.Rand, start tx.TxnID, bsize int, rows uint64) []*tx.Request {
	skew := rng.Intn(3) == 0 // every third batch: hammer the low key range
	out := make([]*tx.Request, 0, bsize)
	for i := 0; i < bsize; i++ {
		var rs, ws []tx.Key
		nk := rng.Intn(5) // 0..4 keys; 0 = degenerate empty transaction
		for j := 0; j < nk; j++ {
			span := rows
			if skew {
				span = rows / 4
			}
			k := tx.MakeKey(0, uint64(rng.Intn(int(span))))
			switch rng.Intn(3) {
			case 0: // read-only
				rs = append(rs, k)
			case 1: // read+write
				rs = append(rs, k)
				ws = append(ws, k)
			default: // blind write
				ws = append(ws, k)
			}
		}
		out = append(out, reqRW(start+tx.TxnID(i), rs, ws))
		start++
	}
	return out
}

// requireSameRoutes fails unless a and b are field-for-field identical.
func requireSameRoutes(t *testing.T, batch int, a, b []*router.Route) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("batch %d: route counts differ: %d vs %d", batch, len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.Txn.ID != rb.Txn.ID {
			t.Fatalf("batch %d pos %d: order differs: txn %d vs %d", batch, i, ra.Txn.ID, rb.Txn.ID)
		}
		if ra.Mode != rb.Mode || ra.Master != rb.Master {
			t.Fatalf("batch %d pos %d (txn %d): mode/master differ: %v@%d vs %v@%d",
				batch, i, ra.Txn.ID, ra.Mode, ra.Master, rb.Mode, rb.Master)
		}
		if !slices.Equal(ra.Owners, rb.Owners) {
			t.Fatalf("batch %d pos %d (txn %d): owners differ:\n  %v\n  %v",
				batch, i, ra.Txn.ID, ra.Owners, rb.Owners)
		}
		if !slices.Equal(ra.Migrations, rb.Migrations) {
			t.Fatalf("batch %d pos %d (txn %d): migrations differ:\n  %v\n  %v",
				batch, i, ra.Txn.ID, ra.Migrations, rb.Migrations)
		}
		if !slices.Equal(ra.WriteBack, rb.WriteBack) {
			t.Fatalf("batch %d pos %d (txn %d): write-backs differ:\n  %v\n  %v",
				batch, i, ra.Txn.ID, ra.WriteBack, rb.WriteBack)
		}
	}
}

// TestOptimizedMatchesReference is the equivalence gate for the hot-path
// rewrite: across partitioner families, α settings, and fusion-table
// bounds, the optimized router and the preserved reference implementation
// must emit identical plans on identical batch streams — and their fusion
// tables must evolve in lockstep, so equivalence holds batch after batch,
// not just on the first one.
func TestOptimizedMatchesReference(t *testing.T) {
	const rows = 200
	parts := []struct {
		name string
		mk   func() partition.Partitioner
	}{
		{"uniform-range", func() partition.Partitioner {
			return partition.NewUniformRange(0, rows, 4)
		}},
		{"hash", func() partition.Partitioner {
			return partition.NewHash(4)
		}},
		{"skewed-range", func() partition.Partitioner {
			// Node 0 owns 3/4 of the key space: step 3 works hard.
			b, err := partition.NewRangeBoundaries([]tx.Key{
				tx.MakeKey(0, 0), tx.MakeKey(0, 150), tx.MakeKey(0, 170),
				tx.MakeKey(0, 185), tx.MakeKey(0, rows),
			})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"lookup", func() partition.Partitioner {
			over := map[tx.Key]tx.NodeID{}
			for i := uint64(0); i < 40; i++ {
				over[tx.MakeKey(0, i)] = tx.NodeID(i % 4)
			}
			return partition.NewLookup(over, partition.NewUniformRange(0, rows, 4))
		}},
	}
	for _, pt := range parts {
		for _, alpha := range []float64{0, 0.5} {
			for _, capacity := range []int{0, 8} {
				name := fmt.Sprintf("%s/alpha=%v/cap=%d", pt.name, alpha, capacity)
				t.Run(name, func(t *testing.T) {
					cfg := Config{Alpha: alpha, FusionCapacity: capacity, FusionPolicy: fusion.LRU}
					opt := New(pt.mk(), activeNodes(4), cfg)
					ref := New(pt.mk(), activeNodes(4), cfg)
					rng := rand.New(rand.NewSource(7))
					id := tx.TxnID(1)
					for batch := 0; batch < 12; batch++ {
						bsize := 1 + rng.Intn(24)
						txns := diffBatch(rng, id, bsize, rows)
						id += tx.TxnID(bsize)
						got := opt.RouteUser(txns)
						want := referenceRouteUser(ref, txns)
						requireSameRoutes(t, batch, got, want)
						if of, rf := opt.pl.Fusion.Fingerprint(), ref.pl.Fusion.Fingerprint(); of != rf {
							t.Fatalf("batch %d: fusion tables diverged (%x vs %x)", batch, of, rf)
						}
					}
				})
			}
		}
	}
}

// TestRemoteEdgesAllMatchesReference pins the semantics of the one-pass
// remote-edge computation against the quadratic reference and against
// hand-computed values: keys both read and written travel with the
// transaction (excluded from the remote-read term), and later in-batch
// readers of the write-set each contribute one edge unless already
// mastered at the candidate node.
func TestRemoteEdgesAllMatchesReference(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2) // keys 0-49 on node 0, 50-99 on node 1
	p := New(base, activeNodes(2), DefaultConfig(0))
	k := func(i uint64) tx.Key { return tx.MakeKey(0, i) }

	// T0 reads {10, 60} and writes {10, 70}:
	//   - 10 is read+write: travels with T0, no read edge anywhere;
	//   - 60 is read-only, owned by node 1: one edge at node 0, none at 1;
	//   - 70 is a blind write: no read edge, but T1 and T2 read it later.
	// T1 (master 0) reads {70}; T2 (master 1) reads {70, 10}.
	order := []*tx.Request{
		reqRW(1, []tx.Key{k(10), k(60)}, []tx.Key{k(10), k(70)}),
		reqRW(2, []tx.Key{k(70)}, nil),
		reqRW(3, []tx.Key{k(70), k(10)}, nil),
	}
	masters := []tx.NodeID{0, 0, 1}
	active := p.pl.Active()

	p.beginBatch(active, len(order))
	p.sc.future = p.sc.future[:0]
	for j, r := range order {
		for _, key := range r.ReadSet() {
			p.sc.future = append(p.sc.future, keyPos{key: key, pos: int32(j)})
		}
	}
	p.sc.sortKeyPos(p.sc.future)

	p.remoteEdgesAll(0, order, masters, active)
	// Node 0: read edge for 60 (owner 1) + later readers of {10,70}:
	//   T2 reads both and is mastered at 1 → 2 edges; T1 is at 0 → 0.
	// Node 1: read edge for 10?—no, 10 travels (read+write). 60 local → 0.
	//   Later readers not at node 1: T1 reads 70 at node 0 → 1; T2 at 1 → 0.
	if got, want := p.sc.edges[0], 1+2; got != want {
		t.Errorf("edges[node0] = %d, want %d", got, want)
	}
	if got, want := p.sc.edges[1], 0+1; got != want {
		t.Errorf("edges[node1] = %d, want %d", got, want)
	}

	// And both must agree with the reference on randomized instances.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		b := 1 + rng.Intn(10)
		txns := diffBatch(rng, 100, b, 100)
		ms := make([]tx.NodeID, b)
		for i := range ms {
			ms[i] = tx.NodeID(rng.Intn(2))
		}
		overlay := map[tx.Key]tx.NodeID{}
		p.beginBatch(active, b)
		for key, node := range p.sc.overlay {
			overlay[key] = node
		}
		p.sc.future = p.sc.future[:0]
		for j, r := range txns {
			for _, key := range r.ReadSet() {
				p.sc.future = append(p.sc.future, keyPos{key: key, pos: int32(j)})
			}
		}
		p.sc.sortKeyPos(p.sc.future)
		for i := 0; i < b; i++ {
			p.remoteEdgesAll(i, txns, ms, active)
			for c, node := range active {
				want := refRemoteEdges(p, i, node, txns, ms, overlay)
				if p.sc.edges[c] != want {
					t.Fatalf("trial %d txn %d node %d: edges = %d, reference = %d",
						trial, i, node, p.sc.edges[c], want)
				}
			}
		}
	}
}
