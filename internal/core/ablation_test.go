package core

import (
	"testing"

	"hermes/internal/partition"
	"hermes/internal/tx"
)

func TestAblatedNames(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	cases := []struct {
		abl  Ablation
		want string
	}{
		{Ablation{}, "hermes"},
		{Ablation{NoReorder: true}, "hermes-noreorder"},
		{Ablation{NoRebalance: true}, "hermes-norebalance"},
		{Ablation{NoFusion: true}, "hermes-nofusion"},
		{Ablation{NoReorder: true, NoFusion: true}, "hermes-noreorder-nofusion"},
	}
	for _, c := range cases {
		p := NewAblated(base, activeNodes(2), DefaultConfig(10), c.abl)
		if p.Name() != c.want {
			t.Errorf("Name = %q, want %q", p.Name(), c.want)
		}
	}
}

func TestAblatedFullEqualsPrescient(t *testing.T) {
	// With no ablations enabled, the ablated router must produce exactly
	// the plan the real prescient router produces.
	base := partition.NewUniformRange(0, 200, 3)
	mkTxns := func() []*tx.Request {
		var txns []*tx.Request
		for i := 0; i < 20; i++ {
			k1 := tx.MakeKey(0, uint64(i*7%200))
			k2 := tx.MakeKey(0, uint64(i*13%200))
			txns = append(txns, reqRW(tx.TxnID(i+1), []tx.Key{k1, k2}, []tx.Key{k1}))
		}
		return txns
	}
	full := New(base, activeNodes(3), DefaultConfig(20))
	abl := NewAblated(base, activeNodes(3), DefaultConfig(20), Ablation{})
	rf := full.RouteUser(mkTxns())
	ra := abl.RouteUser(mkTxns())
	if len(rf) != len(ra) {
		t.Fatalf("lengths differ: %d vs %d", len(rf), len(ra))
	}
	for i := range rf {
		if rf[i].Txn.ID != ra[i].Txn.ID || rf[i].Master != ra[i].Master {
			t.Fatalf("plans diverge at %d: %d@%d vs %d@%d",
				i, rf[i].Txn.ID, rf[i].Master, ra[i].Txn.ID, ra[i].Master)
		}
	}
}

func TestNoReorderPreservesArrivalOrder(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	p := NewAblated(base, activeNodes(2), Config{Alpha: 10, FusionCapacity: 50}, Ablation{NoReorder: true, NoRebalance: true})
	var txns []*tx.Request
	for i := 0; i < 10; i++ {
		k := tx.MakeKey(0, uint64(i*10))
		txns = append(txns, reqRW(tx.TxnID(i+1), []tx.Key{k}, []tx.Key{k}))
	}
	routes := p.RouteUser(txns)
	for i, rt := range routes {
		if rt.Txn.ID != tx.TxnID(i+1) {
			t.Fatalf("position %d has txn %d; order not preserved", i, rt.Txn.ID)
		}
	}
}

func TestNoRebalanceSkipsThetaConstraint(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	// All keys on node 0: without rebalancing everything routes there.
	p := NewAblated(base, activeNodes(2), DefaultConfig(0), Ablation{NoRebalance: true})
	var txns []*tx.Request
	for i := 0; i < 8; i++ {
		k := tx.MakeKey(0, uint64(i))
		txns = append(txns, reqRW(tx.TxnID(i+1), []tx.Key{k}, []tx.Key{k}))
	}
	loads := map[tx.NodeID]int{}
	for _, rt := range p.RouteUser(txns) {
		loads[rt.Master]++
	}
	if loads[0] != 8 {
		t.Fatalf("loads = %v; NoRebalance should keep affinity routing", loads)
	}
	// And the full router must split them (θ = 4).
	full := New(base, activeNodes(2), DefaultConfig(0))
	loads = map[tx.NodeID]int{}
	for _, rt := range full.RouteUser(txns) {
		loads[rt.Master]++
	}
	if loads[0] > 4 {
		t.Fatalf("full router loads = %v; θ violated", loads)
	}
}

func TestNoFusionNeverMigrates(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	p := NewAblated(base, activeNodes(2), DefaultConfig(50), Ablation{NoFusion: true})
	k0, k1 := tx.MakeKey(0, 1), tx.MakeKey(0, 60) // different homes
	for round := 0; round < 3; round++ {
		routes := p.RouteUser([]*tx.Request{
			reqRW(tx.TxnID(round*2+1), []tx.Key{k0, k1}, []tx.Key{k0, k1}),
			reqRW(tx.TxnID(round*2+2), []tx.Key{k0, k1}, []tx.Key{k0, k1}),
		})
		for _, rt := range routes {
			if len(rt.Migrations) != 0 {
				t.Fatalf("NoFusion migrated: %v", rt.Migrations)
			}
			if len(rt.WriteBack) == 0 {
				t.Fatal("remote write did not become a write-back")
			}
		}
	}
	if p.Placement().Fusion.Len() != 0 {
		t.Fatalf("fusion table populated under NoFusion: %d", p.Placement().Fusion.Len())
	}
}

func TestNoFusionStablePlacement(t *testing.T) {
	// Placement must remain the static layout forever under NoFusion.
	base := partition.NewUniformRange(0, 100, 2)
	p := NewAblated(base, activeNodes(2), DefaultConfig(50), Ablation{NoFusion: true})
	k := tx.MakeKey(0, 60)
	p.RouteUser([]*tx.Request{reqRW(1, []tx.Key{tx.MakeKey(0, 1), k}, []tx.Key{k})})
	if got := p.Placement().Owner(k); got != 1 {
		t.Fatalf("owner drifted to %d under NoFusion", got)
	}
}
