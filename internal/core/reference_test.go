package core

// This file preserves the straightforward implementation of Algorithm 1
// that predates the incremental-index rewrite of prescient.go, verbatim
// except for mechanical renames (ref* prefixes) and the Route.Owners
// representation (router.Owners.Set instead of map assignment — Set keeps
// entries key-sorted, so reference output is comparable field-by-field
// with the optimized router's slab-carved snapshots).
//
// It is the oracle for TestOptimizedMatchesReference: the optimized
// router must produce byte-identical routing decisions — same reordering,
// same masters, same owner snapshots, same migration and write-back
// lists, same fusion-table evolution — on any batch stream. Determinism
// across replicas is the system's core invariant (§3.1), so "faster" is
// only admissible as "identical output, less work".

import (
	"math"

	"hermes/internal/fusion"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// referenceRouteUser is the pre-optimization RouteUser: Algorithm 1 with
// per-pick rescans, per-call allocation, and per-candidate remote-edge
// recounts. It shares p's placement and fusion table, so run it on a
// dedicated Prescient.
func referenceRouteUser(p *Prescient, txns []*tx.Request) []*router.Route {
	active := p.pl.Active()
	n := len(active)
	b := len(txns)
	if n == 0 || b == 0 {
		return nil
	}

	overlay := make(map[tx.Key]tx.NodeID)
	loads := make([]int, n)
	nodeIdx := make(map[tx.NodeID]int, n)
	for i, a := range active {
		nodeIdx[a] = i
	}
	order, masters := refPlan(p, txns, overlay, active, nodeIdx, loads)

	theta := int(math.Ceil(float64(b) / float64(n) * (1 + p.cfg.Alpha)))
	refRebalance(p, order, masters, loads, overlay, active, nodeIdx, theta)

	routes := make([]*router.Route, 0, b)
	for i, r := range order {
		routes = append(routes, refCommitRoute(p, r, masters[i]))
	}
	return routes
}

// refPlan is step 1: greedy reorder + route with an O(b) rescan per pick
// (cands invalidated by write-set intersection, recomputed lazily during
// the scan).
func refPlan(p *Prescient, txns []*tx.Request, overlay map[tx.Key]tx.NodeID, active []tx.NodeID, nodeIdx map[tx.NodeID]int, loads []int) ([]*tx.Request, []tx.NodeID) {
	b := len(txns)
	order := make([]*tx.Request, 0, b)
	masters := make([]tx.NodeID, 0, b)
	type cand struct {
		s     score
		node  int
		valid bool
	}
	cands := make([]cand, b)
	taken := make([]bool, b)
	byKey := make(map[tx.Key][]int)
	for i, r := range txns {
		for _, k := range r.AccessSet() {
			byKey[k] = append(byKey[k], i)
		}
	}
	for i, r := range txns {
		s, x := refBestRouteFor(p, r, overlay, active, nodeIdx)
		s.pos = i
		cands[i] = cand{s: s, node: x, valid: true}
	}
	for picked := 0; picked < b; picked++ {
		bestTxn := -1
		for i := range cands {
			if taken[i] {
				continue
			}
			if !cands[i].valid {
				s, x := refBestRouteFor(p, txns[i], overlay, active, nodeIdx)
				s.pos = i
				cands[i] = cand{s: s, node: x, valid: true}
			}
			if bestTxn == -1 || cands[i].s.less(cands[bestTxn].s) {
				bestTxn = i
			}
		}
		r := txns[bestTxn]
		taken[bestTxn] = true
		order = append(order, r)
		masters = append(masters, active[cands[bestTxn].node])
		loads[cands[bestTxn].node]++
		for _, k := range r.WriteSet() {
			if overlay[k] != active[cands[bestTxn].node] {
				overlay[k] = active[cands[bestTxn].node]
				for _, ti := range byKey[k] {
					if !taken[ti] {
						cands[ti].valid = false
					}
				}
			}
		}
	}
	return order, masters
}

// refRebalance is step 3 with a full overload recount per move attempt, a
// per-candidate remoteEdges call, and a δ loop that re-walks the batch at
// every budget up to the bound.
func refRebalance(p *Prescient, order []*tx.Request, masters []tx.NodeID, loads []int, overlay map[tx.Key]tx.NodeID, active []tx.NodeID, nodeIdx map[tx.NodeID]int, theta int) {
	b := len(order)
	overloaded := func() int {
		c := 0
		for _, l := range loads {
			if l > theta {
				c++
			}
		}
		return c
	}
	maxDelta := 1
	for _, r := range order {
		if e := len(r.ReadSet()) + len(r.WriteSet())*b; e > maxDelta {
			maxDelta = e
		}
	}
	for delta := 1; overloaded() > 0 && delta <= maxDelta; delta++ {
		for i := b - 1; i >= 0 && overloaded() > 0; i-- {
			xi := nodeIdx[masters[i]]
			if loads[xi] <= theta {
				continue
			}
			cur := refRemoteEdges(p, i, masters[i], order, masters, overlay)
			bestNode, bestDelta := -1, math.MaxInt
			for c, cand := range active {
				if loads[c] >= theta || cand == masters[i] {
					continue
				}
				d := refRemoteEdges(p, i, cand, order, masters, overlay) - cur
				if d > delta {
					continue
				}
				if d < bestDelta || (d == bestDelta && loads[c] < loads[bestNode]) {
					bestNode, bestDelta = c, d
				}
			}
			if bestNode == -1 {
				continue
			}
			loads[xi]--
			loads[bestNode]++
			masters[i] = active[bestNode]
			for _, k := range order[i].WriteSet() {
				overlay[k] = active[bestNode]
			}
		}
	}
}

// refBestRouteFor allocates its per-node counters on every call.
func refBestRouteFor(p *Prescient, r *tx.Request, overlay map[tx.Key]tx.NodeID, active []tx.NodeID, nodeIdx map[tx.NodeID]int) (score, int) {
	reads := r.ReadSet()
	writes := r.WriteSet()
	readCounts := make([]int, len(active))
	writeCounts := make([]int, len(active))
	owner := func(k tx.Key) int {
		o, ok := overlay[k]
		if !ok {
			o = p.pl.Owner(k)
		}
		if i, ok := nodeIdx[o]; ok {
			return i
		}
		return -1
	}
	for _, k := range reads {
		if i := owner(k); i >= 0 {
			readCounts[i]++
		}
	}
	for _, k := range writes {
		if i := owner(k); i >= 0 {
			writeCounts[i]++
		}
	}
	best := score{}
	bestAt := -1
	for i := range active {
		s := score{
			remoteReads: len(reads) - readCounts[i],
			migrations:  len(writes) - writeCounts[i],
			node:        i,
		}
		if bestAt == -1 || s.less(best) {
			best, bestAt = s, i
		}
	}
	return best, bestAt
}

// refRemoteEdges is the one-(transaction,node) remote-edge count (§3.2.2):
// remote reads of order[i] under the current placement plus later in-batch
// reads of its write-set not mastered at x; keys both read and written
// travel with the transaction and are excluded from the first term.
func refRemoteEdges(p *Prescient, i int, x tx.NodeID, order []*tx.Request, masters []tx.NodeID, overlay map[tx.Key]tx.NodeID) int {
	ti := order[i]
	writes := ti.WriteSet()
	edges := 0
	for _, k := range ti.ReadSet() {
		if tx.ContainsKey(writes, k) {
			continue
		}
		o, ok := overlay[k]
		if !ok {
			o = p.pl.Owner(k)
		}
		if o != x {
			edges++
		}
	}
	for j := i + 1; j < len(order); j++ {
		if masters[j] == x {
			continue
		}
		for _, k := range order[j].ReadSet() {
			if tx.ContainsKey(writes, k) {
				edges++
			}
		}
	}
	return edges
}

// refCommitRoute is the per-route-allocating final replay.
func refCommitRoute(p *Prescient, r *tx.Request, master tx.NodeID) *router.Route {
	access := r.AccessSet()
	owners := make(router.Owners, 0, len(access))
	for _, k := range access {
		owners.Set(k, p.pl.Owner(k))
	}
	route := &router.Route{Txn: r, Mode: router.SingleMaster, Master: master}

	var evicted []fusion.Entry
	for _, k := range r.WriteSet() {
		if !tx.ContainsKey(r.ReadSet(), k) && owners.Get(k) == p.pl.Home(k) && owners.Get(k) != master {
			if _, tracked := p.pl.Fusion.Get(k); !tracked {
				route.WriteBack = append(route.WriteBack, k)
				continue
			}
		}
		if o := owners.Get(k); o != master {
			route.Migrations = append(route.Migrations, router.Migration{Key: k, From: o, To: master})
		}
		if p.pl.Home(k) == master {
			p.pl.Fusion.Delete(k)
		} else {
			evicted = append(evicted, p.pl.Fusion.Put(k, master)...)
		}
	}
	for _, k := range r.ReadSet() {
		if !tx.ContainsKey(r.WriteSet(), k) {
			p.pl.Fusion.Touch(k)
		}
	}
	for _, e := range evicted {
		if _, tracked := p.pl.Fusion.Get(e.Key); tracked {
			continue
		}
		home := p.pl.Home(e.Key)
		if prevOwner, inAccess := owners.Lookup(e.Key); inAccess {
			from := prevOwner
			if tx.ContainsKey(r.WriteSet(), e.Key) {
				from = master
			}
			if from != home {
				route.Migrations = append(route.Migrations, router.Migration{Key: e.Key, From: from, To: home})
			}
			continue
		}
		if e.Owner == home {
			continue
		}
		owners.Set(e.Key, e.Owner)
		route.Migrations = append(route.Migrations, router.Migration{Key: e.Key, From: e.Owner, To: home})
	}
	route.Owners = owners
	return route
}
