package router

import (
	"hermes/internal/tx"
)

// OwnerPair is one (key, owner) entry of a route's owner snapshot.
type OwnerPair struct {
	Key  tx.Key
	Node tx.NodeID
}

// Owners is a route's owner snapshot: every key in the transaction's
// access set (plus eviction keys) mapped to its owner at the route's
// position in the serial order. It replaces the per-route
// map[tx.Key]tx.NodeID so routers can carve a whole batch's snapshots out
// of one slab allocation; entries are kept sorted by key and looked up by
// binary search (access sets are small). The nil value is empty and
// usable.
type Owners []OwnerPair

// Get returns the owner of k, mirroring map-index semantics: the zero
// NodeID (node 0) when k is absent. Callers that must distinguish absence
// (keys a route deliberately skipped, §3.3) use Lookup.
func (o Owners) Get(k tx.Key) tx.NodeID {
	n, _ := o.Lookup(k)
	return n
}

// Lookup returns the owner of k and whether the snapshot contains it.
// Absent keys report the zero NodeID, matching the comma-ok map idiom
// this type replaced.
func (o Owners) Lookup(k tx.Key) (tx.NodeID, bool) {
	i := o.search(k)
	if i < len(o) && o[i].Key == k {
		return o[i].Node, true
	}
	return 0, false
}

// Set inserts or updates k's owner, keeping entries sorted by key.
func (o *Owners) Set(k tx.Key, n tx.NodeID) {
	s := *o
	i := s.search(k)
	if i < len(s) && s[i].Key == k {
		s[i].Node = n
		return
	}
	s = append(s, OwnerPair{})
	copy(s[i+1:], s[i:])
	s[i] = OwnerPair{Key: k, Node: n}
	*o = s
}

// search returns the first index whose key is ≥ k.
func (o Owners) search(k tx.Key) int {
	lo, hi := 0, len(o)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ownersOf builds the owner snapshot of keys (sorted, deduplicated — an
// access set) against pl.
func ownersOf(pl *Placement, keys []tx.Key) Owners {
	out := make(Owners, 0, len(keys))
	for _, k := range keys {
		out = append(out, OwnerPair{Key: k, Node: pl.Owner(k)})
	}
	return out
}
