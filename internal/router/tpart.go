package router

import (
	"math"

	"hermes/internal/partition"
	"hermes/internal/tx"
)

// TPart is the transaction-routing-only baseline (§5.2.1, Wu et al.):
// a single-master scheme that routes each transaction, in arrival order,
// to the node owning most of its reads subject to a load threshold — so
// it balances load like Hermes — and forward-pushes records between
// transactions of the same batch. Because the data partitioning is fixed,
// every record a batch moved must be written back to its home partition
// when the batch ends; that write-back traffic is T-Part's structural
// cost relative to Hermes (§5.2.3).
//
// Forward pushing is modelled as a batch-scoped ownership overlay: a
// record written by an in-batch transaction lives at that transaction's
// master until the last in-batch toucher returns it home.
type TPart struct {
	pl    *Placement
	alpha float64
}

// NewTPart returns a T-Part policy over base with the given active nodes
// and load-imbalance tolerance alpha (≥ 0).
func NewTPart(base partition.Partitioner, active []tx.NodeID, alpha float64) *TPart {
	return &TPart{pl: NewPlacement(base, active, nil), alpha: alpha}
}

// Name implements Policy.
func (t *TPart) Name() string { return "t-part" }

// Placement implements Policy.
func (t *TPart) Placement() *Placement { return t.pl }

// RouteUser implements Policy.
func (t *TPart) RouteUser(txns []*tx.Request) []*Route {
	active := t.pl.Active()
	n := len(active)
	if n == 0 {
		return nil
	}
	theta := int(math.Ceil(float64(len(txns)) / float64(n) * (1 + t.alpha)))
	loads := make([]int, n)
	overlay := map[tx.Key]tx.NodeID{} // forward-pushed records: key -> holder
	lastToucher := map[tx.Key]*Route{}
	routes := make([]*Route, 0, len(txns))

	for _, r := range txns {
		access := r.AccessSet()
		counts, _ := ownerHistogram(t.pl, overlay, r.ReadSet(), active)
		// Pick the best-scoring node under the load threshold; if every
		// node is saturated, fall back to the least loaded (keeps the
		// plan feasible; theta's ceiling makes this rare).
		best := -1
		for i := range active {
			if loads[i] >= theta {
				continue
			}
			if best == -1 || counts[i] > counts[best] {
				best = i
			}
		}
		if best == -1 {
			best = 0
			for i := 1; i < n; i++ {
				if loads[i] < loads[best] {
					best = i
				}
			}
		}
		master := active[best]
		loads[best]++

		owners := make(Owners, 0, len(access))
		for _, k := range access {
			if o, ok := overlay[k]; ok {
				owners = append(owners, OwnerPair{Key: k, Node: o})
			} else {
				owners = append(owners, OwnerPair{Key: k, Node: t.pl.Owner(k)})
			}
		}
		route := &Route{Txn: r, Mode: SingleMaster, Master: master, Owners: owners}
		for _, k := range r.WriteSet() {
			// Blind writes (inserts) go straight back to their home
			// partition instead of riding the forward-push overlay; no
			// later transaction reads them within the batch, so pushing
			// them around would just double the migration traffic.
			if _, moved := overlay[k]; !moved && !tx.ContainsKey(r.ReadSet(), k) && owners.Get(k) != master {
				route.WriteBack = append(route.WriteBack, k)
				continue
			}
			if o := owners.Get(k); o != master {
				// The record moves to the master with this transaction
				// (forward pushing); it will be returned home at batch end.
				route.Migrations = append(route.Migrations, Migration{Key: k, From: o, To: master})
			}
			overlay[k] = master
		}
		for _, k := range access {
			if _, moved := overlay[k]; moved {
				lastToucher[k] = route
			}
		}
		routes = append(routes, route)
	}

	// Batch ends: every forward-pushed record returns to its home
	// partition, attached to the last transaction that touched it.
	// Iterate routes (deterministic order), not the overlay map.
	for _, route := range routes {
		for _, k := range route.Txn.AccessSet() {
			holder, moved := overlay[k]
			if !moved || lastToucher[k] != route {
				continue
			}
			home := t.pl.Home(k)
			if holder != home {
				route.Migrations = append(route.Migrations, Migration{Key: k, From: holder, To: home})
			}
			delete(overlay, k)
		}
	}
	return routes
}
