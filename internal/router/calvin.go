package router

import (
	"hermes/internal/partition"
	"hermes/internal/tx"
)

// Calvin is the vanilla baseline (§5.2.1): multi-master execution with no
// reordering, no data migration, and placement fixed at the static layout
// (plus any cold-migration overrides applied by an external planner such
// as Clay). A transaction executes on every node owning part of its
// write-set; owners of read-set fragments broadcast them to the writers.
type Calvin struct {
	pl *Placement
}

// NewCalvin returns a Calvin policy over base with the given active nodes.
func NewCalvin(base partition.Partitioner, active []tx.NodeID) *Calvin {
	return &Calvin{pl: NewPlacement(base, active, nil)}
}

// Name implements Policy.
func (c *Calvin) Name() string { return "calvin" }

// Placement implements Policy.
func (c *Calvin) Placement() *Placement { return c.pl }

// RouteUser implements Policy.
func (c *Calvin) RouteUser(txns []*tx.Request) []*Route {
	routes := make([]*Route, 0, len(txns))
	for _, r := range txns {
		owners := ownersOf(c.pl, r.AccessSet())
		var writers []tx.NodeID
		seen := map[tx.NodeID]bool{}
		for _, k := range r.WriteSet() {
			if o := owners.Get(k); !seen[o] {
				seen[o] = true
				writers = append(writers, o)
			}
		}
		if len(writers) == 0 {
			// Read-only transaction: one node (the owner of the first
			// read key, or the first active node) executes and replies.
			w := tx.NoNode
			if rs := r.ReadSet(); len(rs) > 0 {
				w = owners.Get(rs[0])
			} else if a := c.pl.Active(); len(a) > 0 {
				w = a[0]
			}
			writers = []tx.NodeID{w}
		}
		sortNodes(writers)
		routes = append(routes, &Route{
			Txn: r, Mode: MultiMaster, Master: writers[0],
			Writers: writers, Owners: owners,
		})
	}
	return routes
}
