package router

import (
	"testing"

	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/tx"
)

// keysOf builds a request reading rs and writing ws.
func reqRW(id tx.TxnID, rs, ws []tx.Key) *tx.Request {
	return tx.NewRequest(id, &tx.OpProc{Reads: rs, Writes: ws})
}

func active(n int) []tx.NodeID {
	out := make([]tx.NodeID, n)
	for i := range out {
		out[i] = tx.NodeID(i)
	}
	return out
}

func TestPlacementLayering(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2) // 0-49 -> n0, 50-99 -> n1
	fus := fusion.New(10, fusion.LRU)
	pl := NewPlacement(base, active(2), fus)
	k := tx.MakeKey(0, 10)
	if pl.Owner(k) != 0 || pl.Home(k) != 0 {
		t.Fatal("base layer wrong")
	}
	pl.SetHome(k, 1)
	if pl.Owner(k) != 1 || pl.Home(k) != 1 {
		t.Fatal("override layer not consulted")
	}
	fus.Put(k, 0)
	if pl.Owner(k) != 0 {
		t.Fatal("fusion layer not consulted first")
	}
	if pl.Home(k) != 1 {
		t.Fatal("Home must ignore the fusion layer")
	}
}

func TestPlacementActiveSet(t *testing.T) {
	pl := NewPlacement(partition.NewHash(3), []tx.NodeID{2, 0, 1}, nil)
	a := pl.Active()
	if len(a) != 3 || a[0] != 0 || a[2] != 2 {
		t.Fatalf("Active = %v, want sorted [0 1 2]", a)
	}
	pl.AddNode(5)
	pl.AddNode(5) // idempotent
	if len(pl.Active()) != 4 {
		t.Fatalf("Active after add = %v", pl.Active())
	}
	pl.RemoveNode(1)
	pl.RemoveNode(99) // no-op
	a = pl.Active()
	if len(a) != 3 || a[0] != 0 || a[1] != 2 || a[2] != 5 {
		t.Fatalf("Active after remove = %v", a)
	}
}

func TestCalvinMultiMasterRoute(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 4) // 25 rows per node
	c := NewCalvin(base, active(4))
	k := func(row uint64) tx.Key { return tx.MakeKey(0, row) }
	// Reads span nodes 0,1; writes span nodes 2,3.
	r := reqRW(1, []tx.Key{k(0), k(30)}, []tx.Key{k(60), k(90)})
	routes := c.RouteUser([]*tx.Request{r})
	if len(routes) != 1 {
		t.Fatalf("routes = %d", len(routes))
	}
	rt := routes[0]
	if rt.Mode != MultiMaster {
		t.Fatal("Calvin must be multi-master")
	}
	if len(rt.Writers) != 2 || rt.Writers[0] != 2 || rt.Writers[1] != 3 {
		t.Fatalf("Writers = %v, want [2 3]", rt.Writers)
	}
	if rt.Master != 2 {
		t.Fatalf("Master = %d, want lowest writer 2", rt.Master)
	}
	if len(rt.Migrations) != 0 || len(rt.WriteBack) != 0 {
		t.Fatal("Calvin must not migrate or write back")
	}
	if rt.Owners.Get(k(30)) != 1 {
		t.Fatalf("Owners[k30] = %d", rt.Owners.Get(k(30)))
	}
}

func TestCalvinReadOnlyRoute(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	c := NewCalvin(base, active(2))
	r := reqRW(1, []tx.Key{tx.MakeKey(0, 75)}, nil)
	rt := c.RouteUser([]*tx.Request{r})[0]
	if len(rt.Writers) != 1 || rt.Writers[0] != 1 {
		t.Fatalf("read-only route Writers = %v, want [1]", rt.Writers)
	}
}

func TestGStoreMajorityAndWriteBack(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	g := NewGStore(base, active(2))
	k := func(row uint64) tx.Key { return tx.MakeKey(0, row) }
	// Two keys on node 0, one on node 1; majority -> node 0.
	r := reqRW(1, []tx.Key{k(1), k(2), k(60)}, []tx.Key{k(60)})
	rt := g.RouteUser([]*tx.Request{r})[0]
	if rt.Mode != SingleMaster || rt.Master != 0 {
		t.Fatalf("Master = %d, want 0", rt.Master)
	}
	if len(rt.WriteBack) != 1 || rt.WriteBack[0] != k(60) {
		t.Fatalf("WriteBack = %v, want [k60]", rt.WriteBack)
	}
	if len(rt.Migrations) != 0 {
		t.Fatal("G-Store must not migrate ownership")
	}
	// A second identical transaction pays the same cost again: placement
	// unchanged.
	rt2 := g.RouteUser([]*tx.Request{reqRW(2, []tx.Key{k(1), k(2), k(60)}, []tx.Key{k(60)})})[0]
	if len(rt2.WriteBack) != 1 {
		t.Fatal("G-Store placement must be static across transactions")
	}
}

func TestLEAPMigratesAndRemembers(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	l := NewLEAP(base, active(2))
	k := func(row uint64) tx.Key { return tx.MakeKey(0, row) }
	r1 := reqRW(1, []tx.Key{k(1), k(2), k(60)}, []tx.Key{k(60)})
	rt1 := l.RouteUser([]*tx.Request{r1})[0]
	if rt1.Master != 0 {
		t.Fatalf("Master = %d, want 0 (majority)", rt1.Master)
	}
	if len(rt1.Migrations) != 1 || rt1.Migrations[0].Key != k(60) || rt1.Migrations[0].To != 0 {
		t.Fatalf("Migrations = %v", rt1.Migrations)
	}
	// The next transaction touching k60 finds it on node 0: no migration.
	r2 := reqRW(2, []tx.Key{k(60)}, []tx.Key{k(60)})
	rt2 := l.RouteUser([]*tx.Request{r2})[0]
	if rt2.Master != 0 || len(rt2.Migrations) != 0 {
		t.Fatalf("temporal locality not exploited: master=%d migs=%v", rt2.Master, rt2.Migrations)
	}
}

func TestLEAPDropsRedundantOwnershipEntries(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	l := NewLEAP(base, active(2))
	k := tx.MakeKey(0, 60) // home = node 1
	// Move k to node 0, then back home to node 1.
	l.RouteUser([]*tx.Request{reqRW(1, []tx.Key{tx.MakeKey(0, 1), tx.MakeKey(0, 2), k}, []tx.Key{k})})
	if l.pl.Fusion.Len() != 1 {
		t.Fatalf("ownership entries = %d, want 1", l.pl.Fusion.Len())
	}
	l.RouteUser([]*tx.Request{reqRW(2, []tx.Key{tx.MakeKey(0, 61), tx.MakeKey(0, 62), k}, []tx.Key{k})})
	if l.pl.Fusion.Len() != 0 {
		t.Fatalf("redundant entry kept: %d", l.pl.Fusion.Len())
	}
}

func TestTPartBalancesLoad(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	tp := NewTPart(base, active(2), 0)
	// Six transactions all hitting node 0's range: T-Part must not send
	// them all to node 0 (theta = 3).
	var txns []*tx.Request
	for i := 0; i < 6; i++ {
		txns = append(txns, reqRW(tx.TxnID(i+1), []tx.Key{tx.MakeKey(0, uint64(i))}, []tx.Key{tx.MakeKey(0, uint64(i))}))
	}
	routes := tp.RouteUser(txns)
	counts := map[tx.NodeID]int{}
	for _, rt := range routes {
		counts[rt.Master]++
	}
	if counts[0] > 3 {
		t.Fatalf("node 0 got %d of 6 transactions; theta violated", counts[0])
	}
}

func TestTPartReturnsRecordsHome(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	tp := NewTPart(base, active(2), 1.0) // generous theta: routing by locality
	k := tx.MakeKey(0, 10)               // home node 0
	// One transaction reads k plus a node-1-heavy set, so master is 1 and
	// k is forward-pushed there; the batch must return k to node 0.
	r := reqRW(1, []tx.Key{k, tx.MakeKey(0, 60), tx.MakeKey(0, 70)}, []tx.Key{k})
	routes := tp.RouteUser([]*tx.Request{r})
	rt := routes[0]
	if rt.Master != 1 {
		t.Fatalf("Master = %d, want 1", rt.Master)
	}
	// Expect migration in (0->1) and write-back out (1->0).
	if len(rt.Migrations) != 2 {
		t.Fatalf("Migrations = %v, want in+out", rt.Migrations)
	}
	if rt.Migrations[0].From != 0 || rt.Migrations[0].To != 1 ||
		rt.Migrations[1].From != 1 || rt.Migrations[1].To != 0 {
		t.Fatalf("Migrations = %v", rt.Migrations)
	}
	// Next batch: placement is back to static, so the same transaction
	// migrates again (T-Part cannot retain placement across batches).
	routes2 := tp.RouteUser([]*tx.Request{reqRW(2, []tx.Key{k, tx.MakeKey(0, 60), tx.MakeKey(0, 70)}, []tx.Key{k})})
	if len(routes2[0].Migrations) == 0 {
		t.Fatal("T-Part unexpectedly retained cross-batch placement")
	}
}

func TestTPartForwardPushWithinBatch(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	tp := NewTPart(base, active(2), 1.0)
	k := tx.MakeKey(0, 10)
	other1 := tx.MakeKey(0, 60)
	// T1 writes k at master 1 (pulled from 0); T2 reads k — the overlay
	// must report k at node 1, so T2 routed to 1 sees it locally.
	t1 := reqRW(1, []tx.Key{k, other1, tx.MakeKey(0, 70)}, []tx.Key{k})
	t2 := reqRW(2, []tx.Key{k}, nil)
	routes := tp.RouteUser([]*tx.Request{t1, t2})
	if routes[1].Master != 1 {
		t.Fatalf("T2 master = %d, want 1 (forward push)", routes[1].Master)
	}
	if routes[1].Owners.Get(k) != 1 {
		t.Fatalf("T2 owner of k = %d, want 1", routes[1].Owners.Get(k))
	}
	// The write-back must be attached to T2 (last toucher), not T1.
	if len(routes[0].Migrations) != 1 {
		t.Fatalf("T1 migrations = %v, want only inbound", routes[0].Migrations)
	}
	if len(routes[1].Migrations) != 1 || routes[1].Migrations[0].To != 0 {
		t.Fatalf("T2 migrations = %v, want write-back to 0", routes[1].Migrations)
	}
}

func TestBuildPlanSegmentsAroundControlTxns(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	c := NewCalvin(base, active(2))
	k := tx.MakeKey(0, 10)
	batch := &tx.Batch{Seq: 3, Txns: []*tx.Request{
		reqRW(1, []tx.Key{k}, []tx.Key{k}),
		tx.NewRequest(2, &tx.MigrationProc{Keys: []tx.Key{k}, To: 1}),
		reqRW(3, []tx.Key{k}, []tx.Key{k}),
	}}
	plan := BuildPlan(c, batch)
	if plan.Seq != 3 || len(plan.Routes) != 3 {
		t.Fatalf("plan = seq %d, %d routes", plan.Seq, len(plan.Routes))
	}
	// Before migration k is owned by node 0; after, by node 1.
	if plan.Routes[0].Owners.Get(k) != 0 {
		t.Fatalf("pre-migration owner = %d", plan.Routes[0].Owners.Get(k))
	}
	mig := plan.Routes[1]
	if mig.Mode != SingleMaster || len(mig.Migrations) != 1 || mig.Migrations[0].From != 0 || mig.Migrations[0].To != 1 {
		t.Fatalf("migration route = %+v", mig)
	}
	if plan.Routes[2].Owners.Get(k) != 1 {
		t.Fatalf("post-migration owner = %d", plan.Routes[2].Owners.Get(k))
	}
}

func TestBuildPlanColdMigrationSkipsHotKeys(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	fus := fusion.New(10, fusion.LRU)
	pl := NewPlacement(base, active(2), fus)
	pol := &stubPolicy{pl: pl}
	hot := tx.MakeKey(0, 5)
	cold := tx.MakeKey(0, 6)
	fus.Put(hot, 0)
	batch := &tx.Batch{Txns: []*tx.Request{
		tx.NewRequest(1, &tx.MigrationProc{Keys: []tx.Key{hot, cold}, To: 1}),
	}}
	plan := BuildPlan(pol, batch)
	mig := plan.Routes[0]
	if len(mig.Migrations) != 1 || mig.Migrations[0].Key != cold {
		t.Fatalf("Migrations = %v, want only the cold key", mig.Migrations)
	}
	// The hot key's home moved anyway, so its eventual eviction lands on
	// the new node.
	if pl.Home(hot) != 1 {
		t.Fatalf("hot key home = %d, want 1", pl.Home(hot))
	}
}

func TestBuildPlanProvisionAddRemove(t *testing.T) {
	base := partition.NewUniformRange(0, 100, 2)
	fus := fusion.New(10, fusion.LRU)
	pl := NewPlacement(base, active(2), fus)
	pol := &stubPolicy{pl: pl}
	k := tx.MakeKey(0, 60) // home node 1
	fus.Put(k, 1)          // hot entry on node 1 (also its home here? no: home(60)=1)
	fus.Put(tx.MakeKey(0, 10), 1)

	batch := &tx.Batch{Txns: []*tx.Request{
		tx.NewRequest(1, &tx.ProvisionProc{Add: []tx.NodeID{2}}),
	}}
	BuildPlan(pol, batch)
	if len(pl.Active()) != 3 {
		t.Fatalf("Active = %v after add", pl.Active())
	}

	batch2 := &tx.Batch{Txns: []*tx.Request{
		tx.NewRequest(2, &tx.ProvisionProc{Remove: []tx.NodeID{1}}),
	}}
	plan := BuildPlan(pol, batch2)
	if len(pl.Active()) != 2 {
		t.Fatalf("Active = %v after remove", pl.Active())
	}
	rt := plan.Routes[0]
	if rt.Mode != Provision {
		t.Fatal("provision route mode wrong")
	}
	// Both fusion entries lived on node 1 and must migrate off it.
	if len(rt.Migrations) != 2 {
		t.Fatalf("Migrations = %v, want 2 off the removed node", rt.Migrations)
	}
	for _, m := range rt.Migrations {
		if m.From != 1 || m.To == 1 {
			t.Fatalf("bad eviction migration %v", m)
		}
	}
	if fus.Len() != 0 {
		t.Fatalf("fusion still tracks %d entries on a dead node", fus.Len())
	}
}

func TestRouteParticipants(t *testing.T) {
	rt := &Route{
		Mode:   SingleMaster,
		Master: 2,
		Owners: Owners{{Key: 1, Node: 0}, {Key: 2, Node: 2}},
		Migrations: []Migration{
			{Key: 1, From: 0, To: 2},
			{Key: 9, From: 3, To: 1},
		},
	}
	got := rt.Participants()
	want := []tx.NodeID{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Participants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Participants = %v, want %v", got, want)
		}
	}
}

type stubPolicy struct{ pl *Placement }

func (s *stubPolicy) Name() string          { return "stub" }
func (s *stubPolicy) Placement() *Placement { return s.pl }
func (s *stubPolicy) RouteUser(txns []*tx.Request) []*Route {
	out := make([]*Route, len(txns))
	for i, r := range txns {
		out[i] = &Route{Txn: r, Mode: SingleMaster, Master: s.pl.Active()[0], Owners: ownersOf(s.pl, r.AccessSet())}
	}
	return out
}
