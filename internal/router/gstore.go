package router

import (
	"hermes/internal/partition"
	"hermes/internal/tx"
)

// GStore is the G-Store+ look-present baseline (§5.2.1): each transaction
// is routed to the single node owning the majority of its accessed
// records; that master pulls the remaining records, executes, and writes
// the remotely owned written records back to their home partitions after
// commit. Ownership never changes, so consecutive transactions on the
// same keys pay the pull/write-back cost again and again.
type GStore struct {
	pl *Placement
}

// NewGStore returns a G-Store+ policy over base with the given active
// nodes.
func NewGStore(base partition.Partitioner, active []tx.NodeID) *GStore {
	return &GStore{pl: NewPlacement(base, active, nil)}
}

// Name implements Policy.
func (g *GStore) Name() string { return "g-store" }

// Placement implements Policy.
func (g *GStore) Placement() *Placement { return g.pl }

// RouteUser implements Policy.
func (g *GStore) RouteUser(txns []*tx.Request) []*Route {
	routes := make([]*Route, 0, len(txns))
	active := g.pl.Active()
	for _, r := range txns {
		access := r.AccessSet()
		owners := ownersOf(g.pl, access)
		_, best := ownerHistogram(g.pl, nil, access, active)
		master := active[best]
		var writeBack []tx.Key
		for _, k := range r.WriteSet() {
			if owners.Get(k) != master {
				writeBack = append(writeBack, k)
			}
		}
		routes = append(routes, &Route{
			Txn: r, Mode: SingleMaster, Master: master,
			Owners: owners, WriteBack: writeBack,
		})
	}
	return routes
}
