package router

import (
	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/tx"
)

// LEAP is the look-present baseline of Lin et al. (§5.2.1): like G-Store
// it routes each transaction to the owner of the majority of its records,
// but instead of writing remote records back it *migrates* them to the
// master, so later transactions with temporal locality find them local.
// LEAP considers neither load balance nor future transactions; under
// heavy distributed workloads its ownership map funnels all active
// records onto one node (the bottleneck the paper observes), and
// consecutive conflicting transactions on different masters ping-pong
// records between nodes.
type LEAP struct {
	pl *Placement
}

// NewLEAP returns a LEAP policy over base with the given active nodes.
// Its ownership map is an unbounded fusion table (the paper notes LEAP
// has no size control).
func NewLEAP(base partition.Partitioner, active []tx.NodeID) *LEAP {
	return &LEAP{pl: NewPlacement(base, active, fusion.New(0, fusion.FIFO))}
}

// Name implements Policy.
func (l *LEAP) Name() string { return "leap" }

// Placement implements Policy.
func (l *LEAP) Placement() *Placement { return l.pl }

// RouteUser implements Policy.
func (l *LEAP) RouteUser(txns []*tx.Request) []*Route {
	routes := make([]*Route, 0, len(txns))
	active := l.pl.Active()
	for _, r := range txns {
		access := r.AccessSet()
		owners := ownersOf(l.pl, access)
		_, best := ownerHistogram(l.pl, nil, access, active)
		master := active[best]
		route := &Route{Txn: r, Mode: SingleMaster, Master: master, Owners: owners}
		for _, k := range access {
			if o := owners.Get(k); o != master {
				route.Migrations = append(route.Migrations, Migration{Key: k, From: o, To: master})
			}
			// Track ownership at the master; entries whose owner matches
			// the cold home are redundant and dropped to keep the map
			// minimal.
			if l.pl.Home(k) == master {
				l.pl.Fusion.Delete(k)
			} else {
				l.pl.Fusion.Put(k, master)
			}
		}
		routes = append(routes, route)
	}
	return routes
}
