package router

import (
	"hermes/internal/tx"
)

// BuildPlan routes one totally ordered batch under policy p. Ordinary user
// transactions are grouped into maximal contiguous segments handed to
// p.RouteUser (which may reorder within a segment); the control
// transactions of §3.3 — provisioning changes and cold-migration chunks —
// act as segment barriers and are routed here, so their placement effects
// land at exactly their position in the serial order on every replica.
func BuildPlan(p Policy, b *tx.Batch) *Plan {
	plan := &Plan{Seq: b.Seq}
	var seg []*tx.Request
	flush := func() {
		if len(seg) > 0 {
			plan.Routes = append(plan.Routes, p.RouteUser(seg)...)
			seg = nil
		}
	}
	for _, r := range b.Txns {
		switch proc := r.Proc.(type) {
		case *tx.ProvisionProc:
			flush()
			plan.Routes = append(plan.Routes, routeProvision(p.Placement(), r, proc))
		case *tx.MigrationProc:
			flush()
			plan.Routes = append(plan.Routes, routeColdMigration(p.Placement(), r, proc))
		default:
			seg = append(seg, r)
		}
	}
	flush()
	return plan
}

func routeProvision(pl *Placement, r *tx.Request, proc *tx.ProvisionProc) *Route {
	for _, n := range proc.Add {
		pl.AddNode(n)
	}
	route := &Route{Txn: r, Mode: Provision, Master: tx.NoNode}
	for _, n := range proc.Remove {
		// Re-home fusion entries living on the removed node: their
		// records migrate back to their cold homes alongside this control
		// transaction, so no later transaction routes to a dead node.
		if pl.Fusion != nil {
			for _, k := range pl.Fusion.KeysOn(n) {
				home := pl.Home(k)
				if home == n {
					// Cold home is also leaving; fall back to the first
					// remaining active node deterministically.
					home = firstOther(pl.Active(), n)
					pl.SetHome(k, home)
				}
				route.Owners.Set(k, n)
				route.Migrations = append(route.Migrations, Migration{Key: k, From: n, To: home})
				pl.Fusion.Delete(k)
			}
		}
		pl.RemoveNode(n)
	}
	return route
}

func firstOther(active []tx.NodeID, not tx.NodeID) tx.NodeID {
	for _, a := range active {
		if a != not {
			return a
		}
	}
	return tx.NoNode
}

func routeColdMigration(pl *Placement, r *tx.Request, proc *tx.MigrationProc) *Route {
	route := &Route{
		Txn: r, Mode: SingleMaster, Master: proc.To,
		Owners: make(Owners, 0, len(proc.Keys)),
	}
	for _, k := range tx.NormalizeKeys(append([]tx.Key(nil), proc.Keys...)) {
		// §3.3: cold migration skips records tracked by the fusion table —
		// they are hot and move via data fusion instead, so the chunk
		// transaction cannot conflict with them.
		if pl.Fusion != nil {
			if _, hot := pl.Fusion.Get(k); hot {
				pl.SetHome(k, proc.To) // future evictions land at the new home
				continue
			}
		}
		from := pl.Owner(k)
		pl.SetHome(k, proc.To)
		if from == proc.To {
			continue
		}
		route.Owners.Set(k, from)
		route.Migrations = append(route.Migrations, Migration{Key: k, From: from, To: proc.To})
	}
	return route
}

// ownerHistogram counts, for each active node, how many of keys it
// currently owns (through overlay if the key is present there). It
// returns the per-node counts aligned with active plus the arg-max.
// Ties are broken toward the owner of the earliest key in keys — not the
// lowest node id, which would deterministically funnel every split
// decision onto node 0 and turn it into an artificial hot spot.
func ownerHistogram(pl *Placement, overlay map[tx.Key]tx.NodeID, keys []tx.Key, active []tx.NodeID) (counts []int, best int) {
	counts = make([]int, len(active))
	firstKey := make([]int, len(active)) // position of first owned key
	for i := range firstKey {
		firstKey[i] = len(keys) + 1
	}
	idx := make(map[tx.NodeID]int, len(active))
	for i, n := range active {
		idx[n] = i
	}
	for pos, k := range keys {
		o, ok := overlay[k]
		if !ok {
			o = pl.Owner(k)
		}
		if i, ok := idx[o]; ok {
			counts[i]++
			if pos < firstKey[i] {
				firstKey[i] = pos
			}
		}
	}
	best = 0
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[best] ||
			(counts[i] == counts[best] && firstKey[i] < firstKey[best]) {
			best = i
		}
	}
	return counts, best
}

