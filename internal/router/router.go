// Package router defines the transaction-routing abstraction shared by
// Hermes and every baseline the paper evaluates (§5.2.1), plus the
// placement state they route against.
//
// A routing policy runs inside every node's scheduler as an independent
// replica: given the identical totally ordered batch stream, each replica
// must produce the identical plan and evolve identical placement state —
// no replica ever communicates with another. All policies here are pure
// functions of their input stream, which the integration tests verify by
// fingerprint comparison.
package router

import (
	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/tx"
)

// Mode says how a transaction executes.
type Mode uint8

const (
	// SingleMaster routes the transaction to one master node; owners of
	// remote records push them to the master (G-Store+, LEAP, T-Part,
	// Hermes, and migration transactions).
	SingleMaster Mode = iota
	// MultiMaster executes the transaction on every node that owns part
	// of its write-set, with participants broadcasting their local reads
	// (vanilla Calvin).
	MultiMaster
	// Provision marks a membership-change control transaction; it touches
	// no records.
	Provision
)

// Migration is one record ownership move performed alongside a
// transaction (data fusion, fusion-table eviction, or a cold chunk).
type Migration struct {
	Key      tx.Key
	From, To tx.NodeID
}

// Route is the complete execution recipe for one transaction, produced
// identically by every scheduler replica.
type Route struct {
	Txn    *tx.Request
	Mode   Mode
	Master tx.NodeID
	// Writers is the set of executing nodes under MultiMaster (owners of
	// write-set fragments), ascending.
	Writers []tx.NodeID
	// Owners maps every key in the transaction's access set (plus
	// eviction keys) to its owner at this transaction's position in the
	// serial order.
	Owners Owners
	// Migrations are ownership moves executed with this transaction:
	// the record leaves storage at From and enters storage at To.
	Migrations []Migration
	// WriteBack lists written keys whose records must be sent back to
	// Owners[k] after execution because the policy does not migrate
	// ownership (G-Store+, T-Part).
	WriteBack []tx.Key
}

// Participants returns the sorted set of nodes involved in the route:
// the master/writers plus every owner of an accessed key and every
// migration endpoint.
func (r *Route) Participants() []tx.NodeID {
	seen := map[tx.NodeID]bool{}
	add := func(n tx.NodeID) {
		if n != tx.NoNode {
			seen[n] = true
		}
	}
	if r.Mode == SingleMaster {
		add(r.Master)
	}
	for _, w := range r.Writers {
		add(w)
	}
	for _, o := range r.Owners {
		add(o.Node)
	}
	for _, m := range r.Migrations {
		add(m.From)
		add(m.To)
	}
	out := make([]tx.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	// Sort (small n).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Plan is the routed form of one batch: routes appear in execution order,
// which may be a permutation of the batch (Hermes reorders; the baselines
// do not).
type Plan struct {
	Seq    uint64
	Routes []*Route
}

// Policy is a routing algorithm replica.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Placement exposes the replica's placement state (active nodes,
	// home/override/fusion layers).
	Placement() *Placement
	// RouteUser routes a segment of ordinary user transactions in order,
	// mutating placement state deterministically. Reordering within the
	// segment is allowed.
	RouteUser(txns []*tx.Request) []*Route
}

// Placement is the layered ownership view every policy routes against:
// fusion table (hot overlay, may be nil) → cold override (re-homed by cold
// migration) → static base partitioner. It also tracks the active node
// set, which provisioning transactions mutate.
type Placement struct {
	Base     partition.Partitioner
	Override map[tx.Key]tx.NodeID
	Fusion   *fusion.Table
	actives  []tx.NodeID
}

// NewPlacement builds a placement over base with the given active nodes
// (copied, kept sorted) and an optional fusion overlay.
func NewPlacement(base partition.Partitioner, active []tx.NodeID, fus *fusion.Table) *Placement {
	p := &Placement{
		Base:     base,
		Override: make(map[tx.Key]tx.NodeID),
		Fusion:   fus,
	}
	p.actives = append(p.actives, active...)
	sortNodes(p.actives)
	return p
}

func sortNodes(ns []tx.NodeID) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// Owner returns the current owner of k (fusion → override → base).
func (p *Placement) Owner(k tx.Key) tx.NodeID {
	if p.Fusion != nil {
		if n, ok := p.Fusion.Get(k); ok {
			return n
		}
	}
	return p.Home(k)
}

// Home returns the cold home of k (override → base) — where an evicted
// record migrates back to.
func (p *Placement) Home(k tx.Key) tx.NodeID {
	if n, ok := p.Override[k]; ok {
		return n
	}
	return p.Base.Home(k)
}

// Active returns the active node list (ascending). Callers must not
// mutate it.
func (p *Placement) Active() []tx.NodeID { return p.actives }

// AddNode marks n active; no-op if already active.
func (p *Placement) AddNode(n tx.NodeID) {
	for _, a := range p.actives {
		if a == n {
			return
		}
	}
	p.actives = append(p.actives, n)
	sortNodes(p.actives)
}

// RemoveNode marks n inactive; no-op if not active.
func (p *Placement) RemoveNode(n tx.NodeID) {
	for i, a := range p.actives {
		if a == n {
			p.actives = append(p.actives[:i], p.actives[i+1:]...)
			return
		}
	}
}

// SetHome re-homes k to n (cold migration result).
func (p *Placement) SetHome(k tx.Key, n tx.NodeID) { p.Override[k] = n }

// PlacementState is a self-contained copy of the mutable placement layers
// (everything except the static base partitioner). Checkpoints carry one
// per cluster: because every scheduler replica evolves identical placement
// state from the identical batch stream, a single snapshot restores all
// replicas.
type PlacementState struct {
	Override map[tx.Key]tx.NodeID
	Active   []tx.NodeID
	// Fusion is nil when the policy routes without a hot overlay.
	Fusion *fusion.Table
}

// Snapshot deep-copies the mutable placement layers.
func (p *Placement) Snapshot() *PlacementState {
	s := &PlacementState{
		Override: make(map[tx.Key]tx.NodeID, len(p.Override)),
		Active:   append([]tx.NodeID(nil), p.actives...),
	}
	for k, n := range p.Override {
		s.Override[k] = n
	}
	if p.Fusion != nil {
		s.Fusion = p.Fusion.Clone()
	}
	return s
}

// Restore overwrites the mutable layers in place from s, deep-copying so
// several replicas can restore from the same snapshot independently. The
// Placement pointer itself is preserved: policies cache it.
func (p *Placement) Restore(s *PlacementState) {
	p.Override = make(map[tx.Key]tx.NodeID, len(s.Override))
	for k, n := range s.Override {
		p.Override[k] = n
	}
	p.actives = append(p.actives[:0], s.Active...)
	if s.Fusion != nil {
		p.Fusion = s.Fusion.Clone()
	}
}
