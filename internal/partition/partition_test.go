package partition

import (
	"testing"
	"testing/quick"

	"hermes/internal/tx"
)

func TestUniformRangeEvenSplit(t *testing.T) {
	r := NewUniformRange(0, 100, 4)
	counts := make([]int, 4)
	for i := uint64(0); i < 100; i++ {
		n := r.Home(tx.MakeKey(0, i))
		if n < 0 || int(n) >= 4 {
			t.Fatalf("Home out of range: %d", n)
		}
		counts[n]++
	}
	for i, c := range counts {
		if c != 25 {
			t.Errorf("partition %d got %d keys, want 25", i, c)
		}
	}
	// Contiguity: key 0 on node 0, key 99 on node 3.
	if r.Home(tx.MakeKey(0, 0)) != 0 || r.Home(tx.MakeKey(0, 99)) != 3 {
		t.Error("range ends on wrong partitions")
	}
}

func TestUniformRangeTotalProperty(t *testing.T) {
	f := func(row uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := NewUniformRange(3, 1000, n)
		home := r.Home(tx.MakeKey(3, row%2000)) // includes out-of-range rows
		return home >= 0 && int(home) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0 nodes")
		}
	}()
	NewUniformRange(0, 100, 0)
}

func TestRangeBoundaries(t *testing.T) {
	r, err := NewRangeBoundaries([]tx.Key{0, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes() != 3 {
		t.Fatalf("Nodes = %d, want 3", r.Nodes())
	}
	cases := []struct {
		k    tx.Key
		want tx.NodeID
	}{
		{0, 0}, {9, 0}, {10, 1}, {99, 1}, {100, 2}, {999, 2},
		{5000, 2}, // past the end clamps to last
	}
	for _, c := range cases {
		if got := r.Home(c.k); got != c.want {
			t.Errorf("Home(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestRangeBoundariesErrors(t *testing.T) {
	if _, err := NewRangeBoundaries([]tx.Key{5}); err == nil {
		t.Error("single boundary accepted")
	}
	if _, err := NewRangeBoundaries([]tx.Key{5, 5}); err == nil {
		t.Error("non-increasing boundaries accepted")
	}
	if _, err := NewRangeBoundaries([]tx.Key{5, 4}); err == nil {
		t.Error("decreasing boundaries accepted")
	}
}

func TestHashSpread(t *testing.T) {
	h := NewHash(8)
	counts := make([]int, 8)
	for i := uint64(0); i < 8000; i++ {
		n := h.Home(tx.MakeKey(0, i))
		if n < 0 || int(n) >= 8 {
			t.Fatalf("Home out of range: %d", n)
		}
		counts[n]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("hash partition %d got %d of 8000; poor spread", i, c)
		}
	}
}

func TestHashSeparatesSequentialKeys(t *testing.T) {
	// Hash partitioning must scatter adjacent keys (that's its role in
	// the Fig. 13 experiment); check a decent fraction of consecutive
	// pairs land on different partitions.
	h := NewHash(4)
	diff := 0
	for i := uint64(0); i < 1000; i++ {
		if h.Home(tx.MakeKey(0, i)) != h.Home(tx.MakeKey(0, i+1)) {
			diff++
		}
	}
	if diff < 500 {
		t.Errorf("only %d/1000 consecutive pairs split across partitions", diff)
	}
}

func TestHashDeterministic(t *testing.T) {
	f := func(k uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		a, b := NewHash(n), NewHash(n)
		return a.Home(tx.Key(k)) == b.Home(tx.Key(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuncPartitioner(t *testing.T) {
	// TPC-C style: partition by "warehouse" = row/100.
	p := &Func{N: 5, F: func(k tx.Key) tx.NodeID { return tx.NodeID(k.Row() / 100 % 5) }}
	if p.Nodes() != 5 {
		t.Fatalf("Nodes = %d", p.Nodes())
	}
	if p.Home(tx.MakeKey(0, 250)) != 2 {
		t.Errorf("Home(row 250) = %d, want 2", p.Home(tx.MakeKey(0, 250)))
	}
}

func TestLookupOverridesAndFallsBack(t *testing.T) {
	base := NewUniformRange(0, 100, 2) // rows 0-49 on node 0, 50-99 on node 1
	l := NewLookup(map[tx.Key]tx.NodeID{tx.MakeKey(0, 10): 1}, base)
	if got := l.Home(tx.MakeKey(0, 10)); got != 1 {
		t.Errorf("override ignored: Home = %d", got)
	}
	if got := l.Home(tx.MakeKey(0, 11)); got != 0 {
		t.Errorf("fallback wrong: Home = %d", got)
	}
	if l.Nodes() != 2 || l.Mapped() != 1 {
		t.Errorf("Nodes=%d Mapped=%d", l.Nodes(), l.Mapped())
	}
}

func TestLookupNilTable(t *testing.T) {
	l := NewLookup(nil, NewHash(3))
	if got := l.Home(42); got < 0 || int(got) >= 3 {
		t.Errorf("Home = %d out of range", got)
	}
}

func BenchmarkRangeHome(b *testing.B) {
	r := NewUniformRange(0, 1<<20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Home(tx.Key(i & (1<<20 - 1)))
	}
}

func BenchmarkHashHome(b *testing.B) {
	h := NewHash(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Home(tx.Key(i))
	}
}
