// Package partition implements the static data-partitioning schemes the
// paper evaluates as initial layouts (§5.3.3): range partitioning (uniform
// and explicitly skewed), hash partitioning, arbitrary function-based
// partitioning (e.g. TPC-C's by-warehouse layout), and lookup-table
// partitioning (the output format of Schism).
//
// A Partitioner gives each key its *home* partition — where the record was
// loaded initially and where cold data lives. The current owner of a hot
// record may differ; that dynamic overlay is the fusion table (package
// fusion), which falls back to the home partitioner for keys it does not
// track.
package partition

import (
	"fmt"
	"sort"

	"hermes/internal/tx"
)

// Partitioner maps keys to home partitions. Implementations must be pure:
// the same key always maps to the same partition, because every node
// evaluates the mapping independently.
type Partitioner interface {
	// Home returns the home partition of k.
	Home(k tx.Key) tx.NodeID
	// Nodes returns the number of partitions.
	Nodes() int
}

// Range partitions a contiguous key space by boundaries: partition i owns
// keys in [bounds[i], bounds[i+1]).
type Range struct {
	bounds []tx.Key // len = nodes+1
}

// NewUniformRange splits rows of table evenly across nodes, the paper's
// "naive static range partitioning". It panics on zero nodes or rows.
func NewUniformRange(table uint8, rows uint64, nodes int) *Range {
	if nodes <= 0 || rows == 0 {
		panic("partition: nodes and rows must be positive")
	}
	bounds := make([]tx.Key, nodes+1)
	for i := 0; i <= nodes; i++ {
		bounds[i] = tx.MakeKey(table, rows*uint64(i)/uint64(nodes))
	}
	return &Range{bounds: bounds}
}

// NewRangeBoundaries builds a range partitioner from explicit boundaries;
// len(bounds) must be nodes+1 and strictly increasing. Used for skewed
// initial layouts.
func NewRangeBoundaries(bounds []tx.Key) (*Range, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("partition: need at least 2 boundaries, got %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("partition: boundaries not strictly increasing at %d", i)
		}
	}
	return &Range{bounds: append([]tx.Key(nil), bounds...)}, nil
}

// Home implements Partitioner. Keys below the first boundary map to
// partition 0 and keys at or above the last to the last partition, so the
// mapping is total even for out-of-range keys.
func (r *Range) Home(k tx.Key) tx.NodeID {
	// First i with bounds[i+1] > k.
	i := sort.Search(len(r.bounds)-2, func(i int) bool { return r.bounds[i+1] > k })
	return tx.NodeID(i)
}

// Nodes implements Partitioner.
func (r *Range) Nodes() int { return len(r.bounds) - 1 }

// Hash partitions keys by a multiplicative hash. It creates distributed
// transactions for any co-accessed key group, which is exactly why the
// paper uses it as an adversarial initial layout.
type Hash struct {
	n int
}

// NewHash returns a hash partitioner over n nodes; panics if n ≤ 0.
func NewHash(n int) *Hash {
	if n <= 0 {
		panic("partition: nodes must be positive")
	}
	return &Hash{n: n}
}

// Home implements Partitioner.
func (h *Hash) Home(k tx.Key) tx.NodeID {
	v := uint64(k) * 0x9E3779B97F4A7C15
	v ^= v >> 32
	return tx.NodeID(v % uint64(h.n))
}

// Nodes implements Partitioner.
func (h *Hash) Nodes() int { return h.n }

// Func adapts an arbitrary pure function to the Partitioner interface.
type Func struct {
	N int
	F func(k tx.Key) tx.NodeID
}

// Home implements Partitioner.
func (f *Func) Home(k tx.Key) tx.NodeID { return f.F(k) }

// Nodes implements Partitioner.
func (f *Func) Nodes() int { return f.N }

// Lookup is a fine-grained lookup-table partitioner with a fallback for
// untracked keys — the representation Schism plans are loaded into, and
// also how re-partitioning output (Clay plans) is applied as a new "home".
type Lookup struct {
	table    map[tx.Key]tx.NodeID
	fallback Partitioner
}

// NewLookup returns a lookup partitioner that consults table first and
// falls back to base for unmapped keys.
func NewLookup(table map[tx.Key]tx.NodeID, base Partitioner) *Lookup {
	if table == nil {
		table = make(map[tx.Key]tx.NodeID)
	}
	return &Lookup{table: table, fallback: base}
}

// Home implements Partitioner.
func (l *Lookup) Home(k tx.Key) tx.NodeID {
	if n, ok := l.table[k]; ok {
		return n
	}
	return l.fallback.Home(k)
}

// Nodes implements Partitioner.
func (l *Lookup) Nodes() int { return l.fallback.Nodes() }

// Mapped reports the number of explicitly mapped keys.
func (l *Lookup) Mapped() int { return len(l.table) }
