package experiments

import (
	"sync"
	"time"

	"hermes/internal/engine"
	"hermes/internal/migration"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// clayCtl is the Clay baseline's external control loop (§5.2.1): it
// observes committed transactions through the engine's commit hook,
// accumulates heat and co-access statistics at range granularity, and —
// when a node is overloaded — generates a clump-based migration plan that
// it executes with Squall-style chunked migration transactions. It keeps
// its own placement view (base layout + the moves it has applied), like
// the real external planner would.
type clayCtl struct {
	clay   *migration.Clay
	squall *migration.Squall
	period time.Duration
	rows   uint64

	mu       sync.Mutex
	override map[tx.Key]tx.NodeID
	base     partition.Partitioner

	obs  chan obsEvent
	quit chan struct{}
	done sync.WaitGroup
}

type obsEvent struct {
	master tx.NodeID
	keys   []tx.Key
}

func newClayController(sc Scale, base partition.Partitioner) *clayCtl {
	rangeSize := sc.ClayRange
	if rangeSize == 0 {
		rangeSize = sc.Rows / uint64(sc.Nodes*32)
	}
	if rangeSize == 0 {
		rangeSize = 1
	}
	return &clayCtl{
		clay:     migration.NewClay(rangeSize, 0.3, 16),
		squall:   migration.NewSquall(int(rangeSize)),
		period:   2 * sc.Window, // Clay "monitors the workload" before planning
		rows:     sc.Rows,
		override: map[tx.Key]tx.NodeID{},
		base:     base,
		obs:      make(chan obsEvent, 4096),
		quit:     make(chan struct{}),
	}
}

// Hook implements controller; it must never block the commit path.
func (c *clayCtl) Hook(rt *router.Route) {
	select {
	case c.obs <- obsEvent{master: rt.Master, keys: rt.Txn.AccessSet()}:
	default: // sampling under pressure is fine for a planner
	}
}

func (c *clayCtl) home(k tx.Key) tx.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.override[k]; ok {
		return n
	}
	return c.base.Home(k)
}

// Start implements controller.
func (c *clayCtl) Start(cluster *engine.Cluster) {
	c.done.Add(1)
	go func() {
		defer c.done.Done()
		ticker := time.NewTicker(c.period)
		defer ticker.Stop()
		for {
			select {
			case <-c.quit:
				return
			case ev := <-c.obs:
				c.clay.Observe(ev.master, ev.keys, c.home)
			case <-ticker.C:
				active := cluster.Active()
				moves := c.clay.Plan(active)
				for _, m := range moves {
					// Whole ranges move; keys with no record migrate as
					// empty payloads (the chunk transaction locks them
					// briefly, which is part of Squall's cost).
					keys := m.Keys(c.clay.RangeSize)
					for _, chunk := range c.squall.Chunks(keys, m.To) {
						if _, err := cluster.Submit(active[0], chunk); err != nil {
							return
						}
					}
					c.mu.Lock()
					for _, k := range keys {
						c.override[k] = m.To
					}
					c.mu.Unlock()
				}
				if len(moves) > 0 {
					c.clay.Reset()
				}
			}
		}
	}()
}

// Stop implements controller.
func (c *clayCtl) Stop() {
	close(c.quit)
	c.done.Wait()
}
