package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a scale small enough for unit tests (well under a second
// per system run).
func tiny() Scale {
	sc := Small()
	sc.Nodes = 2
	sc.Rows = 1000
	sc.Clients = 8
	sc.Phase = 300 * time.Millisecond
	sc.Window = 100 * time.Millisecond
	sc.BatchSize = 16
	sc.NetLatency = 50 * time.Microsecond
	return sc
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig6a", "fig6b", "fig7", "fig8", "fig8b", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablation", "ablation-fusion", "ablation-alpha", "routingcost"}
	for _, name := range want {
		if Registry[name] == nil {
			t.Errorf("experiment %s missing from registry", name)
		}
	}
	if got := Names(); len(got) != len(want) {
		t.Errorf("Names() = %v", got)
	}
}

func TestFig1(t *testing.T) {
	res, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || len(res.Series[0].Y) == 0 {
		t.Fatal("empty trace series")
	}
	if !strings.Contains(res.Render(), "fig1") {
		t.Fatal("render missing name")
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3 (Range, Clay, LEAP)", len(res.Series))
	}
	for _, s := range res.Series {
		if AvgY(s) <= 0 {
			t.Fatalf("series %s has zero throughput", s.Label)
		}
	}
}

func TestFig6bRunsAllOnlineSystems(t *testing.T) {
	res, err := Fig6b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(res.Series))
	}
	for _, s := range res.Series {
		if AvgY(s) <= 0 {
			t.Fatalf("series %s has zero throughput", s.Label)
		}
	}
}

func TestFig7BreakdownNonEmpty(t *testing.T) {
	sc := tiny()
	sc.Phase = 200 * time.Millisecond
	res, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		total := 0.0
		for _, v := range s.Y {
			total += v
		}
		if total <= 0 {
			t.Fatalf("series %s: empty breakdown", s.Label)
		}
	}
}

func TestFig10BatchSweep(t *testing.T) {
	sc := tiny()
	sc.Phase = 200 * time.Millisecond
	res, err := Fig10(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].X) != 5 {
		t.Fatalf("unexpected shape: %+v", res.Series)
	}
}

func TestFig11TPCC(t *testing.T) {
	sc := tiny()
	sc.Phase = 200 * time.Millisecond
	res, err := Fig11(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series = %d, want 6 systems", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Y) != 4 {
			t.Fatalf("series %s has %d concentrations, want 4", s.Label, len(s.Y))
		}
	}
}

func TestFig12MultiTenant(t *testing.T) {
	sc := tiny()
	sc.Phase = 300 * time.Millisecond
	res, err := Fig12(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series = %d", len(res.Series))
	}
}

func TestFig14ScaleOut(t *testing.T) {
	sc := tiny()
	sc.Phase = 400 * time.Millisecond
	res, err := Fig14(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d, want 5 strategies", len(res.Series))
	}
	labels := map[string]bool{}
	for _, s := range res.Series {
		labels[s.Label] = true
	}
	for _, want := range []string{"Squall", "Clay+Squall", "Hermes with cold (5%)"} {
		if !labels[want] {
			t.Fatalf("missing strategy %q in %v", want, labels)
		}
	}
}

func TestAblationRunsAllVariants(t *testing.T) {
	sc := tiny()
	sc.Phase = 200 * time.Millisecond
	res, err := Ablation(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4 variants", len(res.Series))
	}
	for _, s := range res.Series {
		if AvgY(s) <= 0 {
			t.Fatalf("variant %s produced no throughput", s.Label)
		}
	}
}

func TestAblationAlphaSweep(t *testing.T) {
	sc := tiny()
	sc.Phase = 150 * time.Millisecond
	res, err := AblationAlpha(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].X) != 5 {
		t.Fatalf("unexpected shape: %+v", res.Series)
	}
}

func TestRenderTable(t *testing.T) {
	r := &Result{
		Name: "x", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
		Notes: []string{"hello"},
	}
	out := r.Render()
	for _, want := range []string{"a", "b", "10.00", "40.00", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAvgY(t *testing.T) {
	if AvgY(Series{}) != 0 {
		t.Fatal("empty series avg != 0")
	}
	if got := AvgY(Series{Y: []float64{2, 4}}); got != 3 {
		t.Fatalf("AvgY = %f", got)
	}
}

func TestRoutingCost(t *testing.T) {
	res, err := RoutingCost(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Two microbenchmark series (n=4, n=20) plus the cluster row.
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	for _, s := range res.Series[:2] {
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s: non-positive µs at point %d", s.Label, i)
			}
		}
	}
	cluster := res.Series[2]
	if len(cluster.Y) != 3 {
		t.Fatalf("cluster row = %v", cluster.Y)
	}
	if cluster.Y[0] <= 0 || cluster.Y[1] <= 0 {
		t.Fatalf("cluster routing cost not recorded: %v", cluster.Y)
	}
}
