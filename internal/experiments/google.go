package experiments

import (
	"fmt"
	"time"

	"hermes/internal/engine"
	"hermes/internal/migration"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/trace"
	"hermes/internal/tx"
	"hermes/internal/workload"
)

// googleTrace synthesizes the workload-driving trace for a scale.
func googleTrace(sc Scale) *trace.Cluster {
	windows := int(sc.Phase/sc.Window) + 2
	return trace.Generate(trace.DefaultConfig(sc.Nodes, windows, sc.Seed))
}

// googleGen builds the §5.2.2 generator; recordsMean/Std of 0 mean the
// paper's default 2-record transactions.
func googleGen(sc Scale, tr *trace.Cluster, recordsMean, recordsStd float64) *workload.Google {
	return workload.NewGoogle(workload.GoogleConfig{
		Rows:             sc.Rows,
		Nodes:            sc.Nodes,
		Trace:            tr,
		WindowDur:        sc.Window,
		DistributedRatio: 0.5,
		ReadWriteRatio:   0.5,
		RecordsMean:      recordsMean,
		RecordsStd:       recordsStd,
		Theta:            0.9,
		SweepPeriod:      sc.Phase, // one full global sweep per run
		Payload:          64,
		Seed:             sc.Seed + 7,
	})
}

func loadUniform(sc Scale) func(c *engine.Cluster) {
	return func(c *engine.Cluster) {
		for i := uint64(0); i < sc.Rows; i++ {
			c.LoadRecord(tx.MakeKey(0, i), make([]byte, 64))
		}
	}
}

// runGoogle measures one system on the Google workload.
func runGoogle(sc Scale, sys system, recordsMean, recordsStd float64) (*runOutput, error) {
	tr := googleTrace(sc)
	gen := googleGen(sc, tr, recordsMean, recordsStd)
	ids := nodeIDs(sc.Nodes)
	return runLoad(sc, sys, gen, loadUniform(sc), ids, ids, nil, nil)
}

// Fig1 renders the synthetic per-machine load traces standing in for the
// Google cluster trace (one series per machine, first four machines).
func Fig1(sc Scale) (*Result, error) {
	tr := googleTrace(sc)
	res := &Result{
		Name: "fig1", Title: "Synthetic Google-like machine load traces",
		XLabel: "window", YLabel: "load",
		Notes: []string{"substitute for the Google cluster-usage trace; see DESIGN.md §5"},
	}
	n := 4
	if tr.Machines() < n {
		n = tr.Machines()
	}
	for m := 0; m < n; m++ {
		s := Series{Label: fmt.Sprintf("machine-%d", m)}
		for w := 0; w < tr.Windows(); w++ {
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, tr.Load[m][w])
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig2 compares Calvin with static range partitioning, Clay, and LEAP
// under the Google workload — the motivating experiment.
func Fig2(sc Scale) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	all := standardSystems(sc, base)
	pick := map[string]bool{"Calvin": true, "Clay": true, "LEAP": true}
	res := &Result{
		Name: "fig2", Title: "Look-back vs look-present under Google workload (throughput over time)",
		XLabel: "time (s)", YLabel: "K txns/window",
	}
	for _, sys := range all {
		if !pick[sys.name] {
			continue
		}
		out, err := runGoogle(sc, sys, 0, 0)
		if err != nil {
			return nil, err
		}
		label := sys.name
		if sys.name == "Calvin" {
			label = "Range Partition"
		}
		res.Series = append(res.Series, Series{
			Label: label,
			X:     windowsX(len(out.Throughput), sc.Window),
			Y:     out.Throughput,
		})
	}
	return res, nil
}

// schismSystem trains Schism offline on the workload distribution at a
// chosen moment of the run and returns Calvin over the resulting lookup
// partitioning — the paper's "optimal at one period" yardstick.
func schismSystem(sc Scale, name string, at time.Duration) system {
	tr := googleTrace(sc)
	gen := googleGen(sc, tr, 0, 0)
	sch := migration.NewSchism()
	samples := int(sc.Rows / 4)
	if samples > 20000 {
		samples = 20000
	}
	for i := 0; i < samples; i++ {
		proc, _ := gen.Next(at)
		sch.Observe(proc.ReadSet())
	}
	assign := sch.Partition(sc.Nodes, 0.15, 3)
	fallback := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	base := partition.NewLookup(assign, fallback)
	return system{
		name:   name,
		policy: func(a []tx.NodeID) router.Policy { return router.NewCalvin(base, a) },
	}
}

// Fig6a compares Hermes against the look-back approaches: Calvin, Clay,
// and two offline Schism partitionings trained at different periods.
func Fig6a(sc Scale) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	all := standardSystems(sc, base)
	systems := []system{
		all[0], // Calvin
		all[1], // Clay
		schismSystem(sc, "Schism 1", sc.Phase/4),
		schismSystem(sc, "Schism 2", 3*sc.Phase/4),
		all[5], // Hermes
	}
	res := &Result{
		Name: "fig6a", Title: "Hermes vs look-back approaches (Google workload)",
		XLabel: "time (s)", YLabel: "txns/window",
	}
	for _, sys := range systems {
		out, err := runGoogle(sc, sys, 0, 0)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Series{
			Label: sys.name,
			X:     windowsX(len(out.Throughput), sc.Window),
			Y:     out.Throughput,
		})
	}
	return res, nil
}

// Fig6b compares Hermes against the online approaches: Calvin, G-Store,
// T-Part, and LEAP.
func Fig6b(sc Scale) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	all := standardSystems(sc, base)
	pick := map[string]bool{"Calvin": true, "G-Store": true, "T-Part": true, "LEAP": true, "Hermes": true}
	res := &Result{
		Name: "fig6b", Title: "Hermes vs on-line approaches (Google workload)",
		XLabel: "time (s)", YLabel: "txns/window",
	}
	for _, sys := range all {
		if !pick[sys.name] {
			continue
		}
		out, err := runGoogle(sc, sys, 0, 0)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Series{
			Label: sys.name,
			X:     windowsX(len(out.Throughput), sc.Window),
			Y:     out.Throughput,
		})
	}
	return res, nil
}

// Fig7 reports the per-transaction latency breakdown of every system
// under the Google workload. With Scale.ExecModes set (hermes-bench
// -experiment fig7 -exec both), each system is run once per execution
// mode and the modes are printed side by side, so the lock-wait-collapse
// claim of queue mode is reproducible from the CLI.
func Fig7(sc Scale) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	res := &Result{
		Name: "fig7", Title: "Average latency breakdown (ms)",
		XLabel: "component", YLabel: "ms",
		Notes: []string{"components: 1=scheduling 2=lock wait 3=queue plan 4=queue wait 5=storage 6=remote wait 7=other"},
	}
	modes := sc.ExecModes
	if len(modes) == 0 {
		modes = []string{sc.ExecMode}
	}
	for _, sys := range standardSystems(sc, base) {
		for _, mode := range modes {
			msc := sc
			msc.ExecMode = mode
			out, err := runGoogle(msc, sys, 0, 0)
			if err != nil {
				return nil, err
			}
			label := sys.name
			if len(modes) > 1 {
				m := mode
				if m == "" {
					m = "lock"
				}
				label += "/" + m
			}
			res.Series = append(res.Series, Series{
				Label: label,
				X:     []float64{1, 2, 3, 4, 5, 6, 7},
				Y: []float64{
					out.Breakdown.Scheduling, out.Breakdown.LockWait,
					out.Breakdown.QueuePlan, out.Breakdown.QueueWait,
					out.Breakdown.Storage, out.Breakdown.RemoteWait, out.Breakdown.Other,
				},
			})
		}
	}
	return res, nil
}

// Fig8 reports average CPU usage over time per system; Fig8b reports
// network bytes per transaction over time.
func Fig8(sc Scale) (*Result, error) {
	res := &Result{
		Name: "fig8", Title: "Average CPU usage (%) over time",
		XLabel: "time (s)", YLabel: "cpu %",
	}
	return figUtil(sc, res, func(o *runOutput) []float64 { return o.CPU })
}

// Fig8b is the network half of Fig. 8.
func Fig8b(sc Scale) (*Result, error) {
	res := &Result{
		Name: "fig8b", Title: "Network usage per transaction (bytes) over time",
		XLabel: "time (s)", YLabel: "bytes/txn",
	}
	return figUtil(sc, res, func(o *runOutput) []float64 { return o.NetPerTxn })
}

func figUtil(sc Scale, res *Result, pick func(*runOutput) []float64) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	for _, sys := range standardSystems(sc, base) {
		out, err := runGoogle(sc, sys, 0, 0)
		if err != nil {
			return nil, err
		}
		ys := pick(out)
		res.Series = append(res.Series, Series{
			Label: sys.name,
			X:     windowsX(len(ys), sc.Window),
			Y:     ys,
		})
	}
	return res, nil
}

// Fig9 sweeps transaction length — (mean, std) of the records accessed
// per transaction — and reports each system's throughput improvement over
// Calvin.
func Fig9(sc Scale) (*Result, error) {
	settings := [][2]float64{{5, 5}, {10, 5}, {10, 10}, {20, 5}, {20, 10}, {20, 20}}
	if sc.Phase < 2*time.Second {
		settings = [][2]float64{{5, 5}, {10, 5}, {20, 10}} // bench downscale
	}
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	all := standardSystems(sc, base)
	res := &Result{
		Name: "fig9", Title: "Impact of transaction length: improvement over Calvin (%)",
		XLabel: "(mean,std)#", YLabel: "% improvement",
	}
	series := map[string]*Series{}
	order := []string{}
	for _, sys := range all {
		if sys.name == "Calvin" {
			continue
		}
		series[sys.name] = &Series{Label: sys.name}
		order = append(order, sys.name)
	}
	for si, set := range settings {
		calvinOut, err := runGoogle(sc, all[0], set[0], set[1])
		if err != nil {
			return nil, err
		}
		calvinT := float64(calvinOut.Committed)
		if calvinT == 0 {
			calvinT = 1
		}
		for _, sys := range all {
			if sys.name == "Calvin" {
				continue
			}
			out, err := runGoogle(sc, sys, set[0], set[1])
			if err != nil {
				return nil, err
			}
			s := series[sys.name]
			s.X = append(s.X, float64(si+1))
			s.Y = append(s.Y, (float64(out.Committed)/calvinT-1)*100)
		}
		res.Notes = append(res.Notes, fmt.Sprintf("setting %d = (mean=%.0f, std=%.0f)", si+1, set[0], set[1]))
	}
	for _, name := range order {
		res.Series = append(res.Series, *series[name])
	}
	return res, nil
}

// Fig10 sweeps Hermes's batch size and reports throughput — the §5.2.6
// trade-off between routing quality and routing cost.
func Fig10(sc Scale) (*Result, error) {
	sizes := []int{10, 30, 100, 300, 1000}
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	fusionCap := int(float64(sc.Rows) * sc.FusionFrac)
	res := &Result{
		Name: "fig10", Title: "Hermes throughput vs batch size",
		XLabel: "batch size", YLabel: "txns committed",
	}
	s := Series{Label: "Hermes"}
	for _, bs := range sizes {
		scb := sc
		scb.BatchSize = bs
		out, err := runGoogle(scb, system{name: "Hermes", policy: hermesPolicy(base, fusionCap)}, 0, 0)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(bs))
		s.Y = append(s.Y, float64(out.Committed))
	}
	res.Series = append(res.Series, s)
	return res, nil
}
