package experiments

import (
	"sync"

	"hermes/internal/telemetry"
)

// RunRecord is one measured system run in machine-readable form — the
// JSON counterpart of a figure's rendered column, emitted through the
// report sink for cmd/hermes-bench -report. Experiment is stamped by the
// caller that knows which figure is running; everything else is filled by
// runLoad.
type RunRecord struct {
	Experiment string `json:"experiment,omitempty"`
	System     string `json:"system"`
	// Throughput is commits per sampling window (oldest first); CPU the
	// mean busy fraction per window in percent; NetPerTxn bytes per
	// committed transaction per window.
	Throughput []float64 `json:"throughput"`
	CPU        []float64 `json:"cpu_pct"`
	NetPerTxn  []float64 `json:"net_bytes_per_txn"`
	// Breakdown is the mean per-transaction latency decomposition (ms).
	Breakdown  breakdown `json:"breakdown_ms"`
	Committed  int64     `json:"committed"`
	Aborted    int64     `json:"aborted"`
	Migrations int64     `json:"migrations"`
	// Routing cost (§3.2.4) in microseconds.
	RoutingPerBatchUs float64 `json:"routing_us_per_batch"`
	RoutingPerTxnUs   float64 `json:"routing_us_per_txn"`
	// Gauges is the final telemetry-registry snapshot (fusion occupancy,
	// migration bytes, transport retransmits, queue depths, ...); only
	// present when a report sink is installed, which enables telemetry
	// for the run.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Phases is the histogram-backed per-phase commit-latency summary
	// (log2 buckets; quantiles are bucket upper bounds, within one bucket
	// of exact). Replaces reading quantiles off sampled averages.
	Phases map[string]telemetry.PhaseSummary `json:"phases,omitempty"`
	// SlowCaptured is how many transactions the tail sampler retained
	// (commit latency over the dynamic p99 estimate); SlowDominant counts
	// them by critical-path component.
	SlowCaptured int64            `json:"slow_captured,omitempty"`
	SlowDominant map[string]int64 `json:"slow_dominant,omitempty"`
}

var (
	reportMu   sync.Mutex
	reportSink func(RunRecord)
)

// SetReportSink installs fn to receive a RunRecord for every measured
// run. While a sink is installed, runLoad attaches the telemetry layer
// to each cluster so the record carries a full gauge snapshot; telemetry
// is observation-only, so results are unchanged. Pass nil to uninstall.
func SetReportSink(fn func(RunRecord)) {
	reportMu.Lock()
	reportSink = fn
	reportMu.Unlock()
}

func currentSink() func(RunRecord) {
	reportMu.Lock()
	defer reportMu.Unlock()
	return reportSink
}
