package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/core"
	"hermes/internal/partition"
	"hermes/internal/tx"
)

// RoutingCost reproduces the §3.2.4 routing-overhead measurement: the
// prescient analysis of a whole batch must stay a small, predictable
// slice of end-to-end latency (the paper reports a few milliseconds per
// 1000-transaction batch on 20 nodes, ~4% of transaction latency).
//
// Two measurements are reported:
//   - "route-us(n=…)": in-process microbenchmark series — mean µs to
//     route one batch with RouteUser alone, across batch sizes, for small
//     and paper-scale node counts (the same grid scripts/bench.sh gates);
//   - "pct-of-latency": a measured cluster run with the Hermes policy,
//     reporting scheduler routing time as a percentage of mean
//     transaction latency (the paper's ~4% row).
func RoutingCost(sc Scale) (*Result, error) {
	res := &Result{
		Name: "routingcost", Title: "Prescient routing cost (§3.2.4)",
		XLabel: "batch size", YLabel: "µs per batch",
	}

	// Microbenchmark grid: route pre-generated batches against a fresh
	// router per (n, b) point; enough repetitions to get a stable mean
	// without rivaling `go test -bench` runtimes.
	const rows = 1_000_000
	bsizes := []int{100, 250, 500, 1000}
	for _, n := range []int{4, 20} {
		s := Series{Label: fmt.Sprintf("route-us(n=%d)", n)}
		for _, bsize := range bsizes {
			p := core.New(partition.NewUniformRange(0, rows, n), nodeIDs(n), core.DefaultConfig(100_000))
			rng := rand.New(rand.NewSource(sc.Seed))
			batches := routingCostBatches(rng, rows, bsize, 8)
			const reps = 32
			start := time.Now()
			for i := 0; i < reps; i++ {
				p.RouteUser(batches[i%len(batches)])
			}
			perBatch := time.Since(start) / reps
			s.X = append(s.X, float64(bsize))
			s.Y = append(s.Y, us(perBatch))
		}
		res.Series = append(res.Series, s)
	}

	// Cluster run: the same collector the latency figures use, so the
	// ratio compares like with like (routing time vs mean commit latency).
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	sys := system{name: "Hermes", policy: hermesPolicy(base, int(float64(sc.Rows)*sc.FusionFrac))}
	out, err := runGoogle(sc, sys, 0, 0)
	if err != nil {
		return nil, err
	}
	bd := out.Breakdown
	avgLatencyUs := (bd.Scheduling + bd.LockWait + bd.Storage + bd.RemoteWait + bd.Other) * 1e3
	pct := 0.0
	if avgLatencyUs > 0 {
		pct = out.RoutingPerTxnUs / avgLatencyUs * 100
	}
	res.Series = append(res.Series, Series{
		Label: "cluster",
		X:     []float64{1, 2, 3},
		Y:     []float64{out.RoutingPerBatchUs, out.RoutingPerTxnUs, pct},
	})
	res.Notes = append(res.Notes,
		"cluster row: 1=µs/batch 2=µs/txn 3=routing as % of mean latency (paper: ~4% at b=1000, n=20)",
		fmt.Sprintf("cluster run: %d nodes, batch %d, %.1f µs/batch, %.2f%% of latency",
			sc.Nodes, sc.BatchSize, out.RoutingPerBatchUs, pct))
	return res, nil
}

// routingCostBatches mirrors the benchmark workload in
// internal/core (2 keys per transaction, 1 written).
func routingCostBatches(rng *rand.Rand, rows uint64, bsize, pool int) [][]*tx.Request {
	out := make([][]*tx.Request, pool)
	id := tx.TxnID(1)
	for p := range out {
		batch := make([]*tx.Request, 0, bsize)
		for i := 0; i < bsize; i++ {
			var rs, ws []tx.Key
			for j := 0; j < 2; j++ {
				k := tx.MakeKey(0, uint64(rng.Intn(int(rows))))
				rs = append(rs, k)
				if j == 0 {
					ws = append(ws, k)
				}
			}
			batch = append(batch, tx.NewRequest(id, &tx.OpProc{Reads: rs, Writes: ws}))
			id++
		}
		out[p] = batch
	}
	return out
}
