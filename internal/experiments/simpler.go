package experiments

import (
	"fmt"
	"time"

	"hermes/internal/engine"
	"hermes/internal/partition"
	"hermes/internal/tx"
	"hermes/internal/workload"
)

// Fig11 runs the TPC-C benchmark (New-Order + Payment) with increasing
// hot-spot concentration and reports average throughput per system.
func Fig11(sc Scale) (*Result, error) {
	concentrations := []float64{0, 0.5, 0.8, 0.9}
	warehousesPerNode := 4
	res := &Result{
		Name: "fig11", Title: "TPC-C throughput vs hot-spot concentration",
		XLabel: "conc #", YLabel: "txns committed",
		Notes: []string{"x: 1=Normal 2=50% 3=80% 4=90% concentration on node 0"},
	}
	// One template generator defines the schema/partitioning; fresh
	// generators per run keep streams independent.
	mkGen := func(conc float64) *workload.TPCC {
		cfg := workload.DefaultTPCCConfig(sc.Nodes, warehousesPerNode)
		cfg.HotSpotProb = conc
		cfg.Seed = sc.Seed
		return workload.NewTPCC(cfg)
	}
	base := mkGen(0).Partitioner()
	scT := sc
	scT.Rows = uint64(sc.Nodes*warehousesPerNode) * 2048 // ≈ records loaded
	// TPC-C's written working set (hot districts, customers, stocks) is a
	// large fraction of the database at this scale; size the fusion table
	// to cover it and give Clay warehouse-compatible clump granularity.
	scT.FusionFrac = 0.25
	scT.ClayRange = 64
	systems := standardSystems(scT, base)
	series := map[string]*Series{}
	for _, sys := range systems {
		series[sys.name] = &Series{Label: sys.name}
	}
	for ci, conc := range concentrations {
		for _, sys := range systems {
			gen := mkGen(conc)
			loader := func(c *engine.Cluster) {
				gen.ForEachRecord(func(k tx.Key, v []byte) { c.LoadRecord(k, v) })
			}
			ids := nodeIDs(sc.Nodes)
			out, err := runLoad(scT, sys, gen, loader, ids, ids, nil, nil)
			if err != nil {
				return nil, err
			}
			s := series[sys.name]
			s.X = append(s.X, float64(ci+1))
			s.Y = append(s.Y, float64(out.Committed))
		}
	}
	for _, sys := range systems {
		res.Series = append(res.Series, *series[sys.name])
	}
	return res, nil
}

// Fig12 runs the multi-tenant workload whose 90% hot spot rotates across
// nodes, reporting throughput over time per system.
func Fig12(sc Scale) (*Result, error) {
	res := &Result{
		Name: "fig12", Title: "Multi-tenant workload with a rotating hot spot",
		XLabel: "time (s)", YLabel: "txns/window",
	}
	mkGen := func() *workload.MultiTenant {
		cfg := workload.DefaultMultiTenantConfig(sc.Nodes)
		cfg.RotationPeriod = sc.Phase / 3 // three hot-spot changes per run
		cfg.RowsPerTenant = sc.Rows / uint64(sc.Nodes*cfg.TenantsPerNode)
		cfg.Seed = sc.Seed
		return workload.NewMultiTenant(cfg)
	}
	template := mkGen()
	base := template.Partitioner()
	scM := sc
	scM.Rows = template.Rows()
	for _, sys := range standardSystems(scM, base) {
		gen := mkGen()
		ids := nodeIDs(sc.Nodes)
		out, err := runLoad(scM, sys, gen, loadUniform(scM), ids, ids, nil, nil)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Series{
			Label: sys.name,
			X:     windowsX(len(out.Throughput), sc.Window),
			Y:     out.Throughput,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("hot spot rotates every %.1fs", (sc.Phase/3).Seconds()))
	return res, nil
}

// Fig13 evaluates robustness to the initial partitioning: perfect range,
// hash-based, and skewed range (≈43% of tenants on one node).
func Fig13(sc Scale) (*Result, error) {
	res := &Result{
		Name: "fig13", Title: "Impact of initial partitioning (avg txns committed)",
		XLabel: "layout #", YLabel: "txns committed",
		Notes: []string{"x: 1=perfect 2=hash-based 3=skewed"},
	}
	mkGen := func() *workload.MultiTenant {
		cfg := workload.DefaultMultiTenantConfig(sc.Nodes)
		cfg.RotationPeriod = sc.Phase / 3
		cfg.RowsPerTenant = sc.Rows / uint64(sc.Nodes*cfg.TenantsPerNode)
		cfg.Seed = sc.Seed
		return workload.NewMultiTenant(cfg)
	}
	template := mkGen()
	scM := sc
	scM.Rows = template.Rows()
	// ~43% of tenants on a single node, as in §5.3.3.
	totalTenants := sc.Nodes * 4 // DefaultMultiTenantConfig's TenantsPerNode
	skewed, err := template.SkewedPartitioner(totalTenants * 43 / 100)
	if err != nil {
		return nil, err
	}
	layouts := []struct {
		name string
		base partition.Partitioner
	}{
		{"perfect", template.Partitioner()},
		{"hash", partition.NewHash(sc.Nodes)},
		{"skewed", skewed},
	}
	series := map[string]*Series{}
	var sysNames []string
	for li, layout := range layouts {
		for _, sys := range standardSystems(scM, layout.base) {
			if series[sys.name] == nil {
				series[sys.name] = &Series{Label: sys.name}
				sysNames = append(sysNames, sys.name)
			}
			gen := mkGen()
			ids := nodeIDs(sc.Nodes)
			out, err := runLoad(scM, sys, gen, loadUniform(scM), ids, ids, nil, nil)
			if err != nil {
				return nil, err
			}
			s := series[sys.name]
			s.X = append(s.X, float64(li+1))
			s.Y = append(s.Y, float64(out.Committed))
		}
	}
	for _, name := range sysNames {
		res.Series = append(res.Series, *series[name])
	}
	return res, nil
}

// Fig14 is the scale-out scenario: a 25% hot spot on node 0's first
// tenant, a new node added mid-run, and five migration strategies
// compared — Squall, Clay+Squall, and Hermes without cold migration
// (fusion table at 5% and 10% of the database) and with cold migration
// (5%).
func Fig14(sc Scale) (*Result, error) {
	nodes := 3
	// Tenants need enough rows that the Zipfian working set is a small
	// fraction of the tenant (as in the paper's 2.5M-row tenants);
	// otherwise every transaction pair-collides and placement churns.
	rows := sc.Rows * 3
	mkGen := func() *workload.MultiTenant {
		cfg := workload.DefaultMultiTenantConfig(nodes)
		cfg.RotationPeriod = 0 // static hot spot on node 0
		cfg.HotNode = 0
		cfg.Concentration = 0.25
		cfg.RowsPerTenant = rows / uint64(nodes*cfg.TenantsPerNode)
		cfg.Seed = sc.Seed
		return workload.NewMultiTenant(cfg)
	}
	template := mkGen()
	base := template.Partitioner() // homes over the 3 original nodes
	scM := sc
	scM.Rows = template.Rows()
	// Push the 3-node cluster into saturation so the added capacity (and
	// the migration's interference) is visible, as in §5.4.
	scM.Clients = sc.Clients * 2
	newNode := tx.NodeID(nodes)
	all := append(nodeIDs(nodes), newNode)
	active := nodeIDs(nodes)

	// The migration plan: the hot tenant (first quarter of node 0's key
	// range) moves to the new node, in 1000-record chunks per §5.4
	// (scaled to the table size).
	hotLo, hotHi := template.TenantRange(0)
	chunk := int(scM.Rows / 64)
	if chunk < 1 {
		chunk = 1
	}
	addNodeAt := sc.Phase / 4

	// events provisions the new node and (optionally) submits the cold
	// migration chunks.
	mkEvents := func(withCold bool) func(c *engine.Cluster, start time.Time) {
		return func(c *engine.Cluster, start time.Time) {
			go func() {
				time.Sleep(addNodeAt)
				if _, err := c.Provision([]tx.NodeID{newNode}, nil); err != nil {
					return
				}
				if !withCold {
					return
				}
				// Chunks are paced across the run like Squall's
				// background migration; each chunk is a totally ordered
				// transaction that locks its keys, so chunks containing
				// hot records block user transactions — unless the
				// router skips fusion-tracked keys (Hermes).
				pace := sc.Phase / 2 / time.Duration((int(hotHi-hotLo)+chunk-1)/chunk)
				for lo := hotLo; lo < hotHi; lo += tx.Key(chunk) {
					hi := lo + tx.Key(chunk)
					if hi > hotHi {
						hi = hotHi
					}
					keys := make([]tx.Key, 0, chunk)
					for k := lo; k < hi; k++ {
						keys = append(keys, k)
					}
					done, err := c.Submit(0, &tx.MigrationProc{Keys: keys, To: newNode})
					if err != nil {
						return
					}
					<-done
					time.Sleep(pace)
				}
			}()
		}
	}

	fusion5 := int(float64(scM.Rows) * 0.05)
	fusion10 := int(float64(scM.Rows) * 0.10)
	runs := []struct {
		name     string
		sys      system
		withCold bool
	}{
		{"Squall", system{name: "Squall", policy: standardSystems(scM, base)[0].policy}, true},
		{"Clay+Squall", standardSystems(scM, base)[1], true},
		{"Hermes w/o cold (5%)", system{name: "h5", policy: hermesPolicy(base, fusion5)}, false},
		{"Hermes w/o cold (10%)", system{name: "h10", policy: hermesPolicy(base, fusion10)}, false},
		{"Hermes with cold (5%)", system{name: "h5c", policy: hermesPolicy(base, fusion5)}, true},
	}

	res := &Result{
		Name: "fig14", Title: "Scale-out: throughput while adding a node",
		XLabel: "time (s)", YLabel: "txns/window",
		Notes: []string{fmt.Sprintf("new node added at t=%.1fs; hot tenant = 25%% of load", addNodeAt.Seconds())},
	}
	for _, r := range runs {
		gen := mkGen()
		out, err := runLoad(scM, r.sys, gen, loadUniform(scM), all, active, nil, mkEvents(r.withCold))
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Series{
			Label: r.name,
			X:     windowsX(len(out.Throughput), sc.Window),
			Y:     out.Throughput,
		})
	}
	return res, nil
}
