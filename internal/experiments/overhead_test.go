package experiments

import (
	"testing"

	"hermes/internal/partition"
)

// benchGoogleHermes runs the Hermes system on the Small-scale Google
// workload, optionally with the telemetry layer attached (a report sink
// makes runLoad build every cluster with tracer + gauge registry), and
// reports sustained committed throughput. Comparing the Off/On variants
// measures the enabled-telemetry overhead quoted in docs/OBSERVABILITY.md:
//
//	go test -run '^$' -bench 'BenchmarkGoogleSmallTelemetry' \
//	    -benchtime 5x ./internal/experiments
func benchGoogleHermes(b *testing.B, telemetryOn bool) {
	sc := Small()
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	sys := standardSystems(sc, base)[5] // Hermes
	if telemetryOn {
		SetReportSink(func(RunRecord) {})
		defer SetReportSink(nil)
	}
	var committed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := runGoogle(sc, sys, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		committed += out.Committed
	}
	b.StopTimer()
	b.ReportMetric(float64(committed)/(float64(b.N)*sc.Phase.Seconds()), "txns/sec")
}

func BenchmarkGoogleSmallTelemetryOff(b *testing.B) { benchGoogleHermes(b, false) }

func BenchmarkGoogleSmallTelemetryOn(b *testing.B) { benchGoogleHermes(b, true) }
