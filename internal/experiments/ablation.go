package experiments

import (
	"hermes/internal/core"
	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// Ablation isolates the three ingredients of Algorithm 1 on the Google
// workload: reordering (step 1), rebalancing (step 3), and data fusion
// itself. It is this repository's addition to the paper's evaluation —
// the design-choice justification DESIGN.md calls for.
func Ablation(sc Scale) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	cfg := core.Config{
		Alpha:          0.25,
		FusionCapacity: int(float64(sc.Rows) * sc.FusionFrac),
		FusionPolicy:   fusion.LRU,
	}
	variants := []struct {
		name string
		abl  core.Ablation
	}{
		{"Hermes (full)", core.Ablation{}},
		{"no-reorder", core.Ablation{NoReorder: true}},
		{"no-rebalance", core.Ablation{NoRebalance: true}},
		{"no-fusion", core.Ablation{NoFusion: true}},
	}
	res := &Result{
		Name: "ablation", Title: "Algorithm 1 ablation (Google workload, throughput over time)",
		XLabel: "time (s)", YLabel: "txns/window",
	}
	for _, v := range variants {
		abl := v.abl
		sys := system{
			name: v.name,
			policy: func(a []tx.NodeID) router.Policy {
				return core.NewAblated(base, a, cfg, abl)
			},
		}
		out, err := runGoogle(sc, sys, 0, 0)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Series{
			Label: v.name,
			X:     windowsX(len(out.Throughput), sc.Window),
			Y:     out.Throughput,
		})
	}
	return res, nil
}

// AblationFusionCapacity sweeps the fusion-table bound (as a fraction of
// the database) on the Google workload — the §4.1 size/benefit trade-off.
func AblationFusionCapacity(sc Scale) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	fracs := []float64{0.005, 0.025, 0.10, 0.25}
	res := &Result{
		Name: "ablation-fusion", Title: "Fusion-table capacity sweep (fraction of database)",
		XLabel: "capacity frac", YLabel: "txns committed",
	}
	for _, policy := range []fusion.Policy{fusion.LRU, fusion.FIFO} {
		label := "LRU"
		if policy == fusion.FIFO {
			label = "FIFO"
		}
		s := Series{Label: label}
		for _, f := range fracs {
			cfg := core.Config{Alpha: 0.25, FusionCapacity: int(float64(sc.Rows) * f), FusionPolicy: policy}
			sys := system{
				name: label,
				policy: func(a []tx.NodeID) router.Policy {
					return core.New(base, a, cfg)
				},
			}
			out, err := runGoogle(sc, sys, 0, 0)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, f)
			s.Y = append(s.Y, float64(out.Committed))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AblationAlpha sweeps the load-imbalance tolerance α of θ = ⌈b/n·(1+α)⌉.
func AblationAlpha(sc Scale) (*Result, error) {
	base := partition.NewUniformRange(0, sc.Rows, sc.Nodes)
	alphas := []float64{0, 0.25, 0.5, 1, 4}
	res := &Result{
		Name: "ablation-alpha", Title: "Load-imbalance tolerance α sweep (Google workload)",
		XLabel: "alpha", YLabel: "txns committed",
	}
	s := Series{Label: "Hermes"}
	for _, a := range alphas {
		cfg := core.Config{Alpha: a, FusionCapacity: int(float64(sc.Rows) * sc.FusionFrac), FusionPolicy: fusion.LRU}
		sys := system{
			name: "Hermes",
			policy: func(ids []tx.NodeID) router.Policy {
				return core.New(base, ids, cfg)
			},
		}
		out, err := runGoogle(sc, sys, 0, 0)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, a)
		s.Y = append(s.Y, float64(out.Committed))
	}
	res.Series = append(res.Series, s)
	return res, nil
}
