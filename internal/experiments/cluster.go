package experiments

import (
	"encoding/json"
	"os"
	"time"

	"hermes/internal/telemetry"
)

// ClusterProcess is one hermesd process's counter snapshot folded into the
// cluster report. It mirrors the harness's /stats payload but is declared
// here so the experiments layer stays free of the process-spawning code.
type ClusterProcess struct {
	Node              int64  `json:"node"`
	Incarnation       uint64 `json:"incarnation"`
	Committed         int64  `json:"committed"`
	Aborted           int64  `json:"aborted"`
	NetMsgs           int64  `json:"net_msgs"`
	NetBytes          int64  `json:"net_bytes"`
	Retransmits       int64  `json:"retransmits"`
	DupsDropped       int64  `json:"dups_dropped"`
	HandshakeFailures int64  `json:"handshake_failures"`

	OverloadDelayed int64 `json:"overload_delayed"`
	OverloadShed    int64 `json:"overload_shed"`

	RestoredCheckpoint bool   `json:"restored_checkpoint"`
	CheckpointID       uint64 `json:"checkpoint_id"`
	CheckpointSaves    int64  `json:"checkpoint_saves"`
	JournalBase        uint64 `json:"journal_base"`
	JournalFsyncs      int64  `json:"journal_fsyncs"`
	JournalBatches     int64  `json:"journal_batches"`
	JournalBatchedAcks int64  `json:"journal_batched_acks"`
	JournalTorn        int64  `json:"journal_torn"`
	JournalCorrupt     int64  `json:"journal_corrupt"`
}

// ClusterGate is the pass/fail verdict CI keys on.
type ClusterGate struct {
	Pass   bool   `json:"pass"`
	Reason string `json:"reason,omitempty"`
}

// ClusterTraceSummary condenses a collected cluster trace: how many
// committed transactions carried a complete cross-process span chain
// (enqueued -> committed) after clock alignment, and the worst
// critical-chain clock backstep against the allowed alignment slack.
type ClusterTraceSummary struct {
	File             string  `json:"file,omitempty"`
	Txns             int     `json:"txns"`
	Committed        int     `json:"committed"`
	Complete         int     `json:"complete"`
	CompleteFraction float64 `json:"complete_fraction"`
	MaxBackstepNs    int64   `json:"max_backstep_ns"`
	SlackNs          int64   `json:"slack_ns"`
}

// ClusterWANSection records the optional second bench run under the
// seeded WAN fault schedule: the same workload replayed through the
// netchaos proxy plane (asymmetric inter-region latency plus a
// partition/heal cycle) with the heartbeat supervisor armed. Throughput
// and tail latency are expected to degrade; the digests are not — the
// twin match here is the headline determinism-under-faults claim.
type ClusterWANSection struct {
	Schedule string `json:"schedule"`
	IntraMs  int64  `json:"intra_ms"`
	CrossMs  int64  `json:"cross_ms"`
	HealMs   int64  `json:"heal_ms"`

	Committed int64   `json:"committed"`
	QPS       float64 `json:"qps"`
	AvgMs     float64 `json:"avg_ms"`
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms,omitempty"`

	// Fault-plane evidence that the schedule actually fired.
	PartitionDrops int64 `json:"partition_drops"`
	StreamResets   int64 `json:"stream_resets"`
	Restarts       int   `json:"supervisor_restarts"`

	// Backpressure counters summed across processes.
	OverloadDelayed int64 `json:"overload_delayed"`
	OverloadShed    int64 `json:"overload_shed"`

	TwinMatch bool `json:"twin_match"`
}

// ClusterReport is the merged result of one multi-process cluster bench
// run, written as BENCH_cluster.json: the workload parameters, end-to-end
// throughput and latency from the closed-loop driver, the wire cost per
// transaction summed across every process transport, the per-process
// snapshots, and whether the cluster's final digests matched the
// in-process twin's.
type ClusterReport struct {
	Policy    string `json:"policy"`
	Workload  string `json:"workload"`
	Workers   int    `json:"workers"`
	Rows      uint64 `json:"rows"`
	Txns      int    `json:"txns"`
	BatchSize int    `json:"batch_size"`
	Seed      int64  `json:"seed"`

	Committed   int64   `json:"committed"`
	QPS         float64 `json:"qps"`
	AvgMs       float64 `json:"avg_ms"`
	P50Ms       float64 `json:"p50_ms,omitempty"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms,omitempty"`
	MaxMs       float64 `json:"max_ms,omitempty"`
	BytesPerTxn float64 `json:"net_bytes_per_txn"`

	// Phases is the cluster-wide histogram-backed commit-latency
	// decomposition (merged raw buckets across every process, one summary
	// per component).
	Phases map[string]telemetry.PhaseSummary `json:"phases,omitempty"`
	// SlowCaptured sums the tail sampler's captures across processes.
	SlowCaptured int64 `json:"slow_captured,omitempty"`
	// Trace is present when the run collected a cluster trace.
	Trace *ClusterTraceSummary `json:"trace,omitempty"`

	TwinMatch bool             `json:"twin_match"`
	Processes []ClusterProcess `json:"processes"`
	// WAN is present when the bench also ran the seeded WAN fault profile.
	WAN *ClusterWANSection `json:"wan,omitempty"`
	Gate      ClusterGate      `json:"gate"`
	Written   time.Time        `json:"written"`
}

// WriteClusterReport stamps and writes the report as indented JSON.
func WriteClusterReport(path string, r *ClusterReport) error {
	r.Written = time.Now().UTC()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
