// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the emulated cluster: the Google-trace YCSB
// comparisons (Figs. 2, 6, 7, 8, 9, 10), TPC-C with hot spots (Fig. 11),
// the multi-tenant moving hot spot (Fig. 12), initial-partitioning
// robustness (Fig. 13), and the scale-out scenario (Fig. 14). Each
// experiment prints the same rows/series the paper reports; absolute
// numbers differ from the paper's 31-machine cluster, but the relative
// shapes are the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hermes/internal/core"
	"hermes/internal/engine"
	"hermes/internal/fusion"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
	"hermes/internal/workload"
)

// Scale sets the knobs that trade fidelity for wall-clock time. Small()
// keeps every figure's bench under a few seconds per system; Full() is
// for cmd/hermes-bench -full.
type Scale struct {
	Nodes     int
	Rows      uint64
	Clients   int
	Phase     time.Duration // measured duration per system run
	Window    time.Duration // throughput sampling window
	BatchSize int
	// SeqInterval is the sequencer flush interval: larger batches give
	// the prescient router a wider future window at a latency cost
	// (Fig. 10's trade-off).
	SeqInterval  time.Duration
	NetLatency   time.Duration
	StorageDelay time.Duration
	// Executors and ExecCost define per-node saturation throughput
	// (Executors slots, each transaction costing ExecCost of CPU).
	Executors int
	ExecCost  time.Duration
	// ExecMode selects the admission engine ("lock" or "queue"; empty is
	// lock). ExecModes, when non-empty, makes mode-aware experiments
	// (Fig. 7) run each listed mode side by side.
	ExecMode   string
	ExecModes  []string
	FusionFrac float64 // fusion capacity as fraction of Rows
	// ClayRange overrides Clay's clump granularity in keys (0 = derived
	// from Rows; "the size of the range depends on workloads", §5.2.1).
	ClayRange uint64
	Seed      int64
}

// Small returns the downscaled defaults used by `go test -bench`.
func Small() Scale {
	return Scale{
		Nodes:        4,
		Rows:         8_000,
		Clients:      64,
		Phase:        1200 * time.Millisecond,
		Window:       200 * time.Millisecond,
		BatchSize:    64,
		SeqInterval:  5 * time.Millisecond,
		NetLatency:   time.Millisecond,
		StorageDelay: 20 * time.Microsecond,
		Executors:    2,
		ExecCost:     200 * time.Microsecond,
		FusionFrac:   0.025,
		Seed:         1,
	}
}

// Full returns the larger configuration used by cmd/hermes-bench -full.
func Full() Scale {
	return Scale{
		Nodes:        8,
		Rows:         100_000,
		Clients:      256,
		Phase:        10 * time.Second,
		Window:       500 * time.Millisecond,
		BatchSize:    256,
		SeqInterval:  10 * time.Millisecond,
		NetLatency:   500 * time.Microsecond,
		StorageDelay: 20 * time.Microsecond,
		Executors:    4,
		ExecCost:     150 * time.Microsecond,
		FusionFrac:   0.025,
		Seed:         1,
	}
}

// Series is one labelled line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Result is one regenerated figure/table.
type Result struct {
	Name   string // e.g. "fig6a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the result as an aligned text table (series as columns).
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.Name, r.Title)
	if len(r.Series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%16s", s.Label)
	}
	b.WriteByte('\n')
	rows := 0
	for _, s := range r.Series {
		if len(s.X) > rows {
			rows = len(s.X)
		}
	}
	for i := 0; i < rows; i++ {
		wrote := false
		for si, s := range r.Series {
			if si == 0 {
				if i < len(s.X) {
					fmt.Fprintf(&b, "%-12.2f", s.X[i])
				} else {
					fmt.Fprintf(&b, "%-12s", "")
				}
				wrote = true
			}
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%16.2f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%16s", "")
			}
		}
		if wrote {
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// AvgY returns the mean of a series' Y values (0 when empty).
func AvgY(s Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// controller is an external look-back component running alongside a
// cluster (Clay's planner + Squall submission). Hook observes commits
// from the engine; Start launches the control loop; Stop terminates it.
type controller interface {
	Hook(rt *router.Route)
	Start(c *engine.Cluster)
	Stop()
}

// system couples a display name with a policy factory and an optional
// controller constructor.
type system struct {
	name          string
	policy        engine.PolicyFactory
	newController func() controller
}

// standardSystems builds the six §5.2 systems over the given base layout.
func standardSystems(sc Scale, base partition.Partitioner) []system {
	fusionCap := int(float64(sc.Rows) * sc.FusionFrac)
	return []system{
		{name: "Calvin", policy: func(a []tx.NodeID) router.Policy { return router.NewCalvin(base, a) }},
		{
			name:          "Clay",
			policy:        func(a []tx.NodeID) router.Policy { return router.NewCalvin(base, a) },
			newController: func() controller { return newClayController(sc, base) },
		},
		{name: "G-Store", policy: func(a []tx.NodeID) router.Policy { return router.NewGStore(base, a) }},
		{name: "T-Part", policy: func(a []tx.NodeID) router.Policy { return router.NewTPart(base, a, 0.25) }},
		{name: "LEAP", policy: func(a []tx.NodeID) router.Policy { return router.NewLEAP(base, a) }},
		{name: "Hermes", policy: hermesPolicy(base, fusionCap)},
	}
}

func hermesPolicy(base partition.Partitioner, fusionCap int) engine.PolicyFactory {
	cfg := core.Config{Alpha: 0.25, FusionCapacity: fusionCap, FusionPolicy: fusion.LRU}
	return func(a []tx.NodeID) router.Policy { return core.New(base, a, cfg) }
}

// runOutput is everything one measured run yields.
type runOutput struct {
	Throughput []float64 // commits per window
	CPU        []float64 // mean busy fraction per window
	NetPerTxn  []float64 // bytes per committed txn per window
	Breakdown  breakdown
	Committed  int64
	Aborted    int64
	Migrations int64
	// Routing cost (§3.2.4): mean scheduler time spent planning, per
	// batch and per transaction, in microseconds.
	RoutingPerBatchUs float64
	RoutingPerTxnUs   float64
}

type breakdown struct {
	Scheduling, LockWait, QueuePlan, QueueWait, Storage, RemoteWait, Other float64 // ms
}

// runLoad runs gen against a fresh cluster with the given system for
// sc.Phase, sampling per window. loader seeds the database; events (may
// be nil) runs alongside (provisioning scripts etc.) and is passed the
// cluster and the run start time.
func runLoad(sc Scale, sys system, gen workload.Generator,
	loader func(c *engine.Cluster), nodes, active []tx.NodeID,
	commitHook func(*router.Route), events func(c *engine.Cluster, start time.Time)) (*runOutput, error) {

	var ctl controller
	if sys.newController != nil {
		ctl = sys.newController()
	}
	hook := commitHook
	if ctl != nil {
		inner := hook
		hook = func(rt *router.Route) {
			ctl.Hook(rt)
			if inner != nil {
				inner(rt)
			}
		}
	}
	seqInt := sc.SeqInterval
	if seqInt <= 0 {
		seqInt = 2 * time.Millisecond
	}
	cfg := engine.Config{
		Nodes:        nodes,
		Active:       active,
		Policy:       sys.policy,
		Seq:          sequencer.Config{BatchSize: sc.BatchSize, Interval: seqInt},
		StorageDelay: sc.StorageDelay,
		Executors:    sc.Executors,
		ExecCost:     sc.ExecCost,
		ExecMode:     sc.ExecMode,
		Window:       sc.Window,
		CommitHook:   hook,
	}
	if sc.NetLatency > 0 {
		cfg.Latency = func(_, _ tx.NodeID, bytes int) time.Duration {
			return sc.NetLatency + time.Duration(float64(bytes)/1.25e9*float64(time.Second))
		}
	}
	sink := currentSink()
	var tel *telemetry.Telemetry
	if sink != nil {
		tel = telemetry.New(nodes, 0)
		cfg.Telemetry = tel
	}
	c, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	loader(c)

	if ctl != nil {
		ctl.Start(c)
	}

	driver := &workload.Driver{Gen: gen, Clients: sc.Clients}
	start := time.Now()
	driver.Run(clusterSubmitter{c}, start)
	if events != nil {
		events(c, start)
	}

	// Sample per window.
	nWin := int(sc.Phase / sc.Window)
	out := &runOutput{}
	var lastCommits, lastBytes int64
	lastBusy := make(map[tx.NodeID]time.Duration)
	col := c.Collector()
	for w := 0; w < nWin; w++ {
		time.Sleep(sc.Window)
		commits := col.Committed()
		_, bytes := c.NetStats().Totals()
		dC := commits - lastCommits
		dB := bytes - lastBytes
		lastCommits, lastBytes = commits, bytes
		out.Throughput = append(out.Throughput, float64(dC))
		busySum := 0.0
		for _, id := range active {
			b := col.BusyTotal(int(id))
			busySum += (b - lastBusy[id]).Seconds()
			lastBusy[id] = b
		}
		out.CPU = append(out.CPU, busySum/float64(len(active))/sc.Window.Seconds()*100)
		if dC > 0 {
			out.NetPerTxn = append(out.NetPerTxn, float64(dB)/float64(dC))
		} else {
			out.NetPerTxn = append(out.NetPerTxn, 0)
		}
	}
	driver.Stop()
	if ctl != nil {
		ctl.Stop()
	}
	c.Drain(10 * time.Second)

	bd := col.AvgBreakdown()
	out.Breakdown = breakdown{
		Scheduling: ms(bd.Scheduling),
		LockWait:   ms(bd.LockWait),
		QueuePlan:  ms(bd.QueuePlan),
		QueueWait:  ms(bd.QueueWait),
		Storage:    ms(bd.Storage),
		RemoteWait: ms(bd.RemoteWait),
		Other:      ms(bd.Other),
	}
	out.Committed = col.Committed()
	out.Aborted = col.Aborted()
	out.Migrations = col.Migrations()
	rs := col.Routing()
	out.RoutingPerBatchUs = us(rs.PerBatch)
	out.RoutingPerTxnUs = us(rs.PerTxn)
	if sink != nil {
		rec := RunRecord{
			System:            sys.name,
			Throughput:        out.Throughput,
			CPU:               out.CPU,
			NetPerTxn:         out.NetPerTxn,
			Breakdown:         out.Breakdown,
			Committed:         out.Committed,
			Aborted:           out.Aborted,
			Migrations:        out.Migrations,
			RoutingPerBatchUs: out.RoutingPerBatchUs,
			RoutingPerTxnUs:   out.RoutingPerTxnUs,
			Gauges:            tel.Registry().SnapshotMap(),
			Phases:            tel.Phases().SummaryMap(),
		}
		if slow := tel.Tail().Slow(); len(slow) > 0 {
			rec.SlowCaptured = tel.Tail().Captured()
			rec.SlowDominant = make(map[string]int64)
			for _, st := range slow {
				rec.SlowDominant[st.Dominant.String()]++
			}
		}
		sink(rec)
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// clusterSubmitter adapts engine.Cluster to workload.Submitter.
type clusterSubmitter struct{ c *engine.Cluster }

func (s clusterSubmitter) Submit(via tx.NodeID, proc tx.Procedure) (<-chan struct{}, error) {
	return s.c.Submit(via, proc)
}

func nodeIDs(n int) []tx.NodeID {
	out := make([]tx.NodeID, n)
	for i := range out {
		out[i] = tx.NodeID(i)
	}
	return out
}

func windowsX(n int, window time.Duration) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) * window.Seconds()
	}
	return out
}

// Registry maps experiment names to their runners.
var Registry = map[string]func(Scale) (*Result, error){
	"fig1":            Fig1,
	"fig2":            Fig2,
	"fig6a":           Fig6a,
	"fig6b":           Fig6b,
	"fig7":            Fig7,
	"fig8":            Fig8,
	"fig8b":           Fig8b,
	"fig9":            Fig9,
	"fig10":           Fig10,
	"fig11":           Fig11,
	"fig12":           Fig12,
	"fig13":           Fig13,
	"fig14":           Fig14,
	"ablation":        Ablation,
	"ablation-fusion": AblationFusionCapacity,
	"ablation-alpha":  AblationAlpha,
	"routingcost":     RoutingCost,
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
