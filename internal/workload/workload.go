// Package workload implements the three workloads of the paper's
// evaluation: the YCSB-based "Google workload" whose per-machine demand
// follows (synthetic) Google cluster traces and whose global hot spot
// sweeps the key space (§5.2.2), the TPC-C New-Order/Payment mix with
// configurable hot-spot concentration (§5.3.1), and the multi-tenant
// workload with a rotating hot node (§5.3.2). It also provides the
// closed-loop client driver used by all experiments (the paper drives the
// system with thousands of closed-loop clients).
package workload

import (
	"encoding/binary"
	"sync"
	"time"

	"hermes/internal/tx"
)

// Generator produces the next transaction to submit, given the elapsed
// experiment time (generators use it for trace windows and hot-spot
// rotation). Generators are safe for concurrent use.
type Generator interface {
	// Next returns a procedure and the node whose sequencer front-end the
	// client submits through.
	Next(elapsed time.Duration) (tx.Procedure, tx.NodeID)
}

// Submitter abstracts the cluster for the driver (engine.Cluster satisfies
// it via a thin adapter in the public API; tests use fakes).
type Submitter interface {
	Submit(via tx.NodeID, proc tx.Procedure) (<-chan struct{}, error)
}

// Driver runs closed-loop clients against a Submitter: each client
// submits, waits for completion, and immediately submits again — the
// paper's client model (§5.1, §5.3.1).
type Driver struct {
	Gen     Generator
	Clients int

	wg   sync.WaitGroup
	quit chan struct{}
	once sync.Once
}

// Run starts the clients against sub, with elapsed time measured from
// start. It returns immediately; call Stop to end the run.
func (d *Driver) Run(sub Submitter, start time.Time) {
	d.quit = make(chan struct{})
	for i := 0; i < d.Clients; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				select {
				case <-d.quit:
					return
				default:
				}
				proc, via := d.Gen.Next(time.Since(start))
				done, err := sub.Submit(via, proc)
				if err != nil {
					return // cluster stopped
				}
				select {
				case <-done:
				case <-d.quit:
					return
				}
			}
		}()
	}
}

// Stop terminates the clients and waits for them to exit.
func (d *Driver) Stop() {
	d.once.Do(func() { close(d.quit) })
	d.wg.Wait()
}

// Value builds a deterministic record payload of the given size whose
// first 8 bytes carry a counter — workload procedures increment it, which
// gives integration tests an invariant to check.
func Value(size int, counter uint64) []byte {
	if size < 8 {
		size = 8
	}
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, counter)
	return v
}

// Counter reads the counter from a payload built by Value.
func Counter(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// IncrementProc returns the standard read-modify-write transaction used
// by the YCSB-style workloads: read all keys, increment each written
// key's counter.
func IncrementProc(reads, writes []tx.Key, payload int) tx.Procedure {
	return &tx.OpProc{
		Reads:  reads,
		Writes: writes,
		Mutate: func(_ tx.Key, cur []byte) []byte {
			return Value(payload, Counter(cur)+1)
		},
	}
}

// ReadProc returns a read-only transaction over keys.
func ReadProc(keys []tx.Key) tx.Procedure {
	return &tx.OpProc{Reads: keys}
}
