package workload

import (
	"math/rand"
	"sync"
	"time"

	"hermes/internal/partition"
	"hermes/internal/tx"
)

// TPC-C table tags within the shared key space.
const (
	TableWarehouse uint8 = 1
	TableDistrict  uint8 = 2
	TableCustomer  uint8 = 3
	TableStock     uint8 = 5
	TableOrder     uint8 = 6
	TableOrderLine uint8 = 7
	TableHistory   uint8 = 8
	TableNewOrder  uint8 = 9
)

// Row-id layout constants.
const (
	districtsPerWarehouse = 10
	customersPerDistrict  = 3000
	orderSeqSpace         = 10_000_000
	orderLinesPerOrder    = 16
)

// TPCCConfig parameterizes the TPC-C workload of §5.3.1 (New-Order and
// Payment only — the two transactions contributing 88% of the standard
// mix).
type TPCCConfig struct {
	// Warehouses in the database; WarehousesPerNode gives the static
	// by-warehouse partitioning (the paper uses 20 nodes × 20
	// warehouses).
	Warehouses        int
	WarehousesPerNode int
	// StockPerWarehouse downsizes the 100k-item stock table while
	// preserving structure.
	StockPerWarehouse int
	// HotSpotProb is the fraction of requests directed at the first
	// node's warehouses (0, 0.5, 0.8, 0.9 in Fig. 11).
	HotSpotProb float64
	// NewOrderRatio is the fraction of New-Order transactions (the rest
	// are Payments); ≈ 0.5 matches the relative standard mix.
	NewOrderRatio float64
	// AbortProb is the probability a New-Order aborts on an invalid item
	// (1% in the spec).
	AbortProb float64
	Payload   int
	Seed      int64
}

// DefaultTPCCConfig returns a downscaled paper-like configuration.
func DefaultTPCCConfig(nodes, warehousesPerNode int) TPCCConfig {
	return TPCCConfig{
		Warehouses:        nodes * warehousesPerNode,
		WarehousesPerNode: warehousesPerNode,
		StockPerWarehouse: 1000,
		NewOrderRatio:     0.5,
		AbortProb:         0.01,
		Payload:           64,
	}
}

// TPCC generates New-Order and Payment transactions. Safe for concurrent
// use.
type TPCC struct {
	cfg TPCCConfig

	mu  sync.Mutex
	rng *rand.Rand
	seq uint64
}

// NewTPCC builds the generator; it panics on invalid configuration.
func NewTPCC(cfg TPCCConfig) *TPCC {
	if cfg.Warehouses <= 0 || cfg.WarehousesPerNode <= 0 || cfg.StockPerWarehouse <= 0 {
		panic("workload: invalid TPC-C config")
	}
	if cfg.Payload == 0 {
		cfg.Payload = 64
	}
	return &TPCC{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Partitioner returns the canonical by-warehouse static partitioning.
func (t *TPCC) Partitioner() partition.Partitioner {
	cfg := t.cfg
	nodes := (cfg.Warehouses + cfg.WarehousesPerNode - 1) / cfg.WarehousesPerNode
	return &partition.Func{
		N: nodes,
		F: func(k tx.Key) tx.NodeID {
			w := WarehouseOf(k)
			n := int(w) / cfg.WarehousesPerNode
			if n >= nodes {
				n = nodes - 1
			}
			return tx.NodeID(n)
		},
	}
}

// WarehouseOf decodes the owning warehouse from any TPC-C key.
func WarehouseOf(k tx.Key) uint64 {
	row := k.Row()
	switch k.Table() {
	case TableWarehouse:
		return row
	case TableDistrict:
		return row / districtsPerWarehouse
	case TableCustomer:
		return row / (districtsPerWarehouse * customersPerDistrict)
	case TableStock:
		return row >> 20
	case TableOrder, TableHistory, TableNewOrder:
		return row / orderSeqSpace
	case TableOrderLine:
		return row / (orderSeqSpace * orderLinesPerOrder)
	default:
		return 0
	}
}

// WarehouseKey returns warehouse w's record key.
func WarehouseKey(w uint64) tx.Key { return tx.MakeKey(TableWarehouse, w) }

// DistrictKey returns district (w, d)'s record key.
func DistrictKey(w, d uint64) tx.Key {
	return tx.MakeKey(TableDistrict, w*districtsPerWarehouse+d)
}

// CustomerKey returns customer (w, d, c)'s record key.
func CustomerKey(w, d, c uint64) tx.Key {
	return tx.MakeKey(TableCustomer, (w*districtsPerWarehouse+d)*customersPerDistrict+c)
}

// StockKey returns stock (w, i)'s record key.
func StockKey(w, i uint64) tx.Key { return tx.MakeKey(TableStock, w<<20|i) }

// ForEachRecord enumerates the initial database (warehouses, districts,
// customers with a downsized customer count, and stock) so callers can
// load it; the value payloads carry counters like every workload here.
func (t *TPCC) ForEachRecord(fn func(k tx.Key, v []byte)) {
	cfg := t.cfg
	for w := uint64(0); w < uint64(cfg.Warehouses); w++ {
		fn(WarehouseKey(w), Value(cfg.Payload, 0))
		for d := uint64(0); d < districtsPerWarehouse; d++ {
			fn(DistrictKey(w, d), Value(cfg.Payload, 0))
			// Customers are sampled lazily by the generator from the
			// first 100 per district to keep load times sane.
			for c := uint64(0); c < 100; c++ {
				fn(CustomerKey(w, d, c), Value(cfg.Payload, 0))
			}
		}
		for i := uint64(0); i < uint64(cfg.StockPerWarehouse); i++ {
			fn(StockKey(w, i), Value(cfg.Payload, 0))
		}
	}
}

// pickWarehouse applies the hot-spot concentration: with HotSpotProb the
// warehouse comes from the first node, otherwise uniform.
func (t *TPCC) pickWarehouse() uint64 {
	if t.rng.Float64() < t.cfg.HotSpotProb {
		return uint64(t.rng.Intn(t.cfg.WarehousesPerNode))
	}
	return uint64(t.rng.Intn(t.cfg.Warehouses))
}

// Next implements Generator.
func (t *TPCC) Next(time.Duration) (tx.Procedure, tx.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.pickWarehouse()
	via := tx.NodeID(int(w) / t.cfg.WarehousesPerNode)
	if t.rng.Float64() < t.cfg.NewOrderRatio {
		return t.newOrder(w), via
	}
	return t.payment(w), via
}

// newOrder builds a New-Order: read warehouse/district/customer, bump the
// district's next-order id, read+decrement 5-15 stock records (1% drawn
// from a remote warehouse, per spec), and insert order, new-order, and
// order-line rows under a client-unique order id — the standard
// deterministic-database adaptation, since next_o_id cannot be read
// before the write-set is declared.
func (t *TPCC) newOrder(w uint64) tx.Procedure {
	cfg := t.cfg
	d := uint64(t.rng.Intn(districtsPerWarehouse))
	c := uint64(t.rng.Intn(100))
	nItems := 5 + t.rng.Intn(11)
	t.seq = (t.seq + 1) % orderSeqSpace
	orderRow := w*orderSeqSpace + t.seq

	reads := []tx.Key{WarehouseKey(w), DistrictKey(w, d), CustomerKey(w, d, c)}
	writes := []tx.Key{DistrictKey(w, d)}
	seenStock := map[tx.Key]bool{}
	for i := 0; i < nItems; i++ {
		sw := w
		if t.rng.Intn(100) == 0 && cfg.Warehouses > 1 {
			// Remote stock: ~10% of New-Orders become distributed.
			for {
				sw = uint64(t.rng.Intn(cfg.Warehouses))
				if sw != w {
					break
				}
			}
		}
		sk := StockKey(sw, uint64(t.rng.Intn(cfg.StockPerWarehouse)))
		if seenStock[sk] {
			continue
		}
		seenStock[sk] = true
		reads = append(reads, sk)
		writes = append(writes, sk)
	}
	writes = append(writes,
		tx.MakeKey(TableOrder, orderRow),
		tx.MakeKey(TableNewOrder, orderRow),
	)
	for i := 0; i < nItems; i++ {
		writes = append(writes, tx.MakeKey(TableOrderLine, orderRow*orderLinesPerOrder+uint64(i)))
	}

	abort := t.rng.Float64() < cfg.AbortProb
	payload := cfg.Payload
	return &tx.FuncProc{
		Reads:  reads,
		Writes: writes,
		Fn: func(ctx tx.ExecCtx) {
			if abort {
				ctx.Abort("invalid item")
				return
			}
			for _, k := range writes {
				switch k.Table() {
				case TableDistrict, TableStock:
					ctx.Write(k, Value(payload, Counter(ctx.Read(k))+1))
				default: // fresh order/new-order/order-line rows
					ctx.Write(k, Value(payload, 1))
				}
			}
		},
	}
}

// payment builds a Payment: read+update warehouse/district/customer YTD
// counters and insert a history row; 15% of payments go through a remote
// customer, per spec.
func (t *TPCC) payment(w uint64) tx.Procedure {
	cfg := t.cfg
	d := uint64(t.rng.Intn(districtsPerWarehouse))
	cw, cd := w, d
	if t.rng.Intn(100) < 15 && cfg.Warehouses > 1 {
		for {
			cw = uint64(t.rng.Intn(cfg.Warehouses))
			if cw != w {
				break
			}
		}
		cd = uint64(t.rng.Intn(districtsPerWarehouse))
	}
	c := uint64(t.rng.Intn(100))
	t.seq = (t.seq + 1) % orderSeqSpace
	histKey := tx.MakeKey(TableHistory, w*orderSeqSpace+t.seq)

	rw := []tx.Key{WarehouseKey(w), DistrictKey(w, d), CustomerKey(cw, cd, c)}
	writes := append(append([]tx.Key(nil), rw...), histKey)
	payload := cfg.Payload
	return &tx.FuncProc{
		Reads:  rw,
		Writes: writes,
		Fn: func(ctx tx.ExecCtx) {
			for _, k := range rw {
				ctx.Write(k, Value(payload, Counter(ctx.Read(k))+1))
			}
			ctx.Write(histKey, Value(payload, 1))
		},
	}
}
