package workload

import (
	"sync"
	"testing"
	"time"

	"hermes/internal/trace"
	"hermes/internal/tx"
)

func TestValueCounterRoundTrip(t *testing.T) {
	v := Value(64, 42)
	if len(v) != 64 || Counter(v) != 42 {
		t.Fatalf("Value/Counter round trip failed: len=%d counter=%d", len(v), Counter(v))
	}
	if Counter(nil) != 0 {
		t.Fatal("Counter(nil) != 0")
	}
	if len(Value(2, 1)) != 8 {
		t.Fatal("undersized payload not widened to hold counter")
	}
}

func TestIncrementProc(t *testing.T) {
	p := IncrementProc([]tx.Key{1}, []tx.Key{1}, 16)
	ctx := &fakeCtx{vals: map[tx.Key][]byte{1: Value(16, 5)}, writes: map[tx.Key][]byte{}}
	p.Execute(ctx)
	if Counter(ctx.writes[1]) != 6 {
		t.Fatalf("increment = %d, want 6", Counter(ctx.writes[1]))
	}
}

type fakeCtx struct {
	vals    map[tx.Key][]byte
	writes  map[tx.Key][]byte
	aborted bool
}

func (c *fakeCtx) Read(k tx.Key) []byte     { return c.vals[k] }
func (c *fakeCtx) Write(k tx.Key, v []byte) { c.writes[k] = v }
func (c *fakeCtx) Abort(string)             { c.aborted = true }
func (c *fakeCtx) Aborted() bool            { return c.aborted }

func googleGen(t *testing.T, nodes int) *Google {
	t.Helper()
	tr := trace.Generate(trace.DefaultConfig(nodes, 50, 1))
	return NewGoogle(GoogleConfig{
		Rows: 10000, Nodes: nodes, Trace: tr,
		WindowDur: 100 * time.Millisecond, DistributedRatio: 0.5,
		ReadWriteRatio: 0.5, Theta: 0.9, SweepPeriod: 10 * time.Second,
		Payload: 32, Seed: 3,
	})
}

func TestGoogleGeneratesValidTxns(t *testing.T) {
	g := googleGen(t, 4)
	reads, writes := 0, 0
	for i := 0; i < 2000; i++ {
		proc, via := g.Next(time.Duration(i) * time.Millisecond)
		if via < 0 || int(via) >= 4 {
			t.Fatalf("via node %d out of range", via)
		}
		rs := proc.ReadSet()
		if len(rs) == 0 {
			t.Fatal("transaction with no reads")
		}
		for _, k := range rs {
			if k.Row() >= 10000 {
				t.Fatalf("key %v out of table", k)
			}
		}
		reads++
		if len(proc.WriteSet()) > 0 {
			writes++
		}
	}
	// Roughly half read-write.
	if writes < reads/4 || writes > reads*3/4 {
		t.Errorf("read-write fraction = %d/%d, want ≈ 1/2", writes, reads)
	}
}

func TestGoogleTxnLength(t *testing.T) {
	tr := trace.Generate(trace.DefaultConfig(2, 10, 1))
	g := NewGoogle(GoogleConfig{
		Rows: 10000, Nodes: 2, Trace: tr,
		RecordsMean: 10, RecordsStd: 3, Theta: 0.5, Seed: 5,
	})
	total := 0
	const samples = 500
	for i := 0; i < samples; i++ {
		proc, _ := g.Next(0)
		total += len(proc.ReadSet())
	}
	mean := float64(total) / samples
	// Normalized key dedup trims a little; accept a broad band around 10.
	if mean < 6 || mean > 12 {
		t.Errorf("mean transaction length = %f, want ≈ 10", mean)
	}
}

func TestGoogleHotSpotSweeps(t *testing.T) {
	g := googleGen(t, 2)
	// Sample distributed keys early and late in the sweep; their
	// centers of mass must differ.
	sum := func(el time.Duration) uint64 {
		var s uint64
		for i := 0; i < 500; i++ {
			proc, _ := g.Next(el)
			ks := proc.ReadSet()
			s += ks[len(ks)-1].Row()
		}
		return s / 500
	}
	early := sum(0)
	late := sum(5 * time.Second) // half sweep: peak at mid key space
	if early == late {
		t.Error("global hot spot does not move")
	}
}

func TestGooglePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGoogle(GoogleConfig{})
}

func TestTPCCKeysDecodeWarehouse(t *testing.T) {
	cases := []struct {
		k tx.Key
		w uint64
	}{
		{WarehouseKey(7), 7},
		{DistrictKey(7, 3), 7},
		{CustomerKey(7, 3, 100), 7},
		{StockKey(7, 55), 7},
		{tx.MakeKey(TableOrder, 7*orderSeqSpace+123), 7},
		{tx.MakeKey(TableOrderLine, (7*orderSeqSpace+123)*orderLinesPerOrder+5), 7},
		{tx.MakeKey(TableHistory, 7*orderSeqSpace+9), 7},
	}
	for _, c := range cases {
		if got := WarehouseOf(c.k); got != c.w {
			t.Errorf("WarehouseOf(%v) = %d, want %d", c.k, got, c.w)
		}
	}
}

func TestTPCCPartitionerColocatesWarehouse(t *testing.T) {
	gen := NewTPCC(DefaultTPCCConfig(4, 5)) // 20 warehouses
	p := gen.Partitioner()
	if p.Nodes() != 4 {
		t.Fatalf("Nodes = %d", p.Nodes())
	}
	for w := uint64(0); w < 20; w++ {
		want := tx.NodeID(w / 5)
		for _, k := range []tx.Key{WarehouseKey(w), DistrictKey(w, 9), CustomerKey(w, 9, 2999), StockKey(w, 999)} {
			if got := p.Home(k); got != want {
				t.Fatalf("Home(%v) = %d, want %d", k, got, want)
			}
		}
	}
}

func TestTPCCTxnsAreWellFormed(t *testing.T) {
	gen := NewTPCC(DefaultTPCCConfig(4, 5))
	newOrders, payments := 0, 0
	for i := 0; i < 1000; i++ {
		proc, via := gen.Next(0)
		if via < 0 || via >= 4 {
			t.Fatalf("via = %d", via)
		}
		rs, ws := proc.ReadSet(), proc.WriteSet()
		if len(rs) == 0 || len(ws) == 0 {
			t.Fatal("empty access sets")
		}
		hasStock := false
		for _, k := range ws {
			if k.Table() == TableStock {
				hasStock = true
			}
		}
		if hasStock {
			newOrders++
		} else {
			payments++
		}
	}
	if newOrders == 0 || payments == 0 {
		t.Fatalf("mix = %d new-orders, %d payments", newOrders, payments)
	}
}

func TestTPCCHotSpotConcentration(t *testing.T) {
	cfg := DefaultTPCCConfig(4, 5)
	cfg.HotSpotProb = 0.9
	gen := NewTPCC(cfg)
	hot := 0
	const samples = 1000
	for i := 0; i < samples; i++ {
		_, via := gen.Next(0)
		if via == 0 {
			hot++
		}
	}
	// 90% + 10%/4 ≈ 92.5% of requests on node 0.
	if hot < samples*80/100 {
		t.Errorf("hot node got %d/%d requests, want ≈ 92%%", hot, samples)
	}
}

func TestTPCCNewOrderAbortLogic(t *testing.T) {
	cfg := DefaultTPCCConfig(1, 1)
	cfg.AbortProb = 1.0
	cfg.NewOrderRatio = 1.0
	gen := NewTPCC(cfg)
	proc, _ := gen.Next(0)
	ctx := &fakeCtx{vals: map[tx.Key][]byte{}, writes: map[tx.Key][]byte{}}
	for _, k := range proc.ReadSet() {
		ctx.vals[k] = Value(16, 0)
	}
	proc.Execute(ctx)
	if !ctx.aborted {
		t.Fatal("AbortProb=1 New-Order did not abort")
	}
	if len(ctx.writes) != 0 {
		t.Fatalf("aborted New-Order wrote %d records", len(ctx.writes))
	}
}

func TestTPCCLoadEnumerates(t *testing.T) {
	gen := NewTPCC(TPCCConfig{
		Warehouses: 2, WarehousesPerNode: 1, StockPerWarehouse: 10,
		NewOrderRatio: 0.5, Payload: 16,
	})
	count := 0
	gen.ForEachRecord(func(k tx.Key, v []byte) {
		count++
		if len(v) != 16 {
			t.Fatalf("payload size %d", len(v))
		}
	})
	// Per warehouse: 1 + 10 districts ×(1 + 100 customers) + 10 stock.
	want := 2 * (1 + 10*(1+100) + 10)
	if count != want {
		t.Fatalf("records = %d, want %d", count, want)
	}
}

func TestMultiTenantKeysStayInTenant(t *testing.T) {
	gen := NewMultiTenant(DefaultMultiTenantConfig(4))
	rows := gen.cfg.RowsPerTenant
	for i := 0; i < 1000; i++ {
		proc, _ := gen.Next(0)
		ks := proc.ReadSet()
		t0 := ks[0].Row() / rows
		for _, k := range ks {
			if k.Row()/rows != t0 {
				t.Fatalf("transaction spans tenants: %v", ks)
			}
		}
	}
}

func TestMultiTenantConcentration(t *testing.T) {
	cfg := DefaultMultiTenantConfig(4)
	cfg.RotationPeriod = 0
	cfg.HotNode = 2
	gen := NewMultiTenant(cfg)
	hot := 0
	const samples = 1000
	for i := 0; i < samples; i++ {
		_, via := gen.Next(0)
		if via == 2 {
			hot++
		}
	}
	if hot < samples*8/10 {
		t.Errorf("hot node got %d/%d, want ≈ 92%%", hot, samples)
	}
}

func TestMultiTenantRotation(t *testing.T) {
	cfg := DefaultMultiTenantConfig(4)
	cfg.RotationPeriod = time.Second
	gen := NewMultiTenant(cfg)
	if gen.HotNodeAt(0) == gen.HotNodeAt(time.Second) {
		t.Error("hot node did not rotate")
	}
	if gen.HotNodeAt(0) != gen.HotNodeAt(4*time.Second) {
		t.Error("rotation did not wrap around")
	}
}

func TestMultiTenantPartitioners(t *testing.T) {
	gen := NewMultiTenant(DefaultMultiTenantConfig(4))
	p := gen.Partitioner()
	if p.Nodes() != 4 {
		t.Fatalf("Nodes = %d", p.Nodes())
	}
	lo, hi := gen.TenantRange(0)
	if p.Home(lo) != 0 || p.Home(hi-1) != 0 {
		t.Error("tenant 0 not wholly on node 0 under perfect layout")
	}
	sk, err := gen.SkewedPartitioner(7)
	if err != nil {
		t.Fatal(err)
	}
	// First 7 tenants on node 0.
	lo6, _ := gen.TenantRange(6)
	if sk.Home(lo6) != 0 {
		t.Error("skewed layout: tenant 6 not on node 0")
	}
	lo8, _ := gen.TenantRange(8)
	if sk.Home(lo8) == 0 {
		t.Error("skewed layout: tenant 8 still on node 0")
	}
}

func TestDriverClosedLoop(t *testing.T) {
	gen := NewMultiTenant(DefaultMultiTenantConfig(2))
	sub := &fakeSubmitter{}
	d := &Driver{Gen: gen, Clients: 4}
	d.Run(sub, time.Now())
	time.Sleep(50 * time.Millisecond)
	d.Stop()
	if sub.count() == 0 {
		t.Fatal("driver submitted nothing")
	}
	before := sub.count()
	time.Sleep(20 * time.Millisecond)
	if sub.count() != before {
		t.Fatal("driver kept submitting after Stop")
	}
}

type fakeSubmitter struct {
	mu sync.Mutex
	n  int
}

func (f *fakeSubmitter) Submit(tx.NodeID, tx.Procedure) (<-chan struct{}, error) {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
	done := make(chan struct{})
	close(done)
	return done, nil
}

func (f *fakeSubmitter) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}
