package workload

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"hermes/internal/trace"
	"hermes/internal/tx"
	"hermes/internal/zipf"
)

// GoogleConfig parameterizes the YCSB-based Google workload of §5.2.2.
type GoogleConfig struct {
	// Rows is the table size (the paper loads 200M 1KB records; the
	// emulation downsizes, preserving skew).
	Rows uint64
	// Nodes is the number of server partitions the trace modulates.
	Nodes int
	// Trace drives the per-machine demand distribution; it must have at
	// least Nodes machines. WindowDur maps trace windows to elapsed time.
	Trace     *trace.Cluster
	WindowDur time.Duration
	// DistributedRatio is the fraction of transactions that add a
	// globally distributed record (0.5 in the paper).
	DistributedRatio float64
	// ReadWriteRatio is the fraction of read-modify-write transactions
	// (0.5 in the paper; the rest are read-only).
	ReadWriteRatio float64
	// RecordsMean/RecordsStd control transaction length (Fig. 9): the
	// number of accessed records is drawn from N(mean, std), min 2.
	// Zero mean defaults to the paper's 2-record transactions.
	RecordsMean float64
	RecordsStd  float64
	// Theta is the per-partition Zipfian skew (YCSB default 0.99 unless
	// set).
	Theta float64
	// SweepPeriod is the time for the global hot spot to sweep the whole
	// key space once ("active users around the world in 24 hours").
	SweepPeriod time.Duration
	// Payload is the record size in bytes (1KB in the paper).
	Payload int
	Seed    int64
}

// Google generates the complex trace-driven workload. Safe for concurrent
// use.
type Google struct {
	cfg GoogleConfig

	mu     sync.Mutex
	rng    *rand.Rand
	local  *zipf.Zipfian   // intra-partition skew
	global *zipf.TwoSided  // global moving-peak distribution
	peak   zipf.MovingPeak // sweep position
}

// NewGoogle builds the generator. It panics on invalid configuration.
func NewGoogle(cfg GoogleConfig) *Google {
	if cfg.Rows == 0 || cfg.Nodes <= 0 || cfg.Trace == nil {
		panic("workload: Rows, Nodes, and Trace are required")
	}
	if cfg.Trace.Machines() < cfg.Nodes {
		panic("workload: trace has fewer machines than nodes")
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.WindowDur <= 0 {
		cfg.WindowDur = time.Second
	}
	if cfg.SweepPeriod <= 0 {
		cfg.SweepPeriod = time.Minute
	}
	if cfg.Payload == 0 {
		cfg.Payload = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rowsPerPart := cfg.Rows / uint64(cfg.Nodes)
	if rowsPerPart == 0 {
		rowsPerPart = 1
	}
	return &Google{
		cfg:    cfg,
		rng:    rng,
		local:  zipf.NewZipfian(rng, rowsPerPart, cfg.Theta),
		global: zipf.NewTwoSided(rng, cfg.Rows, cfg.Theta),
		peak:   zipf.MovingPeak{N: cfg.Rows, Period: cfg.SweepPeriod.Seconds()},
	}
}

// Next implements Generator.
func (g *Google) Next(elapsed time.Duration) (tx.Procedure, tx.NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()

	w := int(elapsed / g.cfg.WindowDur)
	if max := g.cfg.Trace.Windows(); w >= max {
		w = max - 1
	}
	shares := g.cfg.Trace.Shares(w)

	// Transaction length (Fig. 9): default 2 records.
	n := 2
	if g.cfg.RecordsMean > 0 {
		n = int(math.Round(g.rng.NormFloat64()*g.cfg.RecordsStd + g.cfg.RecordsMean))
		if n < 2 {
			n = 2
		}
	}

	keys := make([]tx.Key, 0, n)
	// Local records follow the trace-weighted partition choice plus the
	// per-partition Zipfian.
	nLocal := n
	distributed := g.rng.Float64() < g.cfg.DistributedRatio
	if distributed {
		nLocal = n / 2
		if nLocal == 0 {
			nLocal = 1
		}
	}
	part := g.pickPartition(shares[:g.cfg.Nodes])
	rowsPerPart := g.cfg.Rows / uint64(g.cfg.Nodes)
	for i := 0; i < nLocal; i++ {
		row := uint64(part)*rowsPerPart + g.local.Next()
		keys = append(keys, tx.MakeKey(0, row%g.cfg.Rows))
	}
	// Distributed records come from the global two-sided Zipfian whose
	// peak sweeps the key space over time.
	for i := nLocal; i < n; i++ {
		row := g.global.Next(g.peak.At(elapsed.Seconds()))
		keys = append(keys, tx.MakeKey(0, row))
	}
	keys = tx.NormalizeKeys(keys)

	via := tx.NodeID(part)
	if g.rng.Float64() < g.cfg.ReadWriteRatio {
		return IncrementProc(keys, keys, g.cfg.Payload), via
	}
	return ReadProc(keys), via
}

// pickPartition samples a partition index proportional to shares.
func (g *Google) pickPartition(shares []float64) int {
	total := 0.0
	for _, s := range shares {
		total += s
	}
	if total <= 0 {
		return g.rng.Intn(len(shares))
	}
	u := g.rng.Float64() * total
	acc := 0.0
	for i, s := range shares {
		acc += s
		if u < acc {
			return i
		}
	}
	return len(shares) - 1
}
