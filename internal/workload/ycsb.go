package workload

import (
	"math/rand"
	"sync"
	"time"

	"hermes/internal/tx"
	"hermes/internal/zipf"
)

// YCSBMix selects one of the standard core workload mixes.
type YCSBMix uint8

// Standard YCSB core workloads.
const (
	// YCSBA is update-heavy: 50% reads, 50% updates.
	YCSBA YCSBMix = iota
	// YCSBB is read-mostly: 95% reads, 5% updates.
	YCSBB
	// YCSBC is read-only.
	YCSBC
	// YCSBF is read-modify-write.
	YCSBF
)

// YCSBConfig parameterizes the plain (non-trace-driven) YCSB generator —
// a simpler sibling of the Google workload, useful for microbenchmarks
// and the quickstart examples.
type YCSBConfig struct {
	Rows uint64
	// Nodes spreads submissions round-robin across front-ends.
	Nodes int
	Mix   YCSBMix
	// Theta is the Zipfian skew (YCSB default 0.99).
	Theta float64
	// KeysPerTxn is the number of records per transaction (default 2;
	// YCSB's default of 1 produces no distributed transactions at all).
	KeysPerTxn int
	// Scramble decorrelates popularity from key order (YCSB's
	// "scrambled zipfian").
	Scramble bool
	Payload  int
	Seed     int64
}

// YCSB generates the standard mixes. Safe for concurrent use.
type YCSB struct {
	cfg YCSBConfig

	mu        sync.Mutex
	rng       *rand.Rand
	plain     *zipf.Zipfian
	scrambled *zipf.Scrambled
	nextNode  int
}

// NewYCSB builds the generator; it panics on invalid configuration.
func NewYCSB(cfg YCSBConfig) *YCSB {
	if cfg.Rows == 0 || cfg.Nodes <= 0 {
		panic("workload: Rows and Nodes are required")
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.KeysPerTxn <= 0 {
		cfg.KeysPerTxn = 2
	}
	if cfg.Payload == 0 {
		cfg.Payload = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	y := &YCSB{cfg: cfg, rng: rng}
	if cfg.Scramble {
		y.scrambled = zipf.NewScrambled(rng, cfg.Rows, cfg.Theta)
	} else {
		y.plain = zipf.NewZipfian(rng, cfg.Rows, cfg.Theta)
	}
	return y
}

func (y *YCSB) sample() uint64 {
	if y.scrambled != nil {
		return y.scrambled.Next()
	}
	return y.plain.Next()
}

// Next implements Generator.
func (y *YCSB) Next(time.Duration) (tx.Procedure, tx.NodeID) {
	y.mu.Lock()
	defer y.mu.Unlock()
	keys := make([]tx.Key, 0, y.cfg.KeysPerTxn)
	for i := 0; i < y.cfg.KeysPerTxn; i++ {
		keys = append(keys, tx.MakeKey(0, y.sample()))
	}
	keys = tx.NormalizeKeys(keys)
	via := tx.NodeID(y.nextNode)
	y.nextNode = (y.nextNode + 1) % y.cfg.Nodes

	write := false
	switch y.cfg.Mix {
	case YCSBA:
		write = y.rng.Float64() < 0.5
	case YCSBB:
		write = y.rng.Float64() < 0.05
	case YCSBC:
		write = false
	case YCSBF:
		write = true
	}
	if write {
		return IncrementProc(keys, keys, y.cfg.Payload), via
	}
	return ReadProc(keys), via
}
