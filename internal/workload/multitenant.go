package workload

import (
	"math/rand"
	"sync"
	"time"

	"hermes/internal/partition"
	"hermes/internal/tx"
	"hermes/internal/zipf"
)

// MultiTenantConfig parameterizes the multi-tenant workload of §5.3.2:
// each server hosts several non-overlapping tenant databases; every
// transaction reads-modifies-writes two records of a single tenant; a
// large fraction of the requests concentrate on the tenants of one "hot"
// node, and the hot node rotates periodically.
type MultiTenantConfig struct {
	Nodes          int
	TenantsPerNode int
	RowsPerTenant  uint64
	// Concentration is the fraction of requests aimed at the hot node's
	// tenants (0.9 in the paper).
	Concentration float64
	// RotationPeriod moves the hot spot to the next node (500s in the
	// paper; scaled down in the emulation).
	RotationPeriod time.Duration
	// HotNodes fixes the hot node when RotationPeriod is zero (Fig. 14's
	// scale-out uses a static hot spot on node 0).
	HotNode int
	// Theta is the per-tenant Zipfian skew (0.9 in the paper).
	Theta   float64
	Payload int
	Seed    int64
}

// DefaultMultiTenantConfig mirrors §5.3.2 at reduced scale.
func DefaultMultiTenantConfig(nodes int) MultiTenantConfig {
	return MultiTenantConfig{
		Nodes:          nodes,
		TenantsPerNode: 4,
		RowsPerTenant:  2500,
		Concentration:  0.9,
		RotationPeriod: 5 * time.Second,
		Theta:          0.9,
		Payload:        64,
	}
}

// MultiTenant generates the rotating-hot-spot workload. Safe for
// concurrent use.
type MultiTenant struct {
	cfg MultiTenantConfig

	mu  sync.Mutex
	rng *rand.Rand
	z   *zipf.Zipfian
}

// NewMultiTenant builds the generator; it panics on invalid configuration.
func NewMultiTenant(cfg MultiTenantConfig) *MultiTenant {
	if cfg.Nodes <= 0 || cfg.TenantsPerNode <= 0 || cfg.RowsPerTenant == 0 {
		panic("workload: invalid multi-tenant config")
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.9
	}
	if cfg.Payload == 0 {
		cfg.Payload = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &MultiTenant{
		cfg: cfg,
		rng: rng,
		z:   zipf.NewZipfian(rng, cfg.RowsPerTenant, cfg.Theta),
	}
}

// Rows returns the total table size.
func (m *MultiTenant) Rows() uint64 {
	return uint64(m.cfg.Nodes) * uint64(m.cfg.TenantsPerNode) * m.cfg.RowsPerTenant
}

// Partitioner returns the "perfect" initial layout: each tenant's range
// wholly on its node.
func (m *MultiTenant) Partitioner() partition.Partitioner {
	return partition.NewUniformRange(0, m.Rows(), m.cfg.Nodes)
}

// SkewedPartitioner returns the Fig. 13 skewed layout: the first
// `tenantsOnFirst` tenants all on node 0, the rest split evenly.
func (m *MultiTenant) SkewedPartitioner(tenantsOnFirst int) (partition.Partitioner, error) {
	tenantRows := m.cfg.RowsPerTenant
	split := uint64(tenantsOnFirst) * tenantRows
	bounds := []tx.Key{tx.MakeKey(0, 0), tx.MakeKey(0, split)}
	rest := m.Rows() - split
	for i := 1; i < m.cfg.Nodes; i++ {
		bounds = append(bounds, tx.MakeKey(0, split+rest*uint64(i)/uint64(m.cfg.Nodes-1)))
	}
	return partition.NewRangeBoundaries(bounds)
}

// HotNodeAt returns the hot node at the given elapsed time.
func (m *MultiTenant) HotNodeAt(elapsed time.Duration) int {
	if m.cfg.RotationPeriod <= 0 {
		return m.cfg.HotNode
	}
	return (m.cfg.HotNode + int(elapsed/m.cfg.RotationPeriod)) % m.cfg.Nodes
}

// TenantRange returns tenant t's key range [lo, hi).
func (m *MultiTenant) TenantRange(t int) (lo, hi tx.Key) {
	start := uint64(t) * m.cfg.RowsPerTenant
	return tx.MakeKey(0, start), tx.MakeKey(0, start+m.cfg.RowsPerTenant)
}

// Next implements Generator.
func (m *MultiTenant) Next(elapsed time.Duration) (tx.Procedure, tx.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg := m.cfg
	hot := m.HotNodeAt(elapsed)
	node := m.rng.Intn(cfg.Nodes)
	if m.rng.Float64() < cfg.Concentration {
		node = hot
	}
	tenant := node*cfg.TenantsPerNode + m.rng.Intn(cfg.TenantsPerNode)
	base := uint64(tenant) * cfg.RowsPerTenant
	k1 := tx.MakeKey(0, base+m.z.Next())
	k2 := tx.MakeKey(0, base+m.z.Next())
	keys := tx.NormalizeKeys([]tx.Key{k1, k2})
	return IncrementProc(keys, keys, cfg.Payload), tx.NodeID(node)
}
