package workload

import (
	"testing"
	"testing/quick"
)

func TestYCSBMixRatios(t *testing.T) {
	cases := []struct {
		mix            YCSBMix
		wantLo, wantHi float64 // acceptable write fraction band
	}{
		{YCSBA, 0.4, 0.6},
		{YCSBB, 0.01, 0.12},
		{YCSBC, 0, 0},
		{YCSBF, 1, 1},
	}
	for _, c := range cases {
		gen := NewYCSB(YCSBConfig{Rows: 1000, Nodes: 2, Mix: c.mix, Seed: 5})
		writes := 0
		const samples = 2000
		for i := 0; i < samples; i++ {
			proc, via := gen.Next(0)
			if via < 0 || via >= 2 {
				t.Fatalf("via = %d", via)
			}
			if len(proc.WriteSet()) > 0 {
				writes++
			}
		}
		frac := float64(writes) / samples
		if frac < c.wantLo || frac > c.wantHi {
			t.Errorf("mix %d write fraction = %.3f, want [%.2f, %.2f]", c.mix, frac, c.wantLo, c.wantHi)
		}
	}
}

func TestYCSBKeysInRangeProperty(t *testing.T) {
	f := func(seed int64, scramble bool) bool {
		gen := NewYCSB(YCSBConfig{Rows: 500, Nodes: 3, Mix: YCSBA, Scramble: scramble, Seed: seed})
		for i := 0; i < 100; i++ {
			proc, _ := gen.Next(0)
			for _, k := range proc.ReadSet() {
				if k.Row() >= 500 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestYCSBRoundRobinFrontends(t *testing.T) {
	gen := NewYCSB(YCSBConfig{Rows: 100, Nodes: 4, Mix: YCSBC, Seed: 1})
	seen := map[int]int{}
	for i := 0; i < 40; i++ {
		_, via := gen.Next(0)
		seen[int(via)]++
	}
	for n := 0; n < 4; n++ {
		if seen[n] != 10 {
			t.Fatalf("front-end %d used %d times, want 10", n, seen[n])
		}
	}
}

func TestYCSBDefaultsAndPanics(t *testing.T) {
	gen := NewYCSB(YCSBConfig{Rows: 10, Nodes: 1})
	proc, _ := gen.Next(0)
	if len(proc.ReadSet()) == 0 {
		t.Fatal("default KeysPerTxn produced empty read set")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero rows")
		}
	}()
	NewYCSB(YCSBConfig{Nodes: 1})
}
