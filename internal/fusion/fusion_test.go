package fusion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hermes/internal/tx"
)

func TestGetPut(t *testing.T) {
	f := New(10, LRU)
	if _, ok := f.Get(1); ok {
		t.Fatal("empty table reported a key")
	}
	if ev := f.Put(1, 3); ev != nil {
		t.Fatalf("unexpected eviction: %v", ev)
	}
	if n, ok := f.Get(1); !ok || n != 3 {
		t.Fatalf("Get = %d,%v", n, ok)
	}
	f.Put(1, 4) // update
	if n, _ := f.Get(1); n != 4 {
		t.Fatalf("update lost: %d", n)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestCapacityBoundLRU(t *testing.T) {
	f := New(3, LRU)
	f.Put(1, 0)
	f.Put(2, 0)
	f.Put(3, 0)
	f.Touch(1) // make 2 the least recently used
	ev := f.Put(4, 0)
	if len(ev) != 1 || ev[0].Key != 2 {
		t.Fatalf("evicted %v, want key 2", ev)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	if _, ok := f.Get(1); !ok {
		t.Fatal("touched key evicted")
	}
}

func TestCapacityBoundFIFO(t *testing.T) {
	f := New(3, FIFO)
	f.Put(1, 0)
	f.Put(2, 0)
	f.Put(3, 0)
	f.Touch(1)  // FIFO ignores touches
	f.Put(1, 5) // update must not refresh insertion order
	ev := f.Put(4, 0)
	if len(ev) != 1 || ev[0].Key != 1 || ev[0].Owner != 5 {
		t.Fatalf("evicted %v, want key 1 owner 5", ev)
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	f := New(0, LRU)
	for i := 0; i < 10000; i++ {
		if ev := f.Put(tx.Key(i), 0); ev != nil {
			t.Fatalf("unbounded table evicted %v", ev)
		}
	}
	if f.Len() != 10000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestDelete(t *testing.T) {
	f := New(2, LRU)
	f.Put(1, 0)
	f.Delete(1)
	f.Delete(99) // deleting a missing key is a no-op
	if f.Len() != 0 {
		t.Fatalf("Len = %d after delete", f.Len())
	}
	// Deleted slot frees capacity.
	f.Put(2, 0)
	f.Put(3, 0)
	if ev := f.Put(4, 0); len(ev) != 1 {
		t.Fatalf("expected one eviction, got %v", ev)
	}
}

func TestTouchReportsOwner(t *testing.T) {
	f := New(5, LRU)
	f.Put(7, 2)
	if n, ok := f.Touch(7); !ok || n != 2 {
		t.Fatalf("Touch = %d,%v", n, ok)
	}
	if _, ok := f.Touch(8); ok {
		t.Fatal("Touch of missing key reported present")
	}
}

func TestKeysOn(t *testing.T) {
	f := New(10, FIFO)
	f.Put(1, 0)
	f.Put(2, 1)
	f.Put(3, 0)
	got := f.KeysOn(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("KeysOn(0) = %v, want [1 3] oldest-first", got)
	}
	if got := f.KeysOn(9); len(got) != 0 {
		t.Fatalf("KeysOn(9) = %v, want empty", got)
	}
}

func TestDeterministicReplicas(t *testing.T) {
	// Two replicas fed the same operation stream must stay identical —
	// the property the paper's replicated fusion table relies on.
	ops := func(f *Table, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			k := tx.Key(rng.Intn(500))
			switch rng.Intn(3) {
			case 0:
				f.Put(k, tx.NodeID(rng.Intn(4)))
			case 1:
				f.Touch(k)
			case 2:
				f.Delete(k)
			}
		}
	}
	for _, policy := range []Policy{LRU, FIFO} {
		a, b := New(100, policy), New(100, policy)
		ops(a, 42)
		ops(b, 42)
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("policy %d: replicas diverged", policy)
		}
		if a.Len() != b.Len() {
			t.Fatalf("policy %d: lengths diverged", policy)
		}
	}
}

func TestSizeBoundProperty(t *testing.T) {
	f := func(capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw%20) + 1
		tab := New(capacity, LRU)
		for _, op := range ops {
			tab.Put(tx.Key(op&0xff), tx.NodeID(op>>8&3))
			if tab.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvictionReturnsEverythingRemovedProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tab := New(5, FIFO)
		inserted := map[tx.Key]bool{}
		evicted := map[tx.Key]bool{}
		for _, op := range ops {
			k := tx.Key(op)
			inserted[k] = true
			for _, e := range tab.Put(k, 0) {
				evicted[e.Key] = true
			}
		}
		// Every inserted key is either still present or was reported
		// evicted (possibly both if reinserted after eviction).
		for k := range inserted {
			if _, ok := tab.Get(k); !ok && !evicted[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFingerprintDetectsOwnerChange(t *testing.T) {
	a, b := New(10, LRU), New(10, LRU)
	a.Put(1, 0)
	b.Put(1, 1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different owners fingerprint equal")
	}
	b.Put(1, 0)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical tables fingerprint differently")
	}
}

func TestSnapshotAndClone(t *testing.T) {
	f := New(3, LRU)
	f.Put(1, 0)
	f.Put(2, 1)
	snap := f.Snapshot()
	if len(snap) != 2 || snap[1] != 0 || snap[2] != 1 {
		t.Fatalf("Snapshot = %v", snap)
	}
	c := f.Clone()
	if c.Fingerprint() != f.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	// Clone must preserve eviction order: key 1 is oldest in both.
	evF := f.Put(3, 0)
	evC := c.Put(3, 0)
	if len(evF) != 0 || len(evC) != 0 {
		t.Fatal("premature eviction")
	}
	evF = f.Put(4, 0)
	evC = c.Put(4, 0)
	if len(evF) != 1 || len(evC) != 1 || evF[0].Key != evC[0].Key {
		t.Fatalf("clone diverged on eviction: %v vs %v", evF, evC)
	}
	// Mutating the clone must not affect the original.
	c.Put(5, 3)
	if _, ok := f.Get(5); ok {
		t.Fatal("clone mutation leaked into original")
	}
}

func BenchmarkPutTouchHot(b *testing.B) {
	f := New(1<<16, LRU)
	for i := 0; i < 1<<16; i++ {
		f.Put(tx.Key(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Touch(tx.Key(i & (1<<16 - 1)))
	}
}

func BenchmarkPutEvicting(b *testing.B) {
	f := New(1024, LRU)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Put(tx.Key(i), 0)
	}
}
