// Package fusion implements the fusion table (§3.1, §4.1): a bounded map
// from hot record keys to their current owner partition. Every scheduler
// holds a replica; because the prescient routing that mutates it is a
// deterministic function of the totally ordered input, the replicas stay
// identical with zero communication. When the table exceeds its capacity
// it evicts entries under a deterministic replacement policy (LRU or
// FIFO); evicted records must be migrated back to their home partitions,
// which the engine does by extending the write-set of the transaction
// being routed, exactly as §4.1 describes.
package fusion

import (
	"bytes"
	"container/list"
	"encoding/gob"
	"hash/fnv"
	"sync/atomic"

	"hermes/internal/tx"
)

// Policy selects the deterministic replacement strategy.
type Policy uint8

const (
	// LRU evicts the least recently used entry (uses = Touch and Put).
	LRU Policy = iota
	// FIFO evicts the oldest inserted entry regardless of use.
	FIFO
)

// Entry is a (key, owner) pair, as returned by eviction.
type Entry struct {
	Key   tx.Key
	Owner tx.NodeID
}

type node struct {
	entry Entry
	elem  *list.Element
}

// Table is one replica of the fusion table. It is not safe for concurrent
// use: each scheduler mutates only its own replica, single-threaded, in
// total order.
type Table struct {
	capacity int
	policy   Policy
	m        map[tx.Key]*node
	order    *list.List // front = most recent, back = eviction candidate

	// stats counters are atomic only so telemetry gauges can read them
	// from other goroutines while the owning scheduler mutates the table;
	// they never influence table behavior.
	stats struct {
		size       atomic.Int64
		inserts    atomic.Int64
		evictions  atomic.Int64
		deletes    atomic.Int64
		ownerMoves atomic.Int64
	}
}

// Stats is a consistent-enough snapshot of the table's activity counters:
// occupancy, cumulative inserts/evictions/deletes, and owner moves
// (re-Put of a tracked key onto a different node — hot-set churn).
type Stats struct {
	Size       int64
	Inserts    int64
	Evictions  int64
	Deletes    int64
	OwnerMoves int64
}

// Stats returns the activity counters. Safe to call from any goroutine.
func (t *Table) Stats() Stats {
	return Stats{
		Size:       t.stats.size.Load(),
		Inserts:    t.stats.inserts.Load(),
		Evictions:  t.stats.evictions.Load(),
		Deletes:    t.stats.deletes.Load(),
		OwnerMoves: t.stats.ownerMoves.Load(),
	}
}

// New returns a table bounded to capacity entries (capacity ≤ 0 means
// unbounded, used by LEAP's ownership tracking which the paper notes has
// no size control).
func New(capacity int, policy Policy) *Table {
	return &Table{
		capacity: capacity,
		policy:   policy,
		m:        make(map[tx.Key]*node),
		order:    list.New(),
	}
}

// Capacity returns the configured bound (≤ 0 = unbounded).
func (t *Table) Capacity() int { return t.capacity }

// Len returns the number of tracked keys.
func (t *Table) Len() int { return len(t.m) }

// Get returns the tracked owner of k without affecting replacement order.
func (t *Table) Get(k tx.Key) (tx.NodeID, bool) {
	n, ok := t.m[k]
	if !ok {
		return tx.NoNode, false
	}
	return n.entry.Owner, true
}

// Touch returns the tracked owner of k, refreshing its recency under LRU.
// The router uses Touch when consulting placement so hot keys stay
// resident.
func (t *Table) Touch(k tx.Key) (tx.NodeID, bool) {
	n, ok := t.m[k]
	if !ok {
		return tx.NoNode, false
	}
	if t.policy == LRU {
		t.order.MoveToFront(n.elem)
	}
	return n.entry.Owner, true
}

// Put records that k is now owned by owner and returns any entries evicted
// to honor the capacity bound. Updating an existing key refreshes recency
// under LRU but keeps insertion order under FIFO.
func (t *Table) Put(k tx.Key, owner tx.NodeID) []Entry {
	if n, ok := t.m[k]; ok {
		if n.entry.Owner != owner {
			t.stats.ownerMoves.Add(1)
		}
		n.entry.Owner = owner
		if t.policy == LRU {
			t.order.MoveToFront(n.elem)
		}
		return nil
	}
	n := &node{entry: Entry{Key: k, Owner: owner}}
	n.elem = t.order.PushFront(n)
	t.m[k] = n
	t.stats.inserts.Add(1)
	var evicted []Entry
	for t.capacity > 0 && len(t.m) > t.capacity {
		back := t.order.Back()
		victim := back.Value.(*node)
		t.order.Remove(back)
		delete(t.m, victim.entry.Key)
		evicted = append(evicted, victim.entry)
		t.stats.evictions.Add(1)
	}
	t.stats.size.Store(int64(len(t.m)))
	return evicted
}

// Delete removes k from the table (e.g. the record was migrated back to
// its home partition by an eviction write).
func (t *Table) Delete(k tx.Key) {
	if n, ok := t.m[k]; ok {
		t.order.Remove(n.elem)
		delete(t.m, k)
		t.stats.deletes.Add(1)
		t.stats.size.Store(int64(len(t.m)))
	}
}

// KeysOn returns all tracked keys currently owned by owner, in eviction
// order (oldest first). Dynamic provisioning uses this to re-home entries
// when a node is removed.
func (t *Table) KeysOn(owner tx.NodeID) []tx.Key {
	var out []tx.Key
	for e := t.order.Back(); e != nil; e = e.Prev() {
		n := e.Value.(*node)
		if n.entry.Owner == owner {
			out = append(out, n.entry.Key)
		}
	}
	return out
}

// Fingerprint returns an order-independent hash of the table contents
// (key → owner pairs). Replica-consistency tests compare fingerprints
// across nodes; recency order is deliberately excluded because only the
// mapping affects execution.
func (t *Table) Fingerprint() uint64 {
	var acc uint64
	for k, n := range t.m {
		h := fnv.New64a()
		var buf [16]byte
		for b := 0; b < 8; b++ {
			buf[b] = byte(uint64(k) >> (8 * b))
			buf[8+b] = byte(uint64(n.entry.Owner) >> (8 * b))
		}
		h.Write(buf[:])
		acc ^= h.Sum64()
	}
	return acc
}

// Snapshot returns the full mapping; used by checkpoints and tests.
func (t *Table) Snapshot() map[tx.Key]tx.NodeID {
	out := make(map[tx.Key]tx.NodeID, len(t.m))
	for k, n := range t.m {
		out[k] = n.entry.Owner
	}
	return out
}

// Clone deep-copies the table including replacement order. Recovery
// restores a checkpointed fusion table before replaying the command log.
func (t *Table) Clone() *Table {
	c := New(t.capacity, t.policy)
	for e := t.order.Back(); e != nil; e = e.Prev() {
		n := e.Value.(*node)
		c.Put(n.entry.Key, n.entry.Owner)
	}
	return c
}

// tableWire is the serialized form: configuration plus entries in eviction
// order (oldest first), which is enough to rebuild the identical
// replacement order for both LRU and FIFO.
type tableWire struct {
	Capacity int
	Policy   Policy
	Entries  []Entry
}

// GobEncode serializes the table for durable checkpoints. Replacement
// order is included — unlike Fingerprint, a restored replica must also
// evict identically to its peers.
func (t *Table) GobEncode() ([]byte, error) {
	w := tableWire{Capacity: t.capacity, Policy: t.policy}
	for e := t.order.Back(); e != nil; e = e.Prev() {
		w.Entries = append(w.Entries, e.Value.(*node).entry)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&w)
	return buf.Bytes(), err
}

// GobDecode rebuilds the table from GobEncode's form.
func (t *Table) GobDecode(data []byte) error {
	var w tableWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	r := New(w.Capacity, w.Policy)
	for _, e := range w.Entries {
		r.Put(e.Key, e.Owner)
	}
	t.capacity = r.capacity
	t.policy = r.policy
	t.m = r.m
	t.order = r.order
	t.stats.size.Store(int64(len(r.m)))
	return nil
}
