package zipf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfianBounds(t *testing.T) {
	for _, n := range []uint64{1, 2, 10, 1000} {
		z := NewZipfian(rand.New(rand.NewSource(1)), n, 0.9)
		for i := 0; i < 10000; i++ {
			if v := z.Next(); v >= n {
				t.Fatalf("n=%d: sample %d out of range", n, v)
			}
		}
	}
}

func TestZipfianBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, thetaRaw uint8) bool {
		n := uint64(nRaw)%1000 + 1
		theta := float64(thetaRaw%99) / 100
		z := NewZipfian(rand.New(rand.NewSource(seed)), n, theta)
		for i := 0; i < 200; i++ {
			if z.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfianSkew(t *testing.T) {
	// With theta=0.9 the most popular item (rank 0) must be sampled far
	// more often than a mid-range item.
	z := NewZipfian(rand.New(rand.NewSource(42)), 1000, 0.9)
	counts := make([]int, 1000)
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	if counts[0] < 10*counts[500] {
		t.Errorf("rank 0 sampled %d times vs rank 500 %d times; expected strong skew", counts[0], counts[500])
	}
	if counts[0] < counts[1] {
		t.Errorf("rank 0 (%d) less popular than rank 1 (%d)", counts[0], counts[1])
	}
}

func TestZipfianUniformWhenThetaZero(t *testing.T) {
	z := NewZipfian(rand.New(rand.NewSource(7)), 10, 0)
	counts := make([]int, 10)
	const samples = 100000
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		// Each bucket should get roughly 10%; allow a generous band.
		if c < samples/20 || c > samples/5 {
			t.Errorf("theta=0 bucket %d got %d of %d samples; expected near-uniform", i, c, samples)
		}
	}
}

func TestZipfianDeterministicForSeed(t *testing.T) {
	a := NewZipfian(rand.New(rand.NewSource(5)), 100, 0.9)
	b := NewZipfian(rand.New(rand.NewSource(5)), 100, 0.9)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestZipfianPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewZipfian(rand.New(rand.NewSource(1)), 0, 0.5)
}

func TestZipfianPanicsOnBadTheta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for theta=1")
		}
	}()
	NewZipfian(rand.New(rand.NewSource(1)), 10, 1.0)
}

func TestScrambledBoundsAndSpread(t *testing.T) {
	s := NewScrambled(rand.New(rand.NewSource(3)), 1000, 0.9)
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		v := s.Next()
		if v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// The hottest scrambled key should not be key 0 deterministically
	// clumped at the front: check hot keys are spread out.
	var hottest uint64
	for k, c := range counts {
		if c > counts[hottest] {
			hottest = k
		}
	}
	if hottest == 0 {
		t.Log("hottest key happens to be 0; acceptable but unusual")
	}
	if len(counts) < 100 {
		t.Errorf("scrambled distribution touched only %d distinct keys", len(counts))
	}
}

func TestScrambledStableMapping(t *testing.T) {
	// The same rank must always map to the same item across generators.
	if fnvHash64(42) != fnvHash64(42) {
		t.Error("fnvHash64 not deterministic")
	}
	if fnvHash64(1) == fnvHash64(2) {
		t.Error("suspicious collision between consecutive inputs")
	}
}

func TestTwoSidedBoundsAndPeak(t *testing.T) {
	ts := NewTwoSided(rand.New(rand.NewSource(11)), 1000, 0.9)
	const peak = 700
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		v := ts.Next(peak)
		if v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// The peak itself must be the hottest region; compare with a point far
	// away (wrap distance 500).
	near := counts[peak] + counts[peak-1] + counts[peak+1]
	far := counts[200] + counts[199] + counts[201]
	if near < 5*far {
		t.Errorf("near-peak count %d vs far count %d; expected peak concentration", near, far)
	}
}

func TestTwoSidedSymmetry(t *testing.T) {
	ts := NewTwoSided(rand.New(rand.NewSource(13)), 1001, 0.9)
	const peak = 500
	left, right := 0, 0
	for i := 0; i < 100000; i++ {
		v := int(ts.Next(peak))
		switch {
		case v < peak:
			left++
		case v > peak:
			right++
		}
	}
	ratio := float64(left) / float64(right)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("left/right ratio = %.2f; expected near-symmetric decay", ratio)
	}
}

func TestTwoSidedWrapsAroundKeySpace(t *testing.T) {
	ts := NewTwoSided(rand.New(rand.NewSource(17)), 100, 0.9)
	sawHigh := false
	for i := 0; i < 10000; i++ {
		if v := ts.Next(0); v > 90 {
			sawHigh = true
			break
		}
	}
	if !sawHigh {
		t.Error("peak at 0 never wrapped to the top of the key space")
	}
}

func TestMovingPeakSweep(t *testing.T) {
	m := MovingPeak{N: 1000, Period: 100}
	if got := m.At(0); got != 0 {
		t.Errorf("At(0) = %d, want 0", got)
	}
	if got := m.At(50); got != 500 {
		t.Errorf("At(50) = %d, want 500", got)
	}
	if got := m.At(150); got != 500 {
		t.Errorf("At(150) = %d, want 500 (wrap)", got)
	}
	if got := m.At(99.9); got < 990 {
		t.Errorf("At(99.9) = %d, want near end of key space", got)
	}
}

func TestMovingPeakDegenerate(t *testing.T) {
	if got := (MovingPeak{N: 0, Period: 10}).At(5); got != 0 {
		t.Errorf("N=0: got %d, want 0", got)
	}
	if got := (MovingPeak{N: 10, Period: 0}).At(5); got != 0 {
		t.Errorf("Period=0: got %d, want 0", got)
	}
}

func TestZetaLargeNMonotone(t *testing.T) {
	// zeta must grow with n even past the exact-summation cap.
	small := zeta(1<<20, 0.9)
	large := zeta(1<<24, 0.9)
	if large <= small {
		t.Errorf("zeta(2^24)=%f <= zeta(2^20)=%f", large, small)
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(rand.New(rand.NewSource(1)), 1<<20, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkTwoSidedNext(b *testing.B) {
	ts := NewTwoSided(rand.New(rand.NewSource(1)), 1<<20, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Next(uint64(i))
	}
}
