// Package zipf implements the skewed access distributions used by the
// paper's workloads: the YCSB-style Zipfian generator (which, unlike
// math/rand's Zipf, supports skew exponents below 1 such as the paper's
// θ = 0.9), a scrambled variant that decorrelates rank from key order, and
// the two-sided global Zipfian with a peak that moves over time, used to
// model "active users around the world in 24 hours" (§5.2.2).
package zipf

import (
	"math"
	"math/rand"
)

// Zipfian draws integers in [0, n) with P(i) ∝ 1/(i+1)^theta. It follows
// the standard YCSB implementation (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases"). Not safe for concurrent use; give
// each goroutine its own generator.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian returns a Zipfian generator over [0, n) with skew theta
// (0 ≤ theta < 1; the common YCSB default is 0.99, the paper uses 0.9).
// It panics if n is zero or theta is out of range.
func NewZipfian(rng *rand.Rand, n uint64, theta float64) *Zipfian {
	if n == 0 {
		panic("zipf: n must be positive")
	}
	if theta < 0 || theta >= 1 {
		panic("zipf: theta must be in [0, 1)")
	}
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// N returns the size of the generator's domain.
func (z *Zipfian) N() uint64 { return z.n }

// Next draws the next sample in [0, n); 0 is the most popular rank.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

func zeta(n uint64, theta float64) float64 {
	// Exact summation is O(n); cap the term count and extend with the
	// integral approximation so that construction over hundreds of
	// millions of keys stays cheap while keeping the low ranks (which
	// dominate the distribution) exact.
	const exact = 1 << 20
	sum := 0.0
	m := n
	if m > exact {
		m = exact
	}
	for i := uint64(0); i < m; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	if n > m {
		// ∫ x^-theta dx from m to n.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

// Scrambled wraps a Zipfian so that popularity is spread pseudo-randomly
// over the key space instead of being concentrated at low ids, matching
// YCSB's ScrambledZipfianGenerator. The mapping is a fixed FNV-style hash,
// so the same rank always lands on the same item.
type Scrambled struct {
	z *Zipfian
}

// NewScrambled returns a scrambled Zipfian over [0, n).
func NewScrambled(rng *rand.Rand, n uint64, theta float64) *Scrambled {
	return &Scrambled{z: NewZipfian(rng, n, theta)}
}

// Next draws the next sample in [0, n).
func (s *Scrambled) Next() uint64 { return fnvHash64(s.z.Next()) % s.z.n }

func fnvHash64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// TwoSided draws integers in [0, n) from a Zipfian whose peak sits at a
// caller-controlled position and decays symmetrically on both sides,
// wrapping around the key space. The paper uses this as the "global,
// two-sided Zipfian distribution defined on all keys in the whole database"
// whose peak sweeps from the first to the last record repeatedly.
type TwoSided struct {
	mag *Zipfian
	rng *rand.Rand
	n   uint64
}

// NewTwoSided returns a two-sided Zipfian over [0, n) with skew theta.
func NewTwoSided(rng *rand.Rand, n uint64, theta float64) *TwoSided {
	return &TwoSided{mag: NewZipfian(rng, n, theta), rng: rng, n: n}
}

// Next draws a sample with the distribution peak at position peak
// (peak may be any value; it is reduced mod n).
func (t *TwoSided) Next(peak uint64) uint64 {
	m := t.mag.Next()
	p := peak % t.n
	if t.rng.Intn(2) == 0 {
		return (p + m) % t.n
	}
	return (p + t.n - m%t.n) % t.n
}

// MovingPeak computes the sweep position of the global hot spot at a given
// elapsed fraction of the sweep period: the peak moves linearly from item 0
// to item n-1 and restarts, as in §5.2.2.
type MovingPeak struct {
	N      uint64
	Period float64 // seconds for one full sweep
}

// At returns the peak position after elapsed seconds.
func (m MovingPeak) At(elapsed float64) uint64 {
	if m.Period <= 0 || m.N == 0 {
		return 0
	}
	frac := elapsed / m.Period
	frac -= math.Floor(frac)
	return uint64(frac * float64(m.N))
}
