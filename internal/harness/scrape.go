package harness

import (
	"strconv"
	"strings"
)

// ParseMetrics parses a Prometheus text-format exposition into a flat map
// keyed "name" or "name{labels}" exactly as written. It is deliberately
// minimal — enough for the harness to fold each process's /metrics page
// into the merged cluster report — and skips comments, blank lines, and
// anything it cannot parse as `key value`.
func ParseMetrics(body []byte) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the key is
		// everything before it (label values may themselves contain
		// spaces, so split from the right).
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			continue
		}
		key := strings.TrimSpace(line[:idx])
		val, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			continue
		}
		out[key] = val
	}
	return out
}

// MetricSum sums one metric across per-process scrapes, matching either the
// bare name or any labeled variant ("name{...}").
func MetricSum(scrapes []map[string]float64, name string) float64 {
	var sum float64
	prefix := name + "{"
	for _, m := range scrapes {
		for k, v := range m {
			if k == name || strings.HasPrefix(k, prefix) {
				sum += v
			}
		}
	}
	return sum
}
