package harness

import "time"

// stopClock is a real-time clock whose sleepers can all be released at
// once. The standalone sequencer leader in a cluster process runs with an
// effectively infinite flush interval (sealing is size-only, for
// determinism), so its flush-loop sleeper would outlive the process's
// Close by up to that interval under the real clock; Stop releases it
// immediately, which is what lets NodeServer.Close pass leaktest.
type stopClock struct {
	quit chan struct{}
}

func newStopClock() *stopClock {
	return &stopClock{quit: make(chan struct{})}
}

// Now implements clock.Clock.
func (c *stopClock) Now() time.Time { return time.Now() }

// Sleep implements clock.Clock: a real sleep that also returns (early)
// when the clock is stopped.
func (c *stopClock) Sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.quit:
	}
}

// Stop releases every current and future sleeper immediately.
func (c *stopClock) Stop() {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
}
