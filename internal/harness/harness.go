// Package harness boots a real multi-process Hermes cluster: it spawns one
// hermesd process per worker node, wires them together over TCPTransport on
// loopback, seeds every process from the same deterministic record stream,
// drives a closed-loop client workload against the cluster, and collects
// per-process metrics plus per-node state digests at quiescence.
//
// The harness exists to take the single-process emulation's determinism
// claim across OS process boundaries: the same seed, policy, and batch size
// must yield node digests byte-identical to the in-process emulation
// (RunTwin), even when a worker process is SIGKILLed and restarted mid-run.
// See docs/CLUSTER.md for the process layout, the control endpoints, and
// the failure modes.
package harness

import (
	"fmt"
	"math/rand"

	"hermes/internal/tx"
	"hermes/internal/zipf"
)

// Workload kinds accepted by WorkloadSpec.Kind.
const (
	// WorkloadYCSB draws every key from a scrambled Zipfian over the whole
	// table (YCSB-style skewed access).
	WorkloadYCSB = "ycsb"
	// WorkloadHotspot draws keys from a two-sided Zipfian whose peak sweeps
	// linearly across the table over the course of the run (§5.2.2's
	// rotating hot spot), keyed on transaction index — not wall time — so
	// the stream is identical across runs and machines.
	WorkloadHotspot = "hotspot"
)

// WorkloadSpec describes a deterministic transaction stream. The whole
// stream is a pure function of the spec: the orchestrator sends it to the
// driver process and hands the same spec to the in-process twin, and both
// generate the identical sequence of procedures.
type WorkloadSpec struct {
	// Kind selects the key distribution (WorkloadYCSB or WorkloadHotspot).
	Kind string `json:"kind"`
	// Seed seeds the single sequential RNG the stream is drawn from.
	Seed int64 `json:"seed"`
	// Txns is the total number of transactions.
	Txns int `json:"txns"`
	// Rows is the key space (must match the seeded table).
	Rows uint64 `json:"rows"`
	// KeysPerTxn is how many distinct keys each transaction reads and
	// increments.
	KeysPerTxn int `json:"keys_per_txn"`
	// Payload is the written value size in bytes (minimum 8).
	Payload int `json:"payload"`
	// Theta is the Zipfian skew.
	Theta float64 `json:"theta"`
	// Window is the closed-loop in-flight cap. It must be at least the
	// sequencer batch size: the leader seals on size only (the flush
	// interval is effectively disabled for determinism), so a window
	// smaller than a batch could leave the leader waiting for requests the
	// driver is waiting to submit.
	Window int `json:"window"`
	// Sweeps is the number of full hot-spot rotations across the run
	// (WorkloadHotspot only; default 2).
	Sweeps int `json:"sweeps,omitempty"`
	// Skip is the number of leading stream transactions to generate —
	// consuming the RNG exactly as a full run would — but not return:
	// phase two of a multi-phase run sets Skip to phase one's Txns and
	// gets the precise continuation of the same stream. The hot-spot sweep
	// position is normalized over Skip+Txns, so a skipped suffix matches a
	// single full-length run; WorkloadYCSB phases compose exactly at any
	// split.
	Skip int `json:"skip,omitempty"`
}

// Validate checks the spec for the mistakes that would otherwise surface
// as a wedged run (window deadlock) or a digest mismatch (key space
// drift).
func (s *WorkloadSpec) Validate(batchSize int) error {
	switch s.Kind {
	case WorkloadYCSB, WorkloadHotspot:
	default:
		return fmt.Errorf("harness: unknown workload kind %q", s.Kind)
	}
	if s.Txns <= 0 || s.Rows == 0 || s.KeysPerTxn <= 0 {
		return fmt.Errorf("harness: workload needs txns, rows and keys per txn, got %d/%d/%d",
			s.Txns, s.Rows, s.KeysPerTxn)
	}
	if uint64(s.KeysPerTxn) > s.Rows {
		return fmt.Errorf("harness: %d distinct keys per txn exceed %d rows", s.KeysPerTxn, s.Rows)
	}
	if s.Window < batchSize {
		return fmt.Errorf("harness: window %d below batch size %d would deadlock the closed loop",
			s.Window, batchSize)
	}
	if s.Skip < 0 {
		return fmt.Errorf("harness: negative skip %d", s.Skip)
	}
	return nil
}

// Procs materializes the spec's transaction stream: Txns wire-safe
// read-modify-write increments over KeysPerTxn distinct keys each. A single
// seeded RNG consumed strictly sequentially makes the stream a pure
// function of the spec.
func (s *WorkloadSpec) Procs() ([]*tx.CounterProc, error) {
	if err := s.Validate(0); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var ycsb *zipf.Scrambled
	var hot *zipf.TwoSided
	var peak zipf.MovingPeak
	sweeps := s.Sweeps
	if sweeps <= 0 {
		sweeps = 2
	}
	switch s.Kind {
	case WorkloadYCSB:
		ycsb = zipf.NewScrambled(rng, s.Rows, s.Theta)
	case WorkloadHotspot:
		hot = zipf.NewTwoSided(rng, s.Rows, s.Theta)
		// One "second" of MovingPeak time per sweep; position i of Txns
		// maps to elapsed = sweeps * i/Txns.
		peak = zipf.MovingPeak{N: s.Rows, Period: 1}
	}
	total := s.Skip + s.Txns
	procs := make([]*tx.CounterProc, total)
	seen := make(map[uint64]bool, s.KeysPerTxn)
	for i := range procs {
		for k := range seen {
			delete(seen, k)
		}
		keys := make([]tx.Key, 0, s.KeysPerTxn)
		for len(keys) < s.KeysPerTxn {
			var row uint64
			switch s.Kind {
			case WorkloadYCSB:
				row = ycsb.Next()
			case WorkloadHotspot:
				elapsed := float64(sweeps) * float64(i) / float64(total)
				row = hot.Next(peak.At(elapsed))
			}
			if seen[row] {
				continue
			}
			seen[row] = true
			keys = append(keys, tx.MakeKey(0, row))
		}
		procs[i] = &tx.CounterProc{Reads: keys, Writes: keys, Payload: s.Payload}
	}
	return procs[s.Skip:], nil
}

// SeedValue is the record payload every row is seeded with: an all-zero
// value (counter 0) of the given size. Every process and the in-process
// twin must seed identical bytes or the store digests can never match.
func SeedValue(payload int) []byte {
	if payload < 8 {
		payload = 8
	}
	return make([]byte, payload)
}
