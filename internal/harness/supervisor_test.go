package harness

import (
	"testing"
	"time"

	"hermes/internal/leaktest"
	"hermes/internal/netchaos"
)

// superTestConfig is the fast supervisor tuning used across these tests:
// probes every 50ms, dead after 2 misses, so a SIGKILL is detected and
// repaired well inside a second.
var superTestConfig = SupervisorConfig{
	Interval: 50 * time.Millisecond,
	Misses:   2,
}

// TestSupervisorRevivesKilledWorker SIGKILLs a worker mid-run and never
// restarts it from the test: the heartbeat supervisor must detect the dead
// control plane, respawn the process in recovery mode, and the run must
// still commit everything.
func TestSupervisorRevivesKilledWorker(t *testing.T) {
	c := startTestCluster(t, "hermes")
	super := c.StartSupervisor(superTestConfig)
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 42, Txns: 1200, Rows: 4000,
		KeysPerTxn: 3, Payload: 64, Theta: 0.8, Window: 50,
	}
	if err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed >= int64(spec.Txns/3) || st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached the kill point: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.KillWorker(2); err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitRun(120 * time.Second)
	if err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	if res.Committed != int64(spec.Txns) {
		t.Fatalf("committed %d of %d", res.Committed, spec.Txns)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	st := super.Stats()
	if st.TotalRestarts() == 0 {
		t.Fatalf("supervisor performed no restarts: %+v", st)
	}
	if st.Workers[2].Misses == 0 {
		t.Errorf("supervisor counted no missed probes for the killed worker: %+v", st.Workers[2])
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if inc := stats[2].Incarnation; inc < 2 {
		t.Errorf("revived worker reports incarnation %d, want >= 2", inc)
	}
}

// TestSupervisorBreakerOpens exhausts a Budget=1 supervisor: the first
// kill is repaired, the second must trip the circuit breaker and leave the
// worker down instead of restarting forever.
func TestSupervisorBreakerOpens(t *testing.T) {
	c := startTestCluster(t, "calvin")
	super := c.StartSupervisor(SupervisorConfig{
		Interval: 50 * time.Millisecond,
		Misses:   2,
		Budget:   1,
	})
	waitRevived := func(restarts int) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for super.Stats().Workers[1].Restarts < restarts || c.getProc(1) == nil {
			if time.Now().After(deadline) {
				t.Fatalf("worker 1 not revived to %d restarts: %+v", restarts, super.Stats().Workers[1])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := c.KillWorker(1); err != nil {
		t.Fatal(err)
	}
	waitRevived(1)
	if err := c.KillWorker(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !super.Stats().Workers[1].BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened after the budget was spent: %+v", super.Stats().Workers[1])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p := c.getProc(1); p != nil {
		t.Error("breaker is open but the worker was restarted anyway")
	}
	if got := super.Stats().Workers[1].Restarts; got != 1 {
		t.Errorf("restarts = %d, want exactly the budget of 1", got)
	}
}

// TestSupervisorKillUnderPartitionLeaksNothing is the teardown-hygiene
// check for the whole fault stack: a worker is SIGKILLed while the data
// plane is partitioned, the supervisor revives it through the outage (its
// probes use the direct control plane), and after Close neither the proxy
// plane, the supervisor, nor the orchestrator may leave a goroutine
// behind.
func TestSupervisorKillUnderPartitionLeaksNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests skipped in -short mode")
	}
	if _, err := HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	defer leaktest.Check(t)()

	c, err := StartCluster(ClusterConfig{
		Workers: 3, Policy: "hermes", Rows: 4000, Payload: 64, BatchSize: 25,
		Net: &netchaos.Schedule{Name: "partition-only", Seed: 7},
		Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Seed(); err != nil {
		t.Fatal(err)
	}
	super := c.StartSupervisor(superTestConfig)
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 11, Txns: 600, Rows: 4000,
		KeysPerTxn: 3, Payload: 64, Theta: 0.8, Window: 50,
	}
	if err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	c.NetPlane().Start()
	// Partition worker 2 away, then SIGKILL it mid-outage: the supervisor
	// must detect and revive it while its data links are still dark.
	c.NetPlane().PartitionBetween([]int{0, 1}, []int{2}, 1500*time.Millisecond)
	if err := c.KillWorker(2); err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitRun(120 * time.Second)
	if err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	if res.Committed != int64(spec.Txns) {
		t.Fatalf("committed %d of %d", res.Committed, spec.Txns)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	if super.Stats().TotalRestarts() == 0 {
		t.Fatal("supervisor performed no restarts under the partition")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterBackpressureCounters pins the overload gate's plumbing: with
// the delay watermark forced to 1, almost every submission sees nonzero
// local queue depth, so the run must finish with the delayed counter
// visible in the driver's status, the /stats snapshot, and /metrics — and
// still commit everything, because backpressure only retimes the ordered
// submitter.
func TestClusterBackpressureCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests skipped in -short mode")
	}
	if _, err := HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	c, err := StartCluster(ClusterConfig{
		Workers: 3, Policy: "hermes", Rows: 4000, Payload: 64, BatchSize: 25,
		OverloadDelay: 1, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Seed(); err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 42, Txns: 400, Rows: 4000,
		KeysPerTxn: 3, Payload: 64, Theta: 0.8, Window: 50,
	}
	if err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitRun(120 * time.Second)
	if err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	if res.Committed != int64(spec.Txns) {
		t.Fatalf("committed %d of %d", res.Committed, spec.Txns)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delayed == 0 {
		t.Error("watermark 1 paced no submissions; the gate is not wired to the driver")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].OverloadDelayed == 0 {
		t.Errorf("/stats reports no delayed admissions on the driver host: %+v", stats[0])
	}
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := metrics[0]["hermes_overload_delayed_total"]; !ok {
		t.Error("hermes_overload_delayed_total missing from the driver host's /metrics")
	}
}
