package harness

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SupervisorConfig tunes the heartbeat supervisor. Zero values pick the
// defaults noted per field.
type SupervisorConfig struct {
	// Interval between liveness probes per worker (default 150ms).
	Interval time.Duration
	// Timeout of one /stats probe (default 1s). Must be short: the probe
	// client is separate from the orchestrator's so a wedged worker can't
	// stall cluster RPCs.
	Timeout time.Duration
	// Misses is how many consecutive failed probes declare a worker dead
	// (default 3). One lost probe is a blip; K in a row is a corpse.
	Misses int
	// BackoffBase is the first restart delay after a failed restart
	// attempt (default 100ms), doubling per consecutive failure.
	BackoffBase time.Duration
	// BackoffCap bounds the restart delay (default 2s).
	BackoffCap time.Duration
	// Budget is the restart circuit breaker: after this many restarts of
	// one worker the supervisor gives up on it (default 5). A process
	// that keeps dying is a bug, not a blip; restarting it forever would
	// hide that.
	Budget int
}

func (cfg SupervisorConfig) withDefaults() SupervisorConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 150 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Misses <= 0 {
		cfg.Misses = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 5
	}
	return cfg
}

// WorkerHealth is one worker's view from the supervisor.
type WorkerHealth struct {
	Probes      int64  `json:"probes"`
	Misses      int64  `json:"misses"` // cumulative failed probes
	Restarts    int    `json:"restarts"`
	BreakerOpen bool   `json:"breaker_open"`
	LastError   string `json:"last_error,omitempty"`
}

// SupervisorStats snapshots every worker's health accounting.
type SupervisorStats struct {
	Workers []WorkerHealth `json:"workers"`
}

// TotalRestarts sums supervisor-driven restarts across workers.
func (s SupervisorStats) TotalRestarts() int {
	n := 0
	for _, w := range s.Workers {
		n += w.Restarts
	}
	return n
}

// Supervisor watches every worker's control plane and brings dead ones
// back. Liveness is a /stats probe — the same endpoint operators poll — so
// "alive" means "serving its control plane", not merely "process exists".
// Probes go to the direct control address (never through the fault plane):
// a data-plane partition must not look like a crash.
type Supervisor struct {
	c      *Cluster
	cfg    SupervisorConfig
	client *http.Client

	mu     sync.Mutex
	health []WorkerHealth

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// StartSupervisor begins heartbeat supervision of every worker. The
// returned Supervisor is also stopped automatically by Cluster.Close.
func (c *Cluster) StartSupervisor(cfg SupervisorConfig) *Supervisor {
	cfg = cfg.withDefaults()
	s := &Supervisor{
		c:      c,
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		health: make([]WorkerHealth, len(c.procs)),
		quit:   make(chan struct{}),
	}
	c.mu.Lock()
	c.super = s
	c.mu.Unlock()
	for i := range c.procs {
		s.wg.Add(1)
		go s.watch(i)
	}
	return s
}

// Stop halts supervision and joins every watcher. Idempotent.
func (s *Supervisor) Stop() {
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
}

// Stats snapshots per-worker health accounting.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SupervisorStats{Workers: append([]WorkerHealth(nil), s.health...)}
}

func (s *Supervisor) recordProbe(i int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health[i].Probes++
	if err != nil {
		s.health[i].Misses++
		s.health[i].LastError = err.Error()
	}
}

// watch is one worker's heartbeat loop.
func (s *Supervisor) watch(i int) {
	defer s.wg.Done()
	misses := 0
	for {
		select {
		case <-s.quit:
			return
		case <-time.After(s.cfg.Interval):
		}
		if err := s.probe(i); err != nil {
			s.recordProbe(i, err)
			misses++
			if misses >= s.cfg.Misses {
				if !s.revive(i) {
					return // breaker open: this worker is done
				}
				misses = 0
			}
			continue
		}
		s.recordProbe(i, nil)
		misses = 0
	}
}

// probe hits worker i's /stats over the direct control plane.
func (s *Supervisor) probe(i int) error {
	resp, err := s.client.Get(s.c.url(i, "/stats"))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe: %s", resp.Status)
	}
	return nil
}

// revive declares worker i dead, reaps whatever is left of its process,
// and restarts it with capped exponential backoff between failed attempts.
// Returns false once the restart budget is exhausted (breaker open).
func (s *Supervisor) revive(i int) bool {
	backoff := s.cfg.BackoffBase
	for {
		// Claim and reap whatever is left of the process. Nil means a
		// test (KillWorker) or a previous failed attempt already took it;
		// the restart below is still ours to do. Reaping inside the loop
		// also cleans up a spawn that came up but never turned healthy.
		if p := s.c.takeProc(i); p != nil {
			_ = p.cmd.Process.Kill()
			select {
			case <-p.done:
			case <-time.After(10 * time.Second):
				s.mu.Lock()
				s.health[i].LastError = "process would not die after SIGKILL"
				s.mu.Unlock()
				return false
			}
		}
		s.mu.Lock()
		if s.health[i].Restarts >= s.cfg.Budget {
			s.health[i].BreakerOpen = true
			s.mu.Unlock()
			return false
		}
		s.health[i].Restarts++
		s.mu.Unlock()
		err := s.c.RestartWorker(i)
		if err == nil {
			return true
		}
		s.mu.Lock()
		s.health[i].LastError = err.Error()
		s.mu.Unlock()
		select {
		case <-s.quit:
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > s.cfg.BackoffCap {
			backoff = s.cfg.BackoffCap
		}
	}
}
