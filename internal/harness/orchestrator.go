package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hermes/internal/diskio"
	"hermes/internal/engine"
	"hermes/internal/netchaos"
	"hermes/internal/tx"
)

// ClusterConfig describes a multi-process cluster to boot.
type ClusterConfig struct {
	// Workers is the number of hermesd processes (one engine worker each).
	Workers int
	// Policy is the routing policy name ("hermes" or "calvin").
	Policy string
	// Rows is the uniformly pre-partitioned key space.
	Rows uint64
	// Payload is the seeded/written value size in bytes.
	Payload int
	// BatchSize is the sequencer batch size.
	BatchSize int
	// Alpha and FusionCap tune the Hermes policy; FusionCap 0 defaults to
	// Rows/40, matching hermes.Open.
	Alpha     float64
	FusionCap int
	// ExecMode selects each worker's execution backend ("lock" or
	// "queue"; empty means lock).
	ExecMode string
	// Fsync is each worker's journal fsync policy ("none"|"batch"|
	// "always"; empty means none).
	Fsync string
	// CheckpointEvery enables each worker's opportunistic periodic
	// checkpoint trigger when positive.
	CheckpointEvery time.Duration
	// TraceRing sizes each process's per-node telemetry rings (events;
	// zero keeps the default). Size it to hold the whole run when the
	// trace will be collected (see CollectTrace).
	TraceRing int
	// TraceOff starts every process with lifecycle tracing disabled.
	TraceOff bool
	// Net, when set, routes every inter-process data-plane link through a
	// netchaos proxy injecting the schedule's faults. The control plane
	// stays direct so health probes and the driver survive partitions.
	// The leader transport id is automatically aliased onto worker 0 (its
	// co-host) for rule and partition matching.
	Net *netchaos.Schedule
	// OverloadDelay and OverloadShed are the driver's backpressure
	// watermarks on local queue depth (reliable-layer unacked+backlog plus
	// queued exec keys): at Delay admission is paced, at Shed it is
	// rejected until the depth drains. Zero picks defaults; negative
	// disables that watermark.
	OverloadDelay int64
	OverloadShed  int64
	// Dir is the scratch directory for journals, seed specs and process
	// logs. Required.
	Dir string
	// BinPath is the hermesd binary to spawn. Empty means build it from
	// the enclosing module (cached per test process).
	BinPath string
}

// proc tracks one spawned hermesd and its reaper.
type proc struct {
	cmd  *exec.Cmd
	done chan error
}

// Cluster is the orchestrator's handle on a running multi-process cluster.
// The parent holds every listener for the cluster's lifetime: the children
// serve on dup'd fds, so a killed worker's ports stay bound (dials to it
// land in the kernel backlog and get repaired by retransmission once the
// worker is back) and a restarted worker reclaims the exact same address.
type Cluster struct {
	cfg       ClusterConfig
	bin       string
	addrs     map[tx.NodeID]string
	views     []map[tx.NodeID]string // per-process peer maps (proxied when net != nil)
	dataLns   []*net.TCPListener
	ctrlLns   []*net.TCPListener
	leaderLn  *net.TCPListener
	ctrlAddrs []string
	logs      []*os.File
	client    *http.Client
	net       *netchaos.Plane

	// procMu guards procs: the supervisor reaps/respawns concurrently
	// with tests calling KillWorker/RestartWorker/Close.
	procMu sync.Mutex
	procs  []*proc

	mu     sync.Mutex
	closed bool
	super  *Supervisor
}

var (
	buildMu    sync.Mutex
	buildPaths = map[bool]string{}
	buildErrs  = map[bool]error{}
	buildDone  = map[bool]bool{}
)

// HermesdBinary builds ./cmd/hermesd once per test process and returns the
// binary path. With HERMESD_BUILD_RACE=1 in the environment the children
// are built with -race, so a CI gate can put the race detector inside every
// process of the cluster, not just the orchestrating test.
func HermesdBinary() (string, error) {
	race := os.Getenv("HERMESD_BUILD_RACE") == "1"
	buildMu.Lock()
	defer buildMu.Unlock()
	if buildDone[race] {
		return buildPaths[race], buildErrs[race]
	}
	buildDone[race] = true
	root, err := moduleRoot()
	if err != nil {
		buildErrs[race] = err
		return "", err
	}
	dir, err := os.MkdirTemp("", "hermesd-bin-")
	if err != nil {
		buildErrs[race] = err
		return "", err
	}
	out := filepath.Join(dir, "hermesd")
	args := []string{"build"}
	if race {
		args = append(args, "-race")
	}
	args = append(args, "-o", out, "./cmd/hermesd")
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	if msg, err := cmd.CombinedOutput(); err != nil {
		buildErrs[race] = fmt.Errorf("harness: building hermesd: %v\n%s", err, msg)
		return "", buildErrs[race]
	}
	buildPaths[race] = out
	return out, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("harness: no go.mod above the working directory")
		}
		dir = parent
	}
}

// StartCluster binds every cluster port on loopback, spawns one hermesd
// per worker (worker 0's process additionally hosts the sequencer leader),
// and waits for every control plane to answer /healthz.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workers < 2 {
		return nil, fmt.Errorf("harness: a cluster needs at least 2 workers, got %d", cfg.Workers)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("harness: ClusterConfig.Dir is required")
	}
	if cfg.FusionCap == 0 {
		cfg.FusionCap = int(cfg.Rows / 40)
	}
	if cfg.OverloadDelay == 0 {
		cfg.OverloadDelay = 512
	}
	if cfg.OverloadShed == 0 {
		cfg.OverloadShed = 4096
	}
	bin := cfg.BinPath
	if bin == "" {
		var err error
		if bin, err = HermesdBinary(); err != nil {
			return nil, err
		}
	}
	c := &Cluster{
		cfg:       cfg,
		bin:       bin,
		addrs:     make(map[tx.NodeID]string, cfg.Workers+1),
		dataLns:   make([]*net.TCPListener, cfg.Workers),
		ctrlLns:   make([]*net.TCPListener, cfg.Workers),
		ctrlAddrs: make([]string, cfg.Workers),
		logs:      make([]*os.File, cfg.Workers),
		procs:     make([]*proc, cfg.Workers),
		client:    &http.Client{Timeout: 3 * time.Second},
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		ln, err := listenLoopback()
		if err != nil {
			return fail(err)
		}
		c.dataLns[i] = ln
		c.addrs[tx.NodeID(i)] = ln.Addr().String()
		if c.ctrlLns[i], err = listenLoopback(); err != nil {
			return fail(err)
		}
		c.ctrlAddrs[i] = c.ctrlLns[i].Addr().String()
	}
	ln, err := listenLoopback()
	if err != nil {
		return fail(err)
	}
	c.leaderLn = ln
	c.addrs[engine.LeaderNode] = ln.Addr().String()

	if cfg.Net != nil {
		// The leader transport is co-hosted in worker 0's process, so for
		// rule matching and partition membership its id is worker 0.
		if cfg.Net.Alias == nil {
			cfg.Net.Alias = map[int]int{}
		}
		cfg.Net.Alias[int(engine.LeaderNode)] = 0
		c.net = netchaos.NewPlane(cfg.Net)
		c.views = make([]map[tx.NodeID]string, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			view := make(map[tx.NodeID]string, len(c.addrs))
			for id, addr := range c.addrs {
				// Same-process links (self, and worker 0 to its co-hosted
				// leader) stay direct: no real network to condition.
				if int(id) == i || (id == engine.LeaderNode && i == 0) {
					view[id] = addr
					continue
				}
				proxied, err := c.net.Route(i, int(id), addr)
				if err != nil {
					return fail(err)
				}
				view[id] = proxied
			}
			c.views[i] = view
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		if err := c.spawn(i, false); err != nil {
			return fail(err)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		if err := c.waitHealthy(i, 10*time.Second); err != nil {
			return fail(err)
		}
	}
	return c, nil
}

func listenLoopback() (*net.TCPListener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return ln.(*net.TCPListener), nil
}

// peersFlag renders worker i's id=addr map for its command line. Under a
// fault plane each process gets its own view, with every remote peer
// routed through that process's per-link proxies.
func (c *Cluster) peersFlag(i int) string {
	addrs := c.addrs
	if c.views != nil {
		addrs = c.views[i]
	}
	parts := make([]string, 0, len(addrs))
	for id, addr := range addrs {
		parts = append(parts, fmt.Sprintf("%d=%s", id, addr))
	}
	return strings.Join(parts, ",")
}

// spawn launches worker i's process, inheriting its listeners as fd 3
// (data), fd 4 (control) and — on the leader host — fd 5 (leader).
func (c *Cluster) spawn(i int, recover bool) error {
	nodeDir := filepath.Join(c.cfg.Dir, fmt.Sprintf("node%d", i))
	if err := os.MkdirAll(nodeDir, 0o755); err != nil {
		return err
	}
	if c.logs[i] == nil {
		f, err := os.OpenFile(filepath.Join(c.cfg.Dir, fmt.Sprintf("node%d.log", i)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		c.logs[i] = f
	}
	args := []string{
		"-node", fmt.Sprint(i),
		"-workers", fmt.Sprint(c.cfg.Workers),
		"-peers", c.peersFlag(i),
		"-policy", c.cfg.Policy,
		"-rows", fmt.Sprint(c.cfg.Rows),
		"-fusioncap", fmt.Sprint(c.cfg.FusionCap),
		"-alpha", fmt.Sprint(c.cfg.Alpha),
		"-batch", fmt.Sprint(c.cfg.BatchSize),
		"-dir", nodeDir,
	}
	if c.cfg.ExecMode != "" {
		args = append(args, "-exec", c.cfg.ExecMode)
	}
	if c.cfg.OverloadDelay != 0 {
		args = append(args, "-overload-delay", fmt.Sprint(c.cfg.OverloadDelay))
	}
	if c.cfg.OverloadShed != 0 {
		args = append(args, "-overload-shed", fmt.Sprint(c.cfg.OverloadShed))
	}
	if c.cfg.Fsync != "" {
		args = append(args, "-fsync", c.cfg.Fsync)
	}
	if c.cfg.CheckpointEvery > 0 {
		args = append(args, "-checkpoint-every", c.cfg.CheckpointEvery.String())
	}
	if c.cfg.TraceRing > 0 {
		args = append(args, "-trace-ring", fmt.Sprint(c.cfg.TraceRing))
	}
	if c.cfg.TraceOff {
		args = append(args, "-trace-off")
	}
	if i == 0 {
		args = append(args, "-seq-host")
	}
	if recover {
		args = append(args, "-recover")
	}
	cmd := exec.Command(c.bin, args...)
	cmd.Stdout = c.logs[i]
	cmd.Stderr = c.logs[i]

	var files []*os.File
	dataF, err := c.dataLns[i].File()
	if err != nil {
		return err
	}
	files = append(files, dataF)
	ctrlF, err := c.ctrlLns[i].File()
	if err != nil {
		dataF.Close()
		return err
	}
	files = append(files, ctrlF)
	if i == 0 {
		leaderF, err := c.leaderLn.File()
		if err != nil {
			dataF.Close()
			ctrlF.Close()
			return err
		}
		files = append(files, leaderF)
	}
	cmd.ExtraFiles = files
	err = cmd.Start()
	for _, f := range files {
		f.Close() // the child holds its own dups now
	}
	if err != nil {
		return fmt.Errorf("harness: spawning worker %d: %w", i, err)
	}
	p := &proc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	c.procMu.Lock()
	c.procs[i] = p
	c.procMu.Unlock()
	return nil
}

// getProc reads worker i's proc handle under the lifecycle lock.
func (c *Cluster) getProc(i int) *proc {
	c.procMu.Lock()
	defer c.procMu.Unlock()
	return c.procs[i]
}

// takeProc claims worker i's proc handle for teardown: whoever gets the
// non-nil pointer owns the kill+reap; everyone else sees nil. This is what
// lets a test's KillWorker and the supervisor's reaper race safely.
func (c *Cluster) takeProc(i int) *proc {
	c.procMu.Lock()
	defer c.procMu.Unlock()
	p := c.procs[i]
	c.procs[i] = nil
	return p
}

func (c *Cluster) waitHealthy(i int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var out string
		err := c.get(i, "/healthz", &out)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("harness: worker %d control plane never came up: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Seed streams the deterministic record set into every process; each seeds
// the rows its routing replica places locally, then starts its worker.
func (c *Cluster) Seed() error {
	spec := seedSpec{Rows: c.cfg.Rows, Payload: c.cfg.Payload}
	total := 0
	for i := range c.procs {
		var resp struct {
			Seeded int `json:"seeded"`
		}
		if err := c.post(i, "/seed", spec, &resp); err != nil {
			return fmt.Errorf("harness: seeding worker %d: %w", i, err)
		}
		total += resp.Seeded
	}
	if uint64(total) != c.cfg.Rows {
		return fmt.Errorf("harness: seeded %d rows across the cluster, want %d", total, c.cfg.Rows)
	}
	return nil
}

// Run starts the workload on the driver process (worker 0) and returns
// immediately; poll Status or WaitRun for progress.
func (c *Cluster) Run(spec WorkloadSpec) error {
	return c.post(0, "/run", spec, nil)
}

// Status fetches the driver's live run progress.
func (c *Cluster) Status() (RunStatus, error) {
	var st RunStatus
	err := c.get(0, "/runstatus", &st)
	return st, err
}

// WaitRun polls until the driver reports the run done, returning its
// result. Transient status errors (e.g. while the driver host is briefly
// overloaded) are retried until the deadline.
func (c *Cluster) WaitRun(timeout time.Duration) (*RunResult, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status()
		if err == nil && st.Done {
			if st.Err != "" {
				return st.Result, fmt.Errorf("harness: run failed: %s", st.Err)
			}
			return st.Result, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return nil, fmt.Errorf("harness: run did not finish within %v (last status error: %v)", timeout, err)
			}
			return nil, fmt.Errorf("harness: run did not finish within %v (%d/%d completed)",
				timeout, st.Completed, st.Total)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// KillWorker SIGKILLs worker i's process and reaps it. The worker's ports
// stay bound in the parent, so peers keep retransmitting into the backlog
// until RestartWorker brings it back.
func (c *Cluster) KillWorker(i int) error {
	p := c.takeProc(i)
	if p == nil {
		return fmt.Errorf("harness: worker %d is not running", i)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	select {
	case <-p.done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("harness: worker %d did not die after SIGKILL", i)
	}
	return nil
}

// RestartWorker respawns a killed worker in recovery mode: it re-seeds
// from its persisted seed spec, bumps its incarnation, replays its journal
// and rejoins on the same ports.
func (c *Cluster) RestartWorker(i int) error {
	if c.getProc(i) != nil {
		return fmt.Errorf("harness: worker %d is still running", i)
	}
	if err := c.spawn(i, true); err != nil {
		return err
	}
	return c.waitHealthy(i, 10*time.Second)
}

// NetPlane returns the cluster's fault plane (nil without ClusterConfig.Net).
// Callers arm the schedule with Start once the workload is running, and may
// drive manual faults through it.
func (c *Cluster) NetPlane() *netchaos.Plane { return c.net }

// Quiesce drives the cluster to a provably settled state: the leader has
// nothing pending, and in a single sweep every worker has scheduled the
// full sealed stream with no queued work, no in-flight transactions, no
// unacked sends and no undelivered backlog.
func (c *Cluster) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok, err := c.quiesceOnce()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("workers never settled")
			}
			return fmt.Errorf("harness: cluster did not quiesce within %v: %w", timeout, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *Cluster) quiesceOnce() (bool, error) {
	var next leaderNext
	if err := c.get(0, "/next", &next); err != nil {
		return false, err
	}
	if next.Pending != 0 {
		return false, fmt.Errorf("leader still holds %d pending", next.Pending)
	}
	for i := range c.procs {
		var q engine.WorkerQuiesceInfo
		if err := c.get(i, "/quiesce", &q); err != nil {
			return false, fmt.Errorf("worker %d: %w", i, err)
		}
		if q.Scheduled != next.Seq || q.QueuedLockKeys != 0 || q.Pending != 0 ||
			q.Unacked != 0 || q.Backlog != 0 {
			return false, fmt.Errorf("worker %d not settled: %+v (leader seq %d)", i, q, next.Seq)
		}
	}
	return true, nil
}

// CheckpointAll quiesces the cluster, then has every worker capture and
// durably save a checkpoint and rotate its journal behind it. At global
// quiesce no input is in flight, so each worker's capture cannot race new
// frames.
func (c *Cluster) CheckpointAll(timeout time.Duration) error {
	if err := c.Quiesce(timeout); err != nil {
		return err
	}
	for i := range c.procs {
		var resp struct {
			Checkpoint  uint64 `json:"checkpoint"`
			JournalBase uint64 `json:"journal_base"`
		}
		if err := c.post(i, "/checkpoint", struct{}{}, &resp); err != nil {
			return fmt.Errorf("harness: checkpointing worker %d: %w", i, err)
		}
	}
	return nil
}

// WipeWorkerStorage simulates losing worker i's page cache in a host crash:
// every file in its data directory is truncated back to its last-fsynced
// mark and temp files vanish. Only meaningful on a dead worker (between
// KillWorker and RestartWorker); with fsync policy "none" this erases the
// journal entirely, exactly as a real power cut would.
func (c *Cluster) WipeWorkerStorage(i int) error {
	if c.procs[i] != nil {
		return fmt.Errorf("harness: worker %d is still running", i)
	}
	nodeDir := filepath.Join(c.cfg.Dir, fmt.Sprintf("node%d", i))
	_, err := diskio.WipeUnsynced(nodeDir)
	return err
}

// Digests fetches every worker's state digest, in worker order.
func (c *Cluster) Digests() ([]engine.NodeDigest, error) {
	out := make([]engine.NodeDigest, len(c.procs))
	for i := range c.procs {
		if err := c.get(i, "/digest", &out[i]); err != nil {
			return nil, fmt.Errorf("harness: digest of worker %d: %w", i, err)
		}
	}
	return out, nil
}

// Stats fetches every process's counter snapshot, in worker order.
func (c *Cluster) Stats() ([]ProcStats, error) {
	out := make([]ProcStats, len(c.procs))
	for i := range c.procs {
		if err := c.get(i, "/stats", &out[i]); err != nil {
			return nil, fmt.Errorf("harness: stats of worker %d: %w", i, err)
		}
	}
	return out, nil
}

// Metrics scrapes and parses each process's Prometheus /metrics page,
// keyed "name{labels}".
func (c *Cluster) Metrics() ([]map[string]float64, error) {
	out := make([]map[string]float64, len(c.procs))
	for i := range c.procs {
		body, err := c.getRaw(i, "/metrics")
		if err != nil {
			return nil, fmt.Errorf("harness: metrics of worker %d: %w", i, err)
		}
		out[i] = ParseMetrics(body)
	}
	return out, nil
}

// Get fetches an arbitrary control-plane endpoint of worker i into out
// (tests and debugging).
func (c *Cluster) Get(i int, path string, out any) error { return c.get(i, path, out) }

// LogPath returns worker i's process log file path.
func (c *Cluster) LogPath(i int) string {
	return filepath.Join(c.cfg.Dir, fmt.Sprintf("node%d.log", i))
}

// ControlAddr returns worker i's control-plane address.
func (c *Cluster) ControlAddr(i int) string { return c.ctrlAddrs[i] }

// Close shuts every process down (gracefully where possible), then
// releases the parent-held listeners and log files. Idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	super := c.super
	c.super = nil
	c.mu.Unlock()

	// The supervisor must stop before processes start disappearing for
	// good, or it would dutifully resurrect them mid-teardown.
	if super != nil {
		super.Stop()
	}

	var firstErr error
	procs := make([]*proc, len(c.procs))
	for i := range c.procs {
		procs[i] = c.takeProc(i)
	}
	for i, p := range procs {
		if p == nil {
			continue
		}
		_ = c.post(i, "/shutdown", struct{}{}, nil)
	}
	for i, p := range procs {
		if p == nil {
			continue
		}
		select {
		case <-p.done:
		case <-time.After(5 * time.Second):
			_ = p.cmd.Process.Kill()
			select {
			case <-p.done:
			case <-time.After(5 * time.Second):
				if firstErr == nil {
					firstErr = fmt.Errorf("harness: worker %d would not exit", i)
				}
			}
		}
	}
	if c.net != nil {
		c.net.Close()
	}
	for _, ln := range c.dataLns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, ln := range c.ctrlLns {
		if ln != nil {
			ln.Close()
		}
	}
	if c.leaderLn != nil {
		c.leaderLn.Close()
	}
	for _, f := range c.logs {
		if f != nil {
			f.Close()
		}
	}
	return firstErr
}

func (c *Cluster) url(i int, path string) string {
	return "http://" + c.ctrlAddrs[i] + path
}

func (c *Cluster) get(i int, path string, out any) error {
	body, err := c.getRaw(i, path)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if s, ok := out.(*string); ok {
		*s = string(body)
		return nil
	}
	return json.Unmarshal(body, out)
}

func (c *Cluster) getRaw(i int, path string) ([]byte, error) {
	resp, err := c.client.Get(c.url(i, path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func (c *Cluster) post(i int, path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.client.Post(c.url(i, path), "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}
