package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"hermes/internal/engine"
	"hermes/internal/leaktest"
	"hermes/internal/tx"
)

// TestWorkloadSpecDeterministic pins the harness's core premise: the
// transaction stream is a pure function of the spec, so two independent
// generations are identical key for key.
func TestWorkloadSpecDeterministic(t *testing.T) {
	for _, kind := range []string{WorkloadYCSB, WorkloadHotspot} {
		spec := WorkloadSpec{
			Kind: kind, Seed: 7, Txns: 500, Rows: 1000,
			KeysPerTxn: 3, Payload: 32, Theta: 0.8, Window: 50,
		}
		a, err := spec.Procs()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := spec.Procs()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(a) != spec.Txns {
			t.Fatalf("%s: generated %d txns, want %d", kind, len(a), spec.Txns)
		}
		for i := range a {
			if len(a[i].Reads) != spec.KeysPerTxn {
				t.Fatalf("%s: txn %d has %d keys", kind, i, len(a[i].Reads))
			}
			for j := range a[i].Reads {
				if a[i].Reads[j] != b[i].Reads[j] {
					t.Fatalf("%s: txn %d key %d differs between generations", kind, i, j)
				}
			}
		}
	}
}

// TestWorkloadSpecValidate covers the mistakes Validate exists to catch.
func TestWorkloadSpecValidate(t *testing.T) {
	good := WorkloadSpec{Kind: WorkloadYCSB, Txns: 10, Rows: 100, KeysPerTxn: 2, Window: 20}
	if err := good.Validate(10); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := good
	bad.Kind = "tpcc"
	if err := bad.Validate(10); err == nil {
		t.Fatal("unknown workload kind accepted")
	}
	bad = good
	bad.Window = 5
	if err := bad.Validate(10); err == nil {
		t.Fatal("window below batch size accepted; the closed loop would deadlock")
	}
	bad = good
	bad.KeysPerTxn = 200
	if err := bad.Validate(10); err == nil {
		t.Fatal("more distinct keys than rows accepted")
	}
}

// TestParseMetrics parses a small Prometheus exposition.
func TestParseMetrics(t *testing.T) {
	body := []byte(`# HELP hermes_committed_total committed transactions
# TYPE hermes_committed_total counter
hermes_committed_total{node="0"} 120
hermes_net_bytes 4096
malformed line without value
`)
	m := ParseMetrics(body)
	if m[`hermes_committed_total{node="0"}`] != 120 {
		t.Fatalf("labeled metric not parsed: %v", m)
	}
	if m["hermes_net_bytes"] != 4096 {
		t.Fatalf("bare metric not parsed: %v", m)
	}
	if got := MetricSum([]map[string]float64{m, m}, "hermes_committed_total"); got != 240 {
		t.Fatalf("MetricSum = %v, want 240", got)
	}
}

// newTestNodeServer boots a single-worker NodeServer (co-hosting the
// sequencer leader) on loopback listeners the test binds itself.
func newTestNodeServer(t *testing.T, dir string) (*NodeServer, string) {
	t.Helper()
	listen := func() net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return ln
	}
	dataLn, ctrlLn, leaderLn := listen(), listen(), listen()
	addrs := map[tx.NodeID]string{
		0:                 dataLn.Addr().String(),
		engine.LeaderNode: leaderLn.Addr().String(),
	}
	s, err := NewNodeServer(NodeConfig{
		Self: 0, Workers: 1, Addrs: addrs,
		DataLn: dataLn, ControlLn: ctrlLn, LeaderLn: leaderLn,
		Policy: "calvin", Rows: 200, BatchSize: 10,
		Dir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, ctrlLn.Addr().String()
}

func postJSON(t *testing.T, addr, path string, in, out any) error {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(t *testing.T, addr, path string, out any) error {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestNodeServerLifecycle drives one full node lifecycle through the
// control plane — seed, run, drain, digest — and checks Close leaves no
// goroutines behind and is idempotent.
func TestNodeServerLifecycle(t *testing.T) {
	defer leaktest.Check(t)()
	s, addr := newTestNodeServer(t, t.TempDir())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	var seeded struct {
		Seeded int `json:"seeded"`
	}
	if err := postJSON(t, addr, "/seed", seedSpec{Rows: 200, Payload: 32}, &seeded); err != nil {
		t.Fatal(err)
	}
	if seeded.Seeded != 200 {
		t.Fatalf("single worker seeded %d of 200 rows", seeded.Seeded)
	}
	// Re-seeding a started node must be refused, not re-applied.
	if err := postJSON(t, addr, "/seed", seedSpec{Rows: 200, Payload: 32}, nil); err == nil {
		t.Fatal("second /seed accepted")
	}

	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 3, Txns: 100, Rows: 200,
		KeysPerTxn: 2, Payload: 32, Theta: 0.7, Window: 20,
	}
	if err := postJSON(t, addr, "/run", spec, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var st RunStatus
	for {
		if err := getJSON(t, addr, "/runstatus", &st); err != nil {
			t.Fatal(err)
		}
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Err != "" || st.Result == nil || st.Result.Committed != 100 {
		t.Fatalf("run did not commit everything: %+v", st)
	}
	var d engine.NodeDigest
	if err := getJSON(t, addr, "/digest", &d); err != nil {
		t.Fatal(err)
	}
	if d.Records != 200 || d.Store == 0 {
		t.Fatalf("digest after run: %+v", d)
	}
	var ps ProcStats
	if err := getJSON(t, addr, "/stats", &ps); err != nil {
		t.Fatal(err)
	}
	if ps.Committed != 100 {
		t.Fatalf("stats committed = %d, want 100", ps.Committed)
	}

	// Close drains in-flight work, tears everything down, and is
	// idempotent; Serve must return cleanly.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v after close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after close")
	}
}

// TestNodeServerCloseBeforeSeed checks a node that never started (no
// /seed) still shuts down cleanly without leaking its transports.
func TestNodeServerCloseBeforeSeed(t *testing.T) {
	defer leaktest.Check(t)()
	s, _ := newTestNodeServer(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatalf("close before seed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestRunTwinDeterministic runs the in-process twin twice on the same spec
// and checks the digests — the reference side of the cluster comparison —
// are identical run to run.
func TestRunTwinDeterministic(t *testing.T) {
	cfg := TwinConfig{Workers: 3, Policy: "calvin", Rows: 600, Payload: 32, BatchSize: 10}
	spec := WorkloadSpec{
		Kind: WorkloadHotspot, Seed: 11, Txns: 200, Rows: 600,
		KeysPerTxn: 2, Payload: 32, Theta: 0.8, Window: 20,
	}
	a, err := RunTwin(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTwin(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Committed != int64(spec.Txns) {
		t.Fatalf("twin committed %d of %d", a.Result.Committed, spec.Txns)
	}
	if len(a.Digests) != cfg.Workers {
		t.Fatalf("twin produced %d digests for %d workers", len(a.Digests), cfg.Workers)
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			t.Fatalf("twin digests diverge between identical runs at node %d:\n%+v\n%+v",
				i, a.Digests[i], b.Digests[i])
		}
	}
}
