package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hermes"
	"hermes/internal/diskio"
	"hermes/internal/durable"
	"hermes/internal/engine"
	"hermes/internal/network"
	"hermes/internal/partition"
	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// Cluster-process transport tuning. A dead peer's listener stays bound in
// the parent, so a dial to it succeeds at the TCP level and then hangs in
// the version handshake; the short send timeout turns that hang into a
// bounded error the reliable layer's retransmission repairs once the peer
// is back.
const (
	procSendTimeout  = time.Second
	procDialAttempts = 2
	procDialBackoff  = 25 * time.Millisecond
	procDialCap      = 100 * time.Millisecond

	// drainTimeout bounds the graceful-shutdown quiesce attempt (SIGTERM,
	// /shutdown): in-flight work gets this long to land before teardown.
	drainTimeout = 2 * time.Second
	// runTimeout bounds a single /run workload from the process's side;
	// the orchestrator normally enforces a tighter one.
	runTimeout = 5 * time.Minute
)

// NodeConfig assembles one hermesd cluster process.
type NodeConfig struct {
	// Self is this process's worker id; Workers the total worker count
	// (ids 0..Workers-1).
	Self    tx.NodeID
	Workers int
	// Addrs maps every data-plane transport id — each worker plus
	// engine.LeaderNode — to its address. The orchestrator bound all the
	// listeners, so it knows every address before any process starts.
	Addrs map[tx.NodeID]string
	// DataLn and ControlLn are this process's inherited listeners; LeaderLn
	// is non-nil only on the process that hosts the sequencer leader.
	DataLn    net.Listener
	ControlLn net.Listener
	LeaderLn  net.Listener
	// Policy, Rows, FusionCap, Alpha parameterize the routing replica;
	// they must be identical in every process and in the twin.
	Policy    string
	Rows      uint64
	FusionCap int
	Alpha     float64
	// BatchSize is the sequencer batch size (sealing is size-only).
	BatchSize int
	// ExecMode selects the execution backend ("lock" or "queue"; empty
	// means lock). Must be identical in every process and in the twin.
	ExecMode string
	// Dir holds the process's delivery journal, incarnation counter, seed
	// spec, and checkpoint store (in Dir/checkpoints).
	Dir string
	// Fsync is the journal's fsync policy ("none"|"batch"|"always"; empty
	// = none, the legacy page-cache-durability mode). With "batch" or
	// "always", acked input survives host death, and a restart rebuilds
	// state strictly from the on-disk checkpoint + journal suffix.
	Fsync string
	// CheckpointEvery, when positive, runs an opportunistic periodic
	// checkpoint: at each tick, if the worker happens to be settled, its
	// state is captured, saved durably, and the journal rotated. Zero
	// disables the trigger (the orchestrator can still POST /checkpoint).
	CheckpointEvery time.Duration
	// Recover marks a restarted process: it restores the newest durable
	// checkpoint (if any), re-seeds from the persisted seed spec
	// otherwise, and starts replaying its journal immediately instead of
	// waiting for /seed.
	Recover bool
	// TraceRing sizes the per-node telemetry event rings (events; rounded
	// up to a power of two). Zero keeps the default. Size it to hold a
	// whole run's events when the cluster trace will be collected: a
	// wrapped ring silently drops the oldest spans.
	TraceRing int
	// TraceOff starts the process with lifecycle tracing disabled (the
	// registry and /metrics stay live). The tracing-on-vs-off digest
	// equivalence gate runs cluster pairs differing only in this bit.
	TraceOff bool
	// OverloadDelay and OverloadShed are the driver's backpressure
	// watermarks on this node's queue depth (reliable-layer unacked +
	// undelivered backlog + queued exec keys): at Delay admission is
	// paced, at Shed it is refused until the depth drains. Values <= 0
	// disable the respective watermark. Only meaningful on the driver
	// process.
	OverloadDelay int64
	OverloadShed  int64
}

// seedSpec is the record-stream description persisted at seeding time so a
// restarted process can rebuild its shard without the orchestrator's help.
type seedSpec struct {
	Rows    uint64 `json:"rows"`
	Payload int    `json:"payload"`
}

const seedFile = "seed.json"

// NodeServer is the in-process runtime of one hermesd cluster process: a
// single engine worker over TCP, the optional co-hosted sequencer leader,
// and the control-plane HTTP server the orchestrator drives.
type NodeServer struct {
	cfg     NodeConfig
	workers []tx.NodeID
	jr      *network.Journal
	ckpt    *durable.Store
	tr      *network.TCPTransport
	cluster *engine.Cluster
	tel     *telemetry.Telemetry
	drv     *driver
	gate    *overloadGate

	// restoredID is the checkpoint watermark this process restarted from
	// (0 + restored=false on a fresh or journal-only start). ckptMu
	// serializes checkpoint captures; ckptQuit stops the periodic trigger.
	restored   bool
	restoredID uint64
	ckptMu     sync.Mutex
	ckptQuit   chan struct{}
	ckptWG     sync.WaitGroup

	// Leader-host half (nil-fields on plain workers). The leader is a
	// standalone sequencer replica on its own transport node; it is not
	// restartable (see docs/CLUSTER.md), so it has no journal.
	leader    *sequencer.Leader
	leaderTr  *network.TCPTransport
	leaderRel *network.Reliable
	leaderClk *stopClock

	srv *http.Server

	mu      sync.Mutex
	started bool
	closed  bool
}

// NewNodeServer assembles the process runtime. A recovering process seeds
// its shard from the persisted spec and starts replaying its journal
// before this returns; a fresh process stays idle until /seed.
func NewNodeServer(cfg NodeConfig) (*NodeServer, error) {
	if cfg.Workers <= 0 || cfg.Self < 0 || int(cfg.Self) >= cfg.Workers {
		return nil, fmt.Errorf("harness: node %d outside worker set of %d", cfg.Self, cfg.Workers)
	}
	if cfg.DataLn == nil || cfg.ControlLn == nil {
		return nil, fmt.Errorf("harness: node %d: missing inherited listener", cfg.Self)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("harness: node %d: batch size must be positive", cfg.Self)
	}
	workers := make([]tx.NodeID, cfg.Workers)
	for i := range workers {
		workers[i] = tx.NodeID(i)
	}
	pf, err := hermes.PolicyFactoryFor(hermes.Policy(cfg.Policy),
		partition.NewUniformRange(0, cfg.Rows, cfg.Workers), cfg.Alpha, cfg.FusionCap)
	if err != nil {
		return nil, err
	}

	policy, err := network.ParseSyncPolicy(cfg.Fsync)
	if err != nil {
		return nil, fmt.Errorf("harness: node %d: %w", cfg.Self, err)
	}
	ckpt, err := durable.Open(filepath.Join(cfg.Dir, "checkpoints"), nil)
	if err != nil {
		return nil, err
	}
	// Load the newest durable checkpoint before opening the journal: its
	// link floors must seed the journal's watermark tracking so rotated-away
	// senders still dedup correctly.
	var cp engine.WorkerCheckpoint
	cpID, haveCP, err := ckpt.Load(&cp)
	if err != nil {
		return nil, err
	}
	var floors map[tx.NodeID]network.LinkFloor
	if haveCP {
		floors = cp.Floors
	}
	jr, err := network.OpenJournalWith(cfg.Dir, network.JournalOpts{Policy: policy, Floors: floors})
	if err != nil {
		return nil, err
	}
	// A rotated journal (Base > 0) only holds frames past the checkpoint
	// cut; replaying it without the checkpoint would silently drop the
	// covered prefix and diverge. Refuse loudly.
	if !haveCP && jr.Base() > 0 {
		jr.Close()
		return nil, fmt.Errorf("harness: node %d: journal rotated to %d but no loadable checkpoint in %s",
			cfg.Self, jr.Base(), ckpt.Dir())
	}
	recovered := jr.Recovered()
	if haveCP {
		recovered, err = jr.RecoveredSince(cp.Delivered)
		if err != nil {
			jr.Close()
			return nil, fmt.Errorf("harness: node %d: checkpoint %d does not meet journal: %w",
				cfg.Self, cpID, err)
		}
	}
	ringSize := cfg.TraceRing
	if ringSize <= 0 {
		ringSize = 4096
	}
	tel := telemetry.New([]tx.NodeID{cfg.Self}, ringSize)
	if cfg.TraceOff {
		tel.Tracer().SetEnabled(false)
	}
	tr := network.NewTCPTransportListener(cfg.Self, cfg.Addrs, cfg.DataLn)
	tuneTransport(tr)
	cluster, err := engine.NewWorker(engine.WorkerConfig{
		Self:        cfg.Self,
		Workers:     workers,
		Leader:      engine.LeaderNode,
		Transport:   tr,
		NetStats:    tr.Stats(),
		Policy:      pf,
		Incarnation: jr.Incarnation(),
		Journal:     jr.Append,
		AckGate:     jr.AfterDurable,
		Floors:      jr.Floors(),
		Recovered:   recovered,
		Telemetry:   tel,
		ExecMode:    cfg.ExecMode,
		// The session front-end's default 20ms stall timeout is tuned for
		// in-process failover drills; on a real loaded cluster the leader
		// routinely goes longer than that between seals, and every false
		// stall resends the whole submission queue. Failover recovery does
		// not depend on this timer — SetLeader resends immediately — so it
		// only needs to beat a genuinely wedged leader.
		RetryTimeout: time.Second,
		RetryCap:     4 * time.Second,
		// Likewise for the reliable layer's 2ms retransmit base: over real
		// TCP with acks gated behind group-commit fsyncs, ack rounds past
		// 2ms are normal operation, not loss.
		RetransmitBase: 50 * time.Millisecond,
		RetransmitCap:  time.Second,
	})
	if err != nil {
		tr.Close()
		jr.Close()
		return nil, err
	}

	s := &NodeServer{
		cfg:     cfg,
		workers: workers,
		jr:      jr,
		ckpt:    ckpt,
		tr:      tr,
		cluster: cluster,
		tel:     tel,
		drv:     newDriver(),
	}
	if haveCP {
		if err := cluster.RestoreWorkerState(&cp); err != nil {
			tr.Close()
			jr.Close()
			return nil, err
		}
		s.restored, s.restoredID = true, cpID
		log.Printf("harness: node %d restored checkpoint %d (journal base %d, %d recovered frames)",
			cfg.Self, cpID, jr.Base(), len(recovered))
	}
	if cfg.OverloadDelay > 0 || cfg.OverloadShed > 0 {
		s.gate = &overloadGate{
			delayWM: cfg.OverloadDelay,
			shedWM:  cfg.OverloadShed,
			pressure: func() int64 {
				unacked, backlog := cluster.Reliable().Depths()
				return unacked + backlog + int64(cluster.WorkerQuiesce().QueuedLockKeys)
			},
		}
	}
	s.registerDurabilityMetrics()
	if cfg.LeaderLn != nil {
		s.leaderTr = network.NewTCPTransportListener(engine.LeaderNode, cfg.Addrs, cfg.LeaderLn)
		tuneTransport(s.leaderTr)
		s.leaderRel = network.NewReliableWith(s.leaderTr, network.ReliableOpts{
			RecvFor: []tx.NodeID{engine.LeaderNode},
			SendTo:  workers,
		})
		s.leaderClk = newStopClock()
		// Size-only sealing: the interval is effectively infinite so batch
		// boundaries are a function of the request stream alone, and the
		// driver flushes the tail deterministically.
		s.leader = sequencer.NewLeader(engine.LeaderNode, s.leaderRel, workers,
			sequencer.Config{BatchSize: cfg.BatchSize, Interval: time.Hour}, s.leaderClk)
		s.leader.Start()
	}
	s.srv = &http.Server{Handler: s.mux()}

	if cfg.Recover {
		if err := s.seedFromFile(); err != nil {
			s.Close()
			return nil, err
		}
	}
	if cfg.CheckpointEvery > 0 {
		s.ckptQuit = make(chan struct{})
		s.ckptWG.Add(1)
		go s.checkpointLoop(cfg.CheckpointEvery)
	}
	return s, nil
}

// checkpointLoop opportunistically checkpoints on a timer. Every tick is
// best-effort: a worker that is mid-run simply is not settled and the tick
// is skipped — correctness never depends on the trigger firing.
func (s *NodeServer) checkpointLoop(every time.Duration) {
	defer s.ckptWG.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.ckptQuit:
			return
		case <-tick.C:
			s.mu.Lock()
			ready := s.started && !s.closed
			s.mu.Unlock()
			if !ready {
				continue
			}
			if _, err := s.checkpointNow(); err != nil {
				log.Printf("harness: node %d periodic checkpoint skipped: %v", s.cfg.Self, err)
			}
		}
	}
}

// checkpointNow captures a settled worker's state, saves it durably, and
// rotates the journal behind it. The feed is paused around the capture, but
// the pause stops only the consumer — the pump keeps journaling arriving
// frames — so the cut is validated by re-reading the journal count after
// the capture: if input landed mid-capture the snapshot may not cover it,
// and the attempt aborts (the next tick retries).
func (s *NodeServer) checkpointNow() (uint64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	rel := s.cluster.Reliable()
	rel.Pause(s.cfg.Self)
	defer rel.Resume(s.cfg.Self)

	pre := s.jr.Count()
	cp, err := s.cluster.CaptureWorker()
	if err != nil {
		return 0, err
	}
	cp.Floors = s.jr.Floors()
	if post := s.jr.Count(); post != pre {
		return 0, fmt.Errorf("input arrived mid-capture (%d -> %d journal frames)", pre, post)
	}
	cp.Delivered = pre
	if err := s.ckpt.Save(cp.Delivered, cp); err != nil {
		return 0, err
	}
	// Checkpoint-then-rotate: the covered prefix may only be discarded once
	// the checkpoint is durable. A failed rotation is loud but non-fatal —
	// the journal merely keeps the prefix around.
	if err := s.jr.Rotate(cp.Delivered); err != nil {
		log.Printf("harness: node %d: journal rotation after checkpoint %d failed: %v",
			s.cfg.Self, cp.Delivered, err)
	}
	// The in-memory delivery log uses in-process positions, not absolute
	// journal frames; trim it by its own watermark.
	rel.TruncateDelivered(s.cfg.Self, rel.Delivered(s.cfg.Self))
	return cp.Delivered, nil
}

func tuneTransport(tr *network.TCPTransport) {
	tr.SetSendTimeout(procSendTimeout)
	tr.SetDialRetry(procDialAttempts, procDialBackoff, procDialCap)
}

// Serve runs the control-plane HTTP server until Close.
func (s *NodeServer) Serve() error {
	err := s.srv.Serve(s.cfg.ControlLn)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Cluster exposes the worker engine (tests).
func (s *NodeServer) Cluster() *engine.Cluster { return s.cluster }

// seed writes the local shard of the deterministic record stream and
// starts the worker. Every process runs the identical loop; the routing
// replicas agree on placement, so each record lands in exactly one.
func (s *NodeServer) seed(spec seedSpec) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("harness: node %d is shut down", s.cfg.Self)
	}
	if s.started {
		s.mu.Unlock()
		return 0, fmt.Errorf("harness: node %d already seeded", s.cfg.Self)
	}
	s.mu.Unlock()
	if spec.Rows == 0 || spec.Rows != s.cfg.Rows {
		return 0, fmt.Errorf("harness: seed rows %d do not match the partitioning's %d rows",
			spec.Rows, s.cfg.Rows)
	}
	val := SeedValue(spec.Payload)
	n := 0
	for r := uint64(0); r < spec.Rows; r++ {
		if s.cluster.SeedLocal(tx.MakeKey(0, r), append([]byte(nil), val...)) {
			n++
		}
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	// Crash-atomic: a restart never sees a torn seed spec, and the atomic
	// write survives the harness's page-cache wipe.
	if err := diskio.WriteFileAtomic(diskio.OSFS{}, filepath.Join(s.cfg.Dir, seedFile), append(data, '\n')); err != nil {
		return 0, err
	}
	s.startWorker()
	return n, nil
}

func (s *NodeServer) seedFromFile() error {
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, seedFile))
	if err != nil {
		return fmt.Errorf("harness: node %d recovering without a seed spec: %w", s.cfg.Self, err)
	}
	var spec seedSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("harness: node %d: corrupt seed spec: %w", s.cfg.Self, err)
	}
	// A restored checkpoint already embeds the seeded records (and
	// placement may have moved keys since seeding); re-seeding would
	// clobber migrated state. The spec is only replayed on a journal-only
	// restart.
	if !s.restored {
		val := SeedValue(spec.Payload)
		for r := uint64(0); r < spec.Rows; r++ {
			s.cluster.SeedLocal(tx.MakeKey(0, r), append([]byte(nil), val...))
		}
	}
	// Seeding must complete before the worker starts: the reliable layer
	// replays the journal the moment the node consumes its feed, and
	// replayed batches must execute over the seeded store.
	s.startWorker()
	return nil
}

func (s *NodeServer) startWorker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.cluster.StartWorker()
}

// registerDurabilityMetrics exposes the journal's and checkpoint store's
// counters as gauges in the process's telemetry registry (served at
// /metrics alongside the engine's own series).
func (s *NodeServer) registerDurabilityMetrics() {
	reg := s.tel.Registry()
	jstat := func(f func(network.JournalStats) int64) func() float64 {
		return func() float64 { return float64(f(s.jr.Stats())) }
	}
	cstat := func(f func(durable.Stats) int64) func() float64 {
		return func() float64 { return float64(f(s.ckpt.Stats())) }
	}
	reg.Gauge("hermes_journal_fsyncs_total", "journal fsync calls issued",
		jstat(func(st network.JournalStats) int64 { return st.Fsyncs }))
	reg.Gauge("hermes_journal_sync_failures_total", "journal fsyncs that returned an error",
		jstat(func(st network.JournalStats) int64 { return st.SyncFailures }))
	reg.Gauge("hermes_journal_batches_total", "group-commit fsync batches",
		jstat(func(st network.JournalStats) int64 { return st.Batches }))
	reg.Gauge("hermes_journal_batched_acks_total", "acks released by group-commit batches",
		jstat(func(st network.JournalStats) int64 { return st.BatchedAcks }))
	reg.Gauge("hermes_journal_append_retries_total", "journal appends repaired after short/torn writes",
		jstat(func(st network.JournalStats) int64 { return st.AppendRetries }))
	reg.Gauge("hermes_journal_torn_records_total", "torn tail frames truncated at recovery",
		jstat(func(st network.JournalStats) int64 { return st.TornRecords }))
	reg.Gauge("hermes_journal_corrupt_records_total", "corrupt frames quarantined at recovery",
		jstat(func(st network.JournalStats) int64 { return st.Corrupt }))
	reg.Gauge("hermes_journal_rotations_total", "journal rotations behind checkpoints",
		jstat(func(st network.JournalStats) int64 { return st.Rotations }))
	reg.Gauge("hermes_journal_base_frame", "absolute frame index the on-disk journal starts at",
		func() float64 { return float64(s.jr.Base()) })
	reg.Gauge("hermes_checkpoint_saves_total", "checkpoints written durably",
		cstat(func(st durable.Stats) int64 { return st.Saves }))
	reg.Gauge("hermes_checkpoint_last_save_seconds", "wall time of the most recent checkpoint save",
		func() float64 { return float64(s.ckpt.Stats().LastSaveNanos) / 1e9 })
	reg.Gauge("hermes_checkpoint_corrupt_skipped_total", "checkpoint files rejected by verification",
		cstat(func(st durable.Stats) int64 { return st.CorruptSkipped }))
	reg.Gauge("hermes_checkpoint_load_fallbacks_total", "loads that ignored the manifest and scanned",
		cstat(func(st durable.Stats) int64 { return st.LoadFallbacks }))
	reg.Gauge("hermes_overload_delayed_total", "submissions paced by the overload gate's delay watermark",
		func() float64 {
			if s.gate == nil {
				return 0
			}
			return float64(s.gate.delayedTotal.Load())
		})
	reg.Gauge("hermes_overload_shed_total", "submissions refused by the overload gate's shed watermark",
		func() float64 {
			if s.gate == nil {
				return 0
			}
			return float64(s.gate.shedTotal.Load())
		})
}

// ProcStats is one process's counter snapshot, served at /stats.
type ProcStats struct {
	Node              int64  `json:"node"`
	Incarnation       uint64 `json:"incarnation"`
	Committed         int64  `json:"committed"`
	Aborted           int64  `json:"aborted"`
	NetMsgs           int64  `json:"net_msgs"`
	NetBytes          int64  `json:"net_bytes"`
	Retransmits       int64  `json:"retransmits"`
	DupsDropped       int64  `json:"dups_dropped"`
	HandshakeFailures int64  `json:"handshake_failures"`

	// Backpressure counters (non-zero only on the driver process, whose
	// overload gate paces/refuses admission on local queue depth).
	OverloadDelayed int64 `json:"overload_delayed"`
	OverloadShed    int64 `json:"overload_shed"`

	// Durability counters.
	RestoredCheckpoint bool   `json:"restored_checkpoint"`
	CheckpointID       uint64 `json:"checkpoint_id"`
	CheckpointSaves    int64  `json:"checkpoint_saves"`
	JournalBase        uint64 `json:"journal_base"`
	JournalFsyncs      int64  `json:"journal_fsyncs"`
	JournalBatches     int64  `json:"journal_batches"`
	JournalBatchedAcks int64  `json:"journal_batched_acks"`
	JournalTorn        int64  `json:"journal_torn"`
	JournalCorrupt     int64  `json:"journal_corrupt"`
}

// Format renders the snapshot for humans (hermesd -stats), every counter
// included — the durability block in particular, which otherwise only
// appears in the Prometheus text.
func (st ProcStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d (incarnation %d)\n", st.Node, st.Incarnation)
	fmt.Fprintf(&b, "  txns:       committed=%d aborted=%d\n", st.Committed, st.Aborted)
	fmt.Fprintf(&b, "  network:    msgs=%d bytes=%d retransmits=%d dups-dropped=%d handshake-failures=%d\n",
		st.NetMsgs, st.NetBytes, st.Retransmits, st.DupsDropped, st.HandshakeFailures)
	fmt.Fprintf(&b, "  overload:   delayed=%d shed=%d\n", st.OverloadDelayed, st.OverloadShed)
	fmt.Fprintf(&b, "  durability: fsyncs=%d batches=%d batched-acks=%d torn=%d corrupt=%d\n",
		st.JournalFsyncs, st.JournalBatches, st.JournalBatchedAcks, st.JournalTorn, st.JournalCorrupt)
	fmt.Fprintf(&b, "  journal:    base-frame=%d\n", st.JournalBase)
	fmt.Fprintf(&b, "  checkpoint: saves=%d restored=%v", st.CheckpointSaves, st.RestoredCheckpoint)
	if st.RestoredCheckpoint {
		fmt.Fprintf(&b, " (id %d)", st.CheckpointID)
	}
	b.WriteByte('\n')
	return b.String()
}

func (s *NodeServer) stats() ProcStats {
	js, cs := s.jr.Stats(), s.ckpt.Stats()
	st := ProcStats{
		Node:              int64(s.cfg.Self),
		Incarnation:       s.jr.Incarnation(),
		Committed:         s.cluster.Collector().Committed(),
		Aborted:           s.cluster.Collector().Aborted(),
		HandshakeFailures: s.tr.HandshakeFailures(),

		RestoredCheckpoint: s.restored,
		CheckpointID:       s.restoredID,
		CheckpointSaves:    cs.Saves,
		JournalBase:        s.jr.Base(),
		JournalFsyncs:      js.Fsyncs,
		JournalBatches:     js.Batches,
		JournalBatchedAcks: js.BatchedAcks,
		JournalTorn:        js.TornRecords,
		JournalCorrupt:     js.Corrupt,
	}
	if s.gate != nil {
		st.OverloadDelayed = s.gate.delayedTotal.Load()
		st.OverloadShed = s.gate.shedTotal.Load()
	}
	st.NetMsgs, st.NetBytes = s.tr.Stats().Totals()
	rs := s.cluster.Reliable().Stats()
	st.Retransmits, st.DupsDropped = rs.Retransmits, rs.DupsDropped
	if s.leaderTr != nil {
		m, b := s.leaderTr.Stats().Totals()
		st.NetMsgs += m
		st.NetBytes += b
		st.HandshakeFailures += s.leaderTr.HandshakeFailures()
		lrs := s.leaderRel.Stats()
		st.Retransmits += lrs.Retransmits
		st.DupsDropped += lrs.DupsDropped
	}
	return st
}

// leaderNext is the /next response: where the sealed stream stands.
type leaderNext struct {
	Seq     uint64 `json:"seq"`
	Sealed  int64  `json:"sealed_txns"`
	Pending int    `json:"pending"`
}

// seqLeaderControl adapts the standalone leader to the driver's
// leaderControl.
type seqLeaderControl struct{ l *sequencer.Leader }

func (c seqLeaderControl) SealedAndPending() (int64, int) {
	st := c.l.Stats()
	return st.Txns, st.Pending
}
func (c seqLeaderControl) Flush() { c.l.Flush() }

func (s *NodeServer) mux() http.Handler {
	mux := http.NewServeMux()
	// Telemetry first: /metrics, /trace, /debug/pprof and the index ride
	// the full observability handler; control routes override below.
	mux.Handle("/", s.tel.Handler())

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/seed", func(w http.ResponseWriter, r *http.Request) {
		var spec seedSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := s.seed(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]any{"seeded": n, "incarnation": s.jr.Incarnation()})
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		if s.leader == nil {
			http.Error(w, "not the driver process", http.StatusBadRequest)
			return
		}
		var spec WorkloadSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := spec.Validate(s.cfg.BatchSize); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		procs, err := spec.Procs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !s.drv.start(len(procs)) {
			http.Error(w, "a run is already in progress or finished", http.StatusConflict)
			return
		}
		go s.drv.run(
			func(p tx.Procedure) (<-chan struct{}, error) { return s.cluster.Submit(s.cfg.Self, p) },
			procs, spec.Window, seqLeaderControl{s.leader}, s.gate, runTimeout)
		writeJSON(w, map[string]any{"started": true, "total": len(procs)})
	})
	mux.HandleFunc("/runstatus", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.drv.status())
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if s.leader == nil {
			http.Error(w, "no leader here", http.StatusBadRequest)
			return
		}
		s.leader.Flush()
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/next", func(w http.ResponseWriter, r *http.Request) {
		if s.leader == nil {
			http.Error(w, "no leader here", http.StatusBadRequest)
			return
		}
		seq, _ := s.leader.Next()
		st := s.leader.Stats()
		writeJSON(w, leaderNext{Seq: seq, Sealed: st.Txns, Pending: st.Pending})
	})
	mux.HandleFunc("/quiesce", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.cluster.WorkerQuiesce())
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		id, err := s.checkpointNow()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]any{"checkpoint": id, "journal_base": s.jr.Base()})
	})
	mux.HandleFunc("/digest", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.cluster.NodeDigests()[0])
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.stats())
	})
	mux.HandleFunc("/shutdown", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "shutting down")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		go s.Close()
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Close shuts the process runtime down: it aborts any wedged driver,
// gives in-flight work a bounded drain, then tears down the leader, the
// engine, the transports, the journal, and the control server. Idempotent.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()

	if s.ckptQuit != nil {
		close(s.ckptQuit)
		s.ckptWG.Wait()
	}
	s.drv.stop()
	if started {
		// Graceful drain: wait (bounded) for local in-flight work to land
		// so a SIGTERM between batches loses nothing.
		deadline := time.Now().Add(drainTimeout)
		for time.Now().Before(deadline) {
			q := s.cluster.WorkerQuiesce()
			if q.Pending == 0 && q.Unacked == 0 && q.Backlog == 0 && q.QueuedLockKeys == 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if s.leader != nil {
		s.leader.Stop()
		s.leaderClk.Stop()
		s.leaderRel.Close()
	}
	s.cluster.Stop()
	s.jr.Close()
	return s.srv.Close()
}
