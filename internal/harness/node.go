package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hermes"
	"hermes/internal/engine"
	"hermes/internal/network"
	"hermes/internal/partition"
	"hermes/internal/sequencer"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// Cluster-process transport tuning. A dead peer's listener stays bound in
// the parent, so a dial to it succeeds at the TCP level and then hangs in
// the version handshake; the short send timeout turns that hang into a
// bounded error the reliable layer's retransmission repairs once the peer
// is back.
const (
	procSendTimeout  = time.Second
	procDialAttempts = 2
	procDialBackoff  = 25 * time.Millisecond
	procDialCap      = 100 * time.Millisecond

	// drainTimeout bounds the graceful-shutdown quiesce attempt (SIGTERM,
	// /shutdown): in-flight work gets this long to land before teardown.
	drainTimeout = 2 * time.Second
	// runTimeout bounds a single /run workload from the process's side;
	// the orchestrator normally enforces a tighter one.
	runTimeout = 5 * time.Minute
)

// NodeConfig assembles one hermesd cluster process.
type NodeConfig struct {
	// Self is this process's worker id; Workers the total worker count
	// (ids 0..Workers-1).
	Self    tx.NodeID
	Workers int
	// Addrs maps every data-plane transport id — each worker plus
	// engine.LeaderNode — to its address. The orchestrator bound all the
	// listeners, so it knows every address before any process starts.
	Addrs map[tx.NodeID]string
	// DataLn and ControlLn are this process's inherited listeners; LeaderLn
	// is non-nil only on the process that hosts the sequencer leader.
	DataLn    net.Listener
	ControlLn net.Listener
	LeaderLn  net.Listener
	// Policy, Rows, FusionCap, Alpha parameterize the routing replica;
	// they must be identical in every process and in the twin.
	Policy    string
	Rows      uint64
	FusionCap int
	Alpha     float64
	// BatchSize is the sequencer batch size (sealing is size-only).
	BatchSize int
	// ExecMode selects the execution backend ("lock" or "queue"; empty
	// means lock). Must be identical in every process and in the twin.
	ExecMode string
	// Dir holds the process's delivery journal, incarnation counter, and
	// seed spec.
	Dir string
	// Recover marks a restarted process: it re-seeds from the persisted
	// seed spec and starts replaying its journal immediately instead of
	// waiting for /seed.
	Recover bool
}

// seedSpec is the record-stream description persisted at seeding time so a
// restarted process can rebuild its shard without the orchestrator's help.
type seedSpec struct {
	Rows    uint64 `json:"rows"`
	Payload int    `json:"payload"`
}

const seedFile = "seed.json"

// NodeServer is the in-process runtime of one hermesd cluster process: a
// single engine worker over TCP, the optional co-hosted sequencer leader,
// and the control-plane HTTP server the orchestrator drives.
type NodeServer struct {
	cfg     NodeConfig
	workers []tx.NodeID
	jr      *network.Journal
	tr      *network.TCPTransport
	cluster *engine.Cluster
	tel     *telemetry.Telemetry
	drv     *driver

	// Leader-host half (nil-fields on plain workers). The leader is a
	// standalone sequencer replica on its own transport node; it is not
	// restartable (see docs/CLUSTER.md), so it has no journal.
	leader    *sequencer.Leader
	leaderTr  *network.TCPTransport
	leaderRel *network.Reliable
	leaderClk *stopClock

	srv *http.Server

	mu      sync.Mutex
	started bool
	closed  bool
}

// NewNodeServer assembles the process runtime. A recovering process seeds
// its shard from the persisted spec and starts replaying its journal
// before this returns; a fresh process stays idle until /seed.
func NewNodeServer(cfg NodeConfig) (*NodeServer, error) {
	if cfg.Workers <= 0 || cfg.Self < 0 || int(cfg.Self) >= cfg.Workers {
		return nil, fmt.Errorf("harness: node %d outside worker set of %d", cfg.Self, cfg.Workers)
	}
	if cfg.DataLn == nil || cfg.ControlLn == nil {
		return nil, fmt.Errorf("harness: node %d: missing inherited listener", cfg.Self)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("harness: node %d: batch size must be positive", cfg.Self)
	}
	workers := make([]tx.NodeID, cfg.Workers)
	for i := range workers {
		workers[i] = tx.NodeID(i)
	}
	pf, err := hermes.PolicyFactoryFor(hermes.Policy(cfg.Policy),
		partition.NewUniformRange(0, cfg.Rows, cfg.Workers), cfg.Alpha, cfg.FusionCap)
	if err != nil {
		return nil, err
	}

	jr, err := network.OpenJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	tel := telemetry.New([]tx.NodeID{cfg.Self}, 4096)
	tr := network.NewTCPTransportListener(cfg.Self, cfg.Addrs, cfg.DataLn)
	tuneTransport(tr)
	cluster, err := engine.NewWorker(engine.WorkerConfig{
		Self:        cfg.Self,
		Workers:     workers,
		Leader:      engine.LeaderNode,
		Transport:   tr,
		NetStats:    tr.Stats(),
		Policy:      pf,
		Incarnation: jr.Incarnation(),
		Journal:     jr.Append,
		Recovered:   jr.Recovered(),
		Telemetry:   tel,
		ExecMode:    cfg.ExecMode,
	})
	if err != nil {
		tr.Close()
		jr.Close()
		return nil, err
	}

	s := &NodeServer{
		cfg:     cfg,
		workers: workers,
		jr:      jr,
		tr:      tr,
		cluster: cluster,
		tel:     tel,
		drv:     newDriver(),
	}
	if cfg.LeaderLn != nil {
		s.leaderTr = network.NewTCPTransportListener(engine.LeaderNode, cfg.Addrs, cfg.LeaderLn)
		tuneTransport(s.leaderTr)
		s.leaderRel = network.NewReliableWith(s.leaderTr, network.ReliableOpts{
			RecvFor: []tx.NodeID{engine.LeaderNode},
			SendTo:  workers,
		})
		s.leaderClk = newStopClock()
		// Size-only sealing: the interval is effectively infinite so batch
		// boundaries are a function of the request stream alone, and the
		// driver flushes the tail deterministically.
		s.leader = sequencer.NewLeader(engine.LeaderNode, s.leaderRel, workers,
			sequencer.Config{BatchSize: cfg.BatchSize, Interval: time.Hour}, s.leaderClk)
		s.leader.Start()
	}
	s.srv = &http.Server{Handler: s.mux()}

	if cfg.Recover {
		if err := s.seedFromFile(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func tuneTransport(tr *network.TCPTransport) {
	tr.SetSendTimeout(procSendTimeout)
	tr.SetDialRetry(procDialAttempts, procDialBackoff, procDialCap)
}

// Serve runs the control-plane HTTP server until Close.
func (s *NodeServer) Serve() error {
	err := s.srv.Serve(s.cfg.ControlLn)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Cluster exposes the worker engine (tests).
func (s *NodeServer) Cluster() *engine.Cluster { return s.cluster }

// seed writes the local shard of the deterministic record stream and
// starts the worker. Every process runs the identical loop; the routing
// replicas agree on placement, so each record lands in exactly one.
func (s *NodeServer) seed(spec seedSpec) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("harness: node %d is shut down", s.cfg.Self)
	}
	if s.started {
		s.mu.Unlock()
		return 0, fmt.Errorf("harness: node %d already seeded", s.cfg.Self)
	}
	s.mu.Unlock()
	if spec.Rows == 0 || spec.Rows != s.cfg.Rows {
		return 0, fmt.Errorf("harness: seed rows %d do not match the partitioning's %d rows",
			spec.Rows, s.cfg.Rows)
	}
	val := SeedValue(spec.Payload)
	n := 0
	for r := uint64(0); r < spec.Rows; r++ {
		if s.cluster.SeedLocal(tx.MakeKey(0, r), append([]byte(nil), val...)) {
			n++
		}
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(filepath.Join(s.cfg.Dir, seedFile), append(data, '\n'), 0o644); err != nil {
		return 0, err
	}
	s.startWorker()
	return n, nil
}

func (s *NodeServer) seedFromFile() error {
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, seedFile))
	if err != nil {
		return fmt.Errorf("harness: node %d recovering without a seed spec: %w", s.cfg.Self, err)
	}
	var spec seedSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("harness: node %d: corrupt seed spec: %w", s.cfg.Self, err)
	}
	val := SeedValue(spec.Payload)
	for r := uint64(0); r < spec.Rows; r++ {
		s.cluster.SeedLocal(tx.MakeKey(0, r), append([]byte(nil), val...))
	}
	// Seeding must complete before the worker starts: the reliable layer
	// replays the journal the moment the node consumes its feed, and
	// replayed batches must execute over the seeded store.
	s.startWorker()
	return nil
}

func (s *NodeServer) startWorker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.cluster.StartWorker()
}

// ProcStats is one process's counter snapshot, served at /stats.
type ProcStats struct {
	Node              int64  `json:"node"`
	Incarnation       uint64 `json:"incarnation"`
	Committed         int64  `json:"committed"`
	Aborted           int64  `json:"aborted"`
	NetMsgs           int64  `json:"net_msgs"`
	NetBytes          int64  `json:"net_bytes"`
	Retransmits       int64  `json:"retransmits"`
	DupsDropped       int64  `json:"dups_dropped"`
	HandshakeFailures int64  `json:"handshake_failures"`
}

func (s *NodeServer) stats() ProcStats {
	st := ProcStats{
		Node:              int64(s.cfg.Self),
		Incarnation:       s.jr.Incarnation(),
		Committed:         s.cluster.Collector().Committed(),
		Aborted:           s.cluster.Collector().Aborted(),
		HandshakeFailures: s.tr.HandshakeFailures(),
	}
	st.NetMsgs, st.NetBytes = s.tr.Stats().Totals()
	rs := s.cluster.Reliable().Stats()
	st.Retransmits, st.DupsDropped = rs.Retransmits, rs.DupsDropped
	if s.leaderTr != nil {
		m, b := s.leaderTr.Stats().Totals()
		st.NetMsgs += m
		st.NetBytes += b
		st.HandshakeFailures += s.leaderTr.HandshakeFailures()
		lrs := s.leaderRel.Stats()
		st.Retransmits += lrs.Retransmits
		st.DupsDropped += lrs.DupsDropped
	}
	return st
}

// leaderNext is the /next response: where the sealed stream stands.
type leaderNext struct {
	Seq     uint64 `json:"seq"`
	Sealed  int64  `json:"sealed_txns"`
	Pending int    `json:"pending"`
}

// seqLeaderControl adapts the standalone leader to the driver's
// leaderControl.
type seqLeaderControl struct{ l *sequencer.Leader }

func (c seqLeaderControl) SealedAndPending() (int64, int) {
	st := c.l.Stats()
	return st.Txns, st.Pending
}
func (c seqLeaderControl) Flush() { c.l.Flush() }

func (s *NodeServer) mux() http.Handler {
	mux := http.NewServeMux()
	// Telemetry first: /metrics, /trace, /debug/pprof and the index ride
	// the full observability handler; control routes override below.
	mux.Handle("/", s.tel.Handler())

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/seed", func(w http.ResponseWriter, r *http.Request) {
		var spec seedSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, err := s.seed(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]any{"seeded": n, "incarnation": s.jr.Incarnation()})
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		if s.leader == nil {
			http.Error(w, "not the driver process", http.StatusBadRequest)
			return
		}
		var spec WorkloadSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := spec.Validate(s.cfg.BatchSize); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		procs, err := spec.Procs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !s.drv.start(len(procs)) {
			http.Error(w, "a run is already in progress or finished", http.StatusConflict)
			return
		}
		go s.drv.run(
			func(p tx.Procedure) (<-chan struct{}, error) { return s.cluster.Submit(s.cfg.Self, p) },
			procs, spec.Window, seqLeaderControl{s.leader}, runTimeout)
		writeJSON(w, map[string]any{"started": true, "total": len(procs)})
	})
	mux.HandleFunc("/runstatus", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.drv.status())
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if s.leader == nil {
			http.Error(w, "no leader here", http.StatusBadRequest)
			return
		}
		s.leader.Flush()
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/next", func(w http.ResponseWriter, r *http.Request) {
		if s.leader == nil {
			http.Error(w, "no leader here", http.StatusBadRequest)
			return
		}
		seq, _ := s.leader.Next()
		st := s.leader.Stats()
		writeJSON(w, leaderNext{Seq: seq, Sealed: st.Txns, Pending: st.Pending})
	})
	mux.HandleFunc("/quiesce", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.cluster.WorkerQuiesce())
	})
	mux.HandleFunc("/digest", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.cluster.NodeDigests()[0])
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.stats())
	})
	mux.HandleFunc("/shutdown", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "shutting down")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		go s.Close()
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Close shuts the process runtime down: it aborts any wedged driver,
// gives in-flight work a bounded drain, then tears down the leader, the
// engine, the transports, the journal, and the control server. Idempotent.
func (s *NodeServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()

	s.drv.stop()
	if started {
		// Graceful drain: wait (bounded) for local in-flight work to land
		// so a SIGTERM between batches loses nothing.
		deadline := time.Now().Add(drainTimeout)
		for time.Now().Before(deadline) {
			q := s.cluster.WorkerQuiesce()
			if q.Pending == 0 && q.Unacked == 0 && q.Backlog == 0 && q.QueuedLockKeys == 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if s.leader != nil {
		s.leader.Stop()
		s.leaderClk.Stop()
		s.leaderRel.Close()
	}
	s.cluster.Stop()
	s.jr.Close()
	return s.srv.Close()
}
