package harness

import (
	"os"
	"syscall"
	"testing"
	"time"

	"hermes/internal/engine"
)

// startTestCluster boots a 3-process cluster for the in-package tests.
func startTestCluster(t *testing.T, policy string) *Cluster {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process cluster tests skipped in -short mode")
	}
	if _, err := HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	c, err := StartCluster(ClusterConfig{
		Workers: 3, Policy: policy, Rows: 4000, Payload: 64, BatchSize: 25,
		Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Seed(); err != nil {
		t.Fatal(err)
	}
	return c
}

// dumpClusterState logs every worker's quiesce/stats snapshot, the leader
// sequencer state, the run status and the process logs — the first thing
// to read when a cluster run wedges.
func dumpClusterState(t *testing.T, c *Cluster) {
	t.Helper()
	for i := range c.procs {
		var q engine.WorkerQuiesceInfo
		if e := c.get(i, "/quiesce", &q); e != nil {
			t.Logf("worker %d quiesce: %v", i, e)
		} else {
			t.Logf("worker %d quiesce: %+v", i, q)
		}
		var ps ProcStats
		if e := c.get(i, "/stats", &ps); e != nil {
			t.Logf("worker %d stats: %v", i, e)
		} else {
			t.Logf("worker %d stats: %+v", i, ps)
		}
	}
	var nx leaderNext
	if e := c.get(0, "/next", &nx); e == nil {
		t.Logf("leader: %+v", nx)
	}
	if st, e := c.Status(); e == nil {
		t.Logf("status: %+v", st)
	}
	for i := range c.procs {
		b, _ := os.ReadFile(c.LogPath(i))
		t.Logf("node %d log:\n%s", i, b)
	}
}

// TestClusterKillRestart is the harness-level half of the root e2e suite:
// it drives a run across three real processes, SIGKILLs a worker mid-run,
// restarts it, and requires every transaction to commit. On a wedge it
// dumps the full cluster state before failing.
func TestClusterKillRestart(t *testing.T) {
	c := startTestCluster(t, "hermes")
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 42, Txns: 1200, Rows: 4000,
		KeysPerTxn: 3, Payload: 64, Theta: 0.8, Window: 50,
	}
	if err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed >= int64(spec.Txns*2/5) || st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached the kill point: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.KillWorker(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := c.RestartWorker(2); err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitRun(60 * time.Second)
	if err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	if res.Committed != int64(spec.Txns) {
		t.Fatalf("committed %d of %d", res.Committed, spec.Txns)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
}

// TestClusterQueueModeDigestsMatchLockTwin drives the same trace through
// three real hermesd processes running the queue-oriented executor
// (-exec queue) and an in-process lock-mode twin, and requires
// byte-identical node digests — the exec-equivalence guarantee holding
// across process boundaries and both sides of the ExecMode plumbing.
func TestClusterQueueModeDigestsMatchLockTwin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests skipped in -short mode")
	}
	if _, err := HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	c, err := StartCluster(ClusterConfig{
		Workers: 3, Policy: "hermes", Rows: 4000, Payload: 64, BatchSize: 25,
		ExecMode: engine.ExecModeQueue, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Seed(); err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{
		Kind: WorkloadHotspot, Seed: 23, Txns: 600, Rows: 4000,
		KeysPerTxn: 2, Payload: 64, Theta: 0.8, Window: 50,
	}
	if err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitRun(60 * time.Second)
	if err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	if res.Committed != int64(spec.Txns) {
		t.Fatalf("cluster committed %d of %d", res.Committed, spec.Txns)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	got, err := c.Digests()
	if err != nil {
		t.Fatal(err)
	}
	twin, err := RunTwin(TwinConfig{
		Workers: 3, Policy: "hermes", Rows: 4000, Payload: 64, BatchSize: 25,
		ExecMode: engine.ExecModeLock,
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(twin.Digests) {
		t.Fatalf("cluster has %d digests, twin %d", len(got), len(twin.Digests))
	}
	for i := range got {
		if got[i] != twin.Digests[i] {
			t.Fatalf("queue-mode cluster digest diverges from lock-mode twin at node %d:\n%+v\n%+v",
				i, got[i], twin.Digests[i])
		}
	}
}

// TestClusterSIGTERMDrains covers hermesd's signal path: after a completed
// run, SIGTERM must drain each process and exit it with status 0 — the
// same graceful teardown /shutdown performs, reachable without the control
// plane.
func TestClusterSIGTERMDrains(t *testing.T) {
	c := startTestCluster(t, "calvin")
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 7, Txns: 200, Rows: 4000,
		KeysPerTxn: 3, Payload: 64, Theta: 0.8, Window: 50,
	}
	if err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitRun(60 * time.Second); err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	// Workers before the leader host (worker 0): peers drain their session
	// front-ends against a live leader.
	for i := len(c.procs) - 1; i >= 0; i-- {
		p := c.procs[i]
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("signalling worker %d: %v", i, err)
		}
		select {
		case err := <-p.done:
			if err != nil {
				b, _ := os.ReadFile(c.LogPath(i))
				t.Fatalf("worker %d exited non-zero after SIGTERM: %v\nlog:\n%s", i, err, b)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d did not exit within 10s of SIGTERM", i)
		}
		c.procs[i] = nil
	}
}
