package harness

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hermes/internal/leaktest"
	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// fakeClusterTrace builds a two-process trace by hand: known offsets, a
// complete cross-process transaction, an uncommitted one, a node-scope
// marker, and a transaction with a deliberate clock backstep.
func fakeClusterTrace() *ClusterTrace {
	ev := func(ts int64, txn tx.TxnID, node tx.NodeID, ph telemetry.Phase) telemetry.Event {
		return telemetry.Event{TS: ts, Txn: txn, Node: node, Phase: ph}
	}
	return &ClusterTrace{
		Procs: []ProcTrace{
			{
				Worker: 0, OffsetNs: 1000, RTTNs: 200,
				Events: []telemetry.Event{
					// txn 1: driver-side + node 0 copies (offset +1000).
					ev(11000, 1, telemetry.ClusterNode, telemetry.PhaseEnqueued),
					ev(12000, 1, telemetry.ClusterNode, telemetry.PhaseSequenced),
					ev(13000, 1, 0, telemetry.PhaseBatched),
					ev(13500, 1, 0, telemetry.PhaseRouted),
					// txn 2: never commits (partial chain).
					ev(20000, 2, 0, telemetry.PhaseBatched),
					// txn 3: full chain at node 0 with routed stamped BEFORE
					// batched (a 200ns causal backstep).
					ev(5000, 3, telemetry.ClusterNode, telemetry.PhaseEnqueued),
					ev(6000, 3, telemetry.ClusterNode, telemetry.PhaseSequenced),
					ev(9000, 3, 0, telemetry.PhaseBatched),
					ev(8800, 3, 0, telemetry.PhaseRouted),
					ev(9500, 3, 0, telemetry.PhaseCommitted),
					// Node-scope marker: must not become a timeline.
					ev(100, 0, 0, telemetry.PhaseCrash),
				},
			},
			{
				Worker: 1, OffsetNs: -500, RTTNs: 600,
				Events: []telemetry.Event{
					// txn 1 commits at node 1 (offset -500: add 500 to align).
					ev(12600, 1, 1, telemetry.PhaseBatched),
					ev(13000, 1, 1, telemetry.PhaseRouted),
					ev(14000, 1, 1, telemetry.PhaseCommitted),
				},
			},
		},
		BaseNs: 4000,
	}
}

func TestStitchTimelines(t *testing.T) {
	ct := fakeClusterTrace()
	tls := ct.Stitch()
	if len(tls) != 3 {
		t.Fatalf("stitched %d timelines, want 3 (txn-0 markers skipped): %+v", len(tls), tls)
	}
	byTxn := map[tx.TxnID]*TxnTimeline{}
	for i := range tls {
		byTxn[tls[i].Txn] = &tls[i]
	}

	tl1 := byTxn[1]
	if tl1 == nil || !tl1.Committed || !tl1.Complete {
		t.Fatalf("txn 1 should be committed+complete: %+v", tl1)
	}
	if tl1.CommitNode != 1 || tl1.CommitWorker != 1 {
		t.Fatalf("txn 1 commit site wrong: %+v", tl1)
	}
	if tl1.BackstepNs != 0 {
		t.Fatalf("txn 1 chain is causally ordered, got backstep %d", tl1.BackstepNs)
	}
	// Aligned order interleaves the two processes: proc0's events map to
	// 10000..12500, proc1's to 13100..14500.
	wantAligned := []int64{10000, 11000, 12000, 12500, 13100, 13500, 14500}
	if len(tl1.Events) != len(wantAligned) {
		t.Fatalf("txn 1 has %d events, want %d", len(tl1.Events), len(wantAligned))
	}
	for i, ev := range tl1.Events {
		if ev.AlignedTS != wantAligned[i] {
			t.Fatalf("txn 1 event %d aligned to %d, want %d", i, ev.AlignedTS, wantAligned[i])
		}
	}
	if tl1.Events[4].Worker != 1 || tl1.Events[3].Worker != 0 {
		t.Fatalf("txn 1 worker attribution wrong: %+v", tl1.Events)
	}

	tl2 := byTxn[2]
	if tl2 == nil || tl2.Committed || tl2.Complete {
		t.Fatalf("txn 2 should be uncommitted and incomplete: %+v", tl2)
	}

	tl3 := byTxn[3]
	if tl3 == nil || !tl3.Committed || !tl3.Complete {
		t.Fatalf("txn 3 should be committed+complete: %+v", tl3)
	}
	// Routed (aligned 7800) precedes Batched (aligned 8000) on the commit
	// node: a 200ns critical-chain backstep.
	if tl3.BackstepNs != 200 {
		t.Fatalf("txn 3 backstep %d, want 200", tl3.BackstepNs)
	}

	st := ct.Stats(tls)
	if st.Txns != 3 || st.Committed != 2 || st.Complete != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.CompleteFraction != 1.0 {
		t.Fatalf("complete fraction %v, want 1.0", st.CompleteFraction)
	}
	if st.MaxBackstepNs != 200 {
		t.Fatalf("max backstep %d, want 200", st.MaxBackstepNs)
	}
	// Slack: sum of the two largest uncertainties (200/2+1) + (600/2+1).
	if want := int64(101 + 301); st.SlackNs != want {
		t.Fatalf("slack %d, want %d", st.SlackNs, want)
	}
}

func TestWritePerfettoSchema(t *testing.T) {
	ct := fakeClusterTrace()
	tls := ct.Stitch()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, ct, tls); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int64   `json:"pid"`
			TID  int64   `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			ID   uint64  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", f.DisplayTimeUnit)
	}
	valid := map[string]bool{"M": true, "i": true, "X": true, "s": true, "t": true, "f": true}
	var meta, slices, instants, flowS, flowT, flowF int
	for _, ev := range f.TraceEvents {
		if !valid[ev.Ph] {
			t.Fatalf("unknown event phase %q: %+v", ev.Ph, ev)
		}
		if ev.Name == "" {
			t.Fatalf("unnamed event: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if ev.Dur < 0 {
				t.Fatalf("negative slice duration: %+v", ev)
			}
			if ev.TS < 0 {
				t.Fatalf("slice before trace base: %+v", ev)
			}
		case "i":
			instants++
		case "s":
			flowS++
		case "t":
			flowT++
		case "f":
			flowF++
		}
	}
	// One metadata record per process track: the cluster scope + 2 workers.
	if meta != 3 {
		t.Fatalf("%d process_name records, want 3", meta)
	}
	// One instant per timeline (its first event), slices for the rest.
	if instants != 3 {
		t.Fatalf("%d instants, want 3", instants)
	}
	if slices == 0 {
		t.Fatal("no lifecycle slices emitted")
	}
	// txn 1 crosses cluster -> node0 -> node1 and txn 3 crosses
	// cluster -> node0: both get flow chains (one start and one finish
	// each, at least one step).
	if flowS != 2 || flowF != 2 || flowT < 2 {
		t.Fatalf("flow events s=%d t=%d f=%d, want 2/>=2/2", flowS, flowT, flowF)
	}
}

// TestClusterTraceExport is the tentpole's end-to-end: a 3-process
// hermes/ycsb run, trace collected over /trace/export with clock
// alignment, stitched per-transaction, and held to the acceptance bar —
// >=99% of committed transactions with a complete cross-process chain and
// aligned timestamps monotonic within the probe slack — then rendered as
// Perfetto JSON.
func TestClusterTraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests skipped in -short mode")
	}
	if _, err := HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	const txns = 600
	c, err := StartCluster(ClusterConfig{
		Workers: 3, Policy: "hermes", Rows: 4000, Payload: 64, BatchSize: 25,
		TraceRing: 8192, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Seed(); err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 42, Txns: txns, Rows: 4000,
		KeysPerTxn: 3, Payload: 64, Theta: 0.8, Window: 50,
	}
	if err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	res, err := c.WaitRun(60 * time.Second)
	if err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}
	if res.Committed != txns {
		t.Fatalf("committed %d of %d", res.Committed, txns)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		dumpClusterState(t, c)
		t.Fatal(err)
	}

	ct, err := c.CollectTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Procs) != 3 {
		t.Fatalf("collected %d process traces, want 3", len(ct.Procs))
	}
	for _, p := range ct.Procs {
		if len(p.Events) == 0 {
			t.Fatalf("worker %d exported no events", p.Worker)
		}
		if p.RTTNs <= 0 {
			t.Fatalf("worker %d has no clock probe: %+v", p.Worker, p)
		}
	}
	timelines := ct.Stitch()
	st := ct.Stats(timelines)
	if st.Committed != txns {
		t.Fatalf("stitched %d committed transactions, want %d", st.Committed, txns)
	}
	if st.CompleteFraction < 0.99 {
		t.Fatalf("only %.1f%% of committed txns have complete cross-process chains (want >= 99%%): %+v",
			100*st.CompleteFraction, st)
	}
	if st.MaxBackstepNs > st.SlackNs {
		t.Fatalf("critical-chain timestamps not monotonic under alignment: backstep %dns > slack %dns",
			st.MaxBackstepNs, st.SlackNs)
	}

	// The Perfetto render must be loadable JSON with the right shape.
	path := filepath.Join(t.TempDir(), "trace.json")
	wst, err := c.WritePerfettoFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if wst.Committed != st.Committed || wst.Complete < st.Complete {
		t.Fatalf("file stats diverge from collected stats: %+v vs %+v", wst, st)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &pf); err != nil {
		t.Fatalf("perfetto file is not valid JSON: %v", err)
	}
	if len(pf.TraceEvents) < txns {
		t.Fatalf("perfetto file has %d events for %d txns", len(pf.TraceEvents), txns)
	}
	for _, ev := range pf.TraceEvents {
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Fatalf("negative slice duration in file: %+v", ev)
		}
	}

	// Cluster-wide histogram-backed phase summaries: one commit observation
	// per transaction, merged across every process.
	phases, err := c.PhaseSummaries()
	if err != nil {
		t.Fatal(err)
	}
	tot, ok := phases["total"]
	if !ok || tot.Count != txns {
		t.Fatalf("phase summaries total count=%d, want %d (%+v)", tot.Count, txns, phases)
	}
	if tot.P50Ms <= 0 || tot.P99Ms < tot.P50Ms {
		t.Fatalf("implausible total summary: %+v", tot)
	}

	// Every process's /metrics carries the per-phase histogram family.
	for i := range ct.Procs {
		body, err := c.getRaw(i, "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), "hermes_phase_latency_seconds_bucket") {
			t.Fatalf("worker %d /metrics missing the phase histogram family", i)
		}
	}
}

// TestClusterTraceOnOffDigestEquivalence extends the observation-only
// guarantee to the multi-process cluster: two identical runs differing
// only in whether lifecycle tracing/export is enabled must finish with
// byte-identical node digests.
func TestClusterTraceOnOffDigestEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster tests skipped in -short mode")
	}
	if _, err := HermesdBinary(); err != nil {
		t.Fatalf("building hermesd: %v", err)
	}
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 13, Txns: 400, Rows: 4000,
		KeysPerTxn: 3, Payload: 64, Theta: 0.8, Window: 50,
	}
	run := func(traceOff bool) []byte {
		t.Helper()
		c, err := StartCluster(ClusterConfig{
			Workers: 3, Policy: "hermes", Rows: 4000, Payload: 64, BatchSize: 25,
			TraceRing: 8192, TraceOff: traceOff, Dir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Seed(); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(spec); err != nil {
			t.Fatal(err)
		}
		res, err := c.WaitRun(60 * time.Second)
		if err != nil {
			dumpClusterState(t, c)
			t.Fatal(err)
		}
		if res.Committed != int64(spec.Txns) {
			t.Fatalf("traceOff=%v committed %d of %d", traceOff, res.Committed, spec.Txns)
		}
		if err := c.Quiesce(30 * time.Second); err != nil {
			dumpClusterState(t, c)
			t.Fatal(err)
		}
		if !traceOff {
			// Exercise the full export path on the traced side so the
			// equivalence covers collection itself, not just emission.
			if _, err := c.CollectTrace(); err != nil {
				t.Fatal(err)
			}
		} else {
			// The untraced side must genuinely have tracing off.
			ct, err := c.CollectTrace()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ct.Procs {
				if len(p.Events) != 0 {
					t.Fatalf("traceOff worker %d still exported %d events", p.Worker, len(p.Events))
				}
			}
		}
		digests, err := c.Digests()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(digests)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	on := run(false)
	off := run(true)
	if !bytes.Equal(on, off) {
		t.Fatalf("digests diverge between tracing on and off:\non:  %s\noff: %s", on, off)
	}
}

// TestNodeServerTraceEndpointsNoLeak drives the exporter surface of a live
// NodeServer — /trace/export, /trace/slow, /phases, /clock — and checks
// shutdown leaves no exporter goroutines behind.
func TestNodeServerTraceEndpointsNoLeak(t *testing.T) {
	defer leaktest.Check(t)()
	s, addr := newTestNodeServer(t, t.TempDir())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	if err := postJSON(t, addr, "/seed", seedSpec{Rows: 200, Payload: 32}, nil); err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{
		Kind: WorkloadYCSB, Seed: 3, Txns: 100, Rows: 200,
		KeysPerTxn: 2, Payload: 32, Theta: 0.7, Window: 20,
	}
	if err := postJSON(t, addr, "/run", spec, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st RunStatus
		if err := getJSON(t, addr, "/runstatus", &st); err != nil {
			t.Fatal(err)
		}
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Export while live: the stream must decode and contain the run.
	resp, err := http.Get("http://" + addr + "/trace/export")
	if err != nil {
		t.Fatal(err)
	}
	es, err := telemetry.ReadEventStream(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Events) == 0 {
		t.Fatal("live export returned no events")
	}
	for _, path := range []string{"/trace/slow", "/phases", "/clock"} {
		r, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, r.StatusCode)
		}
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after close")
	}
}

// TestCollectTraceKilledWorker checks the collector against a SIGKILLed
// process: the pull must fail with an error (not hang, not yield a torn
// stream) and leave no collector goroutines behind.
func TestCollectTraceKilledWorker(t *testing.T) {
	c := startTestCluster(t, "hermes")
	defer leaktest.Check(t)()
	if err := c.KillWorker(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CollectTrace(); err == nil {
		t.Fatal("CollectTrace against a killed worker succeeded")
	}
	if _, err := c.PhaseSummaries(); err == nil {
		t.Fatal("PhaseSummaries against a killed worker succeeded")
	}
}
