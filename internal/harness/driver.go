package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// leaderControl is the slice of the total-order leader the driver needs
// for the deterministic end-of-run flush: how many transactions it has
// sealed plus how many sit pending, and a way to force a seal. The cluster
// driver wraps the standalone sequencer.Leader in its own process; the
// in-process twin wraps the engine's sequencer group. Both must implement
// it over the same counters or the tail batch composition diverges.
type leaderControl interface {
	SealedAndPending() (sealed int64, pending int)
	Flush()
}

// RunResult summarizes one completed driver run. The quantiles are
// histogram-backed (log2 buckets, see telemetry.LatencyHist): each is the
// upper bound of the bucket holding the exact sample quantile, so it is
// within one power-of-two bucket of the exact value — and unlike the old
// sorted-sample p95 it composes across processes and windows.
type RunResult struct {
	Committed int64   `json:"committed"`
	ElapsedMs float64 `json:"elapsed_ms"`
	QPS       float64 `json:"qps"`
	AvgMs     float64 `json:"avg_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// RunStatus is the driver's live progress, served at /runstatus so the
// orchestrator can time a mid-run fault and wait for completion.
type RunStatus struct {
	Running   bool       `json:"running"`
	Done      bool       `json:"done"`
	Submitted int64      `json:"submitted"`
	Completed int64      `json:"completed"`
	Total     int64      `json:"total"`
	Err       string     `json:"err,omitempty"`
	Result    *RunResult `json:"result,omitempty"`
	// Overloaded is the node's live backpressure signal: true while the
	// driver is being delayed or shed by the overload gate, so a client
	// polling /runstatus sees overload explicitly instead of inferring it
	// from sagging throughput. Delayed/Shed count submissions (this run)
	// that were paced/rejected at least once before admission.
	Overloaded bool  `json:"overloaded,omitempty"`
	Delayed    int64 `json:"overload_delayed,omitempty"`
	Shed       int64 `json:"overload_shed,omitempty"`
}

// overloadGate is a node's explicit admission-control signal to its local
// driver: pressure is the node's queue depth (reliable-layer unacked +
// undelivered backlog + queued exec keys), and the two watermarks split it
// into pace-me (delay) and stop-entirely-until-drained (shed) regimes. The
// gate only ever slows the single ordered submitter down — submission
// *order* is untouched, so determinism is too. Watermarks <= 0 disable the
// respective regime. The totals are process-lifetime counters surfaced as
// gauges and in ProcStats.
type overloadGate struct {
	delayWM, shedWM int64
	pressure        func() int64
	delayedTotal    atomic.Int64
	shedTotal       atomic.Int64
}

// admit blocks until the node's pressure is below the watermarks,
// reporting (hitDelay, hitShed) for the driver's per-run accounting. It
// returns an error only on abort or deadline.
func (g *overloadGate) admit(d *driver, deadline time.Time) (bool, bool, error) {
	hitDelay, hitShed := false, false
	for {
		p := g.pressure()
		if g.shedWM > 0 && p >= g.shedWM {
			if !hitShed {
				hitShed = true
				g.shedTotal.Add(1)
			}
			d.overloaded.Store(true)
			if time.Now().After(deadline) {
				return hitDelay, hitShed, fmt.Errorf("harness: overload shed never drained (pressure %d >= %d)", p, g.shedWM)
			}
			select {
			case <-d.abort:
				return hitDelay, hitShed, fmt.Errorf("harness: driver aborted while shed")
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		if g.delayWM > 0 && p >= g.delayWM {
			if !hitDelay {
				hitDelay = true
				g.delayedTotal.Add(1)
			}
			d.overloaded.Store(true)
			if time.Now().After(deadline) {
				return hitDelay, hitShed, fmt.Errorf("harness: overload delay never drained (pressure %d >= %d)", p, g.delayWM)
			}
			select {
			case <-d.abort:
				return hitDelay, hitShed, fmt.Errorf("harness: driver aborted while delayed")
			case <-time.After(time.Millisecond):
			}
			continue
		}
		d.overloaded.Store(false)
		return hitDelay, hitShed, nil
	}
}

// driver is the closed-loop client: one ordered submitter goroutine with a
// bounded in-flight window. A single submitter is what pins batch
// composition — the leader receives the stream in submission order, seals
// every full batch at exactly the configured size, and the driver only
// force-flushes the tail once every submission has provably arrived.
type driver struct {
	mu      sync.Mutex
	running bool
	done    bool
	err     string
	result  *RunResult

	submitted  atomic.Int64
	completed  atomic.Int64
	total      atomic.Int64
	delayed    atomic.Int64
	shed       atomic.Int64
	overloaded atomic.Bool
	abort      chan struct{}
}

func newDriver() *driver {
	return &driver{abort: make(chan struct{})}
}

// status snapshots the driver's progress.
func (d *driver) status() RunStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	return RunStatus{
		Running:    d.running,
		Done:       d.done,
		Submitted:  d.submitted.Load(),
		Completed:  d.completed.Load(),
		Total:      d.total.Load(),
		Err:        d.err,
		Result:     d.result,
		Overloaded: d.overloaded.Load(),
		Delayed:    d.delayed.Load(),
		Shed:       d.shed.Load(),
	}
}

// start marks the driver busy; it reports false if a run is already in
// progress. A finished driver may start again — multi-phase workloads (run,
// checkpoint, run the continuation) reuse the same process — so starting
// resets the previous run's progress and result.
func (d *driver) start(total int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.running {
		return false
	}
	d.running = true
	d.done = false
	d.err = ""
	d.result = nil
	d.submitted.Store(0)
	d.completed.Store(0)
	d.delayed.Store(0)
	d.shed.Store(0)
	d.overloaded.Store(false)
	d.total.Store(int64(total))
	return true
}

func (d *driver) finish(res *RunResult, err error) {
	d.mu.Lock()
	d.running = false
	d.done = true
	d.result = res
	if err != nil {
		d.err = err.Error()
	}
	d.mu.Unlock()
}

// stop aborts the completion waiters (shutdown while a run is wedged).
func (d *driver) stop() {
	select {
	case <-d.abort:
	default:
		close(d.abort)
	}
}

// run drives the full stream through submit and returns once every
// transaction has completed. At most one run may be in flight at a time
// (start gates that).
func (d *driver) run(
	submit func(tx.Procedure) (<-chan struct{}, error),
	procs []*tx.CounterProc,
	window int,
	lc leaderControl,
	gate *overloadGate,
	timeout time.Duration,
) (*RunResult, error) {
	res, err := d.runInner(submit, procs, window, lc, gate, timeout)
	d.finish(res, err)
	return res, err
}

func (d *driver) runInner(
	submit func(tx.Procedure) (<-chan struct{}, error),
	procs []*tx.CounterProc,
	window int,
	lc leaderControl,
	gate *overloadGate,
	timeout time.Duration,
) (*RunResult, error) {
	deadline := time.Now().Add(timeout)
	start := time.Now()
	// The leader's counters are cumulative across runs; arrival checks for
	// this run are relative to where the sealed stream already stood.
	sealedBase, pendingBase := lc.SealedAndPending()
	if pendingBase != 0 {
		return nil, fmt.Errorf("harness: leader holds %d pending from a previous run", pendingBase)
	}
	sem := make(chan struct{}, window)
	latencies := make([]int64, len(procs)) // nanoseconds, index = submission order
	var wg sync.WaitGroup

	for i, p := range procs {
		if gate != nil {
			hitDelay, hitShed, err := gate.admit(d, deadline)
			if hitDelay {
				d.delayed.Add(1)
			}
			if hitShed {
				d.shed.Add(1)
			}
			if err != nil {
				waitDone(&wg, deadline)
				return nil, fmt.Errorf("harness: submission %d: %w", i, err)
			}
		}
		select {
		case sem <- struct{}{}:
		case <-d.abort:
			return nil, fmt.Errorf("harness: driver aborted at submission %d", i)
		}
		t0 := time.Now()
		ch, err := submit(p)
		if err != nil {
			<-sem
			waitDone(&wg, deadline)
			return nil, fmt.Errorf("harness: submit %d: %w", i, err)
		}
		d.submitted.Add(1)
		wg.Add(1)
		go func(i int, t0 time.Time, ch <-chan struct{}) {
			defer wg.Done()
			select {
			case <-ch:
				latencies[i] = time.Since(t0).Nanoseconds()
				d.completed.Add(1)
			case <-d.abort:
			}
			<-sem
		}(i, t0, ch)
	}

	// Every submission is out; force the tail batch only once the leader
	// provably holds all of them (sealed + pending == total). Flushing any
	// earlier would split the tail at whatever prefix happened to have
	// arrived, and the split point — hence batch composition, hence routing
	// — would be a race instead of a function of the input.
	total := int64(len(procs))
	for {
		sealed, pending := lc.SealedAndPending()
		if sealed-sealedBase+int64(pending) >= total {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("harness: leader saw %d of %d submissions within %v",
				sealed-sealedBase+int64(pending), total, timeout)
		}
		select {
		case <-d.abort:
			return nil, fmt.Errorf("harness: driver aborted waiting for leader arrivals")
		case <-time.After(time.Millisecond):
		}
	}
	for {
		if _, pending := lc.SealedAndPending(); pending == 0 {
			break
		}
		lc.Flush()
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("harness: leader tail did not flush within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}

	if !waitDone(&wg, deadline) {
		return nil, fmt.Errorf("harness: %d of %d transactions incomplete after %v",
			total-d.completed.Load(), total, timeout)
	}
	elapsed := time.Since(start)

	res := &RunResult{Committed: d.completed.Load(), ElapsedMs: float64(elapsed.Milliseconds())}
	if elapsed > 0 {
		res.QPS = float64(res.Committed) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		var hist telemetry.LatencyHist
		for _, l := range latencies {
			hist.Observe(l)
		}
		snap := hist.Snapshot()
		res.AvgMs = snap.MeanNs() / 1e6
		res.P50Ms = float64(snap.Quantile(0.50)) / 1e6
		res.P95Ms = float64(snap.Quantile(0.95)) / 1e6
		res.P99Ms = float64(snap.Quantile(0.99)) / 1e6
		res.MaxMs = float64(snap.MaxNs()) / 1e6
	}
	return res, nil
}

// waitDone waits for wg up to deadline, reporting whether it drained.
func waitDone(wg *sync.WaitGroup, deadline time.Time) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(time.Until(deadline)):
		return false
	}
}
