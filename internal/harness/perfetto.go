package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hermes/internal/telemetry"
)

// Perfetto / Chrome trace-event JSON export of a collected cluster trace:
// one process ("track group") per cluster process plus one for the
// cluster scope, one row per transaction, one complete slice per
// lifecycle phase spanning the time since the previous event, and flow
// arrows following each transaction across processes. The file loads
// directly in ui.perfetto.dev (and chrome://tracing).

// perfettoEvent is one Chrome trace-event object. Only the fields the
// format requires are emitted; ts/dur are microseconds (float to keep
// sub-microsecond spans visible).
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the top-level JSON object form of the trace.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// perfettoPID maps an exporting worker to its Perfetto process id. The
// cluster scope (driver-side enqueued/sequenced events, emitted at the
// ClusterNode pseudo-node) gets its own process so client-side spans
// don't overlap node work on the same track.
const perfettoClusterPID = 1

func perfettoPID(ev TraceEvent) int64 {
	if ev.Node == telemetry.ClusterNode {
		return perfettoClusterPID
	}
	return int64(ev.Worker) + 2
}

// WritePerfetto renders the stitched timelines as Chrome trace-event
// JSON. Timestamps are relative to the trace base (Perfetto shows
// absolute Unix nanoseconds poorly).
func WritePerfetto(w io.Writer, ct *ClusterTrace, timelines []TxnTimeline) error {
	f := perfettoFile{DisplayTimeUnit: "ms"}
	us := func(ns int64) float64 { return float64(ns-ct.BaseNs) / 1e3 }

	f.TraceEvents = append(f.TraceEvents, perfettoEvent{
		Name: "process_name", Ph: "M", PID: perfettoClusterPID,
		Args: map[string]any{"name": "cluster (driver)"},
	})
	for i := range ct.Procs {
		p := &ct.Procs[i]
		f.TraceEvents = append(f.TraceEvents, perfettoEvent{
			Name: "process_name", Ph: "M", PID: int64(p.Worker) + 2,
			Args: map[string]any{"name": fmt.Sprintf("node %d (offset %dns, rtt %dns)",
				p.Worker, p.OffsetNs, p.RTTNs)},
		})
	}

	for ti := range timelines {
		tl := &timelines[ti]
		if len(tl.Events) == 0 {
			continue
		}
		tid := int64(tl.Txn)
		// One slice per phase, spanning the gap since the transaction's
		// previous event; the first event is an instant.
		prevTS := tl.Events[0].AlignedTS
		for i, ev := range tl.Events {
			pid := perfettoPID(ev)
			args := map[string]any{"txn": uint64(tl.Txn), "node": int64(ev.Node), "aux": ev.Aux}
			if i == 0 {
				f.TraceEvents = append(f.TraceEvents, perfettoEvent{
					Name: ev.Phase.String(), Ph: "i", Cat: "lifecycle",
					PID: pid, TID: tid, TS: us(ev.AlignedTS), S: "t", Args: args,
				})
			} else {
				start, dur := prevTS, ev.AlignedTS-prevTS
				if dur < 0 {
					// Cross-process alignment slack: clamp to an instant at
					// the earlier timestamp rather than a negative span.
					start, dur = ev.AlignedTS, 0
				}
				f.TraceEvents = append(f.TraceEvents, perfettoEvent{
					Name: ev.Phase.String(), Ph: "X", Cat: "lifecycle",
					PID: pid, TID: tid, TS: us(start), Dur: float64(dur) / 1e3, Args: args,
				})
			}
			prevTS = ev.AlignedTS
		}
		// Flow arrows at every process boundary so Perfetto draws the
		// transaction's path across tracks.
		last := tl.Events[0]
		started := false
		for _, ev := range tl.Events[1:] {
			if perfettoPID(ev) == perfettoPID(last) {
				last = ev
				continue
			}
			if !started {
				f.TraceEvents = append(f.TraceEvents, perfettoEvent{
					Name: "txn", Ph: "s", Cat: "txn-flow", ID: uint64(tl.Txn),
					PID: perfettoPID(last), TID: tid, TS: us(last.AlignedTS),
				})
				started = true
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: "txn", Ph: "t", Cat: "txn-flow", ID: uint64(tl.Txn),
				PID: perfettoPID(ev), TID: tid, TS: us(ev.AlignedTS),
			})
			last = ev
		}
		if started {
			fin := tl.Events[len(tl.Events)-1]
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: "txn", Ph: "f", Cat: "txn-flow", ID: uint64(tl.Txn), BP: "e",
				PID: perfettoPID(fin), TID: tid, TS: us(fin.AlignedTS),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WritePerfettoFile collects, stitches, and writes the trace to path,
// returning the stitched stats.
func (c *Cluster) WritePerfettoFile(path string) (TraceStats, error) {
	ct, err := c.CollectTrace()
	if err != nil {
		return TraceStats{}, err
	}
	timelines := ct.Stitch()
	st := ct.Stats(timelines)
	f, err := os.Create(path)
	if err != nil {
		return st, err
	}
	if err := WritePerfetto(f, ct, timelines); err != nil {
		f.Close()
		return st, err
	}
	return st, f.Close()
}
