package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"hermes/internal/telemetry"
	"hermes/internal/tx"
)

// clockProbes is how many /clock round trips the offset estimator makes
// per process; the probe with the smallest RTT wins (its midpoint is the
// least uncertain).
const clockProbes = 5

// ProcTrace is one process's exported event log plus its clock alignment
// against the collector.
type ProcTrace struct {
	// Worker is the process index (== its engine node id).
	Worker int `json:"worker"`
	// OffsetNs is the process clock minus the collector clock: subtract
	// it from an exported timestamp to map the event onto the collector's
	// timeline.
	OffsetNs int64 `json:"offset_ns"`
	// RTTNs is the winning probe's round-trip time; the offset estimate
	// is uncertain by at most ±RTTNs/2 (the server could have stamped
	// anywhere inside the round trip).
	RTTNs int64 `json:"rtt_ns"`
	// ServerNowNs is the exporter's clock when the stream was written.
	ServerNowNs int64 `json:"server_now_ns"`
	// Events is the process's drained event log (exporter clock).
	Events []telemetry.Event `json:"-"`
}

// UncertaintyNs bounds this process's alignment error.
func (p *ProcTrace) UncertaintyNs() int64 { return p.RTTNs/2 + 1 }

// ClusterTrace is the collected cluster-wide event set: every process's
// export, clock-aligned onto the collector's timeline.
type ClusterTrace struct {
	Procs []ProcTrace
	// BaseNs is the earliest aligned timestamp across all processes (the
	// trace origin for relative-time rendering).
	BaseNs int64
}

// SlackNs is the worst-case cross-process alignment error: two events
// from different processes can disagree with real time by at most the
// sum of the two largest per-process uncertainties.
func (ct *ClusterTrace) SlackNs() int64 {
	var a, b int64
	for i := range ct.Procs {
		u := ct.Procs[i].UncertaintyNs()
		if u > a {
			a, b = u, a
		} else if u > b {
			b = u
		}
	}
	return a + b
}

// clockOffset estimates worker i's clock offset against this process
// using the NTP request/response-midpoint trick over /clock.
func (c *Cluster) clockOffset(i int) (offsetNs, rttNs int64, err error) {
	type clockResp struct {
		NowUnixNs int64 `json:"now_unix_ns"`
	}
	rttNs = -1
	for p := 0; p < clockProbes; p++ {
		t0 := time.Now().UnixNano()
		body, gerr := c.getRaw(i, "/clock")
		t3 := time.Now().UnixNano()
		if gerr != nil {
			return 0, 0, gerr
		}
		var cr clockResp
		if jerr := json.Unmarshal(body, &cr); jerr != nil {
			return 0, 0, fmt.Errorf("harness: worker %d /clock: %w", i, jerr)
		}
		rtt := t3 - t0
		if rttNs < 0 || rtt < rttNs {
			rttNs = rtt
			offsetNs = cr.NowUnixNs - (t0+t3)/2 // serverTS - request midpoint
		}
	}
	return offsetNs, rttNs, nil
}

// CollectTrace pulls every process's /trace/export, estimates each
// process's clock offset against this (collector) process, and returns
// the aligned cluster-wide trace.
func (c *Cluster) CollectTrace() (*ClusterTrace, error) {
	ct := &ClusterTrace{Procs: make([]ProcTrace, 0, len(c.procs))}
	for i := range c.procs {
		off, rtt, err := c.clockOffset(i)
		if err != nil {
			return nil, fmt.Errorf("harness: clock probe of worker %d: %w", i, err)
		}
		body, err := c.getRaw(i, "/trace/export")
		if err != nil {
			return nil, fmt.Errorf("harness: trace export of worker %d: %w", i, err)
		}
		es, err := telemetry.ReadEventStream(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("harness: trace export of worker %d: %w", i, err)
		}
		ct.Procs = append(ct.Procs, ProcTrace{
			Worker: i, OffsetNs: off, RTTNs: rtt,
			ServerNowNs: es.ServerNowNs, Events: es.Events,
		})
	}
	ct.BaseNs = 0
	for pi := range ct.Procs {
		p := &ct.Procs[pi]
		for _, ev := range p.Events {
			ts := ev.TS - p.OffsetNs
			if ct.BaseNs == 0 || ts < ct.BaseNs {
				ct.BaseNs = ts
			}
		}
	}
	return ct, nil
}

// PhaseSummaries fetches every process's merged per-phase histogram
// snapshots (/phases), merges the raw buckets across the cluster, and
// returns one histogram-backed summary per component — the cluster-wide
// replacement for avg/p95-from-samples in bench reports.
func (c *Cluster) PhaseSummaries() (map[string]telemetry.PhaseSummary, error) {
	merged := make(map[string]telemetry.HistSnapshot)
	for i := range c.procs {
		var snaps map[string]telemetry.HistSnapshot
		if err := c.get(i, "/phases", &snaps); err != nil {
			return nil, fmt.Errorf("harness: phases of worker %d: %w", i, err)
		}
		for name, s := range snaps {
			m := merged[name]
			m.Merge(s)
			merged[name] = m
		}
	}
	out := make(map[string]telemetry.PhaseSummary, len(merged))
	for name, s := range merged {
		if s.Count == 0 {
			continue
		}
		out[name] = s.Summarize()
	}
	return out, nil
}

// SlowTxnsReport is one process's /trace/slow payload.
type SlowTxnsReport struct {
	ThresholdNs int64             `json:"threshold_ns"`
	Captured    int64             `json:"captured"`
	Slow        []json.RawMessage `json:"slow"`
}

// SlowTxns fetches every process's tail-sampler captures, in worker
// order.
func (c *Cluster) SlowTxns() ([]SlowTxnsReport, error) {
	out := make([]SlowTxnsReport, len(c.procs))
	for i := range c.procs {
		if err := c.get(i, "/trace/slow", &out[i]); err != nil {
			return nil, fmt.Errorf("harness: slow txns of worker %d: %w", i, err)
		}
	}
	return out, nil
}

// TraceEvent is one aligned event in a stitched timeline.
type TraceEvent struct {
	telemetry.Event
	// AlignedTS is the event timestamp mapped onto the collector clock.
	AlignedTS int64
	// Worker is the exporting process index.
	Worker int
}

// TxnTimeline is one transaction's cross-process lifecycle, stitched by
// txn ID and sorted by aligned timestamp.
type TxnTimeline struct {
	Txn    tx.TxnID
	Events []TraceEvent
	// Committed: the timeline contains a PhaseCommitted event; CommitNode
	// and CommitWorker identify where (valid only when Committed).
	Committed    bool
	CommitNode   tx.NodeID
	CommitWorker int
	// Complete: the chain enqueued -> sequenced -> batched -> routed ->
	// committed is fully present.
	Complete bool
	// BackstepNs is the worst causal-order clock violation along the
	// critical chain (enqueued, batched@committer, routed@committer,
	// committed): 0 when aligned timestamps are monotonic, otherwise the
	// largest backward step in nanoseconds. Sequenced is deliberately not
	// on the chain: it is stamped when the submitting process schedules
	// the batch, which is concurrent with — not causally before — the
	// committing process's own arrival.
	BackstepNs int64
}

// Stitch groups the aligned events by transaction ID into cross-process
// timelines (node-scope txn-0 markers are skipped), sorted by txn ID.
func (ct *ClusterTrace) Stitch() []TxnTimeline {
	byTxn := make(map[tx.TxnID]*TxnTimeline)
	for pi := range ct.Procs {
		p := &ct.Procs[pi]
		for _, ev := range p.Events {
			if ev.Txn == 0 {
				continue // crash/replay/failover markers, not transactions
			}
			tl := byTxn[ev.Txn]
			if tl == nil {
				tl = &TxnTimeline{Txn: ev.Txn}
				byTxn[ev.Txn] = tl
			}
			tl.Events = append(tl.Events, TraceEvent{
				Event: ev, AlignedTS: ev.TS - p.OffsetNs, Worker: p.Worker,
			})
		}
	}
	out := make([]TxnTimeline, 0, len(byTxn))
	for _, tl := range byTxn {
		sort.SliceStable(tl.Events, func(i, j int) bool {
			a, b := tl.Events[i], tl.Events[j]
			if a.AlignedTS != b.AlignedTS {
				return a.AlignedTS < b.AlignedTS
			}
			return a.Phase < b.Phase
		})
		tl.analyze()
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Txn < out[j].Txn })
	return out
}

// analyze fills the derived fields from the sorted event list.
func (tl *TxnTimeline) analyze() {
	var have [16]bool
	for _, ev := range tl.Events {
		if int(ev.Phase) < len(have) {
			have[ev.Phase] = true
		}
		if ev.Phase == telemetry.PhaseCommitted {
			tl.Committed = true
			tl.CommitNode = ev.Node
			tl.CommitWorker = ev.Worker
		}
	}
	tl.Complete = have[telemetry.PhaseEnqueued] && have[telemetry.PhaseSequenced] &&
		have[telemetry.PhaseBatched] && have[telemetry.PhaseRouted] &&
		have[telemetry.PhaseCommitted]
	if !tl.Committed {
		return
	}
	// Critical chain: the causally ordered path of the commit. Batched and
	// Routed occur on every node; only the committing node's copies are on
	// the commit path. The client submit (Enqueued) happens-before the
	// leader seals the batch, which happens-before any node receives it —
	// so Enqueued -> Batched@committer is a true cross-process edge.
	// Sequenced is NOT on the chain: the submitting process stamps it at
	// its own batch arrival, concurrent with the committer's.
	chain := make([]TraceEvent, 0, 4)
	appendPhase := func(ph telemetry.Phase, node tx.NodeID, anyNode bool) {
		for _, ev := range tl.Events {
			if ev.Phase == ph && (anyNode || ev.Node == node) {
				chain = append(chain, ev)
				return
			}
		}
	}
	appendPhase(telemetry.PhaseEnqueued, 0, true)
	appendPhase(telemetry.PhaseBatched, tl.CommitNode, false)
	appendPhase(telemetry.PhaseRouted, tl.CommitNode, false)
	appendPhase(telemetry.PhaseCommitted, tl.CommitNode, false)
	for i := 1; i < len(chain); i++ {
		if back := chain[i-1].AlignedTS - chain[i].AlignedTS; back > tl.BackstepNs {
			tl.BackstepNs = back
		}
	}
}

// TraceStats summarizes a stitched trace against the cluster-tracing
// acceptance bar: the fraction of committed transactions with a complete
// cross-process span chain and the worst clock-alignment violation.
type TraceStats struct {
	Txns             int     `json:"txns"`
	Committed        int     `json:"committed"`
	Complete         int     `json:"complete"`
	CompleteFraction float64 `json:"complete_fraction"`
	// MaxBackstepNs is the worst critical-chain clock backstep across all
	// committed transactions; it must stay within SlackNs for the trace
	// to count as monotonic under clock alignment.
	MaxBackstepNs int64 `json:"max_backstep_ns"`
	SlackNs       int64 `json:"slack_ns"`
}

// Stats computes the acceptance summary of a stitched trace.
func (ct *ClusterTrace) Stats(timelines []TxnTimeline) TraceStats {
	st := TraceStats{Txns: len(timelines), SlackNs: ct.SlackNs()}
	for i := range timelines {
		tl := &timelines[i]
		if !tl.Committed {
			continue
		}
		st.Committed++
		if tl.Complete {
			st.Complete++
		}
		if tl.BackstepNs > st.MaxBackstepNs {
			st.MaxBackstepNs = tl.BackstepNs
		}
	}
	if st.Committed > 0 {
		st.CompleteFraction = float64(st.Complete) / float64(st.Committed)
	}
	return st
}
