package harness

import (
	"fmt"
	"time"

	"hermes"
	"hermes/internal/engine"
	"hermes/internal/partition"
	"hermes/internal/sequencer"
	"hermes/internal/tx"
)

// TwinConfig mirrors the parts of ClusterConfig that determine execution:
// the twin must agree with the cluster on every one of them or the digests
// can never match.
type TwinConfig struct {
	Workers   int
	Policy    string
	Rows      uint64
	Payload   int
	BatchSize int
	Alpha     float64
	FusionCap int
	ExecMode  string
}

// TwinResult is the in-process emulation's outcome.
type TwinResult struct {
	Digests []engine.NodeDigest
	Result  *RunResult
}

// twinLeaderControl adapts the in-process cluster's sequencer group to the
// driver's leaderControl, over the same counters the standalone leader
// exposes.
type twinLeaderControl struct{ c *engine.Cluster }

func (t twinLeaderControl) SealedAndPending() (int64, int) {
	st := t.c.SeqStats()
	return st.Txns, st.Pending
}
func (t twinLeaderControl) Flush() { t.c.SeqFlush() }

// RunTwin executes the exact workload the multi-process cluster ran, in a
// single-process emulation with the same policy, batch size, seed data,
// submission order, and end-of-run flush protocol. Determinism says the
// two must converge to byte-identical per-node state digests; RunTwin
// produces the reference side of that comparison.
func RunTwin(cfg TwinConfig, spec WorkloadSpec) (*TwinResult, error) {
	if err := spec.Validate(cfg.BatchSize); err != nil {
		return nil, err
	}
	if cfg.FusionCap == 0 {
		cfg.FusionCap = int(cfg.Rows / 40)
	}
	workers := make([]tx.NodeID, cfg.Workers)
	for i := range workers {
		workers[i] = tx.NodeID(i)
	}
	pf, err := hermes.PolicyFactoryFor(hermes.Policy(cfg.Policy),
		partition.NewUniformRange(0, cfg.Rows, cfg.Workers), cfg.Alpha, cfg.FusionCap)
	if err != nil {
		return nil, err
	}
	db, err := engine.New(engine.Config{
		Nodes:  workers,
		Policy: pf,
		// Identical sealing regime to the cluster: size-only batches, tail
		// flushed by the driver once all submissions are pending.
		Seq:      sequencer.Config{BatchSize: cfg.BatchSize, Interval: time.Hour},
		ExecMode: cfg.ExecMode,
	})
	if err != nil {
		return nil, err
	}
	defer db.Stop()

	val := SeedValue(cfg.Payload)
	for r := uint64(0); r < cfg.Rows; r++ {
		db.LoadRecord(tx.MakeKey(0, r), append([]byte(nil), val...))
	}

	procs, err := spec.Procs()
	if err != nil {
		return nil, err
	}
	d := newDriver()
	if !d.start(len(procs)) {
		return nil, fmt.Errorf("harness: twin driver refused to start")
	}
	// No overload gate: backpressure only retimes the cluster's submitter,
	// and the twin is the timing-free reference.
	res, err := d.run(
		func(p tx.Procedure) (<-chan struct{}, error) { return db.Submit(workers[0], p) },
		procs, spec.Window, twinLeaderControl{db}, nil, runTimeout)
	if err != nil {
		return nil, fmt.Errorf("harness: twin run: %w", err)
	}
	if err := db.DrainDetail(30 * time.Second); err != nil {
		return nil, fmt.Errorf("harness: twin drain: %w", err)
	}
	return &TwinResult{Digests: db.NodeDigests(), Result: res}, nil
}
