package migration

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hermes/internal/tx"
)

func TestClayNoPlanWhenBalanced(t *testing.T) {
	c := NewClay(10, 0.2, 8)
	active := []tx.NodeID{0, 1}
	owner := func(k tx.Key) tx.NodeID { return tx.NodeID(uint64(k) / 100 % 2) }
	for i := 0; i < 100; i++ {
		c.Observe(tx.NodeID(i%2), []tx.Key{tx.Key(i % 200)}, owner)
	}
	if moves := c.Plan(active); moves != nil {
		t.Fatalf("balanced load produced plan: %v", moves)
	}
}

func TestClayPlansMovesOffHotNode(t *testing.T) {
	c := NewClay(10, 0.2, 8)
	active := []tx.NodeID{0, 1}
	owner := func(k tx.Key) tx.NodeID {
		if k < 100 {
			return 0
		}
		return 1
	}
	// 90% of load on node 0, concentrated on ranges 0-3.
	for i := 0; i < 900; i++ {
		c.Observe(0, []tx.Key{tx.Key(i % 40)}, owner)
	}
	for i := 0; i < 100; i++ {
		c.Observe(1, []tx.Key{tx.Key(100 + i%40)}, owner)
	}
	moves := c.Plan(active)
	if len(moves) == 0 {
		t.Fatal("overloaded node produced no plan")
	}
	for _, m := range moves {
		if m.To != 1 {
			t.Fatalf("move %v targets the hot node", m)
		}
		if uint64(m.Range) >= 10 {
			t.Fatalf("move %v is not a hot range on node 0", m)
		}
	}
}

func TestClayClumpFollowsCoAccess(t *testing.T) {
	c := NewClay(10, 0.1, 2)
	active := []tx.NodeID{0, 1}
	owner := func(k tx.Key) tx.NodeID {
		if k < 1000 {
			return 0
		}
		return 1
	}
	// Four equally hot ranges on node 0 (tie broken to range 0); range 5
	// is co-accessed with range 0, ranges 2 and 9 are independent. One
	// range's heat (300) cannot cover the needed shed (400), so the clump
	// must grow — and it must grow along the co-access edge to range 5.
	for i := 0; i < 300; i++ {
		c.Observe(0, []tx.Key{tx.Key(1), tx.Key(51)}, owner) // ranges 0 and 5
	}
	for i := 0; i < 300; i++ {
		c.Observe(0, []tx.Key{tx.Key(21)}, owner) // range 2
	}
	for i := 0; i < 300; i++ {
		c.Observe(0, []tx.Key{tx.Key(91)}, owner) // range 9
	}
	for i := 0; i < 100; i++ {
		c.Observe(1, []tx.Key{tx.Key(1001)}, owner)
	}
	moves := c.Plan(active)
	if len(moves) != 2 {
		t.Fatalf("moves = %v, want hottest + co-accessed", moves)
	}
	got := map[RangeID]bool{moves[0].Range: true, moves[1].Range: true}
	if !got[0] || !got[5] {
		t.Fatalf("clump = %v, want ranges {0,5} (co-access), not the unrelated hot range", moves)
	}
}

func TestClayDeterministic(t *testing.T) {
	build := func() *Clay {
		c := NewClay(10, 0.1, 4)
		owner := func(k tx.Key) tx.NodeID { return tx.NodeID(uint64(k) / 500) }
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			a := tx.Key(rng.Intn(400))
			b := tx.Key(rng.Intn(1000))
			c.Observe(tx.NodeID(rng.Intn(2)*0), []tx.Key{a, b}, owner)
		}
		return c
	}
	m1 := build().Plan([]tx.NodeID{0, 1})
	m2 := build().Plan([]tx.NodeID{0, 1})
	if len(m1) != len(m2) {
		t.Fatalf("plans differ in length: %v vs %v", m1, m2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("plans diverge at %d: %v vs %v", i, m1, m2)
		}
	}
}

func TestClayResetClearsWindow(t *testing.T) {
	c := NewClay(10, 0.1, 4)
	owner := func(tx.Key) tx.NodeID { return 0 }
	for i := 0; i < 100; i++ {
		c.Observe(0, []tx.Key{tx.Key(i % 30)}, owner)
	}
	c.Reset()
	if moves := c.Plan([]tx.NodeID{0, 1}); moves != nil {
		t.Fatalf("plan after reset: %v", moves)
	}
}

func TestClaySingleNodeNoPlan(t *testing.T) {
	c := NewClay(10, 0.1, 4)
	c.Observe(0, []tx.Key{1}, func(tx.Key) tx.NodeID { return 0 })
	if moves := c.Plan([]tx.NodeID{0}); moves != nil {
		t.Fatalf("single-node cluster produced plan: %v", moves)
	}
}

func TestMoveKeys(t *testing.T) {
	m := Move{Range: 3, To: 1}
	keys := m.Keys(10)
	if len(keys) != 10 || keys[0] != 30 || keys[9] != 39 {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestSchismSeparatesIndependentClusters(t *testing.T) {
	s := NewSchism()
	// Two co-access cliques that never touch each other: a 2-way
	// partitioning must not split either clique.
	cliqueA := []tx.Key{1, 2, 3}
	cliqueB := []tx.Key{100, 101, 102}
	for i := 0; i < 50; i++ {
		s.Observe(cliqueA)
		s.Observe(cliqueB)
	}
	assign := s.Partition(2, 0.2, 4)
	if len(assign) != 6 {
		t.Fatalf("assigned %d keys, want 6", len(assign))
	}
	if assign[1] != assign[2] || assign[2] != assign[3] {
		t.Fatalf("clique A split: %v", assign)
	}
	if assign[100] != assign[101] || assign[101] != assign[102] {
		t.Fatalf("clique B split: %v", assign)
	}
	if assign[1] == assign[100] {
		t.Fatalf("cliques not separated (balance violated): %v", assign)
	}
	if cut := s.CutCost(assign, nil); cut != 0 {
		t.Fatalf("cut = %d, want 0", cut)
	}
}

func TestSchismBalance(t *testing.T) {
	s := NewSchism()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a := tx.Key(rng.Intn(200))
		b := tx.Key(rng.Intn(200))
		s.Observe([]tx.Key{a, b})
	}
	assign := s.Partition(4, 0.1, 4)
	loads := map[tx.NodeID]int{}
	total := 0
	for k, p := range assign {
		loads[p] += s.weight[k]
		total += s.weight[k]
	}
	maxAllowed := float64(total) / 4 * 1.35 // slack + integer fallback headroom
	for p, l := range loads {
		if float64(l) > maxAllowed {
			t.Fatalf("partition %d weight %d exceeds balance bound %f", p, l, maxAllowed)
		}
	}
}

func TestSchismRefinementReducesCut(t *testing.T) {
	build := func() *Schism {
		s := NewSchism()
		rng := rand.New(rand.NewSource(11))
		// Community structure: intra-group pairs 4x more likely.
		for i := 0; i < 3000; i++ {
			g := rng.Intn(2)
			a := tx.Key(g*100 + rng.Intn(100))
			var b tx.Key
			if rng.Intn(5) == 0 {
				b = tx.Key((1-g)*100 + rng.Intn(100))
			} else {
				b = tx.Key(g*100 + rng.Intn(100))
			}
			s.Observe([]tx.Key{a, b})
		}
		return s
	}
	s1 := build()
	noRefine := s1.Partition(2, 0.15, 0)
	s2 := build()
	refined := s2.Partition(2, 0.15, 6)
	if s2.CutCost(refined, nil) > s1.CutCost(noRefine, nil) {
		t.Fatalf("refinement increased cut: %d > %d",
			s2.CutCost(refined, nil), s1.CutCost(noRefine, nil))
	}
}

func TestSchismDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		build := func() map[tx.Key]tx.NodeID {
			s := NewSchism()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				s.Observe([]tx.Key{tx.Key(rng.Intn(50)), tx.Key(rng.Intn(50))})
			}
			return s.Partition(3, 0.2, 3)
		}
		a, b := build(), build()
		if len(a) != len(b) {
			return false
		}
		for k, p := range a {
			if b[k] != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSchismEmptyTrace(t *testing.T) {
	s := NewSchism()
	if got := s.Partition(3, 0.1, 2); len(got) != 0 {
		t.Fatalf("empty trace assigned %d keys", len(got))
	}
}

func TestSchismPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewSchism().Partition(0, 0.1, 1)
}

func TestSquallChunks(t *testing.T) {
	sq := NewSquall(3)
	keys := []tx.Key{1, 2, 3, 4, 5, 6, 7}
	chunks := sq.Chunks(keys, 2)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		if c.To != 2 {
			t.Fatalf("chunk destination = %d", c.To)
		}
		total += len(c.Keys)
	}
	if total != 7 {
		t.Fatalf("chunked %d keys, want 7", total)
	}
	if len(chunks[2].Keys) != 1 || chunks[2].Keys[0] != 7 {
		t.Fatalf("last chunk = %v", chunks[2].Keys)
	}
}

func TestSquallDefaultChunkSize(t *testing.T) {
	if NewSquall(0).ChunkSize != 1000 {
		t.Fatal("default chunk size not applied")
	}
}

func TestSquallChunksEveryKeyOnceProperty(t *testing.T) {
	f := func(nRaw uint8, szRaw uint8) bool {
		n := int(nRaw)
		size := int(szRaw%16) + 1
		keys := make([]tx.Key, n)
		for i := range keys {
			keys[i] = tx.Key(i)
		}
		seen := map[tx.Key]int{}
		for _, c := range NewSquall(size).Chunks(keys, 0) {
			if len(c.Keys) > size {
				return false
			}
			for _, k := range c.Keys {
				seen[k]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeKeys(t *testing.T) {
	keys := RangeKeys(5, 8)
	if len(keys) != 3 || keys[0] != 5 || keys[2] != 7 {
		t.Fatalf("RangeKeys = %v", keys)
	}
	if RangeKeys(8, 5) != nil {
		t.Fatal("inverted range returned keys")
	}
}
