package migration

import (
	"hermes/internal/tx"
)

// Squall turns a migration plan (an ordered key list and a destination)
// into dedicated chunked migration transactions, the asynchronous
// migration technique of Elmore et al. that both Hermes (§3.3) and the
// Squall/Clay baselines (§5.4) use for cold data. Each chunk becomes one
// tx.MigrationProc submitted through the ordinary sequencer, so chunk
// moves are totally ordered against user transactions and serialized by
// the lock manager — which is precisely why migrating records that are
// still hot craters throughput (Fig. 14), and why Hermes excludes
// fusion-tracked keys from chunks.
type Squall struct {
	// ChunkSize is the number of records per migration transaction
	// (the paper uses 1000 in §5.4).
	ChunkSize int
}

// NewSquall returns an executor with the given chunk size.
func NewSquall(chunkSize int) *Squall {
	if chunkSize <= 0 {
		chunkSize = 1000
	}
	return &Squall{ChunkSize: chunkSize}
}

// Chunks splits keys into MigrationProcs targeting to. The input order is
// preserved; every key appears in exactly one chunk.
func (s *Squall) Chunks(keys []tx.Key, to tx.NodeID) []*tx.MigrationProc {
	var out []*tx.MigrationProc
	for start := 0; start < len(keys); start += s.ChunkSize {
		end := start + s.ChunkSize
		if end > len(keys) {
			end = len(keys)
		}
		chunk := append([]tx.Key(nil), keys[start:end]...)
		out = append(out, &tx.MigrationProc{Keys: chunk, To: to})
	}
	return out
}

// RangeKeys expands [lo, hi) into the key list for chunking; helper for
// range-granular plans (Clay moves, scale-out tenant moves).
func RangeKeys(lo, hi tx.Key) []tx.Key {
	if hi <= lo {
		return nil
	}
	out := make([]tx.Key, 0, uint64(hi-lo))
	for k := lo; k < hi; k++ {
		out = append(out, k)
	}
	return out
}
