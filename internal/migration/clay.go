// Package migration implements the look-back re-partitioning machinery
// the paper compares against: the Clay clump-based migration planner
// (Serafini et al., VLDB'16), the Schism offline co-access graph
// partitioner (Curino et al., VLDB'10) with a self-contained multilevel
// greedy/KL-style partitioner standing in for Metis, and the Squall-style
// chunked live-migration executor (Elmore et al., SIGMOD'15) that turns a
// migration plan into dedicated, totally ordered migration transactions.
package migration

import (
	"sort"

	"hermes/internal/tx"
)

// RangeID identifies a contiguous block of RangeSize keys; Clay plans at
// range granularity, as the paper's own Clay implementation does ("we
// generate a clump by using data ranges instead of keys", §5.2.1 fn.4).
type RangeID uint64

// Clay is the look-back migration planner. It observes the executed
// workload (which partitions transactions were routed to and which key
// ranges they touched together), and when a partition's load exceeds the
// average by more than Threshold it emits a plan that moves hot "clumps"
// — a hot range plus the ranges most co-accessed with it — to the least
// loaded node, exactly the E-Store/Clay recipe.
//
// Clay is not a router: the system keeps executing under Calvin routing
// while Clay's plans are applied by the Squall executor as migration
// transactions.
type Clay struct {
	// RangeSize is the clump granularity in keys.
	RangeSize uint64
	// Threshold is the tolerated relative overload (e.g. 0.15 = 15% above
	// the mean) before a plan is generated.
	Threshold float64
	// MaxClumps bounds how many clumps one plan moves.
	MaxClumps int

	load     map[tx.NodeID]int
	heat     map[RangeID]int
	homeOf   map[RangeID]tx.NodeID
	coaccess map[RangeID]map[RangeID]int
}

// NewClay returns a planner with the given clump granularity and overload
// threshold.
func NewClay(rangeSize uint64, threshold float64, maxClumps int) *Clay {
	c := &Clay{RangeSize: rangeSize, Threshold: threshold, MaxClumps: maxClumps}
	c.Reset()
	return c
}

// Reset clears the observation window (called after each plan).
func (c *Clay) Reset() {
	c.load = make(map[tx.NodeID]int)
	c.heat = make(map[RangeID]int)
	c.homeOf = make(map[RangeID]tx.NodeID)
	c.coaccess = make(map[RangeID]map[RangeID]int)
}

// rangeOf maps a key to its range.
func (c *Clay) rangeOf(k tx.Key) RangeID { return RangeID(uint64(k) / c.RangeSize) }

// Observe records one executed transaction: the node it loaded and the
// key ranges it co-accessed, with the owner of each range.
func (c *Clay) Observe(master tx.NodeID, keys []tx.Key, ownerOf func(tx.Key) tx.NodeID) {
	c.load[master]++
	var rs []RangeID
	seen := map[RangeID]bool{}
	for _, k := range keys {
		r := c.rangeOf(k)
		if !seen[r] {
			seen[r] = true
			rs = append(rs, r)
			c.heat[r]++
			c.homeOf[r] = ownerOf(k)
		}
	}
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			a, b := rs[i], rs[j]
			if c.coaccess[a] == nil {
				c.coaccess[a] = map[RangeID]int{}
			}
			if c.coaccess[b] == nil {
				c.coaccess[b] = map[RangeID]int{}
			}
			c.coaccess[a][b]++
			c.coaccess[b][a]++
		}
	}
}

// Move is one planned range move.
type Move struct {
	Range RangeID
	To    tx.NodeID
}

// Keys expands the move into its concrete key list for table t.
func (m Move) Keys(rangeSize uint64) []tx.Key {
	out := make([]tx.Key, 0, rangeSize)
	start := uint64(m.Range) * rangeSize
	for i := uint64(0); i < rangeSize; i++ {
		out = append(out, tx.Key(start+i))
	}
	return out
}

// Plan inspects the observation window over the given active nodes and
// returns range moves (nil when load is balanced enough). It does not
// reset the window; callers reset after applying a plan.
func (c *Clay) Plan(active []tx.NodeID) []Move {
	if len(active) < 2 {
		return nil
	}
	total := 0
	for _, n := range active {
		total += c.load[n]
	}
	if total == 0 {
		return nil
	}
	avg := float64(total) / float64(len(active))
	// Most loaded and least loaded active nodes, ties toward lower id
	// (active is sorted).
	hot, cold := active[0], active[0]
	for _, n := range active[1:] {
		if c.load[n] > c.load[hot] {
			hot = n
		}
		if c.load[n] < c.load[cold] {
			cold = n
		}
	}
	if float64(c.load[hot]) <= avg*(1+c.Threshold) {
		return nil
	}

	// Hot ranges on the overloaded node, hottest first (deterministic
	// tie-break by range id).
	var hotRanges []RangeID
	for r, home := range c.homeOf {
		if home == hot && c.heat[r] > 0 {
			hotRanges = append(hotRanges, r)
		}
	}
	sort.Slice(hotRanges, func(i, j int) bool {
		if c.heat[hotRanges[i]] != c.heat[hotRanges[j]] {
			return c.heat[hotRanges[i]] > c.heat[hotRanges[j]]
		}
		return hotRanges[i] < hotRanges[j]
	})
	if len(hotRanges) == 0 {
		return nil
	}

	// Build one clump: the hottest range plus the ranges (on the same
	// node) most co-accessed with the clump so far.
	needed := float64(c.load[hot]) - avg // heat to shed
	inClump := map[RangeID]bool{hotRanges[0]: true}
	clump := []RangeID{hotRanges[0]}
	shed := float64(c.heat[hotRanges[0]])
	for len(clump) < c.MaxClumps && shed < needed {
		best, bestScore := RangeID(0), -1
		for r := range inClump {
			for nb, w := range c.coaccess[r] {
				if inClump[nb] || c.homeOf[nb] != hot {
					continue
				}
				if w > bestScore || (w == bestScore && nb < best) {
					best, bestScore = nb, w
				}
			}
		}
		if bestScore < 0 {
			// No co-accessed neighbor left: extend with the next hottest.
			ext := RangeID(0)
			found := false
			for _, r := range hotRanges {
				if !inClump[r] {
					ext, found = r, true
					break
				}
			}
			if !found {
				break
			}
			best = ext
		}
		inClump[best] = true
		clump = append(clump, best)
		shed += float64(c.heat[best])
	}

	moves := make([]Move, 0, len(clump))
	for _, r := range clump {
		moves = append(moves, Move{Range: r, To: cold})
	}
	return moves
}
