package migration

import (
	"sort"

	"hermes/internal/tx"
)

// Schism computes an offline "optimal" partitioning from a workload trace
// (§5.2.1): it models keys as graph vertices weighted by access frequency,
// with edge weights equal to co-access frequency, and partitions the graph
// to minimize cut edges subject to balanced vertex weight. The paper runs
// Metis; this reproduction ships a self-contained equivalent: a greedy
// seeded-growth initial partitioning followed by Kernighan–Lin-style
// refinement passes (best single-vertex moves that reduce the cut without
// breaking balance).
type Schism struct {
	weight map[tx.Key]int
	edges  map[tx.Key]map[tx.Key]int
}

// NewSchism returns an empty trace accumulator.
func NewSchism() *Schism {
	return &Schism{
		weight: make(map[tx.Key]int),
		edges:  make(map[tx.Key]map[tx.Key]int),
	}
}

// Observe adds one transaction's key set to the trace.
func (s *Schism) Observe(keys []tx.Key) {
	ks := tx.NormalizeKeys(append([]tx.Key(nil), keys...))
	for _, k := range ks {
		s.weight[k]++
	}
	for i := 0; i < len(ks); i++ {
		for j := i + 1; j < len(ks); j++ {
			a, b := ks[i], ks[j]
			if s.edges[a] == nil {
				s.edges[a] = map[tx.Key]int{}
			}
			if s.edges[b] == nil {
				s.edges[b] = map[tx.Key]int{}
			}
			s.edges[a][b]++
			s.edges[b][a]++
		}
	}
}

// Partition computes an n-way partitioning of every observed key,
// returning the lookup table. balanceSlack is the tolerated relative
// weight imbalance (e.g. 0.1); refinePasses bounds the KL refinement
// rounds.
func (s *Schism) Partition(n int, balanceSlack float64, refinePasses int) map[tx.Key]tx.NodeID {
	if n <= 0 {
		panic("schism: partitions must be positive")
	}
	keys := make([]tx.Key, 0, len(s.weight))
	totalW := 0
	for k, w := range s.weight {
		keys = append(keys, k)
		totalW += w
	}
	if len(keys) == 0 {
		return map[tx.Key]tx.NodeID{}
	}
	// Heaviest-first deterministic order.
	sort.Slice(keys, func(i, j int) bool {
		if s.weight[keys[i]] != s.weight[keys[j]] {
			return s.weight[keys[i]] > s.weight[keys[j]]
		}
		return keys[i] < keys[j]
	})
	maxLoad := float64(totalW) / float64(n) * (1 + balanceSlack)

	assign := make(map[tx.Key]tx.NodeID, len(keys))
	loads := make([]float64, n)

	// Greedy growth: place each key on the partition with the highest
	// connectivity to already-placed neighbors, subject to balance; break
	// ties toward the lightest partition.
	for _, k := range keys {
		gain := make([]int, n)
		for nb, w := range s.edges[k] {
			if p, ok := assign[nb]; ok {
				gain[p] += w
			}
		}
		best := -1
		for p := 0; p < n; p++ {
			if loads[p]+float64(s.weight[k]) > maxLoad {
				continue
			}
			if best == -1 || gain[p] > gain[best] ||
				(gain[p] == gain[best] && loads[p] < loads[best]) {
				best = p
			}
		}
		if best == -1 { // all partitions "full": pick the lightest
			best = 0
			for p := 1; p < n; p++ {
				if loads[p] < loads[best] {
					best = p
				}
			}
		}
		assign[k] = tx.NodeID(best)
		loads[best] += float64(s.weight[k])
	}

	// KL-style refinement: repeatedly apply the best single-key move that
	// strictly reduces the cut and respects balance.
	for pass := 0; pass < refinePasses; pass++ {
		improved := false
		for _, k := range keys {
			cur := assign[k]
			gain := make([]int, n)
			for nb, w := range s.edges[k] {
				gain[assign[nb]] += w
			}
			best := cur
			for p := 0; p < n; p++ {
				if tx.NodeID(p) == cur {
					continue
				}
				if loads[p]+float64(s.weight[k]) > maxLoad {
					continue
				}
				if gain[p] > gain[best] {
					best = tx.NodeID(p)
				}
			}
			if best != cur {
				loads[cur] -= float64(s.weight[k])
				loads[best] += float64(s.weight[k])
				assign[k] = best
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return assign
}

// CutCost returns the total weight of co-access edges crossing partitions
// under assign (unassigned keys resolved by fallback); used by tests and
// by experiment reporting.
func (s *Schism) CutCost(assign map[tx.Key]tx.NodeID, fallback func(tx.Key) tx.NodeID) int {
	part := func(k tx.Key) tx.NodeID {
		if p, ok := assign[k]; ok {
			return p
		}
		return fallback(k)
	}
	cut := 0
	for a, nbs := range s.edges {
		for b, w := range nbs {
			if a < b && part(a) != part(b) {
				cut += w
			}
		}
	}
	return cut
}
