// Package diskio is the storage fault boundary: a small file abstraction
// the durability layers (delivery journal, checkpoint store) write through,
// with two interchangeable backends. OSFS talks to the real filesystem;
// MemFS is a deterministic, seeded fault injector that models the failure
// surface a single-copy durable node actually faces — short writes, torn
// writes at arbitrary byte offsets, ENOSPC, failed and *lying* fsyncs, and
// crash-time loss or bit-flip corruption of everything beyond the last
// successful fsync (including un-fsynced renames). Every durability claim
// the journal and checkpoint store make is testable by swapping the
// backend; no claim rests on "the OS probably flushed it".
//
// The crash model MemFS implements is the standard one (ALICE-style): data
// acknowledged by a successful Sync is stable; anything after the sync
// watermark may, at a crash, survive fully, survive as a torn prefix, be
// corrupted bit-by-bit, or vanish. Directory entries (creates, renames)
// become stable only after SyncDir on the parent.
package diskio

import (
	"errors"
	"io/fs"
	"path/filepath"
)

// ErrNoSpace is the injected "device full" failure (ENOSPC analogue).
var ErrNoSpace = errors.New("diskio: no space left on device")

// File is an open handle. Writes append at the current end of file
// (journal and checkpoint writers are strictly append/replace-shaped, so
// the abstraction does not offer seeks).
type File interface {
	// Write appends p. Like the POSIX contract it may write a short
	// prefix: n < len(p) with a nil error, or n < len(p) with an error
	// after a torn prefix landed. Callers that need all-or-nothing must
	// loop (WriteFull) and repair (truncate + retry) on error.
	Write(p []byte) (n int, err error)
	// Sync flushes the file's written bytes to stable storage. A nil
	// return is a durability promise — except from a lying device, which
	// only the crash model can expose.
	Sync() error
	// Truncate cuts the file to size bytes; subsequent writes append at
	// the new end.
	Truncate(size int64) error
	// Size returns the current file length in bytes.
	Size() (int64, error)
	Close() error
}

// FS is the filesystem slice the durability layers need.
type FS interface {
	MkdirAll(dir string) error
	// Create truncates-or-creates path for writing.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// ReadFile returns the full contents; a missing file reports
	// fs.ErrNotExist (via errors.Is).
	ReadFile(path string) ([]byte, error)
	// WriteFile replaces path's contents in one call with no durability
	// promise (sidecar marks, scratch state). Use WriteFileAtomic for
	// anything recovery depends on.
	WriteFile(path string, data []byte) error
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// SyncDir makes the directory's entries (creates, renames, removes)
	// stable.
	SyncDir(dir string) error
	// ReadDir lists the directory's entry names, sorted; a missing
	// directory returns an empty list.
	ReadDir(dir string) ([]string, error)
}

// IsNotExist reports whether err is the backend's missing-file error.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// WriteFull writes all of p through f, looping over short writes. It
// returns the byte count actually applied (which can be non-zero even on
// error: the torn prefix is on disk and the caller must repair it).
func WriteFull(f File, p []byte) (int, error) {
	written := 0
	for written < len(p) {
		n, err := f.Write(p[written:])
		written += n
		if err != nil {
			return written, err
		}
		if n == 0 {
			return written, errors.New("diskio: write made no progress")
		}
	}
	return written, nil
}

// WriteFileAtomic durably replaces path with data: write to a temp file in
// the same directory, fsync it, rename over path, fsync the directory. A
// crash at any point leaves either the old complete file or the new
// complete file — never a torn mix.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := WriteFull(f, data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
