package diskio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFullLoopsOverShortWrites(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 1})
	f, err := fs.Create("/j/file")
	if err != nil {
		t.Fatal(err)
	}
	fs.FailNextWrite(3, nil) // short write: 3 bytes land, nil error
	fs.FailNextWrite(1, nil)
	payload := []byte("hello, durable world")
	n, err := WriteFull(f, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("WriteFull = (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	got, _ := fs.ReadFile("/j/file")
	if !bytes.Equal(got, payload) {
		t.Fatalf("file = %q, want %q", got, payload)
	}
	if st := fs.Stats(); st.ShortWrites != 2 {
		t.Fatalf("ShortWrites = %d, want 2", st.ShortWrites)
	}
}

func TestWriteFullReportsTornPrefixOnError(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 1})
	f, _ := fs.Create("/j/file")
	boom := errors.New("boom")
	fs.FailNextWrite(4, boom)
	n, err := WriteFull(f, []byte("0123456789"))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4 (torn prefix must be reported)", n)
	}
	got, _ := fs.ReadFile("/j/file")
	if string(got) != "0123" {
		t.Fatalf("file = %q, want torn prefix %q", got, "0123")
	}
}

func TestWriteFileAtomicSurvivesCrash(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 7})
	if err := WriteFileAtomic(fs, "/d/state", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err := fs.ReadFile("/d/state")
	if err != nil || string(got) != "v1" {
		t.Fatalf("after crash: (%q, %v), want v1", got, err)
	}

	// Replace with v2; a crash after the full atomic sequence keeps v2.
	if err := WriteFileAtomic(fs, "/d/state", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err = fs.ReadFile("/d/state")
	if err != nil || string(got) != "v2" {
		t.Fatalf("after crash: (%q, %v), want v2", got, err)
	}
}

func TestWriteFileAtomicFailedSyncKeepsOldVersion(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 7})
	if err := WriteFileAtomic(fs, "/d/state", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fs.FailNextSync(errors.New("fsync lost the device"), false)
	if err := WriteFileAtomic(fs, "/d/state", []byte("v2")); err == nil {
		t.Fatal("want error from failed sync")
	}
	// The failed attempt must not leave a temp file, and the old version
	// must survive both live and across a crash.
	if _, err := fs.ReadFile("/d/state.tmp"); !IsNotExist(err) {
		t.Fatalf("temp file should be removed, got err=%v", err)
	}
	fs.Crash()
	got, err := fs.ReadFile("/d/state")
	if err != nil || string(got) != "v1" {
		t.Fatalf("after crash: (%q, %v), want v1", got, err)
	}
}

func TestCrashPreservesSyncedPrefixOnly(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 42, CrashBitFlipProb: 0.5})
	fs.MkdirAll("/j")
	f, _ := fs.Create("/j/log")
	fs.SyncDir("/j")
	stable := []byte("stable-prefix-")
	if _, err := WriteFull(f, stable); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFull(f, bytes.Repeat([]byte{0xAA}, 64)); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err := fs.ReadFile("/j/log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < len(stable) || !bytes.Equal(got[:len(stable)], stable) {
		t.Fatalf("synced prefix damaged: %q", got)
	}
	if len(got) > len(stable)+64 {
		t.Fatalf("file grew across crash: %d bytes", len(got))
	}
}

func TestLyingSyncExposedByCrash(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 3})
	fs.MkdirAll("/j")
	f, _ := fs.Create("/j/log")
	fs.SyncDir("/j")
	WriteFull(f, []byte("data"))
	fs.FailNextSync(nil, true) // lies: returns nil, nothing durable
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync must return nil, got %v", err)
	}
	if fs.DurableLen("/j/log") != 0 {
		t.Fatalf("DurableLen = %d, want 0 after lying sync", fs.DurableLen("/j/log"))
	}
	if st := fs.Stats(); st.SyncLies != 1 {
		t.Fatalf("SyncLies = %d, want 1", st.SyncLies)
	}
}

func TestUnsyncedRenameRevertsAtCrash(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 5})
	fs.MkdirAll("/d")
	f, _ := fs.Create("/d/a")
	WriteFull(f, []byte("A"))
	f.Sync()
	fs.SyncDir("/d")
	// Rename without SyncDir: the entry move is volatile.
	if err := fs.Rename("/d/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := fs.ReadFile("/d/b"); !IsNotExist(err) {
		t.Fatalf("unsynced rename survived crash: err=%v", err)
	}
	if got, err := fs.ReadFile("/d/a"); err != nil || string(got) != "A" {
		t.Fatalf("original entry lost: (%q, %v)", got, err)
	}
}

func TestInjectedWriteFaultsAreSeedDeterministic(t *testing.T) {
	run := func() (MemStats, []byte) {
		fs := NewMemFS(FaultSpec{Seed: 99, ShortWriteProb: 0.3, TornWriteProb: 0.2, NoSpaceProb: 0.1})
		f, _ := fs.Create("/x")
		for i := 0; i < 50; i++ {
			WriteFull(f, bytes.Repeat([]byte{byte(i)}, 16))
		}
		data, _ := fs.ReadFile("/x")
		return fs.Stats(), data
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || !bytes.Equal(d1, d2) {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	if s1.ShortWrites == 0 || s1.TornWrites == 0 || s1.NoSpace == 0 {
		t.Fatalf("expected every fault class to fire: %+v", s1)
	}
}

func TestWipeUnsyncedTruncatesToMark(t *testing.T) {
	dir := t.TempDir()
	osfs := OSFS{}
	log := filepath.Join(dir, "journal.log")
	if err := os.WriteFile(log, []byte("synced-part|unsynced-tail"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteSyncedMark(osfs, log, int64(len("synced-part"))); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "ckpt-0001.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	atomic := filepath.Join(dir, "seed.json")
	if err := WriteFileAtomic(osfs, atomic, []byte(`{"rows":8}`)); err != nil {
		t.Fatal(err)
	}

	rep, err := WipeUnsynced(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(log); string(got) != "synced-part" {
		t.Fatalf("journal = %q, want synced prefix only", got)
	}
	if rep.Truncated[log] != int64(len("|unsynced-tail")) {
		t.Fatalf("Truncated = %v", rep.Truncated)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file survived wipe: %v", err)
	}
	if got, _ := os.ReadFile(atomic); string(got) != `{"rows":8}` {
		t.Fatalf("atomic file damaged: %q", got)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	osfs := OSFS{}
	sub := filepath.Join(dir, "a", "b")
	if err := osfs.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	f, err := osfs.OpenAppend(filepath.Join(sub, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFull(f, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 3 {
		t.Fatalf("Size = %d", sz)
	}
	if err := f.Truncate(1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := osfs.ReadFile(filepath.Join(sub, "x"))
	if err != nil || string(got) != "o" {
		t.Fatalf("ReadFile = (%q, %v)", got, err)
	}
	names, err := osfs.ReadDir(sub)
	if err != nil || len(names) != 1 || names[0] != "x" {
		t.Fatalf("ReadDir = (%v, %v)", names, err)
	}
	if names, err := osfs.ReadDir(filepath.Join(dir, "missing")); err != nil || names != nil {
		t.Fatalf("missing dir: (%v, %v)", names, err)
	}
}

// TestMemHandleUnusableAfterClose pins the os.File-matching close
// semantics: every operation on a closed handle reports fs.ErrClosed
// (os.ErrClosed aliases it), so use-after-close bugs — e.g. syncing a
// rotated-away journal file — surface in fault-injection tests exactly as
// they would on OSFS.
func TestMemHandleUnusableAfterClose(t *testing.T) {
	fs := NewMemFS(FaultSpec{Seed: 1})
	f, err := fs.Create("/j/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFull(f, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Write after Close: %v, want ErrClosed", err)
	}
	if err := f.Sync(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Sync after Close: %v, want ErrClosed", err)
	}
	if err := f.Truncate(0); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Truncate after Close: %v, want ErrClosed", err)
	}
	if _, err := f.Size(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Size after Close: %v, want ErrClosed", err)
	}
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
	// Nothing leaked through: contents and watermark are as before Close.
	data, durable, err := fs.SnapshotFile("/j/file")
	if err != nil || string(data) != "abc" || durable != 3 {
		t.Fatalf("file = (%q, %d, %v), want (abc, 3, nil)", data, durable, err)
	}
}
