package diskio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// OSFS is the real-filesystem backend.
type OSFS struct{}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Truncate(size int64) error   { return o.f.Truncate(size) }
func (o osFile) Close() error                { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OSFS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OSFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (OSFS) WriteFile(path string, data []byte) error    { return os.WriteFile(path, data, 0o644) }
func (OSFS) Rename(oldPath, newPath string) error        { return os.Rename(oldPath, newPath) }
func (OSFS) Remove(path string) error                    { return os.Remove(path) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// SyncedMarkSuffix names the sidecar a durability layer writes next to an
// append-only file after each successful fsync, holding the decimal byte
// offset known stable. The mark is written *without* fsync on purpose: it
// exists for the parent orchestrator (same host, reads through the shared
// page cache), which uses it to simulate host death — truncating the file
// back to the mark destroys exactly the bytes a power cut would have.
const SyncedMarkSuffix = ".synced"

// WriteSyncedMark records off as path's stable watermark. The write goes
// through a temp file + rename — not for durability (still no fsync, see
// SyncedMarkSuffix) but so a SIGKILL mid-update can never leave a torn,
// unparseable mark: the sidecar always reads as either the old or the new
// offset. A leftover temp is cleaned up by WipeUnsynced like any other.
func WriteSyncedMark(fsys FS, path string, off int64) error {
	mark := path + SyncedMarkSuffix
	tmp := mark + ".tmp"
	if err := fsys.WriteFile(tmp, []byte(strconv.FormatInt(off, 10))); err != nil {
		return err
	}
	return fsys.Rename(tmp, mark)
}

// RemoveSyncedMark deletes path's watermark sidecar (fsync disabled: no
// stable prefix is being promised).
func RemoveSyncedMark(fsys FS, path string) { _ = fsys.Remove(path + SyncedMarkSuffix) }

// ReadSyncedMark returns path's recorded stable watermark, or ok=false if
// no sidecar exists or it does not parse.
func ReadSyncedMark(fsys FS, path string) (off int64, ok bool) {
	b, err := fsys.ReadFile(path + SyncedMarkSuffix)
	if err != nil {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// WipeReport says what WipeUnsynced destroyed.
type WipeReport struct {
	// Truncated maps file path -> bytes destroyed beyond its synced mark.
	Truncated map[string]int64
	// RemovedTmp lists deleted in-flight temp files.
	RemovedTmp []string
}

// WipeUnsynced simulates host death for a node directory on the real
// filesystem: SIGKILL leaves the page cache intact, so to test
// restart-from-stable-storage the orchestrator must destroy what a power
// cut would have. For every file under dir (recursively) carrying a
// .synced sidecar, the file is truncated back to the recorded watermark;
// every *.tmp file (an atomic replace that never committed) is deleted.
// Files written via WriteFileAtomic carry no sidecar and survive intact,
// exactly like a properly fsynced rename.
func WipeUnsynced(dir string) (*WipeReport, error) {
	rep := &WipeReport{Truncated: make(map[string]int64)}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			if rmErr := os.Remove(path); rmErr == nil {
				rep.RemovedTmp = append(rep.RemovedTmp, path)
			}
			return nil
		}
		if !strings.HasSuffix(path, SyncedMarkSuffix) {
			return nil
		}
		target := strings.TrimSuffix(path, SyncedMarkSuffix)
		mark, ok := ReadSyncedMark(OSFS{}, target)
		if !ok {
			return fmt.Errorf("diskio: unreadable synced mark %s", path)
		}
		st, statErr := os.Stat(target)
		if statErr != nil {
			if os.IsNotExist(statErr) {
				return nil
			}
			return statErr
		}
		if st.Size() > mark {
			if trErr := os.Truncate(target, mark); trErr != nil {
				return trErr
			}
			rep.Truncated[target] = st.Size() - mark
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
