package diskio

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
)

// FaultSpec parameterizes MemFS's deterministic fault injection. All
// probabilities are per-operation; draws come from a single seeded PRNG in
// operation order, so a single-writer test reproduces the exact fault
// sequence from the seed.
type FaultSpec struct {
	Seed int64
	// ShortWriteProb: Write persists a strict prefix and returns n <
	// len(p) with a nil error (the POSIX short write).
	ShortWriteProb float64
	// TornWriteProb: Write persists a prefix (possibly empty) and returns
	// an error — the torn write a crash or I/O error mid-append leaves.
	TornWriteProb float64
	// NoSpaceProb: like TornWriteProb but the error is ErrNoSpace.
	NoSpaceProb float64
	// SyncFailProb: Sync returns an error and makes nothing durable.
	SyncFailProb float64
	// SyncLieProb: Sync returns nil but makes nothing durable — the lying
	// device/controller. Undetectable live by construction; the crash
	// model is what surfaces it.
	SyncLieProb float64
	// CrashBitFlipProb: at Crash, each surviving byte beyond a file's
	// durable watermark flips one bit with this probability (silent
	// corruption of un-fsynced data).
	CrashBitFlipProb float64
}

// MemStats counts the faults MemFS actually injected.
type MemStats struct {
	Writes      int64
	Syncs       int64
	ShortWrites int64
	TornWrites  int64
	NoSpace     int64
	SyncFails   int64
	SyncLies    int64
	Crashes     int64
}

type memFile struct {
	data    []byte
	durable int // stable byte prefix (advanced by honest Sync)
}

// MemFS is the in-memory crash-simulating backend. The volatile namespace
// is what live handles see; durability (per-file watermark, per-entry
// stable names) is tracked separately, and Crash reduces the volatile view
// to what stable storage plus seeded damage would really hold.
type MemFS struct {
	mu   sync.Mutex
	spec FaultSpec
	rng  *rand.Rand

	files   map[string]*memFile // volatile namespace
	durable map[string]*memFile // namespace as of the last SyncDir per dir

	// scripted one-shot faults, consumed FIFO ahead of probabilistic ones
	writeScript []scriptedWrite
	syncScript  []scriptedSync

	stats MemStats
}

type scriptedWrite struct {
	prefix int // bytes that land before the fault
	err    error
}

type scriptedSync struct {
	err error
	lie bool
}

// NewMemFS builds a fault-injecting in-memory filesystem.
func NewMemFS(spec FaultSpec) *MemFS {
	return &MemFS{
		spec:    spec,
		rng:     rand.New(rand.NewSource(spec.Seed)),
		files:   make(map[string]*memFile),
		durable: make(map[string]*memFile),
	}
}

// FailNextWrite scripts the next Write on any handle: prefix bytes land,
// then err is returned (a nil err scripts a short write).
func (m *MemFS) FailNextWrite(prefix int, err error) {
	m.mu.Lock()
	m.writeScript = append(m.writeScript, scriptedWrite{prefix: prefix, err: err})
	m.mu.Unlock()
}

// FailNextSync scripts the next Sync: a non-nil err fails it; lie makes it
// return nil without any durability.
func (m *MemFS) FailNextSync(err error, lie bool) {
	m.mu.Lock()
	m.syncScript = append(m.syncScript, scriptedSync{err: err, lie: lie})
	m.mu.Unlock()
}

// Stats snapshots the injected-fault counters.
func (m *MemFS) Stats() MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Install places a file with the given contents and durable watermark into
// both namespaces (as if written, fsynced to the watermark, and its entry
// SyncDir'd). Test/verification scaffolding.
func (m *MemFS) Install(path string, data []byte, durable int) {
	if durable > len(data) {
		durable = len(data)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{data: append([]byte(nil), data...), durable: durable}
	p := filepath.Clean(path)
	m.files[p] = f
	m.durable[p] = f
}

// SnapshotFile returns a copy of path's volatile contents and its durable
// watermark, atomically.
func (m *MemFS) SnapshotFile(path string) (data []byte, durable int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, 0, fmt.Errorf("diskio: snapshot %s: %w", path, fs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), f.durable, nil
}

// DurableLen returns path's stable watermark (0 if the file is unknown).
func (m *MemFS) DurableLen(path string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[filepath.Clean(path)]; ok {
		return f.durable
	}
	return 0
}

// Crash simulates power loss: the namespace reverts to the last SyncDir'd
// entries, and every file's bytes beyond its durable watermark either
// vanish, survive as a torn prefix, or survive bit-flipped, per the seeded
// damage draws. Open handles must not be used across a Crash.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Crashes++
	damaged := make(map[*memFile]bool)
	m.files = make(map[string]*memFile, len(m.durable))
	for name, f := range m.durable {
		m.files[name] = f
		if damaged[f] {
			continue
		}
		damaged[f] = true
		if len(f.data) > f.durable {
			// The unsynced suffix survives up to a uniformly drawn torn
			// point; surviving bytes may be silently corrupted.
			torn := f.durable + m.rng.Intn(len(f.data)-f.durable+1)
			f.data = f.data[:torn]
			if p := m.spec.CrashBitFlipProb; p > 0 {
				for i := f.durable; i < torn; i++ {
					if m.rng.Float64() < p {
						f.data[i] ^= 1 << uint(m.rng.Intn(8))
					}
				}
			}
		}
	}
}

type memHandle struct {
	m      *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.m.stats.Writes++
	apply := func(n int) {
		h.f.data = append(h.f.data, p[:n]...)
	}
	if len(h.m.writeScript) > 0 {
		s := h.m.writeScript[0]
		h.m.writeScript = h.m.writeScript[1:]
		n := s.prefix
		if n > len(p) {
			n = len(p)
		}
		apply(n)
		if s.err != nil {
			h.m.stats.TornWrites++
			return n, s.err
		}
		h.m.stats.ShortWrites++
		return n, nil
	}
	if pr := h.m.spec.ShortWriteProb; pr > 0 && len(p) > 1 && h.m.rng.Float64() < pr {
		n := 1 + h.m.rng.Intn(len(p)-1)
		apply(n)
		h.m.stats.ShortWrites++
		return n, nil
	}
	if pr := h.m.spec.TornWriteProb; pr > 0 && h.m.rng.Float64() < pr {
		n := h.m.rng.Intn(len(p) + 1)
		apply(n)
		h.m.stats.TornWrites++
		return n, errors.New("diskio: injected I/O error mid-write")
	}
	if pr := h.m.spec.NoSpaceProb; pr > 0 && h.m.rng.Float64() < pr {
		n := h.m.rng.Intn(len(p) + 1)
		apply(n)
		h.m.stats.NoSpace++
		return n, ErrNoSpace
	}
	apply(len(p))
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.m.stats.Syncs++
	if len(h.m.syncScript) > 0 {
		s := h.m.syncScript[0]
		h.m.syncScript = h.m.syncScript[1:]
		if s.err != nil {
			h.m.stats.SyncFails++
			return s.err
		}
		if s.lie {
			h.m.stats.SyncLies++
			return nil
		}
		h.f.durable = len(h.f.data)
		return nil
	}
	if pr := h.m.spec.SyncFailProb; pr > 0 && h.m.rng.Float64() < pr {
		h.m.stats.SyncFails++
		return errors.New("diskio: injected fsync failure")
	}
	if pr := h.m.spec.SyncLieProb; pr > 0 && h.m.rng.Float64() < pr {
		h.m.stats.SyncLies++
		return nil
	}
	h.f.durable = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("diskio: truncate to %d outside file of %d bytes", size, len(h.f.data))
	}
	h.f.data = h.f.data[:size]
	if h.f.durable > int(size) {
		h.f.durable = int(size)
	}
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	return int64(len(h.f.data)), nil
}

// Close invalidates the handle, matching os.File: any further Write, Sync,
// Truncate, or Size (and a second Close) reports fs.ErrClosed. Without
// this, a use-after-close — e.g. syncing a rotated-away journal file —
// would silently succeed in fault-injection tests while failing on OSFS.
func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

func (m *MemFS) MkdirAll(dir string) error { return nil }

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[filepath.Clean(path)] = f
	return &memHandle{m: m, f: f}, nil
}

func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := filepath.Clean(path)
	f, ok := m.files[p]
	if !ok {
		f = &memFile{}
		m.files[p] = f
	}
	return &memHandle{m: m, f: f}, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, fmt.Errorf("diskio: read %s: %w", path, fs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) WriteFile(path string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[filepath.Clean(path)] = &memFile{data: append([]byte(nil), data...)}
	return nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, np := filepath.Clean(oldPath), filepath.Clean(newPath)
	f, ok := m.files[op]
	if !ok {
		return fmt.Errorf("diskio: rename %s: %w", oldPath, fs.ErrNotExist)
	}
	m.files[np] = f
	delete(m.files, op)
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := filepath.Clean(path)
	if _, ok := m.files[p]; !ok {
		return fmt.Errorf("diskio: remove %s: %w", path, fs.ErrNotExist)
	}
	delete(m.files, p)
	return nil
}

// SyncDir makes dir's current entries stable: creations, renames, and
// removals of direct children become the namespace a Crash reverts to.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := filepath.Clean(dir)
	for name := range m.durable {
		if filepath.Dir(name) == d {
			if _, live := m.files[name]; !live {
				delete(m.durable, name)
			}
		}
	}
	for name, f := range m.files {
		if filepath.Dir(name) == d {
			m.durable[name] = f
		}
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := filepath.Clean(dir)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == d {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}
