package network

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hermes/internal/clock"
	"hermes/internal/tx"
)

func nodes(n int) []tx.NodeID {
	out := make([]tx.NodeID, n)
	for i := range out {
		out[i] = tx.NodeID(i)
	}
	return out
}

func TestWireSize(t *testing.T) {
	m := Message{Payload: []byte("abcd")}
	base := m.WireSize()
	if base != headerBytes+4 {
		t.Errorf("WireSize = %d, want %d", base, headerBytes+4)
	}
	m.Records = []Record{{Key: 1, Value: make([]byte, 100)}}
	if got := m.WireSize(); got != base+perRecordBytes+100 {
		t.Errorf("WireSize with record = %d, want %d", got, base+perRecordBytes+100)
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt := MsgRecordPush; mt <= MsgControl; mt++ {
		if s := mt.String(); s == "" || s[0] == 'M' && len(s) > 8 && s[:7] == "MsgType" {
			t.Errorf("missing name for %d", mt)
		}
	}
	if s := MsgType(200).String(); s != "MsgType(200)" {
		t.Errorf("unknown type String = %q", s)
	}
}

func TestChanTransportDelivery(t *testing.T) {
	tr := NewChanTransport(nodes(3), nil)
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-tr.Recv(1):
		if m.From != 0 || string(m.Payload) != "hi" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestChanTransportFIFOPerLink(t *testing.T) {
	// A manual clock makes the latency path deterministic: nothing can be
	// delivered until the clock moves past the stamped due times, and no
	// real time is spent waiting.
	clk := clock.NewManual(time.Unix(0, 0))
	tr := NewChanTransportClock(nodes(2), UniformLatency(100*time.Microsecond, 0), clk)
	defer tr.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The clock has not moved, so delivery is impossible yet.
	select {
	case m := <-tr.Recv(1):
		t.Fatalf("message %d delivered before the clock advanced", m.Seq)
	default:
	}
	clk.Advance(time.Millisecond)
	for i := 0; i < n; i++ {
		select {
		case m := <-tr.Recv(1):
			if m.Seq != uint64(i) {
				t.Fatalf("out of order: got %d, want %d", m.Seq, i)
			}
		case <-time.After(time.Second):
			t.Fatal("timed out waiting for messages")
		}
	}
}

func TestChanTransportLatencyGate(t *testing.T) {
	// Delivery must wait out exactly the modelled latency: not before the
	// due time, promptly after it.
	clk := clock.NewManual(time.Unix(0, 0))
	tr := NewChanTransportClock(nodes(2), UniformLatency(500*time.Microsecond, 0), clk)
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1, Payload: []byte("gated")}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(499 * time.Microsecond)
	select {
	case <-tr.Recv(1):
		t.Fatal("delivered before the modelled latency elapsed")
	default:
	}
	clk.Advance(2 * time.Microsecond)
	select {
	case m := <-tr.Recv(1):
		if string(m.Payload) != "gated" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("not delivered after the latency elapsed")
	}
}

func TestChanTransportLocalBypass(t *testing.T) {
	// Local sends must bypass the latency model entirely: with a manual
	// clock that never advances, an hour of modelled latency would block
	// any message that touches the delay path.
	clk := clock.NewManual(time.Unix(0, 0))
	tr := NewChanTransportClock(nodes(1), UniformLatency(time.Hour, 0), clk)
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tr.Recv(0):
	case <-time.After(time.Second):
		t.Fatal("local message delayed by latency model")
	}
	if msgs, _ := tr.Stats().Totals(); msgs != 0 {
		t.Errorf("local send counted as network traffic: %d msgs", msgs)
	}
}

func TestChanTransportStats(t *testing.T) {
	tr := NewChanTransport(nodes(2), nil)
	defer tr.Close()
	m := Message{From: 0, To: 1, Payload: make([]byte, 68)}
	tr.Send(m)
	<-tr.Recv(1)
	msgs, bytes := tr.Stats().Totals()
	if msgs != 1 || bytes != int64(m.WireSize()) {
		t.Errorf("Stats = %d msgs %d bytes, want 1 msg %d bytes", msgs, bytes, m.WireSize())
	}
}

func TestChanTransportUnknownNode(t *testing.T) {
	tr := NewChanTransport(nodes(1), nil)
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestChanTransportAddNode(t *testing.T) {
	tr := NewChanTransport(nodes(1), nil)
	defer tr.Close()
	tr.AddNode(5)
	tr.AddNode(5) // idempotent
	if err := tr.Send(Message{From: 0, To: 5}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tr.Recv(5):
	case <-time.After(time.Second):
		t.Fatal("message to added node not delivered")
	}
}

func TestChanTransportSendAfterClose(t *testing.T) {
	tr := NewChanTransport(nodes(2), nil)
	tr.Close()
	if err := tr.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send after close succeeded")
	}
	tr.Close() // double close must be safe
}

func TestChanTransportConcurrentSendClose(t *testing.T) {
	tr := NewChanTransport(nodes(4), UniformLatency(10*time.Microsecond, 0))
	var wg sync.WaitGroup
	// Drain inboxes so links never back up.
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(n tx.NodeID) {
			for {
				select {
				case <-tr.Recv(n):
				case <-stop:
					return
				}
			}
		}(tx.NodeID(i))
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Send(Message{From: tx.NodeID(g % 4), To: tx.NodeID((g + 1) % 4)})
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	tr.Close() // must not panic regardless of in-flight sends
	wg.Wait()
	close(stop)
}

func TestLatencyModelBandwidthTerm(t *testing.T) {
	lm := UniformLatency(time.Millisecond, 1e6) // 1 MB/s
	d := lm(0, 1, 1000)
	if d != time.Millisecond+time.Millisecond {
		t.Errorf("latency = %v, want 2ms", d)
	}
	lm0 := UniformLatency(time.Millisecond, 0)
	if lm0(0, 1, 1<<30) != time.Millisecond {
		t.Error("bandwidth term applied when disabled")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	addrs[1] = t1.Addr()
	t0.SetAddr(1, t1.Addr())

	want := Message{
		From: 0, To: 1, Type: MsgRecordPush, Txn: 7,
		Records: []Record{{Key: tx.MakeKey(1, 42), Value: []byte("payload")}},
	}
	if err := t0.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-t1.Recv(1):
		if got.Txn != 7 || len(got.Records) != 1 || string(got.Records[0].Value) != "payload" ||
			got.Records[0].Key != tx.MakeKey(1, 42) {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP message not delivered")
	}

	// Reply over the reverse direction.
	if err := t1.Send(Message{From: 1, To: 0, Type: MsgControl}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-t0.Recv(0):
		if got.Type != MsgControl {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP reply not delivered")
	}
}

func TestTCPTransportLocalSend(t *testing.T) {
	tr, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 0, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-tr.Recv(0):
		if string(m.Payload) != "x" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("local message not delivered")
	}
	if tr.Recv(1) != nil {
		t.Error("Recv of foreign node returned a channel")
	}
}

func TestTCPTransportErrors(t *testing.T) {
	if _, err := NewTCPTransport(0, map[tx.NodeID]string{1: "127.0.0.1:0"}); err == nil {
		t.Fatal("missing self address accepted")
	}
	tr, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
	tr.Close()
	if err := tr.Send(Message{From: 0, To: 0}); err == nil {
		t.Fatal("send after close succeeded")
	}
	tr.Close() // double close safe
}

func TestTCPTransportManyMessages(t *testing.T) {
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, _ := NewTCPTransport(0, addrs)
	defer t0.Close()
	addrs[0] = t0.Addr()
	t1, _ := NewTCPTransport(1, addrs)
	defer t1.Close()
	t0.SetAddr(1, t1.Addr())

	const n = 1000
	go func() {
		for i := 0; i < n; i++ {
			t0.Send(Message{From: 0, To: 1, Seq: uint64(i)})
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case m := <-t1.Recv(1):
			if m.Seq != uint64(i) {
				t.Fatalf("out of order at %d: got %d", i, m.Seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at message %d", i)
		}
	}
	msgs, bytes := t0.Stats().Totals()
	if msgs != n || bytes <= 0 {
		t.Errorf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func BenchmarkChanTransportSend(b *testing.B) {
	tr := NewChanTransport(nodes(2), nil)
	defer tr.Close()
	go func() {
		for range tr.Recv(1) {
		}
	}()
	m := Message{From: 0, To: 1, Payload: make([]byte, 128)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPTransportRoundTrip(b *testing.B) {
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, _ := NewTCPTransport(0, addrs)
	defer t0.Close()
	addrs[0] = t0.Addr()
	t1, _ := NewTCPTransport(1, addrs)
	defer t1.Close()
	t0.SetAddr(1, t1.Addr())
	t1.SetAddr(0, t0.Addr())
	m := Message{From: 0, To: 1, Records: []Record{{Key: 1, Value: make([]byte, 1024)}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t0.Send(m); err != nil {
			b.Fatal(err)
		}
		<-t1.Recv(1)
		if err := t1.Send(Message{From: 1, To: 0}); err != nil {
			b.Fatal(err)
		}
		<-t0.Recv(0)
	}
}

func ExampleUniformLatency() {
	lm := UniformLatency(100*time.Microsecond, 1.25e9) // ~10 GbE
	fmt.Println(lm(0, 1, 1250) > 100*time.Microsecond)
	// Output: true
}
