package network

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/clock"
	"hermes/internal/tx"
)

// Transport moves messages between nodes. Implementations must preserve
// per-sender-receiver FIFO order (the protocols assume ordered links, as
// TCP provides) and must be safe for concurrent Send.
type Transport interface {
	// Send enqueues m for delivery to m.To. It returns an error only if
	// the destination does not exist or the transport is closed; delivery
	// itself is asynchronous.
	Send(m Message) error
	// Recv returns the delivery channel for node. The same channel is
	// returned on every call.
	Recv(node tx.NodeID) <-chan Message
	// Close shuts the transport down and closes all delivery channels.
	Close()
}

// Stats accumulates transport-level accounting. All methods are safe for
// concurrent use.
type Stats struct {
	messages atomic.Int64
	bytes    atomic.Int64
}

// Count records one message of size bytes.
func (s *Stats) Count(bytes int) {
	s.messages.Add(1)
	s.bytes.Add(int64(bytes))
}

// Totals returns cumulative messages and bytes.
func (s *Stats) Totals() (messages, bytes int64) {
	return s.messages.Load(), s.bytes.Load()
}

// LatencyModel computes the one-way delivery delay for a message of size
// bytes from one node to another. A nil model means zero delay.
type LatencyModel func(from, to tx.NodeID, bytes int) time.Duration

// UniformLatency returns a model with a fixed propagation delay plus a
// bandwidth term (bytesPerSecond ≤ 0 disables the bandwidth term). It
// approximates the paper's 10 GbE LAN when configured with, e.g.,
// 100 µs base and 1.25 GB/s.
func UniformLatency(base time.Duration, bytesPerSecond float64) LatencyModel {
	return func(_, _ tx.NodeID, bytes int) time.Duration {
		d := base
		if bytesPerSecond > 0 {
			d += time.Duration(float64(bytes) / bytesPerSecond * float64(time.Second))
		}
		return d
	}
}

// link is a FIFO pipe between one (from,to) pair with delayed delivery.
// Delivery is pipelined: each message's due time is stamped at Send, so a
// 500µs latency delays every message by 500µs without capping the link's
// throughput at 1/latency (messages in flight overlap, as on a real
// network).
type link struct {
	ch chan timedMessage
}

type timedMessage struct {
	m   Message
	due time.Time
}

// ChanTransport is the in-process transport used by the emulated cluster:
// every node pair gets an ordered link whose delivery goroutine injects the
// latency model's delay. Local sends (from == to) bypass the link and are
// delivered immediately without being counted as network traffic.
type ChanTransport struct {
	// sendMu is held shared for the full duration of every Send and
	// exclusively by Close, so Close can never close a link channel while
	// a Send is mid-enqueue.
	sendMu sync.RWMutex
	closed bool

	mapMu   sync.Mutex
	inboxes map[tx.NodeID]chan Message
	links   map[[2]tx.NodeID]*link

	latency LatencyModel
	clk     clock.Clock
	stats   Stats
	wg      sync.WaitGroup
}

// NewChanTransport creates a transport for the given nodes. latency may be
// nil for immediate delivery.
func NewChanTransport(nodes []tx.NodeID, latency LatencyModel) *ChanTransport {
	return NewChanTransportClock(nodes, latency, clock.Real{})
}

// NewChanTransportClock is NewChanTransport with an injected time source:
// delivery due-times are stamped and waited on through clk, so tests can
// drive the latency model with a clock.Manual instead of real sleeps.
func NewChanTransportClock(nodes []tx.NodeID, latency LatencyModel, clk clock.Clock) *ChanTransport {
	if clk == nil {
		clk = clock.Real{}
	}
	t := &ChanTransport{
		inboxes: make(map[tx.NodeID]chan Message, len(nodes)),
		links:   make(map[[2]tx.NodeID]*link),
		latency: latency,
		clk:     clk,
	}
	for _, n := range nodes {
		t.inboxes[n] = make(chan Message, 4096)
	}
	return t
}

// AddNode registers a new node (dynamic provisioning / scale-out).
// Adding an existing node is a no-op.
func (t *ChanTransport) AddNode(n tx.NodeID) {
	t.mapMu.Lock()
	defer t.mapMu.Unlock()
	if _, ok := t.inboxes[n]; !ok {
		t.inboxes[n] = make(chan Message, 4096)
	}
}

// Stats returns the transport's accounting.
func (t *ChanTransport) Stats() *Stats { return &t.stats }

// Send implements Transport.
func (t *ChanTransport) Send(m Message) error {
	t.sendMu.RLock()
	defer t.sendMu.RUnlock()
	if t.closed {
		return fmt.Errorf("network: transport closed")
	}
	t.mapMu.Lock()
	inbox, ok := t.inboxes[m.To]
	t.mapMu.Unlock()
	if !ok {
		return fmt.Errorf("network: unknown node %d", m.To)
	}
	if m.From == m.To {
		inbox <- m
		return nil
	}
	t.stats.Count(m.WireSize())
	lk := t.getLink(m.From, m.To, inbox)
	tm := timedMessage{m: m}
	if t.latency != nil {
		if d := t.latency(m.From, m.To, m.WireSize()); d > 0 {
			tm.due = t.clk.Now().Add(d)
		}
	}
	lk.ch <- tm
	return nil
}

// getLink returns the ordered link for (from,to), starting its delivery
// goroutine on first use.
func (t *ChanTransport) getLink(from, to tx.NodeID, inbox chan Message) *link {
	key := [2]tx.NodeID{from, to}
	t.mapMu.Lock()
	defer t.mapMu.Unlock()
	if lk, ok := t.links[key]; ok {
		return lk
	}
	lk := &link{ch: make(chan timedMessage, 4096)}
	t.links[key] = lk
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for tm := range lk.ch {
			if !tm.due.IsZero() {
				for {
					d := tm.due.Sub(t.clk.Now())
					if d <= 0 {
						break
					}
					t.clk.Sleep(d)
				}
			}
			inbox <- tm.m
		}
	}()
	return lk
}

// Recv implements Transport. Recv of an unknown node returns a nil channel
// (which blocks forever), surfacing wiring bugs fast in tests.
func (t *ChanTransport) Recv(node tx.NodeID) <-chan Message {
	t.mapMu.Lock()
	defer t.mapMu.Unlock()
	return t.inboxes[node]
}

// Close implements Transport. It stops link goroutines and closes all
// inboxes; Send after Close returns an error.
func (t *ChanTransport) Close() {
	t.sendMu.Lock()
	if t.closed {
		t.sendMu.Unlock()
		return
	}
	t.closed = true
	t.sendMu.Unlock()

	t.mapMu.Lock()
	for _, lk := range t.links {
		close(lk.ch)
	}
	inboxes := t.inboxes
	t.mapMu.Unlock()

	t.wg.Wait()
	for _, ch := range inboxes {
		close(ch)
	}
}
