package network

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/leaktest"
	"hermes/internal/tx"
)

// lossyInner wraps a ChanTransport with a deterministic drop/duplicate
// pattern on sequenced cross-node messages: every 3rd send is dropped,
// every 5th surviving send is duplicated. Acks are spared drops only by
// chance — the protocol must tolerate lost acks too.
type lossyInner struct {
	*ChanTransport
	n atomic.Int64
}

func (l *lossyInner) Send(m Message) error {
	if m.From == m.To || m.Link == 0 && m.Type != MsgLinkAck {
		return l.ChanTransport.Send(m)
	}
	k := l.n.Add(1)
	if k%3 == 0 {
		return nil // dropped on the floor
	}
	if k%5 == 0 {
		_ = l.ChanTransport.Send(m) // duplicated
	}
	return l.ChanTransport.Send(m)
}

func reliablePair(t *testing.T, lossy bool) (*Reliable, func()) {
	t.Helper()
	nodes := []tx.NodeID{0, 1}
	base := NewChanTransport(nodes, nil)
	var inner Transport = base
	if lossy {
		inner = &lossyInner{ChanTransport: base}
	}
	r := NewReliable(inner, nodes)
	return r, r.Close
}

func TestReliableLossyLinkDeliversExactlyOnceInOrder(t *testing.T) {
	defer leaktest.Check(t)()
	r, closeR := reliablePair(t, true)
	defer closeR()

	const total = 200
	for i := 0; i < total; i++ {
		if err := r.Send(Message{
			From: 0, To: 1, Type: MsgRecordPush, Txn: tx.TxnID(i + 1),
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	inbox := r.Recv(1)
	for i := 0; i < total; i++ {
		select {
		case m := <-inbox:
			if got, want := m.Txn, tx.TxnID(i+1); got != want {
				t.Fatalf("message %d: got txn %d, want %d (order violated)", i, got, want)
			}
			if got, want := m.Link, uint64(i+1); got != want {
				t.Fatalf("message %d: got link seq %d, want %d", i, got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("message %d never delivered despite retransmission", i)
		}
	}
	select {
	case m := <-inbox:
		t.Fatalf("unexpected extra delivery: %+v", m)
	case <-time.After(200 * time.Millisecond):
	}
	st := r.Stats()
	if st.Retransmits == 0 {
		t.Fatal("lossy link produced no retransmissions")
	}
	if st.DupsDropped == 0 {
		t.Fatal("duplicating link produced no dropped duplicates")
	}
	if got := r.Delivered(1); got != total {
		t.Fatalf("Delivered(1) = %d, want %d", got, total)
	}
}

func TestReliablePauseRewindResumeRedelivers(t *testing.T) {
	defer leaktest.Check(t)()
	r, closeR := reliablePair(t, false)
	defer closeR()

	inbox := r.Recv(1)
	recv := func() Message {
		t.Helper()
		select {
		case m := <-inbox:
			return m
		case <-time.After(5 * time.Second):
			t.Fatal("delivery timed out")
			return Message{}
		}
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := r.Send(Message{From: 0, To: 1, Type: MsgRecordPush, Txn: tx.TxnID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		recv()
	}
	if got := r.Delivered(1); got != total {
		t.Fatalf("Delivered(1) = %d, want %d", got, total)
	}

	// Crash window: pause, send more input (logged, not fed), rewind to a
	// mid-stream watermark, resume — the tail from the watermark on is
	// re-received in order, then the new input follows.
	r.Pause(1)
	for i := total; i < total+3; i++ {
		if err := r.Send(Message{From: 0, To: 1, Type: MsgRecordPush, Txn: tx.TxnID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	const watermark = 5
	if err := r.Rewind(1, watermark); err != nil {
		t.Fatal(err)
	}
	r.Resume(1)
	for i := watermark; i < total+3; i++ {
		if got, want := recv().Txn, tx.TxnID(i+1); got != want {
			t.Fatalf("redelivery: got txn %d, want %d", got, want)
		}
	}
	if got := r.Delivered(1); got != total+3 {
		t.Fatalf("Delivered(1) after catch-up = %d, want %d", got, total+3)
	}
}

func TestReliableTruncateDeliveredBoundsRewind(t *testing.T) {
	defer leaktest.Check(t)()
	r, closeR := reliablePair(t, false)
	defer closeR()

	inbox := r.Recv(1)
	const total = 8
	for i := 0; i < total; i++ {
		if err := r.Send(Message{From: 0, To: 1, Type: MsgRecordPush, Txn: tx.TxnID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		select {
		case <-inbox:
		case <-time.After(5 * time.Second):
			t.Fatal("delivery timed out")
		}
	}
	r.TruncateDelivered(1, 6)
	r.Pause(1)
	// Rewinding below the truncation base would silently skip the four
	// dropped messages — the replay would be incomplete, which for a
	// restarted node means divergent state. It must fail loudly instead.
	err := r.Rewind(1, 2)
	if err == nil {
		t.Fatal("Rewind below the truncation base succeeded; replay would silently skip truncated messages")
	}
	for _, want := range []string{"truncated at 6", "skip 4 messages"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Rewind error %q does not mention %q", err, want)
		}
	}
	// A rewind at (or above) the truncation base is still fine.
	if err := r.Rewind(1, 6); err != nil {
		t.Fatal(err)
	}
	r.Resume(1)
	for i := 6; i < total; i++ {
		select {
		case m := <-inbox:
			if got, want := m.Txn, tx.TxnID(i+1); got != want {
				t.Fatalf("got txn %d, want %d (truncation base not honored)", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("redelivery timed out")
		}
	}
	select {
	case m := <-inbox:
		t.Fatalf("unexpected delivery %+v after truncated redelivery", m)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestReliableRewindGuards(t *testing.T) {
	defer leaktest.Check(t)()
	r, closeR := reliablePair(t, false)
	defer closeR()

	// Rewinding a destination that was never paused must fail loudly: the
	// feeder would race the rewound cursor and replay messages into a node
	// that is still consuming live traffic.
	err := r.Rewind(1, 0)
	if err == nil {
		t.Fatal("Rewind of a running destination succeeded")
	}
	if !strings.Contains(err.Error(), "not paused") {
		t.Fatalf("Rewind error %q does not say the destination is not paused", err)
	}
	// Unknown destinations are reported too, pause state notwithstanding.
	if err := r.Rewind(99, 0); err == nil {
		t.Fatal("Rewind of an unknown destination succeeded")
	} else if !strings.Contains(err.Error(), "unknown destination 99") {
		t.Fatalf("Rewind error %q does not name the unknown destination", err)
	}
}

func TestReliableCloseWhilePausedAndBlocked(t *testing.T) {
	defer leaktest.Check(t)()
	r, _ := reliablePair(t, false)
	// Undrained feed (no consumer), one paused destination, pending
	// unacked traffic to a node that never acks back through a dead
	// pump — Close must still terminate everything.
	for i := 0; i < 4; i++ {
		if err := r.Send(Message{From: 0, To: 1, Type: MsgRecordPush, Txn: tx.TxnID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	r.Pause(1)
	done := make(chan struct{})
	go func() {
		r.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	if err := r.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("Send after Close should error")
	}
}

func TestReliablePassThroughLocalAndUnsequenced(t *testing.T) {
	defer leaktest.Check(t)()
	nodes := []tx.NodeID{0, 1}
	base := NewChanTransport(nodes, nil)
	r := NewReliable(base, nodes)
	defer r.Close()

	// Local sends bypass sequencing but still arrive via the feeder.
	if err := r.Send(Message{From: 1, To: 1, Type: MsgControl, Txn: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-r.Recv(1):
		if m.Txn != 7 || m.Link != 0 {
			t.Fatalf("local message mangled: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("local delivery timed out")
	}
	// A sender outside the wrapper (unsequenced cross-node message
	// injected straight into the base transport) is delivered as-is.
	if err := base.Send(Message{From: 0, To: 1, Type: MsgControl, Txn: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-r.Recv(1):
		if m.Txn != 9 || m.Link != 0 {
			t.Fatalf("unsequenced message mangled: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unsequenced delivery timed out")
	}
}

func TestReliableConcurrentSenders(t *testing.T) {
	defer leaktest.Check(t)()
	nodes := []tx.NodeID{0, 1, 2}
	base := NewChanTransport(nodes, nil)
	r := NewReliable(&lossyInner{ChanTransport: base}, nodes)
	defer r.Close()

	const per = 50
	for _, from := range []tx.NodeID{0, 2} {
		from := from
		go func() {
			for i := 0; i < per; i++ {
				_ = r.Send(Message{From: from, To: 1, Type: MsgRecordPush,
					Txn: tx.TxnID(i + 1), Seq: uint64(from)})
			}
		}()
	}
	// Per-sender FIFO must hold even with the two streams interleaving.
	nextWant := map[tx.NodeID]tx.TxnID{0: 1, 2: 1}
	for got := 0; got < 2*per; got++ {
		select {
		case m := <-r.Recv(1):
			if want := nextWant[m.From]; m.Txn != want {
				t.Fatalf("sender %d: got txn %d, want %d", m.From, m.Txn, want)
			}
			nextWant[m.From]++
		case <-time.After(10 * time.Second):
			t.Fatalf("delivery %d timed out", got)
		}
	}
}

func TestReliableStatsString(t *testing.T) {
	// MsgLinkAck must render for failure reports.
	if got := MsgLinkAck.String(); got != "LinkAck" {
		t.Fatalf("MsgLinkAck.String() = %q", got)
	}
	_ = fmt.Sprintf("%+v", ReliableStats{})
}

// TestRetransmitCapClampedToBase: an explicitly configured cap below the
// base is clamped up to the base (the cap bounds backoff and cannot sit
// under the starting interval) — never silently replaced by the in-process
// default.
func TestRetransmitCapClampedToBase(t *testing.T) {
	defer leaktest.Check(t)()
	nodes := []tx.NodeID{0, 1}
	tr := NewChanTransport(nodes, nil)
	r := NewReliableWith(tr, ReliableOpts{
		RecvFor:        nodes,
		SendTo:         nodes,
		RetransmitBase: 100 * time.Millisecond,
		RetransmitCap:  50 * time.Millisecond,
	})
	defer r.Close()
	if r.rtBase != 100*time.Millisecond || r.rtCap != 100*time.Millisecond {
		t.Fatalf("base/cap = %v/%v, want explicit cap below base clamped to base", r.rtBase, r.rtCap)
	}
}
