package network

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/tx"
)

// Retransmission pacing: the first retry waits retransmitBase, then the
// interval doubles per silent round up to retransmitCap. The base is a few
// link round-trips at the emulation's latency scale, so a healthy link is
// never retransmitted into.
const (
	retransmitBase = 2 * time.Millisecond
	retransmitCap  = 64 * time.Millisecond
)

// ReliableStats reports how hard the reliable layer had to work.
type ReliableStats struct {
	// Retransmits counts messages re-sent by the retransmit loops.
	Retransmits int64
	// DupsDropped counts received messages discarded as duplicates.
	DupsDropped int64
	// Acks counts cumulative link acknowledgements sent.
	Acks int64
}

// Reliable provides the Transport contract — per-link FIFO order, no loss,
// no duplication — on top of an inner transport that may drop or duplicate
// messages (the chaos wrapper's DropProb/DupProb faults, a flaky socket).
// Mechanism, per (from,to) link: the sender stamps each message with a
// dense sequence number (Message.Link), buffers it until acknowledged, and
// retransmits the unacknowledged window with capped exponential backoff;
// the receiver delivers in sequence, buffers the future, discards
// duplicates, and returns cumulative MsgLinkAck acknowledgements (which may
// themselves be lost or duplicated — the protocol only needs them to
// eventually arrive).
//
// Reliable additionally keeps a per-destination delivery log: every message
// is appended to its destination's log before a feeder goroutine hands it
// to the consumer, and the log survives the consumer. This is what makes
// live node restart possible (§4.3): the delivery log is the node's durable
// totally-ordered input record — like the paper's command log, but covering
// record pushes and write-backs too — so a restarted node catches up by
// rewinding its cursor to the last checkpoint's watermark (Delivered) and
// re-receiving history, while Pause/Resume model the crash window. The
// layer itself is modeled as durable (it keeps acking and logging while the
// node is down), exactly as the paper assumes of its logging tier.
type Reliable struct {
	inner Transport

	mu     sync.Mutex
	sends  map[[2]tx.NodeID]*sendLink
	closed bool

	// dests is built once at construction and never mutated after.
	dests map[tx.NodeID]*destState

	// seqTo is the set of destinations sends are sequenced to. In-process
	// clusters use one Reliable for every node, so it equals the dests set;
	// a cluster process receives only for itself but must still sequence
	// its sends to every peer, so the two sets diverge there.
	seqTo map[tx.NodeID]bool

	// inc is this sender's incarnation, stamped on every sequenced send.
	// See Message.Inc. Immutable after construction.
	inc uint64

	// rtBase/rtCap pace the retransmit loops (see ReliableOpts). Immutable
	// after construction.
	rtBase time.Duration
	rtCap  time.Duration

	quit chan struct{}
	wg   sync.WaitGroup

	retransmits atomic.Int64
	dupDropped  atomic.Int64
	acks        atomic.Int64
}

// sendLink is the sender half of one (from,to) link.
type sendLink struct {
	mu      sync.Mutex
	nextSeq uint64 // last assigned sequence (first message gets 1)
	acked   uint64 // highest cumulative ack received
	unacked []unackedMsg
	kick    chan struct{} // wakes the retransmit loop when work appears
}

// unackedMsg is one in-flight message plus its last transmission time. The
// retransmit loop resends only messages that have aged past the current
// backoff: when the receiver gates acks behind a group-commit fsync
// (Journal.AfterDurable), the whole window is legitimately unacked for a
// few milliseconds at a time, and resending fresh frames on every silent
// round turns that ack latency into a duplicate storm that costs more CPU
// than the fsync it is waiting for.
type unackedMsg struct {
	m      Message
	sentAt time.Time
}

// recvLink is the receiver half of one (from,to) link. It is owned by the
// destination's pump goroutine, so it needs no lock.
type recvLink struct {
	inc      uint64 // sender incarnation the link numbering belongs to
	expected uint64 // sequence of the next in-order message
	future   map[uint64]Message
}

// destState is one destination's delivery log and consumer feed.
type destState struct {
	node tx.NodeID
	recv map[tx.NodeID]*recvLink // sender -> dedup state (pump-owned)

	mu       sync.Mutex
	log      []Message
	base     uint64 // absolute position of log[0] (advances on truncation)
	next     uint64 // absolute position of the next message to hand out
	gen      uint64 // bumped by Rewind so a racing handoff can't advance next
	paused   bool
	pauseSig chan struct{} // closed while paused; fresh channel when running
	notify   chan struct{} // cap-1 feeder kick
	out      chan Message  // unbuffered consumer channel (Recv)

	// journal, when set, persists each accepted message before it becomes
	// acknowledgeable. Called from the pump goroutine only, in delivery
	// order, *before* the message is appended to the in-memory log — so by
	// the time the peer sees an ack, the message is on disk and a process
	// crash cannot lose acknowledged input.
	journal func(Message)

	// ackGate, when set, defers each ack send until the journal's
	// durability promise covers the acked frames (Journal.AfterDurable).
	// Under group commit this is what turns "journaled" into "fsynced
	// before the peer may forget the message".
	ackGate func(func())
}

// NewReliable wraps inner with reliable delivery for the given nodes.
// Messages to destinations outside the set pass through unsequenced.
func NewReliable(inner Transport, nodes []tx.NodeID) *Reliable {
	return NewReliableWith(inner, ReliableOpts{RecvFor: nodes, SendTo: nodes})
}

// ReliableOpts configures NewReliableWith beyond the symmetric in-process
// default.
type ReliableOpts struct {
	// RecvFor lists the destinations whose inboxes this layer consumes and
	// delivers for (one per in-process node; just the local node in a
	// cluster process).
	RecvFor []tx.NodeID
	// SendTo lists the peers sends are sequenced and retransmitted to.
	// Sends to other destinations pass through unsequenced.
	SendTo []tx.NodeID
	// Incarnation is stamped on every sequenced send (see Message.Inc).
	// A cluster process bumps it on each restart; in-process it stays 0.
	Incarnation uint64
	// Journal, when set, persists each accepted message for the RecvFor
	// destinations before it is acknowledged.
	Journal func(Message)
	// JournalFor, when set, supplies a per-destination journal sink (may
	// return nil for destinations without one). Overrides Journal.
	JournalFor func(tx.NodeID) func(Message)
	// AckGate, when set, routes every ack send through the journal's
	// durability gate (Journal.AfterDurable): the ack closure runs only
	// once the frames it acknowledges are durable under the journal's
	// fsync policy.
	AckGate func(func())
	// AckGateFor is the per-destination form of AckGate (may return nil).
	// Overrides AckGate.
	AckGateFor func(tx.NodeID) func(func())
	// Floors seeds per-sender dedup watermarks below any journaled
	// history: a checkpoint records the highest (incarnation, link)
	// delivered from each sender, and frames rotated out of the journal
	// must still be dropped as duplicates when peers retransmit them.
	// Without it, a restarted node whose journal holds no frames from a
	// sender would reset that link to expected=1 and park every live
	// retransmit in the future buffer — a permanent stall.
	Floors map[tx.NodeID]LinkFloor
	// Recovered preloads a RecvFor destination's delivery log with its
	// journaled history: the feeder replays it to the consumer from the
	// start, and per-sender dedup watermarks are initialized to the highest
	// journaled (incarnation, link) so live retransmissions of already
	// journaled messages are dropped rather than re-delivered out of place.
	Recovered []Message
	// RetransmitBase/RetransmitCap override the retransmit pacing (zero =
	// the in-process defaults, a few milliseconds). The defaults assume
	// near-zero delivery latency; a real TCP cluster under load sees ack
	// round trips well past them — every false stall then resends in-flight
	// frames the receiver will just dedup — so cluster processes pass a
	// base comfortably above their steady-state ack latency. A cap below
	// the effective base is clamped up to it (the cap bounds backoff and
	// cannot precede the starting interval).
	RetransmitBase time.Duration
	RetransmitCap  time.Duration
}

// NewReliableWith wraps inner with reliable delivery under explicit
// receive/send sets, an incarnation, and optional journaling/recovery.
func NewReliableWith(inner Transport, o ReliableOpts) *Reliable {
	r := &Reliable{
		inner: inner,
		sends: make(map[[2]tx.NodeID]*sendLink),
		dests: make(map[tx.NodeID]*destState, len(o.RecvFor)),
		seqTo: make(map[tx.NodeID]bool, len(o.SendTo)),
		inc:    o.Incarnation,
		rtBase: o.RetransmitBase,
		rtCap:  o.RetransmitCap,
		quit:   make(chan struct{}),
	}
	if r.rtBase <= 0 {
		r.rtBase = retransmitBase
	}
	if r.rtCap <= 0 {
		r.rtCap = retransmitCap
	}
	if r.rtCap < r.rtBase {
		// The cap is a ceiling on backoff and can never sit below the
		// starting interval; an explicitly configured cap under base is
		// clamped up to base (see ReliableOpts), not replaced by defaults.
		r.rtCap = r.rtBase
	}
	for _, n := range o.SendTo {
		r.seqTo[n] = true
	}
	for _, n := range o.RecvFor {
		journal, ackGate := o.Journal, o.AckGate
		if o.JournalFor != nil {
			journal = o.JournalFor(n)
		}
		if o.AckGateFor != nil {
			ackGate = o.AckGateFor(n)
		}
		ds := &destState{
			node:     n,
			recv:     make(map[tx.NodeID]*recvLink),
			pauseSig: make(chan struct{}),
			notify:   make(chan struct{}, 1),
			out:      make(chan Message),
			journal:  journal,
			ackGate:  ackGate,
		}
		// Checkpoint floors first; journaled history (below) only raises
		// them.
		for s, lf := range o.Floors {
			ds.recv[s] = &recvLink{inc: lf.Inc, expected: lf.Link + 1, future: make(map[uint64]Message)}
		}
		for _, m := range o.Recovered {
			if m.To != n {
				continue
			}
			ds.log = append(ds.log, m)
			if m.Link == 0 {
				continue
			}
			rl := ds.recv[m.From]
			if rl == nil {
				rl = &recvLink{inc: m.Inc, expected: m.Link + 1, future: make(map[uint64]Message)}
				ds.recv[m.From] = rl
				continue
			}
			switch {
			case m.Inc > rl.inc:
				rl.inc = m.Inc
				rl.expected = m.Link + 1
			case m.Inc == rl.inc && m.Link >= rl.expected:
				rl.expected = m.Link + 1
			}
		}
		r.dests[n] = ds
		r.wg.Add(2)
		go r.pumpLoop(ds)
		go r.feedLoop(ds)
	}
	return r
}

// Stats returns cumulative protocol counters.
func (r *Reliable) Stats() ReliableStats {
	return ReliableStats{
		Retransmits: r.retransmits.Load(),
		DupsDropped: r.dupDropped.Load(),
		Acks:        r.acks.Load(),
	}
}

// Depths reports the layer's current queue occupancy: Unacked is the
// total sender-side retransmission window (messages sent but not yet
// cumulatively acked) and Backlog is the total receiver-side delivery
// backlog (messages logged but not yet handed to consumers). Both are
// instantaneous gauges for telemetry, not protocol state.
func (r *Reliable) Depths() (unacked, backlog int64) {
	r.mu.Lock()
	links := make([]*sendLink, 0, len(r.sends))
	for _, sl := range r.sends {
		links = append(links, sl)
	}
	r.mu.Unlock()
	for _, sl := range links {
		sl.mu.Lock()
		unacked += int64(len(sl.unacked))
		sl.mu.Unlock()
	}
	for _, ds := range r.dests {
		ds.mu.Lock()
		backlog += int64(ds.base + uint64(len(ds.log)) - ds.next)
		ds.mu.Unlock()
	}
	return unacked, backlog
}

// Send implements Transport: it sequences m onto its link, buffers it for
// retransmission, and makes the first delivery attempt. Send never blocks
// on a slow or dead receiver beyond the inner transport's own enqueue.
func (r *Reliable) Send(m Message) error {
	if m.From == m.To {
		return r.inner.Send(m)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("network: reliable transport closed")
	}
	if !r.seqTo[m.To] {
		// Destination outside the sequenced set: stay transparent.
		r.mu.Unlock()
		return r.inner.Send(m)
	}
	key := [2]tx.NodeID{m.From, m.To}
	sl := r.sends[key]
	if sl == nil {
		sl = &sendLink{kick: make(chan struct{}, 1)}
		r.sends[key] = sl
		r.wg.Add(1)
		go r.retransmitLoop(sl)
	}
	r.mu.Unlock()

	sl.mu.Lock()
	sl.nextSeq++
	m.Link = sl.nextSeq
	m.Inc = r.inc
	sl.unacked = append(sl.unacked, unackedMsg{m: m, sentAt: time.Now()})
	sl.mu.Unlock()
	select {
	case sl.kick <- struct{}{}:
	default:
	}
	// First-attempt transmission; loss is repaired by the retransmit loop,
	// so a mid-shutdown inner error is not fatal to the caller.
	return r.inner.Send(m)
}

// retransmitLoop re-sends sl's unacknowledged window whenever a backoff
// interval passes with no ack progress.
func (r *Reliable) retransmitLoop(sl *sendLink) {
	defer r.wg.Done()
	backoff := r.rtBase
	for {
		sl.mu.Lock()
		pending := len(sl.unacked)
		ackedBefore := sl.acked
		sl.mu.Unlock()
		if pending == 0 {
			backoff = r.rtBase
			select {
			case <-sl.kick:
				continue
			case <-r.quit:
				return
			}
		}
		if !r.sleep(backoff) {
			return
		}
		var resend []Message
		sl.mu.Lock()
		if sl.acked > ackedBefore {
			// The receiver made progress while we waited: give the
			// in-flight window another round before resending.
			backoff = r.rtBase
		} else {
			// Resend only messages that have gone a full backoff without
			// an ack; fresher frames are still plausibly in flight (or
			// held behind the receiver's group-commit gate) and resending
			// them buys nothing but dedup work on the other side.
			now := time.Now()
			cutoff := now.Add(-backoff)
			for i := range sl.unacked {
				if sl.unacked[i].sentAt.Before(cutoff) {
					resend = append(resend, sl.unacked[i].m)
					sl.unacked[i].sentAt = now
				}
			}
		}
		sl.mu.Unlock()
		if len(resend) == 0 {
			continue
		}
		r.retransmits.Add(int64(len(resend)))
		for _, m := range resend {
			_ = r.inner.Send(m)
		}
		backoff *= 2
		if backoff > r.rtCap {
			backoff = r.rtCap
		}
	}
}

func (r *Reliable) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.quit:
		return false
	}
}

// pumpLoop consumes the inner transport's inbox for one destination:
// protocol traffic (acks, duplicates, gaps) is absorbed here; accepted
// messages are appended to the delivery log for the feeder.
func (r *Reliable) pumpLoop(ds *destState) {
	defer r.wg.Done()
	inbox := r.inner.Recv(ds.node)
	for {
		select {
		case <-r.quit:
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			r.handle(ds, m)
		}
	}
}

func (r *Reliable) handle(ds *destState, m Message) {
	switch {
	case m.Type == MsgLinkAck:
		// m acknowledges data we (ds.node) sent to m.From. An ack for a
		// different incarnation of us is about a previous (or future) life
		// of this process and says nothing about the current window.
		if m.Inc != r.inc {
			return
		}
		r.mu.Lock()
		sl := r.sends[[2]tx.NodeID{ds.node, m.From}]
		r.mu.Unlock()
		if sl == nil {
			return
		}
		sl.mu.Lock()
		if m.Link > sl.acked {
			sl.acked = m.Link
			i := 0
			for i < len(sl.unacked) && sl.unacked[i].m.Link <= m.Link {
				i++
			}
			if i > 0 {
				sl.unacked = append(sl.unacked[:0:0], sl.unacked[i:]...)
			}
		}
		sl.mu.Unlock()
	case m.Link == 0:
		// Unsequenced (a sender outside this wrapper): deliver in arrival
		// order.
		ds.deliver(m)
	default:
		rl := ds.recv[m.From]
		if rl == nil {
			rl = &recvLink{inc: m.Inc, expected: 1, future: make(map[uint64]Message)}
			ds.recv[m.From] = rl
		}
		if m.Inc != rl.inc {
			if m.Inc < rl.inc {
				// A straggler from the sender's previous life (a retransmit
				// in flight across its restart): its numbering is dead.
				r.dupDropped.Add(1)
				return
			}
			// The sender restarted and is replaying its deterministic sends
			// under fresh numbering. Its replayed link order need not match
			// the pre-crash order, so the old watermark is meaningless:
			// reset the link and accept the stream from 1. Re-deliveries
			// this causes are idempotent at the engine layer (mailbox puts
			// overwrite by key, completion notices are at-least-once).
			rl.inc = m.Inc
			rl.expected = 1
			rl.future = make(map[uint64]Message)
		}
		switch {
		case m.Link < rl.expected:
			r.dupDropped.Add(1)
		case m.Link > rl.expected:
			// A gap: an earlier message was lost (or is still in flight
			// behind a retransmission). Hold this one for in-order release.
			if _, dup := rl.future[m.Link]; dup {
				r.dupDropped.Add(1)
			} else {
				rl.future[m.Link] = m
			}
		default:
			ds.deliver(m)
			rl.expected++
			for {
				nm, ok := rl.future[rl.expected]
				if !ok {
					break
				}
				delete(rl.future, rl.expected)
				ds.deliver(nm)
				rl.expected++
			}
		}
		// Ack every sequenced receipt (including duplicates: the original
		// ack may have been the casualty). The send goes through the
		// durability gate: under group commit the peer learns of the
		// delivery only after the fsync covering it, so an acked frame can
		// never be lost to host death. Acks are cumulative, so delaying or
		// collapsing them is always protocol-safe.
		ack := Message{
			From: ds.node, To: m.From, Type: MsgLinkAck, Link: rl.expected - 1, Inc: rl.inc,
		}
		send := func() {
			r.acks.Add(1)
			_ = r.inner.Send(ack)
		}
		if ds.ackGate != nil {
			ds.ackGate(send)
		} else {
			send()
		}
	}
}

// deliver appends an accepted message to the delivery log and kicks the
// feeder. The journal write comes first: once deliver returns, the caller
// may ack, and an acked message must already be durable.
func (ds *destState) deliver(m Message) {
	if ds.journal != nil {
		ds.journal(m)
	}
	ds.mu.Lock()
	ds.log = append(ds.log, m)
	ds.mu.Unlock()
	select {
	case ds.notify <- struct{}{}:
	default:
	}
}

// feedLoop hands logged messages to the consumer in log order. The cursor
// advances *before* the handoff and rolls back only if a Pause aborts it:
// the unbuffered out channel means a completed send was received, so the
// watermark can never lag a consumed message — which matters, because a
// checkpoint watermark below a consumed state-bearing message would make a
// restart re-apply input the checkpoint already covers.
func (r *Reliable) feedLoop(ds *destState) {
	defer r.wg.Done()
	for {
		ds.mu.Lock()
		for ds.paused || ds.next >= ds.base+uint64(len(ds.log)) {
			ds.mu.Unlock()
			select {
			case <-ds.notify:
			case <-r.quit:
				return
			}
			ds.mu.Lock()
		}
		m := ds.log[ds.next-ds.base]
		ds.next++
		gen := ds.gen
		sig := ds.pauseSig
		ds.mu.Unlock()
		select {
		case ds.out <- m:
		case <-sig:
			// Paused mid-handoff: nobody took the message, so put the
			// cursor back — unless a Rewind already repositioned it, or a
			// checkpoint truncation already advanced the base past the
			// message (its log entry is gone; the consumer — only ever
			// the sequencer leader, whose feed stays live across a
			// checkpoint — is being killed, and the protocol re-derives
			// anything a dying leader never processed via front-end
			// retries and re-replication).
			ds.mu.Lock()
			if ds.gen == gen && ds.next > ds.base {
				ds.next--
			}
			ds.mu.Unlock()
		case <-r.quit:
			return
		}
	}
}

// Recv implements Transport. The channel is stable across calls, including
// across a Pause/Rewind/Resume cycle, so a restarted consumer reattaches to
// the same feed.
func (r *Reliable) Recv(node tx.NodeID) <-chan Message {
	ds := r.dests[node]
	if ds == nil {
		return r.inner.Recv(node)
	}
	return ds.out
}

// Delivered returns node's delivery watermark: the absolute count of
// messages handed to its consumer. Checkpoints record it; Rewind to it
// replays exactly the post-checkpoint input.
func (r *Reliable) Delivered(node tx.NodeID) uint64 {
	ds := r.dests[node]
	if ds == nil {
		return 0
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.next
}

// Pause stops feeding node's consumer (crash onset). Logging, acking, and
// retransmission continue — only the consumer handoff stops.
func (r *Reliable) Pause(node tx.NodeID) {
	ds := r.dests[node]
	if ds == nil {
		return
	}
	ds.mu.Lock()
	if !ds.paused {
		ds.paused = true
		close(ds.pauseSig)
	}
	ds.mu.Unlock()
}

// Rewind moves node's delivery cursor back to absolute position since
// (never moved forward). The destination must be paused — rewinding a live
// feed would interleave replayed and fresh messages — and since must not
// fall below the truncation base: the prefix is gone, so replaying from
// the base would silently hand the consumer a gapped suffix. Both
// conditions fail loudly instead.
func (r *Reliable) Rewind(node tx.NodeID, since uint64) error {
	ds := r.dests[node]
	if ds == nil {
		return fmt.Errorf("network: rewind: unknown destination %d", node)
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if !ds.paused {
		return fmt.Errorf("network: rewind node %d: destination is not paused", node)
	}
	if since < ds.base {
		return fmt.Errorf("network: rewind node %d to %d: log truncated at %d, replay would skip %d messages",
			node, since, ds.base, ds.base-since)
	}
	if since < ds.next {
		ds.next = since
	}
	ds.gen++
	return nil
}

// Backlog reports node's receiver-side delivery backlog: messages logged
// for it but not yet handed to its consumer. A restarted consumer has
// caught up with history once its backlog reaches zero.
func (r *Reliable) Backlog(node tx.NodeID) int64 {
	ds := r.dests[node]
	if ds == nil {
		return 0
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return int64(ds.base + uint64(len(ds.log)) - ds.next)
}

// Resume restarts node's feed after a Pause.
func (r *Reliable) Resume(node tx.NodeID) {
	ds := r.dests[node]
	if ds == nil {
		return
	}
	ds.mu.Lock()
	if ds.paused {
		ds.paused = false
		ds.pauseSig = make(chan struct{})
	}
	ds.mu.Unlock()
	select {
	case ds.notify <- struct{}{}:
	default:
	}
}

// TruncateDelivered drops node's logged messages below absolute position
// upto (clamped to the delivery watermark, so undelivered input is never
// lost). Checkpoints call it: input before the checkpoint is covered by
// the snapshot and no longer needed for replay.
func (r *Reliable) TruncateDelivered(node tx.NodeID, upto uint64) {
	ds := r.dests[node]
	if ds == nil {
		return
	}
	ds.mu.Lock()
	if upto > ds.next {
		upto = ds.next
	}
	if upto > ds.base {
		n := upto - ds.base
		ds.log = append(ds.log[:0:0], ds.log[n:]...)
		ds.base = upto
	}
	ds.mu.Unlock()
}

// Close implements Transport: it stops every goroutine, then closes the
// inner transport. Consumer channels are not closed (consumers are
// expected to stop on their own quit signal first, as the engine does).
func (r *Reliable) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.quit)
	r.wg.Wait()
	r.inner.Close()
}
