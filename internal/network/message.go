// Package network provides the cluster transport: typed messages between
// nodes, an in-process channel transport with a configurable latency model
// and byte accounting (used by the emulated experiments), and a TCP/gob
// transport demonstrating that the engine is not tied to the in-process
// loopback.
package network

import (
	"fmt"

	"hermes/internal/tx"
)

// MsgType discriminates message payloads.
type MsgType uint8

// Message types used across the system.
const (
	// MsgRecordPush carries records from an owner node to a transaction's
	// master (remote reads / data-fusion migration input).
	MsgRecordPush MsgType = iota
	// MsgReadBroadcast carries a participant's local reads to all writer
	// nodes in Calvin's multi-master scheme.
	MsgReadBroadcast
	// MsgWriteBack carries post-commit records back to their owner
	// partitions (G-Store+ and T-Part).
	MsgWriteBack
	// MsgMigrationChunk carries a chunk of cold records during live
	// migration (Squall-style background migration).
	MsgMigrationChunk
	// MsgSeqForward carries client requests from a node's sequencer
	// front-end to the total-order leader.
	MsgSeqForward
	// MsgSeqDeliver carries a totally ordered batch from the leader to
	// every node.
	MsgSeqDeliver
	// MsgSeqAck acknowledges a delivered batch (Zab-lite quorum).
	MsgSeqAck
	// MsgControl carries small control-plane notifications.
	MsgControl
	// MsgLinkAck is the reliable layer's cumulative per-link delivery
	// acknowledgement (Link carries the highest contiguously received
	// sequence). It never reaches the engine: the receiving side's pump
	// consumes it.
	MsgLinkAck
	// MsgSeqReplicate carries a sealed batch from the sequencer leader to a
	// standby sequencer. A batch is delivered to the cluster only after
	// every live standby has appended and acknowledged it.
	MsgSeqReplicate
	// MsgSeqReplicateAck acknowledges a replicated batch (Seq) back to the
	// leader that sealed it.
	MsgSeqReplicateAck
	// MsgSeqHeartbeat is the leader's liveness pulse to standby sequencers.
	MsgSeqHeartbeat
	// MsgSeqEpoch announces a sequencer leadership epoch: From is the
	// leader of Epoch. Sent by a freshly promoted standby to every node and
	// replica, and in reply to messages carrying a stale epoch.
	MsgSeqEpoch
	// MsgTxnDone notifies the front-end that submitted transaction Txn
	// that its committer finished it. Only distributed deployments use it:
	// in-process clusters complete waiters through shared memory.
	MsgTxnDone
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgRecordPush:
		return "RecordPush"
	case MsgReadBroadcast:
		return "ReadBroadcast"
	case MsgWriteBack:
		return "WriteBack"
	case MsgMigrationChunk:
		return "MigrationChunk"
	case MsgSeqForward:
		return "SeqForward"
	case MsgSeqDeliver:
		return "SeqDeliver"
	case MsgSeqAck:
		return "SeqAck"
	case MsgControl:
		return "Control"
	case MsgLinkAck:
		return "LinkAck"
	case MsgSeqReplicate:
		return "SeqReplicate"
	case MsgSeqReplicateAck:
		return "SeqReplicateAck"
	case MsgSeqHeartbeat:
		return "SeqHeartbeat"
	case MsgSeqEpoch:
		return "SeqEpoch"
	case MsgTxnDone:
		return "TxnDone"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Record is a key-value pair travelling between nodes.
type Record struct {
	Key   tx.Key
	Value []byte
}

// Message is the unit of communication between nodes.
type Message struct {
	From, To tx.NodeID
	Type     MsgType
	Txn      tx.TxnID
	Seq      uint64
	Records  []Record
	Payload  []byte

	// Epoch is the sequencer leadership epoch the message was sent under
	// (sequencer control-plane messages only; 0 before the first failover).
	// Receivers drop or bounce messages from stale epochs.
	Epoch uint64

	// Link is the reliable layer's per-(From,To)-link sequence number
	// (first message = 1; 0 = unsequenced). On MsgLinkAck it instead
	// carries the cumulative acknowledged sequence. The header estimate in
	// WireSize already covers it.
	Link uint64

	// Inc is the sender's incarnation for the reliable layer: a restarted
	// process replays its deterministic input and regenerates its sends,
	// but executor interleaving makes per-link send order nondeterministic,
	// so replayed link sequences cannot be trusted against a peer's old
	// watermark. Each process restart bumps Inc; a receiver seeing a higher
	// incarnation resets the link and accepts the replayed stream from 1
	// (deliveries are idempotent), while lower incarnations are dropped as
	// stale. Always 0 on in-process transports.
	Inc uint64

	// Batch carries a totally ordered request batch by reference on the
	// in-process transport (MsgSeqForward / MsgSeqDeliver). WireSize
	// accounts for it as if the request descriptors were serialized.
	// Cross-process transports would need a procedure codec; the emulated
	// experiments never send batches over TCP.
	Batch *tx.Batch
}

// wire overheads, approximating a compact binary framing: fixed header plus
// per-record key prefix.
const (
	headerBytes    = 32
	perRecordBytes = 12
)

// WireSize estimates the bytes this message occupies on the wire; the
// emulation's bandwidth model and the network-usage metrics (Fig. 8) use
// it.
func (m *Message) WireSize() int {
	n := headerBytes + len(m.Payload)
	for _, r := range m.Records {
		n += perRecordBytes + len(r.Value)
	}
	if m.Batch != nil {
		for _, r := range m.Batch.Txns {
			// Request id + procedure tag + 8 bytes per declared key.
			n += 16 + 8*(len(r.ReadSet())+len(r.WriteSet()))
		}
	}
	return n
}
