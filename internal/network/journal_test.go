package network

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"hermes/internal/diskio"
	"hermes/internal/tx"
)

func jmsg(i int) Message {
	return Message{
		From: 1, To: 0, Type: MsgRecordPush,
		Txn: tx.TxnID(100 + i), Seq: uint64(i),
		Link: uint64(i + 1), Inc: 1,
		Payload: []byte(fmt.Sprintf("payload-%02d", i)),
	}
}

func sameMsgs(t *testing.T, got, want []Message) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("message %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalRoundTripOSFS(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournalWith(dir, JournalOpts{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	var want []Message
	for i := 0; i < 5; i++ {
		m := jmsg(i)
		j.Append(m)
		want = append(want, m)
	}
	if j.Incarnation() != 1 {
		t.Fatalf("incarnation = %d, want 1", j.Incarnation())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournalWith(dir, JournalOpts{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	sameMsgs(t, j2.Recovered(), want)
	if j2.Incarnation() != 2 {
		t.Fatalf("incarnation = %d, want 2", j2.Incarnation())
	}
	if j2.Count() != 5 || j2.Base() != 0 {
		t.Fatalf("count/base = %d/%d, want 5/0", j2.Count(), j2.Base())
	}
	fl := j2.Floors()
	if fl[1] != (LinkFloor{Inc: 1, Link: 5}) {
		t.Fatalf("floor = %+v, want {1 5}", fl[1])
	}
}

// TestJournalTornTailEveryOffset truncates the journal at every byte offset
// inside the final frame — including inside the 4-byte length prefix and the
// 4-byte CRC — and asserts recovery keeps exactly the intact prefix with no
// quarantine: a torn tail is crash residue of an unacked frame.
func TestJournalTornTailEveryOffset(t *testing.T) {
	build := diskio.NewMemFS(diskio.FaultSpec{Seed: 1})
	j, err := OpenJournalWith("/n0", JournalOpts{FS: build, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want []Message
	for i := 0; i < 3; i++ {
		m := jmsg(i)
		j.Append(m)
		want = append(want, m)
	}
	j.Close()
	path := filepath.Join("/n0", journalFile)
	raw, err := build.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the start of the final frame.
	rep := replayJournal(raw)
	if len(rep.msgs) != 3 || rep.good != len(raw) {
		t.Fatalf("setup journal not clean: %d msgs, good %d of %d", len(rep.msgs), rep.good, len(raw))
	}
	lastStart := journalHdrLen
	for i := 0; i < 2; i++ {
		n := int(raw[lastStart+2])<<8 | int(raw[lastStart+3])
		lastStart += frameHdrLen + n
	}
	for cut := lastStart; cut < len(raw); cut++ {
		fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 2})
		fs.Install(path, raw[:cut], cut)
		jr, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		sameMsgs(t, jr.Recovered(), want[:2])
		st := jr.Stats()
		if st.Corrupt != 0 {
			t.Fatalf("cut %d: torn tail misclassified as corruption", cut)
		}
		if cut > lastStart && st.TornRecords != 1 {
			t.Fatalf("cut %d: TornRecords = %d, want 1", cut, st.TornRecords)
		}
		// The torn tail must be gone on disk: a fresh append then reopen
		// yields exactly prefix + new frame.
		extra := jmsg(9)
		jr.Append(extra)
		jr.Close()
		jr2, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		sameMsgs(t, jr2.Recovered(), append(append([]Message(nil), want[:2]...), extra))
		jr2.Close()
	}
}

// TestJournalMidFileCorruption flips one byte inside a fully synced,
// non-final frame and asserts the damage is detected, quarantined to
// journal.log.corrupt, and reported — never silently truncated.
func TestJournalMidFileCorruption(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 3})
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want []Message
	for i := 0; i < 3; i++ {
		m := jmsg(i)
		j.Append(m)
		want = append(want, m)
	}
	j.Close()
	path := filepath.Join("/n0", journalFile)
	raw, _ := fs.ReadFile(path)
	// Corrupt the payload of the middle frame.
	first := journalHdrLen
	n0 := int(raw[first+2])<<8 | int(raw[first+3])
	target := first + frameHdrLen + n0 + frameHdrLen + 3
	raw[target] ^= 0x40
	fs.Install(path, raw, len(raw))

	j2, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	sameMsgs(t, j2.Recovered(), want[:1])
	st := j2.Stats()
	if st.Corrupt != 1 || st.CorruptBytes == 0 {
		t.Fatalf("stats = %+v, want one corruption event with bytes", st)
	}
	q, err := fs.ReadFile(filepath.Join("/n0", corruptFile))
	if err != nil || len(q) != int(st.CorruptBytes) {
		t.Fatalf("quarantine file: %d bytes, err %v, want %d", len(q), err, st.CorruptBytes)
	}
}

func TestJournalBadMagicQuarantinesWholeFile(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 4})
	path := filepath.Join("/n0", journalFile)
	fs.Install(path, []byte("this is not a journal, definitely"), 33)
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(j.Recovered()) != 0 {
		t.Fatalf("recovered %d from garbage", len(j.Recovered()))
	}
	if st := j.Stats(); st.Corrupt != 1 || st.CorruptBytes != 33 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestJournalAppendRepairsShortAndTornWrites exercises the satellite fix:
// short writes loop, failed writes truncate the torn prefix and retry, and
// the resulting file is byte-clean for recovery.
func TestJournalAppendRepairsShortAndTornWrites(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 5})
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want []Message
	fs.FailNextWrite(3, nil) // short write mid-frame: WriteFull must loop
	m0 := jmsg(0)
	j.Append(m0)
	want = append(want, m0)

	fs.FailNextWrite(7, errors.New("injected torn write")) // torn: must truncate+retry
	m1 := jmsg(1)
	j.Append(m1)
	want = append(want, m1)

	st := j.Stats()
	if st.AppendRetries == 0 {
		t.Fatalf("AppendRetries = 0, want repairs recorded")
	}
	j.Close()
	j2, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	sameMsgs(t, j2.Recovered(), want)
	if st2 := j2.Stats(); st2.TornRecords != 0 || st2.Corrupt != 0 {
		t.Fatalf("repair left damage on disk: %+v", st2)
	}
}

// TestJournalGroupCommitGatesAcks asserts the batch policy's contract: an
// AfterDurable callback runs only after an fsync covering its frame
// returns, a failed fsync withholds it (and retries), and callbacks
// release in FIFO order.
func TestJournalGroupCommitGatesAcks(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 6})
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Hold the group commit back with a run of scripted fsync failures.
	for i := 0; i < 3; i++ {
		fs.FailNextSync(errors.New("injected fsync failure"), false)
	}
	var mu sync.Mutex
	var order []int
	released := make(chan struct{}, 2)
	path := filepath.Join("/n0", journalFile)
	for i := 0; i < 2; i++ {
		i := i
		j.Append(jmsg(i))
		j.AfterDurable(func() {
			if got, want := int64(fs.DurableLen(path)), func() int64 {
				j.mu.Lock()
				defer j.mu.Unlock()
				return j.size
			}(); got < want {
				t.Errorf("ack %d released before durability: durable %d < size %d", i, got, want)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			released <- struct{}{}
		})
	}
	for i := 0; i < 2; i++ {
		select {
		case <-released:
		case <-time.After(5 * time.Second):
			t.Fatal("ack never released")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(order, []int{0, 1}) {
		t.Fatalf("release order = %v, want FIFO", order)
	}
	st := j.Stats()
	if st.SyncFailures < 3 {
		t.Fatalf("SyncFailures = %d, want ≥ 3 (scripted)", st.SyncFailures)
	}
	if st.Fsyncs == 0 || st.BatchedAcks < 2 {
		t.Fatalf("stats = %+v, want a successful group commit covering both acks", st)
	}
}

// gatedFS wraps a backend so a test can hold one fsync's *result* in
// flight: the underlying sync completes, then the return is delayed until
// the test releases it — the exact window in which Rotate can swap the
// journal file under a group commit.
type syncGate struct {
	mu      sync.Mutex
	armed   bool
	entered chan struct{}
	release chan struct{}
}

type gatedFS struct {
	diskio.FS
	g *syncGate
}

func (f gatedFS) Create(path string) (diskio.File, error) {
	h, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return gatedFile{File: h, g: f.g}, nil
}

func (f gatedFS) OpenAppend(path string) (diskio.File, error) {
	h, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return gatedFile{File: h, g: f.g}, nil
}

type gatedFile struct {
	diskio.File
	g *syncGate
}

func (f gatedFile) Sync() error {
	err := f.File.Sync()
	f.g.mu.Lock()
	armed := f.g.armed
	f.g.armed = false
	f.g.mu.Unlock()
	if armed {
		f.g.entered <- struct{}{}
		<-f.g.release
	}
	return err
}

// TestJournalGroupCommitIgnoresStaleSyncAfterRotate pins the fix for a race
// between drainBatch and Rotate: a group commit fsyncs the pre-rotation
// file, Rotate swaps in a smaller rewritten file, and the stale (larger)
// byte target must be discarded — applying it would push synced past the
// new file's size and release acks for frames never fsynced there.
func TestJournalGroupCommitIgnoresStaleSyncAfterRotate(t *testing.T) {
	mem := diskio.NewMemFS(diskio.FaultSpec{Seed: 11})
	g := &syncGate{entered: make(chan struct{}, 1), release: make(chan struct{})}
	j, err := OpenJournalWith("/n0", JournalOpts{FS: gatedFS{FS: mem, g: g}, Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 3; i++ {
		j.Append(jmsg(i))
	}
	// Arm the gate and start a group commit: its fsync completes against
	// the pre-rotation file, then its result is held in flight.
	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
	ack0 := make(chan struct{})
	j.AfterDurable(func() { close(ack0) })
	<-g.entered

	// While the result is in flight, rotate everything away and append one
	// frame to the new, smaller file. The frame is volatile: the only fsync
	// issued since is the stale one against the old file.
	if err := j.Rotate(3); err != nil {
		t.Fatal(err)
	}
	j.Append(jmsg(3))
	path := filepath.Join("/n0", journalFile)
	j.mu.Lock()
	want := j.size
	j.mu.Unlock()
	ack1 := make(chan struct{})
	j.AfterDurable(func() {
		if got := int64(mem.DurableLen(path)); got < want {
			t.Errorf("ack released with %d durable bytes, want ≥ %d (stale pre-rotation sync credited to new file)", got, want)
		}
		close(ack1)
	})

	close(g.release) // deliver the stale fsync result
	for _, ch := range []chan struct{}{ack0, ack1} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("ack never released")
		}
	}
	j.mu.Lock()
	if j.synced > j.size {
		t.Errorf("synced %d > size %d: stale watermark applied to rotated file", j.synced, j.size)
	}
	j.mu.Unlock()
}

func TestJournalAlwaysSyncsEveryAppend(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 7})
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	path := filepath.Join("/n0", journalFile)
	for i := 0; i < 3; i++ {
		j.Append(jmsg(i))
		ran := false
		j.AfterDurable(func() { ran = true })
		if !ran {
			t.Fatal("AfterDurable must run inline under always")
		}
		if sz, durable := int64(0), fs.DurableLen(path); true {
			j.mu.Lock()
			sz = j.size
			j.mu.Unlock()
			if int64(durable) < sz {
				t.Fatalf("append %d not durable: %d < %d", i, durable, sz)
			}
		}
	}
	if st := j.Stats(); st.Fsyncs < 4 { // baseline + 3 appends
		t.Fatalf("Fsyncs = %d, want ≥ 4", st.Fsyncs)
	}
}

func TestJournalRotateAndRecoveredSince(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 8})
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	var all []Message
	for i := 0; i < 5; i++ {
		m := jmsg(i)
		j.Append(m)
		all = append(all, m)
	}
	if err := j.Rotate(3); err != nil {
		t.Fatal(err)
	}
	if j.Base() != 3 || j.Count() != 5 {
		t.Fatalf("base/count = %d/%d, want 3/5", j.Base(), j.Count())
	}
	// Appends after rotation extend the absolute numbering.
	m5 := jmsg(5)
	j.Append(m5)
	all = append(all, m5)
	j.Close()

	j2, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	sameMsgs(t, j2.Recovered(), all[3:])
	got, err := j2.RecoveredSince(4)
	if err != nil {
		t.Fatal(err)
	}
	sameMsgs(t, got, all[4:])
	if _, err := j2.RecoveredSince(2); err == nil {
		t.Fatal("RecoveredSince below rotation base must fail loudly")
	}
	if _, err := j2.RecoveredSince(7); err == nil {
		t.Fatal("RecoveredSince beyond journaled frames must fail loudly")
	}
	// Floors survive rotation through the frames still present, and
	// checkpoint-seeded floors survive an empty journal.
	if fl := j2.Floors(); fl[1] != (LinkFloor{Inc: 1, Link: 6}) {
		t.Fatalf("floor = %+v, want {1 6}", fl[1])
	}
}

func TestJournalFloorsSeededFromCheckpoint(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 9})
	seed := map[tx.NodeID]LinkFloor{2: {Inc: 3, Link: 41}}
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncBatch, Floors: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// A journaled frame from the same sender at a lower (inc, link) must
	// not regress the floor; a higher one must advance it.
	j.Append(Message{From: 2, To: 0, Type: MsgRecordPush, Link: 7, Inc: 3})
	if fl := j.Floors(); fl[2] != (LinkFloor{Inc: 3, Link: 41}) {
		t.Fatalf("floor regressed: %+v", fl[2])
	}
	j.Append(Message{From: 2, To: 0, Type: MsgRecordPush, Link: 42, Inc: 3})
	if fl := j.Floors(); fl[2] != (LinkFloor{Inc: 3, Link: 42}) {
		t.Fatalf("floor = %+v, want {3 42}", fl[2])
	}
}

func TestJournalIncarnationMonotonicAcrossCrash(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 10})
	j, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Crash mid-bump: the atomic write sequence fails before committing.
	fs.FailNextSync(errors.New("fsync died"), false)
	if _, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways}); err == nil {
		t.Fatal("open with failed incarnation commit must error")
	}
	fs.Crash()
	j2, err := OpenJournalWith("/n0", JournalOpts{FS: fs, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Incarnation() != 2 {
		t.Fatalf("incarnation = %d, want 2 (strictly above last committed life)", j2.Incarnation())
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, ok := range []string{"", "none", "batch", "always"} {
		if _, err := ParseSyncPolicy(ok); err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParseSyncPolicy("everysooften"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}
