package network

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"hermes/internal/tx"
)

// TCPTransport is a real-socket implementation of Transport for a single
// node: it listens on its own address and lazily dials peers, framing
// messages with encoding/gob. A cluster deployment runs one TCPTransport
// per process; the in-process experiments use ChanTransport instead, but
// integration tests run the engine over TCP to show nothing depends on the
// loopback shortcut.
type TCPTransport struct {
	self  tx.NodeID
	addrs map[tx.NodeID]string

	ln    net.Listener
	inbox chan Message
	quit  chan struct{}
	stats Stats

	mu       sync.Mutex
	conns    map[tx.NodeID]*tcpConn
	accepted []net.Conn
	closed   bool
	wg       sync.WaitGroup
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// NewTCPTransport starts a transport for node self, listening on
// addrs[self]. addrs must contain every node that will ever be dialed.
func NewTCPTransport(self tx.NodeID, addrs map[tx.NodeID]string) (*TCPTransport, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("network: no address for self node %d", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		self:  self,
		addrs: addrs,
		ln:    ln,
		inbox: make(chan Message, 4096),
		quit:  make(chan struct{}),
		conns: make(map[tx.NodeID]*tcpConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the transport is listening on (useful when the
// configured address used port 0).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.quit:
			return
		}
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(m Message) error {
	if m.To == t.self {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return fmt.Errorf("network: transport closed")
		}
		t.inbox <- m
		return nil
	}
	conn, err := t.dial(m.To)
	if err != nil {
		return err
	}
	t.stats.Count(m.WireSize())
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := conn.enc.Encode(&m); err != nil {
		// Drop the broken connection so a later Send re-dials.
		t.mu.Lock()
		if t.conns[m.To] == conn {
			delete(t.conns, m.To)
		}
		t.mu.Unlock()
		conn.c.Close()
		return fmt.Errorf("network: send to node %d: %w", m.To, err)
	}
	return nil
}

func (t *TCPTransport) dial(node tx.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("network: transport closed")
	}
	if c, ok := t.conns[node]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[node]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: unknown node %d", node)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial node %d at %s: %w", node, addr, err)
	}
	conn := &tcpConn{c: raw, enc: gob.NewEncoder(raw)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		raw.Close()
		return nil, fmt.Errorf("network: transport closed")
	}
	if existing, ok := t.conns[node]; ok {
		raw.Close() // lost the dial race; reuse the winner
		return existing, nil
	}
	t.conns[node] = conn
	return conn, nil
}

// SetAddr registers (or updates) a peer address; used when nodes are added
// dynamically.
func (t *TCPTransport) SetAddr(node tx.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[node] = addr
}

// Stats returns the transport's accounting.
func (t *TCPTransport) Stats() *Stats { return &t.stats }

// Recv implements Transport. Only the transport's own node has an inbox.
func (t *TCPTransport) Recv(node tx.NodeID) <-chan Message {
	if node != t.self {
		return nil
	}
	return t.inbox
}

// Close implements Transport.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = map[tx.NodeID]*tcpConn{}
	accepted := t.accepted
	t.accepted = nil
	t.mu.Unlock()

	close(t.quit)
	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
}
