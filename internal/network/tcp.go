package network

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hermes/internal/tx"
)

// Dial-retry and send-deadline defaults. A peer that is restarting should
// be reachable again within the retry budget; a peer that is truly dead
// must not wedge a sender forever mid-Encode.
const (
	defaultDialAttempts   = 6
	defaultDialBackoff    = 10 * time.Millisecond
	defaultDialBackoffCap = 320 * time.Millisecond
	defaultSendTimeout    = 10 * time.Second
)

// TCPTransport is a real-socket implementation of Transport for a single
// node: it listens on its own address and lazily dials peers, framing
// messages with encoding/gob. A cluster deployment runs one TCPTransport
// per process; the in-process experiments use ChanTransport instead, but
// integration tests run the engine over TCP to show nothing depends on the
// loopback shortcut.
type TCPTransport struct {
	self  tx.NodeID
	addrs map[tx.NodeID]string

	ln    net.Listener
	inbox chan Message
	quit  chan struct{}
	stats Stats

	mu       sync.Mutex
	conns    map[tx.NodeID]*tcpConn
	accepted []net.Conn
	closed   bool
	wg       sync.WaitGroup

	dialAttempts   int
	dialBackoff    time.Duration
	dialBackoffCap time.Duration
	sendTimeout    time.Duration

	// dialSleepHook, when set (tests), observes each jittered retry wait
	// just before it is slept.
	dialSleepHook func(time.Duration)
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// NewTCPTransport starts a transport for node self, listening on
// addrs[self]. addrs must contain every node that will ever be dialed.
func NewTCPTransport(self tx.NodeID, addrs map[tx.NodeID]string) (*TCPTransport, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("network: no address for self node %d", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		self:           self,
		addrs:          addrs,
		ln:             ln,
		inbox:          make(chan Message, 4096),
		quit:           make(chan struct{}),
		conns:          make(map[tx.NodeID]*tcpConn),
		dialAttempts:   defaultDialAttempts,
		dialBackoff:    defaultDialBackoff,
		dialBackoffCap: defaultDialBackoffCap,
		sendTimeout:    defaultSendTimeout,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the transport is listening on (useful when the
// configured address used port 0).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.quit:
			return
		}
	}
}

// SetSendTimeout overrides the per-message write deadline (0 disables).
func (t *TCPTransport) SetSendTimeout(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sendTimeout = d
}

// SetDialRetry overrides the dial-retry policy: attempts tries with
// exponential backoff starting at backoff and capped at backoffCap.
// attempts < 1 means a single try.
func (t *TCPTransport) SetDialRetry(attempts int, backoff, backoffCap time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dialAttempts = attempts
	t.dialBackoff = backoff
	t.dialBackoffCap = backoffCap
}

// Send implements Transport. A broken connection is dropped and re-dialed
// once within the same call, so a peer that restarted between messages is
// reconnected transparently; the write deadline bounds how long a dead
// peer that stopped reading can stall the sender.
func (t *TCPTransport) Send(m Message) error {
	if m.To == t.self {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return fmt.Errorf("network: transport closed")
		}
		t.inbox <- m
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := t.dial(m.To)
		if err != nil {
			return err
		}
		t.mu.Lock()
		timeout := t.sendTimeout
		t.mu.Unlock()
		conn.mu.Lock()
		if timeout > 0 {
			conn.c.SetWriteDeadline(time.Now().Add(timeout))
		}
		err = conn.enc.Encode(&m)
		if timeout > 0 {
			conn.c.SetWriteDeadline(time.Time{})
		}
		conn.mu.Unlock()
		if err == nil {
			t.stats.Count(m.WireSize())
			return nil
		}
		// Drop the broken connection; the next loop iteration (or a later
		// Send) re-dials. A gob stream is unusable after a failed Encode,
		// so the whole connection goes.
		t.mu.Lock()
		if t.conns[m.To] == conn {
			delete(t.conns, m.To)
		}
		t.mu.Unlock()
		conn.c.Close()
		lastErr = err
	}
	return fmt.Errorf("network: send to node %d: %w", m.To, lastErr)
}

// dial returns the live connection to node, establishing one if needed.
// Failed dials are retried with capped exponential backoff: during a peer
// restart the address is briefly unreachable, and erroring out on first
// refusal would turn every peer blip into a delivery failure.
func (t *TCPTransport) dial(node tx.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("network: transport closed")
	}
	if c, ok := t.conns[node]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[node]
	attempts, backoff, maxBackoff := t.dialAttempts, t.dialBackoff, t.dialBackoffCap
	hook := t.dialSleepHook
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: unknown node %d", node)
	}
	if attempts < 1 {
		attempts = 1
	}
	var raw net.Conn
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Full backoff would make every reconnector that lost the same
			// peer at the same moment retry in lockstep and stampede the
			// restarting listener. Jitter the wait uniformly over
			// [backoff/2, backoff] so the herd spreads out while the cap
			// still bounds the worst case.
			wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			if hook != nil {
				hook(wait)
			}
			select {
			case <-time.After(wait):
			case <-t.quit:
				return nil, fmt.Errorf("network: transport closed")
			}
			if backoff *= 2; backoff > maxBackoff && maxBackoff > 0 {
				backoff = maxBackoff
			}
		}
		raw, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("network: dial node %d at %s after %d attempts: %w", node, addr, attempts, err)
	}
	conn := &tcpConn{c: raw, enc: gob.NewEncoder(raw)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		raw.Close()
		return nil, fmt.Errorf("network: transport closed")
	}
	if existing, ok := t.conns[node]; ok {
		raw.Close() // lost the dial race; reuse the winner
		return existing, nil
	}
	t.conns[node] = conn
	return conn, nil
}

// SetAddr registers (or updates) a peer address; used when nodes are added
// dynamically.
func (t *TCPTransport) SetAddr(node tx.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[node] = addr
}

// Stats returns the transport's accounting.
func (t *TCPTransport) Stats() *Stats { return &t.stats }

// Recv implements Transport. Only the transport's own node has an inbox.
func (t *TCPTransport) Recv(node tx.NodeID) <-chan Message {
	if node != t.self {
		return nil
	}
	return t.inbox
}

// Close implements Transport.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = map[tx.NodeID]*tcpConn{}
	accepted := t.accepted
	t.accepted = nil
	t.mu.Unlock()

	close(t.quit)
	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
}
