package network

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/tx"
)

// Dial-retry and send-deadline defaults. A peer that is restarting should
// be reachable again within the retry budget; a peer that is truly dead
// must not wedge a sender forever mid-Encode.
const (
	defaultDialAttempts   = 6
	defaultDialBackoff    = 10 * time.Millisecond
	defaultDialBackoffCap = 320 * time.Millisecond
	defaultSendTimeout    = 10 * time.Second
)

// Wire handshake. Every TCP connection opens with a fixed 16-byte header
// (magic, framing version, sender node id) exchanged in both directions
// before the gob stream starts, so a cluster accidentally started from
// mixed builds fails loudly at connect time instead of corrupting batches
// mid-run.
const (
	handshakeMagic = 0x48524D53 // "HRMS"
	// wireVersion is the TCP framing version. Bump it whenever the gob
	// message schema changes incompatibly.
	wireVersion             = 1
	defaultHandshakeTimeout = 3 * time.Second
	handshakeLen            = 16
)

func handshakeHeader(self tx.NodeID) [handshakeLen]byte {
	var h [handshakeLen]byte
	binary.BigEndian.PutUint32(h[0:4], handshakeMagic)
	binary.BigEndian.PutUint32(h[4:8], wireVersion)
	binary.BigEndian.PutUint64(h[8:16], uint64(int64(self)))
	return h
}

func checkHandshake(h [handshakeLen]byte) (tx.NodeID, error) {
	if m := binary.BigEndian.Uint32(h[0:4]); m != handshakeMagic {
		return 0, fmt.Errorf("bad handshake magic %#x: peer is not a compatible transport", m)
	}
	if v := binary.BigEndian.Uint32(h[4:8]); v != wireVersion {
		return 0, fmt.Errorf("wire version mismatch: peer speaks v%d, this build speaks v%d", v, wireVersion)
	}
	return tx.NodeID(int64(binary.BigEndian.Uint64(h[8:16]))), nil
}

// TCPTransport is a real-socket implementation of Transport for a single
// node: it listens on its own address and lazily dials peers, framing
// messages with encoding/gob. A cluster deployment runs one TCPTransport
// per process; the in-process experiments use ChanTransport instead, but
// integration tests run the engine over TCP to show nothing depends on the
// loopback shortcut.
type TCPTransport struct {
	self  tx.NodeID
	addrs map[tx.NodeID]string

	ln    net.Listener
	inbox chan Message
	quit  chan struct{}
	stats Stats

	mu       sync.Mutex
	conns    map[tx.NodeID]*tcpConn
	accepted []net.Conn
	closed   bool
	wg       sync.WaitGroup

	dialAttempts   int
	dialBackoff    time.Duration
	dialBackoffCap time.Duration
	sendTimeout    time.Duration

	handshakeFails atomic.Int64
	// reconnects counts connections dropped mid-stream (a failed Encode on
	// an established gob stream) and re-dialed; a mid-stream RST from the
	// peer or a fault proxy shows up here, not as a delivery failure.
	reconnects atomic.Int64

	// dialSleepHook, when set (tests), observes each jittered retry wait
	// just before it is slept.
	dialSleepHook func(time.Duration)

	// wrapConn, when set (tests), wraps every freshly dialed connection
	// before the gob encoder is attached — fault-injection tests use it to
	// split and tear writes at the byte level.
	wrapConn func(net.Conn) net.Conn
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// NewTCPTransport starts a transport for node self, listening on
// addrs[self]. addrs must contain every node that will ever be dialed.
func NewTCPTransport(self tx.NodeID, addrs map[tx.NodeID]string) (*TCPTransport, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("network: no address for self node %d", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	return NewTCPTransportListener(self, addrs, ln), nil
}

// NewTCPTransportListener starts a transport for node self on an already
// bound listener. The cluster harness binds every listener in the parent
// process and passes them to child processes as inherited files, which
// gives each process a race-free port and lets the parent know every
// address before any child starts.
func NewTCPTransportListener(self tx.NodeID, addrs map[tx.NodeID]string, ln net.Listener) *TCPTransport {
	if addrs == nil {
		addrs = make(map[tx.NodeID]string)
	}
	t := &TCPTransport{
		self:           self,
		addrs:          addrs,
		ln:             ln,
		inbox:          make(chan Message, 4096),
		quit:           make(chan struct{}),
		conns:          make(map[tx.NodeID]*tcpConn),
		dialAttempts:   defaultDialAttempts,
		dialBackoff:    defaultDialBackoff,
		dialBackoffCap: defaultDialBackoffCap,
		sendTimeout:    defaultSendTimeout,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// Addr returns the address the transport is listening on (useful when the
// configured address used port 0).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	if err := t.handshakeAccept(c); err != nil {
		t.handshakeFails.Add(1)
		log.Printf("network: node %d rejected connection from %s: %v", t.self, c.RemoteAddr(), err)
		return
	}
	dec := gob.NewDecoder(c)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.quit:
			return
		}
	}
}

// handshakeAccept validates the dialer's header and replies with ours. It
// runs before any gob traffic, so a peer from an incompatible build (or a
// stray client that is not a transport at all) is turned away with a
// logged error instead of corrupting the stream.
func (t *TCPTransport) handshakeAccept(c net.Conn) error {
	c.SetReadDeadline(time.Now().Add(defaultHandshakeTimeout))
	var h [handshakeLen]byte
	if _, err := io.ReadFull(c, h[:]); err != nil {
		return fmt.Errorf("reading handshake: %w", err)
	}
	if _, err := checkHandshake(h); err != nil {
		return err
	}
	c.SetReadDeadline(time.Time{})
	reply := handshakeHeader(t.self)
	c.SetWriteDeadline(time.Now().Add(defaultHandshakeTimeout))
	if _, err := c.Write(reply[:]); err != nil {
		return fmt.Errorf("writing handshake reply: %w", err)
	}
	c.SetWriteDeadline(time.Time{})
	return nil
}

// handshakeDial sends our header and validates the acceptor's reply.
// timeout bounds the exchange so a wedged peer cannot hold dial forever.
func (t *TCPTransport) handshakeDial(c net.Conn, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = defaultHandshakeTimeout
	}
	h := handshakeHeader(t.self)
	c.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.Write(h[:]); err != nil {
		return fmt.Errorf("writing handshake: %w", err)
	}
	c.SetWriteDeadline(time.Time{})
	c.SetReadDeadline(time.Now().Add(timeout))
	var reply [handshakeLen]byte
	if _, err := io.ReadFull(c, reply[:]); err != nil {
		return fmt.Errorf("reading handshake reply: %w", err)
	}
	c.SetReadDeadline(time.Time{})
	if _, err := checkHandshake(reply); err != nil {
		return err
	}
	return nil
}

// HandshakeFailures reports how many inbound connections were rejected for
// a bad or missing handshake.
func (t *TCPTransport) HandshakeFailures() int64 { return t.handshakeFails.Load() }

// Reconnects reports how many established connections broke mid-stream and
// were dropped for re-dial.
func (t *TCPTransport) Reconnects() int64 { return t.reconnects.Load() }

// SetSendTimeout overrides the per-message write deadline (0 disables).
func (t *TCPTransport) SetSendTimeout(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sendTimeout = d
}

// SetDialRetry overrides the dial-retry policy: attempts tries with
// exponential backoff starting at backoff and capped at backoffCap.
// attempts < 1 means a single try.
func (t *TCPTransport) SetDialRetry(attempts int, backoff, backoffCap time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dialAttempts = attempts
	t.dialBackoff = backoff
	t.dialBackoffCap = backoffCap
}

// Send implements Transport. A broken connection is dropped and re-dialed
// once within the same call, so a peer that restarted between messages is
// reconnected transparently; the write deadline bounds how long a dead
// peer that stopped reading can stall the sender.
func (t *TCPTransport) Send(m Message) error {
	if m.To == t.self {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return fmt.Errorf("network: transport closed")
		}
		t.inbox <- m
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := t.dial(m.To)
		if err != nil {
			return err
		}
		t.mu.Lock()
		timeout := t.sendTimeout
		t.mu.Unlock()
		conn.mu.Lock()
		if timeout > 0 {
			conn.c.SetWriteDeadline(time.Now().Add(timeout))
		}
		err = conn.enc.Encode(&m)
		if timeout > 0 {
			conn.c.SetWriteDeadline(time.Time{})
		}
		conn.mu.Unlock()
		if err == nil {
			t.stats.Count(m.WireSize())
			return nil
		}
		// Drop the broken connection; the next loop iteration (or a later
		// Send) re-dials. A gob stream is unusable after a failed Encode,
		// so the whole connection goes.
		t.reconnects.Add(1)
		t.mu.Lock()
		if t.conns[m.To] == conn {
			delete(t.conns, m.To)
		}
		t.mu.Unlock()
		conn.c.Close()
		lastErr = err
	}
	return fmt.Errorf("network: send to node %d: %w", m.To, lastErr)
}

// dial returns the live connection to node, establishing one if needed.
// Failed dials are retried with capped exponential backoff: during a peer
// restart the address is briefly unreachable, and erroring out on first
// refusal would turn every peer blip into a delivery failure.
func (t *TCPTransport) dial(node tx.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("network: transport closed")
	}
	if c, ok := t.conns[node]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[node]
	attempts, backoff, maxBackoff := t.dialAttempts, t.dialBackoff, t.dialBackoffCap
	hook := t.dialSleepHook
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: unknown node %d", node)
	}
	if attempts < 1 {
		attempts = 1
	}
	var raw net.Conn
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Full backoff would make every reconnector that lost the same
			// peer at the same moment retry in lockstep and stampede the
			// restarting listener. Jitter the wait uniformly over
			// [backoff/2, backoff] so the herd spreads out while the cap
			// still bounds the worst case.
			wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			if hook != nil {
				hook(wait)
			}
			select {
			case <-time.After(wait):
			case <-t.quit:
				return nil, fmt.Errorf("network: transport closed")
			}
			if backoff *= 2; backoff > maxBackoff && maxBackoff > 0 {
				backoff = maxBackoff
			}
		}
		raw, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("network: dial node %d at %s after %d attempts: %w", node, addr, attempts, err)
	}
	t.mu.Lock()
	hsTimeout := t.sendTimeout
	wrap := t.wrapConn
	t.mu.Unlock()
	if err := t.handshakeDial(raw, hsTimeout); err != nil {
		raw.Close()
		return nil, fmt.Errorf("network: handshake with node %d at %s: %w", node, addr, err)
	}
	wc := raw
	if wrap != nil {
		wc = wrap(raw)
	}
	conn := &tcpConn{c: wc, enc: gob.NewEncoder(wc)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		raw.Close()
		return nil, fmt.Errorf("network: transport closed")
	}
	if existing, ok := t.conns[node]; ok {
		raw.Close() // lost the dial race; reuse the winner
		return existing, nil
	}
	t.conns[node] = conn
	return conn, nil
}

// SetAddr registers (or updates) a peer address; used when nodes are added
// dynamically.
func (t *TCPTransport) SetAddr(node tx.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[node] = addr
}

// Stats returns the transport's accounting.
func (t *TCPTransport) Stats() *Stats { return &t.stats }

// Recv implements Transport. Only the transport's own node has an inbox.
func (t *TCPTransport) Recv(node tx.NodeID) <-chan Message {
	if node != t.self {
		return nil
	}
	return t.inbox
}

// Close implements Transport.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := t.conns
	t.conns = map[tx.NodeID]*tcpConn{}
	accepted := t.accepted
	t.accepted = nil
	t.mu.Unlock()

	close(t.quit)
	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
}
