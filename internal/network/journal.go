package network

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Journal is the durable form of Reliable's delivery log for a cluster
// process: every message accepted for the local node is appended before it
// is acknowledged, so after the process is killed, the journal holds a
// superset of the input the dead node had consumed. A restarted process
// replays the journal through ReliableOpts.Recovered and deterministically
// regenerates its state.
//
// Records are length-prefixed gob frames, so a crash mid-append leaves at
// most one torn record at the tail; recovery stops at the first damaged
// frame and truncates it away. A torn record was never acknowledged (the
// journal write happens before the ack), so the peer still holds it in its
// retransmission window and will deliver it again. Durability target is
// process death, not host death: writes go straight to the file (no
// user-space buffering) but are not fsynced — the OS page cache survives a
// SIGKILL, which is the failure the cluster harness injects.
//
// The journal also owns the process incarnation counter (see Message.Inc):
// each OpenJournal on the same directory observes a strictly higher
// incarnation than the last, persisted atomically so a crash between runs
// can never hand two lives of the process the same incarnation.
type Journal struct {
	f           *os.File
	dir         string
	recovered   []Message
	incarnation uint64
}

const (
	journalFile     = "journal.log"
	incarnationFile = "incarnation"
)

// OpenJournal opens (creating if needed) the delivery journal in dir,
// recovers its intact prefix, truncates any torn tail, and claims the next
// incarnation.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: mkdir %s: %w", dir, err)
	}
	inc, err := bumpIncarnation(filepath.Join(dir, incarnationFile))
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	msgs, good := replayJournal(raw)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return &Journal{f: f, dir: dir, recovered: msgs, incarnation: inc}, nil
}

// replayJournal decodes the intact record prefix of raw, returning the
// messages and the byte offset the next append should start at.
func replayJournal(raw []byte) ([]Message, int) {
	var msgs []Message
	off := 0
	for {
		if len(raw)-off < 4 {
			return msgs, off
		}
		n := int(binary.BigEndian.Uint32(raw[off : off+4]))
		if len(raw)-off-4 < n {
			return msgs, off // torn frame
		}
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(raw[off+4 : off+4+n])).Decode(&m); err != nil {
			return msgs, off // damaged frame: treat it and everything after as torn
		}
		msgs = append(msgs, m)
		off += 4 + n
	}
}

// bumpIncarnation atomically advances the persisted incarnation counter
// and returns the claimed value (first life = 1).
func bumpIncarnation(path string) (uint64, error) {
	var prev uint64
	if b, err := os.ReadFile(path); err == nil {
		prev, _ = strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	}
	next := prev + 1
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(next, 10)), 0o644); err != nil {
		return 0, fmt.Errorf("journal: write incarnation: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("journal: commit incarnation: %w", err)
	}
	return next, nil
}

// Recovered returns the journaled history in delivery order.
func (j *Journal) Recovered() []Message { return j.recovered }

// Incarnation returns the incarnation claimed by this open (≥ 1, strictly
// increasing per open of the same directory).
func (j *Journal) Incarnation() uint64 { return j.incarnation }

// Append persists one delivered message. It is called from the reliable
// layer's pump goroutine, which is single-threaded per destination, so
// appends need no lock. A failed append panics: continuing would let the
// pump ack input that is not durable, silently breaking the recovery
// contract.
func (j *Journal) Append(m Message) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length patched below
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		panic(fmt.Sprintf("journal: encode message: %v", err))
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := j.f.Write(b); err != nil {
		panic(fmt.Sprintf("journal: append: %v", err))
	}
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
