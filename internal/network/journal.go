package network

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"log"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/diskio"
	"hermes/internal/tx"
)

// Journal is the durable form of Reliable's delivery log for a cluster
// process: every message accepted for the local node is appended (and, under
// fsync policies "batch"/"always", fsynced) before it is acknowledged, so
// after the process — or the whole host — dies, the journal's stable prefix
// holds every input the node ever acked. A restarted process replays the
// journal through ReliableOpts.Recovered and deterministically regenerates
// its state.
//
// On-disk format (v2): a 16-byte header (8-byte magic, 8-byte big-endian
// base — the absolute index of the file's first frame, non-zero after a
// checkpoint rotation), then frames of
//
//	[4B len][4B CRC32C(payload)][gob payload]
//
// Recovery classifies damage by where and how it appears:
//
//   - A torn tail — the final frame incomplete, including inside its 8-byte
//     header — is the expected residue of a crash mid-append. It is silently
//     truncated away and counted; the frame was never acked (the ack waits
//     for the fsync), so the peer still holds it and retransmits.
//   - A *complete* frame failing its CRC, an implausible length, or a bad
//     magic is corruption of data we may have acked. That is never silently
//     dropped: the damaged suffix is quarantined to journal.log.corrupt,
//     logged loudly, and counted, and recovery continues with the intact
//     prefix (the reliable layer's retransmission floor re-fetches what the
//     quarantined suffix held, when the peers still have it).
//
// Fsync policies: "none" acks without any durability promise (page-cache
// durability only — survives SIGKILL, not host death); "always" fsyncs every
// frame before its ack; "batch" is group commit — frames accepted while a
// sync is in flight share the next one, and their acks are released only
// after it returns, amortizing the fsync without weakening the promise.
//
// The journal also owns the process incarnation counter (see Message.Inc):
// each Open on the same directory claims a strictly higher incarnation,
// persisted crash-atomically (temp + fsync + rename) so a crash between
// runs can never hand two lives of the process the same incarnation.
type Journal struct {
	fs     diskio.FS
	dir    string
	path   string
	policy SyncPolicy

	mu      sync.Mutex
	f       diskio.File
	base    uint64 // absolute index of the file's first frame
	count   uint64 // absolute frame count (base + frames in file)
	size    int64  // current file length in bytes
	synced  int64  // byte watermark known stable (fsync returned)
	floors  map[tx.NodeID]LinkFloor
	pending []func() // callbacks awaiting the next group commit
	closed  bool

	recovered   []Message
	incarnation uint64

	syncKick chan struct{}
	quit     chan struct{}
	wg       sync.WaitGroup

	stFsyncs        atomic.Int64
	stSyncFailures  atomic.Int64
	stBatches       atomic.Int64
	stBatchedAcks   atomic.Int64
	stAppendRetries atomic.Int64
	stTornRecords   atomic.Int64
	stTornBytes     atomic.Int64
	stCorrupt       atomic.Int64
	stCorruptBytes  atomic.Int64
	stRotations     atomic.Int64
}

// SyncPolicy selects when appended frames are fsynced relative to their acks.
type SyncPolicy string

const (
	// SyncNone never fsyncs: acked input survives process death (page
	// cache), not host death. The pre-durability behavior.
	SyncNone SyncPolicy = "none"
	// SyncBatch is group commit: one fsync covers every frame accepted
	// since the last one; acks release only after it returns.
	SyncBatch SyncPolicy = "batch"
	// SyncAlways fsyncs each frame inline before its ack.
	SyncAlways SyncPolicy = "always"
)

// ParseSyncPolicy validates a -fsync flag value ("" defaults to none).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "":
		return SyncNone, nil
	case SyncNone, SyncBatch, SyncAlways:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("journal: unknown fsync policy %q (want none|batch|always)", s)
}

// LinkFloor is the highest (incarnation, link) journaled from one sender.
// A restart seeds the reliable layer's per-sender dedup watermarks from
// these so stale retransmits of already-journaled frames are dropped even
// when the frames themselves were rotated out of the journal.
type LinkFloor struct {
	Inc  uint64
	Link uint64
}

// JournalStats reports the journal's durability counters.
type JournalStats struct {
	Fsyncs        int64 // successful fsyncs issued
	SyncFailures  int64 // fsyncs that returned an error (acks withheld, retried)
	Batches       int64 // group commits that released at least one ack
	BatchedAcks   int64 // acks released by group commits (avg batch = BatchedAcks/Batches)
	AppendRetries int64 // torn/short appends repaired by truncate+rewrite
	TornRecords   int64 // torn tails truncated at recovery
	TornBytes     int64 // bytes those torn tails held
	Corrupt       int64 // corruption events quarantined at recovery
	CorruptBytes  int64 // bytes quarantined to journal.log.corrupt
	Rotations     int64 // checkpoint rotations
}

const (
	journalFile     = "journal.log"
	corruptFile     = "journal.log.corrupt"
	incarnationFile = "incarnation"

	journalMagic  = uint64(0x4845524d4a4e4c32) // "HERMJNL2"
	journalHdrLen = 16
	frameHdrLen   = 8 // 4B length + 4B CRC32C
	// maxFrameLen bounds a plausible frame; a longer claimed length is
	// corruption (resync is impossible past a bad length, so quarantine).
	maxFrameLen = 1 << 26

	appendMaxRetries = 8
	syncMaxRetries   = 64
	syncRetryDelay   = 2 * time.Millisecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// JournalOpts configures OpenJournalWith beyond the legacy defaults.
type JournalOpts struct {
	// FS is the storage backend (nil = the real filesystem).
	FS diskio.FS
	// Policy is the fsync policy ("" = SyncNone).
	Policy SyncPolicy
	// Floors seeds per-sender link floors from a checkpoint, covering
	// senders whose frames were rotated out of the journal. Recovered
	// frames extend them.
	Floors map[tx.NodeID]LinkFloor
}

// OpenJournal opens the delivery journal in dir with legacy defaults (real
// filesystem, fsync policy none).
func OpenJournal(dir string) (*Journal, error) {
	return OpenJournalWith(dir, JournalOpts{})
}

// OpenJournalWith opens (creating if needed) the delivery journal in dir,
// recovers its intact prefix, truncates any torn tail, quarantines any
// mid-file corruption, and claims the next incarnation.
func OpenJournalWith(dir string, opts JournalOpts) (*Journal, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = diskio.OSFS{}
	}
	policy := opts.Policy
	if policy == "" {
		policy = SyncNone
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("journal: mkdir %s: %w", dir, err)
	}
	inc, err := bumpIncarnation(fsys, filepath.Join(dir, incarnationFile))
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, journalFile)
	raw, err := fsys.ReadFile(path)
	if err != nil && !diskio.IsNotExist(err) {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}

	j := &Journal{
		fs:          fsys,
		dir:         dir,
		path:        path,
		policy:      policy,
		floors:      make(map[tx.NodeID]LinkFloor, len(opts.Floors)),
		incarnation: inc,
		syncKick:    make(chan struct{}, 1),
		quit:        make(chan struct{}),
	}
	for n, lf := range opts.Floors {
		j.floors[n] = lf
	}

	rep := replayJournal(raw)
	if rep.quarantine >= 0 {
		bad := raw[rep.quarantine:]
		j.stCorrupt.Add(1)
		j.stCorruptBytes.Add(int64(len(bad)))
		if qerr := quarantine(fsys, filepath.Join(dir, corruptFile), bad); qerr != nil {
			return nil, fmt.Errorf("journal: quarantine %d corrupt bytes of %s: %w", len(bad), path, qerr)
		}
		log.Printf("journal: CORRUPTION in %s at byte %d (%s): quarantined %d bytes to %s, recovered %d intact frames",
			path, rep.quarantine, rep.reason, len(bad), corruptFile, len(rep.msgs))
	} else if rep.tornBytes > 0 {
		j.stTornRecords.Add(1)
		j.stTornBytes.Add(int64(rep.tornBytes))
		log.Printf("journal: truncating %d-byte torn tail of %s (unacked; peer retransmits)", rep.tornBytes, path)
	}

	var f diskio.File
	if rep.freshHeader {
		f, err = fsys.Create(path)
		if err == nil {
			_, err = diskio.WriteFull(f, journalHeader(0))
		}
		if err != nil {
			return nil, fmt.Errorf("journal: init %s: %w", path, err)
		}
		j.size = journalHdrLen
	} else {
		f, err = fsys.OpenAppend(path)
		if err != nil {
			return nil, fmt.Errorf("journal: open %s: %w", path, err)
		}
		if err := f.Truncate(int64(rep.good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate damaged tail of %s: %w", path, err)
		}
		j.size = int64(rep.good)
	}
	j.f = f
	j.base = rep.base
	j.count = rep.base + uint64(len(rep.msgs))
	j.recovered = rep.msgs
	for _, m := range rep.msgs {
		j.noteFloorLocked(m)
	}

	if policy == SyncNone {
		// Nothing is ever fsynced under this policy, so the stable mark is
		// pinned at zero: the orchestrator's page-cache wipe (host-death
		// surrogate) erases the whole journal, exactly as a power cut
		// would. A stale mark from a previous durable run would instead
		// make the wipe keep frames this run never made durable.
		j.writeSidecar(0)
	} else {
		// Establish a stable baseline: what recovery kept is durable
		// before anything new is acked against it.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: baseline fsync %s: %w", path, err)
		}
		j.stFsyncs.Add(1)
		j.synced = j.size
		j.writeSidecar(j.synced)
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: fsync dir %s: %w", dir, err)
		}
	}
	if policy == SyncBatch {
		j.wg.Add(1)
		go j.syncLoop()
	}
	return j, nil
}

type replayResult struct {
	msgs        []Message
	base        uint64
	good        int  // byte offset of the intact prefix end
	freshHeader bool // file is empty/torn-header: rewrite the header
	tornBytes   int  // bytes of torn tail beyond good (no quarantine)
	quarantine  int  // byte offset corruption starts at, -1 if none
	reason      string
}

// replayJournal decodes the intact frame prefix of raw and classifies
// whatever follows it as torn (crash residue, truncate) or corrupt
// (quarantine). See the Journal doc comment for the classification rules.
func replayJournal(raw []byte) replayResult {
	rep := replayResult{quarantine: -1}
	if len(raw) < journalHdrLen {
		// Empty file, or a crash inside the initial header write: nothing
		// was ever framed, let alone acked.
		rep.freshHeader = true
		rep.tornBytes = len(raw)
		return rep
	}
	if binary.BigEndian.Uint64(raw[:8]) != journalMagic {
		rep.freshHeader = true
		rep.quarantine = 0
		rep.reason = "bad magic"
		return rep
	}
	rep.base = binary.BigEndian.Uint64(raw[8:16])
	off := journalHdrLen
	for {
		rem := len(raw) - off
		if rem == 0 {
			rep.good = off
			return rep
		}
		if rem < frameHdrLen {
			rep.good = off
			rep.tornBytes = rem
			return rep
		}
		n := int(binary.BigEndian.Uint32(raw[off : off+4]))
		if n == 0 || n > maxFrameLen {
			rep.good = off
			rep.quarantine = off
			rep.reason = fmt.Sprintf("implausible frame length %d", n)
			return rep
		}
		if rem-frameHdrLen < n {
			rep.good = off
			rep.tornBytes = rem
			return rep
		}
		payload := raw[off+frameHdrLen : off+frameHdrLen+n]
		if crc := crc32.Checksum(payload, crcTable); crc != binary.BigEndian.Uint32(raw[off+4:off+8]) {
			rep.good = off
			rep.quarantine = off
			rep.reason = "CRC mismatch on complete frame"
			return rep
		}
		var m Message
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
			rep.good = off
			rep.quarantine = off
			rep.reason = fmt.Sprintf("gob decode despite valid CRC: %v", err)
			return rep
		}
		rep.msgs = append(rep.msgs, m)
		off += frameHdrLen + n
	}
}

func journalHeader(base uint64) []byte {
	h := make([]byte, journalHdrLen)
	binary.BigEndian.PutUint64(h[:8], journalMagic)
	binary.BigEndian.PutUint64(h[8:16], base)
	return h
}

// quarantine appends the damaged bytes to the corrupt sidecar file and
// makes them durable — forensic evidence must not evaporate with the next
// crash.
func quarantine(fsys diskio.FS, path string, bad []byte) error {
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return err
	}
	if _, err := diskio.WriteFull(f, bad); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// bumpIncarnation crash-atomically advances the persisted incarnation
// counter and returns the claimed value (first life = 1).
func bumpIncarnation(fsys diskio.FS, path string) (uint64, error) {
	var prev uint64
	if b, err := fsys.ReadFile(path); err == nil {
		prev, _ = strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	}
	next := prev + 1
	if err := diskio.WriteFileAtomic(fsys, path, []byte(strconv.FormatUint(next, 10))); err != nil {
		return 0, fmt.Errorf("journal: commit incarnation: %w", err)
	}
	return next, nil
}

// Recovered returns the journaled history in delivery order.
func (j *Journal) Recovered() []Message { return j.recovered }

// RecoveredSince returns the journaled history from absolute frame index
// abs (a checkpoint's Delivered watermark). It fails loudly when the
// journal cannot produce that suffix — a checkpoint older than the last
// rotation, or durable frames lost to quarantine.
func (j *Journal) RecoveredSince(abs uint64) ([]Message, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if abs < j.base {
		return nil, fmt.Errorf("journal: replay from frame %d but journal was rotated at %d (checkpoint predates rotation)", abs, j.base)
	}
	idx := abs - j.base
	if idx > uint64(len(j.recovered)) {
		return nil, fmt.Errorf("journal: replay from frame %d but journal holds frames [%d,%d) — acked input is missing",
			abs, j.base, j.base+uint64(len(j.recovered)))
	}
	return j.recovered[idx:], nil
}

// Incarnation returns the incarnation claimed by this open (≥ 1, strictly
// increasing per open of the same directory).
func (j *Journal) Incarnation() uint64 { return j.incarnation }

// Base returns the absolute index of the journal file's first frame (the
// watermark of the last rotation).
func (j *Journal) Base() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base
}

// Count returns the absolute frame count: base + frames in the file.
func (j *Journal) Count() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Policy returns the journal's fsync policy.
func (j *Journal) Policy() SyncPolicy { return j.policy }

// Floors returns a copy of the per-sender link floors: checkpoint-seeded,
// extended by every journaled frame.
func (j *Journal) Floors() map[tx.NodeID]LinkFloor {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[tx.NodeID]LinkFloor, len(j.floors))
	for n, lf := range j.floors {
		out[n] = lf
	}
	return out
}

// Stats snapshots the durability counters.
func (j *Journal) Stats() JournalStats {
	return JournalStats{
		Fsyncs:        j.stFsyncs.Load(),
		SyncFailures:  j.stSyncFailures.Load(),
		Batches:       j.stBatches.Load(),
		BatchedAcks:   j.stBatchedAcks.Load(),
		AppendRetries: j.stAppendRetries.Load(),
		TornRecords:   j.stTornRecords.Load(),
		TornBytes:     j.stTornBytes.Load(),
		Corrupt:       j.stCorrupt.Load(),
		CorruptBytes:  j.stCorruptBytes.Load(),
		Rotations:     j.stRotations.Load(),
	}
}

func (j *Journal) noteFloorLocked(m Message) {
	if m.Link == 0 {
		return
	}
	lf := j.floors[m.From]
	if m.Inc > lf.Inc || (m.Inc == lf.Inc && m.Link > lf.Link) {
		j.floors[m.From] = LinkFloor{Inc: m.Inc, Link: m.Link}
	}
}

func encodeFrame(m Message) []byte {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHdrLen))
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		panic(fmt.Sprintf("journal: encode message: %v", err))
	}
	b := buf.Bytes()
	payload := b[frameHdrLen:]
	binary.BigEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(payload, crcTable))
	return b
}

// Append persists one delivered message. It is called from the reliable
// layer's pump goroutine, which is single-threaded per destination. A torn
// or short write is repaired in place — truncate back to the frame start
// and rewrite — because a partial frame would read as a torn tail on
// recovery and silently swallow every frame behind it in this life. Only
// after repairs are exhausted does Append panic: continuing would let the
// pump ack input that is not journaled.
func (j *Journal) Append(m Message) {
	frame := encodeFrame(m)
	j.mu.Lock()
	defer j.mu.Unlock()
	start := j.size
	var lastErr error
	for attempt := 0; attempt < appendMaxRetries; attempt++ {
		if attempt > 0 {
			j.stAppendRetries.Add(1)
			if err := j.f.Truncate(start); err != nil {
				panic(fmt.Sprintf("journal: truncate torn append at %d: %v (after %v)", start, err, lastErr))
			}
		}
		if _, err := diskio.WriteFull(j.f, frame); err == nil {
			j.size = start + int64(len(frame))
			j.count++
			j.noteFloorLocked(m)
			if j.policy == SyncAlways {
				j.syncAlwaysLocked()
			}
			return
		} else {
			lastErr = err
		}
	}
	panic(fmt.Sprintf("journal: append failed after %d attempts: %v", appendMaxRetries, lastErr))
}

// syncAlwaysLocked fsyncs inline for SyncAlways, retrying transient
// failures; persistent failure panics (the ack gate would otherwise
// release an ack for a frame with no durability).
func (j *Journal) syncAlwaysLocked() {
	var lastErr error
	for attempt := 0; attempt < syncMaxRetries; attempt++ {
		if attempt > 0 {
			// Pace retries like drainBatch does, so a transient device
			// stall gets real time to clear instead of burning the whole
			// budget in microseconds and escalating to a panic. Sleeping
			// under j.mu is deliberate: appends must not ack past a failed
			// sync anyway.
			time.Sleep(syncRetryDelay)
		}
		if err := j.f.Sync(); err != nil {
			j.stSyncFailures.Add(1)
			lastErr = err
			continue
		}
		j.stFsyncs.Add(1)
		j.synced = j.size
		j.writeSidecar(j.synced)
		return
	}
	panic(fmt.Sprintf("journal: fsync failed %d times under policy always: %v", syncMaxRetries, lastErr))
}

// AfterDurable runs fn once everything journaled so far is durable under
// the configured policy. The reliable layer routes ack sends through it:
// under "batch" the callback waits for the group commit; under "always"
// the covering fsync already happened in Append; under "none" durability
// is not promised, so fn runs immediately.
//
// Callbacks run in FIFO order on the group-commit goroutine; they must not
// block on journal appends.
func (j *Journal) AfterDurable(fn func()) {
	if j.policy != SyncBatch {
		fn()
		return
	}
	j.mu.Lock()
	if j.synced >= j.size {
		j.mu.Unlock()
		fn()
		return
	}
	j.pending = append(j.pending, fn)
	j.mu.Unlock()
	select {
	case j.syncKick <- struct{}{}:
	default:
	}
}

func (j *Journal) syncLoop() {
	defer j.wg.Done()
	for {
		select {
		case <-j.quit:
			return
		case <-j.syncKick:
			j.drainBatch(false)
		}
	}
}

// drainBatch performs group commits until no callbacks are pending: one
// fsync covers every frame appended since the last, then the acks it
// gates are released in order. A failed fsync withholds the acks and
// retries — the peers hold the frames and retransmit, so withholding is
// always safe. With final=true a failed fsync gives up instead (shutdown).
func (j *Journal) drainBatch(final bool) {
	for {
		j.mu.Lock()
		cbs := j.pending
		j.pending = nil
		target := j.size
		f := j.f
		need := j.synced < target
		j.mu.Unlock()
		if len(cbs) == 0 && !need {
			return
		}
		if need {
			if err := f.Sync(); err != nil {
				j.stSyncFailures.Add(1)
				j.mu.Lock()
				j.pending = append(cbs, j.pending...)
				j.mu.Unlock()
				if final {
					return
				}
				select {
				case <-j.quit:
					return
				case <-time.After(syncRetryDelay):
				}
				continue
			}
			j.stFsyncs.Add(1)
			j.mu.Lock()
			if j.f != f {
				// Rotate swapped the journal file while the fsync was in
				// flight: the sync covered the old file, and target would
				// inflate the new (smaller) file's watermark past what is
				// actually durable — AfterDurable would then release acks
				// for frames never fsynced in the new file. Discard the
				// stale result, requeue the callbacks, and loop so the
				// current file gets its own covering fsync (or is found
				// already fully synced by Rotate) before their acks release.
				j.pending = append(cbs, j.pending...)
				j.mu.Unlock()
				continue
			}
			if target > j.synced {
				j.synced = target
			}
			mark := j.synced
			j.mu.Unlock()
			j.writeSidecar(mark)
		}
		if len(cbs) > 0 {
			j.stBatches.Add(1)
			j.stBatchedAcks.Add(int64(len(cbs)))
			for _, fn := range cbs {
				fn()
			}
		}
	}
}

// writeSidecar records the stable watermark next to the journal for the
// orchestrator's page-cache wipe (see diskio.WriteSyncedMark).
func (j *Journal) writeSidecar(off int64) {
	if err := diskio.WriteSyncedMark(j.fs, j.path, off); err != nil {
		log.Printf("journal: write synced mark for %s: %v", j.path, err)
	}
}

// Rotate rewrites the journal to hold only frames with absolute index ≥ w
// (a checkpoint's Delivered watermark; frames below it are covered by the
// checkpoint snapshot). The rewrite is crash-atomic — temp + fsync + rename
// + dir fsync — so a crash mid-rotation leaves either the old or the new
// journal, both replayable against their checkpoints. Callers must persist
// the checkpoint *before* rotating: checkpoint-then-rotate means every
// crash window has frames ≥ some durable checkpoint's watermark.
func (j *Journal) Rotate(w uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if w < j.base {
		return fmt.Errorf("journal: rotate to %d below base %d", w, j.base)
	}
	if w > j.count {
		return fmt.Errorf("journal: rotate to %d beyond %d journaled frames", w, j.count)
	}
	// Everything present must be stable before the re-read, or the new
	// file could durably omit frames the old one held only in cache.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: pre-rotate fsync: %w", err)
	}
	j.stFsyncs.Add(1)
	j.synced = j.size
	raw, err := j.fs.ReadFile(j.path)
	if err != nil {
		return fmt.Errorf("journal: rotate read: %w", err)
	}
	// Walk to the byte offset of frame w. The file was written by us and
	// fsynced, so a malformed walk is a logic error, not crash damage.
	off := journalHdrLen
	for i := j.base; i < w; i++ {
		if len(raw)-off < frameHdrLen {
			return fmt.Errorf("journal: rotate walk ran past file at frame %d", i)
		}
		off += frameHdrLen + int(binary.BigEndian.Uint32(raw[off:off+4]))
	}
	if off > len(raw) {
		return fmt.Errorf("journal: rotate walk overran file (%d > %d)", off, len(raw))
	}
	tail := raw[off:]

	tmp := j.path + ".tmp"
	tf, err := j.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: rotate create: %w", err)
	}
	if _, err := diskio.WriteFull(tf, journalHeader(w)); err == nil {
		_, err = diskio.WriteFull(tf, tail)
	} else {
		err = fmt.Errorf("header: %w", err)
	}
	if err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("journal: rotate write: %w", err)
	}
	if err := j.fs.Rename(tmp, j.path); err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("journal: rotate rename: %w", err)
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		return fmt.Errorf("journal: rotate dir fsync: %w", err)
	}
	nf, err := j.fs.OpenAppend(j.path)
	if err != nil {
		return fmt.Errorf("journal: rotate reopen: %w", err)
	}
	j.f.Close()
	j.f = nf
	if drop := w - j.base; drop <= uint64(len(j.recovered)) {
		j.recovered = j.recovered[drop:]
	} else {
		j.recovered = nil
	}
	j.base = w
	j.size = int64(journalHdrLen + len(tail))
	j.synced = j.size
	if j.policy != SyncNone {
		j.writeSidecar(j.synced)
	}
	j.stRotations.Add(1)
	return nil
}

// Close drains any pending group commit (releasing its acks) and closes
// the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.quit)
	j.wg.Wait()
	if j.policy == SyncBatch {
		j.drainBatch(true)
	}
	j.mu.Lock()
	f := j.f
	j.mu.Unlock()
	return f.Close()
}
