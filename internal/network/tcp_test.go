package network

import (
	"net"
	"sync"
	"testing"
	"time"

	"hermes/internal/leaktest"
	"hermes/internal/tx"
)

// reservePort grabs a free loopback port and releases it, so a test can
// hand out an address that nothing is listening on *yet*.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestTCPTransportDialRetry sends to a peer whose listener comes up only
// after the first dial attempts have been refused: the capped-backoff
// retry inside dial() must ride out the gap instead of erroring.
func TestTCPTransportDialRetry(t *testing.T) {
	peerAddr := reservePort(t)
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: peerAddr}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t0.SetDialRetry(40, 5*time.Millisecond, 40*time.Millisecond)

	// Bring the peer up only after the sender has started dialing.
	lateUp := make(chan *TCPTransport, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		t1, err := NewTCPTransport(1, map[tx.NodeID]string{0: t0.Addr(), 1: peerAddr})
		if err != nil {
			lateUp <- nil
			return
		}
		lateUp <- t1
	}()

	if err := t0.Send(Message{From: 0, To: 1, Type: MsgControl, Txn: 11}); err != nil {
		t.Fatalf("send across late-starting peer: %v", err)
	}
	t1 := <-lateUp
	if t1 == nil {
		t.Fatal("late listener failed to start (port reuse race); rerun")
	}
	defer t1.Close()
	select {
	case m := <-t1.Recv(1):
		if m.Txn != 11 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered after retry")
	}
}

// TestTCPTransportDialGivesUp bounds the retry budget: with nothing ever
// listening, Send must return an error instead of spinning forever.
func TestTCPTransportDialGivesUp(t *testing.T) {
	dead := reservePort(t)
	t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: dead})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t0.SetDialRetry(3, time.Millisecond, 4*time.Millisecond)
	start := time.Now()
	if err := t0.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry budget not capped: %v", elapsed)
	}
}

// TestTCPTransportDialRetryJitter pins the reconnect backoff's jitter:
// every observed retry wait must stay within the configured cap, and the
// waits must not all be identical — a fixed schedule would make every
// reconnector that lost the same peer hammer it in lockstep.
func TestTCPTransportDialRetryJitter(t *testing.T) {
	dead := reservePort(t)
	t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: dead})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	const (
		attempts = 12
		base     = time.Millisecond
		cap      = 4 * time.Millisecond
	)
	var waits []time.Duration
	var mu sync.Mutex
	t0.mu.Lock()
	t0.dialSleepHook = func(d time.Duration) {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
	}
	t0.mu.Unlock()
	t0.SetDialRetry(attempts, base, cap)
	if err := t0.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != attempts-1 {
		t.Fatalf("observed %d retry waits, want %d", len(waits), attempts-1)
	}
	allSame := true
	for i, w := range waits {
		if w <= 0 || w > cap {
			t.Fatalf("retry wait %d = %v outside (0, %v]", i, w, cap)
		}
		if w != waits[0] {
			allSame = false
		}
	}
	// Most waits draw from [cap/2, cap] once the backoff doubles past the
	// cap; 11 identical draws from a 2ms+1 window happen with probability
	// ~(1/2001)^10 — if they are all equal, the jitter is not being
	// applied.
	if allSame {
		t.Fatalf("all %d retry waits identical (%v); backoff is not jittered", len(waits), waits[0])
	}
}

// TestTCPTransportSendDeadline wedges a peer — it accepts one connection,
// never reads from it, and then stops listening — and checks the write
// deadline unblocks the sender with an error instead of hanging forever.
func TestTCPTransportSendDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wedged := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		ln.Close() // no second chance: the re-dial after the timeout must fail
		wedged <- c
	}()

	t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t0.SetDialRetry(1, 0, 0)
	t0.SetSendTimeout(150 * time.Millisecond)

	// Big payloads fill the kernel socket buffers quickly; once they are
	// full, Encode blocks until the write deadline fires.
	payload := make([]byte, 1<<20)
	deadline := time.Now().Add(30 * time.Second)
	var sendErr error
	for time.Now().Before(deadline) {
		if sendErr = t0.Send(Message{From: 0, To: 1, Payload: payload}); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("sends to a never-reading peer kept succeeding")
	}
	select {
	case c := <-wedged:
		c.Close()
	default:
	}
}

// TestTCPTransportReconnect restarts the receiving peer on the same port
// and checks the sender transparently re-dials inside Send instead of
// failing on the stale connection.
func TestTCPTransportReconnect(t *testing.T) {
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := t1.Addr()
	t0.SetAddr(1, peerAddr)

	if err := t0.Send(Message{From: 0, To: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-t1.Recv(1):
	case <-time.After(2 * time.Second):
		t.Fatal("initial message not delivered")
	}

	// "Restart" the peer: tear it down and bring a new transport up on the
	// same address, like RestartNode does for a crashed process.
	t1.Close()
	t0.SetDialRetry(40, 5*time.Millisecond, 40*time.Millisecond)
	t1b, err := NewTCPTransport(1, map[tx.NodeID]string{0: t0.Addr(), 1: peerAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer t1b.Close()

	// The first write after the peer died may be swallowed by the kernel
	// before the RST arrives; that loss is the reliable layer's problem.
	// What the transport owes us is that Send keeps working and a message
	// reaches the restarted peer without any explicit reset call.
	delivered := false
	for i := 0; i < 50 && !delivered; i++ {
		if err := t0.Send(Message{From: 0, To: 1, Seq: uint64(100 + i)}); err != nil {
			t.Fatalf("send %d after peer restart: %v", i, err)
		}
		select {
		case <-t1b.Recv(1):
			delivered = true
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no message reached the restarted peer")
	}
}

// TestTCPTransportCloseLeaksNothing runs a two-node exchange and checks
// Close tears down the accept/read goroutines on both sides.
func TestTCPTransportCloseLeaksNothing(t *testing.T) {
	defer leaktest.Check(t)()
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t0.SetAddr(1, t1.Addr())
	for i := 0; i < 10; i++ {
		if err := t0.Send(Message{From: 0, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-t1.Recv(1):
		case <-time.After(2 * time.Second):
			t.Fatal("message not delivered")
		}
		if err := t1.Send(Message{From: 1, To: 0, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-t0.Recv(0):
		case <-time.After(2 * time.Second):
			t.Fatal("reply not delivered")
		}
	}
	t1.Close()
	t0.Close()
}
