package network

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/leaktest"
	"hermes/internal/tx"
)

// errPortStolen marks a scenario run invalidated by the inherent race in
// handing out a "free" port: between reserving the address and the
// scenario's use of it, another process on the machine may bind (or
// connect to) it. Scenarios that depend on a port being genuinely free are
// retried on this error instead of failing the suite.
var errPortStolen = errors.New("reserved port was taken by another process")

// reservePort grabs a free loopback port and releases it, so a test can
// hand out an address that nothing is listening on *yet*. Anything built
// on it must treat "the port was not actually free" as retryable — see
// retryPortScenario.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// retryPortScenario runs a reserved-port scenario until it completes
// without a port steal. Real assertion failures inside the scenario fail
// the test directly; only errPortStolen is retried.
func retryPortScenario(t *testing.T, scenario func(t *testing.T) error) {
	t.Helper()
	const attempts = 5
	for i := 0; i < attempts; i++ {
		err := scenario(t)
		if err == nil {
			return
		}
		if !errors.Is(err, errPortStolen) {
			t.Fatal(err)
		}
		t.Logf("attempt %d: %v; retrying", i+1, err)
	}
	t.Skipf("reserved port stolen %d times in a row; machine too busy for this scenario", attempts)
}

// TestTCPTransportDialRetry sends to a peer whose listener comes up only
// after the first dial attempts have been refused: the capped-backoff
// retry inside dial() must ride out the gap instead of erroring.
func TestTCPTransportDialRetry(t *testing.T) {
	retryPortScenario(t, func(t *testing.T) error {
		peerAddr := reservePort(t)
		addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: peerAddr}
		t0, err := NewTCPTransport(0, addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer t0.Close()
		t0.SetDialRetry(40, 5*time.Millisecond, 40*time.Millisecond)
		t0.SetSendTimeout(500 * time.Millisecond)

		// Bring the peer up only after the sender has started dialing. The
		// peer binds the reserved address itself; if someone else grabbed it
		// in the window, the bind fails and the whole scenario retries on a
		// fresh port.
		type lateRes struct {
			tr  *TCPTransport
			err error
		}
		lateUp := make(chan lateRes, 1)
		go func() {
			time.Sleep(30 * time.Millisecond)
			ln, err := net.Listen("tcp", peerAddr)
			if err != nil {
				lateUp <- lateRes{nil, err}
				return
			}
			lateUp <- lateRes{NewTCPTransportListener(1, map[tx.NodeID]string{0: t0.Addr(), 1: peerAddr}, ln), nil}
		}()

		sendErr := t0.Send(Message{From: 0, To: 1, Type: MsgControl, Txn: 11})
		r := <-lateUp
		if r.err != nil {
			return errPortStolen
		}
		defer r.tr.Close()
		if sendErr != nil {
			// A thief that *listens* on the stolen port makes the dial
			// succeed and the handshake fail; indistinguishable from a retry
			// bug in one run, so retry — a real bug fails every attempt.
			return errPortStolen
		}
		select {
		case m := <-r.tr.Recv(1):
			if m.Txn != 11 {
				t.Fatalf("got %+v", m)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("message not delivered after retry")
		}
		return nil
	})
}

// TestTCPTransportDialGivesUp bounds the retry budget: with nothing ever
// listening, Send must return an error instead of spinning forever. The
// short send timeout makes the outcome identical even if another process
// steals the reserved port and listens on it (the handshake then fails
// within the timeout instead of the dial being refused).
func TestTCPTransportDialGivesUp(t *testing.T) {
	dead := reservePort(t)
	t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: dead})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t0.SetDialRetry(3, time.Millisecond, 4*time.Millisecond)
	t0.SetSendTimeout(100 * time.Millisecond)
	start := time.Now()
	if err := t0.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry budget not capped: %v", elapsed)
	}
}

// TestTCPTransportDialRetryJitter pins the reconnect backoff's jitter:
// every observed retry wait must stay within the configured cap, and the
// waits must not all be identical — a fixed schedule would make every
// reconnector that lost the same peer hammer it in lockstep.
func TestTCPTransportDialRetryJitter(t *testing.T) {
	retryPortScenario(t, func(t *testing.T) error {
		dead := reservePort(t)
		t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: dead})
		if err != nil {
			t.Fatal(err)
		}
		defer t0.Close()
		const (
			attempts = 12
			base     = time.Millisecond
			cap      = 4 * time.Millisecond
		)
		var waits []time.Duration
		var mu sync.Mutex
		t0.mu.Lock()
		t0.dialSleepHook = func(d time.Duration) {
			mu.Lock()
			waits = append(waits, d)
			mu.Unlock()
		}
		t0.mu.Unlock()
		t0.SetDialRetry(attempts, base, cap)
		t0.SetSendTimeout(100 * time.Millisecond)
		if err := t0.Send(Message{From: 0, To: 1}); err == nil {
			t.Fatal("send to dead peer succeeded")
		}
		mu.Lock()
		defer mu.Unlock()
		if len(waits) != attempts-1 {
			// Fewer waits than retries means some dial attempt *connected* —
			// the reserved port was taken by a live listener mid-test.
			return errPortStolen
		}
		allSame := true
		for i, w := range waits {
			if w <= 0 || w > cap {
				t.Fatalf("retry wait %d = %v outside (0, %v]", i, w, cap)
			}
			if w != waits[0] {
				allSame = false
			}
		}
		// Most waits draw from [cap/2, cap] once the backoff doubles past the
		// cap; 11 identical draws from a 2ms+1 window happen with probability
		// ~(1/2001)^10 — if they are all equal, the jitter is not being
		// applied.
		if allSame {
			t.Fatalf("all %d retry waits identical (%v); backoff is not jittered", len(waits), waits[0])
		}
		return nil
	})
}

// TestTCPTransportSendDeadline wedges a peer — it completes the version
// handshake, never reads afterwards, and stops listening — and checks the
// write deadline unblocks the sender with an error instead of hanging
// forever.
func TestTCPTransportSendDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wedged := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		ln.Close() // no second chance: the re-dial after the timeout must fail
		// Answer the handshake by hand so the dial succeeds; then go silent.
		var h [handshakeLen]byte
		if _, err := io.ReadFull(c, h[:]); err != nil {
			c.Close()
			return
		}
		reply := handshakeHeader(1)
		if _, err := c.Write(reply[:]); err != nil {
			c.Close()
			return
		}
		wedged <- c
	}()

	t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t0.SetDialRetry(1, 0, 0)
	t0.SetSendTimeout(150 * time.Millisecond)

	// Big payloads fill the kernel socket buffers quickly; once they are
	// full, Encode blocks until the write deadline fires.
	payload := make([]byte, 1<<20)
	deadline := time.Now().Add(30 * time.Second)
	var sendErr error
	for time.Now().Before(deadline) {
		if sendErr = t0.Send(Message{From: 0, To: 1, Payload: payload}); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("sends to a never-reading peer kept succeeding")
	}
	select {
	case c := <-wedged:
		c.Close()
	default:
	}
}

// TestTCPTransportReconnect restarts the receiving peer on the same port
// and checks the sender transparently re-dials inside Send instead of
// failing on the stale connection.
func TestTCPTransportReconnect(t *testing.T) {
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := t1.Addr()
	t0.SetAddr(1, peerAddr)

	if err := t0.Send(Message{From: 0, To: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-t1.Recv(1):
	case <-time.After(2 * time.Second):
		t.Fatal("initial message not delivered")
	}

	// "Restart" the peer: tear it down and bring a new transport up on the
	// same address, like RestartNode does for a crashed process.
	t1.Close()
	t0.SetDialRetry(40, 5*time.Millisecond, 40*time.Millisecond)
	t1b, err := NewTCPTransport(1, map[tx.NodeID]string{0: t0.Addr(), 1: peerAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer t1b.Close()

	// The first write after the peer died may be swallowed by the kernel
	// before the RST arrives; that loss is the reliable layer's problem.
	// What the transport owes us is that Send keeps working and a message
	// reaches the restarted peer without any explicit reset call.
	delivered := false
	for i := 0; i < 50 && !delivered; i++ {
		if err := t0.Send(Message{From: 0, To: 1, Seq: uint64(100 + i)}); err != nil {
			t.Fatalf("send %d after peer restart: %v", i, err)
		}
		select {
		case <-t1b.Recv(1):
			delivered = true
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no message reached the restarted peer")
	}
}

// TestTCPTransportCloseLeaksNothing runs a two-node exchange and checks
// Close tears down the accept/read goroutines on both sides.
func TestTCPTransportCloseLeaksNothing(t *testing.T) {
	defer leaktest.Check(t)()
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t0.SetAddr(1, t1.Addr())
	for i := 0; i < 10; i++ {
		if err := t0.Send(Message{From: 0, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-t1.Recv(1):
		case <-time.After(2 * time.Second):
			t.Fatal("message not delivered")
		}
		if err := t1.Send(Message{From: 1, To: 0, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-t0.Recv(0):
		case <-time.After(2 * time.Second):
			t.Fatal("reply not delivered")
		}
	}
	t1.Close()
	t0.Close()
}

// newTCPPair wires two transports over loopback and returns them.
func newTCPPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, addrs)
	if err != nil {
		t0.Close()
		t.Fatal(err)
	}
	t0.SetAddr(1, t1.Addr())
	t.Cleanup(func() {
		t0.Close()
		t1.Close()
	})
	return t0, t1
}

// TestTCPTransportHandshakeRejectsGarbage points a raw client at a
// transport's listener and checks the inbound handshake turns it away —
// counted, with no Message ever surfacing on the inbox.
func TestTCPTransportHandshakeRejectsGarbage(t *testing.T) {
	tr, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	c, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte("not a transport handshake "), 4)
	if _, err := c.Write(junk); err != nil {
		t.Fatal(err)
	}
	// The acceptor must hang up on us once the magic check fails.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("acceptor kept the connection after a garbage handshake")
	}
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for tr.HandshakeFailures() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("garbage connection not counted as a handshake failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case m := <-tr.Recv(0):
		t.Fatalf("garbage connection surfaced a message: %+v", m)
	default:
	}
}

// TestTCPTransportHandshakeVersionMismatch dials a peer that answers the
// handshake with a different wire version and checks the dial — and hence
// Send — fails loudly instead of starting a gob stream against an
// incompatible build.
func TestTCPTransportHandshakeVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var h [handshakeLen]byte
		if _, err := io.ReadFull(c, h[:]); err != nil {
			return
		}
		reply := handshakeHeader(1)
		reply[7]++ // future wire version
		c.Write(reply[:])
		// Hold the conn open: the *version check*, not a hangup, must fail
		// the dial.
		time.Sleep(2 * time.Second)
	}()

	t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t0.SetDialRetry(1, 0, 0)
	err = t0.Send(Message{From: 0, To: 1})
	if err == nil {
		t.Fatal("send to a peer speaking a different wire version succeeded")
	}
	if want := "wire version mismatch"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// splitConn tears every write into single-byte writes, so each gob frame
// crosses the wire as hundreds of partial writes.
type splitConn struct{ net.Conn }

func (s splitConn) Write(p []byte) (int, error) {
	for i := range p {
		if _, err := s.Conn.Write(p[i : i+1]); err != nil {
			return i, err
		}
	}
	return len(p), nil
}

// TestTCPTransportPartialWrites forces the sender to dribble every frame
// one byte at a time and checks the receiver reassembles every message
// intact, in order, with no corruption.
func TestTCPTransportPartialWrites(t *testing.T) {
	t0, t1 := newTCPPair(t)
	t0.mu.Lock()
	t0.wrapConn = func(c net.Conn) net.Conn { return splitConn{c} }
	t0.mu.Unlock()

	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := t0.Send(Message{From: 0, To: 1, Seq: uint64(i + 1), Payload: payload}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-t1.Recv(1):
			if m.Seq != uint64(i+1) {
				t.Fatalf("message %d arrived with seq %d", i, m.Seq)
			}
			if !bytes.Equal(m.Payload, payload) {
				t.Fatalf("message %d payload corrupted", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
}

// TestTCPTransportMidStreamReset RSTs the established connection from the
// receiving side mid-conversation (SO_LINGER 0, the same teardown the
// netchaos proxy injects) and checks the sender counts the broken stream
// as a reconnect, re-dials inside Send, and keeps delivering.
func TestTCPTransportMidStreamReset(t *testing.T) {
	defer leaktest.Check(t)()
	addrs := map[tx.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t0.SetAddr(1, t1.Addr())

	if err := t0.Send(Message{From: 0, To: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-t1.Recv(1):
	case <-time.After(2 * time.Second):
		t.Fatal("initial message not delivered")
	}

	// Reset every connection t1 has accepted: linger 0 turns the close
	// into an RST, so the sender's side breaks mid-stream instead of
	// seeing a clean FIN after a drained buffer.
	t1.mu.Lock()
	accepted := append([]net.Conn(nil), t1.accepted...)
	t1.mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("receiver accepted no connections")
	}
	for _, c := range accepted {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
	}

	// The first write after the RST may land in the kernel buffer before
	// the reset is observed (that loss is the reliable layer's problem);
	// what the transport owes us is that some later Send notices the dead
	// stream, counts it, and re-dials within the call.
	delivered := false
	for i := 0; i < 50 && !delivered; i++ {
		if err := t0.Send(Message{From: 0, To: 1, Seq: uint64(100 + i)}); err != nil {
			t.Fatalf("send %d after mid-stream reset: %v", i, err)
		}
		select {
		case <-t1.Recv(1):
			delivered = true
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no message reached the peer after the mid-stream reset")
	}
	if n := t0.Reconnects(); n == 0 {
		t.Fatal("mid-stream reset not counted as a reconnect")
	}
}

// TestTCPTransportHalfOpenReconnect wedges the peer half-open — the
// handshake completes, then it never reads another byte and its listener
// goes away, so from the sender's view the stream is alive but frozen. The
// send deadline must break the stall, the dead stream must count as a
// reconnect, and once a real transport comes back on the same address the
// sender must deliver to it with no explicit reset call.
func TestTCPTransportHalfOpenReconnect(t *testing.T) {
	retryPortScenario(t, func(t *testing.T) error {
		peerAddr := reservePort(t)
		ln, err := net.Listen("tcp", peerAddr)
		if err != nil {
			return errPortStolen
		}
		wedged := make(chan net.Conn, 1)
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			ln.Close() // the re-dial must wait for the real replacement peer
			var h [handshakeLen]byte
			if _, err := io.ReadFull(c, h[:]); err != nil {
				c.Close()
				return
			}
			reply := handshakeHeader(1)
			if _, err := c.Write(reply[:]); err != nil {
				c.Close()
				return
			}
			wedged <- c // held open, never read from: half-open stall
		}()

		t0, err := NewTCPTransport(0, map[tx.NodeID]string{0: "127.0.0.1:0", 1: peerAddr})
		if err != nil {
			t.Fatal(err)
		}
		defer t0.Close()
		t0.SetDialRetry(40, 5*time.Millisecond, 40*time.Millisecond)
		t0.SetSendTimeout(150 * time.Millisecond)

		// Fill the kernel buffers until the frozen stream trips the write
		// deadline and Send drops the connection.
		payload := make([]byte, 1<<20)
		deadline := time.Now().Add(30 * time.Second)
		for t0.Reconnects() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("half-open stall never tripped the send deadline")
			}
			// Errors are expected once the deadline fires: the re-dial
			// inside the same call finds no listener yet.
			t0.Send(Message{From: 0, To: 1, Payload: payload})
		}
		select {
		case c := <-wedged:
			c.Close()
		default:
			return errPortStolen // someone else answered the handshake
		}

		// The peer comes back for real; the sender must reconnect and
		// deliver without any explicit reset.
		ln2, err := net.Listen("tcp", peerAddr)
		if err != nil {
			return errPortStolen
		}
		t1 := NewTCPTransportListener(1, map[tx.NodeID]string{0: t0.Addr(), 1: peerAddr}, ln2)
		defer t1.Close()
		delivered := false
		for i := 0; i < 50 && !delivered; i++ {
			if err := t0.Send(Message{From: 0, To: 1, Seq: uint64(200 + i)}); err != nil {
				continue // earlier retries may still catch a refused dial
			}
			select {
			case <-t1.Recv(1):
				delivered = true
			case <-time.After(50 * time.Millisecond):
			}
		}
		if !delivered {
			t.Fatal("no message reached the recovered peer after the half-open stall")
		}
		return nil
	})
}

// tearConn writes through until its budget is spent, then drops the
// connection mid-frame — a torn write, as when a sender dies or the kernel
// resets the stream partway through a frame.
type tearConn struct {
	net.Conn
	budget *atomic.Int64
}

func (s tearConn) Write(p []byte) (int, error) {
	left := s.budget.Add(-int64(len(p))) + int64(len(p))
	if left <= 0 {
		s.Conn.Close()
		return 0, errors.New("torn connection")
	}
	if int64(len(p)) > left {
		n, _ := s.Conn.Write(p[:left])
		s.Conn.Close()
		return n, errors.New("torn connection")
	}
	return s.Conn.Write(p)
}

// TestTCPTransportTornFrame tears the connection partway through the first
// frame and checks (a) the receiver never surfaces a corrupt Message from
// the half-frame, and (b) the sender's in-call re-dial delivers the
// message cleanly on a fresh connection.
func TestTCPTransportTornFrame(t *testing.T) {
	t0, t1 := newTCPPair(t)
	var budget atomic.Int64
	budget.Store(10) // torn mid-way through the first frame's type header
	first := true
	t0.mu.Lock()
	t0.wrapConn = func(c net.Conn) net.Conn {
		if first {
			first = false
			return tearConn{c, &budget}
		}
		return c // the re-dialed connection carries frames intact
	}
	t0.mu.Unlock()

	payload := []byte("must arrive exactly once, intact")
	if err := t0.Send(Message{From: 0, To: 1, Seq: 7, Type: MsgControl, Payload: payload}); err != nil {
		t.Fatalf("send across torn connection: %v", err)
	}
	select {
	case m := <-t1.Recv(1):
		if m.Seq != 7 || m.Type != MsgControl || !bytes.Equal(m.Payload, payload) {
			t.Fatalf("message arrived corrupted: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived after the torn frame")
	}
	// The half-frame must not have produced a second (corrupt) message.
	select {
	case m := <-t1.Recv(1):
		t.Fatalf("torn frame surfaced an extra message: %+v", m)
	case <-time.After(100 * time.Millisecond):
	}
}
