// Package durable is the atomic on-disk checkpoint store (§4.3): each
// checkpoint is a single self-verifying file — magic, id, length, CRC32C,
// gob payload — written crash-atomically (temp + fsync + rename + dir
// fsync) through the diskio fault boundary, with a manifest naming the
// newest complete checkpoint. A crash at any instant leaves the store
// loadable: either the manifest's checkpoint verifies, or the loader falls
// back to scanning for the newest file that does. Corrupt checkpoint files
// are skipped loudly and counted, never trusted.
package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hermes/internal/diskio"
)

const (
	ckptMagic  = uint64(0x4845524d434b5031) // "HERMCKP1"
	ckptHdrLen = 24                         // 8B magic + 8B id + 4B len + 4B CRC32C
	ckptSuffix = ".ckpt"
	manifest   = "MANIFEST"

	// keepCheckpoints is how many newest checkpoints survive pruning: the
	// current one plus one predecessor, so a corrupt current file still
	// leaves a (staler) recovery point.
	keepCheckpoints = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Stats reports the store's activity counters.
type Stats struct {
	Saves          int64 // checkpoints written
	SaveBytes      int64 // payload bytes across all saves
	LastSaveNanos  int64 // wall time of the most recent save (write+fsync+rename)
	LoadFallbacks  int64 // loads that had to ignore the manifest and scan
	CorruptSkipped int64 // checkpoint files rejected by verification
	Pruned         int64 // old checkpoint files removed
}

// Store reads and writes checkpoints in one directory.
type Store struct {
	fs  diskio.FS
	dir string

	stSaves     atomic.Int64
	stSaveBytes atomic.Int64
	stSaveNanos atomic.Int64
	stFallbacks atomic.Int64
	stCorrupt   atomic.Int64
	stPruned    atomic.Int64
}

// Open prepares a checkpoint store in dir (fsys nil = real filesystem).
func Open(dir string, fsys diskio.FS) (*Store, error) {
	if fsys == nil {
		fsys = diskio.OSFS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: mkdir %s: %w", dir, err)
	}
	sweepTmp(fsys, dir)
	return &Store{fs: fsys, dir: dir}, nil
}

// sweepTmp removes temp files left by saves that crashed between Create and
// Rename. Load and prune filter on the .ckpt suffix, so without this sweep
// the orphans would sit in the directory forever. Best-effort: a failed
// sweep never fails Open.
func sweepTmp(fsys diskio.FS, dir string) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	removed := false
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			if fsys.Remove(filepath.Join(dir, n)) == nil {
				removed = true
				log.Printf("durable: removed stale temp file %s from %s", n, dir)
			}
		}
	}
	if removed {
		_ = fsys.SyncDir(dir)
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Saves:          s.stSaves.Load(),
		SaveBytes:      s.stSaveBytes.Load(),
		LastSaveNanos:  s.stSaveNanos.Load(),
		LoadFallbacks:  s.stFallbacks.Load(),
		CorruptSkipped: s.stCorrupt.Load(),
		Pruned:         s.stPruned.Load(),
	}
}

func ckptName(id uint64) string { return fmt.Sprintf("ckpt-%016d%s", id, ckptSuffix) }

// Save durably writes v as checkpoint id and repoints the manifest at it.
// Ids must be non-decreasing across a store's lifetime (the loader prefers
// the highest id); the natural id is the checkpoint's input watermark.
// Only after Save returns may the caller discard what the checkpoint
// covers (journal rotation) — checkpoint-then-rotate, never the reverse.
func (s *Store) Save(id uint64, v any) error {
	start := time.Now()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("durable: encode checkpoint %d: %w", id, err)
	}
	blob := make([]byte, ckptHdrLen+payload.Len())
	binary.BigEndian.PutUint64(blob[0:8], ckptMagic)
	binary.BigEndian.PutUint64(blob[8:16], id)
	binary.BigEndian.PutUint32(blob[16:20], uint32(payload.Len()))
	binary.BigEndian.PutUint32(blob[20:24], crc32.Checksum(payload.Bytes(), crcTable))
	copy(blob[ckptHdrLen:], payload.Bytes())

	name := ckptName(id)
	if err := diskio.WriteFileAtomic(s.fs, filepath.Join(s.dir, name), blob); err != nil {
		return fmt.Errorf("durable: write checkpoint %s: %w", name, err)
	}
	mf, err := json.Marshal(map[string]string{"current": name})
	if err != nil {
		return err
	}
	if err := diskio.WriteFileAtomic(s.fs, filepath.Join(s.dir, manifest), mf); err != nil {
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	s.stSaves.Add(1)
	s.stSaveBytes.Add(int64(payload.Len()))
	s.stSaveNanos.Store(time.Since(start).Nanoseconds())
	s.prune()
	return nil
}

// Load decodes the newest complete checkpoint into v, returning its id.
// ok=false means the store holds no loadable checkpoint (a fresh node).
// The manifest is tried first; a missing or unverifiable target falls back
// to scanning every checkpoint file, newest id first.
func (s *Store) Load(v any) (id uint64, ok bool, err error) {
	if name := s.manifestTarget(); name != "" {
		if id, ok := s.tryLoad(name, v); ok {
			return id, true, nil
		}
		s.stFallbacks.Add(1)
		log.Printf("durable: manifest names unusable checkpoint %s in %s; scanning", name, s.dir)
	}
	names, derr := s.fs.ReadDir(s.dir)
	if derr != nil {
		return 0, false, fmt.Errorf("durable: scan %s: %w", s.dir, derr)
	}
	var ckpts []string
	for _, n := range names {
		if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ckptSuffix) {
			ckpts = append(ckpts, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ckpts))) // zero-padded ids: newest first
	for _, n := range ckpts {
		if id, ok := s.tryLoad(n, v); ok {
			return id, true, nil
		}
	}
	return 0, false, nil
}

func (s *Store) manifestTarget() string {
	b, err := s.fs.ReadFile(filepath.Join(s.dir, manifest))
	if err != nil {
		return ""
	}
	var m map[string]string
	if json.Unmarshal(b, &m) != nil {
		return ""
	}
	return m["current"]
}

// tryLoad verifies and decodes one checkpoint file; failures are counted
// and logged, never fatal (the caller falls back to an older file).
func (s *Store) tryLoad(name string, v any) (uint64, bool) {
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		if !diskio.IsNotExist(err) {
			s.stCorrupt.Add(1)
			log.Printf("durable: read checkpoint %s: %v", name, err)
		}
		return 0, false
	}
	reject := func(why string) (uint64, bool) {
		s.stCorrupt.Add(1)
		log.Printf("durable: checkpoint %s rejected: %s", name, why)
		return 0, false
	}
	if len(raw) < ckptHdrLen {
		return reject(fmt.Sprintf("truncated header (%d bytes)", len(raw)))
	}
	if binary.BigEndian.Uint64(raw[0:8]) != ckptMagic {
		return reject("bad magic")
	}
	id := binary.BigEndian.Uint64(raw[8:16])
	n := int(binary.BigEndian.Uint32(raw[16:20]))
	if len(raw)-ckptHdrLen != n {
		return reject(fmt.Sprintf("length %d but %d payload bytes", n, len(raw)-ckptHdrLen))
	}
	payload := raw[ckptHdrLen:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(raw[20:24]) {
		return reject("CRC mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return reject(fmt.Sprintf("gob decode: %v", err))
	}
	return id, true
}

// prune removes checkpoint files older than the newest keepCheckpoints.
// Best-effort: pruning failure never fails a save.
func (s *Store) prune() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	var ckpts []string
	for _, n := range names {
		if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ckptSuffix) {
			ckpts = append(ckpts, n)
		}
	}
	if len(ckpts) <= keepCheckpoints {
		return
	}
	sort.Strings(ckpts)
	for _, n := range ckpts[:len(ckpts)-keepCheckpoints] {
		if s.fs.Remove(filepath.Join(s.dir, n)) == nil {
			s.stPruned.Add(1)
		}
	}
	_ = s.fs.SyncDir(s.dir)
}
