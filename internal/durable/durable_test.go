package durable

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hermes/internal/diskio"
)

type payload struct {
	Seq  uint64
	Keys map[uint64][]byte
}

func pl(seq uint64) *payload {
	return &payload{Seq: seq, Keys: map[uint64][]byte{seq: {byte(seq), 2, 3}}}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 1})
	s, err := Open("/cp", fs)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if _, ok, err := s.Load(&got); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := s.Save(7, pl(7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(12, pl(12)); err != nil {
		t.Fatal(err)
	}
	id, ok, err := s.Load(&got)
	if err != nil || !ok || id != 12 {
		t.Fatalf("Load = (%d, %v, %v), want (12, true, nil)", id, ok, err)
	}
	if !reflect.DeepEqual(&got, pl(12)) {
		t.Fatalf("payload = %+v", got)
	}
}

func TestStoreSurvivesCrashMidSave(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 2})
	s, _ := Open("/cp", fs)
	if err := s.Save(5, pl(5)); err != nil {
		t.Fatal(err)
	}
	// Next save dies at the checkpoint-file fsync; crash; reopen.
	fs.FailNextSync(errors.New("device detached"), false)
	if err := s.Save(9, pl(9)); err == nil {
		t.Fatal("want save error")
	}
	fs.Crash()
	s2, _ := Open("/cp", fs)
	var got payload
	id, ok, err := s2.Load(&got)
	if err != nil || !ok || id != 5 {
		t.Fatalf("Load after crash = (%d, %v, %v), want (5, true, nil)", id, ok, err)
	}
	if !reflect.DeepEqual(&got, pl(5)) {
		t.Fatalf("payload = %+v", got)
	}
}

func TestStoreFallsBackWhenManifestTargetCorrupt(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 3})
	s, _ := Open("/cp", fs)
	if err := s.Save(3, pl(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(8, pl(8)); err != nil {
		t.Fatal(err)
	}
	// Rot the manifest's current checkpoint in place.
	cur := filepath.Join("/cp", ckptName(8))
	raw, _ := fs.ReadFile(cur)
	raw[len(raw)-1] ^= 0xFF
	fs.Install(cur, raw, len(raw))

	var got payload
	id, ok, err := s.Load(&got)
	if err != nil || !ok || id != 3 {
		t.Fatalf("Load = (%d, %v, %v), want fallback to 3", id, ok, err)
	}
	st := s.Stats()
	if st.LoadFallbacks != 1 || st.CorruptSkipped == 0 {
		t.Fatalf("stats = %+v, want fallback + corrupt counted", st)
	}
}

func TestStorePrunesOldCheckpoints(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 4})
	s, _ := Open("/cp", fs)
	for id := uint64(1); id <= 5; id++ {
		if err := s.Save(id, pl(id)); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := fs.ReadDir("/cp")
	ckpts := 0
	for _, n := range names {
		if filepath.Ext(n) == ckptSuffix {
			ckpts++
		}
	}
	if ckpts != keepCheckpoints {
		t.Fatalf("%d checkpoint files remain, want %d (got %v)", ckpts, keepCheckpoints, names)
	}
	if st := s.Stats(); st.Pruned != 3 {
		t.Fatalf("Pruned = %d, want 3", st.Pruned)
	}
	var got payload
	if id, ok, _ := s.Load(&got); !ok || id != 5 {
		t.Fatalf("Load = (%d, %v)", id, ok)
	}
}

func TestStoreOnRealFilesystem(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(42, pl(42)); err != nil {
		t.Fatal(err)
	}
	var got payload
	id, ok, err := s.Load(&got)
	if err != nil || !ok || id != 42 {
		t.Fatalf("Load = (%d, %v, %v)", id, ok, err)
	}
	if st := s.Stats(); st.LastSaveNanos <= 0 {
		t.Fatalf("LastSaveNanos = %d", st.LastSaveNanos)
	}
}

// TestOpenSweepsStaleTempFiles: a save that crashes between writing its
// temp file and renaming it leaves ckpt-*.ckpt.tmp behind; Load and prune
// filter on the .ckpt suffix, so Open must sweep the orphans or they
// accumulate forever on real deployments.
func TestOpenSweepsStaleTempFiles(t *testing.T) {
	fs := diskio.NewMemFS(diskio.FaultSpec{Seed: 1})
	s, err := Open("/cp", fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(7, pl(7)); err != nil {
		t.Fatal(err)
	}
	// Residue of a save that died before its rename.
	stale := filepath.Join("/cp", ckptName(9)+".tmp")
	if err := fs.WriteFile(stale, []byte("partial checkpoint")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open("/cp", fs)
	if err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/cp")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			t.Fatalf("stale temp file %s survived Open", n)
		}
	}
	// The real checkpoint is untouched.
	var got payload
	if id, ok, err := s2.Load(&got); err != nil || !ok || id != 7 {
		t.Fatalf("Load = (%d, %v, %v), want (7, true, nil)", id, ok, err)
	}
	if !reflect.DeepEqual(&got, pl(7)) {
		t.Fatalf("payload = %+v", got)
	}
}
