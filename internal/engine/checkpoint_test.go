package engine

import (
	"testing"
	"time"

	"hermes/internal/tx"
)

// workloadPhase drives deterministic traffic: submit one transaction at a
// time so the totally ordered input is identical across runs.
func workloadPhase(t *testing.T, c *Cluster, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		k1 := tx.MakeKey(0, uint64(i*3%testRows))
		k2 := tx.MakeKey(0, uint64(i*7%testRows))
		if err := c.SubmitAndWait(tx.NodeID(i%2), incProc(k1, k2)); err != nil {
			t.Fatal(err)
		}
		if !c.Drain(10 * time.Second) {
			t.Fatal("drain failed")
		}
	}
}

func TestCheckpointRecoverIdentity(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	workloadPhase(t, c, 0, 25)

	cp, err := c.Checkpoint(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seq == 0 || len(cp.Stores) != 2 || cp.Routing == nil {
		t.Fatalf("checkpoint shape: seq=%d stores=%d routing=%v", cp.Seq, len(cp.Stores), cp.Routing)
	}
	// A successful checkpoint truncates the log behind the cut.
	if got := c.nodes[0].cmdlog.Len(); got != 0 {
		t.Fatalf("command log holds %d batches after checkpoint, want 0", got)
	}

	// Keep running after the checkpoint; this is the tail recovery must
	// re-execute.
	workloadPhase(t, c, 25, 45)
	want := c.Fingerprint()
	tail := c.TailSince(cp.Seq)

	c2, err := Recover(Config{
		Nodes:  []tx.NodeID{0, 1},
		Policy: pf,
		Seq:    c.cfg.Seq,
	}, cp, tail)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	if got := c2.Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %x != original %x", got, want)
	}

	// The recovered cluster must keep working, with the total order
	// resuming past the replayed input.
	if err := c2.SubmitAndWait(0, incProc(tx.MakeKey(0, 5))); err != nil {
		t.Fatal(err)
	}
	if !c2.Drain(10 * time.Second) {
		t.Fatal("post-recovery drain failed")
	}
	v, ok := c2.ReadRecord(tx.MakeKey(0, 5))
	if !ok {
		t.Fatal("record missing after recovery")
	}
	_ = v
}

func TestCheckpointWithEmptyTail(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	workloadPhase(t, c, 0, 10)
	cp, err := c.Checkpoint(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Fingerprint()
	c2, err := Recover(Config{Nodes: []tx.NodeID{0, 1}, Policy: pf, Seq: c.cfg.Seq}, cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	if got := c2.Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %x != original %x", got, want)
	}
}

func TestRecoverRejectsBadTail(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	workloadPhase(t, c, 0, 5)
	cp, err := c.Checkpoint(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Gap in the tail sequence must be rejected.
	bad := []*tx.Batch{{Seq: cp.Seq + 5}}
	if _, err := Recover(Config{Nodes: []tx.NodeID{0, 1}, Policy: pf, Seq: c.cfg.Seq}, cp, bad); err == nil {
		t.Fatal("out-of-order tail accepted")
	}
}

func TestRecoverRejectsUnknownNode(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	cp, err := c.Checkpoint(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(Config{Nodes: []tx.NodeID{0}, Policy: pf}, cp, nil); err == nil {
		t.Fatal("checkpoint with extra node accepted")
	}
}

func TestCheckpointPreservesFusionState(t *testing.T) {
	pf := policies(2)["hermes"]
	c := newTestCluster(t, 2, pf)
	loadCounters(c, testRows)
	// Force cross-partition fusion so the table is non-trivial.
	for i := 0; i < 15; i++ {
		kA := tx.MakeKey(0, uint64(i))     // node 0
		kB := tx.MakeKey(0, uint64(150+i)) // node 1
		if err := c.SubmitAndWait(0, incProc(kA, kB)); err != nil {
			t.Fatal(err)
		}
		if !c.Drain(10 * time.Second) {
			t.Fatal("drain failed")
		}
	}
	origFusion := c.nodes[0].policy.Placement().Fusion.Fingerprint()
	if c.nodes[0].policy.Placement().Fusion.Len() == 0 {
		t.Fatal("test setup produced no fusion entries")
	}
	cp, err := c.Checkpoint(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Recover(Config{Nodes: []tx.NodeID{0, 1}, Policy: pf, Seq: c.cfg.Seq}, cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	if got := c2.nodes[0].policy.Placement().Fusion.Fingerprint(); got != origFusion {
		t.Fatal("routing replay did not rebuild the fusion table")
	}
}
