package engine

import (
	"sync"
	"testing"
	"time"

	"hermes/internal/core"
	"hermes/internal/partition"
	"hermes/internal/router"
	"hermes/internal/tx"
)

type recordingPolicy struct {
	router.Policy
	mu     *sync.Mutex
	routes map[tx.TxnID]*router.Route
}

func (r *recordingPolicy) RouteUser(txns []*tx.Request) []*router.Route {
	out := r.Policy.RouteUser(txns)
	r.mu.Lock()
	for _, rt := range out {
		r.routes[rt.Txn.ID] = rt
	}
	r.mu.Unlock()
	return out
}

// TestFusionEvictionStress is the regression test for a deadlock where a
// fusion eviction emitted for a key the same transaction later re-admitted
// produced a migration whose source had no record, wedging the
// destination's arrival role on a push that never came. On failure it
// dumps the stuck routes and lock holders.
func TestFusionEvictionStress(t *testing.T) {
	base := partition.NewUniformRange(0, testRows, 4)
	mu := &sync.Mutex{}
	routes := map[tx.TxnID]*router.Route{}
	first := true
	pf := func(a []tx.NodeID) router.Policy {
		p := core.New(base, a, core.DefaultConfig(testRows/4))
		if first {
			first = false
			return &recordingPolicy{Policy: p, mu: mu, routes: routes}
		}
		return p
	}
	c := newTestCluster(t, 4, pf)
	loadCounters(c, testRows)
	const txns = 400
	for i := 0; i < txns; i++ {
		k1 := tx.MakeKey(0, uint64(i%testRows))
		k2 := tx.MakeKey(0, uint64((i*37+11)%testRows))
		if _, err := c.Submit(tx.NodeID(i%4), incProc(k1, k2)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Drain(15 * time.Second) {
		c.mu.Lock()
		var stuck []tx.TxnID
		for id := range c.pending {
			stuck = append(stuck, id)
		}
		c.mu.Unlock()
		mu.Lock()
		for _, id := range stuck {
			rt := routes[id]
			if rt == nil {
				t.Logf("txn %d: no route recorded", id)
				continue
			}
			t.Logf("STUCK txn %d: master=%d owners=%v migrations=%v writeback=%v reads=%v writes=%v",
				id, rt.Master, rt.Owners, rt.Migrations, rt.WriteBack, rt.Txn.ReadSet(), rt.Txn.WriteSet())
			for nid, n := range c.nodes {
				t.Logf("  node %d holding=%v", nid, n.locks.Holding(id))
			}
		}
		mu.Unlock()
		t.Fatalf("pending=%d", c.Pending())
	}
}
