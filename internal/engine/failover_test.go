package engine

import (
	"strings"
	"testing"
	"time"

	"hermes/internal/sequencer"
	"hermes/internal/tx"
)

// newFailoverCluster builds a reliable cluster with sequencer standbys and
// tight fault-tolerance timers, sealed by size only — the configuration
// under which a leader kill is survivable and byte-comparable with an
// uninterrupted run.
func newFailoverCluster(t *testing.T, nodes, standbys int, pf PolicyFactory) *Cluster {
	t.Helper()
	ids := make([]tx.NodeID, nodes)
	for i := range ids {
		ids[i] = tx.NodeID(i)
	}
	c, err := New(Config{
		Nodes:  ids,
		Policy: pf,
		Seq: sequencer.Config{
			BatchSize: 4, Interval: time.Hour,
			Standbys:        standbys,
			Heartbeat:       5 * time.Millisecond,
			FailoverTimeout: 100 * time.Millisecond,
			RetryTimeout:    10 * time.Millisecond,
			RetryCap:        100 * time.Millisecond,
		},
		Reliable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// failoverWorkload mirrors crashWorkload but kills the sequencer leader
// (not a worker) mid-stream when kill is true: submissions keep flowing
// through the session front-end, the standby promotes itself, and the
// killed replica is restarted as a standby of the new epoch.
func failoverWorkload(t *testing.T, c *Cluster, txns int, kill bool) {
	t.Helper()
	cp, err := c.Checkpoint(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dones := make([]<-chan struct{}, 0, txns)
	for i := 0; i < txns; i++ {
		k1 := tx.MakeKey(0, uint64(i*3%testRows))
		k2 := tx.MakeKey(0, uint64(i*7%testRows))
		done, err := c.Submit(0, incProc(k1, k2))
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
		if kill && i == txns/2 {
			trigger := cp.Seq + 3
			deadline := time.Now().Add(30 * time.Second)
			for c.Node(0).Scheduled() < trigger {
				if time.Now().After(deadline) {
					t.Fatal("node 0 never reached the kill trigger")
				}
				time.Sleep(200 * time.Microsecond)
			}
			if err := c.CrashLeader(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
			if err := c.RestartLeader(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, done := range dones {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("transaction %d never completed", i)
		}
	}
	if err := c.DrainDetail(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestLeaderFailoverMatchesUninterrupted is the tentpole claim: killing
// the total-order leader mid-run — standby promotion, front-end redirect
// with dedup, replica restart — leaves every node byte-identical to a run
// whose leader never died, with every transaction sequenced exactly once.
func TestLeaderFailoverMatchesUninterrupted(t *testing.T) {
	const txns = 40
	for _, name := range []string{"hermes", "calvin", "tpart"} {
		t.Run(name, func(t *testing.T) {
			pf := policies(3)[name]

			ref := newFailoverCluster(t, 3, 2, pf)
			loadCounters(ref, testRows)
			failoverWorkload(t, ref, txns, false)
			want := ref.NodeDigests()
			wantCommitted := ref.Collector().Committed()

			c := newFailoverCluster(t, 3, 2, pf)
			loadCounters(c, testRows)
			failoverWorkload(t, c, txns, true)
			got := c.NodeDigests()
			if len(got) != len(want) {
				t.Fatalf("digest count %d != %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("node %d diverged after leader failover:\n got %+v\nwant %+v",
						want[i].Node, got[i], want[i])
				}
			}
			// Exactly-once: a lost submission would commit fewer, a
			// double-sequenced one more.
			if gotCommitted := c.Collector().Committed(); gotCommitted != wantCommitted {
				t.Errorf("committed %d != uninterrupted %d", gotCommitted, wantCommitted)
			}
			if c.SeqFailovers() < 1 {
				t.Error("failover counter never advanced")
			}
			if c.SeqEpoch() < 1 {
				t.Error("epoch never advanced past 0")
			}
			if c.SeqLeader() == LeaderNode {
				t.Error("leadership failed back to the killed replica")
			}
			if ref.SeqFailovers() != 0 || ref.SeqEpoch() != 0 {
				t.Errorf("uninterrupted run recorded failovers=%d epoch=%d",
					ref.SeqFailovers(), ref.SeqEpoch())
			}
		})
	}
}

// TestLeaderFailoverBackToBack kills the promoted leader too: with two
// standbys the group survives a second failover (epoch 2) and the twice-
// restarted replicas line back up in the promotion order.
func TestLeaderFailoverBackToBack(t *testing.T) {
	c := newFailoverCluster(t, 3, 2, policies(3)["hermes"])
	loadCounters(c, testRows)
	if _, err := c.Checkpoint(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	submit := func(base int) {
		t.Helper()
		// Async submissions + drain: the drain loop force-flushes the
		// sealer, so the count need not divide the batch size.
		for i := 0; i < 8; i++ {
			if _, err := c.Submit(0, incProc(tx.MakeKey(0, uint64(base+i)))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.DrainDetail(30 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 2; round++ {
		submit(round * 8)
		if err := c.CrashLeader(); err != nil {
			t.Fatal(err)
		}
		if err := c.RestartLeader(); err != nil {
			t.Fatal(err)
		}
	}
	submit(100)
	if got := c.SeqEpoch(); got != 2 {
		t.Errorf("epoch = %d, want 2", got)
	}
	if got := c.SeqFailovers(); got != 2 {
		t.Errorf("failovers = %d, want 2", got)
	}
	var sum uint64
	for i := 0; i < testRows; i++ {
		v, _ := c.ReadRecord(tx.MakeKey(0, uint64(i)))
		sum += counterVal(v)
	}
	if sum != 24 {
		t.Errorf("committed increments = %d, want 24 (lost or duplicated submissions)", sum)
	}
}

// TestLeaderCrashValidation pins the error surface around sequencer
// replica ids: the worker crash API must point at CrashLeader/
// RestartLeader instead of failing with "unknown node -64", and
// CrashLeader itself must spell out its preconditions.
func TestLeaderCrashValidation(t *testing.T) {
	// No standbys: the leader is not survivable.
	c := newReliableCluster(t, 2, policies(2)["hermes"])
	loadCounters(c, testRows)
	if _, err := c.Checkpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	err := c.CrashNode(LeaderNode)
	if err == nil {
		t.Fatal("CrashNode(LeaderNode) accepted")
	}
	if !strings.Contains(err.Error(), "CrashLeader") {
		t.Errorf("CrashNode(LeaderNode) error %q does not point at CrashLeader", err)
	}
	err = c.RestartNode(LeaderNode)
	if err == nil {
		t.Fatal("RestartNode(LeaderNode) accepted")
	}
	if !strings.Contains(err.Error(), "RestartLeader") {
		t.Errorf("RestartNode(LeaderNode) error %q does not point at RestartLeader", err)
	}
	err = c.CrashLeader()
	if err == nil {
		t.Fatal("CrashLeader without standbys accepted")
	}
	if !strings.Contains(err.Error(), "Standbys") {
		t.Errorf("CrashLeader error %q does not mention Config.Standbys", err)
	}
	if err := c.RestartLeader(); err == nil {
		t.Fatal("RestartLeader with nothing crashed accepted")
	}

	// With standbys: standby replica ids are fenced off from the worker
	// API too, and the crash preconditions still hold.
	f := newFailoverCluster(t, 2, 1, policies(2)["hermes"])
	loadCounters(f, testRows)
	if err := f.CrashLeader(); err == nil {
		t.Fatal("CrashLeader without a prior checkpoint accepted")
	}
	if _, err := f.Checkpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	standby := sequencer.SeqNode(LeaderNode, 1)
	if err := f.CrashNode(standby); err == nil ||
		!strings.Contains(err.Error(), "CrashLeader") {
		t.Errorf("CrashNode(standby) = %v, want pointer at CrashLeader", err)
	}
	if err := f.CrashLeader(); err != nil {
		t.Fatal(err)
	}
	if err := f.CrashLeader(); err == nil {
		t.Fatal("double CrashLeader accepted")
	}
	if err := f.RestartLeader(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainDetailNamesStuckNode pins the drain diagnostic: when the
// cluster cannot quiesce because a node stopped consuming, the timeout
// error names the node and the sequence it is stuck behind.
func TestDrainDetailNamesStuckNode(t *testing.T) {
	c := newReliableCluster(t, 2, policies(2)["hermes"])
	loadCounters(c, testRows)
	if _, err := c.Checkpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	// Four submissions seal a batch the dead node will never schedule.
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(0, incProc(tx.MakeKey(0, uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	err := c.DrainDetail(150 * time.Millisecond)
	if err == nil {
		t.Fatal("drain succeeded with a dead node and traffic in flight")
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Errorf("drain error %q does not name the stuck node", err)
	}
	if !strings.Contains(err.Error(), "stuck at batch") && !strings.Contains(err.Error(), "in flight") {
		t.Errorf("drain error %q does not say what it is stuck behind", err)
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.DrainDetail(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}
