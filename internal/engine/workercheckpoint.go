package engine

import (
	"fmt"

	"hermes/internal/network"
	"hermes/internal/router"
	"hermes/internal/tx"
)

// WorkerCheckpoint is one worker process's durable recovery point: the cut
// a restarted process restores before replaying its journal suffix. It is
// consistent by construction only when captured settled (see CaptureWorker)
// — at that moment the store, routing replica, and scheduler cursor are all
// pure functions of the delivered input prefix.
type WorkerCheckpoint struct {
	// Node is the worker's id; a checkpoint restored into the wrong
	// process would silently diverge, so restore verifies it.
	Node tx.NodeID
	// Store is the node's record snapshot.
	Store map[tx.Key][]byte
	// Routing is the local placement replica (override map, active set,
	// fusion table with replacement order).
	Routing *router.PlacementState
	// Scheduled is the scheduler cursor (1 + last consumed batch).
	Scheduled uint64
	// Delivered is the journal's absolute frame count at the cut: the
	// checkpoint covers exactly frames [0, Delivered), so restart replays
	// RecoveredSince(Delivered) and the journal may rotate at Delivered.
	Delivered uint64
	// Floors records, per sender, the highest (incarnation, link)
	// journaled at the cut. They seed the reliable layer's dedup
	// watermarks for senders whose frames the rotation dropped; without
	// them a restarted link would reset to expected=1 and park every live
	// retransmit in the future buffer forever.
	Floors map[tx.NodeID]network.LinkFloor
}

// CaptureWorker snapshots the worker's checkpointable state. The worker
// must be settled — nothing queued, pending, or backlogged — because only
// then is the visible state a function of the delivered prefix alone: a
// partially executed transaction keeps its keys queued, so QueuedLockKeys
// == 0 (the Granter covers both exec modes) certifies no half-applied
// writes. The caller pauses the feed around the capture and fills in
// Delivered/Floors from the journal under the same pause.
func (c *Cluster) CaptureWorker() (*WorkerCheckpoint, error) {
	q := c.WorkerQuiesce()
	if q.QueuedLockKeys != 0 || q.Pending != 0 || q.Backlog != 0 {
		return nil, fmt.Errorf("engine: worker %d not settled for checkpoint: %+v", c.self, q)
	}
	n := c.node(c.order[0])
	return &WorkerCheckpoint{
		Node:      n.id,
		Store:     n.store.Checkpoint(),
		Routing:   n.policy.Placement().Snapshot(),
		Scheduled: n.Scheduled(),
	}, nil
}

// RestoreWorkerState loads a checkpoint into a freshly built (not yet
// started) worker: store, placement replica, and scheduler cursor. The
// caller then starts the worker and the reliable layer replays the journal
// suffix on top.
func (c *Cluster) RestoreWorkerState(cp *WorkerCheckpoint) error {
	n := c.node(c.order[0])
	if cp.Node != n.id {
		return fmt.Errorf("engine: checkpoint is for node %d, this worker is %d", cp.Node, n.id)
	}
	n.store.Restore(cp.Store)
	if cp.Routing != nil {
		n.policy.Placement().Restore(cp.Routing)
	}
	n.scheduled.Store(cp.Scheduled)
	return nil
}
